/**
 * @file
 * Crash-recovery matrix for distributed campaigns (docs/DISTRIBUTED.md).
 *
 * The invariant under test everywhere: SIGKILL of any single worker at
 * any seeded point, and a transient fault at any dist.* / worker.*
 * site, still yields a merged ResultStore whose sorted rows are
 * byte-identical to a single-process run of the same campaign (with
 * --no-timing). Persistent faults degrade the documented way — jobs
 * surface as Degraded rows, never as a crashed or hung campaign.
 *
 * The chaos harness kills real zatel-worker processes (ZATEL_WORKER_BIN
 * from CMake) via ZATEL_WORKER_KILL, and arms worker-side fault sites
 * via the inherited ZATEL_FAULTS environment — both routed through
 * DistParams::workerEnv so this test's own process stays clean.
 */

#include <gtest/gtest.h>

#ifdef __unix__
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "dist/coordinator.hh"
#include "dist/job_board.hh"
#include "dist/worker.hh"
#include "service/artifact_cache.hh"
#include "service/campaign.hh"
#include "service/result_store.hh"
#include "service/scheduler.hh"
#include "util/fault_injection.hh"

#ifndef ZATEL_WORKER_BIN
#define ZATEL_WORKER_BIN "zatel-worker"
#endif

namespace zatel::dist
{
namespace
{

std::filesystem::path
scratchDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / ("zatel-dist-" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Small fast jobs (PARK 32x32 at reduced density); all four share one
 *  scene pack and one heatmap — only the traced fraction differs. */
std::vector<service::CampaignJob>
makeCampaign(size_t count = 4)
{
    std::vector<service::CampaignJob> jobs;
    for (size_t i = 0; i < count; ++i) {
        service::CampaignJob job;
        job.scene = "PARK";
        job.sceneDetail = 0.3f;
        job.params.width = 32;
        job.params.height = 32;
        job.params.selector.fixedFraction =
            0.15 + 0.05 * static_cast<double>(i);
        jobs.push_back(std::move(job));
    }
    service::finalizeCampaign(jobs);
    return jobs;
}

std::vector<std::string>
sortedLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    return lines;
}

/** Single-process reference run with timing columns off. */
std::vector<std::string>
referenceLines(const std::filesystem::path &dir)
{
    const std::string path = (dir / "reference.jsonl").string();
    service::ArtifactCache cache(256ull << 20);
    service::ResultStoreOptions store_options;
    store_options.includeTiming = false;
    service::ResultStore store(path, store_options);
    service::SchedulerParams params;
    params.workers = 2;
    service::CampaignScheduler scheduler(makeCampaign(), cache, store,
                                         params);
    scheduler.run();
    store.finalize();
    return sortedLines(path);
}

/** Coordinator tuning every test shares: the checked-in zatel-worker
 *  binary, a short lease, quiet workers with timing columns off. */
DistParams
baseParams(const std::filesystem::path &dir)
{
    DistParams params;
    params.workerCmd = ZATEL_WORKER_BIN;
    params.boardDir = (dir / "board").string();
    params.leaseTimeoutSeconds = 2.0;
    params.pollSeconds = 0.01;
    params.quiet = true;
    params.workerExtraArgs = {"--no-timing", "--quiet"};
    return params;
}

/** Run one distributed campaign into @p result_name under @p dir. */
DistSummary
runDist(const std::filesystem::path &dir, const std::string &result_name,
        DistParams params, bool append = false,
        std::set<std::string> already_completed = {})
{
    const std::string path = (dir / result_name).string();
    service::ResultStoreOptions store_options;
    store_options.includeTiming = false;
    store_options.append = append;
    service::ResultStore store(path, store_options);
    params.alreadyCompleted = std::move(already_completed);
    DistCoordinator coordinator(makeCampaign(), store, std::move(params));
    return coordinator.run();
}

/** Process-wide fault registry hygiene (worker.spawn fires in the
 *  coordinator, i.e. in THIS process). */
class Dist : public testing::Test
{
  protected:
    void SetUp() override { FaultRegistry::global().resetForTest(); }
    void TearDown() override { FaultRegistry::global().resetForTest(); }
};

// ---------------------------------------------------------------------
// Board units
// ---------------------------------------------------------------------

TEST_F(Dist, ChaosKillSpecParsesAndRejects)
{
    EXPECT_FALSE(ChaosKillSpec::parse(nullptr).armed);
    EXPECT_FALSE(ChaosKillSpec::parse("").armed);

    const ChaosKillSpec any = ChaosKillSpec::parse("mid_job:3");
    EXPECT_TRUE(any.armed);
    EXPECT_EQ(any.point, "mid_job");
    EXPECT_EQ(any.nth, 3u);
    EXPECT_EQ(any.workerFilter, -1);

    const ChaosKillSpec one = ChaosKillSpec::parse("pre_publish:1@2");
    EXPECT_TRUE(one.armed);
    EXPECT_EQ(one.point, "pre_publish");
    EXPECT_EQ(one.workerFilter, 2);

    // A typo'd chaos plan must fail loudly, never silently disarm.
    EXPECT_THROW(ChaosKillSpec::parse("bogus_point:1"),
                 std::invalid_argument);
    EXPECT_THROW(ChaosKillSpec::parse("mid_job"), std::invalid_argument);
    EXPECT_THROW(ChaosKillSpec::parse("mid_job:0"),
                 std::invalid_argument);
    EXPECT_THROW(ChaosKillSpec::parse("mid_job:x"),
                 std::invalid_argument);
}

TEST_F(Dist, BoardManifestRoundTripsAndLeaseLifecycleHolds)
{
    const auto dir = scratchDir("board-units");
    BoardPaths paths{(dir / "board").string(), /*csv=*/false};

    BoardManifest manifest;
    manifest.shards = 3;
    manifest.csv = false;
    manifest.jobs = 7;
    initBoard(paths, manifest);

    BoardManifest read;
    ASSERT_TRUE(readManifest(paths, read));
    EXPECT_EQ(read.shards, 3u);
    EXPECT_EQ(read.jobs, 7u);
    EXPECT_FALSE(read.csv);

    // O_CREAT|O_EXCL claim: first wins, second loses, and the lease
    // records who holds it.
    ASSERT_TRUE(tryClaimShard(paths, 1, /*worker_id=*/5));
    EXPECT_FALSE(tryClaimShard(paths, 1, /*worker_id=*/6));
    const LeaseInfo lease = readLease(paths, 1);
    ASSERT_TRUE(lease.exists);
    EXPECT_EQ(lease.workerId, 5u);
    EXPECT_EQ(lease.pid, static_cast<long>(::getpid()));

    EXPECT_GE(leaseAgeSeconds(paths, 1), 0.0);
    EXPECT_TRUE(refreshLease(paths, 1));

    breakLease(paths, 1);
    EXPECT_FALSE(readLease(paths, 1).exists);
    EXPECT_LT(leaseAgeSeconds(paths, 1), 0.0);
    EXPECT_TRUE(tryClaimShard(paths, 1, /*worker_id=*/6));
}

TEST_F(Dist, FragmentPublishAndExhaustionMarkersWork)
{
    const auto dir = scratchDir("board-frags");
    BoardPaths paths{(dir / "board").string(), /*csv=*/false};
    initBoard(paths, BoardManifest{1, false, 1});

    {
        std::ofstream partial(paths.partialFragmentPath(0));
        partial << "{\"job\":\"j1\",\"status\":\"ok\"}\n";
    }
    EXPECT_FALSE(shardDone(paths, 0));
    publishFragment(paths, 0);
    EXPECT_TRUE(shardDone(paths, 0));
    EXPECT_FALSE(
        std::filesystem::exists(paths.partialFragmentPath(0)));

    EXPECT_FALSE(shardExhausted(paths, 0));
    markShardExhausted(paths, 0, "test reason");
    EXPECT_TRUE(shardExhausted(paths, 0));
    markShardExhausted(paths, 0, "idempotent");
    EXPECT_TRUE(shardExhausted(paths, 0));
}

// ---------------------------------------------------------------------
// Byte-identity: distributed == single-process
// ---------------------------------------------------------------------

TEST_F(Dist, MergedRowsAreByteIdenticalAtEveryWorkerCount)
{
    const auto dir = scratchDir("identity");
    const std::vector<std::string> reference = referenceLines(dir);
    ASSERT_EQ(reference.size(), 4u);

    for (uint32_t workers : {1u, 2u, 4u}) {
        DistParams params = baseParams(dir);
        params.workers = workers;
        const std::string name =
            "dist-" + std::to_string(workers) + ".jsonl";
        const DistSummary summary = runDist(dir, name, params);
        EXPECT_EQ(summary.ok, 4u) << workers << " workers";
        EXPECT_EQ(summary.failed, 0u);
        EXPECT_EQ(summary.degradedSynthesized, 0u);
        EXPECT_EQ(sortedLines((dir / name).string()), reference)
            << workers << " workers";
    }
}

// ---------------------------------------------------------------------
// Chaos matrix: SIGKILL at every seeded point recovers
// ---------------------------------------------------------------------

TEST_F(Dist, SigkillAtEveryChaosPointRecoversByteIdentical)
{
    const auto dir = scratchDir("chaos-kill");
    const std::vector<std::string> reference = referenceLines(dir);

    for (const std::string point :
         {"pre_lease", "mid_job", "pre_publish"}) {
        DistParams params = baseParams(dir);
        params.workers = 2;
        params.workerEnv.emplace_back("ZATEL_WORKER_KILL", point + ":1@0");
        const std::string name = "kill-" + point + ".jsonl";
        const DistSummary summary = runDist(dir, name, params);
        EXPECT_EQ(summary.ok, 4u) << point;
        EXPECT_EQ(summary.failed, 0u) << point;
        EXPECT_GE(summary.respawns, 1u) << point;
        EXPECT_EQ(sortedLines((dir / name).string()), reference) << point;
    }
}

TEST_F(Dist, SigkillMidJobCountsAShardReassignment)
{
    // The mid_job kill dies holding a lease, so recovery must go
    // through the reclaim path (the CI smoke greps the matching
    // zatel_dist_shard_reassignments_total metric).
    const auto dir = scratchDir("chaos-reassign");
    DistParams params = baseParams(dir);
    params.workers = 2;
    params.workerEnv.emplace_back("ZATEL_WORKER_KILL", "mid_job:1@0");
    const DistSummary summary = runDist(dir, "kill.jsonl", params);
    EXPECT_EQ(summary.ok, 4u);
    EXPECT_GE(summary.shardReassignments, 1u);
}

// ---------------------------------------------------------------------
// Fault matrix: transient faults at every dist site recover
// ---------------------------------------------------------------------

TEST_F(Dist, TransientFaultAtEveryDistSiteRecoversByteIdentical)
{
    const auto dir = scratchDir("fault-transient");
    const std::vector<std::string> reference = referenceLines(dir);

    // Worker-side sites arrive via the inherited ZATEL_FAULTS
    // environment; nth:1 is per worker process.
    for (const std::string site :
         {"dist.lease.write", "dist.fragment.write", "worker.heartbeat"}) {
        DistParams params = baseParams(dir);
        params.workers = 2;
        params.workerEnv.emplace_back("ZATEL_FAULTS", site + "=nth:1");
        const std::string name = "fault-" + site + ".jsonl";
        const DistSummary summary = runDist(dir, name, params);
        EXPECT_EQ(summary.ok, 4u) << site;
        EXPECT_EQ(summary.failed, 0u) << site;
        EXPECT_EQ(sortedLines((dir / name).string()), reference) << site;
    }

    // worker.spawn fires in the coordinator — this process.
    FaultRegistry::global().setPolicy("worker.spawn",
                                      FaultPolicy::nthHit(1));
    DistParams params = baseParams(dir);
    params.workers = 2;
    const DistSummary summary = runDist(dir, "fault-spawn.jsonl", params);
    EXPECT_EQ(summary.ok, 4u);
    EXPECT_GE(summary.spawnFailures, 1u);
    EXPECT_EQ(sortedLines((dir / "fault-spawn.jsonl").string()),
              reference);
}

// ---------------------------------------------------------------------
// Persistent faults: documented degradation, never a hung campaign
// ---------------------------------------------------------------------

TEST_F(Dist, PersistentSpawnFailureDegradesEveryJob)
{
    FaultRegistry::global().setPolicy("worker.spawn",
                                      FaultPolicy::always());
    const auto dir = scratchDir("spawn-always");
    DistParams params = baseParams(dir);
    params.workers = 2;
    const DistSummary summary = runDist(dir, "out.jsonl", params);
    EXPECT_EQ(summary.ok, 0u);
    EXPECT_EQ(summary.degraded, 4u);
    EXPECT_EQ(summary.degradedSynthesized, 4u);
    EXPECT_EQ(summary.failed, 0u);
    // Every row is present and degraded — a resumed run can still
    // retry them with --retry-degraded.
    EXPECT_EQ(sortedLines((dir / "out.jsonl").string()).size(), 4u);
}

TEST_F(Dist, PersistentLeaseWriteFaultDegradesEveryJob)
{
    const auto dir = scratchDir("lease-always");
    DistParams params = baseParams(dir);
    params.workers = 2;
    params.maxWorkerRespawns = 2; // claim I/O never succeeds; drain fast
    params.workerEnv.emplace_back("ZATEL_FAULTS",
                                  "dist.lease.write=always");
    const DistSummary summary = runDist(dir, "out.jsonl", params);
    EXPECT_EQ(summary.ok, 0u);
    EXPECT_EQ(summary.degraded, 4u);
    EXPECT_EQ(summary.failed, 0u);
}

TEST_F(Dist, PersistentFragmentWriteFaultSalvagesEveryRow)
{
    // Publishing never succeeds, but every row lands in the partial
    // fragments — the merge must salvage ALL of them as ok rows,
    // byte-identical to the reference (the strongest form of the
    // torn-fragment tolerance contract).
    const auto dir = scratchDir("frag-always");
    const std::vector<std::string> reference = referenceLines(dir);
    DistParams params = baseParams(dir);
    params.workers = 2;
    params.maxWorkerRespawns = 2;
    params.workerEnv.emplace_back("ZATEL_FAULTS",
                                  "dist.fragment.write=always");
    const DistSummary summary = runDist(dir, "out.jsonl", params);
    EXPECT_EQ(summary.ok, 4u);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_EQ(summary.degradedSynthesized, 0u);
    EXPECT_GE(summary.salvagedRows, 4u);
    EXPECT_EQ(sortedLines((dir / "out.jsonl").string()), reference);
}

TEST_F(Dist, PersistentHeartbeatFaultNeverFailsAJob)
{
    // Fenced workers abandon shards without publishing; partial
    // progress accrues across claimants. Whatever the interleaving,
    // no job may fail or vanish.
    const auto dir = scratchDir("heartbeat-always");
    DistParams params = baseParams(dir);
    params.workers = 2;
    params.workerEnv.emplace_back("ZATEL_FAULTS",
                                  "worker.heartbeat=always");
    const DistSummary summary = runDist(dir, "out.jsonl", params);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_EQ(summary.cancelled, 0u);
    EXPECT_EQ(summary.timedOut, 0u);
    EXPECT_EQ(summary.ok + summary.degraded, 4u);
}

// ---------------------------------------------------------------------
// Resume semantics: degraded rows are done unless retry is requested
// ---------------------------------------------------------------------

TEST_F(Dist, DegradedRowsResumeAsDoneAndRetryDegradedRerunsThem)
{
    // Run 1: no worker ever spawns -> all four rows degraded.
    FaultRegistry::global().setPolicy("worker.spawn",
                                      FaultPolicy::always());
    const auto dir = scratchDir("resume-degraded");
    const std::string path = (dir / "out.jsonl").string();
    runDist(dir, "out.jsonl", baseParams(dir));

    const std::set<std::string> done_default =
        service::ResultStore::completedJobIds(path);
    const std::set<std::string> done_retry =
        service::ResultStore::completedJobIds(
            path, /*degraded_as_done=*/false);
    EXPECT_EQ(done_default.size(), 4u);
    EXPECT_TRUE(done_retry.empty());

    FaultRegistry::global().resetForTest();

    // Resume without --retry-degraded: everything is already done.
    const DistSummary skipped = runDist(dir, "out.jsonl", baseParams(dir),
                                        /*append=*/true, done_default);
    EXPECT_EQ(skipped.skipped, 4u);
    EXPECT_EQ(skipped.mergedRows, 0u);

    // Resume WITH --retry-degraded semantics: all four re-execute ok.
    const DistSummary retried = runDist(dir, "out.jsonl", baseParams(dir),
                                        /*append=*/true, done_retry);
    EXPECT_EQ(retried.ok, 4u);
    EXPECT_EQ(retried.skipped, 0u);
}

// ---------------------------------------------------------------------
// Shared cache directory across workers
// ---------------------------------------------------------------------

TEST_F(Dist, SharedCacheDirBuildsEachPersistableArtifactOnce)
{
    // All four jobs share one heatmap. With the cross-process
    // single-flight claim, the two workers may at most build two scene
    // packs (memory-only, one each) plus ONE heatmap between them:
    // total misses <= 3. Without single-flight both workers would
    // build the heatmap (>= 4 misses).
    const auto dir = scratchDir("shared-cache");
    DistParams params = baseParams(dir);
    params.workers = 2;
    params.workerExtraArgs.push_back("--cache-dir");
    params.workerExtraArgs.push_back((dir / "cache").string());
    const DistSummary summary = runDist(dir, "out.jsonl", params);
    EXPECT_EQ(summary.ok, 4u);
    EXPECT_LE(summary.workerCacheTotals.misses, 3u);
    EXPECT_EQ(summary.workerCacheTotals.diskErrors, 0u);
}

#ifdef __unix__
TEST_F(Dist, TwoProcessCacheStressFindsNoCorruption)
{
    // Two zatel-worker --cache-stress processes hammer one cache
    // directory with a tiny disk budget and a near-zero eviction grace
    // window: eviction scans, single-flight claims and tmp+rename
    // publishes race constantly, and every artifact read back must be
    // intact (exit 0 from both).
    const auto dir = scratchDir("cache-stress");
    const std::string cache_dir = (dir / "cache").string();

    auto spawn = [&]() -> pid_t {
        const pid_t pid = ::fork();
        if (pid == 0) {
            ::execl(ZATEL_WORKER_BIN, ZATEL_WORKER_BIN, "--cache-stress",
                    cache_dir.c_str(), "--stress-iterations", "15",
                    "--stress-disk-budget", "16384",
                    static_cast<char *>(nullptr));
            _exit(127);
        }
        return pid;
    };
    const pid_t a = spawn();
    const pid_t b = spawn();
    ASSERT_GT(a, 0);
    ASSERT_GT(b, 0);
    for (const pid_t pid : {a, b}) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }
}
#endif

} // namespace
} // namespace zatel::dist
