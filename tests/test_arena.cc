// FrameArena reset/reuse lifecycle (docs/SIMULATOR.md, "Data layout of
// the hot path"): steady-state frames must not touch the heap.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/arena.hh"

namespace
{

using zatel::FrameArena;

TEST(FrameArena, AllocationsAreAlignedAndDisjoint)
{
    FrameArena arena(256);
    auto *a = arena.allocateSpan<uint64_t>(4);
    auto *b = arena.allocateSpan<uint32_t>(3);
    auto *c = arena.allocateSpan<uint8_t>(5);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(uint64_t), 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(uint32_t), 0u);
    // Writes to one span must not clobber another.
    for (int i = 0; i < 4; ++i)
        a[i] = 0xA1A1A1A1A1A1A1A1ull;
    for (int i = 0; i < 3; ++i)
        b[i] = 0xB2B2B2B2u;
    for (int i = 0; i < 5; ++i)
        c[i] = 0xC3;
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(a[i], 0xA1A1A1A1A1A1A1A1ull);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(b[i], 0xB2B2B2B2u);
}

TEST(FrameArena, ZeroCountReturnsNull)
{
    FrameArena arena;
    EXPECT_EQ(arena.allocateSpan<uint32_t>(0), nullptr);
    EXPECT_EQ(arena.bytesAllocated(), 0u);
}

TEST(FrameArena, OversizedAllocationGetsDedicatedBlock)
{
    FrameArena arena(64);
    auto *big = arena.allocateSpan<uint8_t>(1000);
    ASSERT_NE(big, nullptr);
    std::memset(big, 0x5A, 1000);
    EXPECT_GE(arena.bytesReserved(), 1000u);
}

TEST(FrameArena, ResetRetainsCapacityAndReusesBlocks)
{
    FrameArena arena(128);
    for (int i = 0; i < 10; ++i)
        arena.allocateSpan<uint64_t>(8);
    size_t reserved = arena.bytesReserved();
    size_t blocks = arena.blockCount();
    ASSERT_GT(blocks, 1u);

    // Re-running the identical frame after reset() must not grow the
    // arena: every block is reused in place.
    for (int frame = 0; frame < 5; ++frame) {
        arena.reset();
        EXPECT_EQ(arena.bytesAllocated(), 0u);
        for (int i = 0; i < 10; ++i) {
            auto *span = arena.allocateSpan<uint64_t>(8);
            ASSERT_NE(span, nullptr);
            span[0] = static_cast<uint64_t>(frame);
        }
        EXPECT_EQ(arena.bytesReserved(), reserved);
        EXPECT_EQ(arena.blockCount(), blocks);
    }
}

TEST(FrameArena, ResetThenFirstAllocationReusesFirstBlock)
{
    FrameArena arena(256);
    auto *first = arena.allocateSpan<uint32_t>(4);
    arena.reset();
    auto *again = arena.allocateSpan<uint32_t>(4);
    // Same block, same offset: the bump cursor rewound.
    EXPECT_EQ(first, again);
}

TEST(FrameArena, CopySpanPreservesContents)
{
    FrameArena arena;
    const uint32_t src[5] = {1, 2, 3, 4, 5};
    uint32_t *copy = arena.copySpan(src, 5);
    ASSERT_NE(copy, nullptr);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(copy[i], src[i]);
}

TEST(FrameArena, ReleaseReturnsMemory)
{
    FrameArena arena(128);
    arena.allocateSpan<uint64_t>(64);
    EXPECT_GT(arena.bytesReserved(), 0u);
    arena.release();
    EXPECT_EQ(arena.bytesReserved(), 0u);
    EXPECT_EQ(arena.blockCount(), 0u);
    // The arena stays usable after release().
    auto *span = arena.allocateSpan<uint16_t>(3);
    ASSERT_NE(span, nullptr);
}

TEST(FrameArena, MoveTransfersBlocksAndKeepsPointersValid)
{
    FrameArena arena(128);
    auto *span = arena.allocateSpan<uint64_t>(4);
    span[0] = 42;
    FrameArena moved = std::move(arena);
    EXPECT_EQ(span[0], 42u);
    EXPECT_GT(moved.bytesReserved(), 0u);
}

} // namespace
