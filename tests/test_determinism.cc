/**
 * @file
 * Determinism harness for the parallel prediction pipeline.
 *
 * Zatel's accuracy claim only holds if the K concurrent downscaled
 * simulator instances are bit-deterministic: the same scene + seed must
 * produce byte-identical per-group GpuStats and combined predictions no
 * matter how many worker threads execute step (6). These tests run the
 * full ZatelPredictor::predict() at threads=1 vs threads=N for two seeds
 * x two scenes and compare results bit-for-bit (doubles compared by bit
 * pattern, not tolerance). Wall-clock fields are the only sanctioned
 * nondeterminism and are excluded.
 *
 * Run under the tsan preset this doubles as the pipeline's race detector
 * (see docs/CORRECTNESS.md).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "gpusim/config.hh"
#include "gpusim/stats.hh"
#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "zatel/predictor.hh"

namespace zatel::core
{
namespace
{

using gpusim::GpuConfig;
using gpusim::GpuStats;
using gpusim::Metric;

/** Bit pattern of a double; NaN-safe and distinguishes -0.0 from 0.0. */
uint64_t
bitsOf(double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/** Expect every raw counter of two GpuStats to be identical. */
void
expectStatsIdentical(const GpuStats &a, const GpuStats &b,
                     const std::string &context)
{
#define ZATEL_EXPECT_COUNTER(field)                                         \
    EXPECT_EQ(a.field, b.field) << context << ": counter " #field " diverged"
    ZATEL_EXPECT_COUNTER(cycles);
    ZATEL_EXPECT_COUNTER(threadInstructions);
    ZATEL_EXPECT_COUNTER(warpInstructions);
    ZATEL_EXPECT_COUNTER(l1dAccesses);
    ZATEL_EXPECT_COUNTER(l1dMisses);
    ZATEL_EXPECT_COUNTER(l2Accesses);
    ZATEL_EXPECT_COUNTER(l2Misses);
    ZATEL_EXPECT_COUNTER(rtActiveRaySum);
    ZATEL_EXPECT_COUNTER(rtResidentWarpCycles);
    ZATEL_EXPECT_COUNTER(rtNodeVisits);
    ZATEL_EXPECT_COUNTER(rtTriangleTests);
    ZATEL_EXPECT_COUNTER(dramBusyCycles);
    ZATEL_EXPECT_COUNTER(dramActiveCycles);
    ZATEL_EXPECT_COUNTER(dramChannelCycles);
    ZATEL_EXPECT_COUNTER(dramBytesRead);
    ZATEL_EXPECT_COUNTER(dramBytesWritten);
    ZATEL_EXPECT_COUNTER(warpsLaunched);
    ZATEL_EXPECT_COUNTER(raysTraced);
    ZATEL_EXPECT_COUNTER(pixelsTraced);
    ZATEL_EXPECT_COUNTER(pixelsFiltered);
#undef ZATEL_EXPECT_COUNTER
}

/**
 * Expect two full pipeline results to be byte-identical everywhere the
 * determinism contract covers (everything except wall-clock seconds).
 */
void
expectResultsIdentical(const ZatelResult &a, const ZatelResult &b,
                       const std::string &context)
{
    EXPECT_EQ(a.k, b.k) << context;
    EXPECT_EQ(bitsOf(a.fractionTraced), bitsOf(b.fractionTraced)) << context;

    ASSERT_EQ(a.groups.size(), b.groups.size()) << context;
    for (size_t g = 0; g < a.groups.size(); ++g) {
        const GroupResult &ga = a.groups[g];
        const GroupResult &gb = b.groups[g];
        const std::string where = context + ", group " + std::to_string(g);
        EXPECT_EQ(ga.groupIndex, gb.groupIndex) << where;
        EXPECT_EQ(ga.pixels, gb.pixels) << where;
        EXPECT_EQ(ga.selectedPixels, gb.selectedPixels) << where;
        EXPECT_EQ(bitsOf(ga.fractionTraced), bitsOf(gb.fractionTraced))
            << where;
        expectStatsIdentical(ga.stats, gb.stats, where);
        ASSERT_EQ(ga.extrapolated.size(), gb.extrapolated.size()) << where;
        for (size_t m = 0; m < ga.extrapolated.size(); ++m) {
            EXPECT_EQ(bitsOf(ga.extrapolated[m]), bitsOf(gb.extrapolated[m]))
                << where << ", extrapolated metric " << m;
        }
    }

    ASSERT_EQ(a.predicted.size(), b.predicted.size()) << context;
    for (Metric metric : gpusim::allMetrics()) {
        ASSERT_TRUE(a.predicted.count(metric)) << context;
        ASSERT_TRUE(b.predicted.count(metric)) << context;
        EXPECT_EQ(bitsOf(a.predicted.at(metric)),
                  bitsOf(b.predicted.at(metric)))
            << context << ": prediction for " << gpusim::metricName(metric)
            << " diverged";
    }
}

ZatelResult
runOnce(const rt::Scene &scene, const rt::Bvh &bvh, uint64_t seed,
        uint32_t num_threads)
{
    ZatelParams params;
    params.width = 48;
    params.height = 48;
    params.seed = seed;
    params.numThreads = num_threads;
    ZatelPredictor predictor(scene, bvh, GpuConfig::mobileSoc(), params);
    return predictor.predict();
}

struct Workload
{
    rt::SceneId id;
    uint64_t seed;
};

class DeterminismTest : public testing::TestWithParam<Workload>
{
};

TEST_P(DeterminismTest, SingleVsMultiThreadedByteIdentical)
{
    const Workload workload = GetParam();
    rt::Scene scene = rt::buildScene(workload.id, rt::SceneDetail{0.4f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());

    ZatelResult serial = runOnce(scene, bvh, workload.seed, 1);
    ZatelResult parallel = runOnce(scene, bvh, workload.seed, 4);

    const std::string context = std::string(rt::sceneName(workload.id)) +
                                " seed=" + std::to_string(workload.seed);
    expectResultsIdentical(serial, parallel, context);
}

TEST_P(DeterminismTest, RepeatedParallelRunsByteIdentical)
{
    const Workload workload = GetParam();
    rt::Scene scene = rt::buildScene(workload.id, rt::SceneDetail{0.4f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());

    // Two independent multi-threaded runs must also agree: scheduling
    // order may differ between them, results must not.
    ZatelResult first = runOnce(scene, bvh, workload.seed, 4);
    ZatelResult second = runOnce(scene, bvh, workload.seed, 4);

    const std::string context = std::string(rt::sceneName(workload.id)) +
                                " seed=" + std::to_string(workload.seed) +
                                " (repeat)";
    expectResultsIdentical(first, second, context);
}

// Two seeds x two scenes, as the determinism contract requires: one warm
// mixed-heat scene (WKND) and one early-terminating underutilizer (SPRNG),
// the two extremes Section IV-D contrasts.
INSTANTIATE_TEST_SUITE_P(
    SeedsTimesScenes, DeterminismTest,
    testing::Values(Workload{rt::SceneId::Wknd, 0x2A7E1},
                    Workload{rt::SceneId::Wknd, 0xDECAF},
                    Workload{rt::SceneId::Sprng, 0x2A7E1},
                    Workload{rt::SceneId::Sprng, 0xDECAF}),
    [](const testing::TestParamInfo<Workload> &info) {
        return std::string(rt::sceneName(info.param.id)) + "_seed" +
               std::to_string(info.param.seed);
    });

// Regression-extrapolation mode exercises the per-fraction reselection
// path inside the parallel region; cover it for one scene x both seeds.
TEST(DeterminismRegressionMode, SingleVsMultiThreadedByteIdentical)
{
    rt::Scene scene = rt::buildScene(rt::SceneId::Wknd, rt::SceneDetail{0.4f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());

    for (uint64_t seed : {0x2A7E1ull, 0xDECAFull}) {
        ZatelParams params;
        params.width = 48;
        params.height = 48;
        params.seed = seed;
        params.extrapolation = ExtrapolationMethod::ExponentialRegression;

        params.numThreads = 1;
        ZatelResult serial =
            ZatelPredictor(scene, bvh, GpuConfig::mobileSoc(), params)
                .predict();
        params.numThreads = 4;
        ZatelResult parallel =
            ZatelPredictor(scene, bvh, GpuConfig::mobileSoc(), params)
                .predict();
        expectResultsIdentical(serial, parallel,
                               "regression seed=" + std::to_string(seed));
    }
}

} // namespace
} // namespace zatel::core
