/**
 * @file
 * Focused tests for the RT accelerator unit, driven through a real SM +
 * memory system with hand-built workloads.
 */

#include <gtest/gtest.h>

#include "gpusim/gpu.hh"
#include "rt/bvh.hh"
#include "rt/mesh.hh"
#include "rt/scene.hh"
#include "rt/tracer.hh"
#include "util/rng.hh"

namespace zatel::gpusim
{
namespace
{

/** A scene with deep traversal so RT-unit behaviour is visible. */
struct RtUnitFixture : public testing::Test
{
    void
    SetUp() override
    {
        scene.setCamera(rt::Camera({0.0f, 0.0f, 14.0f}, {0.0f, 0.0f, 0.0f},
                                   {0.0f, 1.0f, 0.0f}, 50.0f));
        scene.setLight({{6.0f, 10.0f, 6.0f}, {1.0f, 1.0f, 1.0f}});
        uint16_t mat =
            scene.addMaterial(rt::Material::diffuse({0.5f, 0.5f, 0.5f}));
        Rng rng(5);
        rt::MeshBuilder mesh;
        mesh.addTriangleSoup(rng, {0.0f, 0.0f, 0.0f}, 6.0f, 1500, 0.5f,
                             mat);
        scene.addTriangles(mesh.takeTriangles());
        bvh.build(scene.triangles());
        tracer = std::make_unique<rt::Tracer>(scene, bvh);

        config = GpuConfig::mobileSoc();
        config.numSms = 1;
        config.numMemPartitions = 1;
        config.l2TotalBytes = 256 * 1024;
    }

    GpuStats
    run(uint32_t res)
    {
        SimWorkload workload =
            SimWorkload::buildFullFrame(*tracer, res, res);
        Gpu gpu(config, workload);
        return gpu.run();
    }

    rt::Scene scene{"rt-unit"};
    rt::Bvh bvh;
    std::unique_ptr<rt::Tracer> tracer;
    GpuConfig config;
};

TEST_F(RtUnitFixture, EfficiencyWithinWarpWidth)
{
    GpuStats stats = run(16);
    EXPECT_GT(stats.rtEfficiency(), 0.0);
    EXPECT_LE(stats.rtEfficiency(), config.warpSize);
}

TEST_F(RtUnitFixture, VisitThroughputBoundsCycles)
{
    GpuStats stats = run(16);
    // One RT unit at rtVisitsPerCycle visits/cycle lower-bounds cycles.
    uint64_t min_cycles = stats.rtNodeVisits / config.rtVisitsPerCycle;
    EXPECT_GE(stats.cycles, min_cycles);
}

TEST_F(RtUnitFixture, WiderUnitIsFaster)
{
    // 1 visit/cycle makes the RT unit the hard bottleneck, so widening
    // it must pay off. (Default-width vs 16 is NOT a robust trend here:
    // this 1-SM/1-partition config is memory-bound at 4+ visits/cycle
    // and the sign of the delta flips with fill-delivery microtiming.)
    config.rtVisitsPerCycle = 1;
    GpuStats narrow = run(24);
    config.rtVisitsPerCycle = 16;
    GpuStats wide = run(24);
    EXPECT_LT(wide.cycles, narrow.cycles);
    // Same functional work either way.
    EXPECT_EQ(wide.rtNodeVisits, narrow.rtNodeVisits);
}

TEST_F(RtUnitFixture, MoreResidentWarpsIsFasterWhenLatencyBound)
{
    // With a single resident warp the unit is latency-bound; allowing
    // 8 concurrent warps hides memory latency.
    config.rtMaxWarps = 1;
    GpuStats serial = run(24);
    config.rtMaxWarps = 8;
    GpuStats parallel = run(24);
    EXPECT_LT(parallel.cycles, serial.cycles);
}

TEST_F(RtUnitFixture, TinyMshrStillCompletes)
{
    config.rtMshrSize = 2;
    GpuStats stats = run(12);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.rtNodeVisits, 0u);
}

TEST_F(RtUnitFixture, SmallerMshrIsNotFaster)
{
    config.rtMshrSize = 2;
    GpuStats small = run(16);
    config.rtMshrSize = 64;
    GpuStats big = run(16);
    EXPECT_LE(big.cycles, small.cycles);
}

TEST_F(RtUnitFixture, SlowMemoryStretchesExecution)
{
    GpuStats fast = run(16);
    config.dramLatencyCycles = 2000;
    config.l2LatencyCycles = 600;
    GpuStats slow = run(16);
    EXPECT_GT(slow.cycles, fast.cycles);
    EXPECT_EQ(slow.rtNodeVisits, fast.rtNodeVisits);
}

TEST_F(RtUnitFixture, L1SizeAffectsMissRate)
{
    GpuStats big_l1 = run(24);
    config.l1dSizeBytes = 2 * 1024; // 16 lines
    GpuStats small_l1 = run(24);
    EXPECT_GT(small_l1.l1dMissRate(), big_l1.l1dMissRate());
}

TEST_F(RtUnitFixture, TriangleStreamingGeneratesTraffic)
{
    GpuStats stats = run(16);
    // Leaf visits stream triangle lines: L1 accesses exceed pure node
    // fetch counts.
    EXPECT_GT(stats.l1dAccesses, stats.rtNodeVisits);
    EXPECT_GT(stats.rtTriangleTests, 0u);
}

} // namespace
} // namespace zatel::gpusim
