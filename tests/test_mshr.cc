/**
 * @file
 * Tests for the MSHR table.
 */

#include <gtest/gtest.h>

#include "gpusim/mshr.hh"

namespace zatel::gpusim
{
namespace
{

TEST(Mshr, AllocateThenMerge)
{
    MshrTable mshr(4);
    EXPECT_EQ(mshr.request(0x1000, 1), MshrTable::Outcome::Allocated);
    EXPECT_EQ(mshr.request(0x1000, 2), MshrTable::Outcome::Merged);
    EXPECT_EQ(mshr.occupancy(), 1u);
    EXPECT_TRUE(mshr.pending(0x1000));
    EXPECT_FALSE(mshr.pending(0x2000));
}

TEST(Mshr, FullRejects)
{
    MshrTable mshr(2);
    EXPECT_EQ(mshr.request(0x1000, 1), MshrTable::Outcome::Allocated);
    EXPECT_EQ(mshr.request(0x2000, 2), MshrTable::Outcome::Allocated);
    EXPECT_TRUE(mshr.full());
    EXPECT_EQ(mshr.request(0x3000, 3), MshrTable::Outcome::Full);
    // Merging into an existing entry still works when full.
    EXPECT_EQ(mshr.request(0x1000, 4), MshrTable::Outcome::Merged);
    EXPECT_EQ(mshr.stats().fullStalls, 1u);
}

TEST(Mshr, FillReturnsWaitersInOrder)
{
    MshrTable mshr(4);
    mshr.request(0x1000, 10);
    mshr.request(0x1000, 20);
    mshr.request(0x1000, 30);
    std::vector<uint64_t> waiters = mshr.fill(0x1000);
    ASSERT_EQ(waiters.size(), 3u);
    EXPECT_EQ(waiters[0], 10u);
    EXPECT_EQ(waiters[1], 20u);
    EXPECT_EQ(waiters[2], 30u);
    EXPECT_EQ(mshr.occupancy(), 0u);
    EXPECT_FALSE(mshr.pending(0x1000));
}

TEST(Mshr, FillUnknownLineIsEmpty)
{
    MshrTable mshr(4);
    EXPECT_TRUE(mshr.fill(0xDEAD).empty());
}

TEST(Mshr, ReallocAfterFill)
{
    MshrTable mshr(1);
    EXPECT_EQ(mshr.request(0x1000, 1), MshrTable::Outcome::Allocated);
    EXPECT_EQ(mshr.request(0x2000, 2), MshrTable::Outcome::Full);
    mshr.fill(0x1000);
    EXPECT_EQ(mshr.request(0x2000, 2), MshrTable::Outcome::Allocated);
}

TEST(Mshr, StatsCount)
{
    MshrTable mshr(8);
    mshr.request(0x100, 1);
    mshr.request(0x100, 2);
    mshr.request(0x200, 3);
    EXPECT_EQ(mshr.stats().allocations, 2u);
    EXPECT_EQ(mshr.stats().merges, 1u);
}

} // namespace
} // namespace zatel::gpusim
