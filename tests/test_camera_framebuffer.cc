/**
 * @file
 * Unit tests for the pinhole camera and framebuffer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "rt/camera.hh"
#include "rt/framebuffer.hh"

namespace zatel::rt
{
namespace
{

TEST(Camera, CenterRayPointsForward)
{
    Camera cam({0.0f, 0.0f, 10.0f}, {0.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f},
               60.0f);
    // Ray through the exact image center.
    Ray ray = cam.generateRay(50, 50, 101, 101);
    EXPECT_NEAR(ray.direction.x, 0.0f, 1e-4f);
    EXPECT_NEAR(ray.direction.y, 0.0f, 1e-4f);
    EXPECT_NEAR(ray.direction.z, -1.0f, 1e-4f);
    EXPECT_EQ(ray.origin, cam.position());
}

TEST(Camera, TopLeftIsUpAndLeft)
{
    Camera cam({0.0f, 0.0f, 10.0f}, {0.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f},
               60.0f);
    Ray ray = cam.generateRay(0, 0, 100, 100);
    EXPECT_LT(ray.direction.x, 0.0f); // left
    EXPECT_GT(ray.direction.y, 0.0f); // up
}

TEST(Camera, RaysAreNormalized)
{
    Camera cam({1.0f, 2.0f, 3.0f}, {-4.0f, 0.0f, -2.0f}, {0.0f, 1.0f, 0.0f},
               45.0f);
    for (uint32_t y : {0u, 31u, 63u}) {
        for (uint32_t x : {0u, 31u, 63u}) {
            Ray ray = cam.generateRay(x, y, 64, 64);
            EXPECT_NEAR(length(ray.direction), 1.0f, 1e-5f);
        }
    }
}

TEST(Camera, JitterMovesRay)
{
    Camera cam({0.0f, 0.0f, 10.0f}, {0.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f},
               60.0f);
    Ray a = cam.generateRay(10, 10, 64, 64, 0.1f, 0.1f);
    Ray b = cam.generateRay(10, 10, 64, 64, 0.9f, 0.9f);
    EXPECT_GT(length(a.direction - b.direction), 1e-4f);
}

TEST(Camera, AspectRatioWidensX)
{
    Camera cam({0.0f, 0.0f, 10.0f}, {0.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f},
               60.0f);
    // On a 2:1 image, the leftmost ray leans further in x than the
    // topmost ray leans in y.
    Ray left = cam.generateRay(0, 50, 200, 100);
    Ray top = cam.generateRay(100, 0, 200, 100);
    EXPECT_GT(std::abs(left.direction.x), std::abs(top.direction.y));
}

TEST(FrameBuffer, SetGet)
{
    FrameBuffer fb(4, 3);
    EXPECT_EQ(fb.width(), 4u);
    EXPECT_EQ(fb.height(), 3u);
    EXPECT_EQ(fb.pixelCount(), 12u);
    fb.set(2, 1, {0.5f, 0.25f, 1.0f});
    EXPECT_EQ(fb.at(2, 1), Vec3(0.5f, 0.25f, 1.0f));
    EXPECT_EQ(fb.at(0, 0), Vec3(0.0f, 0.0f, 0.0f));
}

TEST(FrameBuffer, PpmWriteAndHeader)
{
    FrameBuffer fb(2, 2);
    fb.set(0, 0, {1.0f, 0.0f, 0.0f});
    std::string path = testing::TempDir() + "/zatel_fb_test.ppm";
    ASSERT_TRUE(fb.writePpm(path));

    std::ifstream in(path, std::ios::binary);
    std::string magic;
    in >> magic;
    EXPECT_EQ(magic, "P6");
    int w = 0, h = 0, maxval = 0;
    in >> w >> h >> maxval;
    EXPECT_EQ(w, 2);
    EXPECT_EQ(h, 2);
    EXPECT_EQ(maxval, 255);
    in.get(); // single whitespace after header
    char rgb[3];
    in.read(rgb, 3);
    EXPECT_EQ(static_cast<unsigned char>(rgb[0]), 255);
    EXPECT_EQ(static_cast<unsigned char>(rgb[1]), 0);
    std::remove(path.c_str());
}

TEST(FrameBuffer, PpmClampsOutOfRange)
{
    FrameBuffer fb(1, 1);
    fb.set(0, 0, {5.0f, -2.0f, 0.5f});
    std::string path = testing::TempDir() + "/zatel_fb_clamp.ppm";
    ASSERT_TRUE(fb.writePpm(path, 1.0f));
    std::ifstream in(path, std::ios::binary);
    std::string line;
    std::getline(in, line); // P6
    std::getline(in, line); // dims
    std::getline(in, line); // maxval
    char rgb[3];
    in.read(rgb, 3);
    EXPECT_EQ(static_cast<unsigned char>(rgb[0]), 255);
    EXPECT_EQ(static_cast<unsigned char>(rgb[1]), 0);
    EXPECT_EQ(static_cast<unsigned char>(rgb[2]), 128);
    std::remove(path.c_str());
}

} // namespace
} // namespace zatel::rt
