/**
 * @file
 * Tests for GPU downscaling (paper Section III-C).
 */

#include <gtest/gtest.h>

#include "zatel/downscale.hh"

namespace zatel::core
{
namespace
{

using gpusim::GpuConfig;

TEST(Downscale, FactorIsGcd)
{
    EXPECT_EQ(downscaleFactor(GpuConfig::mobileSoc()), 4u);
    EXPECT_EQ(downscaleFactor(GpuConfig::rtx2060()), 6u);

    GpuConfig paper_example = GpuConfig::rtx2060();
    paper_example.numSms = 80;
    paper_example.numMemPartitions = 10;
    EXPECT_EQ(downscaleFactor(paper_example), 10u);
}

TEST(Downscale, PaperExampleEightyToEight)
{
    // Section III-C: 80 SMs + 10 MCs at K=10 -> 8 SMs + 1 partition.
    GpuConfig config = GpuConfig::rtx2060();
    config.numSms = 80;
    config.numMemPartitions = 10;
    GpuConfig scaled = downscaleConfig(config, 10);
    EXPECT_EQ(scaled.numSms, 8u);
    EXPECT_EQ(scaled.numMemPartitions, 1u);
}

TEST(Downscale, SharedResourcesScaleAutomatically)
{
    GpuConfig config = GpuConfig::rtx2060();
    GpuConfig scaled = downscaleConfig(config, 6);
    EXPECT_EQ(scaled.numSms, 5u);
    EXPECT_EQ(scaled.numMemPartitions, 2u);
    // L2 slice capacity is preserved, so total LLC shrinks by K.
    EXPECT_EQ(scaled.l2SliceBytes(), config.l2SliceBytes());
    EXPECT_EQ(scaled.l2TotalBytes, config.l2TotalBytes / 6);
    // Peak DRAM bandwidth per channel unchanged; channel count shrank.
    EXPECT_DOUBLE_EQ(scaled.dramBytesPerCoreCycle(),
                     config.dramBytesPerCoreCycle());
}

TEST(Downscale, PerSmResourcesUntouched)
{
    GpuConfig config = GpuConfig::mobileSoc();
    GpuConfig scaled = downscaleConfig(config, 4);
    EXPECT_EQ(scaled.l1dSizeBytes, config.l1dSizeBytes);
    EXPECT_EQ(scaled.registersPerSm, config.registersPerSm);
    EXPECT_EQ(scaled.rtMaxWarps, config.rtMaxWarps);
    EXPECT_EQ(scaled.maxWarpsPerSm, config.maxWarpsPerSm);
}

TEST(Downscale, FactorOneIsIdentity)
{
    GpuConfig config = GpuConfig::mobileSoc();
    GpuConfig scaled = downscaleConfig(config, 1);
    EXPECT_EQ(scaled.numSms, config.numSms);
    EXPECT_EQ(scaled.numMemPartitions, config.numMemPartitions);
    EXPECT_EQ(scaled.l2TotalBytes, config.l2TotalBytes);
}

TEST(Downscale, IntermediateFactorsWork)
{
    // Sweeping K in {2, 4} on the Mobile SoC (Section IV-E).
    GpuConfig config = GpuConfig::mobileSoc();
    GpuConfig k2 = downscaleConfig(config, 2);
    EXPECT_EQ(k2.numSms, 4u);
    EXPECT_EQ(k2.numMemPartitions, 2u);
    GpuConfig k4 = downscaleConfig(config, 4);
    EXPECT_EQ(k4.numSms, 2u);
    EXPECT_EQ(k4.numMemPartitions, 1u);
}

TEST(Downscale, RejectsNonDividingFactor)
{
    GpuConfig config = GpuConfig::mobileSoc(); // 8 SMs, 4 partitions
    EXPECT_EXIT(downscaleConfig(config, 3), testing::ExitedWithCode(1),
                "does not divide");
    EXPECT_EXIT(downscaleConfig(config, 0), testing::ExitedWithCode(1),
                "factor");
}

TEST(Downscale, NameTracksFactor)
{
    GpuConfig scaled = downscaleConfig(GpuConfig::rtx2060(), 6);
    EXPECT_NE(scaled.name.find("K6"), std::string::npos);
}

} // namespace
} // namespace zatel::core
