/**
 * @file
 * Race/stress harness for ThreadPool, sized to light up under TSan.
 *
 * The pool fans out the K concurrent downscaled simulator instances
 * (ZatelPredictor step 6); a data race or lost wakeup here silently
 * breaks the paper's determinism contract. These tests hammer the
 * documented edge cases: submission racing shutdown, exception-carrying
 * tasks, nested parallelFor from inside pool tasks (including a
 * single-worker pool, which deadlocks without work-helping), chunked
 * submission, and waitAll racing concurrent submitters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

namespace zatel
{
namespace
{

TEST(ThreadPoolStress, SubmitDuringShutdownThrowsInsteadOfHanging)
{
    // Tasks keep submitting follow-up work while the pool is destroyed.
    // Every submit must either be accepted (and run) or throw; none may
    // enqueue a task that never runs (its future would hang forever).
    std::atomic<int> executed{0};
    std::atomic<int> rejected{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 64; ++i) {
            pool.submit([&pool, &executed, &rejected] {
                ++executed;
                try {
                    pool.submit([&executed] { ++executed; });
                } catch (const std::runtime_error &) {
                    ++rejected;
                }
            });
        }
        // Destructor races the nested submits.
    }
    // All accepted tasks ran: 64 outer + every nested one not rejected.
    EXPECT_EQ(executed.load(), 64 + (64 - rejected.load()));
}

TEST(ThreadPoolStress, SubmitAfterShutdownUnblocksWaiters)
{
    ThreadPool pool(2);
    // A plain reference check: futures of accepted tasks become ready
    // even when the pool is being torn down immediately afterwards.
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([] {}));
    for (auto &future : futures)
        EXPECT_NO_THROW(future.get());
}

TEST(ThreadPoolStress, ExceptionCarryingTasksDoNotPoisonThePool)
{
    ThreadPool pool(3);
    std::atomic<int> succeeded{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i) {
        futures.push_back(pool.submit([i, &succeeded] {
            if (i % 3 == 0)
                throw std::runtime_error("task failure");
            ++succeeded;
        }));
    }
    int threw = 0;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (const std::runtime_error &) {
            ++threw;
        }
    }
    EXPECT_EQ(threw, 67); // ceil(200/3)
    EXPECT_EQ(succeeded.load(), 133);
    // The pool still works after carrying 67 exceptions.
    std::atomic<int> after{0};
    pool.parallelFor(10, [&after](size_t) { ++after; });
    EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPoolStress, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    pool.parallelFor(8, [&pool, &inner_total](size_t) {
        // Each outer task fans out again on the same pool; without
        // work-helping this deadlocks once all workers block in get().
        pool.parallelFor(16, [&inner_total](size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPoolStress, NestedParallelForSingleWorkerPool)
{
    // The pathological case: one worker, nested three levels deep. Only
    // caller work-helping can make progress here.
    ThreadPool pool(1);
    std::atomic<int> leaf{0};
    pool.parallelFor(3, [&pool, &leaf](size_t) {
        pool.parallelFor(3, [&pool, &leaf](size_t) {
            pool.parallelFor(3, [&leaf](size_t) { ++leaf; });
        });
    });
    EXPECT_EQ(leaf.load(), 27);
}

TEST(ThreadPoolStress, NestedExceptionPropagatesThroughBothLevels)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(4,
                         [&pool](size_t outer) {
                             pool.parallelFor(4, [outer](size_t inner) {
                                 if (outer == 2 && inner == 3)
                                     throw std::runtime_error("nested");
                             });
                         }),
        std::runtime_error);
    // Pool is still usable.
    std::atomic<int> count{0};
    pool.parallelFor(5, [&count](size_t) { ++count; });
    EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPoolStress, ParallelForChunkedCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    for (size_t grain : {size_t{1}, size_t{3}, size_t{7}, size_t{64},
                         size_t{1000}, size_t{0} /* auto */}) {
        std::vector<std::atomic<int>> hits(257);
        pool.parallelForChunked(hits.size(), grain,
                                [&hits](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "index " << i << " grain " << grain;
    }
}

TEST(ThreadPoolStress, ParallelForChunkedSubmitsBoundedTaskCount)
{
    ThreadPool pool(2);
    // grain 100 over 1000 indices = 10 chunks; count distinct executing
    // bursts via a side counter incremented once per chunk start.
    std::atomic<int> chunk_starts{0};
    std::atomic<size_t> last_index{0};
    pool.parallelForChunked(1000, 100, [&](size_t i) {
        if (i % 100 == 0)
            ++chunk_starts;
        last_index = i;
    });
    EXPECT_EQ(chunk_starts.load(), 10);
}

TEST(ThreadPoolStress, WaitAllRacesConcurrentSubmitters)
{
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    std::vector<std::thread> submitters;
    submitters.reserve(4);
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&pool, &executed] {
            for (int i = 0; i < 250; ++i)
                pool.submit([&executed] { ++executed; });
        });
    }
    for (auto &thread : submitters)
        thread.join();
    pool.waitAll();
    EXPECT_EQ(executed.load(), 1000);
}

TEST(ThreadPoolStress, ManyConcurrentParallelForsFromExternalThreads)
{
    // Several external threads each drive their own parallelFor on one
    // shared pool; chunk bookkeeping must not cross-talk.
    ThreadPool pool(4);
    std::vector<std::atomic<int>> totals(6);
    std::vector<std::thread> drivers;
    drivers.reserve(totals.size());
    for (size_t t = 0; t < totals.size(); ++t) {
        drivers.emplace_back([&pool, &totals, t] {
            pool.parallelFor(100, [&totals, t](size_t) { ++totals[t]; });
        });
    }
    for (auto &thread : drivers)
        thread.join();
    for (size_t t = 0; t < totals.size(); ++t)
        EXPECT_EQ(totals[t].load(), 100) << "driver " << t;
}

TEST(ThreadPoolStress, RapidConstructDestroyCycles)
{
    // Shutdown handshake torture: pools die while workers are starting.
    for (int cycle = 0; cycle < 50; ++cycle) {
        ThreadPool pool(3);
        std::atomic<int> ran{0};
        for (int i = 0; i < 8; ++i)
            pool.submit([&ran] { ++ran; });
        // Destructor drains; futures intentionally dropped.
    }
    SUCCEED();
}

TEST(ThreadPoolStress, ParallelForChunkedDrainsEveryIndexWhenOneBodyThrows)
{
    // One throwing chunk must not abandon the rest of the iteration
    // space: every other index still runs, and the first exception is
    // rethrown only after all chunks finished (docs/ROBUSTNESS.md — a
    // partially executed parallel loop would be a silently wrong
    // number).
    ThreadPool pool(3);
    constexpr size_t kCount = 97;
    std::vector<std::atomic<int>> ran(kCount);
    bool threw = false;
    try {
        pool.parallelForChunked(kCount, 1, [&ran](size_t i) {
            if (i == 7)
                throw std::runtime_error("body failure");
            ran[i].fetch_add(1, std::memory_order_relaxed);
        });
    } catch (const std::runtime_error &error) {
        threw = true;
        EXPECT_STREQ(error.what(), "body failure");
    }
    EXPECT_TRUE(threw);
    for (size_t i = 0; i < kCount; ++i) {
        if (i == 7)
            continue;
        EXPECT_EQ(ran[i].load(), 1) << "index " << i << " did not run";
    }
    // The pool survives: a later loop completes normally.
    std::atomic<int> after{0};
    pool.parallelFor(16, [&after](size_t) { ++after; });
    EXPECT_EQ(after.load(), 16);
}

TEST(ThreadPoolStress, ManyThrowingBodiesPropagateExactlyOneException)
{
    // Several chunks throw concurrently; exactly one exception surfaces
    // per loop and the join never hangs on the other throwers.
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    int caught = 0;
    for (int round = 0; round < 20; ++round) {
        try {
            // grain 1: each index is its own chunk, so a throwing index
            // cannot shadow later indices of the same chunk.
            pool.parallelForChunked(64, 1, [&ran](size_t i) {
                ++ran;
                if (i % 5 == 0)
                    throw std::runtime_error("multi failure");
            });
        } catch (const std::runtime_error &) {
            ++caught;
        }
    }
    EXPECT_EQ(caught, 20);
    EXPECT_EQ(ran.load(), 20 * 64)
        << "a throwing chunk must not skip other chunks";
    EXPECT_EQ(pool.queueDepth(), 0u);
}

TEST(ThreadPoolStress, ThrowingTasksNeverWedgeWaitAll)
{
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    futures.reserve(50);
    for (int i = 0; i < 50; ++i) {
        futures.push_back(
            pool.submit([] { throw std::runtime_error("always"); }));
    }
    // waitAll must return even though every task threw: exceptions are
    // parked in the futures, never allowed to unwind a worker.
    pool.waitAll();
    EXPECT_EQ(pool.activeWorkers(), 0u);
    for (auto &future : futures)
        EXPECT_THROW(future.get(), std::runtime_error);
    // All workers are still alive afterwards.
    std::atomic<int> after{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&after] { ++after; });
    pool.waitAll();
    EXPECT_EQ(after.load(), 8);
}

} // namespace
} // namespace zatel
