/**
 * @file
 * End-to-end tests for the zatel-serve daemon (docs/SERVING.md): a real
 * PredictionServer bound to an ephemeral loopback port, driven by raw
 * POSIX-socket clients. The acceptance contract:
 *
 *  - two identical concurrent requests run exactly ONE simulation and
 *    receive byte-identical bodies (single-flight coalescing)
 *  - requests beyond the admission queue bound are shed with 503
 *    without affecting accepted requests
 *  - a request past its deadline answers 504; the daemon lives on
 *  - every serve.* fault site degrades exactly one request to a 5xx
 *    and never kills the daemon (docs/ROBUSTNESS.md)
 *  - stop() drains gracefully: in-flight requests finish, the listener
 *    closes, a second stop() is a no-op
 *
 * The ServeConcurrency suite doubles as the TSan target for the serve
 * layer (tsan-determinism preset).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hh"
#include "service/artifact_cache.hh"
#include "util/fault_injection.hh"

namespace zatel::serve
{
namespace
{

constexpr uint64_t kCacheBudget = 256ull * 1024 * 1024;

/** The small fast recipe every test uses (32x32 PARK, low density). */
const char kRecipe[] =
    "{\"scene\":\"PARK\",\"detail\":0.3,\"res\":32,\"fraction\":0.2}";

int
connectTo(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &bytes)
{
    size_t offset = 0;
    while (offset < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + offset,
                                 bytes.size() - offset, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        offset += static_cast<size_t>(n);
    }
    return true;
}

/** Read until the server closes (Connection: close framing). */
std::string
readAll(int fd)
{
    std::string out;
    char buffer[4096];
    while (true) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
            break;
        out.append(buffer, static_cast<size_t>(n));
    }
    return out;
}

/** One full request/response exchange; empty string on connect error. */
std::string
exchange(uint16_t port, const std::string &rawRequest)
{
    const int fd = connectTo(port);
    if (fd < 0)
        return "";
    std::string response;
    if (sendAll(fd, rawRequest))
        response = readAll(fd);
    ::close(fd);
    return response;
}

std::string
postPredict(const std::string &json)
{
    return "POST /predict HTTP/1.1\r\n"
           "Content-Type: application/json\r\n"
           "Content-Length: " +
           std::to_string(json.size()) + "\r\n\r\n" + json;
}

std::string
get(const std::string &target)
{
    return "GET " + target + " HTTP/1.1\r\n\r\n";
}

int
statusOf(const std::string &response)
{
    // "HTTP/1.1 NNN ..."
    if (response.size() < 12 || response.rfind("HTTP/1.1 ", 0) != 0)
        return -1;
    return std::stoi(response.substr(9, 3));
}

std::string
bodyOf(const std::string &response)
{
    const size_t split = response.find("\r\n\r\n");
    return split == std::string::npos ? std::string()
                                      : response.substr(split + 4);
}

/** Server + cache pair on an ephemeral port with test-sized knobs. */
class Serve : public testing::Test
{
  protected:
    void SetUp() override
    {
        FaultRegistry::global().resetForTest();
        params_.port = 0;
        params_.httpWorkers = 2;
        params_.pipeline.workers = 2;
        params_.readTimeoutSeconds = 5.0;
    }

    void TearDown() override
    {
        if (server_) {
            server_->stop();
            server_.reset();
        }
        FaultRegistry::global().resetForTest();
    }

    /** Build + start the server with the current params_. */
    void start()
    {
        cache_ = std::make_unique<service::ArtifactCache>(kCacheBudget,
                                                          std::string());
        server_ = std::make_unique<PredictionServer>(*cache_, params_);
        server_->start();
    }

    uint16_t port() const { return server_->port(); }

    ServeParams params_;
    std::unique_ptr<service::ArtifactCache> cache_;
    std::unique_ptr<PredictionServer> server_;
};

TEST_F(Serve, HealthStatusAndMetricsEndpointsAnswer)
{
    start();
    const std::string health = exchange(port(), get("/healthz"));
    EXPECT_EQ(statusOf(health), 200);
    EXPECT_EQ(bodyOf(health), "ok\n");

    const std::string status = exchange(port(), get("/status"));
    EXPECT_EQ(statusOf(status), 200);
    EXPECT_NE(bodyOf(status).find("\"predict\""), std::string::npos);

    const std::string metrics = exchange(port(), get("/metrics"));
    EXPECT_EQ(statusOf(metrics), 200);
    const std::string text = bodyOf(metrics);
    // The SLO instruments the dashboards read (docs/SERVING.md).
    EXPECT_NE(text.find("# TYPE zatel_serve_request_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("zatel_serve_request_seconds_bucket"),
              std::string::npos);
    EXPECT_NE(text.find("zatel_serve_queue_depth"), std::string::npos);
    EXPECT_NE(text.find("zatel_serve_predictions_total"),
              std::string::npos);

    const std::string missing = exchange(port(), get("/nope"));
    EXPECT_EQ(statusOf(missing), 404);
    const std::string wrongVerb = exchange(port(), get("/predict"));
    EXPECT_EQ(statusOf(wrongVerb), 405);
}

TEST_F(Serve, InvalidPredictRequestsAnswer400)
{
    start();
    EXPECT_EQ(statusOf(exchange(port(), postPredict("not json"))), 400);
    EXPECT_EQ(statusOf(exchange(port(), postPredict("[1,2]"))), 400);
    EXPECT_EQ(statusOf(exchange(
                  port(), postPredict("{\"scene\":\"NOPE\"}"))),
              400);
    EXPECT_EQ(statusOf(exchange(
                  port(), postPredict("{\"bogus_field\":1}"))),
              400);
    EXPECT_EQ(server_->snapshot().predict.invalid, 4u);
    // Malformed requests never reach the pipeline.
    EXPECT_EQ(server_->snapshot().predict.simulated, 0u);
}

TEST_F(Serve, NegativeIntegerFieldAnswers400)
{
    start();
    // A negative integer field used to wrap through std::stoull ("-1"
    // -> 2^64-1) and reach the pipeline as an absurd resolution; it
    // must be rejected at parse time instead.
    const std::string response = exchange(
        port(), postPredict("{\"scene\":\"PARK\",\"res\":-1}"));
    EXPECT_EQ(statusOf(response), 400);
    EXPECT_NE(bodyOf(response).find("negative"), std::string::npos);
    const std::string seed = exchange(
        port(),
        postPredict("{\"scene\":\"PARK\",\"res\":32,\"seed\":-3}"));
    EXPECT_EQ(statusOf(seed), 400);
    EXPECT_EQ(server_->snapshot().predict.invalid, 2u);
    EXPECT_EQ(server_->snapshot().predict.simulated, 0u);
}

TEST_F(Serve, IdenticalConcurrentRequestsRunOneSimulation)
{
    start();
    constexpr size_t kClients = 6;
    std::vector<std::string> responses(kClients);
    std::vector<std::thread> clients;
    for (size_t i = 0; i < kClients; ++i) {
        clients.emplace_back([this, &responses, i]() {
            responses[i] = exchange(port(), postPredict(kRecipe));
        });
    }
    for (std::thread &client : clients)
        client.join();

    std::set<std::string> bodies;
    for (const std::string &response : responses) {
        ASSERT_EQ(statusOf(response), 200) << response;
        bodies.insert(bodyOf(response));
    }
    // Byte-identical bodies from every client...
    EXPECT_EQ(bodies.size(), 1u);
    EXPECT_NE(bodies.begin()->find("\"status\":\"ok\""),
              std::string::npos);

    // ...and exactly one simulation behind them: the rest were
    // coalesced onto the in-flight prediction or answered from the
    // reply cache.
    const ServeSnapshot snap = server_->snapshot();
    EXPECT_EQ(snap.predict.simulated, 1u);
    EXPECT_EQ(snap.predict.coalesced + snap.predict.cacheHits,
              kClients - 1);

    // A repeat after the flight finished is a pure cache hit.
    const std::string repeat = exchange(port(), postPredict(kRecipe));
    EXPECT_EQ(statusOf(repeat), 200);
    EXPECT_EQ(bodyOf(repeat), *bodies.begin());
    EXPECT_EQ(server_->snapshot().predict.simulated, 1u);
}

TEST_F(Serve, OverloadedQueueShedsWith503WithoutHurtingAccepted)
{
    params_.httpWorkers = 1;
    params_.connectionQueueLimit = 1;
    start();

    // Park the only worker: an incomplete request holds it in its
    // read loop until we finish the message.
    const int parked = connectTo(port());
    ASSERT_GE(parked, 0);
    ASSERT_TRUE(sendAll(parked, "GET /healthz HTTP/1.1\r\n"));
    // Wait until the worker picked it up (queue back to empty).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server_->snapshot().accepted < 1 ||
           server_->snapshot().queueDepth > 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::yield();
    }

    // This one fills the single queue slot and must eventually win.
    std::thread queuedClient([this]() {
        const std::string response =
            exchange(port(), get("/healthz"));
        EXPECT_EQ(statusOf(response), 200) << response;
    });
    while (server_->snapshot().queueDepth < 1) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::yield();
    }

    // Queue full, worker busy: further connections are shed with 503
    // by the acceptor itself.
    size_t shed = 0;
    for (int i = 0; i < 3; ++i) {
        const std::string response =
            exchange(port(), get("/healthz"));
        if (statusOf(response) == 503)
            ++shed;
    }
    EXPECT_GT(shed, 0u);
    EXPECT_GE(server_->snapshot().shedConnections, shed);

    // Release the parked worker; the queued request must complete
    // untouched by the shedding around it.
    ASSERT_TRUE(sendAll(parked, "\r\n"));
    EXPECT_EQ(statusOf(readAll(parked)), 200);
    ::close(parked);
    queuedClient.join();
}

TEST_F(Serve, DeadlineExpiredPredictionAnswers504)
{
    start();
    // A deadline far below the simulation cost: the pipeline records
    // TimedOut at its first stage boundary.
    const std::string response = exchange(
        port(),
        postPredict("{\"scene\":\"PARK\",\"detail\":0.3,\"res\":32,"
                    "\"fraction\":0.2,\"deadline_ms\":0.001}"));
    EXPECT_EQ(statusOf(response), 504) << response;
    EXPECT_EQ(server_->snapshot().predict.timeouts, 1u);
    // Timed-out replies are not cached: the same recipe without the
    // deadline simulates and succeeds.
    const std::string retry = exchange(port(), postPredict(kRecipe));
    EXPECT_EQ(statusOf(retry), 200) << retry;
}

TEST_F(Serve, EveryServeFaultSiteDegradesOneRequestNotTheDaemon)
{
    start();
    struct Case
    {
        const char *site;
        int expectedStatus;
    };
    // Documented always-policy outcomes (docs/ROBUSTNESS.md): the
    // campaign-driven matrix in test_resilience.cc skips serve.*, so
    // this is their expectation table.
    const std::vector<Case> cases = {
        {"serve.accept", 503},
        {"serve.read", 500},
        {"serve.write", 500},
    };
    for (const Case &c : cases) {
        FaultRegistry::global().resetForTest();
        FaultRegistry::global().setPolicy(c.site, FaultPolicy::always());
        const std::string response =
            exchange(port(), get("/healthz"));
        EXPECT_EQ(statusOf(response), c.expectedStatus)
            << c.site << ": " << response;
        EXPECT_GT(FaultRegistry::global().site(c.site)->fires(), 0u)
            << c.site << " never fired";

        // Clearing the fault restores full service: the daemon
        // survived every injected failure.
        FaultRegistry::global().resetForTest();
        const std::string recovered =
            exchange(port(), get("/healthz"));
        EXPECT_EQ(statusOf(recovered), 200) << c.site;
    }
}

TEST_F(Serve, StopDrainsInFlightRequestsAndIsIdempotent)
{
    start();
    // An in-flight prediction when stop() lands must still terminate
    // with a real reply (graceful drain, not a dropped connection).
    std::string response;
    std::thread client([this, &response]() {
        response = exchange(port(), postPredict(kRecipe));
    });
    while (server_->snapshot().predict.simulated == 0 &&
           server_->snapshot().predict.invalid == 0)
        std::this_thread::yield();

    server_->stop();
    client.join();
    EXPECT_EQ(statusOf(response), 200) << response;
    EXPECT_FALSE(server_->running());

    // The listener is gone...
    const int fd = connectTo(port());
    if (fd >= 0)
        ::close(fd);
    EXPECT_LT(fd, 0);
    // ...and a second stop() is a no-op.
    server_->stop();
}

/** TSan target: hammer the full socket path from many threads. */
TEST(ServeConcurrency, ManyClientsCoalesceOntoOneSimulation)
{
    FaultRegistry::global().resetForTest();
    service::ArtifactCache cache(kCacheBudget, "");
    ServeParams params;
    params.port = 0;
    params.httpWorkers = 4;
    params.pipeline.workers = 2;
    PredictionServer server(cache, params);
    server.start();

    constexpr size_t kClients = 8;
    std::vector<std::string> responses(kClients);
    std::vector<std::thread> clients;
    for (size_t i = 0; i < kClients; ++i) {
        clients.emplace_back([&server, &responses, i]() {
            // Mix predictions with reads of the mutable endpoints so
            // TSan sees the counters race against the hot path.
            responses[i] =
                exchange(server.port(), postPredict(kRecipe));
            exchange(server.port(), get("/status"));
            exchange(server.port(), get("/metrics"));
        });
    }
    for (std::thread &client : clients)
        client.join();

    std::set<std::string> bodies;
    size_t ok = 0;
    for (const std::string &response : responses) {
        if (statusOf(response) == 200) {
            ++ok;
            bodies.insert(bodyOf(response));
        }
    }
    // Every client got the one coalesced answer (admission limits are
    // generous enough that nothing sheds here).
    EXPECT_EQ(ok, kClients);
    EXPECT_EQ(bodies.size(), 1u);
    EXPECT_EQ(server.snapshot().predict.simulated, 1u);

    server.stop();
    EXPECT_FALSE(server.running());
}

} // namespace
} // namespace zatel::serve
