/**
 * @file
 * Units for the zatel-lint analysis substrate: the comment/literal
 * aware tokenizer, line scrubbing (the property that makes regex rules
 * literal-proof by construction), suppression parsing, the include
 * graph, and the JSON/SARIF emitters (validated with the obs JSON
 * parser).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/include_graph.hh"
#include "analysis/source_file.hh"
#include "analysis/tokenizer.hh"
#include "obs/json.hh"

namespace
{

using zatel::analysis::AnalysisResult;
using zatel::analysis::Analyzer;
using zatel::analysis::SourceFile;
using zatel::analysis::Token;
using zatel::analysis::TokenKind;
using zatel::analysis::TokenizeResult;

std::vector<Token>
tokensOfKind(const TokenizeResult &lexed, TokenKind kind)
{
    std::vector<Token> out;
    for (const Token &token : lexed.tokens) {
        if (token.kind == kind)
            out.push_back(token);
    }
    return out;
}

TEST(AnalysisTokenizer, SplitsIdentifiersPunctsAndNumbers)
{
    TokenizeResult lexed =
        zatel::analysis::tokenize("x += foo(1.5e-3, 0xFFu);");
    std::vector<std::string> texts;
    for (const Token &token : lexed.tokens)
        texts.push_back(token.text);
    const std::vector<std::string> expected = {
        "x", "+=", "foo", "(", "1.5e-3", ",", "0xFFu", ")", ";"};
    EXPECT_EQ(texts, expected);
    EXPECT_EQ(lexed.tokens[1].kind, TokenKind::Punct);
    EXPECT_EQ(lexed.tokens[4].kind, TokenKind::Number);
}

TEST(AnalysisTokenizer, CommentsBecomeSingleTokens)
{
    TokenizeResult lexed = zatel::analysis::tokenize(
        "int a; // trailing std::rand()\n"
        "/* block\n   spanning == 1.0 lines */ int b;\n");
    const auto comments = tokensOfKind(lexed, TokenKind::Comment);
    ASSERT_EQ(comments.size(), 2u);
    EXPECT_NE(comments[0].text.find("std::rand()"), std::string::npos);
    EXPECT_EQ(comments[1].line, 2u);
    // The identifiers survive around them.
    const auto idents = tokensOfKind(lexed, TokenKind::Identifier);
    ASSERT_EQ(idents.size(), 4u);
    EXPECT_EQ(idents[3].text, "b");
}

TEST(AnalysisTokenizer, RawStringsSwallowCommentMarkers)
{
    TokenizeResult lexed = zatel::analysis::tokenize(
        "const char *s = R\"(not // a comment \" either)\";\n"
        "int after = 1;\n");
    EXPECT_TRUE(tokensOfKind(lexed, TokenKind::Comment).empty());
    ASSERT_EQ(tokensOfKind(lexed, TokenKind::RawString).size(), 1u);
    // Tokenization resumes correctly after the raw string.
    const auto idents = tokensOfKind(lexed, TokenKind::Identifier);
    ASSERT_FALSE(idents.empty());
    EXPECT_EQ(idents.back().text, "after");
}

TEST(AnalysisTokenizer, ScrubbedLinesEmptyLiteralsAndDropComments)
{
    SourceFile file = SourceFile::fromString(
        "src/x.cc",
        "int a = 1; // std::rand() here\n"
        "const char *s = \"time(nullptr) == 1.0\";\n");
    ASSERT_GE(file.scrubbed().size(), 2u);
    EXPECT_EQ(file.scrubbed()[0].find("rand"), std::string::npos);
    EXPECT_EQ(file.scrubbed()[1].find("time("), std::string::npos);
    // Code outside the literal survives at its position.
    EXPECT_NE(file.scrubbed()[1].find("const char"), std::string::npos);
    EXPECT_NE(file.scrubbed()[1].find("\"\""), std::string::npos);
}

TEST(AnalysisTokenizer, DirectivesCarryIncludeTargets)
{
    TokenizeResult lexed = zatel::analysis::tokenize(
        "#include <vector>\n"
        "#include \"gpusim/cache.hh\"\n"
        "#ifndef GUARD_HH\n");
    ASSERT_EQ(lexed.directives.size(), 3u);
    EXPECT_EQ(lexed.directives[0].name, "include");
    EXPECT_TRUE(lexed.directives[0].systemInclude);
    EXPECT_EQ(lexed.directives[0].argument, "vector");
    EXPECT_FALSE(lexed.directives[1].systemInclude);
    EXPECT_EQ(lexed.directives[1].argument, "gpusim/cache.hh");
    EXPECT_EQ(lexed.directives[2].name, "ifndef");
    EXPECT_EQ(lexed.directives[2].argument, "GUARD_HH");
}

TEST(AnalysisTokenizer, SuppressionParsing)
{
    SourceFile file = SourceFile::fromString(
        "src/x.cc",
        "// zatel-lint: allow(float-eq): seeded fixture compare\n"
        "int a = 1;\n"
        "int b = 2; // zatel-lint: allow(nondet-rand): same line\n"
        "// zatel-lint: allow(): broken\n"
        "// docs may mention zatel-lint: allow(rule): mid-comment\n");
    ASSERT_EQ(file.suppressions().size(), 3u);
    EXPECT_EQ(file.suppressions()[0].rule, "float-eq");
    EXPECT_TRUE(file.suppressions()[0].standalone);
    EXPECT_FALSE(file.suppressions()[1].standalone);
    EXPECT_TRUE(file.suppressions()[2].malformed);
    // Standalone comments cover the next line; inline ones only theirs.
    EXPECT_TRUE(file.suppresses("float-eq", 1));
    EXPECT_TRUE(file.suppresses("float-eq", 2));
    EXPECT_FALSE(file.suppresses("float-eq", 3));
    EXPECT_TRUE(file.suppresses("nondet-rand", 3));
    EXPECT_FALSE(file.suppresses("nondet-rand", 4));
}

TEST(AnalysisTokenizer, IncludeGraphResolvesAndPairs)
{
    std::vector<SourceFile> files;
    files.push_back(SourceFile::fromString(
        "src/gpusim/cache.cc", "#include \"gpusim/cache.hh\"\n"));
    files.push_back(SourceFile::fromString(
        "src/gpusim/cache.hh", "#include \"util/logging.hh\"\n"));
    files.push_back(
        SourceFile::fromString("src/util/logging.hh", "int x;\n"));
    const auto graph = zatel::analysis::IncludeGraph::build(files);
    EXPECT_EQ(graph.pairedHeader("src/gpusim/cache.cc"),
              "src/gpusim/cache.hh");
    const auto reachable = graph.reachableIncludes("src/gpusim/cache.cc");
    EXPECT_TRUE(reachable.count("src/gpusim/cache.hh"));
    EXPECT_TRUE(reachable.count("src/util/logging.hh"));
    ASSERT_EQ(graph.includedBy("src/util/logging.hh").size(), 1u);
}

TEST(AnalysisTokenizer, LiteralsCannotTriggerRegexRules)
{
    Analyzer analyzer;
    analyzer.addFile(SourceFile::fromString(
        "src/gpusim/strings.cc",
        "// std::rand() and x == 1.0 in a comment\n"
        "const char *kDoc = \"std::rand() time(nullptr)\";\n"
        "const char *kRaw = R\"(sleep_for // == 2.0)\";\n"));
    const AnalysisResult result = analyzer.run();
    EXPECT_TRUE(result.findings.empty())
        << result.findings[0].rule << " at line "
        << result.findings[0].line;
}

TEST(AnalysisTokenizer, RealViolationsStillFire)
{
    Analyzer analyzer;
    analyzer.addFile(SourceFile::fromString(
        "src/gpusim/dirty.cc", "int seed = std::rand();\n"));
    const AnalysisResult result = analyzer.run();
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].rule, "nondet-rand");
    EXPECT_EQ(result.findings[0].line, 1u);
}

TEST(AnalysisTokenizer, JsonOutputParsesAndCarriesFindings)
{
    Analyzer analyzer;
    analyzer.addFile(SourceFile::fromString(
        "src/gpusim/dirty.cc", "int seed = std::rand();\n"));
    const AnalysisResult result = analyzer.run();
    const zatel::obs::JsonValue doc =
        zatel::obs::parseJson(Analyzer::formatJson(result));
    EXPECT_EQ(doc.at("tool").stringValue, "zatel-lint");
    ASSERT_EQ(doc.at("findings").arrayValue.size(), 1u);
    const auto &finding = doc.at("findings").arrayValue[0];
    EXPECT_EQ(finding.at("rule").stringValue, "nondet-rand");
    EXPECT_EQ(finding.at("line").numberValue, 1.0);
}

TEST(AnalysisTokenizer, SarifOutputParsesWithRuleCatalog)
{
    Analyzer analyzer;
    analyzer.addFile(SourceFile::fromString(
        "src/gpusim/dirty.cc", "int seed = std::rand();\n"));
    const AnalysisResult result = analyzer.run();
    const zatel::obs::JsonValue doc =
        zatel::obs::parseJson(Analyzer::formatSarif(result));
    EXPECT_EQ(doc.at("version").stringValue, "2.1.0");
    ASSERT_EQ(doc.at("runs").arrayValue.size(), 1u);
    const auto &run = doc.at("runs").arrayValue[0];
    const auto &rules =
        run.at("tool").at("driver").at("rules").arrayValue;
    // 13 catalog rules + 2 suppression meta-rules.
    EXPECT_EQ(rules.size(), 15u);
    const auto &results = run.at("results").arrayValue;
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].at("ruleId").stringValue, "nondet-rand");
    const auto &location = results[0].at("locations").arrayValue[0];
    EXPECT_EQ(location.at("physicalLocation")
                  .at("artifactLocation")
                  .at("uri")
                  .stringValue,
              "src/gpusim/dirty.cc");
}

TEST(AnalysisTokenizer, SuppressionLifecycleMetaRules)
{
    Analyzer analyzer;
    analyzer.addFile(SourceFile::fromString(
        "src/gpusim/sup.cc",
        "// zatel-lint: allow(nondet-rand): fixture uses wall clock\n"
        "int seed = std::rand();\n"
        "// zatel-lint: allow(float-eq): stale\n"
        "int other = 0;\n"));
    const AnalysisResult result = analyzer.run();
    EXPECT_EQ(result.suppressedCount, 1u);
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].rule, "unused-suppression");
    EXPECT_EQ(result.findings[0].line, 3u);
}

} // namespace
