/**
 * @file
 * Tests for per-group metric extrapolation (Sections III-G / IV-F).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "zatel/extrapolate.hh"

namespace zatel::core
{
namespace
{

using gpusim::GpuStats;
using gpusim::Metric;

TEST(LinearExtrapolation, PaperExampleCycles)
{
    // Section III-G: 100,000 cycles at 10% -> 1,000,000 predicted.
    EXPECT_DOUBLE_EQ(extrapolateLinear(Metric::SimCycles, 100000.0, 0.1),
                     1000000.0);
}

TEST(LinearExtrapolation, FullFractionIsIdentity)
{
    for (Metric metric : gpusim::allMetrics())
        EXPECT_DOUBLE_EQ(extrapolateLinear(metric, 42.0, 1.0), 42.0);
}

TEST(LinearExtrapolation, RatioMetricsPassThrough)
{
    for (Metric metric : {Metric::Ipc, Metric::L1dMissRate,
                          Metric::L2MissRate, Metric::RtEfficiency,
                          Metric::DramEfficiency, Metric::BwUtilization}) {
        EXPECT_DOUBLE_EQ(extrapolateLinear(metric, 0.37, 0.25), 0.37);
    }
}

TEST(LinearExtrapolation, AllMetricsVector)
{
    GpuStats stats;
    stats.cycles = 5000;
    stats.threadInstructions = 10000;
    stats.l1dAccesses = 100;
    stats.l1dMisses = 10;
    std::vector<double> predicted = extrapolateAllLinear(stats, 0.5);
    ASSERT_EQ(predicted.size(), gpusim::allMetrics().size());
    // SimCycles is index 1 in allMetrics() order.
    EXPECT_DOUBLE_EQ(predicted[1], 10000.0);
    // IPC passes through.
    EXPECT_DOUBLE_EQ(predicted[0], stats.ipc());
}

TEST(RegressionExtrapolation, RecoversExponentialSeries)
{
    // Error-style series converging to 100: y = 100 - 50 * 0.5^(10x).
    auto f = [](double x) { return 100.0 - 50.0 * std::pow(0.5, 10.0 * x); };
    double predicted = extrapolateRegression(
        {0.2, 0.3, 0.4}, {f(0.2), f(0.3), f(0.4)});
    EXPECT_NEAR(predicted, f(1.0), 0.5);
}

TEST(RegressionExtrapolation, LinearSeriesExtrapolatesLine)
{
    double predicted = extrapolateRegression({0.2, 0.3, 0.4},
                                             {20.0, 30.0, 40.0});
    EXPECT_NEAR(predicted, 100.0, 1e-6);
}

TEST(RegressionExtrapolation, OverfitsNoisyData)
{
    // The paper's Section IV-F point: noisy samples make the exponential
    // fit unstable. A small wiggle produces a prediction far from the
    // linear trend - document the behaviour.
    double predicted = extrapolateRegression({0.2, 0.3, 0.4},
                                             {20.0, 31.0, 40.0});
    // Fit is not the clean 100.0 the linear trend gives.
    EXPECT_GT(std::abs(predicted - 100.0), 1.0);
}

TEST(ExtrapolationMethodNames, Strings)
{
    EXPECT_STREQ(extrapolationMethodName(ExtrapolationMethod::Linear),
                 "linear");
    EXPECT_STREQ(
        extrapolationMethodName(ExtrapolationMethod::ExponentialRegression),
        "regression");
}

} // namespace
} // namespace zatel::core
