/**
 * @file
 * Unit tests for the thread pool that runs Zatel's group simulations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.hh"

namespace zatel
{
namespace
{

TEST(ThreadPool, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(50);
    pool.parallelFor(50, [&hits](size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPool, ExceptionPropagates)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(10,
                                  [](size_t i) {
                                      if (i == 5)
                                          throw std::runtime_error("bad");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, WaitAllBlocksUntilDone)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 20; ++i)
        pool.submit([&counter] { ++counter; });
    pool.waitAll();
    EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, WorkerCountDefaultsPositive)
{
    ThreadPool pool;
    EXPECT_GE(pool.workerCount(), 1u);
}

TEST(ThreadPool, QueueDepthAndActiveWorkersTrackLoad)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.queueDepth(), 0u);
    EXPECT_EQ(pool.activeWorkers(), 0u);

    // Park both workers on a gate, then pile three tasks behind them.
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool gate_open = false;
    std::atomic<int> started{0};
    auto blocker = [&] {
        ++started;
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return gate_open; });
    };
    std::vector<std::future<void>> futures;
    futures.push_back(pool.submit(blocker));
    futures.push_back(pool.submit(blocker));
    while (started.load() < 2)
        std::this_thread::yield();
    for (int i = 0; i < 3; ++i)
        futures.push_back(pool.submit([] {}));

    EXPECT_EQ(pool.activeWorkers(), 2u);
    EXPECT_EQ(pool.queueDepth(), 3u)
        << "tasks queued but not started behind two busy workers";

    {
        std::lock_guard<std::mutex> lock(gate_mutex);
        gate_open = true;
    }
    gate_cv.notify_all();
    for (auto &f : futures)
        f.get();
    pool.waitAll();
    EXPECT_EQ(pool.queueDepth(), 0u);
    EXPECT_EQ(pool.activeWorkers(), 0u);
}

TEST(ThreadPool, SingleWorkerSerializes)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 10; ++i)
        futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
    for (auto &f : futures)
        f.get();
    // One worker executes in FIFO order.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

} // namespace
} // namespace zatel
