/**
 * @file
 * Tests for the functional tracer and the ray recording the timed
 * simulator replays.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rt/bvh.hh"
#include "rt/mesh.hh"
#include "rt/ray_record.hh"
#include "rt/scene.hh"
#include "rt/scene_library.hh"
#include "rt/tracer.hh"

namespace zatel::rt
{
namespace
{

/** A sphere in front of the camera over a ground plane. */
Scene
simpleScene()
{
    Scene scene("simple");
    scene.setMaxBounces(2);
    scene.setBackground({0.1f, 0.2f, 0.3f});
    scene.setLight({{5.0f, 10.0f, 5.0f}, {1.0f, 1.0f, 1.0f}});
    scene.setCamera(Camera({0.0f, 1.0f, 6.0f}, {0.0f, 1.0f, 0.0f},
                           {0.0f, 1.0f, 0.0f}, 50.0f));
    uint16_t ball = scene.addMaterial(Material::diffuse({0.8f, 0.3f, 0.3f}));
    uint16_t floor = scene.addMaterial(Material::diffuse({0.4f, 0.4f, 0.4f}));
    MeshBuilder mesh;
    mesh.addSphere({0.0f, 1.0f, 0.0f}, 1.0f, 16, ball);
    mesh.addGroundPlane({0.0f, 0.0f, 0.0f}, 10.0f, 4, floor);
    scene.addTriangles(mesh.takeTriangles());
    return scene;
}

struct TracerFixture : public testing::Test
{
    void
    SetUp() override
    {
        scene = simpleScene();
        bvh.build(scene.triangles());
    }

    Scene scene;
    Bvh bvh;
};

TEST_F(TracerFixture, CenterPixelHitsSphere)
{
    Tracer tracer(scene, bvh);
    PixelProfile profile;
    Vec3 color = tracer.tracePixel(32, 32, 64, 64, profile);
    EXPECT_TRUE(profile.primaryHit);
    EXPECT_GT(profile.nodesVisited, 0u);
    EXPECT_GE(profile.raysCast, 2u); // primary + shadow
    // Reddish sphere.
    EXPECT_GT(color.x, color.y);
}

TEST_F(TracerFixture, SkyPixelIsBackground)
{
    Tracer tracer(scene, bvh);
    PixelProfile profile;
    Vec3 color = tracer.tracePixel(32, 0, 64, 64, profile);
    EXPECT_FALSE(profile.primaryHit);
    EXPECT_EQ(profile.raysCast, 1u);
    EXPECT_FLOAT_EQ(color.x, scene.background().x);
    EXPECT_FLOAT_EQ(color.y, scene.background().y);
}

TEST_F(TracerFixture, RenderDeterministic)
{
    Tracer tracer(scene, bvh);
    RenderResult a = tracer.render(32, 32);
    RenderResult b = tracer.render(32, 32);
    ASSERT_EQ(a.profiles.size(), b.profiles.size());
    for (size_t i = 0; i < a.profiles.size(); ++i) {
        EXPECT_EQ(a.profiles[i].nodesVisited, b.profiles[i].nodesVisited);
        EXPECT_EQ(a.image.pixels()[i], b.image.pixels()[i]);
    }
}

TEST_F(TracerFixture, SppMultipliesRays)
{
    TracerParams params;
    params.samplesPerPixel = 2;
    Tracer tracer2(scene, bvh, params);
    Tracer tracer1(scene, bvh);

    PixelProfile p1, p2;
    tracer1.tracePixel(32, 32, 64, 64, p1);
    tracer2.tracePixel(32, 32, 64, 64, p2);
    EXPECT_GE(p2.raysCast, 2 * p1.raysCast - 2);
    EXPECT_GT(p2.nodesVisited, p1.nodesVisited);
}

TEST_F(TracerFixture, ProfileCostMonotoneInWork)
{
    PixelProfile cheap, expensive;
    cheap.nodesVisited = 10;
    expensive.nodesVisited = 100;
    expensive.triangleTests = 50;
    EXPECT_LT(cheap.cost(), expensive.cost());
}

TEST_F(TracerFixture, RecordMatchesProfileRayCount)
{
    Tracer tracer(scene, bvh);
    for (uint32_t y : {0u, 16u, 32u, 48u}) {
        for (uint32_t x : {0u, 16u, 32u, 48u}) {
            PixelProfile profile;
            tracer.tracePixel(x, y, 64, 64, profile);
            PixelRayRecord record = recordPixelRays(tracer, x, y, 64, 64);
            EXPECT_EQ(record.rays.size(), profile.raysCast)
                << "pixel (" << x << "," << y << ")";
        }
    }
}

TEST_F(TracerFixture, RecordReplaysToSameWork)
{
    Tracer tracer(scene, bvh);
    PixelProfile profile;
    tracer.tracePixel(32, 40, 64, 64, profile);
    PixelRayRecord record = recordPixelRays(tracer, 32, 40, 64, 64);

    // Re-traversing the recorded rays reproduces the profile's node count.
    TraversalCounters counters;
    for (const RayTask &task : record.rays) {
        if (task.mode == TraversalMode::ClosestHit)
            closestHit(bvh, task.ray, &counters);
        else
            anyHit(bvh, task.ray, &counters);
    }
    EXPECT_EQ(counters.nodesVisited, profile.nodesVisited);
    EXPECT_EQ(counters.triangleTests, profile.triangleTests);
}

TEST_F(TracerFixture, RecordHitFlagsConsistent)
{
    Tracer tracer(scene, bvh);
    PixelRayRecord record = recordPixelRays(tracer, 32, 32, 64, 64);
    ASSERT_FALSE(record.rays.empty());
    const RayTask &primary = record.rays.front();
    EXPECT_EQ(primary.mode, TraversalMode::ClosestHit);
    EXPECT_TRUE(primary.hit);
    EXPECT_EQ(closestHit(bvh, primary.ray).valid(), primary.hit);
    EXPECT_EQ(record.shadeCount() >= 1, true);
}

TEST_F(TracerFixture, MirrorSpawnsBounceRays)
{
    // Replace the sphere material with a mirror and re-trace.
    Scene mirror_scene = simpleScene();
    Scene replacement("mirror");
    replacement.setMaxBounces(2);
    replacement.setBackground(mirror_scene.background());
    replacement.setLight(mirror_scene.light());
    replacement.setCamera(mirror_scene.camera());
    uint16_t ball =
        replacement.addMaterial(Material::mirror({0.9f, 0.9f, 0.9f}, 0.8f));
    uint16_t floor =
        replacement.addMaterial(Material::diffuse({0.4f, 0.4f, 0.4f}));
    MeshBuilder mesh;
    mesh.addSphere({0.0f, 1.0f, 0.0f}, 1.0f, 16, ball);
    mesh.addGroundPlane({0.0f, 0.0f, 0.0f}, 10.0f, 4, floor);
    replacement.addTriangles(mesh.takeTriangles());

    Bvh mirror_bvh;
    mirror_bvh.build(replacement.triangles());
    Tracer tracer(replacement, mirror_bvh);
    PixelRayRecord record = recordPixelRays(tracer, 32, 32, 64, 64);

    bool has_bounce = false;
    for (const RayTask &task : record.rays)
        has_bounce |= task.bounce > 0;
    EXPECT_TRUE(has_bounce);
}

TEST_F(TracerFixture, EmissiveTerminatesPath)
{
    Scene glow("glow");
    glow.setCamera(Camera({0.0f, 0.0f, 5.0f}, {0.0f, 0.0f, 0.0f},
                          {0.0f, 1.0f, 0.0f}, 50.0f));
    Vec3 radiance{2.0f, 1.5f, 1.0f};
    uint16_t lamp = glow.addMaterial(Material::emissive(radiance));
    MeshBuilder mesh;
    mesh.addSphere({0.0f, 0.0f, 0.0f}, 1.0f, 12, lamp);
    glow.addTriangles(mesh.takeTriangles());
    Bvh glow_bvh;
    glow_bvh.build(glow.triangles());

    Tracer tracer(glow, glow_bvh);
    PixelProfile profile;
    Vec3 color = tracer.tracePixel(32, 32, 64, 64, profile);
    EXPECT_FLOAT_EQ(color.x, radiance.x);
    // Emissive hit casts no shadow ray.
    EXPECT_EQ(profile.raysCast, 1u);
}

// ---------------------------------------------------------------------
// Packetized/scalar differential: render() and recordPixelRaysBatch()
// run the wavefront engine (32-wide ray packets, docs/SIMULATOR.md
// "Data layout of the hot path"); tracePixel() and recordPixelRays()
// are the scalar recursive reference. Both pairs must be byte-identical
// per pixel — colors bit-exact, profiles field-exact, ray streams
// task-by-task equal.
// ---------------------------------------------------------------------

/** Scene with a mirror so reflection chains exercise the packet
 *  engine's deepest-first contribution folding. */
Scene
mirrorScene()
{
    Scene scene = simpleScene();
    uint16_t shiny =
        scene.addMaterial(Material::mirror({0.9f, 0.9f, 0.95f}));
    MeshBuilder mesh;
    mesh.addSphere({-1.5f, 1.0f, -1.0f}, 0.8f, 12, shiny);
    scene.addTriangles(mesh.takeTriangles());
    return scene;
}

void
expectPacketizedRenderMatchesScalar(const Scene &scene, uint32_t spp,
                                    uint32_t width, uint32_t height)
{
    Bvh bvh;
    bvh.build(scene.triangles());
    TracerParams params;
    params.samplesPerPixel = spp;
    Tracer tracer(scene, bvh, params);

    RenderResult frame = tracer.render(width, height);
    for (uint32_t y = 0; y < height; ++y) {
        for (uint32_t x = 0; x < width; ++x) {
            PixelProfile scalarProfile;
            Vec3 scalar =
                tracer.tracePixel(x, y, width, height, scalarProfile);
            Vec3 packet = frame.image.at(x, y);
            const PixelProfile &profile = frame.profileAt(x, y);
            ASSERT_EQ(std::memcmp(&scalar, &packet, sizeof(Vec3)), 0)
                << "color diverged at (" << x << "," << y << ") spp="
                << spp;
            EXPECT_EQ(scalarProfile.nodesVisited, profile.nodesVisited);
            EXPECT_EQ(scalarProfile.triangleTests, profile.triangleTests);
            EXPECT_EQ(scalarProfile.raysCast, profile.raysCast);
            EXPECT_EQ(scalarProfile.primaryHit, profile.primaryHit);
        }
    }
}

TEST_F(TracerFixture, PacketizedRenderMatchesScalarTracePixel)
{
    // 9x7 = 63 pixels: two packets, the second under-full.
    expectPacketizedRenderMatchesScalar(scene, 1, 9, 7);
    expectPacketizedRenderMatchesScalar(scene, 2, 8, 8);
}

TEST(TracerPacketDifferential, MirrorChainsAndMultiSample)
{
    Scene scene = mirrorScene();
    expectPacketizedRenderMatchesScalar(scene, 1, 16, 16);
    expectPacketizedRenderMatchesScalar(scene, 3, 11, 5);
}

TEST(TracerPacketDifferential, BatchRayRecordMatchesScalar)
{
    Scene scene = mirrorScene();
    Bvh bvh;
    bvh.build(scene.triangles());
    TracerParams params;
    params.samplesPerPixel = 2;
    Tracer tracer(scene, bvh, params);

    // 13x3 = 39 pixels in one batch: one full packet plus a remainder.
    constexpr uint32_t kWidth = 13, kHeight = 3;
    std::vector<uint32_t> xs, ys;
    for (uint32_t y = 0; y < kHeight; ++y) {
        for (uint32_t x = 0; x < kWidth; ++x) {
            xs.push_back(x);
            ys.push_back(y);
        }
    }
    std::vector<PixelRayRecord> batched(xs.size());
    uint32_t callbacks = 0;
    recordPixelRaysBatch(
        tracer, xs.data(), ys.data(), static_cast<uint32_t>(xs.size()),
        kWidth, kHeight,
        [&](uint32_t index, const PixelRayRecord &record) {
            ASSERT_LT(index, batched.size());
            batched[index] = record; // the reference is reused scratch
            ++callbacks;
        });
    ASSERT_EQ(callbacks, xs.size());

    for (size_t i = 0; i < xs.size(); ++i) {
        PixelRayRecord scalar =
            recordPixelRays(tracer, xs[i], ys[i], kWidth, kHeight);
        ASSERT_EQ(scalar.rays.size(), batched[i].rays.size())
            << "ray count diverged at pixel " << i;
        for (size_t r = 0; r < scalar.rays.size(); ++r) {
            const RayTask &want = scalar.rays[r];
            const RayTask &got = batched[i].rays[r];
            EXPECT_EQ(std::memcmp(&want.ray.origin, &got.ray.origin,
                                  sizeof(Vec3)),
                      0)
                << "origin diverged: pixel " << i << " ray " << r;
            EXPECT_EQ(std::memcmp(&want.ray.direction, &got.ray.direction,
                                  sizeof(Vec3)),
                      0)
                << "direction diverged: pixel " << i << " ray " << r;
            EXPECT_EQ(std::memcmp(&want.ray.tMax, &got.ray.tMax,
                                  sizeof(float)),
                      0)
                << "tMax diverged: pixel " << i << " ray " << r;
            EXPECT_EQ(want.mode, got.mode) << "pixel " << i << " ray " << r;
            EXPECT_EQ(want.hit, got.hit) << "pixel " << i << " ray " << r;
            EXPECT_EQ(want.materialId, got.materialId)
                << "pixel " << i << " ray " << r;
            EXPECT_EQ(want.bounce, got.bounce)
                << "pixel " << i << " ray " << r;
        }
    }
}

} // namespace
} // namespace zatel::rt
