/**
 * @file
 * BVH builder invariants and traversal-vs-brute-force equivalence.
 */

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "rt/bvh.hh"
#include "rt/mesh.hh"
#include "rt/traversal.hh"
#include "util/rng.hh"

namespace zatel::rt
{
namespace
{

std::vector<Triangle>
randomSoup(uint64_t seed, int count)
{
    zatel::Rng rng(seed);
    MeshBuilder mesh;
    mesh.addTriangleSoup(rng, {0.0f, 0.0f, 0.0f}, 10.0f, count, 1.0f, 0);
    return mesh.takeTriangles();
}

/** Brute-force closest hit for ground truth. */
HitRecord
bruteForceClosest(const std::vector<Triangle> &triangles, const Ray &ray)
{
    HitRecord best;
    for (uint32_t i = 0; i < triangles.size(); ++i) {
        float t = 0.0f;
        Ray query = ray;
        query.tMax = std::min(ray.tMax, best.t);
        if (triangles[i].intersect(query, t) && t < best.t) {
            best.t = t;
            best.primIndex = i;
            best.materialId = triangles[i].materialId;
        }
    }
    return best;
}

TEST(BvhBuild, EmptyTriangleList)
{
    std::vector<Triangle> none;
    Bvh bvh;
    bvh.build(none);
    EXPECT_TRUE(bvh.valid());
    EXPECT_EQ(bvh.nodeCount(), 1u);
    Ray ray;
    ray.origin = {0.0f, 0.0f, 0.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};
    EXPECT_FALSE(closestHit(bvh, ray).valid());
}

TEST(BvhBuild, SingleTriangle)
{
    std::vector<Triangle> tris{{{0.0f, 0.0f, 0.0f},
                                {1.0f, 0.0f, 0.0f},
                                {0.0f, 1.0f, 0.0f},
                                3}};
    Bvh bvh;
    bvh.build(tris);
    EXPECT_EQ(bvh.nodeCount(), 1u);
    EXPECT_TRUE(bvh.node(0).isLeaf());
    EXPECT_EQ(bvh.buildStats().leafCount, 1u);

    Ray ray;
    ray.origin = {0.2f, 0.2f, 5.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};
    HitRecord hit = closestHit(bvh, ray);
    ASSERT_TRUE(hit.valid());
    EXPECT_EQ(hit.primIndex, 0u);
    EXPECT_EQ(hit.materialId, 3);
    EXPECT_NEAR(hit.t, 5.0f, 1e-4f);
}

TEST(BvhBuild, EveryPrimitiveInExactlyOneLeaf)
{
    std::vector<Triangle> tris = randomSoup(1, 500);
    Bvh bvh;
    bvh.build(tris);

    std::set<uint32_t> seen;
    for (const BvhNode &node : bvh.nodes()) {
        if (!node.isLeaf())
            continue;
        for (uint32_t i = 0; i < node.primCount; ++i) {
            uint32_t original = bvh.primitiveIndex(node.firstPrim() + i);
            EXPECT_TRUE(seen.insert(original).second)
                << "primitive " << original << " appears twice";
        }
    }
    EXPECT_EQ(seen.size(), tris.size());
}

TEST(BvhBuild, ParentBoundsContainChildren)
{
    std::vector<Triangle> tris = randomSoup(2, 300);
    Bvh bvh;
    bvh.build(tris);
    for (uint32_t i = 0; i < bvh.nodeCount(); ++i) {
        const BvhNode &node = bvh.node(i);
        if (node.isLeaf())
            continue;
        const BvhNode &left = bvh.node(BvhNode::leftChildOf(i));
        const BvhNode &right = bvh.node(node.rightChild());
        EXPECT_TRUE(node.bounds.contains(left.bounds.lo));
        EXPECT_TRUE(node.bounds.contains(left.bounds.hi));
        EXPECT_TRUE(node.bounds.contains(right.bounds.lo));
        EXPECT_TRUE(node.bounds.contains(right.bounds.hi));
    }
}

TEST(BvhBuild, LeafBoundsContainTheirTriangles)
{
    std::vector<Triangle> tris = randomSoup(3, 200);
    Bvh bvh;
    bvh.build(tris);
    for (const BvhNode &node : bvh.nodes()) {
        if (!node.isLeaf())
            continue;
        for (uint32_t i = 0; i < node.primCount; ++i) {
            const Triangle &tri = bvh.primitive(node.firstPrim() + i);
            EXPECT_TRUE(node.bounds.contains(tri.v0));
            EXPECT_TRUE(node.bounds.contains(tri.v1));
            EXPECT_TRUE(node.bounds.contains(tri.v2));
        }
    }
}

TEST(BvhBuild, NodeCountBounded)
{
    std::vector<Triangle> tris = randomSoup(4, 400);
    Bvh bvh;
    bvh.build(tris);
    EXPECT_LE(bvh.nodeCount(), 2 * tris.size());
    EXPECT_EQ(bvh.nodeCount(), bvh.buildStats().nodeCount);
    EXPECT_GT(bvh.buildStats().maxDepth, 1u);
}

TEST(BvhBuild, RespectsMaxLeafSize)
{
    std::vector<Triangle> tris = randomSoup(5, 300);
    BvhBuildParams params;
    params.maxLeafSize = 2;
    Bvh bvh;
    bvh.build(tris, params);
    // The SAH "keep as leaf" shortcut may retain up to 2x maxLeafSize.
    EXPECT_LE(bvh.buildStats().maxLeafSize, 2 * params.maxLeafSize);
}

TEST(BvhBuild, DuplicateCentroidsHandled)
{
    // 100 identical triangles: centroid extent is zero everywhere.
    std::vector<Triangle> tris(
        100, Triangle{{0.0f, 0.0f, 0.0f},
                      {1.0f, 0.0f, 0.0f},
                      {0.0f, 1.0f, 0.0f},
                      0});
    Bvh bvh;
    bvh.build(tris);
    EXPECT_TRUE(bvh.valid());
    Ray ray;
    ray.origin = {0.2f, 0.2f, 5.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};
    EXPECT_TRUE(closestHit(bvh, ray).valid());
}

/** Parameterized: traversal equals brute force on random soups. */
class BvhEquivalence : public testing::TestWithParam<int>
{
};

TEST_P(BvhEquivalence, ClosestHitMatchesBruteForce)
{
    int count = GetParam();
    std::vector<Triangle> tris = randomSoup(100 + count, count);
    Bvh bvh;
    bvh.build(tris);

    zatel::Rng rng(777);
    for (int i = 0; i < 100; ++i) {
        Ray ray;
        ray.origin = {static_cast<float>(rng.nextDouble(-15.0, 15.0)),
                      static_cast<float>(rng.nextDouble(-15.0, 15.0)),
                      20.0f};
        Vec3 target{static_cast<float>(rng.nextDouble(-8.0, 8.0)),
                    static_cast<float>(rng.nextDouble(-8.0, 8.0)),
                    static_cast<float>(rng.nextDouble(-8.0, 8.0))};
        ray.direction = normalize(target - ray.origin);

        HitRecord expected = bruteForceClosest(tris, ray);
        HitRecord actual = closestHit(bvh, ray);
        ASSERT_EQ(expected.valid(), actual.valid()) << "ray " << i;
        if (expected.valid()) {
            EXPECT_NEAR(expected.t, actual.t, 1e-3f) << "ray " << i;
            EXPECT_EQ(expected.primIndex, actual.primIndex) << "ray " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SoupSizes, BvhEquivalence,
                         testing::Values(1, 2, 7, 33, 150, 600));

TEST(BvhTraversal, AnyHitAgreesWithClosestHit)
{
    std::vector<Triangle> tris = randomSoup(6, 400);
    Bvh bvh;
    bvh.build(tris);
    zatel::Rng rng(555);
    for (int i = 0; i < 200; ++i) {
        Ray ray;
        ray.origin = {static_cast<float>(rng.nextDouble(-15.0, 15.0)),
                      static_cast<float>(rng.nextDouble(-15.0, 15.0)),
                      20.0f};
        ray.direction = normalize(
            Vec3{static_cast<float>(rng.nextDouble(-1.0, 1.0)),
                 static_cast<float>(rng.nextDouble(-1.0, 1.0)), -1.0f});
        EXPECT_EQ(closestHit(bvh, ray).valid(), anyHit(bvh, ray));
    }
}

TEST(BvhTraversal, CountersAccumulate)
{
    std::vector<Triangle> tris = randomSoup(7, 200);
    Bvh bvh;
    bvh.build(tris);
    Ray ray;
    ray.origin = {0.0f, 0.0f, 20.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};
    TraversalCounters counters;
    closestHit(bvh, ray, &counters);
    EXPECT_GT(counters.nodesVisited, 0u);
    uint32_t first = counters.nodesVisited;
    closestHit(bvh, ray, &counters);
    EXPECT_EQ(counters.nodesVisited, 2 * first);
}

TEST(BvhTraversal, StepperMatchesConvenienceFunction)
{
    std::vector<Triangle> tris = randomSoup(8, 300);
    Bvh bvh;
    bvh.build(tris);
    Ray ray;
    ray.origin = {1.0f, -2.0f, 20.0f};
    ray.direction = normalize(Vec3{-0.05f, 0.1f, -1.0f});

    TraversalStepper stepper;
    stepper.init(&bvh, ray, TraversalMode::ClosestHit);
    uint32_t steps = 0;
    while (!stepper.finished()) {
        uint32_t pending = stepper.pendingNode();
        StepInfo info = stepper.step();
        EXPECT_EQ(info.nodeIndex, pending);
        ++steps;
    }
    EXPECT_EQ(steps, stepper.nodesVisited());

    HitRecord direct = closestHit(bvh, ray);
    EXPECT_EQ(direct.valid(), stepper.hasHit());
    if (direct.valid()) {
        EXPECT_NEAR(direct.t, stepper.hit().t, 1e-5f);
    }
}

TEST(BvhTraversal, ShadowRayRespectsTMax)
{
    // A triangle at z=-10; occlusion query that ends before it.
    std::vector<Triangle> tris{{{-5.0f, -5.0f, -10.0f},
                                {5.0f, -5.0f, -10.0f},
                                {0.0f, 5.0f, -10.0f},
                                0}};
    Bvh bvh;
    bvh.build(tris);
    Ray ray;
    ray.origin = {0.0f, 0.0f, 0.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};
    ray.tMax = 5.0f;
    EXPECT_FALSE(anyHit(bvh, ray));
    ray.tMax = 15.0f;
    EXPECT_TRUE(anyHit(bvh, ray));
}

TEST(BvhTraversal, HitRecordGeometry)
{
    std::vector<Triangle> tris{{{-5.0f, -5.0f, -10.0f},
                                {5.0f, -5.0f, -10.0f},
                                {0.0f, 5.0f, -10.0f},
                                2}};
    Bvh bvh;
    bvh.build(tris);
    Ray ray;
    ray.origin = {0.0f, 0.0f, 0.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};
    HitRecord hit = closestHit(bvh, ray);
    ASSERT_TRUE(hit.valid());
    EXPECT_EQ(hit.materialId, 2);
    EXPECT_NEAR(hit.position.z, -10.0f, 1e-4f);
    // Normal faces the ray origin.
    EXPECT_GT(hit.normal.z, 0.9f);
}

} // namespace
} // namespace zatel::rt
