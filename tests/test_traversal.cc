/**
 * @file
 * Focused tests for the incremental TraversalStepper (the RT unit's
 * execution engine).
 */

#include <gtest/gtest.h>

#include "rt/bvh.hh"
#include "rt/mesh.hh"
#include "rt/traversal.hh"
#include "util/rng.hh"

namespace zatel::rt
{
namespace
{

struct SoupFixture : public testing::Test
{
    void
    SetUp() override
    {
        zatel::Rng rng(42);
        MeshBuilder mesh;
        mesh.addTriangleSoup(rng, {0.0f, 0.0f, 0.0f}, 8.0f, 400, 0.8f, 0);
        triangles = mesh.takeTriangles();
        bvh.build(triangles);
    }

    std::vector<Triangle> triangles;
    Bvh bvh;
};

TEST_F(SoupFixture, StartsAtRoot)
{
    Ray ray;
    ray.origin = {0.0f, 0.0f, 20.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};
    TraversalStepper stepper;
    stepper.init(&bvh, ray, TraversalMode::ClosestHit);
    ASSERT_FALSE(stepper.finished());
    EXPECT_EQ(stepper.pendingNode(), Bvh::kRootIndex);
}

TEST_F(SoupFixture, MissRayVisitsOnlyRoot)
{
    Ray ray;
    ray.origin = {100.0f, 100.0f, 100.0f};
    ray.direction = {1.0f, 0.0f, 0.0f};
    TraversalStepper stepper;
    stepper.init(&bvh, ray, TraversalMode::ClosestHit);
    StepInfo info = stepper.step();
    EXPECT_FALSE(info.boundsHit);
    EXPECT_TRUE(stepper.finished());
    EXPECT_EQ(stepper.nodesVisited(), 1u);
    EXPECT_FALSE(stepper.hasHit());
}

TEST_F(SoupFixture, InternalNodePushesTwoChildren)
{
    Ray ray;
    ray.origin = {0.0f, 0.0f, 20.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};
    TraversalStepper stepper;
    stepper.init(&bvh, ray, TraversalMode::ClosestHit);
    ASSERT_FALSE(bvh.node(0).isLeaf());
    StepInfo info = stepper.step();
    EXPECT_TRUE(info.boundsHit);
    EXPECT_FALSE(info.wasLeaf);
    // Left child is visited next (pushed last).
    EXPECT_EQ(stepper.pendingNode(), BvhNode::leftChildOf(0));
}

TEST_F(SoupFixture, AnyHitStopsEarly)
{
    // Aim at the thick of the soup so many triangles are hit.
    Ray ray;
    ray.origin = {0.0f, 0.0f, 20.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};

    TraversalStepper closest, any;
    closest.init(&bvh, ray, TraversalMode::ClosestHit);
    any.init(&bvh, ray, TraversalMode::AnyHit);
    while (!closest.finished())
        closest.step();
    while (!any.finished())
        any.step();

    ASSERT_TRUE(closest.hasHit());
    ASSERT_TRUE(any.hasHit());
    EXPECT_LE(any.nodesVisited(), closest.nodesVisited());
}

TEST_F(SoupFixture, VisitCountsMatchBetweenRuns)
{
    Ray ray;
    ray.origin = {2.0f, -1.0f, 20.0f};
    ray.direction = normalize(Vec3{-0.1f, 0.05f, -1.0f});
    TraversalStepper a, b;
    a.init(&bvh, ray, TraversalMode::ClosestHit);
    b.init(&bvh, ray, TraversalMode::ClosestHit);
    while (!a.finished())
        a.step();
    while (!b.finished())
        b.step();
    EXPECT_EQ(a.nodesVisited(), b.nodesVisited());
    EXPECT_EQ(a.triangleTests(), b.triangleTests());
    EXPECT_EQ(a.hit().primIndex, b.hit().primIndex);
}

TEST_F(SoupFixture, ReinitResetsState)
{
    Ray ray;
    ray.origin = {0.0f, 0.0f, 20.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};
    TraversalStepper stepper;
    stepper.init(&bvh, ray, TraversalMode::ClosestHit);
    while (!stepper.finished())
        stepper.step();
    uint32_t first_visits = stepper.nodesVisited();
    EXPECT_GT(first_visits, 0u);

    stepper.init(&bvh, ray, TraversalMode::ClosestHit);
    EXPECT_EQ(stepper.nodesVisited(), 0u);
    EXPECT_FALSE(stepper.hasHit());
    while (!stepper.finished())
        stepper.step();
    EXPECT_EQ(stepper.nodesVisited(), first_visits);
}

TEST_F(SoupFixture, LeafStepReportsTriangleTests)
{
    Ray ray;
    ray.origin = {0.0f, 0.0f, 20.0f};
    ray.direction = {0.0f, 0.0f, -1.0f};
    TraversalStepper stepper;
    stepper.init(&bvh, ray, TraversalMode::ClosestHit);
    uint32_t leaf_tests = 0;
    while (!stepper.finished()) {
        StepInfo info = stepper.step();
        if (info.wasLeaf)
            leaf_tests += info.triangleTests;
        else
            EXPECT_EQ(info.triangleTests, 0u);
    }
    EXPECT_EQ(leaf_tests, stepper.triangleTests());
}

TEST(TraversalCounters, PlusEquals)
{
    TraversalCounters a{10, 5}, b{3, 2};
    a += b;
    EXPECT_EQ(a.nodesVisited, 13u);
    EXPECT_EQ(a.triangleTests, 7u);
}

} // namespace
} // namespace zatel::rt
