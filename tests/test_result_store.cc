/**
 * @file
 * Result store tests (src/service/result_store.*): JSONL/CSV row
 * formats, %.17g bit-exact double round trips, resume scanning via
 * completedJobIds(), append mode, the --no-timing determinism switch and
 * thread-safe appends.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/result_store.hh"
#include "util/fault_injection.hh"

namespace zatel::service
{
namespace
{

std::filesystem::path
scratchDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / ("zatel-test-" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** Bit pattern of a double; distinguishes what tolerance compares hide. */
uint64_t
bitsOf(double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

ResultRow
sampleRow(const std::string &id, JobStatus status = JobStatus::Ok)
{
    ResultRow row;
    row.jobId = id;
    row.status = status;
    row.scene = "PARK";
    row.gpu = "soc";
    row.k = 4;
    row.fractionTraced = 0.1; // not exactly representable in binary
    double value = 0.5;
    for (gpusim::Metric metric : gpusim::allMetrics()) {
        row.predicted[metric] = value;
        value += 0.125;
    }
    return row;
}

size_t
countChar(const std::string &text, char c)
{
    size_t count = 0;
    for (char t : text) {
        if (t == c)
            ++count;
    }
    return count;
}

TEST(ResultStore, JobStatusNamesAreStable)
{
    EXPECT_STREQ(jobStatusName(JobStatus::Ok), "ok");
    EXPECT_STREQ(jobStatusName(JobStatus::Failed), "failed");
    EXPECT_STREQ(jobStatusName(JobStatus::Cancelled), "cancelled");
    EXPECT_STREQ(jobStatusName(JobStatus::TimedOut), "timeout");
    EXPECT_STREQ(jobStatusName(JobStatus::Skipped), "skipped");
    EXPECT_STREQ(jobStatusName(JobStatus::Degraded), "degraded");
}

TEST(ResultStore, JsonlRowOmitsEmptyMetricBlocks)
{
    ResultStore store(""); // in-memory JSONL
    EXPECT_FALSE(store.csv());

    ResultRow row;
    row.jobId = "j";
    row.status = JobStatus::Failed;
    row.error = "boom \"quoted\"";
    const std::string line = store.formatRow(row);

    EXPECT_NE(line.find("\"job\":\"j\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"status\":\"failed\""), std::string::npos);
    EXPECT_NE(line.find("\"error\":\"boom \\\"quoted\\\"\""),
              std::string::npos)
        << line;
    // No prediction ran: no metric keys at all.
    EXPECT_EQ(line.find("\"ipc\""), std::string::npos) << line;
    EXPECT_EQ(line.find("oracle_ipc"), std::string::npos) << line;
}

TEST(ResultStore, JsonlRowCarriesPredictedAndOracleMetrics)
{
    ResultStore store("");
    ResultRow row = sampleRow("j");
    for (gpusim::Metric metric : gpusim::allMetrics())
        row.oracle[metric] = 2.0;
    const std::string line = store.formatRow(row);
    EXPECT_NE(line.find("\"ipc\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"oracle_ipc\":2"), std::string::npos) << line;
    EXPECT_NE(line.find("\"sim_s\":"), std::string::npos)
        << "timing fields default on: " << line;
    // An ok row carries no error field.
    EXPECT_EQ(line.find("\"error\""), std::string::npos) << line;
}

TEST(ResultStore, DoublesRoundTripBitExact)
{
    ResultStore store("");
    ResultRow row = sampleRow("j");
    row.fractionTraced = 1.0 / 3.0;
    const std::string line = store.formatRow(row);

    const std::string tag = "\"fraction_traced\":";
    const size_t pos = line.find(tag);
    ASSERT_NE(pos, std::string::npos) << line;
    const double parsed =
        std::strtod(line.c_str() + pos + tag.size(), nullptr);
    EXPECT_EQ(bitsOf(parsed), bitsOf(row.fractionTraced))
        << "%.17g output must re-parse to the identical bit pattern";
}

TEST(ResultStore, NoTimingOmitsWallClockFields)
{
    ResultStoreOptions options;
    options.includeTiming = false;
    ResultStore store("", options);
    const std::string line = store.formatRow(sampleRow("j"));
    EXPECT_EQ(line.find("preprocess_s"), std::string::npos) << line;
    EXPECT_EQ(line.find("\"sim_s\""), std::string::npos) << line;
    EXPECT_EQ(line.find("max_group_s"), std::string::npos) << line;
    EXPECT_EQ(line.find("oracle_s"), std::string::npos) << line;
}

TEST(ResultStore, CsvHeaderMatchesRowColumnCount)
{
    const std::filesystem::path dir = scratchDir("store-csv");
    const std::string path = (dir / "out.csv").string();
    {
        ResultStore store(path);
        EXPECT_TRUE(store.csv());
        store.append(sampleRow("a"));
    }
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].rfind("job,status,scene,gpu,k,fraction_traced", 0),
              0u)
        << lines[0];
    EXPECT_EQ(countChar(lines[0], ','), countChar(lines[1], ','))
        << "header and data row column counts diverge";
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, CsvQuotesErrorMessagesWithCommas)
{
    const std::filesystem::path dir = scratchDir("store-csv-error");
    const std::string path = (dir / "err.csv").string();
    {
        ResultStore store(path);
        ResultRow row;
        row.jobId = "j";
        row.status = JobStatus::Failed;
        row.error = "boom, with \"quotes\"";
        store.append(row);
        std::vector<std::string> lines = readLines(path);
        ASSERT_EQ(lines.size(), 2u);
        EXPECT_NE(lines[1].find("\"boom, with \"\"quotes\"\"\""),
                  std::string::npos)
            << lines[1];
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, CompletedJobIdsScansJsonl)
{
    const std::filesystem::path dir = scratchDir("store-resume-jsonl");
    const std::string path = (dir / "out.jsonl").string();
    {
        ResultStore store(path);
        store.append(sampleRow("good-1"));
        store.append(sampleRow("bad", JobStatus::Failed));
        store.append(sampleRow("late", JobStatus::TimedOut));
        store.append(sampleRow("good-2"));
        store.append(sampleRow("prior", JobStatus::Skipped));
    }
    std::set<std::string> completed = ResultStore::completedJobIds(path);
    EXPECT_EQ(completed,
              (std::set<std::string>{"good-1", "good-2", "prior"}))
        << "only ok/skipped rows count as completed";
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, CompletedJobIdsScansCsv)
{
    const std::filesystem::path dir = scratchDir("store-resume-csv");
    const std::string path = (dir / "out.csv").string();
    {
        ResultStore store(path);
        store.append(sampleRow("good"));
        store.append(sampleRow("bad", JobStatus::Failed));
    }
    EXPECT_EQ(ResultStore::completedJobIds(path),
              (std::set<std::string>{"good"}));
    EXPECT_TRUE(
        ResultStore::completedJobIds((dir / "missing.csv").string())
            .empty());
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, AppendModeKeepsExistingRowsAndHeader)
{
    const std::filesystem::path dir = scratchDir("store-append");
    const std::string path = (dir / "out.csv").string();
    {
        ResultStore store(path);
        store.append(sampleRow("first"));
    }
    {
        ResultStoreOptions options;
        options.append = true;
        ResultStore store(path, options);
        store.append(sampleRow("second"));
    }
    std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 3u) << "header + two data rows";
    size_t headers = 0;
    for (const std::string &line : lines) {
        if (line.rfind("job,status", 0) == 0)
            ++headers;
    }
    EXPECT_EQ(headers, 1u) << "append mode must not duplicate the header";
    EXPECT_EQ(lines[1].rfind("first,", 0), 0u);
    EXPECT_EQ(lines[2].rfind("second,", 0), 0u);

    // A truncating re-open starts over.
    {
        ResultStore store(path);
        store.append(sampleRow("only"));
    }
    EXPECT_EQ(readLines(path).size(), 2u);
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, ConcurrentAppendsAreAllRecorded)
{
    ResultStore store(""); // in-memory
    constexpr int kThreads = 8;
    constexpr int kRowsPerThread = 25;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&store, t]() {
            for (int i = 0; i < kRowsPerThread; ++i) {
                const JobStatus status =
                    (i % 2 == 0) ? JobStatus::Ok : JobStatus::Failed;
                std::string id = std::to_string(t);
                id += "-";
                id += std::to_string(i);
                store.append(sampleRow(id, status));
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(store.rowCount(),
              static_cast<size_t>(kThreads * kRowsPerThread));
    EXPECT_EQ(store.countWithStatus(JobStatus::Ok),
              static_cast<size_t>(kThreads * 13));
    EXPECT_EQ(store.countWithStatus(JobStatus::Failed),
              static_cast<size_t>(kThreads * 12));

    std::set<std::string> ids;
    for (const ResultRow &row : store.rows())
        ids.insert(row.jobId);
    EXPECT_EQ(ids.size(), static_cast<size_t>(kThreads * kRowsPerThread))
        << "no row lost or duplicated under concurrent appends";
}

TEST(ResultStore, DegradedJsonlRowsAppendDetailKeysAfterTheOkLayout)
{
    ResultStore store("");
    ResultRow ok = sampleRow("j-ok");
    ResultRow degraded = sampleRow("j-deg", JobStatus::Degraded);
    degraded.failedGroups = 2;
    degraded.survivorExtrapolation = 1.25;

    const std::string ok_line = store.formatRow(ok);
    const std::string degraded_line = store.formatRow(degraded);

    // Ok rows must stay byte-identical to the pre-resilience layout:
    // no degraded-only keys may leak into them.
    EXPECT_EQ(ok_line.find("failed_groups"), std::string::npos) << ok_line;
    EXPECT_EQ(ok_line.find("survivor_extrapolation"), std::string::npos);

    EXPECT_NE(degraded_line.find("\"status\":\"degraded\""),
              std::string::npos)
        << degraded_line;
    EXPECT_NE(degraded_line.find("\"failed_groups\":2"), std::string::npos)
        << degraded_line;
    EXPECT_NE(degraded_line.find("\"survivor_extrapolation\":"),
              std::string::npos)
        << degraded_line;
}

TEST(ResultStore, CompletedJobIdsIgnoresATruncatedFinalJsonlLine)
{
    // kill -9 mid-append: the final line stops mid-object. Resume must
    // not trust it — even though its status substring survived intact.
    const auto dir = scratchDir("truncated-jsonl");
    const std::string path = (dir / "results.jsonl").string();

    ResultStore fmt("");
    {
        std::ofstream out(path);
        out << fmt.formatRow(sampleRow("j1")) << "\n";
        out << fmt.formatRow(sampleRow("j2")) << "\n";
        const std::string third = fmt.formatRow(sampleRow("j3"));
        out << third.substr(0, third.size() / 2); // no closing '}'
    }

    const std::set<std::string> completed =
        ResultStore::completedJobIds(path);
    EXPECT_EQ(completed, (std::set<std::string>{"j1", "j2"}))
        << "the torn j3 row must re-execute on resume";
}

TEST(ResultStore, CompletedJobIdsIgnoresATruncatedCsvRow)
{
    const auto dir = scratchDir("truncated-csv");
    const std::string path = (dir / "results.csv").string();
    {
        ResultStore store(path);
        store.append(sampleRow("j1"));
        store.finalize();
    }
    {
        // A row the writer died in the middle of: right id and status,
        // but short of the header's column count.
        std::ofstream out(path, std::ios::app);
        out << "j2,ok,PARK";
    }

    const std::set<std::string> completed =
        ResultStore::completedJobIds(path);
    EXPECT_EQ(completed, (std::set<std::string>{"j1"}));
}

TEST(ResultStore, DegradedRowsResumeAsDoneUnlessRetryRequested)
{
    // A degraded prediction is a real, usable result: by default a
    // resumed campaign keeps it (a distributed merge synthesizes
    // Degraded rows for exhausted shards, and resuming must not retry
    // the whole campaign because of them). zatel-batch's
    // --retry-degraded opts back into re-running them via
    // degraded_as_done=false.
    const auto dir = scratchDir("degraded-resume");
    const std::string path = (dir / "results.jsonl").string();
    {
        ResultStore store(path);
        store.append(sampleRow("j-ok"));
        store.append(sampleRow("j-deg", JobStatus::Degraded));
        store.append(sampleRow("j-failed", JobStatus::Failed));
        store.finalize();
    }
    EXPECT_EQ(ResultStore::completedJobIds(path),
              (std::set<std::string>{"j-ok", "j-deg"}));
    EXPECT_EQ(
        ResultStore::completedJobIds(path, /*degraded_as_done=*/false),
        (std::set<std::string>{"j-ok"}));
}

TEST(ResultStore, FinalizeIsIdempotentAndSafeWithoutAFile)
{
    ResultStore memory("");
    memory.append(sampleRow("m"));
    memory.finalize(); // no file: must be a no-op, not a crash
    memory.finalize();

    const auto dir = scratchDir("finalize");
    const std::string path = (dir / "results.jsonl").string();
    ResultStore store(path);
    store.append(sampleRow("j1"));
    store.finalize();
    store.finalize();
    store.append(sampleRow("j2")); // appends after finalize still land
    store.finalize();
    EXPECT_EQ(readLines(path).size(), 2u);
}

TEST(ResultStore, InjectedAppendFaultKeepsTheRowInMemory)
{
    FaultRegistry::global().resetForTest();
    FaultRegistry::global().setPolicy("result.store.append",
                                      FaultPolicy::nthHit(1));

    const auto dir = scratchDir("append-fault");
    const std::string path = (dir / "results.jsonl").string();
    {
        ResultStore store(path);
        store.append(sampleRow("lost-on-disk")); // injected failure
        store.append(sampleRow("written"));
        EXPECT_EQ(store.writeFailures(), 1u);
        // Both rows survive in memory regardless of the disk outcome.
        EXPECT_EQ(store.rowCount(), 2u);
        store.finalize();
    }
    FaultRegistry::global().resetForTest();

    const std::vector<std::string> lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u)
        << "exactly the non-faulted row reaches the file";
    EXPECT_NE(lines[0].find("\"job\":\"written\""), std::string::npos);
}

} // namespace
} // namespace zatel::service
