/**
 * @file
 * Tests for the campaign service's content-addressed artifact cache:
 * stable hashing, single-flight builds, LRU byte-budget eviction,
 * counters, and on-disk persistence round trips.
 *
 * The ArtifactCache* suites are part of the tsan-determinism CI subset
 * (see CMakePresets.json): the concurrency tests double as the cache's
 * race detector.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/config.hh"
#include "gpusim/stats.hh"
#include "heatmap/heatmap.hh"
#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "service/artifact_cache.hh"
#include "zatel/predictor.hh"

namespace zatel::service
{
namespace
{

/** Fresh scratch directory under the build tree. */
std::string
scratchDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / ("zatel-test-" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

std::shared_ptr<const int>
boxedInt(int value)
{
    return std::make_shared<const int>(value);
}

// ---------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------

TEST(ArtifactCacheHash, FnvKnownAnswer)
{
    // FNV-1a 64-bit of "abc" (published test vector).
    HashStream h;
    h.bytes("abc", 3);
    EXPECT_EQ(h.digest(), 0xe71fa2190541574bull);
}

TEST(ArtifactCacheHash, StreamIsOrderSensitive)
{
    HashStream a;
    a.u32(1).u32(2);
    HashStream b;
    b.u32(2).u32(1);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(ArtifactCacheHash, SceneContentHashIsStableAcrossRebuilds)
{
    rt::Scene first =
        rt::buildScene(rt::SceneId::Bunny, rt::SceneDetail{0.3f}, 7);
    rt::Scene second =
        rt::buildScene(rt::SceneId::Bunny, rt::SceneDetail{0.3f}, 7);
    EXPECT_EQ(hashSceneContent(first), hashSceneContent(second));

    rt::Scene other_seed =
        rt::buildScene(rt::SceneId::Bunny, rt::SceneDetail{0.3f}, 8);
    EXPECT_NE(hashSceneContent(first), hashSceneContent(other_seed));

    rt::Scene other_scene =
        rt::buildScene(rt::SceneId::Ship, rt::SceneDetail{0.3f}, 7);
    EXPECT_NE(hashSceneContent(first), hashSceneContent(other_scene));
}

TEST(ArtifactCacheHash, GpuConfigHashCoversFields)
{
    gpusim::GpuConfig base = gpusim::GpuConfig::mobileSoc();
    gpusim::GpuConfig changed = base;
    EXPECT_EQ(hashGpuConfig(base), hashGpuConfig(changed));
    changed.numSms += 1;
    EXPECT_NE(hashGpuConfig(base), hashGpuConfig(changed));

    gpusim::GpuConfig clocks = base;
    clocks.memClockMhz += 1.0;
    EXPECT_NE(hashGpuConfig(base), hashGpuConfig(clocks));

    // epochLength gates warp dispatch (a model parameter): keyed.
    // simThreads is execution strategy (bit-identical output at any
    // thread count): deliberately NOT keyed.
    gpusim::GpuConfig epoch = base;
    epoch.epochLength = 16;
    EXPECT_NE(hashGpuConfig(base), hashGpuConfig(epoch));

    gpusim::GpuConfig threads = base;
    threads.simThreads = 7;
    EXPECT_EQ(hashGpuConfig(base), hashGpuConfig(threads));
}

TEST(ArtifactCacheHash, HeatmapKeyTracksPreprocessingParams)
{
    core::ZatelParams params;
    const uint64_t scene_hash = 0xABCDEF0123456789ull;
    const uint64_t base = heatmapKey(scene_hash, params);
    EXPECT_EQ(base, heatmapKey(scene_hash, params));

    core::ZatelParams resized = params;
    resized.width = 99;
    EXPECT_NE(base, heatmapKey(scene_hash, resized));

    core::ZatelParams reseeded = params;
    reseeded.seed ^= 1;
    EXPECT_NE(base, heatmapKey(scene_hash, reseeded));

    core::ZatelParams noisy = params;
    noisy.profiler.source = heatmap::ProfilingSource::HardwareTimer;
    EXPECT_NE(base, heatmapKey(scene_hash, noisy));

    // Selection parameters do NOT change the heatmap: jobs that differ
    // only in trace fraction share the profiled artifact.
    core::ZatelParams refractioned = params;
    refractioned.selector.fixedFraction = 0.42;
    EXPECT_EQ(base, heatmapKey(scene_hash, refractioned));
}

TEST(ArtifactCacheHash, ScenePackKeyTracksRecipe)
{
    rt::BvhBuildParams bvh;
    const uint64_t base = scenePackKey("PARK", 0.5f, 7, bvh);
    EXPECT_EQ(base, scenePackKey("PARK", 0.5f, 7, bvh));
    EXPECT_NE(base, scenePackKey("BUNNY", 0.5f, 7, bvh));
    EXPECT_NE(base, scenePackKey("PARK", 0.6f, 7, bvh));
    EXPECT_NE(base, scenePackKey("PARK", 0.5f, 8, bvh));
    rt::BvhBuildParams fat_leaves = bvh;
    fat_leaves.maxLeafSize = 16;
    EXPECT_NE(base, scenePackKey("PARK", 0.5f, 7, fat_leaves));
}

// ---------------------------------------------------------------------
// getOrBuild / counters / eviction
// ---------------------------------------------------------------------

TEST(ArtifactCache, BuildsOnceThenHits)
{
    ArtifactCache cache(1 << 20);
    int builds = 0;
    auto build = [&]() -> ArtifactCache::BuiltValue {
        ++builds;
        return {boxedInt(42), 8};
    };
    auto first = cache.getOrBuildRaw(ArtifactKind::ScenePack, 1, build);
    auto second = cache.getOrBuildRaw(ArtifactKind::ScenePack, 1, build);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(first.get(), second.get());
    ArtifactCache::Counters c = cache.counters(ArtifactKind::ScenePack);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.diskHits, 0u);
}

TEST(ArtifactCache, KindsDoNotCollide)
{
    ArtifactCache cache(1 << 20);
    auto a = cache.getOrBuildRaw(ArtifactKind::ScenePack, 5,
                                 [&]() -> ArtifactCache::BuiltValue {
                                     return {boxedInt(1), 8};
                                 });
    auto b = cache.getOrBuildRaw(ArtifactKind::OracleStats, 5,
                                 [&]() -> ArtifactCache::BuiltValue {
                                     return {boxedInt(2), 8};
                                 });
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.usage().entries, 2u);
}

TEST(ArtifactCache, LruEvictionRespectsByteBudget)
{
    ArtifactCache cache(100);
    auto put = [&](uint64_t key, int value) {
        cache.putRaw(ArtifactKind::ScenePack, key, boxedInt(value), 40);
    };
    put(1, 1);
    put(2, 2);
    EXPECT_EQ(cache.usage().bytesInUse, 80u);

    // Touch key 1 so key 2 becomes the LRU victim.
    EXPECT_NE(cache.peekRaw(ArtifactKind::ScenePack, 1), nullptr);
    put(3, 3);
    EXPECT_EQ(cache.usage().bytesInUse, 80u);
    EXPECT_EQ(cache.counters(ArtifactKind::ScenePack).evictions, 1u);
    EXPECT_NE(cache.peekRaw(ArtifactKind::ScenePack, 1), nullptr);
    EXPECT_EQ(cache.peekRaw(ArtifactKind::ScenePack, 2), nullptr);
    EXPECT_NE(cache.peekRaw(ArtifactKind::ScenePack, 3), nullptr);
}

TEST(ArtifactCache, OversizedNewestEntryIsKept)
{
    ArtifactCache cache(100);
    cache.putRaw(ArtifactKind::ScenePack, 1, boxedInt(1), 40);
    cache.putRaw(ArtifactKind::ScenePack, 2, boxedInt(2), 400);
    // The oversized newcomer evicts everything else but stays resident.
    EXPECT_EQ(cache.usage().entries, 1u);
    EXPECT_NE(cache.peekRaw(ArtifactKind::ScenePack, 2), nullptr);
}

TEST(ArtifactCache, BuilderExceptionLeavesKeyAbsent)
{
    ArtifactCache cache(1 << 20);
    EXPECT_THROW(
        cache.getOrBuildRaw(ArtifactKind::ScenePack, 9,
                            [&]() -> ArtifactCache::BuiltValue {
                                throw std::runtime_error("boom");
                            }),
        std::runtime_error);
    // The failed key is absent, and a later build succeeds.
    int builds = 0;
    auto value = cache.getOrBuildRaw(ArtifactKind::ScenePack, 9,
                                     [&]() -> ArtifactCache::BuiltValue {
                                         ++builds;
                                         return {boxedInt(7), 8};
                                     });
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(*std::static_pointer_cast<const int>(value), 7);
}

// ---------------------------------------------------------------------
// Concurrency (runs under the tsan preset)
// ---------------------------------------------------------------------

TEST(ArtifactCacheConcurrency, SingleFlightBuildsExactlyOnce)
{
    ArtifactCache cache(1 << 20);
    std::atomic<int> builds{0};
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<std::shared_ptr<const void>> seen(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t]() {
            seen[t] = cache.getOrBuildRaw(
                ArtifactKind::QuantizedHeatmap, 77,
                [&]() -> ArtifactCache::BuiltValue {
                    ++builds;
                    // Let other threads pile onto the in-flight future.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
                    return {boxedInt(123), 16};
                });
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(builds.load(), 1);
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[t].get(), seen[0].get());
    ArtifactCache::Counters c =
        cache.counters(ArtifactKind::QuantizedHeatmap);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(ArtifactCacheConcurrency, ConcurrentGetPutMixIsRaceFree)
{
    ArtifactCache cache(4096);
    constexpr int kThreads = 6;
    constexpr int kIters = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t]() {
            for (int i = 0; i < kIters; ++i) {
                const uint64_t key = static_cast<uint64_t>((t + i) % 16);
                if (i % 3 == 0) {
                    cache.putRaw(ArtifactKind::OracleStats, key,
                                 boxedInt(i), 64);
                } else if (i % 3 == 1) {
                    cache.peekRaw(ArtifactKind::OracleStats, key);
                } else {
                    cache.getOrBuildRaw(
                        ArtifactKind::OracleStats, key,
                        [&]() -> ArtifactCache::BuiltValue {
                            return {boxedInt(i), 64};
                        });
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    // Residency invariant: within budget (single entries are small).
    EXPECT_LE(cache.usage().bytesInUse, 4096u);
    ArtifactCache::Counters totals = cache.totals();
    EXPECT_GT(totals.hits + totals.misses, 0u);
}

// ---------------------------------------------------------------------
// Disk persistence
// ---------------------------------------------------------------------

TEST(ArtifactCacheDisk, HeatmapRoundTripsByteIdentical)
{
    const std::string dir = scratchDir("cache-heatmap");
    const std::vector<double> costs = {0.1, 0.9, 0.4, 0.7,
                                       0.2, 0.3, 1.0, 0.6};
    heatmap::Heatmap map = heatmap::Heatmap::fromCosts(4, 2, costs);
    auto quantized = std::make_shared<heatmap::QuantizedHeatmap>(
        heatmap::QuantizedHeatmap::quantize(map, 3, 0x5EED));

    const uint64_t key = 0x1122334455667788ull;
    {
        ArtifactCache writer(1 << 20, dir);
        writer.getOrBuildRaw(
            ArtifactKind::QuantizedHeatmap, key,
            [&]() -> ArtifactCache::BuiltValue {
                return {quantized, 256};
            });
        EXPECT_EQ(writer.counters(ArtifactKind::QuantizedHeatmap).misses,
                  1u);
    }

    // A second cache (fresh process, conceptually) loads from disk.
    ArtifactCache reader(1 << 20, dir);
    int builds = 0;
    auto loaded_raw = reader.getOrBuildRaw(
        ArtifactKind::QuantizedHeatmap, key,
        [&]() -> ArtifactCache::BuiltValue {
            ++builds;
            return {quantized, 256};
        });
    EXPECT_EQ(builds, 0) << "should have come from disk";
    ArtifactCache::Counters c =
        reader.counters(ArtifactKind::QuantizedHeatmap);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.diskHits, 1u);
    EXPECT_EQ(c.misses, 0u);

    auto loaded = std::static_pointer_cast<const heatmap::QuantizedHeatmap>(
        loaded_raw);
    ASSERT_EQ(loaded->width(), quantized->width());
    ASSERT_EQ(loaded->height(), quantized->height());
    EXPECT_EQ(loaded->clusterIds(), quantized->clusterIds());
    EXPECT_EQ(loaded->coolnessValues(), quantized->coolnessValues());
    EXPECT_EQ(loaded->populations(), quantized->populations());
    ASSERT_EQ(loaded->paletteSize(), quantized->paletteSize());
    for (uint32_t i = 0; i < quantized->paletteSize(); ++i) {
        EXPECT_EQ(loaded->paletteColor(i).x, quantized->paletteColor(i).x);
        EXPECT_EQ(loaded->paletteColor(i).y, quantized->paletteColor(i).y);
        EXPECT_EQ(loaded->paletteColor(i).z, quantized->paletteColor(i).z);
    }
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCacheDisk, OracleStatsRoundTrip)
{
    const std::string dir = scratchDir("cache-oracle");
    gpusim::GpuStats stats;
    stats.cycles = 123456;
    stats.threadInstructions = 777;
    stats.l2Misses = 42;
    stats.pixelsFiltered = 9;

    const uint64_t key = 0xFEEDF00Dull;
    {
        ArtifactCache writer(1 << 20, dir);
        writer.getOrBuildRaw(
            ArtifactKind::OracleStats, key,
            [&]() -> ArtifactCache::BuiltValue {
                return {std::make_shared<const gpusim::GpuStats>(stats),
                        sizeof(gpusim::GpuStats)};
            });
    }
    ArtifactCache reader(1 << 20, dir);
    auto loaded = std::static_pointer_cast<const gpusim::GpuStats>(
        reader.getOrBuildRaw(ArtifactKind::OracleStats, key,
                             [&]() -> ArtifactCache::BuiltValue {
                                 ADD_FAILURE() << "should load from disk";
                                 return {nullptr, 0};
                             }));
    EXPECT_EQ(loaded->cycles, stats.cycles);
    EXPECT_EQ(loaded->threadInstructions, stats.threadInstructions);
    EXPECT_EQ(loaded->l2Misses, stats.l2Misses);
    EXPECT_EQ(loaded->pixelsFiltered, stats.pixelsFiltered);
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCacheDisk, CorruptArtifactFallsBackToBuild)
{
    const std::string dir = scratchDir("cache-corrupt");
    const uint64_t key = 0xBADC0DEull;
    {
        // Write garbage where the artifact would live.
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(key));
        std::ofstream out(dir + "/oracle-" + std::string(hex) + ".zart",
                          std::ios::binary);
        out << "this is not an artifact";
    }
    ArtifactCache cache(1 << 20, dir);
    int builds = 0;
    cache.getOrBuildRaw(ArtifactKind::OracleStats, key,
                        [&]() -> ArtifactCache::BuiltValue {
                            ++builds;
                            return {std::make_shared<const gpusim::GpuStats>(
                                        gpusim::GpuStats{}),
                                    64};
                        });
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(cache.counters(ArtifactKind::OracleStats).diskHits, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCacheDisk, ScenePacksAreNotPersisted)
{
    const std::string dir = scratchDir("cache-nopersist");
    {
        ArtifactCache cache(1 << 20, dir);
        cache.getOrBuildRaw(ArtifactKind::ScenePack, 3,
                            [&]() -> ArtifactCache::BuiltValue {
                                return {boxedInt(3), 8};
                            });
    }
    size_t files = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 0u);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace zatel::service
