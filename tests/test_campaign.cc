/**
 * @file
 * Campaign specification tests (src/service/campaign.*): field
 * application, JSONL and CSV parsing, '|' sweep-cell expansion,
 * deterministic auto job ids, and finalization rules.
 *
 * The auto-id determinism tests double as the contract behind --resume:
 * re-parsing the same campaign file must always name jobs identically,
 * or completedJobIds() matching breaks silently.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/campaign.hh"

namespace zatel::service
{
namespace
{

std::filesystem::path
scratchDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / ("zatel-test-" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
writeFile(const std::filesystem::path &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
    return path.string();
}

TEST(Campaign, ApplyJobFieldSetsPipelineParams)
{
    CampaignJob job;
    applyJobField(job, "id", "my-job");
    applyJobField(job, "scene", "BUNNY");
    applyJobField(job, "detail", "0.5");
    applyJobField(job, "scene_seed", "42");
    applyJobField(job, "gpu", "rtx2060");
    applyJobField(job, "res", "96");
    applyJobField(job, "spp", "2");
    applyJobField(job, "seed", "7");
    applyJobField(job, "fraction", "0.4");
    applyJobField(job, "k", "4");
    applyJobField(job, "division", "coarse");
    applyJobField(job, "distribution", "exptmp");
    applyJobField(job, "regression", "true");
    applyJobField(job, "downscale", "false");
    applyJobField(job, "profile_noise", "0.02");
    applyJobField(job, "quantize_colors", "5");
    applyJobField(job, "threads", "3");
    applyJobField(job, "priority", "9");
    applyJobField(job, "oracle", "yes");

    EXPECT_EQ(job.id, "my-job");
    EXPECT_EQ(job.scene, "BUNNY");
    EXPECT_FLOAT_EQ(job.sceneDetail, 0.5f);
    EXPECT_EQ(job.sceneSeed, 42u);
    EXPECT_EQ(job.gpu, "rtx2060");
    EXPECT_EQ(job.params.width, 96u);
    EXPECT_EQ(job.params.height, 96u);
    EXPECT_EQ(job.params.samplesPerPixel, 2u);
    EXPECT_EQ(job.params.seed, 7u);
    ASSERT_TRUE(job.params.selector.fixedFraction.has_value());
    EXPECT_DOUBLE_EQ(*job.params.selector.fixedFraction, 0.4);
    ASSERT_TRUE(job.params.forcedK.has_value());
    EXPECT_EQ(*job.params.forcedK, 4u);
    EXPECT_EQ(job.params.partition.method,
              core::DivisionMethod::CoarseGrained);
    EXPECT_EQ(job.params.selector.distribution,
              core::DistributionMethod::ExpTemp);
    EXPECT_EQ(job.params.extrapolation,
              core::ExtrapolationMethod::ExponentialRegression);
    EXPECT_FALSE(job.params.downscaleGpu);
    EXPECT_EQ(job.params.profiler.source,
              heatmap::ProfilingSource::HardwareTimer);
    EXPECT_DOUBLE_EQ(job.params.profiler.timerNoise, 0.02);
    EXPECT_EQ(job.params.quantizeColors, 5u);
    EXPECT_EQ(job.params.numThreads, 3u);
    EXPECT_EQ(job.priority, 9);
    EXPECT_TRUE(job.withOracle);
}

TEST(Campaign, ApplyJobFieldWidthHeightAreIndependent)
{
    CampaignJob job;
    applyJobField(job, "width", "64");
    applyJobField(job, "height", "32");
    EXPECT_EQ(job.params.width, 64u);
    EXPECT_EQ(job.params.height, 32u);
}

TEST(Campaign, ApplyJobFieldEmptyValueKeepsDefault)
{
    CampaignJob job;
    const uint32_t default_width = job.params.width;
    applyJobField(job, "res", "");
    EXPECT_EQ(job.params.width, default_width);
    EXPECT_FALSE(job.params.selector.fixedFraction.has_value());
    applyJobField(job, "fraction", "");
    EXPECT_FALSE(job.params.selector.fixedFraction.has_value());
}

TEST(Campaign, ApplyJobFieldRejectsBadInput)
{
    CampaignJob job;
    EXPECT_THROW(applyJobField(job, "wat", "1"), CampaignError);
    EXPECT_THROW(applyJobField(job, "res", "96px"), CampaignError);
    EXPECT_THROW(applyJobField(job, "fraction", "0.4x"), CampaignError);
    EXPECT_THROW(applyJobField(job, "oracle", "maybe"), CampaignError);
    EXPECT_THROW(applyJobField(job, "division", "diagonal"), CampaignError);
    EXPECT_THROW(applyJobField(job, "distribution", "zipf"), CampaignError);
}

TEST(Campaign, ApplyJobFieldRejectsNegativeIntegers)
{
    // std::stoull accepts a leading '-' and wraps it into the unsigned
    // range ("-1" -> 2^64-1); the parser must reject the sign instead
    // of letting a typo'd negative become an absurdly large value.
    CampaignJob job;
    EXPECT_THROW(applyJobField(job, "res", "-1"), CampaignError);
    EXPECT_THROW(applyJobField(job, "seed", "-7"), CampaignError);
    EXPECT_THROW(applyJobField(job, "scene_seed", "  -42"), CampaignError);
    EXPECT_THROW(applyJobField(job, "threads", "-1"), CampaignError);
    EXPECT_THROW(applyJobField(job, "k", "-2"), CampaignError);
    // Sanity: the same fields still accept the non-negative forms.
    applyJobField(job, "res", "96");
    applyJobField(job, "seed", "7");
    EXPECT_EQ(job.params.width, 96u);
}

TEST(Campaign, GpuConfigFromNameResolvesAliases)
{
    EXPECT_EQ(gpuConfigFromName("soc").name,
              gpuConfigFromName("mobile").name);
    EXPECT_EQ(gpuConfigFromName("rtx2060").name,
              gpuConfigFromName("rtx").name);
    EXPECT_NE(gpuConfigFromName("soc").name,
              gpuConfigFromName("rtx2060").name);
    EXPECT_THROW(gpuConfigFromName("tpu"), CampaignError);
}

TEST(Campaign, JsonlParsingSkipsCommentsAndBlankLines)
{
    std::istringstream in(
        "# campaign header comment\n"
        "\n"
        "{\"scene\": \"BUNNY\", \"gpu\": \"rtx\", \"res\": 96, "
        "\"fraction\": 0.4, \"oracle\": true}\n"
        "   \n"
        "{\"id\": \"explicit\", \"scene\": \"PARK\", \"detail\": null}\n");
    std::vector<CampaignJob> jobs = parseCampaignJsonl(in);
    ASSERT_EQ(jobs.size(), 2u);

    EXPECT_EQ(jobs[0].scene, "BUNNY");
    EXPECT_EQ(jobs[0].gpu, "rtx");
    EXPECT_EQ(jobs[0].params.width, 96u);
    ASSERT_TRUE(jobs[0].params.selector.fixedFraction.has_value());
    EXPECT_DOUBLE_EQ(*jobs[0].params.selector.fixedFraction, 0.4);
    EXPECT_TRUE(jobs[0].withOracle);

    EXPECT_EQ(jobs[1].id, "explicit");
    EXPECT_EQ(jobs[1].scene, "PARK");
    // "detail": null keeps the default.
    EXPECT_FLOAT_EQ(jobs[1].sceneDetail, 1.0f);
}

TEST(Campaign, JsonlParsingRejectsMalformedLines)
{
    const char *bad_lines[] = {
        "not json",
        "{\"scene\" \"PARK\"}",          // missing ':'
        "{\"scene\": \"PARK\"} trailing", // junk after the object
        "{\"scene\": \"PARK\"",           // unterminated object
        "{\"wat\": 1}",                   // unknown field
        "{\"res\": \"NaNpx\"}",           // unparsable value
    };
    for (const char *line : bad_lines) {
        std::istringstream in(line);
        EXPECT_THROW(parseCampaignJsonl(in), CampaignError)
            << "accepted malformed line: " << line;
    }
}

TEST(Campaign, CsvSweepCellsExpandToCartesianProduct)
{
    std::istringstream in(
        "# sweep over scene x gpu\n"
        "scene,gpu,res\n"
        "PARK|BUNNY,soc|rtx2060,96\n"
        "SPNZA,soc,64|128\n");
    std::vector<CampaignJob> jobs = parseCampaignCsv(in);
    ASSERT_EQ(jobs.size(), 6u);

    // First row: odometer order, leftmost column fastest.
    EXPECT_EQ(jobs[0].scene, "PARK");
    EXPECT_EQ(jobs[0].gpu, "soc");
    EXPECT_EQ(jobs[1].scene, "BUNNY");
    EXPECT_EQ(jobs[1].gpu, "soc");
    EXPECT_EQ(jobs[2].scene, "PARK");
    EXPECT_EQ(jobs[2].gpu, "rtx2060");
    EXPECT_EQ(jobs[3].scene, "BUNNY");
    EXPECT_EQ(jobs[3].gpu, "rtx2060");
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(jobs[i].params.width, 96u) << "job " << i;

    // Second row sweeps only the resolution.
    EXPECT_EQ(jobs[4].scene, "SPNZA");
    EXPECT_EQ(jobs[4].params.width, 64u);
    EXPECT_EQ(jobs[5].scene, "SPNZA");
    EXPECT_EQ(jobs[5].params.width, 128u);
}

TEST(Campaign, CsvQuotedCellsMayHoldCommas)
{
    std::istringstream in("scene,id\n"
                          "PARK,\"job, the first\"\n");
    std::vector<CampaignJob> jobs = parseCampaignCsv(in);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].id, "job, the first");
}

TEST(Campaign, CsvRejectsCellCountMismatch)
{
    std::istringstream in("scene,gpu,res\n"
                          "PARK,soc\n");
    EXPECT_THROW(parseCampaignCsv(in), CampaignError);
}

TEST(Campaign, AutoJobIdIsDeterministicAndParameterSensitive)
{
    CampaignJob job;
    job.scene = "PARK";
    job.gpu = "soc";
    job.params.width = 96;
    job.withOracle = true;

    const std::string id = autoJobId(job);
    EXPECT_EQ(id, autoJobId(job)) << "auto id must be stable";
    EXPECT_EQ(id.rfind("park-soc-r96-cmp-", 0), 0u) << "id was: " << id;
    EXPECT_EQ(id.size(), std::string("park-soc-r96-cmp-").size() + 8);

    CampaignJob other = job;
    other.params.selector.fixedFraction = 0.4;
    EXPECT_NE(autoJobId(other), id)
        << "parameter changes must change the id hash";

    // The explicit id is NOT part of the parameter hash.
    CampaignJob named = job;
    named.id = "custom";
    EXPECT_EQ(jobParamsHash(named), jobParamsHash(job));
}

TEST(Campaign, JobParamsHashTracksEveryKnob)
{
    const CampaignJob base;
    const uint64_t base_hash = jobParamsHash(base);

    const char *fields[][2] = {
        {"scene", "BUNNY"},     {"detail", "0.5"},
        {"scene_seed", "1"},    {"gpu", "rtx"},
        {"res", "96"},          {"spp", "2"},
        {"seed", "7"},          {"fraction", "0.4"},
        {"k", "4"},             {"division", "coarse"},
        {"distribution", "lintmp"}, {"regression", "true"},
        {"downscale", "false"}, {"profile_noise", "0.02"},
        {"quantize_colors", "5"}, {"oracle", "true"},
    };
    for (const auto &field : fields) {
        CampaignJob job;
        applyJobField(job, field[0], field[1]);
        EXPECT_NE(jobParamsHash(job), base_hash)
            << "field '" << field[0] << "' is not covered by the hash";
    }
}

TEST(Campaign, FinalizeCampaignFillsIdsAndRejectsDuplicates)
{
    std::vector<CampaignJob> empty;
    EXPECT_THROW(finalizeCampaign(empty), CampaignError);

    std::vector<CampaignJob> jobs(2);
    jobs[1].params.width = 96;
    jobs[1].params.height = 96;
    finalizeCampaign(jobs);
    EXPECT_FALSE(jobs[0].id.empty());
    EXPECT_FALSE(jobs[1].id.empty());
    EXPECT_NE(jobs[0].id, jobs[1].id);

    // Two jobs with identical parameters collide on the auto id.
    std::vector<CampaignJob> twins(2);
    EXPECT_THROW(finalizeCampaign(twins), CampaignError);

    // An explicit id used twice collides too.
    std::vector<CampaignJob> named(2);
    named[0].id = "same";
    named[1].id = "same";
    named[1].params.width = 96;
    EXPECT_THROW(finalizeCampaign(named), CampaignError);
}

TEST(Campaign, LoadCampaignFileDispatchesOnExtension)
{
    const std::filesystem::path dir = scratchDir("campaign-load");

    const std::string jsonl_path = writeFile(
        dir / "sweep.jsonl",
        "{\"scene\": \"PARK\", \"res\": 64}\n"
        "{\"scene\": \"PARK\", \"res\": 96}\n");
    std::vector<CampaignJob> jsonl_jobs = loadCampaignFile(jsonl_path);
    ASSERT_EQ(jsonl_jobs.size(), 2u);
    EXPECT_FALSE(jsonl_jobs[0].id.empty());

    const std::string csv_path =
        writeFile(dir / "sweep.csv", "scene,res\nPARK,64|96\n");
    std::vector<CampaignJob> csv_jobs = loadCampaignFile(csv_path);
    ASSERT_EQ(csv_jobs.size(), 2u);

    // Same sweep in either format produces the same deterministic ids.
    EXPECT_EQ(jsonl_jobs[0].id, csv_jobs[0].id);
    EXPECT_EQ(jsonl_jobs[1].id, csv_jobs[1].id);

    EXPECT_THROW(loadCampaignFile((dir / "missing.jsonl").string()),
                 CampaignError);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace zatel::service
