/**
 * @file
 * Tests for section-block construction (paper Section III-E, Fig. 8).
 */

#include <gtest/gtest.h>

#include <set>

#include "heatmap/heatmap.hh"
#include "zatel/section_block.hh"

namespace zatel::core
{
namespace
{

heatmap::QuantizedHeatmap
twoToneMap(uint32_t width, uint32_t height)
{
    // Left half cold, right half hot.
    std::vector<double> costs(static_cast<size_t>(width) * height, 0.0);
    for (uint32_t y = 0; y < height; ++y)
        for (uint32_t x = width / 2; x < width; ++x)
            costs[y * width + x] = 10.0;
    heatmap::Heatmap map = heatmap::Heatmap::fromCosts(width, height, costs);
    return heatmap::QuantizedHeatmap::quantize(map, 2);
}

PixelGroup
fullImageGroup(uint32_t width, uint32_t height)
{
    PixelGroup group;
    for (uint32_t y = 0; y < height; ++y)
        for (uint32_t x = 0; x < width; ++x)
            group.push_back({x, y});
    return group;
}

TEST(SectionBlock, BlocksPartitionTheGroup)
{
    heatmap::QuantizedHeatmap quantized = twoToneMap(64, 64);
    PixelGroup group = fullImageGroup(64, 64);
    std::vector<SectionBlock> blocks =
        buildSectionBlocks(group, quantized, 32, 2);

    EXPECT_EQ(blocks.size(), (64u / 32u) * (64u / 2u));
    std::set<uint32_t> seen;
    for (const SectionBlock &block : blocks) {
        EXPECT_EQ(block.pixelIndices.size(), 64u);
        for (uint32_t index : block.pixelIndices)
            EXPECT_TRUE(seen.insert(index).second);
    }
    EXPECT_EQ(seen.size(), group.size());
}

TEST(SectionBlock, ClusterCountsSumToBlockSize)
{
    heatmap::QuantizedHeatmap quantized = twoToneMap(64, 64);
    PixelGroup group = fullImageGroup(64, 64);
    std::vector<SectionBlock> blocks =
        buildSectionBlocks(group, quantized, 32, 2);
    for (const SectionBlock &block : blocks) {
        uint32_t total = 0;
        for (uint32_t count : block.clusterCounts)
            total += count;
        EXPECT_EQ(total, block.pixelIndices.size());
    }
}

TEST(SectionBlock, AvgCoolnessSeparatesHotAndColdBlocks)
{
    heatmap::QuantizedHeatmap quantized = twoToneMap(64, 64);
    PixelGroup group = fullImageGroup(64, 64);
    std::vector<SectionBlock> blocks =
        buildSectionBlocks(group, quantized, 32, 2);

    for (const SectionBlock &block : blocks) {
        EXPECT_GE(block.avgCoolness, 0.0);
        EXPECT_LE(block.avgCoolness, 1.0);
        // 32-wide blocks at x<32 are all cold, x>=32 all hot.
        const gpusim::PixelCoord &first = group[block.pixelIndices[0]];
        if (first.x < 32)
            EXPECT_GT(block.avgCoolness, 0.5);
        else
            EXPECT_LT(block.avgCoolness, 0.5);
    }
}

TEST(SectionBlock, PartialEdgeBlocks)
{
    // 40x6 image with 32x4 blocks: right and bottom blocks are partial.
    heatmap::QuantizedHeatmap quantized = twoToneMap(40, 6);
    PixelGroup group = fullImageGroup(40, 6);
    std::vector<SectionBlock> blocks =
        buildSectionBlocks(group, quantized, 32, 4);
    ASSERT_EQ(blocks.size(), 4u); // 2x2 tiles
    size_t total = 0;
    for (const SectionBlock &block : blocks)
        total += block.pixelIndices.size();
    EXPECT_EQ(total, 240u);
}

TEST(SectionBlock, SparseGroupOnlyOwnPixels)
{
    heatmap::QuantizedHeatmap quantized = twoToneMap(64, 64);
    // A group of every fourth pixel of one row.
    PixelGroup group;
    for (uint32_t x = 0; x < 64; x += 4)
        group.push_back({x, 10});
    std::vector<SectionBlock> blocks =
        buildSectionBlocks(group, quantized, 32, 2);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_EQ(blocks[0].pixelIndices.size(), 8u);
    EXPECT_EQ(blocks[1].pixelIndices.size(), 8u);
}

TEST(SectionBlock, FineChunksEqualBlocks)
{
    // When the group is a fine-grained set of 32x2 chunks and the block
    // size matches, each block is exactly one chunk.
    heatmap::QuantizedHeatmap quantized = twoToneMap(64, 64);
    PartitionParams params;
    params.method = DivisionMethod::FineGrained;
    params.chunkWidth = 32;
    params.chunkHeight = 2;
    std::vector<PixelGroup> groups = divideImagePlane(64, 64, 2, params);

    std::vector<SectionBlock> blocks =
        buildSectionBlocks(groups[0], quantized, 32, 2);
    for (const SectionBlock &block : blocks)
        EXPECT_EQ(block.pixelIndices.size(), 64u);
    EXPECT_EQ(blocks.size(), groups[0].size() / 64);
}

} // namespace
} // namespace zatel::core
