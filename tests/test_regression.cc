/**
 * @file
 * Unit tests for the curve-fitting helpers used by extrapolation and the
 * Fig. 15 speedup model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/regression.hh"

namespace zatel
{
namespace
{

TEST(LinearFit, ExactLine)
{
    LinearFit fit = fitLinear({1.0, 2.0, 3.0}, {5.0, 7.0, 9.0});
    EXPECT_NEAR(fit.slope, 2.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
    EXPECT_NEAR(fit.evaluate(10.0), 23.0, 1e-9);
}

TEST(LinearFit, HorizontalLine)
{
    LinearFit fit = fitLinear({1.0, 2.0, 3.0}, {4.0, 4.0, 4.0});
    EXPECT_NEAR(fit.slope, 0.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 4.0, 1e-9);
}

TEST(LinearFit, IdenticalXFallsBackToMean)
{
    LinearFit fit = fitLinear({2.0, 2.0, 2.0}, {1.0, 3.0, 5.0});
    EXPECT_NEAR(fit.slope, 0.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
}

TEST(LinearFit, NoisyDataR2Below1)
{
    LinearFit fit = fitLinear({1.0, 2.0, 3.0, 4.0}, {2.0, 4.1, 5.9, 8.2});
    EXPECT_GT(fit.r2, 0.98);
    EXPECT_LT(fit.r2, 1.0);
}

TEST(PowerFit, ExactPowerLaw)
{
    // The paper's speedup model: 181 * perc^-1.15 (equation 4).
    std::vector<double> xs, ys;
    for (double x : {10.0, 20.0, 40.0, 60.0, 90.0}) {
        xs.push_back(x);
        ys.push_back(181.0 * std::pow(x, -1.15));
    }
    PowerFit fit = fitPowerLaw(xs, ys);
    EXPECT_NEAR(fit.scale, 181.0, 1e-6);
    EXPECT_NEAR(fit.exponent, -1.15, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(PowerFit, SkipsNonPositiveSamples)
{
    PowerFit fit = fitPowerLaw({0.0, 1.0, 2.0, 4.0}, {5.0, 3.0, 6.0, 12.0});
    // Only the positive-x samples (1,3),(2,6),(4,12) participate: y = 3x.
    EXPECT_NEAR(fit.exponent, 1.0, 1e-9);
    EXPECT_NEAR(fit.scale, 3.0, 1e-9);
}

TEST(ExponentialFit, ExactRecovery)
{
    // y = 10 + 5 * 0.8^x at x = 20, 30, 40.
    auto f = [](double x) { return 10.0 + 5.0 * std::pow(0.8, x / 10.0); };
    ExponentialFit fit =
        fitExponentialThreePoint({20.0, 30.0, 40.0},
                                 {f(20.0), f(30.0), f(40.0)});
    EXPECT_TRUE(fit.exponential);
    EXPECT_NEAR(fit.evaluate(100.0), f(100.0), 1e-6);
    EXPECT_NEAR(fit.evaluate(20.0), f(20.0), 1e-9);
}

TEST(ExponentialFit, GrowingSeries)
{
    // y = 2 * 1.5^x - 1.
    auto f = [](double x) { return 2.0 * std::pow(1.5, x) - 1.0; };
    ExponentialFit fit = fitExponentialThreePoint(
        {1.0, 2.0, 3.0}, {f(1.0), f(2.0), f(3.0)});
    EXPECT_TRUE(fit.exponential);
    EXPECT_NEAR(fit.evaluate(5.0), f(5.0), 1e-6);
}

TEST(ExponentialFit, LinearSeriesFallsBack)
{
    // Equal differences: ratio == 1 -> line through outer points.
    ExponentialFit fit = fitExponentialThreePoint({1.0, 2.0, 3.0},
                                                  {10.0, 20.0, 30.0});
    EXPECT_FALSE(fit.exponential);
    EXPECT_NEAR(fit.evaluate(5.0), 50.0, 1e-9);
}

TEST(ExponentialFit, ConstantSeries)
{
    ExponentialFit fit = fitExponentialThreePoint({1.0, 2.0, 3.0},
                                                  {7.0, 7.0, 7.0});
    EXPECT_FALSE(fit.exponential);
    EXPECT_NEAR(fit.evaluate(100.0), 7.0, 1e-9);
}

TEST(ExponentialFit, NonMonotonicFallsBack)
{
    // d2/d1 < 0: not exponential; falls back to outer-point line.
    ExponentialFit fit = fitExponentialThreePoint({1.0, 2.0, 3.0},
                                                  {1.0, 5.0, 2.0});
    EXPECT_FALSE(fit.exponential);
    EXPECT_NEAR(fit.evaluate(3.0), 2.0, 1e-9);
}

TEST(ExponentialFit, TinyD1AgainstLargeD2StaysFinite)
{
    // d1 barely clears the 1e-12 gate while d2 is huge: the implied
    // ratio is ~1e18 and the closed-form coeff/offset overflow
    // (0 * inf -> NaN). The fit must reject that solution and keep the
    // finite linear fallback.
    ExponentialFit fit = fitExponentialThreePoint(
        {1.0, 2.0, 3.0}, {0.0, 1e-11, 1e7});
    for (double x : {0.0, 1.0, 3.0, 10.0, 100.0}) {
        EXPECT_TRUE(std::isfinite(fit.evaluate(x)))
            << "non-finite prediction at x=" << x;
    }
}

TEST(ExponentialFit, SteepButSolvableRatioNeverReturnsNonFinite)
{
    // A legitimately exponential but steep series: the fit solves, yet
    // ratio^x overflows for large x. evaluate() must degrade to the
    // fallback line instead of returning inf.
    ExponentialFit fit = fitExponentialThreePoint(
        {1.0, 2.0, 3.0}, {1.0, 1e100, 1e200});
    for (double x : {1.0, 2.0, 5.0, 1e4}) {
        EXPECT_TRUE(std::isfinite(fit.evaluate(x)))
            << "non-finite prediction at x=" << x;
    }
}

TEST(ExponentialFit, NonFiniteSamplesFallBackToFiniteSubset)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();

    // One poisoned sample: line through the two finite ones.
    ExponentialFit one_bad = fitExponentialThreePoint(
        {1.0, 2.0, 3.0}, {10.0, nan, 30.0});
    EXPECT_FALSE(one_bad.exponential);
    EXPECT_NEAR(one_bad.evaluate(2.0), 20.0, 1e-9);

    // Two poisoned samples: horizontal line at the survivor.
    ExponentialFit two_bad = fitExponentialThreePoint(
        {1.0, 2.0, 3.0}, {inf, 7.0, nan});
    EXPECT_FALSE(two_bad.exponential);
    EXPECT_NEAR(two_bad.evaluate(100.0), 7.0, 1e-9);

    // Everything poisoned: still finite (zero line).
    ExponentialFit all_bad = fitExponentialThreePoint(
        {1.0, 2.0, 3.0}, {nan, inf, -inf});
    EXPECT_FALSE(all_bad.exponential);
    EXPECT_TRUE(std::isfinite(all_bad.evaluate(42.0)));
}

} // namespace
} // namespace zatel
