/**
 * @file
 * Campaign scheduler tests (src/service/scheduler.*).
 *
 * The headline contracts from the batch-service design:
 *  - a one-scene campaign builds the scene/BVH and the quantized heatmap
 *    exactly ONCE no matter how many jobs share them (the cache counters
 *    prove it — 8 jobs must show misses=1, hits=7 per artifact kind);
 *  - --resume skips already-completed job ids and re-runs only the rest;
 *  - per-job wall-clock timeouts and campaign-level cancellation land
 *    jobs in the TimedOut / Cancelled terminal states;
 *  - a scheduled prediction is byte-identical to a direct
 *    ZatelPredictor::predict() on the same inputs, with a cold AND a
 *    warm artifact cache (the SchedulerDeterminism suite name keeps
 *    these running under the tsan determinism preset).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/stats.hh"
#include "obs/metrics_registry.hh"
#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "service/artifact_cache.hh"
#include "service/campaign.hh"
#include "service/result_store.hh"
#include "service/scheduler.hh"
#include "zatel/predictor.hh"

namespace zatel::service
{
namespace
{

constexpr uint64_t kCacheBudget = 256ull * 1024 * 1024;

/** Bit pattern of a double; NaN-safe, distinguishes -0.0 from 0.0. */
uint64_t
bitsOf(double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/** A small, fast job: 32x32 PARK at reduced procedural density. */
CampaignJob
makeJob(double fraction)
{
    CampaignJob job;
    job.scene = "PARK";
    job.sceneDetail = 0.3f;
    job.params.width = 32;
    job.params.height = 32;
    job.params.selector.fixedFraction = fraction;
    return job;
}

std::vector<CampaignJob>
makeCampaign(size_t count)
{
    std::vector<CampaignJob> jobs;
    jobs.reserve(count);
    for (size_t i = 0; i < count; ++i)
        jobs.push_back(makeJob(0.15 + 0.05 * static_cast<double>(i)));
    finalizeCampaign(jobs);
    return jobs;
}

void
expectRowMatchesResult(const ResultRow &row,
                       const core::ZatelResult &expected,
                       const std::string &context)
{
    EXPECT_EQ(row.status, JobStatus::Ok) << context << ": " << row.error;
    EXPECT_EQ(row.k, expected.k) << context;
    EXPECT_EQ(bitsOf(row.fractionTraced), bitsOf(expected.fractionTraced))
        << context;
    for (gpusim::Metric metric : gpusim::allMetrics()) {
        const auto it = row.predicted.find(metric);
        ASSERT_NE(it, row.predicted.end())
            << context << ": missing metric " << gpusim::metricName(metric);
        EXPECT_EQ(bitsOf(it->second), bitsOf(expected.metric(metric)))
            << context << ": metric " << gpusim::metricName(metric)
            << " is not byte-identical";
    }
}

TEST(ServiceScheduler, EightJobsOneSceneBuildArtifactsOnce)
{
    ArtifactCache cache(kCacheBudget, "");
    ResultStore store("");
    SchedulerParams params;
    params.workers = 4;

    CampaignScheduler scheduler(makeCampaign(8), cache, store, params);
    EXPECT_EQ(scheduler.workerCount(), 4u);
    CampaignSummary summary = scheduler.run();

    EXPECT_EQ(summary.totalJobs, 8u);
    EXPECT_EQ(summary.ok, 8u);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_EQ(store.countWithStatus(JobStatus::Ok), 8u);

    // The acceptance contract: one BVH build and one heatmap profile
    // for the whole campaign, everything else served from the cache.
    const ArtifactCache::Counters pack =
        cache.counters(ArtifactKind::ScenePack);
    EXPECT_EQ(pack.misses, 1u) << "scene/BVH was rebuilt";
    EXPECT_EQ(pack.hits, 7u);
    const ArtifactCache::Counters map =
        cache.counters(ArtifactKind::QuantizedHeatmap);
    EXPECT_EQ(map.misses, 1u)
        << "heatmap was re-profiled (fraction must not be in its key)";
    EXPECT_EQ(map.hits, 7u);
    EXPECT_EQ(cache.counters(ArtifactKind::OracleStats).misses, 0u);

    // The summary embeds the same counters (the CLI prints these).
    EXPECT_EQ(summary.cacheTotals.misses, 2u);
    EXPECT_EQ(summary.cacheTotals.hits, 14u);
    const std::string report = summary.toString();
    EXPECT_NE(report.find("cache hits: 14"), std::string::npos) << report;
}

TEST(ServiceScheduler, ResumeSkipsCompletedJobs)
{
    std::vector<CampaignJob> jobs = makeCampaign(3);
    const std::string middle_id = jobs[1].id;

    ArtifactCache cache(kCacheBudget, "");
    ResultStore store("");
    SchedulerParams params;
    params.workers = 2;
    params.alreadyCompleted = {jobs[0].id, jobs[2].id};

    CampaignScheduler scheduler(std::move(jobs), cache, store, params);
    CampaignSummary summary = scheduler.run();

    EXPECT_EQ(summary.totalJobs, 3u);
    EXPECT_EQ(summary.skipped, 2u);
    EXPECT_EQ(summary.ok, 1u);
    ASSERT_EQ(store.rowCount(), 1u)
        << "skipped jobs must not append result rows";
    EXPECT_EQ(store.rows()[0].jobId, middle_id);
}

TEST(ServiceScheduler, JobTimeoutLandsInTimedOut)
{
    ArtifactCache cache(kCacheBudget, "");
    ResultStore store("");
    SchedulerParams params;
    params.workers = 2;
    params.jobTimeoutSeconds = 1e-6; // expires before any stage finishes

    CampaignScheduler scheduler(makeCampaign(1), cache, store, params);
    CampaignSummary summary = scheduler.run();

    EXPECT_EQ(summary.timedOut, 1u);
    EXPECT_EQ(summary.ok, 0u);
    ASSERT_EQ(store.rowCount(), 1u);
    // rows() returns by value; take a copy, not a dangling reference.
    const ResultRow row = store.rows()[0];
    EXPECT_EQ(row.status, JobStatus::TimedOut);
    EXPECT_NE(row.error.find("timeout"), std::string::npos) << row.error;
    EXPECT_TRUE(row.predicted.empty());
}

TEST(ServiceScheduler, CancelHookCancelsEveryJob)
{
    ArtifactCache cache(kCacheBudget, "");
    ResultStore store("");
    SchedulerParams params;
    params.workers = 2;
    params.cancelled = []() { return true; };

    CampaignScheduler scheduler(makeCampaign(2), cache, store, params);
    CampaignSummary summary = scheduler.run();

    EXPECT_EQ(summary.cancelled, 2u);
    EXPECT_EQ(summary.ok, 0u);
    EXPECT_EQ(store.countWithStatus(JobStatus::Cancelled), 2u);
}

TEST(ServiceScheduler, BadJobFailsWithoutAbortingTheCampaign)
{
    std::vector<CampaignJob> jobs = makeCampaign(1);
    CampaignJob bad = makeJob(0.5);
    bad.scene = "NOPE";
    bad.id = "bad-scene";
    jobs.push_back(std::move(bad));

    ArtifactCache cache(kCacheBudget, "");
    ResultStore store("");
    SchedulerParams params;
    params.workers = 2;

    std::mutex hook_mutex;
    std::set<std::string> seen;
    params.resultHook = [&](const ResultRow &row) {
        std::lock_guard<std::mutex> guard(hook_mutex);
        seen.insert(row.jobId);
    };

    CampaignScheduler scheduler(std::move(jobs), cache, store, params);
    CampaignSummary summary = scheduler.run();

    EXPECT_EQ(summary.ok, 1u);
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(seen.size(), 2u)
        << "the result hook must observe every terminal row";
    ASSERT_EQ(store.countWithStatus(JobStatus::Failed), 1u);
    for (const ResultRow &row : store.rows()) {
        if (row.status == JobStatus::Failed) {
            EXPECT_EQ(row.jobId, "bad-scene");
            EXPECT_NE(row.error.find("unknown scene"), std::string::npos)
                << row.error;
        }
    }
}

TEST(SchedulerDeterminism, MatchesDirectPredictorByteForByte)
{
    const CampaignJob job = makeJob(0.4);

    // Direct path: exactly what `zatel predict` does.
    rt::SceneDetail detail;
    detail.density = job.sceneDetail;
    rt::Scene scene = rt::buildScene(rt::sceneIdFromName(job.scene),
                                     detail, job.sceneSeed);
    rt::Bvh bvh;
    bvh.build(scene.triangles(), job.bvh);
    core::ZatelPredictor predictor(scene, bvh, gpuConfigFromName(job.gpu),
                                   job.params);
    const core::ZatelResult direct = predictor.predict();

    // Scheduler path: shared pool + artifact cache, cold.
    std::vector<CampaignJob> jobs{job};
    finalizeCampaign(jobs);
    ArtifactCache cache(kCacheBudget, "");
    ResultStore store("");
    SchedulerParams params;
    params.workers = 3;
    CampaignScheduler scheduler(std::move(jobs), cache, store, params);
    CampaignSummary summary = scheduler.run();

    EXPECT_EQ(summary.ok, 1u);
    ASSERT_EQ(store.rowCount(), 1u);
    expectRowMatchesResult(store.rows()[0], direct, "cold cache");
}

TEST(SchedulerDeterminism, WarmCacheRunIsByteIdentical)
{
    ArtifactCache cache(kCacheBudget, "");

    ResultStore first_store("");
    {
        SchedulerParams params;
        params.workers = 2;
        CampaignScheduler scheduler(makeCampaign(2), cache, first_store,
                                    params);
        EXPECT_EQ(scheduler.run().ok, 2u);
    }
    const ArtifactCache::Counters cold =
        cache.counters(ArtifactKind::QuantizedHeatmap);
    EXPECT_EQ(cold.misses, 1u);

    ResultStore second_store("");
    {
        SchedulerParams params;
        params.workers = 2;
        CampaignScheduler scheduler(makeCampaign(2), cache, second_store,
                                    params);
        EXPECT_EQ(scheduler.run().ok, 2u);
    }
    const ArtifactCache::Counters warm =
        cache.counters(ArtifactKind::QuantizedHeatmap);
    EXPECT_EQ(warm.misses, 1u)
        << "the second campaign must be served entirely from the cache";
    EXPECT_EQ(warm.hits, cold.hits + 2);

    // Same job id -> byte-identical prediction, cold or warm.
    std::map<std::string, ResultRow> first_rows;
    for (const ResultRow &row : first_store.rows())
        first_rows[row.jobId] = row;
    for (const ResultRow &row : second_store.rows()) {
        const auto it = first_rows.find(row.jobId);
        ASSERT_NE(it, first_rows.end()) << row.jobId;
        EXPECT_EQ(row.k, it->second.k);
        EXPECT_EQ(bitsOf(row.fractionTraced),
                  bitsOf(it->second.fractionTraced));
        for (gpusim::Metric metric : gpusim::allMetrics()) {
            EXPECT_EQ(bitsOf(row.predicted.at(metric)),
                      bitsOf(it->second.predicted.at(metric)))
                << row.jobId << ": " << gpusim::metricName(metric);
        }
    }
}

// Deliberately NOT part of the tsan determinism filter: the test is
// timing-based (it arms a real wall-clock timeout mid-campaign).
TEST(SchedulerTimeout, CancelsPendingStages)
{
    // A job whose group-simulation phase dwarfs its (cache-warm)
    // preprocessing: 160x160, every pixel traced, 4 spp.
    CampaignJob heavy;
    heavy.scene = "PARK";
    heavy.params.width = 160;
    heavy.params.height = 160;
    heavy.params.samplesPerPixel = 4;
    heavy.params.selector.fixedFraction = 1.0;

    ArtifactCache cache(kCacheBudget, "");

    // Calibration pass (no timeout): measures this machine's group
    // phase and leaves the scene pack + heatmap in the cache, so the
    // timed pass spends its whole budget inside group units.
    double sim_seconds = 0.0;
    size_t group_count = 0;
    {
        std::vector<CampaignJob> jobs{heavy};
        finalizeCampaign(jobs);
        ResultStore store("");
        SchedulerParams params;
        params.workers = 1;
        CampaignScheduler scheduler(std::move(jobs), cache, store,
                                    params);
        ASSERT_EQ(scheduler.run().ok, 1u);
        const ResultRow row = store.rows()[0];
        sim_seconds = row.simSeconds;
        group_count = row.k;
    }
    ASSERT_GE(group_count, 3u) << "need several group units to skip";
    ASSERT_GT(sim_seconds, 0.0);

    // Timed pass: the budget covers warm preprocessing plus roughly one
    // group simulation, so the deadline expires while group units are
    // still pending. Those pending units must be dropped (not
    // simulated) and the pool must still drain to a terminal row.
    const uint64_t skipped_before =
        obs::MetricsRegistry::global()
            .counter("zatel_campaign_group_units_skipped_total", "probe")
            ->value();
    obs::MetricsRegistry::global().setEnabled(true);

    std::vector<CampaignJob> jobs{heavy};
    finalizeCampaign(jobs);
    ResultStore store("");
    SchedulerParams params;
    params.workers = 1;
    params.jobTimeoutSeconds = std::max(0.05, 0.35 * sim_seconds);
    CampaignScheduler scheduler(std::move(jobs), cache, store, params);
    CampaignSummary summary = scheduler.run();

    obs::MetricsRegistry::global().setEnabled(false);
    const uint64_t skipped_after =
        obs::MetricsRegistry::global()
            .counter("zatel_campaign_group_units_skipped_total", "probe")
            ->value();

    // The job timed out during group simulation, not preprocessing.
    EXPECT_EQ(summary.timedOut, 1u);
    EXPECT_EQ(summary.ok, 0u);
    ASSERT_EQ(store.rowCount(), 1u) << "scheduler failed to drain";
    const ResultRow row = store.rows()[0];
    EXPECT_EQ(row.status, JobStatus::TimedOut);
    EXPECT_NE(row.error.find("group simulation"), std::string::npos)
        << row.error;
    EXPECT_TRUE(row.predicted.empty());

    // The cancellation witness: at least one already-enqueued group
    // unit executed the skip path instead of simulating.
    EXPECT_GE(skipped_after - skipped_before, 1u)
        << "pending group units were simulated after the timeout";
    // And the timed run must have finished well before a full group
    // phase would have (it skipped most of the work).
    EXPECT_LT(summary.wallSeconds, sim_seconds);
}

} // namespace
} // namespace zatel::service
