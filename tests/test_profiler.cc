/**
 * @file
 * Tests for the profiling-source model (functional vs hardware timers,
 * paper Section III-B).
 */

#include <gtest/gtest.h>

#include "heatmap/profiler.hh"
#include "rt/bvh.hh"
#include "rt/mesh.hh"
#include "rt/tracer.hh"

namespace zatel::heatmap
{
namespace
{

rt::RenderResult
renderSphereScene(uint32_t res)
{
    static rt::Scene scene("profiled");
    static rt::Bvh bvh;
    static bool built = false;
    if (!built) {
        scene.setCamera(rt::Camera({0.0f, 0.0f, 5.0f}, {0.0f, 0.0f, 0.0f},
                                   {0.0f, 1.0f, 0.0f}, 45.0f));
        scene.setLight({{3.0f, 5.0f, 3.0f}, {1.0f, 1.0f, 1.0f}});
        uint16_t mat =
            scene.addMaterial(rt::Material::diffuse({0.5f, 0.5f, 0.5f}));
        rt::MeshBuilder mesh;
        mesh.addSphere({0.0f, 0.0f, 0.0f}, 1.2f, 14, mat);
        scene.addTriangles(mesh.takeTriangles());
        bvh.build(scene.triangles());
        built = true;
    }
    rt::Tracer tracer(scene, bvh);
    return tracer.render(res, res);
}

TEST(Profiler, FunctionalIsExact)
{
    rt::RenderResult render = renderSphereScene(32);
    Heatmap exact = Heatmap::fromRender(render);
    ProfilerParams params;
    params.source = ProfilingSource::Functional;
    Heatmap profiled = profileRender(render, params);
    for (uint32_t y = 0; y < 32; ++y)
        for (uint32_t x = 0; x < 32; ++x)
            EXPECT_DOUBLE_EQ(profiled.temperatureAt(x, y),
                             exact.temperatureAt(x, y));
}

TEST(Profiler, HardwareTimerIsNoisyButCorrelated)
{
    rt::RenderResult render = renderSphereScene(32);
    Heatmap exact = Heatmap::fromRender(render);
    ProfilerParams params;
    params.source = ProfilingSource::HardwareTimer;
    params.timerNoise = 0.15;
    Heatmap noisy = profileRender(render, params);

    int differing = 0;
    double hot_noisy = 0.0, hot_exact = 0.0;
    double cold_noisy = 0.0, cold_exact = 0.0;
    for (uint32_t y = 0; y < 32; ++y) {
        for (uint32_t x = 0; x < 32; ++x) {
            if (std::abs(noisy.temperatureAt(x, y) -
                         exact.temperatureAt(x, y)) > 1e-9)
                ++differing;
            if (exact.temperatureAt(x, y) > 0.5) {
                hot_exact += exact.temperatureAt(x, y);
                hot_noisy += noisy.temperatureAt(x, y);
            } else {
                cold_exact += exact.temperatureAt(x, y);
                cold_noisy += noisy.temperatureAt(x, y);
            }
        }
    }
    EXPECT_GT(differing, 500); // noise actually applied
    // Gross structure preserved: hot region stays hotter than cold.
    EXPECT_GT(hot_noisy, cold_noisy);
}

TEST(Profiler, DeterministicPerSeed)
{
    rt::RenderResult render = renderSphereScene(16);
    ProfilerParams params;
    params.source = ProfilingSource::HardwareTimer;
    params.seed = 99;
    Heatmap a = profileRender(render, params);
    Heatmap b = profileRender(render, params);
    for (uint32_t y = 0; y < 16; ++y)
        for (uint32_t x = 0; x < 16; ++x)
            EXPECT_DOUBLE_EQ(a.temperatureAt(x, y), b.temperatureAt(x, y));
}

TEST(Profiler, QuantizationAbsorbsTimerNoise)
{
    // The paper's Fig. 4 claim: after K-Means quantization the noisy
    // hardware heatmap and the exact heatmap mostly agree on which
    // pixels are hot.
    rt::RenderResult render = renderSphereScene(48);
    Heatmap exact = Heatmap::fromRender(render);
    ProfilerParams params;
    params.source = ProfilingSource::HardwareTimer;
    params.timerNoise = 0.15;
    Heatmap noisy = profileRender(render, params);

    QuantizedHeatmap q_exact = QuantizedHeatmap::quantize(exact, 4);
    QuantizedHeatmap q_noisy = QuantizedHeatmap::quantize(noisy, 4);

    // Compare binarized hotness (coolness < 0.5) between the two.
    int agree = 0, total = 0;
    for (uint32_t y = 0; y < 48; ++y) {
        for (uint32_t x = 0; x < 48; ++x) {
            bool hot_exact = q_exact.coolnessAt(x, y) < 0.5;
            bool hot_noisy = q_noisy.coolnessAt(x, y) < 0.5;
            agree += hot_exact == hot_noisy;
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(agree) / total, 0.9);
}

TEST(Profiler, SourceNames)
{
    EXPECT_STREQ(profilingSourceName(ProfilingSource::Functional),
                 "functional");
    EXPECT_STREQ(profilingSourceName(ProfilingSource::HardwareTimer),
                 "hw-timer");
}

} // namespace
} // namespace zatel::heatmap
