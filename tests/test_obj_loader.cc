/**
 * @file
 * Tests for the Wavefront OBJ loader.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "rt/obj_loader.hh"

namespace zatel::rt
{
namespace
{

ObjLoadResult
parse(const std::string &text, uint16_t material = 0)
{
    std::istringstream input(text);
    return loadObj(input, material);
}

TEST(ObjLoader, SingleTriangle)
{
    ObjLoadResult result = parse("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n");
    EXPECT_EQ(result.vertexCount, 3u);
    EXPECT_EQ(result.faceCount, 1u);
    ASSERT_EQ(result.triangles.size(), 1u);
    EXPECT_EQ(result.triangles[0].v0, Vec3(0.0f, 0.0f, 0.0f));
    EXPECT_EQ(result.triangles[0].v1, Vec3(1.0f, 0.0f, 0.0f));
    EXPECT_EQ(result.triangles[0].v2, Vec3(0.0f, 1.0f, 0.0f));
    EXPECT_EQ(result.skippedLines, 0u);
}

TEST(ObjLoader, QuadFanTriangulates)
{
    ObjLoadResult result = parse(
        "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n");
    EXPECT_EQ(result.faceCount, 1u);
    ASSERT_EQ(result.triangles.size(), 2u);
    // Fan shares the first vertex.
    EXPECT_EQ(result.triangles[0].v0, result.triangles[1].v0);
}

TEST(ObjLoader, SlashIndexFormsAccepted)
{
    const char *text =
        "v 0 0 0\nv 1 0 0\nv 0 1 0\n"
        "vt 0 0\nvn 0 0 1\n"
        "f 1/1 2/1 3/1\n"
        "f 1//1 2//1 3//1\n"
        "f 1/1/1 2/1/1 3/1/1\n";
    ObjLoadResult result = parse(text);
    EXPECT_EQ(result.triangles.size(), 3u);
    EXPECT_EQ(result.skippedLines, 0u);
}

TEST(ObjLoader, NegativeIndicesAreRelative)
{
    ObjLoadResult result = parse(
        "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n");
    ASSERT_EQ(result.triangles.size(), 1u);
    EXPECT_EQ(result.triangles[0].v2, Vec3(0.0f, 1.0f, 0.0f));
}

TEST(ObjLoader, CommentsAndMetadataIgnored)
{
    const char *text =
        "# a comment\n"
        "mtllib scene.mtl\n"
        "o thing\ng part\ns off\nusemtl red\n"
        "v 0 0 0  # trailing comment\n"
        "v 1 0 0\nv 0 1 0\n"
        "\n"
        "f 1 2 3\n";
    ObjLoadResult result = parse(text);
    EXPECT_EQ(result.triangles.size(), 1u);
    EXPECT_EQ(result.skippedLines, 0u);
}

TEST(ObjLoader, MalformedLinesSkippedNotFatal)
{
    const char *text =
        "v 0 0 0\nv 1 0 0\nv 0 1 0\n"
        "v broken\n"
        "f 1 2\n"      // too few vertices
        "f 1 2 bogus\n" // unparsable element
        "f 1 2 3\n";
    ObjLoadResult result = parse(text);
    EXPECT_EQ(result.triangles.size(), 1u);
    EXPECT_EQ(result.skippedLines, 3u);
}

TEST(ObjLoader, OutOfRangeIndexIsFatal)
{
    EXPECT_EXIT(parse("v 0 0 0\nf 1 2 3\n"), testing::ExitedWithCode(1),
                "out of range");
}

TEST(ObjLoader, MaterialIdApplied)
{
    ObjLoadResult result =
        parse("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n", 7);
    ASSERT_EQ(result.triangles.size(), 1u);
    EXPECT_EQ(result.triangles[0].materialId, 7);
}

TEST(ObjLoader, FileRoundTrip)
{
    std::string path = testing::TempDir() + "/zatel_test.obj";
    {
        std::ofstream out(path);
        out << "v 0 0 0\nv 2 0 0\nv 0 2 0\nv 2 2 0\nf 1 2 4 3\n";
    }
    ObjLoadResult result = loadObjFile(path);
    EXPECT_EQ(result.vertexCount, 4u);
    EXPECT_EQ(result.triangles.size(), 2u);
    std::remove(path.c_str());
}

TEST(ObjLoader, MissingFileIsFatal)
{
    EXPECT_EXIT(loadObjFile("/nonexistent/mesh.obj"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(ObjLoader, LargeFanFace)
{
    std::ostringstream text;
    const int n = 10;
    for (int i = 0; i < n; ++i) {
        double angle = 2.0 * M_PI * i / n;
        text << "v " << std::cos(angle) << ' ' << std::sin(angle)
             << " 0\n";
    }
    text << "f";
    for (int i = 1; i <= n; ++i)
        text << ' ' << i;
    text << "\n";
    ObjLoadResult result = parse(text.str());
    EXPECT_EQ(result.triangles.size(), static_cast<size_t>(n - 2));
}

} // namespace
} // namespace zatel::rt
