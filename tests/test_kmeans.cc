/**
 * @file
 * Tests for the K-Means color quantizer.
 */

#include <gtest/gtest.h>

#include "heatmap/kmeans.hh"

namespace zatel::heatmap
{
namespace
{

using rt::Vec3;

TEST(KMeans, SingleClusterIsMean)
{
    std::vector<Vec3> points{{0.0f, 0.0f, 0.0f},
                             {2.0f, 0.0f, 0.0f},
                             {1.0f, 3.0f, 0.0f}};
    KMeansParams params;
    params.k = 1;
    Rng rng(1);
    KMeansResult result = kmeans(points, params, rng);
    ASSERT_EQ(result.centroids.size(), 1u);
    EXPECT_NEAR(result.centroids[0].x, 1.0f, 1e-5f);
    EXPECT_NEAR(result.centroids[0].y, 1.0f, 1e-5f);
}

TEST(KMeans, SeparatedClustersFoundExactly)
{
    std::vector<Vec3> points;
    for (int i = 0; i < 20; ++i) {
        points.push_back({0.0f + 0.01f * i, 0.0f, 0.0f});
        points.push_back({10.0f + 0.01f * i, 0.0f, 0.0f});
    }
    KMeansParams params;
    params.k = 2;
    Rng rng(2);
    KMeansResult result = kmeans(points, params, rng);
    ASSERT_EQ(result.centroids.size(), 2u);
    float lo = std::min(result.centroids[0].x, result.centroids[1].x);
    float hi = std::max(result.centroids[0].x, result.centroids[1].x);
    EXPECT_NEAR(lo, 0.095f, 0.05f);
    EXPECT_NEAR(hi, 10.095f, 0.05f);

    // Assignments separate the two groups.
    for (size_t i = 0; i < points.size(); ++i) {
        bool is_high_point = points[i].x > 5.0f;
        bool assigned_high =
            result.centroids[result.assignment[i]].x > 5.0f;
        EXPECT_EQ(is_high_point, assigned_high);
    }
}

TEST(KMeans, KLargerThanPointsShrinks)
{
    std::vector<Vec3> points{{1.0f, 0.0f, 0.0f}, {2.0f, 0.0f, 0.0f}};
    KMeansParams params;
    params.k = 10;
    Rng rng(3);
    KMeansResult result = kmeans(points, params, rng);
    EXPECT_LE(result.centroids.size(), 2u);
    for (uint32_t a : result.assignment)
        EXPECT_LT(a, result.centroids.size());
}

TEST(KMeans, DeterministicForSeed)
{
    std::vector<Vec3> points;
    Rng gen(4);
    for (int i = 0; i < 200; ++i)
        points.push_back({static_cast<float>(gen.nextDouble()),
                          static_cast<float>(gen.nextDouble()),
                          static_cast<float>(gen.nextDouble())});
    KMeansParams params;
    params.k = 5;
    Rng rng_a(42), rng_b(42);
    KMeansResult a = kmeans(points, params, rng_a);
    KMeansResult b = kmeans(points, params, rng_b);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.iterations, b.iterations);
}

TEST(KMeans, IdenticalPointsOneEffectiveCluster)
{
    std::vector<Vec3> points(50, Vec3{0.5f, 0.5f, 0.5f});
    KMeansParams params;
    params.k = 4;
    Rng rng(5);
    KMeansResult result = kmeans(points, params, rng);
    EXPECT_NEAR(result.inertia, 0.0, 1e-9);
    for (const Vec3 &c : result.centroids)
        EXPECT_EQ(c, Vec3(0.5f, 0.5f, 0.5f));
}

TEST(KMeans, AssignmentsAreNearest)
{
    std::vector<Vec3> points;
    Rng gen(6);
    for (int i = 0; i < 300; ++i)
        points.push_back({static_cast<float>(gen.nextDouble()),
                          static_cast<float>(gen.nextDouble()), 0.0f});
    KMeansParams params;
    params.k = 4;
    Rng rng(7);
    KMeansResult result = kmeans(points, params, rng);

    for (size_t i = 0; i < points.size(); ++i) {
        float assigned_d2 = lengthSquared(
            points[i] - result.centroids[result.assignment[i]]);
        for (const Vec3 &c : result.centroids) {
            EXPECT_LE(assigned_d2, lengthSquared(points[i] - c) + 1e-5f);
        }
    }
}

TEST(KMeans, InertiaIsSumOfSquares)
{
    std::vector<Vec3> points{{0.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f}};
    KMeansParams params;
    params.k = 1;
    Rng rng(8);
    KMeansResult result = kmeans(points, params, rng);
    // Centroid at 0.5: each point contributes 0.25.
    EXPECT_NEAR(result.inertia, 0.5, 1e-5);
}

TEST(KMeans, MoreClustersNeverWorse)
{
    std::vector<Vec3> points;
    Rng gen(9);
    for (int i = 0; i < 400; ++i)
        points.push_back({static_cast<float>(gen.nextDouble() * 3.0),
                          static_cast<float>(gen.nextDouble()),
                          static_cast<float>(gen.nextDouble())});
    auto run = [&points](uint32_t k) {
        KMeansParams params;
        params.k = k;
        params.maxIterations = 100;
        Rng rng(10);
        return kmeans(points, params, rng).inertia;
    };
    // Inertia decreases substantially from 1 to 8 clusters.
    EXPECT_LT(run(8), run(1) * 0.5);
}

} // namespace
} // namespace zatel::heatmap
