/**
 * @file
 * Units for the lock-order analysis: the LockGraph data structure
 * (edge merging, self-edges, cycle detection) and end-to-end
 * inversion detection through the Analyzer on in-memory translation
 * units, including the regressions that keep the walker honest --
 * unlock() tracking and the lambda deferred-body barrier.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/lock_graph.hh"
#include "analysis/source_file.hh"

namespace
{

using zatel::analysis::AnalysisResult;
using zatel::analysis::Analyzer;
using zatel::analysis::Finding;
using zatel::analysis::LockGraph;
using zatel::analysis::LockSite;
using zatel::analysis::SourceFile;

LockSite
site(const std::string &file, size_t line)
{
    return LockSite{file, line, "f"};
}

TEST(LockGraph, EdgesMergeSitesAndSortDeterministically)
{
    LockGraph graph;
    graph.addEdge("B", "C", site("x.cc", 10));
    graph.addEdge("A", "B", site("x.cc", 5));
    graph.addEdge("A", "B", site("y.cc", 7));
    const auto edges = graph.edges();
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0].from, "A");
    EXPECT_EQ(edges[0].to, "B");
    ASSERT_EQ(edges[0].sites.size(), 2u);
    EXPECT_EQ(edges[1].from, "B");
}

TEST(LockGraph, SelfEdgeIsNotACycle)
{
    LockGraph graph;
    graph.addEdge("M", "M", site("x.cc", 3));
    const auto self = graph.selfEdges();
    ASSERT_EQ(self.size(), 1u);
    EXPECT_EQ(self[0].from, "M");
    EXPECT_TRUE(graph.cycles().empty());
}

TEST(LockGraph, TwoNodeCycleAcrossFilesIsDetected)
{
    LockGraph graph;
    graph.addEdge("A", "B", site("one.cc", 12));
    graph.addEdge("B", "A", site("two.cc", 34));
    const auto cycles = graph.cycles();
    ASSERT_EQ(cycles.size(), 1u);
    ASSERT_EQ(cycles[0].nodes.size(), 2u);
    EXPECT_EQ(cycles[0].nodes[0], "A");
    EXPECT_EQ(cycles[0].nodes[1], "B");
    ASSERT_EQ(cycles[0].edges.size(), 2u);
}

TEST(LockGraph, ThreeNodeCycleAndAcyclicChordCoexist)
{
    LockGraph graph;
    graph.addEdge("A", "B", site("x.cc", 1));
    graph.addEdge("B", "C", site("x.cc", 2));
    graph.addEdge("C", "A", site("x.cc", 3));
    graph.addEdge("A", "D", site("x.cc", 4)); // D is outside the SCC.
    const auto cycles = graph.cycles();
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0].nodes.size(), 3u);
    for (const auto &edge : cycles[0].edges)
        EXPECT_NE(edge.to, "D");
}

TEST(LockGraph, AcyclicGraphReportsNothing)
{
    LockGraph graph;
    graph.addEdge("A", "B", site("x.cc", 1));
    graph.addEdge("B", "C", site("x.cc", 2));
    graph.addEdge("A", "C", site("x.cc", 3));
    EXPECT_TRUE(graph.cycles().empty());
    EXPECT_TRUE(graph.selfEdges().empty());
}

// --- End-to-end through the Analyzer on in-memory files. ------------

const char *kRegistryHeader =
    "#ifndef ZATEL_SERVICE_REG_HH\n"
    "#define ZATEL_SERVICE_REG_HH\n"
    "#include <mutex>\n"
    "namespace zatel::service\n"
    "{\n"
    "class Registry\n"
    "{\n"
    "  public:\n"
    "    void recordHit();\n"
    "    void flush();\n"
    "  private:\n"
    "    std::mutex tableMutex_;\n"
    "    std::mutex statsMutex_;\n"
    "};\n"
    "} // namespace zatel::service\n"
    "#endif // ZATEL_SERVICE_REG_HH\n";

AnalysisResult
analyze(const std::vector<std::pair<std::string, std::string>> &files)
{
    Analyzer analyzer;
    for (const auto &entry : files)
        analyzer.addFile(SourceFile::fromString(entry.first, entry.second));
    return analyzer.run();
}

std::vector<Finding>
findingsFor(const AnalysisResult &result, const std::string &rule)
{
    std::vector<Finding> out;
    for (const Finding &finding : result.findings) {
        if (finding.rule == rule)
            out.push_back(finding);
    }
    return out;
}

TEST(LockOrderEndToEnd, CrossFileInversionIsReportedAtBothSites)
{
    const AnalysisResult result = analyze({
        {"src/service/reg.hh", kRegistryHeader},
        {"src/service/reg_hit.cc",
         "#include <mutex>\n"
         "#include \"service/reg.hh\"\n"
         "namespace zatel::service\n"
         "{\n"
         "void\n"
         "Registry::recordHit()\n"
         "{\n"
         "    std::lock_guard<std::mutex> table(tableMutex_);\n"
         "    std::lock_guard<std::mutex> stats(statsMutex_);\n"
         "}\n"
         "} // namespace zatel::service\n"},
        {"src/service/reg_flush.cc",
         "#include <mutex>\n"
         "#include \"service/reg.hh\"\n"
         "namespace zatel::service\n"
         "{\n"
         "void\n"
         "Registry::flush()\n"
         "{\n"
         "    std::lock_guard<std::mutex> stats(statsMutex_);\n"
         "    std::lock_guard<std::mutex> table(tableMutex_);\n"
         "}\n"
         "} // namespace zatel::service\n"},
    });
    const auto inversions = findingsFor(result, "lock-order");
    ASSERT_EQ(inversions.size(), 2u) << Analyzer::formatText(result);
    EXPECT_EQ(inversions[0].line, 9u);
    EXPECT_EQ(inversions[1].line, 9u);
    EXPECT_NE(inversions[0].message.find("inversion"), std::string::npos);
    EXPECT_NE(inversions[0].message.find("Registry::statsMutex_"),
              std::string::npos);
    // Nothing but the inversion fires on these files.
    EXPECT_EQ(result.findings.size(), inversions.size())
        << Analyzer::formatText(result);
}

TEST(LockOrderEndToEnd, ConsistentOrderAcrossFilesIsClean)
{
    const AnalysisResult result = analyze({
        {"src/service/reg.hh", kRegistryHeader},
        {"src/service/reg_hit.cc",
         "#include <mutex>\n"
         "#include \"service/reg.hh\"\n"
         "namespace zatel::service\n"
         "{\n"
         "void\n"
         "Registry::recordHit()\n"
         "{\n"
         "    std::lock_guard<std::mutex> table(tableMutex_);\n"
         "    std::lock_guard<std::mutex> stats(statsMutex_);\n"
         "}\n"
         "void\n"
         "Registry::flush()\n"
         "{\n"
         "    std::lock_guard<std::mutex> table(tableMutex_);\n"
         "    std::lock_guard<std::mutex> stats(statsMutex_);\n"
         "}\n"
         "} // namespace zatel::service\n"},
    });
    EXPECT_TRUE(result.findings.empty()) << Analyzer::formatText(result);
}

TEST(LockOrderEndToEnd, SelfDeadlockIsReported)
{
    const AnalysisResult result = analyze({
        {"src/service/reg.hh", kRegistryHeader},
        {"src/service/reg_hit.cc",
         "#include <mutex>\n"
         "#include \"service/reg.hh\"\n"
         "namespace zatel::service\n"
         "{\n"
         "void\n"
         "Registry::recordHit()\n"
         "{\n"
         "    std::lock_guard<std::mutex> outer(tableMutex_);\n"
         "    std::lock_guard<std::mutex> inner(tableMutex_);\n"
         "}\n"
         "} // namespace zatel::service\n"},
    });
    const auto findings = findingsFor(result, "lock-order");
    ASSERT_EQ(findings.size(), 1u) << Analyzer::formatText(result);
    EXPECT_EQ(findings[0].line, 9u);
    EXPECT_NE(findings[0].message.find("self-deadlock"),
              std::string::npos);
}

TEST(LockOrderEndToEnd, UnlockBreaksTheHeldSet)
{
    // rotate() releases statsMutex_ before taking tableMutex_, so no
    // stats -> table edge exists and recordHit()'s table -> stats
    // order cannot close a cycle.
    const AnalysisResult result = analyze({
        {"src/service/reg.hh", kRegistryHeader},
        {"src/service/reg_hit.cc",
         "#include <mutex>\n"
         "#include \"service/reg.hh\"\n"
         "namespace zatel::service\n"
         "{\n"
         "void\n"
         "Registry::recordHit()\n"
         "{\n"
         "    std::lock_guard<std::mutex> table(tableMutex_);\n"
         "    std::lock_guard<std::mutex> stats(statsMutex_);\n"
         "}\n"
         "void\n"
         "Registry::flush()\n"
         "{\n"
         "    std::unique_lock<std::mutex> stats(statsMutex_);\n"
         "    stats.unlock();\n"
         "    std::lock_guard<std::mutex> table(tableMutex_);\n"
         "}\n"
         "} // namespace zatel::service\n"},
    });
    EXPECT_TRUE(findingsFor(result, "lock-order").empty())
        << Analyzer::formatText(result);
}

TEST(LockOrderEndToEnd, LambdaBodyDoesNotInheritHeldLocks)
{
    // The deferred body runs on another thread later; if the walker
    // leaked the held set into it, stats -> table would close a cycle
    // against recordHit()'s blessed table -> stats order.
    const AnalysisResult result = analyze({
        {"src/service/reg.hh", kRegistryHeader},
        {"src/service/reg_hit.cc",
         "#include <mutex>\n"
         "#include \"service/reg.hh\"\n"
         "namespace zatel::service\n"
         "{\n"
         "void\n"
         "Registry::recordHit()\n"
         "{\n"
         "    std::lock_guard<std::mutex> table(tableMutex_);\n"
         "    std::lock_guard<std::mutex> stats(statsMutex_);\n"
         "}\n"
         "void\n"
         "Registry::flush()\n"
         "{\n"
         "    std::lock_guard<std::mutex> stats(statsMutex_);\n"
         "    submit([this] {\n"
         "        std::lock_guard<std::mutex> table(tableMutex_);\n"
         "    });\n"
         "}\n"
         "} // namespace zatel::service\n"},
    });
    EXPECT_TRUE(findingsFor(result, "lock-order").empty())
        << Analyzer::formatText(result);
}

TEST(LockOrderEndToEnd, GuardedFieldCatchesBareWrite)
{
    const AnalysisResult result = analyze({
        {"src/service/tally.cc",
         "#include <mutex>\n"
         "namespace zatel::service\n"
         "{\n"
         "class Tally\n"
         "{\n"
         "  public:\n"
         "    void add();\n"
         "    void reset();\n"
         "  private:\n"
         "    std::mutex mu_;\n"
         "    int count_ = 0;\n"
         "};\n"
         "void\n"
         "Tally::add()\n"
         "{\n"
         "    std::lock_guard<std::mutex> lk(mu_);\n"
         "    count_ += 1;\n"
         "}\n"
         "void\n"
         "Tally::reset()\n"
         "{\n"
         "    count_ = 0;\n"
         "}\n"
         "} // namespace zatel::service\n"},
    });
    const auto findings = findingsFor(result, "guarded-field");
    ASSERT_EQ(findings.size(), 1u) << Analyzer::formatText(result);
    EXPECT_EQ(findings[0].line, 22u);
    EXPECT_NE(findings[0].message.find("count_"), std::string::npos);
}

} // namespace
