/**
 * @file
 * Tests for the warp scheduler policies and multi-RT-unit SMs.
 */

#include <gtest/gtest.h>

#include "gpusim/gpu.hh"
#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "rt/tracer.hh"

namespace zatel::gpusim
{
namespace
{

struct SchedulerFixture : public testing::Test
{
    void
    SetUp() override
    {
        scene = rt::buildScene(rt::SceneId::Wknd, rt::SceneDetail{0.5f});
        bvh.build(scene.triangles());
        tracer = std::make_unique<rt::Tracer>(scene, bvh);
        config = GpuConfig::mobileSoc();
        config.numSms = 2;
        config.numMemPartitions = 2;
    }

    GpuStats
    run(uint32_t res)
    {
        SimWorkload workload =
            SimWorkload::buildFullFrame(*tracer, res, res);
        Gpu gpu(config, workload);
        return gpu.run();
    }

    rt::Scene scene;
    rt::Bvh bvh;
    std::unique_ptr<rt::Tracer> tracer;
    GpuConfig config;
};

TEST_F(SchedulerFixture, PolicyNames)
{
    EXPECT_STREQ(
        warpSchedulerPolicyName(WarpSchedulerPolicy::GreedyThenOldest),
        "gto");
    EXPECT_STREQ(
        warpSchedulerPolicyName(WarpSchedulerPolicy::LooseRoundRobin),
        "lrr");
}

TEST_F(SchedulerFixture, BothPoliciesCompleteSameWork)
{
    config.scheduler = WarpSchedulerPolicy::GreedyThenOldest;
    GpuStats gto = run(24);
    config.scheduler = WarpSchedulerPolicy::LooseRoundRobin;
    GpuStats lrr = run(24);

    // Functional work is identical regardless of scheduling.
    EXPECT_EQ(gto.rtNodeVisits, lrr.rtNodeVisits);
    EXPECT_EQ(gto.threadInstructions, lrr.threadInstructions);
    EXPECT_EQ(gto.warpsLaunched, lrr.warpsLaunched);
    // Timing may legitimately differ but stays in the same ballpark.
    EXPECT_GT(gto.cycles, 0u);
    EXPECT_GT(lrr.cycles, 0u);
    double ratio = static_cast<double>(gto.cycles) / lrr.cycles;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST_F(SchedulerFixture, PoliciesAreDeterministic)
{
    config.scheduler = WarpSchedulerPolicy::LooseRoundRobin;
    GpuStats a = run(16);
    GpuStats b = run(16);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
}

TEST_F(SchedulerFixture, TwoRtUnitsCompleteSameWork)
{
    GpuStats one = run(24);
    config.rtUnitsPerSm = 2;
    GpuStats two = run(24);
    EXPECT_EQ(one.rtNodeVisits, two.rtNodeVisits);
    // Doubling the accelerator count cannot slow things down.
    EXPECT_LE(two.cycles, one.cycles);
}

TEST_F(SchedulerFixture, TwoRtUnitsHelpWhenSlotBound)
{
    // Few visits per cycle and few resident warps: RT slots bind.
    config.rtMaxWarps = 1;
    GpuStats one = run(24);
    config.rtUnitsPerSm = 4;
    GpuStats four = run(24);
    EXPECT_LT(four.cycles, one.cycles);
}

TEST_F(SchedulerFixture, ZeroRtUnitsRejected)
{
    config.rtUnitsPerSm = 0;
    EXPECT_EXIT(config.validate(), testing::ExitedWithCode(1), "RT unit");
}

} // namespace
} // namespace zatel::gpusim
