/**
 * @file
 * Unit tests for the CSV writer and ASCII table renderer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/csv.hh"
#include "util/table.hh"

namespace zatel
{
namespace
{

TEST(Csv, HeaderAndRows)
{
    CsvWriter csv;
    csv.setHeader({"a", "b"});
    csv.addRow({"1", "2"});
    csv.addNumericRow({3.5, 4.25});
    EXPECT_EQ(csv.toString(), "a,b\n1,2\n3.5,4.25\n");
    EXPECT_EQ(csv.rowCount(), 2u);
}

TEST(Csv, QuotingCommasAndQuotes)
{
    EXPECT_EQ(CsvWriter::quoteCell("plain"), "plain");
    EXPECT_EQ(CsvWriter::quoteCell("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::quoteCell("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::quoteCell("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, NoHeader)
{
    CsvWriter csv;
    csv.addRow({"x"});
    EXPECT_EQ(csv.toString(), "x\n");
}

TEST(Csv, WriteToFileRoundTrip)
{
    CsvWriter csv;
    csv.setHeader({"metric", "value"});
    csv.addRow({"ipc", "17.5"});
    std::string path = testing::TempDir() + "/zatel_csv_test.csv";
    ASSERT_TRUE(csv.writeTo(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "metric,value");
    std::getline(in, line);
    EXPECT_EQ(line, "ipc,17.5");
    std::remove(path.c_str());
}

TEST(Csv, FormatDoubleCompact)
{
    EXPECT_EQ(CsvWriter::formatDouble(1.0), "1");
    EXPECT_EQ(CsvWriter::formatDouble(0.5), "0.5");
}

TEST(AsciiTable, RendersHeaderAndCells)
{
    AsciiTable table({"Name", "Val"});
    table.addRow({"alpha", "1.0"});
    table.addRow({"beta", "22.5"});
    std::string out = table.toString();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22.5"), std::string::npos);
    // Borders exist.
    EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(AsciiTable, ShortRowsPadded)
{
    AsciiTable table({"A", "B", "C"});
    table.addRow({"only"});
    std::string out = table.toString();
    // No crash, row rendered with empty cells; all columns present.
    EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(AsciiTable, RuleInsertsSeparator)
{
    AsciiTable table({"A"});
    table.addRow({"x"});
    table.addRule();
    table.addRow({"y"});
    std::string out = table.toString();
    // 5 horizontal rules: top, under header, mid, bottom... count '+--'
    size_t count = 0;
    for (size_t pos = out.find("+-"); pos != std::string::npos;
         pos = out.find("+-", pos + 1))
        ++count;
    EXPECT_GE(count, 4u);
}

TEST(AsciiTable, NumFormatting)
{
    EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(AsciiTable::num(2.0, 0), "2");
    EXPECT_EQ(AsciiTable::pct(12.345, 1), "12.3%");
}

} // namespace
} // namespace zatel
