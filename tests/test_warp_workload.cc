/**
 * @file
 * Tests for workload construction and the warp stage machine.
 */

#include <gtest/gtest.h>

#include "gpusim/warp.hh"
#include "gpusim/workload.hh"
#include "rt/bvh.hh"
#include "rt/mesh.hh"
#include "rt/scene.hh"
#include "rt/tracer.hh"

namespace zatel::gpusim
{
namespace
{

struct WorkloadFixture : public testing::Test
{
    void
    SetUp() override
    {
        scene.setCamera(rt::Camera({0.0f, 0.0f, 5.0f}, {0.0f, 0.0f, 0.0f},
                                   {0.0f, 1.0f, 0.0f}, 50.0f));
        scene.setLight({{3.0f, 6.0f, 3.0f}, {1.0f, 1.0f, 1.0f}});
        uint16_t mat =
            scene.addMaterial(rt::Material::diffuse({0.6f, 0.4f, 0.3f}));
        rt::MeshBuilder mesh;
        mesh.addSphere({0.0f, 0.0f, 0.0f}, 1.2f, 12, mat);
        scene.addTriangles(mesh.takeTriangles());
        bvh.build(scene.triangles());
        tracer = std::make_unique<rt::Tracer>(scene, bvh);
        config = GpuConfig::mobileSoc();
    }

    rt::Scene scene{"warp-test"};
    rt::Bvh bvh;
    std::unique_ptr<rt::Tracer> tracer;
    GpuConfig config;
};

TEST_F(WorkloadFixture, FullFrameHasAllThreads)
{
    SimWorkload workload = SimWorkload::buildFullFrame(*tracer, 16, 16);
    EXPECT_EQ(workload.threads.size(), 256u);
    EXPECT_EQ(workload.selectedCount, 256u);
    EXPECT_EQ(workload.bvh, &bvh);
    EXPECT_GT(workload.totalRays(), 0u);
}

TEST_F(WorkloadFixture, FilterMaskSkipsRecording)
{
    std::vector<PixelCoord> pixels{{8, 8}, {0, 0}, {15, 15}};
    std::vector<bool> selected{true, false, true};
    SimWorkload workload =
        SimWorkload::build(*tracer, 16, 16, pixels, &selected);
    EXPECT_EQ(workload.selectedCount, 2u);
    EXPECT_FALSE(workload.threads[1].selected);
    EXPECT_EQ(workload.threads[1].rayCount, 0u);
    EXPECT_GT(workload.threads[0].rayCount, 0u);
}

TEST_F(WorkloadFixture, PixelLinearIndexing)
{
    std::vector<PixelCoord> pixels{{3, 2}};
    SimWorkload workload = SimWorkload::build(*tracer, 16, 16, pixels);
    EXPECT_EQ(workload.threads[0].pixelLinear, 2u * 16u + 3u);
}

TEST_F(WorkloadFixture, WarpRaygenStage)
{
    SimWorkload workload = SimWorkload::buildFullFrame(*tracer, 8, 4);
    Warp warp(0, &config, &workload, 0, 32);

    EXPECT_EQ(warp.phase(), Warp::Phase::NotStarted);
    warp.poll(0);
    EXPECT_EQ(warp.phase(), Warp::Phase::AluIssue);
    EXPECT_TRUE(warp.wantsIssue());
    EXPECT_FALSE(warp.nextIsLoad());

    // Thread instructions for 32 selected threads at raygen cost.
    uint64_t insts = warp.takePendingThreadInsts();
    EXPECT_EQ(insts, 32ull * config.raygenInsts);

    // Issue all raygen instructions.
    for (uint32_t i = 0; i < config.raygenInsts; ++i) {
        ASSERT_TRUE(warp.wantsIssue());
        warp.commitAlu(i);
    }
    EXPECT_FALSE(warp.wantsIssue());
    warp.poll(config.raygenInsts);
    EXPECT_EQ(warp.phase(), Warp::Phase::AluDrain);

    // After the pipeline drains the warp asks for an RT slot.
    warp.poll(config.raygenInsts + config.aluLatency);
    EXPECT_TRUE(warp.wantsRtSlot());
    EXPECT_EQ(warp.currentRaySlot(), 0);
}

TEST_F(WorkloadFixture, FilteredWarpSkipsToFbAndDone)
{
    std::vector<PixelCoord> pixels;
    for (uint32_t i = 0; i < 32; ++i)
        pixels.push_back({i % 8, i / 8});
    std::vector<bool> selected(32, false);
    SimWorkload workload =
        SimWorkload::build(*tracer, 8, 4, pixels, &selected);
    Warp warp(0, &config, &workload, 0, 32);

    warp.poll(0);
    // Filter-exit cost only.
    EXPECT_EQ(warp.takePendingThreadInsts(),
              32ull * config.filterExitInsts);
    uint64_t cycle = 0;
    while (warp.wantsIssue())
        warp.commitAlu(cycle++);
    warp.poll(cycle + config.aluLatency);
    // No rays and no selected threads: straight to Done (the FB stage has
    // no stores for filtered threads).
    EXPECT_TRUE(warp.done());
}

TEST_F(WorkloadFixture, RtRoundTripAndPostRayStage)
{
    SimWorkload workload = SimWorkload::buildFullFrame(*tracer, 8, 4);
    Warp warp(0, &config, &workload, 0, 32);

    uint64_t cycle = 0;
    warp.poll(cycle);
    while (warp.wantsIssue())
        warp.commitAlu(cycle++);
    cycle += config.aluLatency;
    warp.poll(cycle);
    ASSERT_TRUE(warp.wantsRtSlot());

    // Enter the RT unit manually (lending it a lane span the way the RT
    // unit's pool would) and run every lane to completion.
    std::vector<WarpLane> laneSpan(config.warpSize);
    warp.enterRtUnit(laneSpan.data());
    EXPECT_EQ(warp.phase(), Warp::Phase::InRt);
    EXPECT_GT(warp.activeLaneCount(), 0u);
    for (uint32_t i = 0; i < warp.laneCount(); ++i) {
        WarpLane &lane = warp.lanes()[i];
        if (lane.state == WarpLane::State::Inactive)
            continue;
        while (!lane.stepper.finished())
            lane.stepper.step();
        lane.state = WarpLane::State::Done;
    }
    EXPECT_EQ(warp.activeLaneCount(), 0u);
    warp.exitRtUnit(cycle);

    // Post-ray stage: center pixels hit (shade + material load), edge
    // pixels miss; either way there is ALU work.
    EXPECT_EQ(warp.phase(), Warp::Phase::AluIssue);
    EXPECT_GT(warp.takePendingThreadInsts(), 0u);
}

TEST_F(WorkloadFixture, FbWriteStoresCoalesce)
{
    // 32 threads of one row: 32 consecutive pixels * 16B = 512B = 4 lines.
    std::vector<PixelCoord> pixels;
    for (uint32_t i = 0; i < 32; ++i)
        pixels.push_back({i, 0});
    SimWorkload workload = SimWorkload::build(*tracer, 32, 1, pixels);
    Warp warp(0, &config, &workload, 0, 32);

    // Drive the warp to completion, counting stores.
    uint64_t cycle = 0;
    uint32_t stores = 0;
    std::vector<WarpLane> laneSpan(config.warpSize);
    for (int guard = 0; guard < 100000 && !warp.done(); ++guard) {
        warp.poll(cycle);
        if (warp.wantsRtSlot()) {
            warp.enterRtUnit(laneSpan.data());
            for (uint32_t i = 0; i < warp.laneCount(); ++i) {
                WarpLane &lane = warp.lanes()[i];
                if (lane.state == WarpLane::State::Inactive)
                    continue;
                while (!lane.stepper.finished())
                    lane.stepper.step();
                lane.state = WarpLane::State::Done;
            }
            warp.exitRtUnit(cycle);
        } else if (warp.wantsIssue()) {
            if (warp.nextIsLoad()) {
                warp.commitLoad();
                warp.onLoadComplete();
            } else if (warp.nextIsStore()) {
                warp.commitStore();
                ++stores;
            } else {
                warp.commitAlu(cycle);
            }
        }
        ++cycle;
    }
    EXPECT_TRUE(warp.done());
    EXPECT_EQ(stores, 4u);
}

TEST_F(WorkloadFixture, PartialWarpFewerThreads)
{
    std::vector<PixelCoord> pixels{{0, 0}, {1, 0}, {2, 0}};
    SimWorkload workload = SimWorkload::build(*tracer, 8, 4, pixels);
    Warp warp(7, &config, &workload, 0, 3);
    EXPECT_EQ(warp.threadCount(), 3u);
    EXPECT_EQ(warp.id(), 7u);
    warp.poll(0);
    EXPECT_EQ(warp.takePendingThreadInsts(), 3ull * config.raygenInsts);
}

} // namespace
} // namespace zatel::gpusim
