/**
 * @file
 * Tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "util/arg_parser.hh"

namespace zatel
{
namespace
{

ArgParser
makeParser()
{
    ArgParser parser("tool", "test tool");
    parser.addOption("scene", "PARK", "scene name");
    parser.addOption("res", "128", "resolution");
    parser.addFlag("verbose", "chatty output");
    parser.addRequired("mode", "operating mode");
    return parser;
}

bool
parseArgs(ArgParser &parser, std::vector<const char *> args)
{
    args.insert(args.begin(), "tool");
    return parser.parse(static_cast<int>(args.size()), args.data());
}

TEST(ArgParser, DefaultsApply)
{
    ArgParser parser = makeParser();
    ASSERT_TRUE(parseArgs(parser, {"--mode", "go"}));
    EXPECT_EQ(parser.get("scene"), "PARK");
    EXPECT_EQ(parser.getInt("res"), 128);
    EXPECT_FALSE(parser.getFlag("verbose"));
    EXPECT_FALSE(parser.has("scene"));
}

TEST(ArgParser, SpaceAndEqualsSyntax)
{
    ArgParser parser = makeParser();
    ASSERT_TRUE(
        parseArgs(parser, {"--mode=run", "--scene", "BUNNY", "--res=64"}));
    EXPECT_EQ(parser.get("mode"), "run");
    EXPECT_EQ(parser.get("scene"), "BUNNY");
    EXPECT_EQ(parser.getInt("res"), 64);
    EXPECT_TRUE(parser.has("scene"));
}

TEST(ArgParser, FlagsAndPositionals)
{
    ArgParser parser = makeParser();
    ASSERT_TRUE(parseArgs(parser,
                          {"predict", "--verbose", "--mode", "x", "extra"}));
    EXPECT_TRUE(parser.getFlag("verbose"));
    ASSERT_EQ(parser.positional().size(), 2u);
    EXPECT_EQ(parser.positional()[0], "predict");
    EXPECT_EQ(parser.positional()[1], "extra");
}

TEST(ArgParser, MissingRequiredFails)
{
    ArgParser parser = makeParser();
    EXPECT_FALSE(parseArgs(parser, {"--scene", "PARK"}));
    EXPECT_NE(parser.errorMessage().find("mode"), std::string::npos);
}

TEST(ArgParser, UnknownOptionFails)
{
    ArgParser parser = makeParser();
    EXPECT_FALSE(parseArgs(parser, {"--mode", "x", "--bogus", "1"}));
    EXPECT_NE(parser.errorMessage().find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueFails)
{
    ArgParser parser = makeParser();
    EXPECT_FALSE(parseArgs(parser, {"--mode"}));
    EXPECT_NE(parser.errorMessage().find("needs a value"),
              std::string::npos);
}

TEST(ArgParser, FlagWithValueFails)
{
    ArgParser parser = makeParser();
    EXPECT_FALSE(parseArgs(parser, {"--mode", "x", "--verbose=2"}));
}

TEST(ArgParser, NumericConversions)
{
    ArgParser parser("t");
    parser.addOption("count", "0", "a count");
    parser.addOption("ratio", "0.5", "a ratio");
    std::vector<const char *> args{"t", "--count", "42", "--ratio", "0.25"};
    ASSERT_TRUE(parser.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_EQ(parser.getInt("count"), 42);
    EXPECT_DOUBLE_EQ(parser.getDouble("ratio"), 0.25);
}

TEST(ArgParser, MalformedNumberIsFatal)
{
    ArgParser parser("t");
    parser.addOption("count", "0", "a count");
    std::vector<const char *> args{"t", "--count", "abc"};
    ASSERT_TRUE(parser.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_EXIT(parser.getInt("count"), testing::ExitedWithCode(1),
                "integer");
}

TEST(ArgParser, OverflowingIntegerIsFatal)
{
    ArgParser parser("t");
    parser.addOption("count", "0", "a count");
    std::vector<const char *> args{"t", "--count",
                                   "99999999999999999999999"};
    ASSERT_TRUE(parser.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_EXIT(parser.getInt("count"), testing::ExitedWithCode(1),
                "overflows");
}

TEST(ArgParser, GetIntInRangeAcceptsBoundsAndRejectsOutside)
{
    ArgParser parser("t");
    parser.addOption("retries", "1", "retry count");
    {
        std::vector<const char *> args{"t", "--retries", "0"};
        ASSERT_TRUE(
            parser.parse(static_cast<int>(args.size()), args.data()));
        EXPECT_EQ(parser.getIntInRange("retries", 0, 100), 0);
    }
    {
        std::vector<const char *> args{"t", "--retries", "100"};
        ASSERT_TRUE(
            parser.parse(static_cast<int>(args.size()), args.data()));
        EXPECT_EQ(parser.getIntInRange("retries", 0, 100), 100);
    }
    {
        std::vector<const char *> args{"t", "--retries", "101"};
        ASSERT_TRUE(
            parser.parse(static_cast<int>(args.size()), args.data()));
        EXPECT_EXIT(parser.getIntInRange("retries", 0, 100),
                    testing::ExitedWithCode(1), "must be in");
    }
    {
        std::vector<const char *> args{"t", "--retries", "-1"};
        ASSERT_TRUE(
            parser.parse(static_cast<int>(args.size()), args.data()));
        EXPECT_EXIT(parser.getIntInRange("retries", 0, 100),
                    testing::ExitedWithCode(1), "must be in");
    }
}

TEST(ArgParser, GetPositiveIntRejectsZeroAndNegative)
{
    ArgParser parser("t");
    parser.addOption("spp", "1", "samples per pixel");
    {
        std::vector<const char *> args{"t", "--spp", "4"};
        ASSERT_TRUE(
            parser.parse(static_cast<int>(args.size()), args.data()));
        EXPECT_EQ(parser.getPositiveInt("spp"), 4);
    }
    {
        std::vector<const char *> args{"t", "--spp", "0"};
        ASSERT_TRUE(
            parser.parse(static_cast<int>(args.size()), args.data()));
        EXPECT_EXIT(parser.getPositiveInt("spp"),
                    testing::ExitedWithCode(1), ">= 1");
    }
    {
        std::vector<const char *> args{"t", "--spp", "-3"};
        ASSERT_TRUE(
            parser.parse(static_cast<int>(args.size()), args.data()));
        EXPECT_EXIT(parser.getPositiveInt("spp"),
                    testing::ExitedWithCode(1), ">= 1");
    }
}

TEST(ArgParser, GetPortNumberBoundsAndEphemeralZero)
{
    ArgParser parser("t");
    parser.addOption("port", "8080", "TCP port");
    {
        std::vector<const char *> args{"t", "--port", "65535"};
        ASSERT_TRUE(
            parser.parse(static_cast<int>(args.size()), args.data()));
        EXPECT_EQ(parser.getPortNumber("port"), 65535);
    }
    {
        std::vector<const char *> args{"t", "--port", "0"};
        ASSERT_TRUE(
            parser.parse(static_cast<int>(args.size()), args.data()));
        // 0 is only a valid (ephemeral) port when explicitly allowed.
        EXPECT_EQ(parser.getPortNumber("port", /*allowZero=*/true), 0);
        EXPECT_EXIT(parser.getPortNumber("port"),
                    testing::ExitedWithCode(1), "must be in");
    }
    {
        std::vector<const char *> args{"t", "--port", "65536"};
        ASSERT_TRUE(
            parser.parse(static_cast<int>(args.size()), args.data()));
        EXPECT_EXIT(parser.getPortNumber("port", /*allowZero=*/true),
                    testing::ExitedWithCode(1), "must be in");
    }
}

TEST(ArgParser, UsageMentionsEverything)
{
    ArgParser parser = makeParser();
    std::string usage = parser.usage();
    EXPECT_NE(usage.find("--scene"), std::string::npos);
    EXPECT_NE(usage.find("--verbose"), std::string::npos);
    EXPECT_NE(usage.find("required"), std::string::npos);
    EXPECT_NE(usage.find("default: PARK"), std::string::npos);
}

TEST(ArgParser, RepeatedOptionsCollectInOrder)
{
    ArgParser parser = makeParser();
    ASSERT_TRUE(parseArgs(parser, {"--mode", "x", "--scene", "PARK",
                                   "--scene=BUNNY", "--scene", "SPNZA"}));
    // get() keeps its last-one-wins contract...
    EXPECT_EQ(parser.get("scene"), "SPNZA");
    // ...while getList() exposes every occurrence in order.
    EXPECT_EQ(parser.getList("scene"),
              (std::vector<std::string>{"PARK", "BUNNY", "SPNZA"}));
}

TEST(ArgParser, GetListFallsBackToDefault)
{
    ArgParser parser = makeParser();
    ASSERT_TRUE(parseArgs(parser, {"--mode", "x"}));
    // Unsupplied option with a non-empty default -> {default}.
    EXPECT_EQ(parser.getList("scene"),
              (std::vector<std::string>{"PARK"}));

    ArgParser empty_default("t");
    empty_default.addOption("csv", "", "output file");
    std::vector<const char *> args{"t"};
    ASSERT_TRUE(empty_default.parse(static_cast<int>(args.size()),
                                    args.data()));
    // Unsupplied option with an empty default -> {}.
    EXPECT_TRUE(empty_default.getList("csv").empty());
}

TEST(ArgParser, ReparseResetsState)
{
    ArgParser parser = makeParser();
    ASSERT_TRUE(parseArgs(parser, {"--mode", "a", "--verbose"}));
    ASSERT_TRUE(parseArgs(parser, {"--mode", "b"}));
    EXPECT_EQ(parser.get("mode"), "b");
    EXPECT_FALSE(parser.getFlag("verbose"));
    EXPECT_TRUE(parser.positional().empty());
}

} // namespace
} // namespace zatel
