/**
 * @file
 * Unit tests for scalar/statistics helpers.
 */

#include <gtest/gtest.h>

#include "util/math_utils.hh"

namespace zatel
{
namespace
{

TEST(Gcd, Basics)
{
    EXPECT_EQ(gcd(12, 8), 4u);
    EXPECT_EQ(gcd(8, 12), 4u);
    EXPECT_EQ(gcd(7, 13), 1u);
    EXPECT_EQ(gcd(0, 5), 5u);
    EXPECT_EQ(gcd(5, 0), 5u);
    EXPECT_EQ(gcd(0, 0), 0u);
    EXPECT_EQ(gcd(30, 12), 6u);
}

TEST(Gcd, PaperExamples)
{
    // Section III-C: 80 SMs + 10 MCs -> K = 10.
    EXPECT_EQ(gcd(80, 10), 10u);
    // Table II: Mobile SoC 8 SMs + 4 MCs -> K = 4.
    EXPECT_EQ(gcd(8, 4), 4u);
    // RTX 2060: 30 SMs + 12 MCs -> K = 6.
    EXPECT_EQ(gcd(30, 12), 6u);
}

TEST(GcdAll, List)
{
    EXPECT_EQ(gcdAll({}), 0u);
    EXPECT_EQ(gcdAll({42}), 42u);
    EXPECT_EQ(gcdAll({12, 18, 24}), 6u);
    EXPECT_EQ(gcdAll({7, 13}), 1u);
}

TEST(Clamp, Bounds)
{
    EXPECT_DOUBLE_EQ(clampDouble(0.5, 0.3, 0.6), 0.5);
    EXPECT_DOUBLE_EQ(clampDouble(0.1, 0.3, 0.6), 0.3);
    EXPECT_DOUBLE_EQ(clampDouble(0.9, 0.3, 0.6), 0.6);
    EXPECT_DOUBLE_EQ(clampDouble(0.3, 0.3, 0.6), 0.3);
}

TEST(CeilDiv, Basics)
{
    EXPECT_EQ(ceilDiv(10, 2), 5u);
    EXPECT_EQ(ceilDiv(11, 2), 6u);
    EXPECT_EQ(ceilDiv(0, 3), 0u);
    EXPECT_EQ(ceilDiv(1, 100), 1u);
}

TEST(Mean, Values)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({-1.0, 1.0}), 0.0);
}

TEST(Stddev, Values)
{
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({2.0, 2.0, 2.0}), 0.0);
    EXPECT_NEAR(stddev({1.0, 3.0}), 1.0, 1e-12);
}

TEST(Median, OddEvenEmpty)
{
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(MinMax, Values)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, -1.0, 2.0}), -1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, -1.0, 2.0}), 3.0);
    EXPECT_DOUBLE_EQ(minOf({}), 0.0);
    EXPECT_DOUBLE_EQ(maxOf({}), 0.0);
}

TEST(RelativeError, Percentages)
{
    EXPECT_DOUBLE_EQ(relativeErrorPct(110.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(relativeErrorPct(90.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(relativeErrorPct(100.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(relativeErrorPct(-50.0, -100.0), 50.0);
}

TEST(RelativeError, NearZeroOracleIsFinite)
{
    double e = relativeErrorPct(0.5, 0.0);
    EXPECT_GE(e, 0.0);
    EXPECT_LT(e, 1e6);
}

TEST(MaePct, PairedSamples)
{
    EXPECT_DOUBLE_EQ(maePct({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(maePct({110.0, 90.0}, {100.0, 100.0}), 10.0);
    EXPECT_DOUBLE_EQ(maePct({100.0}, {100.0}), 0.0);
}

TEST(NearlyEqual, Tolerance)
{
    EXPECT_TRUE(nearlyEqual(1.0, 1.0));
    EXPECT_TRUE(nearlyEqual(1.0, 1.0 + 1e-10));
    EXPECT_FALSE(nearlyEqual(1.0, 1.1));
    EXPECT_TRUE(nearlyEqual(1.0, 1.05, 0.1));
}

} // namespace
} // namespace zatel
