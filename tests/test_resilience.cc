/**
 * @file
 * Fault-matrix tests for the resilience layer (docs/ROBUSTNESS.md):
 * for every site in the production fault catalog, an injected failure
 * must yield a completed campaign with the documented per-row status —
 * never a crash, a hang, or a silently wrong number.
 *
 *  - A transient fault (nth:1) at ANY site recovers to an all-ok
 *    campaign: retries, the stall watchdog and the cache's disk-tier
 *    degradation each absorb their sites.
 *  - A persistent fault (always) produces the per-site terminal status
 *    the docs promise (ok / degraded / failed) — and disk faults flip
 *    the cache to memory-only with the "disk=degraded" summary token
 *    CI greps for.
 *  - A stalled group whose retries are exhausted becomes a Degraded
 *    row assembled from the survivors, not a wedged campaign.
 *  - Degraded predictions are byte-identical across thread counts:
 *    the keyed probability policy fails the same groups no matter how
 *    probes interleave (tests the contract the paper's error model
 *    needs — a degraded prediction is a *deterministic* function of
 *    its inputs and the fault plan).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "gpusim/config.hh"
#include "gpusim/stats.hh"
#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "service/artifact_cache.hh"
#include "service/campaign.hh"
#include "service/result_store.hh"
#include "service/scheduler.hh"
#include "util/fault_injection.hh"
#include "zatel/predictor.hh"

namespace zatel::service
{
namespace
{

constexpr uint64_t kCacheBudget = 256ull * 1024 * 1024;

/** Bit pattern of a double; distinguishes what tolerance compares hide. */
uint64_t
bitsOf(double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/** A small, fast job: 32x32 PARK at reduced procedural density. */
CampaignJob
makeJob(double fraction)
{
    CampaignJob job;
    job.scene = "PARK";
    job.sceneDetail = 0.3f;
    job.params.width = 32;
    job.params.height = 32;
    job.params.selector.fixedFraction = fraction;
    return job;
}

std::filesystem::path
scratchDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / ("zatel-resilience-" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Every test arms the PROCESS-WIDE registry; pristine state is
 *  restored around each so no test inherits a fault plan. */
class Resilience : public testing::Test
{
  protected:
    void SetUp() override { FaultRegistry::global().resetForTest(); }
    void TearDown() override { FaultRegistry::global().resetForTest(); }
};

/** Watchdog tuning used throughout: aggressive enough that a stalled
 *  instance is caught in well under a second of test time. */
void
armWatchdog(SchedulerParams &params)
{
    params.stallTimeoutSeconds = 0.25;
    params.probeIntervalCycles = 2000;
}

// ---------------------------------------------------------------------
// Transient faults: every site recovers to an all-ok campaign
// ---------------------------------------------------------------------

TEST_F(Resilience, TransientFaultAtEverySiteRecovers)
{
    for (const std::string &site : FaultRegistry::knownSiteNames()) {
        // serve.* sites live in the daemon's socket path, which a
        // campaign never reaches; tests/test_serve.cc drives them.
        // dist.* / worker.* sites live in the multi-process job-board
        // path; tests/test_dist.cc drives them.
        if (site.rfind("serve.", 0) == 0 ||
            site.rfind("dist.", 0) == 0 || site.rfind("worker.", 0) == 0)
            continue;
        FaultRegistry::global().resetForTest();
        FaultRegistry::global().setPolicy(site, FaultPolicy::nthHit(1));

        const std::filesystem::path dir = scratchDir("transient");
        ArtifactCache cache(kCacheBudget, dir.string());
        ResultStore store("");

        std::vector<CampaignJob> jobs;
        for (size_t i = 0; i < 3; ++i)
            jobs.push_back(makeJob(0.15 + 0.05 * static_cast<double>(i)));
        jobs[0].withOracle = true; // reaches the oracle.run site
        finalizeCampaign(jobs);

        SchedulerParams params;
        params.workers = 2;
        params.stageRetries = 1;
        armWatchdog(params); // group.sim.stall needs the watchdog
        CampaignScheduler scheduler(std::move(jobs), cache, store, params);
        const CampaignSummary summary = scheduler.run();

        EXPECT_EQ(summary.totalJobs, 3u) << site;
        EXPECT_EQ(summary.ok, 3u)
            << site << ": a single transient fault must be absorbed\n"
            << summary.toString();
        EXPECT_EQ(summary.failed, 0u) << site;
        EXPECT_EQ(summary.cancelled, 0u) << site;
        EXPECT_EQ(summary.timedOut, 0u) << site;

        // Prove the fault plan was not vacuous: the armed site really
        // was reached and really fired.
        EXPECT_EQ(FaultRegistry::global().site(site)->fires(), 1u)
            << site << " never fired; the matrix would be testing nothing";

        std::filesystem::remove_all(dir);
    }
}

// ---------------------------------------------------------------------
// Persistent faults: the documented per-site terminal status
// ---------------------------------------------------------------------

struct AlwaysExpectation
{
    /** ok / degraded / failed counts expected for a one-job campaign. */
    size_t ok = 0;
    size_t degraded = 0;
    size_t failed = 0;
    bool cacheDegraded = false;
    bool writeFailures = false;
};

TEST_F(Resilience, PersistentFaultMatrixYieldsDocumentedStatus)
{
    // Keep in sync with the docs/ROBUSTNESS.md site catalog.
    const std::map<std::string, AlwaysExpectation> expectations = {
        // Disk-tier faults degrade the cache to memory-only; the
        // prediction itself is unaffected.
        {"cache.disk.read", {.ok = 1, .cacheDegraded = true}},
        {"cache.disk.write", {.ok = 1, .cacheDegraded = true}},
        // Start-stage builders have no degraded mode: retries
        // exhausted means the job failed.
        {"scene.pack.build", {.failed = 1}},
        {"heatmap.build", {.failed = 1}},
        // Every group failing leaves nothing to assemble from.
        {"group.sim", {.failed = 1}},
        {"group.sim.midrun", {.failed = 1}},
        // Every attempt at every group stalls; with zero retries each
        // group is recorded failed and the job fails.
        {"group.sim.stall", {.failed = 1}},
        // The submit wrapper retries a bounded number of times and
        // then proceeds anyway: losing a unit would strand the job.
        {"pool.task", {.ok = 1}},
        // Row I/O failures keep the row in memory and are counted.
        {"result.store.append", {.ok = 1, .writeFailures = true}},
        // The prediction succeeded; only the optional oracle is lost.
        {"oracle.run", {.degraded = 1}},
    };
    // The table must cover the catalog exactly (a new site without an
    // expectation is a hole in the resilience story). serve.* sites
    // are the daemon's socket path: a campaign never reaches them, so
    // tests/test_serve.cc carries their always-policy expectations.
    // Likewise dist.* / worker.* sites fire only in the multi-process
    // job-board path; tests/test_dist.cc carries theirs.
    size_t campaignSites = 0;
    for (const std::string &site : FaultRegistry::knownSiteNames()) {
        if (site.rfind("serve.", 0) == 0 ||
            site.rfind("dist.", 0) == 0 || site.rfind("worker.", 0) == 0)
            continue;
        ++campaignSites;
        ASSERT_TRUE(expectations.count(site)) << site;
    }
    ASSERT_EQ(expectations.size(), campaignSites);

    for (const auto &[site, expected] : expectations) {
        FaultRegistry::global().resetForTest();
        FaultRegistry::global().setPolicy(site, FaultPolicy::always());

        const std::filesystem::path dir = scratchDir("persistent");
        ArtifactCache cache(kCacheBudget, dir.string());
        ResultStore store((dir / "results.jsonl").string());

        std::vector<CampaignJob> jobs{makeJob(0.2)};
        jobs[0].withOracle = true;
        jobs[0].params.groupRetries = 0;
        finalizeCampaign(jobs);

        SchedulerParams params;
        params.workers = 2;
        params.stageRetries = 1;
        armWatchdog(params);
        CampaignScheduler scheduler(std::move(jobs), cache, store, params);
        const CampaignSummary summary = scheduler.run();

        EXPECT_EQ(summary.ok, expected.ok) << site << "\n"
                                           << summary.toString();
        EXPECT_EQ(summary.degraded, expected.degraded)
            << site << "\n"
            << summary.toString();
        EXPECT_EQ(summary.failed, expected.failed)
            << site << "\n"
            << summary.toString();
        EXPECT_EQ(summary.cancelled, 0u) << site;
        EXPECT_EQ(summary.timedOut, 0u) << site;
        EXPECT_EQ(summary.cacheDiskDegraded, expected.cacheDegraded)
            << site;
        if (expected.cacheDegraded) {
            // The token both the cache summary and the campaign
            // summary expose, and CI greps for.
            EXPECT_NE(summary.toString().find("disk=degraded"),
                      std::string::npos)
                << summary.toString();
            EXPECT_TRUE(cache.diskDegraded()) << site;
        }
        if (expected.writeFailures) {
            EXPECT_GT(store.writeFailures(), 0u) << site;
        }
        EXPECT_GT(FaultRegistry::global().site(site)->fires(), 0u) << site;

        // Whatever the terminal status, exactly one row was recorded —
        // a faulted job must never vanish from the result set.
        ASSERT_EQ(store.rows().size(), 1u) << site;

        std::filesystem::remove_all(dir);
    }
}

// ---------------------------------------------------------------------
// Stall watchdog: retries exhausted -> degraded, not wedged
// ---------------------------------------------------------------------

TEST_F(Resilience, StalledGroupWithNoRetriesDegradesTheRow)
{
    // Exactly one group stalls once (nth:1); with zero group retries
    // its only attempt is burned, the group is recorded failed and the
    // prediction is assembled from the survivors.
    FaultRegistry::global().setPolicy("group.sim.stall",
                                      FaultPolicy::nthHit(1));

    ArtifactCache cache(kCacheBudget, "");
    ResultStore store("");
    std::vector<CampaignJob> jobs{makeJob(0.25)};
    jobs[0].params.groupRetries = 0;
    finalizeCampaign(jobs);

    SchedulerParams params;
    params.workers = 2;
    armWatchdog(params);
    CampaignScheduler scheduler(std::move(jobs), cache, store, params);
    const CampaignSummary summary = scheduler.run();

    EXPECT_EQ(summary.degraded, 1u) << summary.toString();
    EXPECT_EQ(summary.failed, 0u) << summary.toString();
    ASSERT_EQ(store.rows().size(), 1u);
    const ResultRow row = store.rows()[0];
    EXPECT_EQ(row.status, JobStatus::Degraded) << row.error;
    EXPECT_EQ(row.failedGroups, 1u);
    EXPECT_GT(row.survivorExtrapolation, 1.0)
        << "survivor re-weighting must widen, not shrink";
    EXPECT_NE(row.error.find("assembled from survivors"),
              std::string::npos)
        << row.error;
}

TEST_F(Resilience, StalledGroupWithRetriesRecoversToOk)
{
    FaultRegistry::global().setPolicy("group.sim.stall",
                                      FaultPolicy::nthHit(1));

    ArtifactCache cache(kCacheBudget, "");
    ResultStore store("");
    std::vector<CampaignJob> jobs{makeJob(0.25)};
    jobs[0].params.groupRetries = 1;
    finalizeCampaign(jobs);

    SchedulerParams params;
    params.workers = 2;
    armWatchdog(params);
    CampaignScheduler scheduler(std::move(jobs), cache, store, params);
    const CampaignSummary summary = scheduler.run();

    EXPECT_EQ(summary.ok, 1u) << summary.toString();
    ASSERT_EQ(store.rows().size(), 1u);
    EXPECT_EQ(store.rows()[0].status, JobStatus::Ok)
        << store.rows()[0].error;
}

// ---------------------------------------------------------------------
// Degraded determinism: thread count must not change which groups fail
// ---------------------------------------------------------------------

TEST_F(Resilience, DegradedPredictionByteIdenticalAcrossThreadCounts)
{
    // prob: is a pure function of (seed, site, group index), so the
    // failing subset — and therefore the degraded prediction — is the
    // same whether the groups run serially or race on four threads.
    FaultRegistry::global().setPolicy(
        "group.sim", FaultPolicy::withProbability(0.4, 42));

    rt::Scene scene = rt::buildScene(rt::SceneId::Park, rt::SceneDetail{0.3f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());

    auto run = [&](uint32_t num_threads) {
        core::ZatelParams params;
        params.width = 32;
        params.height = 32;
        params.selector.fixedFraction = 0.25;
        params.groupRetries = 0;    // retrying the same key refires anyway
        params.minGroupsFraction = 0.1;
        params.numThreads = num_threads;
        core::ZatelPredictor predictor(scene, bvh,
                                       gpusim::GpuConfig::mobileSoc(),
                                       params);
        return predictor.predict();
    };

    const core::ZatelResult serial = run(1);
    const core::ZatelResult parallel = run(4);

    ASSERT_TRUE(serial.degraded)
        << "seed 42 at p=0.4 should fail at least one group; if the "
           "keyed hash changed, update this test's seed";
    ASSERT_LT(serial.failedGroups.size(), static_cast<size_t>(serial.k))
        << "at least one group must survive for a degraded assembly";

    EXPECT_EQ(parallel.degraded, serial.degraded);
    EXPECT_EQ(parallel.failedGroups, serial.failedGroups)
        << "thread scheduling changed WHICH groups failed";
    EXPECT_EQ(bitsOf(parallel.survivorExtrapolation),
              bitsOf(serial.survivorExtrapolation));
    ASSERT_EQ(parallel.predicted.size(), serial.predicted.size());
    for (gpusim::Metric metric : gpusim::allMetrics()) {
        EXPECT_EQ(bitsOf(parallel.predicted.at(metric)),
                  bitsOf(serial.predicted.at(metric)))
            << "degraded prediction for " << gpusim::metricName(metric)
            << " diverged between thread counts";
    }

    // And the repeat run is stable too (same fault plan, same result).
    const core::ZatelResult again = run(4);
    EXPECT_EQ(again.failedGroups, serial.failedGroups);
    for (gpusim::Metric metric : gpusim::allMetrics()) {
        EXPECT_EQ(bitsOf(again.predicted.at(metric)),
                  bitsOf(serial.predicted.at(metric)));
    }
}

TEST_F(Resilience, FailFastTurnsAnyGroupFailureIntoAnError)
{
    FaultRegistry::global().setPolicy(
        "group.sim", FaultPolicy::withProbability(0.4, 42));

    rt::Scene scene = rt::buildScene(rt::SceneId::Park, rt::SceneDetail{0.3f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());

    core::ZatelParams params;
    params.width = 32;
    params.height = 32;
    params.selector.fixedFraction = 0.25;
    params.groupRetries = 0;
    params.failFast = true;
    params.numThreads = 2;
    core::ZatelPredictor predictor(scene, bvh,
                                   gpusim::GpuConfig::mobileSoc(), params);
    EXPECT_THROW(predictor.predict(), core::GroupFailureError);
}

// ---------------------------------------------------------------------
// Zero faults armed: the resilience layer is invisible
// ---------------------------------------------------------------------

TEST_F(Resilience, DisarmedRunMatchesDirectPrediction)
{
    // With nothing armed, a campaign run through the full resilience
    // machinery (watchdog on, retries on) must be byte-identical to
    // the plain predictor — the probes and the watchdog may observe,
    // never perturb.
    const CampaignJob job = makeJob(0.3);

    rt::SceneDetail detail;
    detail.density = job.sceneDetail;
    rt::Scene scene = rt::buildScene(rt::sceneIdFromName(job.scene), detail,
                                     job.sceneSeed);
    rt::Bvh bvh;
    bvh.build(scene.triangles(), job.bvh);
    core::ZatelPredictor direct(scene, bvh, gpuConfigFromName(job.gpu),
                                job.params);
    const core::ZatelResult expected = direct.predict();

    ArtifactCache cache(kCacheBudget, "");
    ResultStore store("");
    std::vector<CampaignJob> jobs{job};
    finalizeCampaign(jobs);
    SchedulerParams params;
    params.workers = 2;
    armWatchdog(params);
    CampaignScheduler scheduler(std::move(jobs), cache, store, params);
    const CampaignSummary summary = scheduler.run();

    EXPECT_EQ(summary.ok, 1u) << summary.toString();
    ASSERT_EQ(store.rows().size(), 1u);
    const ResultRow row = store.rows()[0];
    EXPECT_EQ(row.status, JobStatus::Ok) << row.error;
    EXPECT_EQ(row.failedGroups, 0u);
    for (gpusim::Metric metric : gpusim::allMetrics()) {
        const auto it = row.predicted.find(metric);
        ASSERT_NE(it, row.predicted.end());
        EXPECT_EQ(bitsOf(it->second), bitsOf(expected.metric(metric)))
            << gpusim::metricName(metric);
    }
}

} // namespace
} // namespace zatel::service
