/**
 * @file
 * Tests for representative-pixel selection (equations 1-3).
 */

#include <gtest/gtest.h>

#include "heatmap/heatmap.hh"
#include "zatel/pixel_selector.hh"

namespace zatel::core
{
namespace
{

PixelGroup
fullImageGroup(uint32_t width, uint32_t height)
{
    PixelGroup group;
    for (uint32_t y = 0; y < height; ++y)
        for (uint32_t x = 0; x < width; ++x)
            group.push_back({x, y});
    return group;
}

heatmap::QuantizedHeatmap
gradientMap(uint32_t width, uint32_t height, uint32_t k = 4)
{
    // Temperature increases along x.
    std::vector<double> costs(static_cast<size_t>(width) * height);
    for (uint32_t y = 0; y < height; ++y)
        for (uint32_t x = 0; x < width; ++x)
            costs[y * width + x] = static_cast<double>(x);
    heatmap::Heatmap map = heatmap::Heatmap::fromCosts(width, height, costs);
    return heatmap::QuantizedHeatmap::quantize(map, k);
}

heatmap::QuantizedHeatmap
uniformMap(uint32_t width, uint32_t height, double cost)
{
    std::vector<double> costs(static_cast<size_t>(width) * height, cost);
    heatmap::Heatmap map = heatmap::Heatmap::fromCosts(width, height, costs);
    return heatmap::QuantizedHeatmap::quantize(map, 2);
}

TEST(EquationOne, ClampsIntoPaperBounds)
{
    PixelGroup group = fullImageGroup(64, 64);
    // An all-hot map has coolness ~0 -> clamp to 0.3.
    heatmap::QuantizedHeatmap hot = uniformMap(64, 64, 10.0);
    EXPECT_DOUBLE_EQ(equationOneFraction(group, hot, 0.3, 0.6), 0.3);
    // An all-cold (zero-cost) map has coolness ~1 -> clamp to 0.6.
    heatmap::QuantizedHeatmap cold = uniformMap(64, 64, 0.0);
    EXPECT_DOUBLE_EQ(equationOneFraction(group, cold, 0.3, 0.6), 0.6);
}

TEST(EquationOne, MidTemperatureInsideBounds)
{
    PixelGroup group = fullImageGroup(64, 64);
    heatmap::QuantizedHeatmap map = gradientMap(64, 64, 6);
    double p = equationOneFraction(group, map, 0.0, 1.0);
    EXPECT_GT(p, 0.2);
    EXPECT_LT(p, 0.8);
}

TEST(Selector, FixedFractionHitsTarget)
{
    PixelGroup group = fullImageGroup(64, 64);
    heatmap::QuantizedHeatmap map = gradientMap(64, 64);
    for (double fraction : {0.1, 0.3, 0.5, 0.9}) {
        SelectorParams params;
        params.fixedFraction = fraction;
        Rng rng(7);
        Selection sel = selectRepresentativePixels(group, map, params, rng);
        EXPECT_EQ(sel.targetFraction, fraction);
        // Block granularity: within one block (64 px of 4096).
        EXPECT_NEAR(sel.actualFraction, fraction, 64.0 / 4096.0 + 1e-9)
            << "fraction " << fraction;
        // Mask agrees with the count.
        uint64_t set_bits = 0;
        for (bool b : sel.mask)
            set_bits += b;
        EXPECT_EQ(set_bits, sel.selectedCount);
    }
}

TEST(Selector, FullSelectionShortCircuits)
{
    PixelGroup group = fullImageGroup(16, 16);
    heatmap::QuantizedHeatmap map = gradientMap(16, 16);
    SelectorParams params;
    params.fixedFraction = 1.0;
    Rng rng(3);
    Selection sel = selectRepresentativePixels(group, map, params, rng);
    EXPECT_EQ(sel.selectedCount, group.size());
    EXPECT_DOUBLE_EQ(sel.actualFraction, 1.0);
}

TEST(Selector, ZeroFractionSelectsNothing)
{
    PixelGroup group = fullImageGroup(16, 16);
    heatmap::QuantizedHeatmap map = gradientMap(16, 16);
    SelectorParams params;
    params.fixedFraction = 0.0;
    Rng rng(3);
    Selection sel = selectRepresentativePixels(group, map, params, rng);
    EXPECT_EQ(sel.selectedCount, 0u);
}

TEST(Selector, DeterministicPerSeed)
{
    PixelGroup group = fullImageGroup(64, 64);
    heatmap::QuantizedHeatmap map = gradientMap(64, 64);
    SelectorParams params;
    params.fixedFraction = 0.4;
    Rng rng_a(11), rng_b(11), rng_c(12);
    Selection a = selectRepresentativePixels(group, map, params, rng_a);
    Selection b = selectRepresentativePixels(group, map, params, rng_b);
    Selection c = selectRepresentativePixels(group, map, params, rng_c);
    EXPECT_EQ(a.mask, b.mask);
    EXPECT_NE(a.mask, c.mask); // different seed explores other blocks
}

TEST(Selector, SelectionComesInWholeBlocks)
{
    PixelGroup group = fullImageGroup(64, 64);
    heatmap::QuantizedHeatmap map = gradientMap(64, 64);
    SelectorParams params;
    params.fixedFraction = 0.25;
    params.blockWidth = 32;
    params.blockHeight = 2;
    Rng rng(5);
    Selection sel = selectRepresentativePixels(group, map, params, rng);

    // Every 32x2 tile is either fully selected or fully unselected.
    for (uint32_t ty = 0; ty < 32; ++ty) {
        for (uint32_t tx = 0; tx < 2; ++tx) {
            int count = 0;
            for (uint32_t dy = 0; dy < 2; ++dy)
                for (uint32_t dx = 0; dx < 32; ++dx) {
                    uint32_t index =
                        (ty * 2 + dy) * 64 + tx * 32 + dx;
                    count += sel.mask[index];
                }
            EXPECT_TRUE(count == 0 || count == 64)
                << "tile (" << tx << "," << ty << ") partially selected";
        }
    }
}

TEST(Selector, ExpTempPrefersHotPixels)
{
    PixelGroup group = fullImageGroup(64, 64);
    heatmap::QuantizedHeatmap map = gradientMap(64, 64, 6);

    auto hot_share = [&](DistributionMethod method, uint64_t seed) {
        SelectorParams params;
        params.distribution = method;
        params.fixedFraction = 0.2;
        Rng rng(seed);
        Selection sel = selectRepresentativePixels(group, map, params, rng);
        uint64_t hot = 0;
        for (size_t i = 0; i < group.size(); ++i) {
            if (sel.mask[i] && group[i].x >= 48)
                ++hot;
        }
        return static_cast<double>(hot) /
               static_cast<double>(sel.selectedCount);
    };

    // Average over several seeds to smooth block randomness.
    double uniform = 0.0, exptmp = 0.0;
    for (uint64_t seed = 0; seed < 5; ++seed) {
        uniform += hot_share(DistributionMethod::Uniform, seed);
        exptmp += hot_share(DistributionMethod::ExpTemp, seed);
    }
    EXPECT_GT(exptmp, uniform * 1.5)
        << "exptmp must bias selection to the hottest columns";
}

TEST(Selector, UniformMatchesColorDistribution)
{
    PixelGroup group = fullImageGroup(64, 64);
    heatmap::QuantizedHeatmap map = gradientMap(64, 64, 4);
    SelectorParams params;
    params.distribution = DistributionMethod::Uniform;
    params.fixedFraction = 0.5;
    Rng rng(21);
    Selection sel = selectRepresentativePixels(group, map, params, rng);

    // Each cluster's share among the selected pixels matches its share
    // of the image within a loose tolerance.
    std::vector<double> selected_share(map.paletteSize(), 0.0);
    for (size_t i = 0; i < group.size(); ++i) {
        if (sel.mask[i])
            selected_share[map.clusterAt(group[i].x, group[i].y)] += 1.0;
    }
    for (uint32_t c = 0; c < map.paletteSize(); ++c) {
        double image_share = static_cast<double>(map.clusterPopulation(c)) /
                             static_cast<double>(group.size());
        double share = selected_share[c] /
                       static_cast<double>(sel.selectedCount);
        EXPECT_NEAR(share, image_share, 0.15) << "cluster " << c;
    }
}

TEST(Selector, DistributionMethodNames)
{
    EXPECT_STREQ(distributionMethodName(DistributionMethod::Uniform),
                 "uniform");
    EXPECT_STREQ(distributionMethodName(DistributionMethod::LinTemp),
                 "lintmp");
    EXPECT_STREQ(distributionMethodName(DistributionMethod::ExpTemp),
                 "exptmp");
}

TEST(Selector, EquationOneDrivenSelectionWithinBounds)
{
    PixelGroup group = fullImageGroup(64, 64);
    heatmap::QuantizedHeatmap map = gradientMap(64, 64);
    SelectorParams params; // no fixedFraction: equation (1) drives
    Rng rng(31);
    Selection sel = selectRepresentativePixels(group, map, params, rng);
    EXPECT_GE(sel.targetFraction, 0.3);
    EXPECT_LE(sel.targetFraction, 0.6);
    EXPECT_GE(sel.actualFraction, 0.25);
    EXPECT_LE(sel.actualFraction, 0.7);
}

} // namespace
} // namespace zatel::core
