/**
 * @file
 * Unit tests for the procedural mesh generators.
 */

#include <gtest/gtest.h>

#include "rt/mesh.hh"
#include "util/rng.hh"

namespace zatel::rt
{
namespace
{

Aabb
boundsOf(const std::vector<Triangle> &tris)
{
    Aabb box;
    for (const Triangle &tri : tris)
        box.expand(tri.bounds());
    return box;
}

TEST(MeshBuilder, QuadIsTwoTriangles)
{
    MeshBuilder mesh;
    mesh.addQuad({0.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 0.0f},
                 {0.0f, 1.0f, 0.0f}, 5);
    EXPECT_EQ(mesh.triangleCount(), 2u);
    for (const Triangle &tri : mesh.triangles())
        EXPECT_EQ(tri.materialId, 5);
}

TEST(MeshBuilder, BoxHasTwelveTriangles)
{
    MeshBuilder mesh;
    mesh.addBox({0.0f, 0.0f, 0.0f}, {1.0f, 2.0f, 3.0f}, 1);
    EXPECT_EQ(mesh.triangleCount(), 12u);
    Aabb box = boundsOf(mesh.triangles());
    EXPECT_EQ(box.lo, Vec3(0.0f, 0.0f, 0.0f));
    EXPECT_EQ(box.hi, Vec3(1.0f, 2.0f, 3.0f));
}

TEST(MeshBuilder, SphereTriangleCountAndBounds)
{
    MeshBuilder mesh;
    int segments = 12;
    mesh.addSphere({1.0f, 2.0f, 3.0f}, 2.0f, segments, 0);
    // lat_steps = 6; poles lose one triangle per quad.
    int lat = segments / 2;
    EXPECT_EQ(mesh.triangleCount(),
              static_cast<size_t>(segments * (2 * lat - 2)));
    Aabb box = boundsOf(mesh.triangles());
    EXPECT_NEAR(box.lo.x, -1.0f, 1e-3f);
    EXPECT_NEAR(box.hi.x, 3.0f, 1e-3f);
    EXPECT_NEAR(box.lo.y, 0.0f, 1e-3f);
    EXPECT_NEAR(box.hi.y, 4.0f, 1e-3f);
}

TEST(MeshBuilder, SphereVerticesOnSurface)
{
    MeshBuilder mesh;
    Vec3 center{0.0f, 0.0f, 0.0f};
    float radius = 3.0f;
    mesh.addSphere(center, radius, 10, 0);
    for (const Triangle &tri : mesh.triangles()) {
        for (const Vec3 &v : {tri.v0, tri.v1, tri.v2})
            EXPECT_NEAR(length(v - center), radius, 1e-3f);
    }
}

TEST(MeshBuilder, ConeCount)
{
    MeshBuilder mesh;
    mesh.addCone({0.0f, 0.0f, 0.0f}, 1.0f, 2.0f, 8, 0);
    EXPECT_EQ(mesh.triangleCount(), 16u); // side + base per segment
}

TEST(MeshBuilder, GroundPlaneGrid)
{
    MeshBuilder mesh;
    mesh.addGroundPlane({0.0f, 1.0f, 0.0f}, 5.0f, 4, 0);
    EXPECT_EQ(mesh.triangleCount(), 4u * 4u * 2u);
    for (const Triangle &tri : mesh.triangles()) {
        EXPECT_FLOAT_EQ(tri.v0.y, 1.0f);
        EXPECT_FLOAT_EQ(tri.v1.y, 1.0f);
        EXPECT_FLOAT_EQ(tri.v2.y, 1.0f);
    }
}

TEST(MeshBuilder, TriangleSoupCountAndContainment)
{
    zatel::Rng rng(3);
    MeshBuilder mesh;
    Vec3 center{1.0f, 2.0f, 3.0f};
    float radius = 5.0f;
    float tri_size = 0.5f;
    mesh.addTriangleSoup(rng, center, radius, 250, tri_size, 7);
    EXPECT_EQ(mesh.triangleCount(), 250u);
    // All triangles within radius + jitter of the center.
    float max_dist = radius + 2.0f * tri_size;
    for (const Triangle &tri : mesh.triangles())
        EXPECT_LE(length(tri.centroid() - center), max_dist);
}

TEST(MeshBuilder, TerrainCellCountAndExtent)
{
    zatel::Rng rng(4);
    MeshBuilder mesh;
    mesh.addTerrain(rng, {0.0f, 0.0f, 0.0f}, 10.0f, 8, 1.5f, 0);
    EXPECT_EQ(mesh.triangleCount(), 8u * 8u * 2u);
    Aabb box = boundsOf(mesh.triangles());
    EXPECT_NEAR(box.lo.x, -10.0f, 1e-3f);
    EXPECT_NEAR(box.hi.x, 10.0f, 1e-3f);
    EXPECT_GE(box.lo.y, 0.0f);
    EXPECT_LE(box.hi.y, 1.5f);
}

TEST(MeshBuilder, DeterministicForSameSeed)
{
    zatel::Rng rng_a(9), rng_b(9);
    MeshBuilder a, b;
    a.addTriangleSoup(rng_a, {0.0f, 0.0f, 0.0f}, 3.0f, 50, 0.2f, 0);
    b.addTriangleSoup(rng_b, {0.0f, 0.0f, 0.0f}, 3.0f, 50, 0.2f, 0);
    ASSERT_EQ(a.triangleCount(), b.triangleCount());
    for (size_t i = 0; i < a.triangleCount(); ++i)
        EXPECT_EQ(a.triangles()[i].v0, b.triangles()[i].v0);
}

TEST(MeshBuilder, TakeTrianglesMoves)
{
    MeshBuilder mesh;
    mesh.addBox({0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f}, 0);
    std::vector<Triangle> taken = mesh.takeTriangles();
    EXPECT_EQ(taken.size(), 12u);
}

} // namespace
} // namespace zatel::rt
