/**
 * @file
 * Unit tests for obs::TraceRecorder: span nesting/ordering, per-thread
 * buffer merge, Chrome trace_event JSON schema round-trip, disabled
 * no-op behaviour and a TSan-sized concurrent-writer test.
 *
 * Suite names start with "TraceRecorder" so the tsan-determinism ctest
 * preset picks them up (see CMakePresets.json).
 */

#include "obs/trace_recorder.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/validate.hh"

namespace
{

using namespace zatel;

/** Spin for roughly @p micros so spans get a nonzero duration. */
void
spinFor(uint64_t micros)
{
    auto end = std::chrono::steady_clock::now() +
               std::chrono::microseconds(micros);
    while (std::chrono::steady_clock::now() < end) {
        // busy wait
    }
}

TEST(TraceRecorderBasics, DisabledRecorderRecordsNothing)
{
    obs::TraceRecorder recorder;
    EXPECT_FALSE(recorder.enabled());

    recorder.beginSpan("never");
    recorder.endSpan();
    recorder.setThreadName("ghost");

    EXPECT_EQ(recorder.eventCount(), 0u);
    EXPECT_TRUE(recorder.snapshot().empty());
    EXPECT_TRUE(recorder.threadNames().empty());
    EXPECT_EQ(recorder.nowMicros(), 0.0);
}

TEST(TraceRecorderBasics, RecordsSimpleSpan)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    EXPECT_TRUE(recorder.enabled());

    recorder.beginSpan("alpha");
    spinFor(200);
    recorder.endSpan();
    recorder.disable();

    std::vector<obs::TraceEvent> events = recorder.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "alpha");
    EXPECT_EQ(events[0].depth, 0u);
    EXPECT_GE(events[0].tsMicros, 0.0);
    EXPECT_GT(events[0].durMicros, 0.0);
    EXPECT_FALSE(events[0].hasArg);
}

TEST(TraceRecorderBasics, SpanArgumentRoundTrips)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    recorder.beginSpan("group", static_cast<int64_t>(17));
    recorder.endSpan();
    recorder.disable();

    std::vector<obs::TraceEvent> events = recorder.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].hasArg);
    EXPECT_EQ(events[0].arg, 17);
}

TEST(TraceRecorderBasics, DynamicNameOnlyCopiedWhenEnabled)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    recorder.beginSpan(std::string("dyn.") + std::to_string(42));
    recorder.endSpan();
    recorder.disable();

    std::vector<obs::TraceEvent> events = recorder.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "dyn.42");
}

TEST(TraceRecorderNesting, DepthTracksStackAndTimesNest)
{
    obs::TraceRecorder recorder;
    recorder.enable();

    recorder.beginSpan("outer");
    spinFor(100);
    recorder.beginSpan("inner");
    spinFor(100);
    recorder.endSpan(); // inner
    spinFor(100);
    recorder.endSpan(); // outer
    recorder.disable();

    std::vector<obs::TraceEvent> events = recorder.snapshot();
    ASSERT_EQ(events.size(), 2u);
    // snapshot() sorts by start time: outer opened first.
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].depth, 0u);
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[1].depth, 1u);

    // The inner span must be strictly contained in the outer one.
    EXPECT_GE(events[1].tsMicros, events[0].tsMicros);
    EXPECT_LE(events[1].tsMicros + events[1].durMicros,
              events[0].tsMicros + events[0].durMicros);
}

TEST(TraceRecorderNesting, SiblingsAreOrderedByStartTime)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    for (int i = 0; i < 4; ++i) {
        recorder.beginSpan("step", i);
        spinFor(50);
        recorder.endSpan();
    }
    recorder.disable();

    std::vector<obs::TraceEvent> events = recorder.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].arg, static_cast<int64_t>(i));
        if (i > 0) {
            EXPECT_GE(events[i].tsMicros, events[i - 1].tsMicros);
        }
    }
}

TEST(TraceRecorderNesting, SpanBegunBeforeDisableStillCloses)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    recorder.beginSpan("straddler");
    recorder.disable();
    // The RAII dtor path must still be balanced after a disable().
    recorder.endSpan();
    EXPECT_EQ(recorder.eventCount(), 1u);
}

TEST(TraceRecorderNesting, EnableClearsPreviousRecording)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    recorder.beginSpan("old");
    recorder.endSpan();
    recorder.disable();
    ASSERT_EQ(recorder.eventCount(), 1u);

    recorder.enable(); // new generation: previous spans dropped
    recorder.beginSpan("new");
    recorder.endSpan();
    recorder.disable();

    std::vector<obs::TraceEvent> events = recorder.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "new");
}

TEST(TraceRecorderThreads, PerThreadBuffersMergeWithStableTids)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    recorder.setThreadName("driver");

    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&recorder, t] {
            recorder.setThreadName("worker-" + std::to_string(t));
            for (int i = 0; i < kSpansPerThread; ++i) {
                recorder.beginSpan("work", t * kSpansPerThread + i);
                recorder.endSpan();
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    recorder.disable();

    std::vector<obs::TraceEvent> events = recorder.snapshot();
    ASSERT_EQ(events.size(),
              static_cast<size_t>(kThreads * kSpansPerThread));

    // Every span arg appears exactly once (no merge loss/duplication).
    std::set<int64_t> args;
    std::set<uint32_t> tids;
    for (const obs::TraceEvent &event : events) {
        args.insert(event.arg);
        tids.insert(event.tid);
    }
    EXPECT_EQ(args.size(), events.size());
    EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));

    // 4 worker names + the driver thread's name.
    auto names = recorder.threadNames();
    EXPECT_EQ(names.size(), static_cast<size_t>(kThreads) + 1);
    std::set<std::string> name_set;
    for (const auto &entry : names)
        name_set.insert(entry.second);
    EXPECT_EQ(name_set.count("driver"), 1u);
    EXPECT_EQ(name_set.count("worker-0"), 1u);
    EXPECT_EQ(name_set.count("worker-3"), 1u);
}

TEST(TraceRecorderThreads, ConcurrentWritersProduceExactSpanCount)
{
    // TSan-sized stress: many threads hammering begin/end while the
    // main thread snapshots concurrently. Run under the tsan preset.
    obs::TraceRecorder recorder;
    recorder.enable();

    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 500;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&recorder, &go] {
            while (!go.load(std::memory_order_acquire)) {
                // wait for the starting gun
            }
            for (int i = 0; i < kSpansPerThread; ++i) {
                recorder.beginSpan("stress");
                recorder.beginSpan("stress.inner", i);
                recorder.endSpan();
                recorder.endSpan();
            }
        });
    }
    go.store(true, std::memory_order_release);

    // Concurrent reader: snapshot() must be safe mid-recording.
    for (int i = 0; i < 10; ++i) {
        std::vector<obs::TraceEvent> partial = recorder.snapshot();
        EXPECT_LE(partial.size(),
                  static_cast<size_t>(2 * kThreads * kSpansPerThread));
        std::this_thread::yield();
    }

    for (std::thread &thread : threads)
        thread.join();
    recorder.disable();

    EXPECT_EQ(recorder.eventCount(),
              static_cast<size_t>(2 * kThreads * kSpansPerThread));
}

TEST(TraceRecorderExport, ChromeTraceParsesAndValidates)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    recorder.setThreadName("main");
    recorder.beginSpan("outer");
    recorder.beginSpan("inner", 3);
    spinFor(100);
    recorder.endSpan();
    recorder.endSpan();
    recorder.disable();

    std::string json = recorder.exportChromeTrace();
    std::vector<std::string> problems = obs::validateChromeTrace(json);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());

    obs::JsonValue root = obs::parseJson(json);
    const obs::JsonValue &events = root.at("traceEvents");
    ASSERT_TRUE(events.isArray());

    size_t complete = 0;
    size_t metadata = 0;
    bool saw_inner_arg = false;
    for (const obs::JsonValue &event : events.arrayValue) {
        const std::string &ph = event.at("ph").stringValue;
        if (ph == "X") {
            ++complete;
            EXPECT_TRUE(event.at("ts").isNumber());
            EXPECT_GE(event.at("dur").numberValue, 0.0);
            EXPECT_TRUE(event.at("tid").isNumber());
            if (event.at("name").stringValue == "inner") {
                saw_inner_arg =
                    event.has("args") &&
                    event.at("args").has("i") &&
                    event.at("args").at("i").numberValue == 3.0;
            }
        } else if (ph == "M") {
            ++metadata;
        }
    }
    EXPECT_EQ(complete, 2u);
    EXPECT_GE(metadata, 2u); // process_name + thread_name("main")
    EXPECT_TRUE(saw_inner_arg);
}

TEST(TraceRecorderExport, EmptyTraceIsStillValidJson)
{
    obs::TraceRecorder recorder;
    std::string json = recorder.exportChromeTrace();
    EXPECT_TRUE(obs::validateChromeTrace(json).empty());
    // Only the process_name metadata event; no "X" span events.
    obs::JsonValue root = obs::parseJson(json);
    for (const obs::JsonValue &event :
         root.at("traceEvents").arrayValue) {
        EXPECT_EQ(event.at("ph").stringValue, "M");
    }
}

TEST(TraceRecorderExport, SpanNamesAreJsonEscaped)
{
    obs::TraceRecorder recorder;
    recorder.enable();
    recorder.beginSpan(std::string("odd \"name\"\\with\nnewline"));
    recorder.endSpan();
    recorder.disable();

    // Must parse cleanly and round-trip the name.
    obs::JsonValue root = obs::parseJson(recorder.exportChromeTrace());
    ASSERT_FALSE(root.at("traceEvents").arrayValue.empty());
    bool found = false;
    for (const obs::JsonValue &event :
         root.at("traceEvents").arrayValue) {
        if (event.at("ph").stringValue == "X" &&
            event.at("name").stringValue ==
                "odd \"name\"\\with\nnewline") {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(TraceRecorderScope, TraceScopeIsDisarmedWhenGlobalDisabled)
{
    // The global recorder is disabled in unit tests; the RAII scope
    // must be a no-op (and must not abort on destruction).
    ASSERT_FALSE(obs::tracingEnabled());
    size_t before = obs::TraceRecorder::global().eventCount();
    {
        ZATEL_TRACE_SCOPE("test.noop");
        ZATEL_TRACE_SCOPE("test.noop.arg", 7);
    }
    EXPECT_EQ(obs::TraceRecorder::global().eventCount(), before);
}

} // namespace
