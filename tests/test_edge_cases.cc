/**
 * @file
 * Edge cases and error-path tests across modules (fatal/panic paths,
 * boundary inputs).
 */

#include <gtest/gtest.h>

#include "gpusim/gpu.hh"
#include "rt/bvh.hh"
#include "rt/mesh.hh"
#include "rt/scene_library.hh"
#include "rt/tracer.hh"
#include "zatel/downscale.hh"
#include "zatel/predictor.hh"

namespace zatel
{
namespace
{

struct TinyFixture : public testing::Test
{
    void
    SetUp() override
    {
        scene.setCamera(rt::Camera({0.0f, 0.0f, 4.0f}, {0.0f, 0.0f, 0.0f},
                                   {0.0f, 1.0f, 0.0f}, 45.0f));
        scene.setLight({{2.0f, 3.0f, 2.0f}, {1.0f, 1.0f, 1.0f}});
        uint16_t mat =
            scene.addMaterial(rt::Material::diffuse({0.5f, 0.5f, 0.5f}));
        rt::MeshBuilder mesh;
        mesh.addSphere({0.0f, 0.0f, 0.0f}, 1.0f, 8, mat);
        scene.addTriangles(mesh.takeTriangles());
        bvh.build(scene.triangles());
        tracer = std::make_unique<rt::Tracer>(scene, bvh);
    }

    rt::Scene scene{"tiny"};
    rt::Bvh bvh;
    std::unique_ptr<rt::Tracer> tracer;
};

TEST_F(TinyFixture, UnknownSceneNameIsFatal)
{
    EXPECT_EXIT(rt::sceneIdFromName("NOSUCH"), testing::ExitedWithCode(1),
                "unknown scene");
}

TEST_F(TinyFixture, WorkloadRejectsOutOfBoundsPixel)
{
    std::vector<gpusim::PixelCoord> pixels{{100, 100}};
    EXPECT_DEATH(gpusim::SimWorkload::build(*tracer, 8, 8, pixels),
                 "out of bounds");
}

TEST_F(TinyFixture, WorkloadRejectsMisalignedMask)
{
    std::vector<gpusim::PixelCoord> pixels{{0, 0}, {1, 0}};
    std::vector<bool> mask{true}; // wrong length
    EXPECT_DEATH(gpusim::SimWorkload::build(*tracer, 8, 8, pixels, &mask),
                 "align");
}

TEST_F(TinyFixture, GpuRunIsSingleUse)
{
    gpusim::SimWorkload workload =
        gpusim::SimWorkload::buildFullFrame(*tracer, 4, 4);
    gpusim::Gpu gpu(gpusim::GpuConfig::mobileSoc(), workload);
    gpu.run();
    EXPECT_DEATH(gpu.run(), "single-use");
}

TEST_F(TinyFixture, StatsReportBeforeRunIsFatal)
{
    gpusim::SimWorkload workload =
        gpusim::SimWorkload::buildFullFrame(*tracer, 4, 4);
    gpusim::Gpu gpu(gpusim::GpuConfig::mobileSoc(), workload);
    EXPECT_DEATH(gpu.statsReport(), "completed run");
}

TEST_F(TinyFixture, TotalWarpsCountsCeiling)
{
    // 4x4 = 16 pixels -> one partial warp.
    gpusim::SimWorkload w1 =
        gpusim::SimWorkload::buildFullFrame(*tracer, 4, 4);
    gpusim::Gpu g1(gpusim::GpuConfig::mobileSoc(), w1);
    EXPECT_EQ(g1.totalWarps(), 1u);
    // 8x8 = 64 pixels -> two warps.
    gpusim::SimWorkload w2 =
        gpusim::SimWorkload::buildFullFrame(*tracer, 8, 8);
    gpusim::Gpu g2(gpusim::GpuConfig::mobileSoc(), w2);
    EXPECT_EQ(g2.totalWarps(), 2u);
}

TEST_F(TinyFixture, ForcedKMustDivideWhenDownscaling)
{
    core::ZatelParams params;
    params.width = params.height = 16;
    params.forcedK = 3; // does not divide 8 SMs / 4 partitions
    core::ZatelPredictor predictor(scene, bvh,
                                   gpusim::GpuConfig::mobileSoc(), params);
    EXPECT_EXIT(predictor.predict(), testing::ExitedWithCode(1),
                "does not divide");
}

TEST_F(TinyFixture, OnePixelImagePredicts)
{
    core::ZatelParams params;
    params.width = params.height = 8;
    params.forcedK = 1;
    params.selector.fixedFraction = 1.0;
    core::ZatelPredictor predictor(scene, bvh,
                                   gpusim::GpuConfig::mobileSoc(), params);
    core::ZatelResult result = predictor.predict();
    EXPECT_EQ(result.k, 1u);
    EXPECT_DOUBLE_EQ(result.fractionTraced, 1.0);
    // With K=1 and everything traced, prediction == oracle exactly.
    core::OracleResult oracle = predictor.runOracle();
    EXPECT_DOUBLE_EQ(result.metric(gpusim::Metric::SimCycles),
                     oracle.stats.simCycles());
}

TEST_F(TinyFixture, DownscaleKOneIsExactWhenTracingEverything)
{
    // The strongest consistency property of the whole pipeline: no
    // sampling and no downscaling means the prediction is the oracle.
    core::ZatelParams params;
    params.width = params.height = 16;
    params.downscaleGpu = false;
    params.selector.fixedFraction = 1.0;
    core::ZatelPredictor predictor(scene, bvh,
                                   gpusim::GpuConfig::mobileSoc(), params);
    core::ZatelResult result = predictor.predict();
    core::OracleResult oracle = predictor.runOracle();
    for (gpusim::Metric metric : gpusim::allMetrics()) {
        EXPECT_DOUBLE_EQ(result.metric(metric),
                         oracle.stats.metricValue(metric))
            << gpusim::metricName(metric);
    }
}

TEST(DownscaleEdge, FactorOfPrimeConfigIsOne)
{
    gpusim::GpuConfig config = gpusim::GpuConfig::rtx2060();
    config.numSms = 7;
    config.numMemPartitions = 3;
    EXPECT_EQ(core::downscaleFactor(config), 1u);
}

} // namespace
} // namespace zatel
