/**
 * @file
 * Units for the incremental-submission JobPipeline extracted from the
 * one-shot CampaignScheduler (docs/SERVING.md):
 *
 *  - submissions arriving one at a time — concurrently, from many
 *    threads — all reach their terminal done callback (the property
 *    the serve daemon depends on; a batch campaign merely submits
 *    everything up front)
 *  - per-submission deadlines: one late job times out without
 *    touching its siblings
 *  - drain() is terminal: late submissions are refused by throwing,
 *    never silently dropped
 *  - identical recipes produce bit-identical predictions through the
 *    pipeline (the serve coalescing/caching layers assume it)
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/artifact_cache.hh"
#include "service/campaign.hh"
#include "service/job_pipeline.hh"
#include "service/result_store.hh"

namespace zatel::service
{
namespace
{

constexpr uint64_t kCacheBudget = 256ull * 1024 * 1024;

/** A small, fast job: 32x32 PARK at reduced procedural density. */
CampaignJob
makeJob(double fraction)
{
    CampaignJob job;
    job.scene = "PARK";
    job.sceneDetail = 0.3f;
    job.params.width = 32;
    job.params.height = 32;
    job.params.selector.fixedFraction = fraction;
    job.id = autoJobId(job);
    return job;
}

uint64_t
bitsOf(double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

TEST(JobPipeline, ConcurrentIncrementalSubmissionsAllComplete)
{
    ArtifactCache cache(kCacheBudget, "");
    PipelineParams params;
    params.workers = 2;
    JobPipeline pipeline(cache, params);

    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 2;
    std::atomic<size_t> okRows{0};
    std::atomic<size_t> doneRows{0};

    // The serve daemon's submission pattern: many HTTP workers feeding
    // jobs into one pipeline at unpredictable times.
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&pipeline, &okRows, &doneRows, t]() {
            for (size_t i = 0; i < kPerThread; ++i) {
                JobPipeline::Submission submission;
                submission.job = makeJob(
                    0.1 + 0.05 * static_cast<double>(t * kPerThread + i));
                submission.done = [&okRows,
                                   &doneRows](const ResultRow &row) {
                    if (row.status == JobStatus::Ok)
                        okRows.fetch_add(1);
                    doneRows.fetch_add(1);
                };
                pipeline.submit(std::move(submission));
            }
        });
    }
    for (std::thread &thread : submitters)
        thread.join();
    pipeline.waitIdle();

    EXPECT_EQ(doneRows.load(), kThreads * kPerThread);
    EXPECT_EQ(okRows.load(), kThreads * kPerThread);
    EXPECT_EQ(pipeline.pendingJobs(), 0u);
}

TEST(JobPipeline, PerSubmissionTimeoutOnlyAffectsItsJob)
{
    ArtifactCache cache(kCacheBudget, "");
    PipelineParams params;
    params.workers = 2;
    JobPipeline pipeline(cache, params);

    std::mutex mutex;
    std::vector<std::pair<std::string, JobStatus>> rows;
    auto record = [&mutex, &rows](const ResultRow &row) {
        std::lock_guard<std::mutex> guard(mutex);
        rows.emplace_back(row.jobId, row.status);
    };

    JobPipeline::Submission doomed;
    doomed.job = makeJob(0.2);
    doomed.job.id = "doomed";
    doomed.timeoutSeconds = 1e-6; // expires before the first stage
    doomed.done = record;
    pipeline.submit(std::move(doomed));

    JobPipeline::Submission healthy;
    healthy.job = makeJob(0.25);
    healthy.job.id = "healthy";
    healthy.done = record; // no deadline
    pipeline.submit(std::move(healthy));

    pipeline.waitIdle();

    ASSERT_EQ(rows.size(), 2u);
    for (const auto &[id, status] : rows) {
        if (id == "doomed")
            EXPECT_EQ(status, JobStatus::TimedOut) << id;
        else
            EXPECT_EQ(status, JobStatus::Ok) << id;
    }
}

TEST(JobPipeline, SubmitAfterDrainThrows)
{
    ArtifactCache cache(kCacheBudget, "");
    PipelineParams params;
    params.workers = 1;
    JobPipeline pipeline(cache, params);
    pipeline.drain();

    JobPipeline::Submission submission;
    submission.job = makeJob(0.2);
    submission.done = [](const ResultRow &) {};
    EXPECT_THROW(pipeline.submit(std::move(submission)),
                 std::runtime_error);
}

TEST(JobPipeline, IdenticalRecipesYieldBitIdenticalPredictions)
{
    ArtifactCache cache(kCacheBudget, "");
    PipelineParams params;
    params.workers = 2;
    JobPipeline pipeline(cache, params);

    std::mutex mutex;
    std::vector<ResultRow> rows;
    for (int i = 0; i < 2; ++i) {
        JobPipeline::Submission submission;
        submission.job = makeJob(0.2);
        submission.done = [&mutex, &rows](const ResultRow &row) {
            std::lock_guard<std::mutex> guard(mutex);
            rows.push_back(row);
        };
        pipeline.submit(std::move(submission));
    }
    pipeline.waitIdle();

    ASSERT_EQ(rows.size(), 2u);
    ASSERT_EQ(rows[0].status, JobStatus::Ok);
    ASSERT_EQ(rows[1].status, JobStatus::Ok);
    ASSERT_EQ(rows[0].predicted.size(), rows[1].predicted.size());
    for (const auto &[metric, value] : rows[0].predicted) {
        auto it = rows[1].predicted.find(metric);
        ASSERT_NE(it, rows[1].predicted.end());
        EXPECT_EQ(bitsOf(value), bitsOf(it->second));
    }
}

} // namespace
} // namespace zatel::service
