/**
 * @file
 * Tests for the pixel filter file round trip (Section III-F).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "heatmap/heatmap.hh"
#include "zatel/pixel_filter.hh"

namespace zatel::core
{
namespace
{

TEST(PixelFilter, WriteReadRoundTrip)
{
    PixelGroup group;
    for (uint32_t y = 0; y < 8; ++y)
        for (uint32_t x = 0; x < 8; ++x)
            group.push_back({x, y});

    Selection selection;
    selection.mask.assign(group.size(), false);
    for (size_t i = 0; i < group.size(); i += 3) {
        selection.mask[i] = true;
        ++selection.selectedCount;
    }

    std::string path = testing::TempDir() + "/zatel_filter.txt";
    ASSERT_TRUE(writeFilterFile(path, group, selection));

    Selection loaded = readFilterFile(path, group);
    EXPECT_EQ(loaded.mask, selection.mask);
    EXPECT_EQ(loaded.selectedCount, selection.selectedCount);
    std::remove(path.c_str());
}

TEST(PixelFilter, EmptySelection)
{
    PixelGroup group{{0, 0}, {1, 0}};
    Selection selection;
    selection.mask.assign(group.size(), false);

    std::string path = testing::TempDir() + "/zatel_filter_empty.txt";
    ASSERT_TRUE(writeFilterFile(path, group, selection));
    Selection loaded = readFilterFile(path, group);
    EXPECT_EQ(loaded.selectedCount, 0u);
    std::remove(path.c_str());
}

TEST(PixelFilter, ForeignPixelsIgnored)
{
    PixelGroup group{{0, 0}, {1, 0}};
    std::string path = testing::TempDir() + "/zatel_filter_foreign.txt";
    {
        std::ofstream out(path);
        out << "1 0\n999 999\n"; // second pixel not in the group
    }
    Selection loaded = readFilterFile(path, group);
    EXPECT_EQ(loaded.selectedCount, 1u);
    EXPECT_FALSE(loaded.mask[0]);
    EXPECT_TRUE(loaded.mask[1]);
    std::remove(path.c_str());
}

TEST(PixelFilter, MissingFileIsEmptySelection)
{
    PixelGroup group{{0, 0}};
    Selection loaded =
        readFilterFile("/nonexistent/zatel_filter.txt", group);
    EXPECT_EQ(loaded.selectedCount, 0u);
}

} // namespace
} // namespace zatel::core
