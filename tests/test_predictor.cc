/**
 * @file
 * Integration tests for the end-to-end ZatelPredictor pipeline.
 */

#include <gtest/gtest.h>

#include "rt/scene_library.hh"
#include "zatel/evaluation.hh"
#include "zatel/predictor.hh"

namespace zatel::core
{
namespace
{

using gpusim::GpuConfig;
using gpusim::Metric;

struct PredictorFixture : public testing::Test
{
    void
    SetUp() override
    {
        scene = rt::buildScene(rt::SceneId::Wknd, rt::SceneDetail{0.5f});
        bvh.build(scene.triangles());
    }

    ZatelParams
    smallParams()
    {
        ZatelParams params;
        params.width = 64;
        params.height = 64;
        return params;
    }

    rt::Scene scene;
    rt::Bvh bvh;
};

TEST_F(PredictorFixture, EffectiveKMatchesGcd)
{
    ZatelParams params = smallParams();
    ZatelPredictor soc(scene, bvh, GpuConfig::mobileSoc(), params);
    EXPECT_EQ(soc.effectiveK(), 4u);
    ZatelPredictor rtx(scene, bvh, GpuConfig::rtx2060(), params);
    EXPECT_EQ(rtx.effectiveK(), 6u);

    params.downscaleGpu = false;
    ZatelPredictor flat(scene, bvh, GpuConfig::mobileSoc(), params);
    EXPECT_EQ(flat.effectiveK(), 1u);

    params.forcedK = 2;
    ZatelPredictor forced(scene, bvh, GpuConfig::mobileSoc(), params);
    EXPECT_EQ(forced.effectiveK(), 2u);
}

TEST_F(PredictorFixture, PredictProducesAllMetrics)
{
    ZatelParams params = smallParams();
    ZatelPredictor predictor(scene, bvh, GpuConfig::mobileSoc(), params);
    ZatelResult result = predictor.predict();

    EXPECT_EQ(result.k, 4u);
    EXPECT_EQ(result.groups.size(), 4u);
    for (Metric metric : gpusim::allMetrics()) {
        ASSERT_TRUE(result.predicted.count(metric));
        EXPECT_GE(result.predicted.at(metric), 0.0)
            << gpusim::metricName(metric);
    }
    EXPECT_GT(result.metric(Metric::SimCycles), 0.0);
    EXPECT_GT(result.metric(Metric::Ipc), 0.0);
    EXPECT_GE(result.fractionTraced, 0.25);
    EXPECT_LE(result.fractionTraced, 0.7);
    EXPECT_GT(result.simWallSeconds, 0.0);
}

TEST_F(PredictorFixture, GroupsCoverImagePlane)
{
    ZatelParams params = smallParams();
    ZatelPredictor predictor(scene, bvh, GpuConfig::mobileSoc(), params);
    ZatelResult result = predictor.predict();

    uint64_t total_pixels = 0;
    for (const GroupResult &group : result.groups) {
        total_pixels += group.pixels;
        EXPECT_GT(group.selectedPixels, 0u);
        EXPECT_LE(group.selectedPixels, group.pixels);
        EXPECT_EQ(group.extrapolated.size(), gpusim::allMetrics().size());
    }
    EXPECT_EQ(total_pixels, 64ull * 64ull);
}

TEST_F(PredictorFixture, OracleMatchesDirectSimulation)
{
    ZatelParams params = smallParams();
    ZatelPredictor predictor(scene, bvh, GpuConfig::mobileSoc(), params);
    OracleResult oracle = predictor.runOracle();
    EXPECT_GT(oracle.stats.cycles, 0u);
    EXPECT_EQ(oracle.stats.pixelsTraced, 64ull * 64ull);
    EXPECT_GT(oracle.wallSeconds, 0.0);

    auto metrics = oracle.metrics();
    EXPECT_EQ(metrics.size(), gpusim::allMetrics().size());
    EXPECT_DOUBLE_EQ(metrics.at(Metric::SimCycles),
                     static_cast<double>(oracle.stats.cycles));
}

TEST_F(PredictorFixture, PredictionInSaneRangeOfOracle)
{
    ZatelParams params = smallParams();
    ZatelPredictor predictor(scene, bvh, GpuConfig::mobileSoc(), params);
    OracleResult oracle = predictor.runOracle();
    ZatelResult result = predictor.predict();

    // Not an accuracy test - a sanity corridor: predictions within 3x.
    double predicted = result.metric(Metric::SimCycles);
    double actual = oracle.stats.simCycles();
    EXPECT_GT(predicted, actual / 3.0);
    EXPECT_LT(predicted, actual * 3.0);
}

TEST_F(PredictorFixture, FixedFractionMode)
{
    ZatelParams params = smallParams();
    params.downscaleGpu = false;
    params.selector.fixedFraction = 0.2;
    ZatelPredictor predictor(scene, bvh, GpuConfig::mobileSoc(), params);
    ZatelResult result = predictor.predict();
    EXPECT_EQ(result.k, 1u);
    EXPECT_NEAR(result.fractionTraced, 0.2, 0.05);
}

TEST_F(PredictorFixture, RegressionModeRuns)
{
    ZatelParams params = smallParams();
    params.downscaleGpu = false;
    params.extrapolation = ExtrapolationMethod::ExponentialRegression;
    ZatelPredictor predictor(scene, bvh, GpuConfig::mobileSoc(), params);
    ZatelResult result = predictor.predict();
    for (Metric metric : gpusim::allMetrics())
        ASSERT_TRUE(result.predicted.count(metric));
    // The exposed group run is the 40% one.
    EXPECT_NEAR(result.groups[0].fractionTraced, 0.4, 0.05);
}

TEST_F(PredictorFixture, CoarsePartitioningWorks)
{
    ZatelParams params = smallParams();
    params.partition.method = DivisionMethod::CoarseGrained;
    ZatelPredictor predictor(scene, bvh, GpuConfig::mobileSoc(), params);
    ZatelResult result = predictor.predict();
    EXPECT_EQ(result.groups.size(), 4u);
    EXPECT_GT(result.metric(Metric::SimCycles), 0.0);
}

TEST_F(PredictorFixture, DeterministicForSeed)
{
    ZatelParams params = smallParams();
    params.numThreads = 1; // avoid wall-clock-dependent scheduling
    ZatelPredictor a(scene, bvh, GpuConfig::mobileSoc(), params);
    ZatelPredictor b(scene, bvh, GpuConfig::mobileSoc(), params);
    ZatelResult ra = a.predict();
    ZatelResult rb = b.predict();
    for (Metric metric : gpusim::allMetrics()) {
        EXPECT_DOUBLE_EQ(ra.predicted.at(metric), rb.predicted.at(metric))
            << gpusim::metricName(metric);
    }
}

TEST_F(PredictorFixture, QuantizedHeatmapAvailableAfterPredict)
{
    ZatelParams params = smallParams();
    ZatelPredictor predictor(scene, bvh, GpuConfig::mobileSoc(), params);
    predictor.predict();
    EXPECT_EQ(predictor.quantizedHeatmap().width(), 64u);
    EXPECT_GT(predictor.quantizedHeatmap().paletteSize(), 1u);
}

} // namespace
} // namespace zatel::core
