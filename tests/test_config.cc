/**
 * @file
 * Tests for the Table II GPU configurations.
 */

#include <gtest/gtest.h>

#include "gpusim/address_map.hh"
#include "gpusim/config.hh"

namespace zatel::gpusim
{
namespace
{

TEST(Config, MobileSocMatchesTableII)
{
    GpuConfig config = GpuConfig::mobileSoc();
    EXPECT_EQ(config.numSms, 8u);
    EXPECT_EQ(config.numMemPartitions, 4u);
    EXPECT_EQ(config.registersPerSm, 32768u);
    EXPECT_EQ(config.warpSize, 32u);
    EXPECT_EQ(config.maxWarpsPerSm, 32u);
    EXPECT_EQ(config.rtUnitsPerSm, 1u);
    EXPECT_EQ(config.rtMaxWarps, 4u);
    EXPECT_EQ(config.rtMshrSize, 64u);
    EXPECT_EQ(config.l1dSizeBytes, 64u * 1024u);
    EXPECT_EQ(config.l1dAssoc, 0u); // fully associative
    EXPECT_EQ(config.l1dLatencyCycles, 20u);
    EXPECT_EQ(config.l2Assoc, 16u);
    EXPECT_DOUBLE_EQ(config.coreClockMhz, 1365.0);
    EXPECT_DOUBLE_EQ(config.memClockMhz, 3500.0);
    config.validate();
}

TEST(Config, Rtx2060MatchesTableII)
{
    GpuConfig config = GpuConfig::rtx2060();
    EXPECT_EQ(config.numSms, 30u);
    EXPECT_EQ(config.numMemPartitions, 12u);
    EXPECT_EQ(config.registersPerSm, 65536u);
    EXPECT_EQ(config.l2TotalBytes, 3ull * 1024 * 1024);
    config.validate();
}

TEST(Config, L2SliceDividesTotal)
{
    GpuConfig config = GpuConfig::rtx2060();
    EXPECT_EQ(config.l2SliceBytes() * config.numMemPartitions,
              config.l2TotalBytes);
}

TEST(Config, MaxResidentWarpsRespectsRegisters)
{
    GpuConfig config = GpuConfig::rtx2060();
    EXPECT_EQ(config.maxResidentWarps(), 32u);

    // Fat threads shrink occupancy below the warp-slot limit.
    config.registersPerThread = 256;
    EXPECT_EQ(config.maxResidentWarps(), 65536u / (256u * 32u));
}

TEST(Config, ValidateRejectsBadConfigs)
{
    GpuConfig config = GpuConfig::mobileSoc();
    config.numSms = 0;
    EXPECT_EXIT(config.validate(), testing::ExitedWithCode(1), "numSms");

    config = GpuConfig::mobileSoc();
    config.l1dLineBytes = 100; // not a power of two
    EXPECT_EXIT(config.validate(), testing::ExitedWithCode(1),
                "power of two");

    config = GpuConfig::mobileSoc();
    config.numMemPartitions = 0;
    EXPECT_EXIT(config.validate(), testing::ExitedWithCode(1),
                "numMemPartitions");
}

TEST(Config, DramBandwidthScalesWithClock)
{
    GpuConfig config = GpuConfig::rtx2060();
    double baseline = config.dramBytesPerCoreCycle();
    config.memClockMhz *= 2.0;
    EXPECT_NEAR(config.dramBytesPerCoreCycle(), 2.0 * baseline, 1e-9);
}

TEST(AddressMap, RegionsDisjoint)
{
    // One million entities in each region must not overlap another region.
    EXPECT_LT(AddressMap::bvhNodeAddress(1'000'000),
              AddressMap::kTriangleBase);
    EXPECT_LT(AddressMap::triangleAddress(1'000'000),
              AddressMap::kMaterialBase);
    EXPECT_LT(AddressMap::materialAddress(65535),
              AddressMap::kFramebufferBase);
}

TEST(AddressMap, LineAlignment)
{
    EXPECT_EQ(AddressMap::lineOf(0x1234, 128), 0x1200u);
    EXPECT_EQ(AddressMap::lineOf(0x1200, 128), 0x1200u);
    EXPECT_EQ(AddressMap::lineOf(0x127F, 128), 0x1200u);
}

TEST(AddressMap, PartitionInterleavesLines)
{
    // Consecutive lines rotate across partitions.
    uint32_t parts = 12;
    for (uint64_t line = 0; line < 100; ++line) {
        uint32_t p = AddressMap::partitionOf(line * 128, 128, parts);
        EXPECT_EQ(p, line % parts);
    }
}

TEST(AddressMap, TwoNodesShareOneLine)
{
    // 64B nodes, 128B lines: node pairs coalesce.
    EXPECT_EQ(AddressMap::lineOf(AddressMap::bvhNodeAddress(0), 128),
              AddressMap::lineOf(AddressMap::bvhNodeAddress(1), 128));
    EXPECT_NE(AddressMap::lineOf(AddressMap::bvhNodeAddress(1), 128),
              AddressMap::lineOf(AddressMap::bvhNodeAddress(2), 128));
}

} // namespace
} // namespace zatel::gpusim
