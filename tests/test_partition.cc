/**
 * @file
 * Tests for image-plane division (paper Section III-D): exactly-once
 * coverage, balance, and the documented coarse/fine layouts.
 */

#include <gtest/gtest.h>

#include <set>

#include "zatel/partition.hh"

namespace zatel::core
{
namespace
{

/** Property bundle checked for every division result. */
void
checkCoverage(const std::vector<PixelGroup> &groups, uint32_t width,
              uint32_t height, uint32_t k)
{
    ASSERT_EQ(groups.size(), k);
    std::set<uint64_t> seen;
    size_t total = 0;
    for (const PixelGroup &group : groups) {
        total += group.size();
        for (const gpusim::PixelCoord &pixel : group) {
            ASSERT_LT(pixel.x, width);
            ASSERT_LT(pixel.y, height);
            uint64_t key = (static_cast<uint64_t>(pixel.y) << 32) | pixel.x;
            EXPECT_TRUE(seen.insert(key).second)
                << "pixel (" << pixel.x << "," << pixel.y
                << ") in two groups";
        }
    }
    EXPECT_EQ(total, static_cast<size_t>(width) * height);
}

struct DivisionCase
{
    uint32_t width;
    uint32_t height;
    uint32_t k;
    DivisionMethod method;
};

class DivisionCoverage : public testing::TestWithParam<DivisionCase>
{
};

TEST_P(DivisionCoverage, ExactlyOnceAndBalanced)
{
    const DivisionCase &c = GetParam();
    PartitionParams params;
    params.method = c.method;
    params.chunkWidth = 32;
    params.chunkHeight = 2;
    std::vector<PixelGroup> groups =
        divideImagePlane(c.width, c.height, c.k, params);
    checkCoverage(groups, c.width, c.height, c.k);

    // Balance: group sizes within one chunk / one grid row of each other.
    size_t min_size = groups[0].size(), max_size = groups[0].size();
    for (const PixelGroup &group : groups) {
        min_size = std::min(min_size, group.size());
        max_size = std::max(max_size, group.size());
    }
    size_t tolerance =
        c.method == DivisionMethod::FineGrained
            ? params.chunkWidth * params.chunkHeight
            : (static_cast<size_t>(c.width) * c.height) / c.k / 2 + c.width;
    EXPECT_LE(max_size - min_size, tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DivisionCoverage,
    testing::Values(
        DivisionCase{64, 64, 1, DivisionMethod::FineGrained},
        DivisionCase{64, 64, 4, DivisionMethod::FineGrained},
        DivisionCase{64, 64, 6, DivisionMethod::FineGrained},
        DivisionCase{128, 128, 6, DivisionMethod::FineGrained},
        DivisionCase{100, 60, 5, DivisionMethod::FineGrained},
        DivisionCase{33, 17, 3, DivisionMethod::FineGrained},
        DivisionCase{64, 64, 1, DivisionMethod::CoarseGrained},
        DivisionCase{64, 64, 4, DivisionMethod::CoarseGrained},
        DivisionCase{64, 64, 6, DivisionMethod::CoarseGrained},
        DivisionCase{128, 128, 6, DivisionMethod::CoarseGrained},
        DivisionCase{100, 60, 5, DivisionMethod::CoarseGrained},
        DivisionCase{33, 17, 3, DivisionMethod::CoarseGrained}));

TEST(CoarseGrid, ShapeMatchesPaperFigure5)
{
    uint32_t rows = 0, cols = 0;
    // Fig. 5: K=6 -> 3 rows x 2 columns.
    coarseGridShape(6, rows, cols);
    EXPECT_EQ(rows, 3u);
    EXPECT_EQ(cols, 2u);

    coarseGridShape(4, rows, cols);
    EXPECT_EQ(rows, 2u);
    EXPECT_EQ(cols, 2u);

    coarseGridShape(1, rows, cols);
    EXPECT_EQ(rows, 1u);
    EXPECT_EQ(cols, 1u);

    // Primes degrade to K rows x 1 column.
    coarseGridShape(5, rows, cols);
    EXPECT_EQ(rows, 5u);
    EXPECT_EQ(cols, 1u);
}

TEST(CoarseDivision, GroupsAreRectangles)
{
    PartitionParams params;
    params.method = DivisionMethod::CoarseGrained;
    std::vector<PixelGroup> groups = divideImagePlane(64, 64, 4, params);
    for (const PixelGroup &group : groups) {
        uint32_t min_x = 64, max_x = 0, min_y = 64, max_y = 0;
        for (const gpusim::PixelCoord &p : group) {
            min_x = std::min(min_x, p.x);
            max_x = std::max(max_x, p.x);
            min_y = std::min(min_y, p.y);
            max_y = std::max(max_y, p.y);
        }
        EXPECT_EQ(group.size(), static_cast<size_t>(max_x - min_x + 1) *
                                    (max_y - min_y + 1));
    }
}

TEST(FineDivision, RoundRobinChunkAssignment)
{
    // 4 chunks per row (128/32), chunk height 2, K=4. chunks_x % k == 0
    // triggers the diagonal per-row offset, so chunk (cx, cy) belongs to
    // group (cy * 4 + cx + cy) % 4 (the Fig. 6 staircase layout).
    PartitionParams params;
    params.method = DivisionMethod::FineGrained;
    params.chunkWidth = 32;
    params.chunkHeight = 2;
    std::vector<PixelGroup> groups = divideImagePlane(128, 8, 4, params);

    for (uint32_t g = 0; g < 4; ++g) {
        for (const gpusim::PixelCoord &p : groups[g]) {
            uint32_t cx = p.x / 32;
            uint32_t cy = p.y / 2;
            EXPECT_EQ((cy * 4 + cx + cy) % 4, g);
        }
    }
}

TEST(FineDivision, NonMultipleWidthKeepsPlainRoundRobin)
{
    // 5 chunks per row (160/32) with K=4: the paper's own Fig. 6 case -
    // the linear chunk index already produces the staircase.
    PartitionParams params;
    params.method = DivisionMethod::FineGrained;
    params.chunkWidth = 32;
    params.chunkHeight = 2;
    std::vector<PixelGroup> groups = divideImagePlane(160, 8, 4, params);
    for (uint32_t g = 0; g < 4; ++g) {
        for (const gpusim::PixelCoord &p : groups[g]) {
            uint32_t cx = p.x / 32;
            uint32_t cy = p.y / 2;
            EXPECT_EQ((cy * 5 + cx) % 4, g);
        }
    }
}

TEST(FineDivision, GroupSamplesWholeImage)
{
    // Every fine-grained group must touch every quadrant of the image
    // (that is the point of interleaving).
    PartitionParams params;
    params.method = DivisionMethod::FineGrained;
    std::vector<PixelGroup> groups = divideImagePlane(128, 128, 4, params);
    for (const PixelGroup &group : groups) {
        bool q[4] = {false, false, false, false};
        for (const gpusim::PixelCoord &p : group)
            q[(p.y >= 64) * 2 + (p.x >= 64)] = true;
        EXPECT_TRUE(q[0] && q[1] && q[2] && q[3]);
    }
}

TEST(FineDivision, CustomChunkSizes)
{
    PartitionParams params;
    params.method = DivisionMethod::FineGrained;
    params.chunkWidth = 8;
    params.chunkHeight = 8;
    std::vector<PixelGroup> groups = divideImagePlane(40, 24, 3, params);
    checkCoverage(groups, 40, 24, 3);
}

TEST(Division, KEqualsOneKeepsRowMajorOrder)
{
    PartitionParams params;
    params.method = DivisionMethod::CoarseGrained;
    std::vector<PixelGroup> groups = divideImagePlane(8, 4, 1, params);
    ASSERT_EQ(groups.size(), 1u);
    ASSERT_EQ(groups[0].size(), 32u);
    for (uint32_t i = 0; i < 32; ++i) {
        EXPECT_EQ(groups[0][i].x, i % 8);
        EXPECT_EQ(groups[0][i].y, i / 8);
    }
}

} // namespace
} // namespace zatel::core
