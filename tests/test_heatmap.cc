/**
 * @file
 * Tests for the execution-time heatmap and its quantized form.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "heatmap/heat_gradient.hh"
#include "heatmap/heatmap.hh"
#include "rt/bvh.hh"
#include "rt/mesh.hh"
#include "rt/tracer.hh"

namespace zatel::heatmap
{
namespace
{

TEST(Heatmap, NormalizesByMax)
{
    Heatmap map = Heatmap::fromCosts(2, 2, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(map.temperatureAt(0, 0), 0.25);
    EXPECT_DOUBLE_EQ(map.temperatureAt(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(map.averageTemperature(), (0.25 + 0.5 + 0.75 + 1.0) / 4);
}

TEST(Heatmap, AllZeroStaysZero)
{
    Heatmap map = Heatmap::fromCosts(2, 2, {0.0, 0.0, 0.0, 0.0});
    for (uint32_t y = 0; y < 2; ++y)
        for (uint32_t x = 0; x < 2; ++x)
            EXPECT_DOUBLE_EQ(map.temperatureAt(x, y), 0.0);
}

TEST(Heatmap, ColorFollowsGradient)
{
    Heatmap map = Heatmap::fromCosts(2, 1, {0.0, 10.0});
    EXPECT_EQ(map.colorAt(0, 0), temperatureToColor(0.0));
    EXPECT_EQ(map.colorAt(1, 0), temperatureToColor(1.0));
}

TEST(Heatmap, FromRenderUsesProfileCosts)
{
    // Tiny sphere scene: pixels on the sphere are hotter than sky.
    rt::Scene scene("t");
    scene.setCamera(rt::Camera({0.0f, 0.0f, 5.0f}, {0.0f, 0.0f, 0.0f},
                               {0.0f, 1.0f, 0.0f}, 45.0f));
    scene.setLight({{3.0f, 5.0f, 3.0f}, {1.0f, 1.0f, 1.0f}});
    uint16_t mat = scene.addMaterial(rt::Material::diffuse({0.5f, 0.5f,
                                                            0.5f}));
    rt::MeshBuilder mesh;
    mesh.addSphere({0.0f, 0.0f, 0.0f}, 1.0f, 12, mat);
    scene.addTriangles(mesh.takeTriangles());
    rt::Bvh bvh;
    bvh.build(scene.triangles());
    rt::Tracer tracer(scene, bvh);
    rt::RenderResult render = tracer.render(33, 33);

    Heatmap map = Heatmap::fromRender(render);
    EXPECT_EQ(map.width(), 33u);
    // Center pixel (on sphere) hotter than corner (sky).
    EXPECT_GT(map.temperatureAt(16, 16), map.temperatureAt(0, 0));
    // The hottest pixel lies somewhere on the sphere; normalization
    // pins it to exactly 1.
    double max_temp = 0.0;
    for (uint32_t y = 0; y < 33; ++y)
        for (uint32_t x = 0; x < 33; ++x)
            max_temp = std::max(max_temp, map.temperatureAt(x, y));
    EXPECT_DOUBLE_EQ(max_temp, 1.0);
    EXPECT_GT(map.temperatureAt(16, 16), 0.4);
}

TEST(Heatmap, PpmDump)
{
    Heatmap map = Heatmap::fromCosts(4, 4, std::vector<double>(16, 1.0));
    std::string path = testing::TempDir() + "/zatel_heatmap.ppm";
    EXPECT_TRUE(map.writePpm(path));
    std::remove(path.c_str());
}

TEST(QuantizedHeatmap, PopulationsSumToPixelCount)
{
    std::vector<double> costs(64);
    for (size_t i = 0; i < costs.size(); ++i)
        costs[i] = static_cast<double>(i % 8);
    Heatmap map = Heatmap::fromCosts(8, 8, costs);
    QuantizedHeatmap quantized = QuantizedHeatmap::quantize(map, 4);

    size_t total = 0;
    for (uint32_t c = 0; c < quantized.paletteSize(); ++c)
        total += quantized.clusterPopulation(c);
    EXPECT_EQ(total, 64u);
}

TEST(QuantizedHeatmap, CoolnessOrdering)
{
    // Two-tone map: half cold (cost 0), half hot (cost 10).
    std::vector<double> costs(64, 0.0);
    for (size_t i = 32; i < 64; ++i)
        costs[i] = 10.0;
    Heatmap map = Heatmap::fromCosts(8, 8, costs);
    QuantizedHeatmap quantized = QuantizedHeatmap::quantize(map, 2);
    ASSERT_GE(quantized.paletteSize(), 2u);

    // A cold pixel's cluster must be cooler than a hot pixel's.
    double cold = quantized.coolnessAt(0, 0);
    double hot = quantized.coolnessAt(0, 7);
    EXPECT_GT(cold, hot);
    EXPECT_GT(cold, 0.8);
    EXPECT_LT(hot, 0.2);
}

TEST(QuantizedHeatmap, QuantizationMergesNoise)
{
    // Costs jittered around two levels must quantize to 2 clusters that
    // separate the levels even with k larger than 2... use k=2 and check
    // that near-identical temperatures share a cluster.
    std::vector<double> costs;
    for (int i = 0; i < 32; ++i)
        costs.push_back(1.0 + 0.01 * (i % 3));
    for (int i = 0; i < 32; ++i)
        costs.push_back(9.0 + 0.01 * (i % 3));
    Heatmap map = Heatmap::fromCosts(8, 8, costs);
    QuantizedHeatmap quantized = QuantizedHeatmap::quantize(map, 2);

    uint32_t first_cold = quantized.clusterAt(0, 0);
    for (uint32_t x = 0; x < 8; ++x)
        EXPECT_EQ(quantized.clusterAt(x, 0), first_cold);
    uint32_t first_hot = quantized.clusterAt(0, 7);
    EXPECT_NE(first_cold, first_hot);
}

TEST(QuantizedHeatmap, DeterministicForSeed)
{
    std::vector<double> costs(256);
    for (size_t i = 0; i < costs.size(); ++i)
        costs[i] = (i * 37) % 11;
    Heatmap map = Heatmap::fromCosts(16, 16, costs);
    QuantizedHeatmap a = QuantizedHeatmap::quantize(map, 5, 77);
    QuantizedHeatmap b = QuantizedHeatmap::quantize(map, 5, 77);
    for (uint32_t y = 0; y < 16; ++y)
        for (uint32_t x = 0; x < 16; ++x)
            EXPECT_EQ(a.clusterAt(x, y), b.clusterAt(x, y));
}

TEST(QuantizedHeatmap, PpmDump)
{
    Heatmap map = Heatmap::fromCosts(4, 4, std::vector<double>(16, 0.5));
    QuantizedHeatmap quantized = QuantizedHeatmap::quantize(map, 2);
    std::string path = testing::TempDir() + "/zatel_quantized.ppm";
    EXPECT_TRUE(quantized.writePpm(path));
    std::remove(path.c_str());
}

} // namespace
} // namespace zatel::heatmap
