/**
 * @file
 * Tests for the per-component stats report.
 */

#include <gtest/gtest.h>

#include "gpusim/gpu.hh"
#include "gpusim/stats_report.hh"
#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "rt/tracer.hh"

namespace zatel::gpusim
{
namespace
{

TEST(StatsReport, AddAndQuery)
{
    StatsReport report;
    report.add("sm0.l1d.misses", 42.0);
    report.add("mem0.dram.busy_cycles", 7.0);
    EXPECT_TRUE(report.has("sm0.l1d.misses"));
    EXPECT_FALSE(report.has("sm1.l1d.misses"));
    EXPECT_DOUBLE_EQ(report.value("sm0.l1d.misses"), 42.0);
    EXPECT_EQ(report.lines().size(), 2u);
}

TEST(StatsReport, MissingPathIsFatal)
{
    StatsReport report;
    EXPECT_EXIT(report.value("nope"), testing::ExitedWithCode(1),
                "no counter");
}

TEST(StatsReport, ToStringFormatsIntegersAndRatios)
{
    StatsReport report;
    report.add("a.count", 1000.0);
    report.add("a.rate", 0.333333);
    std::string out = report.toString();
    EXPECT_NE(out.find("a.count"), std::string::npos);
    EXPECT_NE(out.find("1000"), std::string::npos);
    EXPECT_NE(out.find("0.333333"), std::string::npos);
    // Integer does not pick up a decimal point.
    EXPECT_EQ(out.find("1000."), std::string::npos);
}

TEST(StatsReport, GpuBreakdownSumsToAggregates)
{
    rt::Scene scene = rt::buildScene(rt::SceneId::Spnza,
                                     rt::SceneDetail{0.5f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());
    rt::Tracer tracer(scene, bvh);

    GpuConfig config = GpuConfig::mobileSoc();
    config.numSms = 4;
    config.numMemPartitions = 2;
    SimWorkload workload = SimWorkload::buildFullFrame(tracer, 24, 24);
    Gpu gpu(config, workload);
    GpuStats stats = gpu.run();
    StatsReport report = gpu.statsReport();

    // Per-SM counters exist and sum to device aggregates.
    double visits = 0.0, l1_accesses = 0.0, l1_misses = 0.0;
    for (uint32_t s = 0; s < config.numSms; ++s) {
        std::string prefix = "sm" + std::to_string(s);
        ASSERT_TRUE(report.has(prefix + ".rt.node_visits")) << prefix;
        visits += report.value(prefix + ".rt.node_visits");
        l1_accesses += report.value(prefix + ".l1d.accesses");
        l1_misses += report.value(prefix + ".l1d.misses");
    }
    EXPECT_DOUBLE_EQ(visits, static_cast<double>(stats.rtNodeVisits));
    EXPECT_DOUBLE_EQ(l1_accesses, static_cast<double>(stats.l1dAccesses));
    EXPECT_DOUBLE_EQ(l1_misses, static_cast<double>(stats.l1dMisses));

    // Per-partition counters exist and sum to device aggregates.
    double l2_accesses = 0.0, dram_busy = 0.0;
    for (uint32_t p = 0; p < config.numMemPartitions; ++p) {
        std::string prefix = "mem" + std::to_string(p);
        ASSERT_TRUE(report.has(prefix + ".l2.accesses")) << prefix;
        l2_accesses += report.value(prefix + ".l2.accesses");
        dram_busy += report.value(prefix + ".dram.busy_cycles");
    }
    EXPECT_DOUBLE_EQ(l2_accesses, static_cast<double>(stats.l2Accesses));
    EXPECT_DOUBLE_EQ(dram_busy,
                     static_cast<double>(stats.dramBusyCycles));
}

TEST(StatsReport, WorkSpreadsAcrossSms)
{
    rt::Scene scene = rt::buildScene(rt::SceneId::Spnza,
                                     rt::SceneDetail{0.5f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());
    rt::Tracer tracer(scene, bvh);

    GpuConfig config = GpuConfig::mobileSoc();
    SimWorkload workload = SimWorkload::buildFullFrame(tracer, 32, 32);
    Gpu gpu(config, workload);
    gpu.run();
    StatsReport report = gpu.statsReport();

    for (uint32_t s = 0; s < config.numSms; ++s) {
        std::string prefix = "sm" + std::to_string(s);
        EXPECT_GT(report.value(prefix + ".warps_launched"), 0.0) << prefix;
    }
}

} // namespace
} // namespace zatel::gpusim
