/**
 * @file
 * Tests for the DRAM channel model and its efficiency counters.
 */

#include <gtest/gtest.h>

#include "gpusim/dram.hh"

namespace zatel::gpusim
{
namespace
{

GpuConfig
testConfig()
{
    GpuConfig config = GpuConfig::rtx2060();
    config.dramLatencyCycles = 10;
    config.dramQueueSize = 4;
    return config;
}

MemRequest
readReq(uint64_t line)
{
    MemRequest req;
    req.lineAddr = line;
    req.isWrite = false;
    return req;
}

TEST(Dram, RespectsAccessLatency)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    dram.enqueue(readReq(0), 0);

    std::vector<MemRequest> completed;
    uint64_t cycle = 0;
    // Before the latency has elapsed nothing can complete.
    for (; cycle < config.dramLatencyCycles; ++cycle) {
        dram.tick(cycle, completed);
        EXPECT_TRUE(completed.empty()) << "cycle " << cycle;
    }
    // Burst then completes.
    for (; cycle < 1000 && completed.empty(); ++cycle)
        dram.tick(cycle, completed);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(completed[0].lineAddr, 0u);
    EXPECT_GE(completed[0].readyCycle,
              config.dramLatencyCycles + config.dramBurstCycles() - 1);
}

TEST(Dram, BurstOccupiesChannel)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    dram.enqueue(readReq(0), 0);
    dram.enqueue(readReq(128), 0);

    std::vector<MemRequest> completed;
    for (uint64_t cycle = 0; cycle < 2000 && completed.size() < 2; ++cycle)
        dram.tick(cycle, completed);
    ASSERT_EQ(completed.size(), 2u);
    // Second completion at least one burst after the first.
    EXPECT_GE(completed[1].readyCycle,
              completed[0].readyCycle + config.dramBurstCycles());
    EXPECT_EQ(dram.stats().busyCycles,
              2ull * config.dramBurstCycles());
}

TEST(Dram, QueueFullRejects)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    for (uint32_t i = 0; i < config.dramQueueSize; ++i)
        EXPECT_TRUE(dram.enqueue(readReq(i * 128), 0));
    EXPECT_TRUE(dram.queueFull());
    EXPECT_FALSE(dram.enqueue(readReq(9999 * 128), 0));
}

TEST(Dram, WritesCompleteSilently)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    MemRequest write = readReq(0);
    write.isWrite = true;
    dram.enqueue(write, 0);

    std::vector<MemRequest> completed;
    for (uint64_t cycle = 0; cycle < 1000 && !dram.idle(); ++cycle)
        dram.tick(cycle, completed);
    EXPECT_TRUE(completed.empty());
    EXPECT_EQ(dram.stats().writes, 1u);
    EXPECT_EQ(dram.stats().bytesWritten, config.l2LineBytes);
}

TEST(Dram, ActiveVsBusyCycles)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    dram.enqueue(readReq(0), 0);

    std::vector<MemRequest> completed;
    uint64_t cycle = 0;
    for (; cycle < 1000 && !dram.idle(); ++cycle)
        dram.tick(cycle, completed);

    // Active includes the latency wait; busy is only the burst.
    EXPECT_EQ(dram.stats().busyCycles, config.dramBurstCycles());
    EXPECT_GT(dram.stats().activeCycles, dram.stats().busyCycles);

    // Idle ticks afterwards add nothing.
    uint64_t active_before = dram.stats().activeCycles;
    for (uint64_t i = 0; i < 50; ++i)
        dram.tick(cycle + i, completed);
    EXPECT_EQ(dram.stats().activeCycles, active_before);
}

TEST(Dram, BytesAccounted)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    dram.enqueue(readReq(0), 0);
    dram.enqueue(readReq(256), 0);

    std::vector<MemRequest> completed;
    for (uint64_t cycle = 0; cycle < 2000 && !dram.idle(); ++cycle)
        dram.tick(cycle, completed);
    EXPECT_EQ(dram.stats().bytesRead, 2ull * config.l2LineBytes);
    EXPECT_EQ(dram.stats().reads, 2u);
}

TEST(Dram, BurstCyclesDeriveFromClocks)
{
    GpuConfig config = GpuConfig::rtx2060();
    // 8 B/mem-clock * (3500/1365) ~ 20.5 B/core-cycle; 128B -> 7 cycles.
    EXPECT_EQ(config.dramBurstCycles(), 7u);
    GpuConfig mobile = GpuConfig::mobileSoc();
    // Half the bus width -> twice the burst.
    EXPECT_EQ(mobile.dramBurstCycles(), 13u);
}

} // namespace
} // namespace zatel::gpusim
