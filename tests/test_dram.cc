/**
 * @file
 * Tests for the DRAM channel model and its efficiency counters.
 */

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/dram.hh"
#include "gpusim/mem_partition.hh"
#include "gpusim/sim_clock.hh"
#include "util/rng.hh"

namespace zatel::gpusim
{
namespace
{

GpuConfig
testConfig()
{
    GpuConfig config = GpuConfig::rtx2060();
    config.dramLatencyCycles = 10;
    config.dramQueueSize = 4;
    return config;
}

MemRequest
readReq(uint64_t line)
{
    MemRequest req;
    req.lineAddr = line;
    req.isWrite = false;
    return req;
}

TEST(Dram, RespectsAccessLatency)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    dram.enqueue(readReq(0), 0);

    std::vector<MemRequest> completed;
    uint64_t cycle = 0;
    // Before the latency has elapsed nothing can complete.
    for (; cycle < config.dramLatencyCycles; ++cycle) {
        dram.tick(cycle, completed);
        EXPECT_TRUE(completed.empty()) << "cycle " << cycle;
    }
    // Burst then completes.
    for (; cycle < 1000 && completed.empty(); ++cycle)
        dram.tick(cycle, completed);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(completed[0].lineAddr, 0u);
    EXPECT_GE(completed[0].readyCycle,
              config.dramLatencyCycles + config.dramBurstCycles() - 1);
}

TEST(Dram, BurstOccupiesChannel)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    dram.enqueue(readReq(0), 0);
    dram.enqueue(readReq(128), 0);

    std::vector<MemRequest> completed;
    for (uint64_t cycle = 0; cycle < 2000 && completed.size() < 2; ++cycle)
        dram.tick(cycle, completed);
    ASSERT_EQ(completed.size(), 2u);
    // Second completion at least one burst after the first.
    EXPECT_GE(completed[1].readyCycle,
              completed[0].readyCycle + config.dramBurstCycles());
    EXPECT_EQ(dram.stats().busyCycles,
              2ull * config.dramBurstCycles());
}

TEST(Dram, QueueFullRejects)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    for (uint32_t i = 0; i < config.dramQueueSize; ++i)
        EXPECT_TRUE(dram.enqueue(readReq(i * 128), 0));
    EXPECT_TRUE(dram.queueFull());
    EXPECT_FALSE(dram.enqueue(readReq(9999 * 128), 0));
}

TEST(Dram, WritesCompleteSilently)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    MemRequest write = readReq(0);
    write.isWrite = true;
    dram.enqueue(write, 0);

    std::vector<MemRequest> completed;
    for (uint64_t cycle = 0; cycle < 1000 && !dram.idle(); ++cycle)
        dram.tick(cycle, completed);
    EXPECT_TRUE(completed.empty());
    EXPECT_EQ(dram.stats().writes, 1u);
    EXPECT_EQ(dram.stats().bytesWritten, config.l2LineBytes);
}

TEST(Dram, ActiveVsBusyCycles)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    dram.enqueue(readReq(0), 0);

    std::vector<MemRequest> completed;
    uint64_t cycle = 0;
    for (; cycle < 1000 && !dram.idle(); ++cycle)
        dram.tick(cycle, completed);

    // Active includes the latency wait; busy is only the burst.
    EXPECT_EQ(dram.stats().busyCycles, config.dramBurstCycles());
    EXPECT_GT(dram.stats().activeCycles, dram.stats().busyCycles);

    // Idle ticks afterwards add nothing.
    uint64_t active_before = dram.stats().activeCycles;
    for (uint64_t i = 0; i < 50; ++i)
        dram.tick(cycle + i, completed);
    EXPECT_EQ(dram.stats().activeCycles, active_before);
}

TEST(Dram, BytesAccounted)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    dram.enqueue(readReq(0), 0);
    dram.enqueue(readReq(256), 0);

    std::vector<MemRequest> completed;
    for (uint64_t cycle = 0; cycle < 2000 && !dram.idle(); ++cycle)
        dram.tick(cycle, completed);
    EXPECT_EQ(dram.stats().bytesRead, 2ull * config.l2LineBytes);
    EXPECT_EQ(dram.stats().reads, 2u);
}

// ---------------------------------------------------------------------
// Tick-boundary behaviour the activity-driven loop leans on
// (docs/SIMULATOR.md): single-cycle bursts retiring in the tick that
// starts them, queue-full backpressure, write retirement accounting and
// the exact active/busy split — plus the tick-vs-fastForward stat
// equivalence contract (sim_clock.hh).
// ---------------------------------------------------------------------

/** Bus exactly one line wide per core cycle: dramBurstCycles() == 1. */
GpuConfig
singleCycleBurstConfig()
{
    GpuConfig config = testConfig();
    config.dramBytesPerMemClock = config.l2LineBytes;
    config.memClockMhz = config.coreClockMhz;
    return config;
}

TEST(Dram, SingleCycleBurstRetiresInStartTick)
{
    GpuConfig config = singleCycleBurstConfig();
    ASSERT_EQ(config.dramBurstCycles(), 1u);
    DramChannel dram(config);
    dram.enqueue(readReq(0), 0);

    std::vector<MemRequest> completed;
    for (uint64_t cycle = 0; cycle < config.dramLatencyCycles; ++cycle) {
        dram.tick(cycle, completed);
        EXPECT_TRUE(completed.empty()) << "cycle " << cycle;
    }
    // The tick at arrival + latency both starts and retires the burst.
    dram.tick(config.dramLatencyCycles, completed);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(completed[0].readyCycle, config.dramLatencyCycles + 1);
    EXPECT_TRUE(dram.idle());
    EXPECT_EQ(dram.stats().busyCycles, 1u);
    EXPECT_EQ(dram.stats().activeCycles, config.dramLatencyCycles + 1);
}

TEST(Dram, QueueFullBackpressureAcceptsRetryAfterDrain)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    for (uint32_t i = 0; i < config.dramQueueSize; ++i)
        ASSERT_TRUE(dram.enqueue(readReq(i * 128ull), 0));
    ASSERT_TRUE(dram.queueFull());

    std::vector<MemRequest> completed;
    uint64_t cycle = 0;
    // Retries during the head's access-latency window keep failing:
    // nothing leaves the queue until a burst starts.
    for (; cycle < config.dramLatencyCycles; ++cycle) {
        EXPECT_FALSE(dram.enqueue(readReq(9999 * 128ull), cycle))
            << "cycle " << cycle;
        dram.tick(cycle, completed);
    }
    // The tick at arrival + latency pops the head into the burst
    // engine; the very next retry must be accepted.
    dram.tick(cycle, completed);
    ++cycle;
    EXPECT_FALSE(dram.queueFull());
    EXPECT_TRUE(dram.enqueue(readReq(9999 * 128ull), cycle));

    for (; cycle < 5000 && !dram.idle(); ++cycle)
        dram.tick(cycle, completed);
    ASSERT_TRUE(dram.idle());
    EXPECT_EQ(dram.stats().reads, config.dramQueueSize + 1u);
    EXPECT_EQ(completed.size(), config.dramQueueSize + 1u);
}

TEST(Dram, WriteRetirementAccountsBytesWithoutCompletion)
{
    GpuConfig config = singleCycleBurstConfig();
    DramChannel dram(config);
    MemRequest write = readReq(128);
    write.isWrite = true;
    dram.enqueue(write, 0);

    std::vector<MemRequest> completed;
    for (uint64_t cycle = 0; cycle <= config.dramLatencyCycles; ++cycle)
        dram.tick(cycle, completed);
    // Writes retire silently in the single-cycle-burst start tick: byte
    // and op counters move, no response is emitted.
    EXPECT_TRUE(dram.idle());
    EXPECT_TRUE(completed.empty());
    EXPECT_EQ(dram.stats().writes, 1u);
    EXPECT_EQ(dram.stats().bytesWritten, config.l2LineBytes);
    EXPECT_EQ(dram.stats().bytesRead, 0u);
    EXPECT_EQ(dram.stats().busyCycles, 1u);
}

TEST(Dram, ActiveBusySplitIsExact)
{
    GpuConfig config = testConfig();
    DramChannel dram(config);
    dram.enqueue(readReq(0), 0);

    std::vector<MemRequest> completed;
    for (uint64_t cycle = 0; cycle < 1000 && !dram.idle(); ++cycle)
        dram.tick(cycle, completed);
    ASSERT_TRUE(dram.idle());
    // Cycles 0 .. latency-1 wait (active only); the burst then holds
    // the channel for exactly dramBurstCycles() (active + busy).
    EXPECT_EQ(dram.stats().busyCycles, config.dramBurstCycles());
    EXPECT_EQ(dram.stats().activeCycles,
              config.dramLatencyCycles + config.dramBurstCycles());
}

TEST(Dram, FastForwardMatchesTickedLatencyWait)
{
    GpuConfig config = testConfig();
    DramChannel ticked(config);
    DramChannel skipped(config);
    ticked.enqueue(readReq(0), 0);
    skipped.enqueue(readReq(0), 0);

    std::vector<MemRequest> a;
    std::vector<MemRequest> b;
    uint64_t cycle = 0;
    for (; cycle < 1000 && !ticked.idle(); ++cycle)
        ticked.tick(cycle, a);

    // Skipper: one real tick, then jump the latency window in closed
    // form exactly as Gpu::run's quiescence fast-forward would.
    skipped.tick(0, b);
    uint64_t resume = skipped.nextEventCycle(0);
    ASSERT_EQ(resume, config.dramLatencyCycles);
    skipped.fastForward(resume - 1); // cycles 1 .. resume-1 skipped
    for (uint64_t now = resume; now < 1000 && !skipped.idle(); ++now)
        skipped.tick(now, b);

    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0].readyCycle, b[0].readyCycle);
    EXPECT_EQ(ticked.stats().activeCycles, skipped.stats().activeCycles);
    EXPECT_EQ(ticked.stats().busyCycles, skipped.stats().busyCycles);
    EXPECT_EQ(ticked.stats().bytesRead, skipped.stats().bytesRead);
    EXPECT_EQ(ticked.stats().reads, skipped.stats().reads);
}

// ---------------------------------------------------------------------
// Partition-level skip contract (sim_clock.hh): driving a MemPartition
// with quiescentAt()-gated fastForward() windows must produce the exact
// response stream and DRAM counters of ticking every cycle, over
// randomized request schedules. This is the property Gpu::run's
// whole-device jump (and the span-parallel loop's jump) relies on.
// ---------------------------------------------------------------------

TEST(Dram, PartitionFastForwardMatchesTickedOverRandomWindows)
{
    Rng rng(0xD12A3DB5u);
    for (int trial = 0; trial < 24; ++trial) {
        GpuConfig config = testConfig();
        // Vary the backpressure knobs so some trials hit queue-full
        // retries and writeback stalls, others never do.
        config.dramQueueSize = static_cast<uint32_t>(rng.nextRange(2, 6));
        config.nocLatencyCycles = static_cast<uint32_t>(rng.nextRange(0, 20));

        MemPartition ticked(config, 0);
        MemPartition skipped(config, 0);

        // Random request schedule: bursts of reads/writes with NoC
        // arrival cycles spread over a window, some lines shared so L2
        // MSHR merging and dirty evictions both trigger.
        uint64_t arrival = 0;
        int requests = static_cast<int>(rng.nextRange(4, 24));
        for (int r = 0; r < requests; ++r) {
            arrival += static_cast<uint64_t>(rng.nextRange(0, 60));
            MemRequest req;
            req.lineAddr = 128ull * static_cast<uint64_t>(rng.nextRange(0, 12));
            req.srcSm = static_cast<uint32_t>(rng.nextRange(0, 3));
            req.isWrite = rng.nextBounded(4) == 0;
            req.readyCycle = arrival;
            ticked.enqueue(req);
            skipped.enqueue(req);
        }

        const uint64_t horizon = arrival + 4000;
        std::vector<MemResponse> ticked_responses;
        for (uint64_t cycle = 0; cycle < horizon; ++cycle)
            ticked.tick(cycle, ticked_responses);

        std::vector<MemResponse> skipped_responses;
        uint64_t cycle = 0;
        while (cycle < horizon) {
            if (skipped.quiescentAt(cycle)) {
                uint64_t event = skipped.nextEventCycle(cycle);
                uint64_t target = std::min(event, horizon);
                if (target > cycle + 1) {
                    // Skip (cycle, target): accrual only, by contract.
                    skipped.fastForward(target - cycle - 1);
                    cycle = target;
                    continue;
                }
            }
            skipped.tick(cycle, skipped_responses);
            ++cycle;
        }

        ASSERT_EQ(ticked.idle(), skipped.idle()) << "trial " << trial;
        ASSERT_EQ(ticked_responses.size(), skipped_responses.size())
            << "trial " << trial;
        for (size_t i = 0; i < ticked_responses.size(); ++i) {
            EXPECT_EQ(ticked_responses[i].lineAddr,
                      skipped_responses[i].lineAddr)
                << "trial " << trial << " response " << i;
            EXPECT_EQ(ticked_responses[i].dstSm, skipped_responses[i].dstSm)
                << "trial " << trial << " response " << i;
            EXPECT_EQ(ticked_responses[i].readyCycle,
                      skipped_responses[i].readyCycle)
                << "trial " << trial << " response " << i;
        }
        EXPECT_EQ(ticked.dram().stats().busyCycles,
                  skipped.dram().stats().busyCycles)
            << "trial " << trial;
        EXPECT_EQ(ticked.dram().stats().activeCycles,
                  skipped.dram().stats().activeCycles)
            << "trial " << trial;
        EXPECT_EQ(ticked.dram().stats().bytesRead,
                  skipped.dram().stats().bytesRead)
            << "trial " << trial;
        EXPECT_EQ(ticked.dram().stats().bytesWritten,
                  skipped.dram().stats().bytesWritten)
            << "trial " << trial;
        EXPECT_EQ(ticked.l2().stats().accesses, skipped.l2().stats().accesses)
            << "trial " << trial;
        EXPECT_EQ(ticked.l2().stats().misses, skipped.l2().stats().misses)
            << "trial " << trial;
        EXPECT_EQ(ticked.l2ReservedHits(), skipped.l2ReservedHits())
            << "trial " << trial;
    }
}

TEST(Dram, BurstCyclesDeriveFromClocks)
{
    GpuConfig config = GpuConfig::rtx2060();
    // 8 B/mem-clock * (3500/1365) ~ 20.5 B/core-cycle; 128B -> 7 cycles.
    EXPECT_EQ(config.dramBurstCycles(), 7u);
    GpuConfig mobile = GpuConfig::mobileSoc();
    // Half the bus width -> twice the burst.
    EXPECT_EQ(mobile.dramBurstCycles(), 13u);
}

} // namespace
} // namespace zatel::gpusim
