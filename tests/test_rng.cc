/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "util/rng.hh"

namespace zatel
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    // All 7 values should appear over 2000 draws.
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleRange)
{
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        double d = rng.nextDouble(-2.5, 4.5);
        EXPECT_GE(d, -2.5);
        EXPECT_LT(d, 4.5);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(19);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += rng.nextDouble();
    EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(23);
    const int n = 40000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> values(100);
    for (int i = 0; i < 100; ++i)
        values[i] = i;
    std::vector<int> shuffled = values;
    rng.shuffle(shuffled);
    EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(values, shuffled);
}

TEST(Rng, ShuffleEmptyAndSingle)
{
    Rng rng(31);
    std::vector<int> empty;
    rng.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int> one{5};
    rng.shuffle(one);
    EXPECT_EQ(one, std::vector<int>{5});
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(37);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 5);
}

// ---------------------------------------------------------------------------
// Cross-platform stream stability: golden values for fixed seeds.
//
// The determinism harness (tests/test_determinism.cc) compares pipeline
// results bit-for-bit, which is only meaningful across machines if the
// RNG streams themselves are bit-stable everywhere. These values were
// captured from the reference xoshiro256** + splitmix64 implementation;
// any change here is a breaking change to the determinism contract and
// must be called out in docs/CORRECTNESS.md.
// ---------------------------------------------------------------------------

TEST(RngGolden, RawStreamSeed0)
{
    Rng rng(0);
    const uint64_t expected[] = {
        11091344671253066420ull, 13793997310169335082ull,
        1900383378846508768ull,  7684712102626143532ull,
        13521403990117723737ull, 18442103541295991498ull,
    };
    for (uint64_t value : expected)
        EXPECT_EQ(rng.next(), value);
}

TEST(RngGolden, RawStreamSeed42)
{
    Rng rng(42);
    const uint64_t expected[] = {
        1546998764402558742ull,  6990951692964543102ull,
        12544586762248559009ull, 17057574109182124193ull,
        18295552978065317476ull, 14199186830065750584ull,
    };
    for (uint64_t value : expected)
        EXPECT_EQ(rng.next(), value);
}

TEST(RngGolden, RawStreamPipelineDefaultSeed)
{
    // 0x2A7E1 is ZatelParams::seed's default.
    Rng rng(0x2A7E1);
    const uint64_t expected[] = {
        15205826629589118879ull, 10122613346909942884ull,
        14337656323652621797ull, 4053572920900888293ull,
        16574705408064936650ull, 1784594000294999714ull,
    };
    for (uint64_t value : expected)
        EXPECT_EQ(rng.next(), value);
}

TEST(RngGolden, BoundedStream)
{
    Rng rng(42);
    const uint64_t expected[] = {42, 2, 9, 93, 76, 84, 54, 7};
    for (uint64_t value : expected)
        EXPECT_EQ(rng.nextBounded(100), value);
}

TEST(RngGolden, DoubleStreamBitPatterns)
{
    // Doubles are compared via their bit patterns: (next() >> 11) * 2^-53
    // involves only one rounding-free multiply, so results must be
    // bit-identical on any IEEE-754 platform.
    Rng rng(7);
    const uint64_t expected_bits[] = {
        0x3fe66b1f5ee9df2eull,
        0x3fd1d70f6593d20aull,
        0x3feade3a6932a58full,
        0x3fef65270e63d00eull,
    };
    for (uint64_t bits : expected_bits) {
        double value = rng.nextDouble();
        uint64_t actual = 0;
        std::memcpy(&actual, &value, sizeof(actual));
        EXPECT_EQ(actual, bits);
    }
}

TEST(RngGolden, SplitStreams)
{
    Rng parent(123);
    Rng child_a = parent.split();
    Rng child_b = parent.split();
    EXPECT_EQ(child_a.next(), 13493024091370825836ull);
    EXPECT_EQ(child_b.next(), 12106736704256847843ull);
    EXPECT_EQ(parent.next(), 8622752019489400367ull);
}

TEST(RngGolden, RangeStream)
{
    Rng rng(99);
    const int64_t expected[] = {4, -10, -2, 18, -17, -46};
    for (int64_t value : expected)
        EXPECT_EQ(rng.nextRange(-50, 50), value);
}

TEST(Rng, BoundedUniformity)
{
    Rng rng(41);
    const uint64_t k = 10;
    std::vector<int> counts(k, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(k)];
    for (uint64_t b = 0; b < k; ++b)
        EXPECT_NEAR(counts[b], n / static_cast<int>(k), n / 100);
}

} // namespace
} // namespace zatel
