/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hh"

namespace zatel
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    // All 7 values should appear over 2000 draws.
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleRange)
{
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        double d = rng.nextDouble(-2.5, 4.5);
        EXPECT_GE(d, -2.5);
        EXPECT_LT(d, 4.5);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(19);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += rng.nextDouble();
    EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(23);
    const int n = 40000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> values(100);
    for (int i = 0; i < 100; ++i)
        values[i] = i;
    std::vector<int> shuffled = values;
    rng.shuffle(shuffled);
    EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(values, shuffled);
}

TEST(Rng, ShuffleEmptyAndSingle)
{
    Rng rng(31);
    std::vector<int> empty;
    rng.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int> one{5};
    rng.shuffle(one);
    EXPECT_EQ(one, std::vector<int>{5});
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(37);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedUniformity)
{
    Rng rng(41);
    const uint64_t k = 10;
    std::vector<int> counts(k, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(k)];
    for (uint64_t b = 0; b < k; ++b)
        EXPECT_NEAR(counts[b], n / static_cast<int>(k), n / 100);
}

} // namespace
} // namespace zatel
