/**
 * @file
 * Unit tests for obs::MetricsRegistry: counter/gauge/histogram
 * semantics, bucket boundary edges, Prometheus / JSON export golden
 * checks, registration misuse, and a multithreaded exact-total test.
 *
 * Suite names start with "MetricsRegistry" so the tsan-determinism
 * ctest preset picks them up (see CMakePresets.json).
 */

#include "obs/metrics_registry.hh"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/validate.hh"

namespace
{

using namespace zatel;

TEST(MetricsRegistryCounter, DisabledRegistryIgnoresIncrements)
{
    obs::MetricsRegistry registry;
    obs::Counter *counter =
        registry.counter("zatel_test_total", "test counter");
    counter->inc();
    counter->inc(10);
    EXPECT_EQ(counter->value(), 0u);

    registry.setEnabled(true);
    counter->inc(3);
    EXPECT_EQ(counter->value(), 3u);

    registry.setEnabled(false);
    counter->inc(100);
    EXPECT_EQ(counter->value(), 3u);
}

TEST(MetricsRegistryCounter, FindOrRegisterReturnsSameSeries)
{
    obs::MetricsRegistry registry;
    registry.setEnabled(true);
    obs::Counter *a =
        registry.counter("zatel_hits_total", "hits", {{"kind", "x"}});
    obs::Counter *b =
        registry.counter("zatel_hits_total", "hits", {{"kind", "x"}});
    obs::Counter *c =
        registry.counter("zatel_hits_total", "hits", {{"kind", "y"}});
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    a->inc();
    EXPECT_EQ(b->value(), 1u);
    EXPECT_EQ(c->value(), 0u);
    EXPECT_EQ(registry.seriesCount(), 2u);
}

TEST(MetricsRegistryCounter, MultithreadedIncrementsAllLand)
{
    obs::MetricsRegistry registry;
    registry.setEnabled(true);
    obs::Counter *counter =
        registry.counter("zatel_mt_total", "contended counter");
    obs::Gauge *gauge = registry.gauge("zatel_mt_gauge", "contended");
    obs::Histogram *histogram = registry.histogram(
        "zatel_mt_seconds", "contended", obs::Histogram::timeBuckets());

    constexpr int kThreads = 8;
    constexpr int kIncsPerThread = 2000;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            while (!go.load(std::memory_order_acquire)) {
                // wait for the starting gun
            }
            for (int i = 0; i < kIncsPerThread; ++i) {
                counter->inc();
                gauge->add(1.0);
                histogram->observe(0.001);
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (std::thread &thread : threads)
        thread.join();

    const uint64_t expected =
        static_cast<uint64_t>(kThreads) * kIncsPerThread;
    EXPECT_EQ(counter->value(), expected);
    EXPECT_EQ(gauge->value(), static_cast<double>(expected));
    EXPECT_EQ(histogram->count(), expected);
    EXPECT_NEAR(histogram->sum(), 0.001 * expected, 1e-6 * expected);
}

TEST(MetricsRegistryGauge, SetAddSub)
{
    obs::MetricsRegistry registry;
    registry.setEnabled(true);
    obs::Gauge *gauge = registry.gauge("zatel_depth", "queue depth");
    gauge->set(5.0);
    EXPECT_EQ(gauge->value(), 5.0);
    gauge->add(2.5);
    EXPECT_EQ(gauge->value(), 7.5);
    gauge->sub(7.5);
    EXPECT_EQ(gauge->value(), 0.0);
}

TEST(MetricsRegistryHistogram, BucketBoundariesAreLessOrEqual)
{
    obs::MetricsRegistry registry;
    registry.setEnabled(true);
    obs::Histogram *histogram = registry.histogram(
        "zatel_edge_seconds", "boundary semantics", {1.0, 2.0, 4.0});

    histogram->observe(1.0); // == bound: lands in bucket 0 (le="1")
    histogram->observe(1.0000001);
    histogram->observe(2.0); // == bound: bucket 1
    histogram->observe(4.0); // == last finite bound: bucket 2
    histogram->observe(4.5); // above every bound: +Inf bucket
    histogram->observe(0.0); // below everything: bucket 0

    std::vector<uint64_t> counts = histogram->bucketCounts();
    ASSERT_EQ(counts.size(), 4u); // 3 finite + implicit +Inf
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(histogram->count(), 6u);
}

TEST(MetricsRegistryHistogram, BadBucketLayoutThrows)
{
    obs::MetricsRegistry registry;
    EXPECT_THROW(registry.histogram("zatel_bad_a", "empty", {}),
                 obs::MetricsError);
    EXPECT_THROW(
        registry.histogram("zatel_bad_b", "nonmonotonic", {1.0, 1.0}),
        obs::MetricsError);
    EXPECT_THROW(
        registry.histogram("zatel_bad_c", "descending", {2.0, 1.0}),
        obs::MetricsError);
}

TEST(MetricsRegistryRegistration, DuplicateNameDifferentKindThrows)
{
    obs::MetricsRegistry registry;
    registry.counter("zatel_thing_total", "a counter");
    EXPECT_THROW(registry.gauge("zatel_thing_total", "now a gauge"),
                 obs::MetricsError);
    EXPECT_THROW(registry.histogram("zatel_thing_total", "now a histo",
                                    {1.0}),
                 obs::MetricsError);

    registry.histogram("zatel_lat_seconds", "latency", {1.0, 2.0});
    // Same name with different buckets is also a conflict.
    EXPECT_THROW(
        registry.histogram("zatel_lat_seconds", "latency", {1.0, 3.0}),
        obs::MetricsError);
}

TEST(MetricsRegistryRegistration, InvalidNamesRejected)
{
    obs::MetricsRegistry registry;
    EXPECT_THROW(registry.counter("0starts_with_digit", "bad"),
                 obs::MetricsError);
    EXPECT_THROW(registry.counter("has-dash_total", "bad"),
                 obs::MetricsError);
    EXPECT_THROW(registry.counter("", "bad"), obs::MetricsError);
    EXPECT_THROW(
        registry.counter("zatel_ok_total", "bad label",
                         {{"0bad", "v"}}),
        obs::MetricsError);
}

TEST(MetricsRegistryRegistration, ResetValuesKeepsHandlesValid)
{
    obs::MetricsRegistry registry;
    registry.setEnabled(true);
    obs::Counter *counter = registry.counter("zatel_r_total", "r");
    obs::Gauge *gauge = registry.gauge("zatel_r_gauge", "r");
    obs::Histogram *histogram =
        registry.histogram("zatel_r_seconds", "r", {1.0});
    counter->inc(7);
    gauge->set(3.0);
    histogram->observe(0.5);

    registry.resetValues();
    EXPECT_EQ(registry.seriesCount(), 3u);
    EXPECT_EQ(counter->value(), 0u);
    EXPECT_EQ(gauge->value(), 0.0);
    EXPECT_EQ(histogram->count(), 0u);
    EXPECT_EQ(histogram->sum(), 0.0);

    counter->inc(); // handle still live after reset
    EXPECT_EQ(counter->value(), 1u);
}

TEST(MetricsRegistryExport, PrometheusTextGolden)
{
    obs::MetricsRegistry registry;
    registry.setEnabled(true);
    registry.counter("zatel_hits_total", "Cache hits",
                     {{"kind", "heatmap"}})
        ->inc(4);
    registry.gauge("zatel_bytes_in_use", "Bytes resident")->set(2048);

    std::string text = registry.prometheusText();
    std::vector<std::string> problems =
        obs::validatePrometheusText(text);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());

    EXPECT_NE(text.find("# HELP zatel_bytes_in_use Bytes resident"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE zatel_bytes_in_use gauge"),
              std::string::npos);
    EXPECT_NE(text.find("zatel_bytes_in_use 2048"), std::string::npos);
    EXPECT_NE(text.find("# TYPE zatel_hits_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("zatel_hits_total{kind=\"heatmap\"} 4"),
              std::string::npos);
}

TEST(MetricsRegistryExport, PrometheusHistogramIsCumulative)
{
    obs::MetricsRegistry registry;
    registry.setEnabled(true);
    obs::Histogram *histogram = registry.histogram(
        "zatel_h_seconds", "latency", {1.0, 2.0});
    histogram->observe(0.5);
    histogram->observe(1.5);
    histogram->observe(9.0);

    std::string text = registry.prometheusText();
    EXPECT_TRUE(obs::validatePrometheusText(text).empty());
    EXPECT_NE(text.find("zatel_h_seconds_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("zatel_h_seconds_bucket{le=\"2\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("zatel_h_seconds_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("zatel_h_seconds_count 3"), std::string::npos);
    EXPECT_NE(text.find("zatel_h_seconds_sum 11"), std::string::npos);
}

TEST(MetricsRegistryExport, JsonDumpValidatesAndRoundTrips)
{
    obs::MetricsRegistry registry;
    registry.setEnabled(true);
    registry.counter("zatel_j_total", "j", {{"kind", "a"}})->inc(2);
    registry.gauge("zatel_j_gauge", "j")->set(1.5);
    registry.histogram("zatel_j_seconds", "j", {1.0})->observe(0.25);

    std::string text = registry.jsonText();
    std::vector<std::string> problems = obs::validateMetricsJson(text);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());

    obs::JsonValue root = obs::parseJson(text);
    const obs::JsonValue &metrics = root.at("metrics");
    ASSERT_TRUE(metrics.isArray());
    ASSERT_EQ(metrics.arrayValue.size(), 3u);

    bool saw_counter = false;
    bool saw_histogram = false;
    for (const obs::JsonValue &entry : metrics.arrayValue) {
        const std::string &name = entry.at("name").stringValue;
        if (name == "zatel_j_total") {
            saw_counter = true;
            EXPECT_EQ(entry.at("kind").stringValue, "counter");
            EXPECT_EQ(entry.at("value").numberValue, 2.0);
            EXPECT_EQ(entry.at("labels").at("kind").stringValue, "a");
        } else if (name == "zatel_j_seconds") {
            saw_histogram = true;
            EXPECT_EQ(entry.at("kind").stringValue, "histogram");
            EXPECT_EQ(entry.at("count").numberValue, 1.0);
            // buckets = one finite bound + implicit +Inf.
            EXPECT_EQ(entry.at("buckets").arrayValue.size(), 2u);
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_histogram);
}

TEST(MetricsRegistryExport, ExportIsSortedAndStable)
{
    obs::MetricsRegistry registry;
    registry.setEnabled(true);
    // Register out of order; export must sort by (name, labels).
    registry.counter("zatel_zz_total", "z");
    registry.counter("zatel_aa_total", "a");
    registry.counter("zatel_mm_total", "m", {{"k", "b"}});
    registry.counter("zatel_mm_total", "m", {{"k", "a"}});

    std::string first = registry.prometheusText();
    std::string second = registry.prometheusText();
    EXPECT_EQ(first, second);
    EXPECT_LT(first.find("zatel_aa_total"), first.find("zatel_mm_total"));
    EXPECT_LT(first.find("zatel_mm_total{k=\"a\"}"),
              first.find("zatel_mm_total{k=\"b\"}"));
    EXPECT_LT(first.find("zatel_mm_total{k=\"b\"}"),
              first.find("zatel_zz_total"));
}

} // namespace
