/**
 * @file
 * Unit tests for Vec3, Aabb and triangle intersection.
 */

#include <gtest/gtest.h>

#include "rt/aabb.hh"
#include "rt/triangle.hh"
#include "rt/vec3.hh"
#include "util/rng.hh"

namespace zatel::rt
{
namespace
{

TEST(Vec3, Arithmetic)
{
    Vec3 a{1.0f, 2.0f, 3.0f};
    Vec3 b{4.0f, 5.0f, 6.0f};
    EXPECT_EQ(a + b, Vec3(5.0f, 7.0f, 9.0f));
    EXPECT_EQ(b - a, Vec3(3.0f, 3.0f, 3.0f));
    EXPECT_EQ(a * 2.0f, Vec3(2.0f, 4.0f, 6.0f));
    EXPECT_EQ(2.0f * a, Vec3(2.0f, 4.0f, 6.0f));
    EXPECT_EQ(-a, Vec3(-1.0f, -2.0f, -3.0f));
    EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(Vec3, CrossOrthogonality)
{
    Vec3 x{1.0f, 0.0f, 0.0f};
    Vec3 y{0.0f, 1.0f, 0.0f};
    EXPECT_EQ(cross(x, y), Vec3(0.0f, 0.0f, 1.0f));
    Vec3 a{1.0f, 2.0f, 3.0f};
    Vec3 b{-2.0f, 0.5f, 4.0f};
    Vec3 c = cross(a, b);
    EXPECT_NEAR(dot(c, a), 0.0f, 1e-5f);
    EXPECT_NEAR(dot(c, b), 0.0f, 1e-5f);
}

TEST(Vec3, NormalizeLength)
{
    Vec3 v{3.0f, 4.0f, 0.0f};
    EXPECT_FLOAT_EQ(length(v), 5.0f);
    EXPECT_NEAR(length(normalize(v)), 1.0f, 1e-6f);
    // Zero vector normalizes to zero (no NaN).
    Vec3 z = normalize(Vec3{0.0f, 0.0f, 0.0f});
    EXPECT_EQ(z, Vec3(0.0f, 0.0f, 0.0f));
}

TEST(Vec3, Reflect)
{
    Vec3 v{1.0f, -1.0f, 0.0f};
    Vec3 n{0.0f, 1.0f, 0.0f};
    EXPECT_EQ(reflect(v, n), Vec3(1.0f, 1.0f, 0.0f));
}

TEST(Vec3, MinMaxLerp)
{
    Vec3 a{1.0f, 5.0f, 3.0f};
    Vec3 b{2.0f, 4.0f, 3.0f};
    EXPECT_EQ(minVec(a, b), Vec3(1.0f, 4.0f, 3.0f));
    EXPECT_EQ(maxVec(a, b), Vec3(2.0f, 5.0f, 3.0f));
    EXPECT_EQ(lerp(a, b, 0.0f), a);
    EXPECT_EQ(lerp(a, b, 1.0f), b);
}

TEST(Aabb, EmptyByDefault)
{
    Aabb box;
    EXPECT_TRUE(box.empty());
    EXPECT_FLOAT_EQ(box.surfaceArea(), 0.0f);
}

TEST(Aabb, ExpandPointAndBox)
{
    Aabb box;
    box.expand(Vec3{1.0f, 2.0f, 3.0f});
    EXPECT_FALSE(box.empty());
    EXPECT_TRUE(box.contains(Vec3{1.0f, 2.0f, 3.0f}));
    box.expand(Vec3{-1.0f, 0.0f, 5.0f});
    EXPECT_TRUE(box.contains(Vec3{0.0f, 1.0f, 4.0f}));
    EXPECT_FALSE(box.contains(Vec3{2.0f, 1.0f, 4.0f}));

    Aabb other;
    other.expand(Vec3{10.0f, 10.0f, 10.0f});
    box.expand(other);
    EXPECT_TRUE(box.contains(Vec3{5.0f, 5.0f, 7.0f}));
}

TEST(Aabb, SurfaceAreaUnitCube)
{
    Aabb box;
    box.expand(Vec3{0.0f, 0.0f, 0.0f});
    box.expand(Vec3{1.0f, 1.0f, 1.0f});
    EXPECT_FLOAT_EQ(box.surfaceArea(), 6.0f);
}

TEST(Aabb, LongestAxis)
{
    Aabb box;
    box.expand(Vec3{0.0f, 0.0f, 0.0f});
    box.expand(Vec3{1.0f, 5.0f, 2.0f});
    EXPECT_EQ(box.longestAxis(), 1);
}

TEST(Aabb, Overlaps)
{
    Aabb a, b, c;
    a.expand(Vec3{0.0f, 0.0f, 0.0f});
    a.expand(Vec3{2.0f, 2.0f, 2.0f});
    b.expand(Vec3{1.0f, 1.0f, 1.0f});
    b.expand(Vec3{3.0f, 3.0f, 3.0f});
    c.expand(Vec3{5.0f, 5.0f, 5.0f});
    c.expand(Vec3{6.0f, 6.0f, 6.0f});
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_FALSE(a.overlaps(Aabb{}));
}

Ray
makeRay(Vec3 origin, Vec3 direction)
{
    Ray ray;
    ray.origin = origin;
    ray.direction = normalize(direction);
    return ray;
}

Vec3
invDir(const Ray &ray)
{
    auto safe = [](float d) {
        return (d > 1e-30f || d < -1e-30f) ? 1.0f / d
                                           : (d >= 0 ? 1e30f : -1e30f);
    };
    return {safe(ray.direction.x), safe(ray.direction.y),
            safe(ray.direction.z)};
}

TEST(Aabb, RayHitAndMiss)
{
    Aabb box;
    box.expand(Vec3{-1.0f, -1.0f, -1.0f});
    box.expand(Vec3{1.0f, 1.0f, 1.0f});

    Ray hit = makeRay({-5.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f});
    float t = 0.0f;
    EXPECT_TRUE(box.intersect(hit, invDir(hit), t));
    EXPECT_NEAR(t, 4.0f, 1e-4f);

    Ray miss = makeRay({-5.0f, 3.0f, 0.0f}, {1.0f, 0.0f, 0.0f});
    EXPECT_FALSE(box.intersect(miss, invDir(miss), t));

    Ray away = makeRay({-5.0f, 0.0f, 0.0f}, {-1.0f, 0.0f, 0.0f});
    EXPECT_FALSE(box.intersect(away, invDir(away), t));
}

TEST(Aabb, RayOriginInsideHits)
{
    Aabb box;
    box.expand(Vec3{-1.0f, -1.0f, -1.0f});
    box.expand(Vec3{1.0f, 1.0f, 1.0f});
    Ray ray = makeRay({0.0f, 0.0f, 0.0f}, {0.3f, 0.4f, 0.5f});
    float t = 0.0f;
    EXPECT_TRUE(box.intersect(ray, invDir(ray), t));
}

TEST(Aabb, RayTMaxCulls)
{
    Aabb box;
    box.expand(Vec3{9.0f, -1.0f, -1.0f});
    box.expand(Vec3{11.0f, 1.0f, 1.0f});
    Ray ray = makeRay({0.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f});
    ray.tMax = 5.0f;
    float t = 0.0f;
    EXPECT_FALSE(box.intersect(ray, invDir(ray), t));
    ray.tMax = 20.0f;
    EXPECT_TRUE(box.intersect(ray, invDir(ray), t));
}

TEST(Aabb, AxisParallelRayOnSlabBoundary)
{
    Aabb box;
    box.expand(Vec3{-1.0f, -1.0f, -1.0f});
    box.expand(Vec3{1.0f, 1.0f, 1.0f});
    // Direction has zero y and z components; origin inside slab bounds.
    Ray ray = makeRay({-5.0f, 0.5f, -0.5f}, {1.0f, 0.0f, 0.0f});
    float t = 0.0f;
    EXPECT_TRUE(box.intersect(ray, invDir(ray), t));
}

/** Property: rays aimed at random interior points always hit the box. */
TEST(Aabb, PropertyRaysTowardInteriorHit)
{
    zatel::Rng rng(99);
    Aabb box;
    box.expand(Vec3{-2.0f, 1.0f, -3.0f});
    box.expand(Vec3{4.0f, 5.0f, 2.0f});
    for (int i = 0; i < 300; ++i) {
        Vec3 inside{
            static_cast<float>(rng.nextDouble(-2.0, 4.0)),
            static_cast<float>(rng.nextDouble(1.0, 5.0)),
            static_cast<float>(rng.nextDouble(-3.0, 2.0))};
        Vec3 origin{
            static_cast<float>(rng.nextDouble(-20.0, -10.0)),
            static_cast<float>(rng.nextDouble(-20.0, 20.0)),
            static_cast<float>(rng.nextDouble(-20.0, 20.0))};
        Ray ray = makeRay(origin, inside - origin);
        float t = 0.0f;
        EXPECT_TRUE(box.intersect(ray, invDir(ray), t))
            << "ray toward interior point must hit";
    }
}

TEST(Triangle, HitFrontAndBack)
{
    Triangle tri{{0.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f},
                 0};
    Ray front = makeRay({0.2f, 0.2f, 5.0f}, {0.0f, 0.0f, -1.0f});
    float t = 0.0f;
    ASSERT_TRUE(tri.intersect(front, t));
    EXPECT_NEAR(t, 5.0f, 1e-4f);

    // Back-face hits too (no culling in the traverser).
    Ray back = makeRay({0.2f, 0.2f, -5.0f}, {0.0f, 0.0f, 1.0f});
    ASSERT_TRUE(tri.intersect(back, t));
    EXPECT_NEAR(t, 5.0f, 1e-4f);
}

TEST(Triangle, MissOutsideBarycentric)
{
    Triangle tri{{0.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f},
                 0};
    float t = 0.0f;
    Ray miss = makeRay({0.9f, 0.9f, 5.0f}, {0.0f, 0.0f, -1.0f});
    EXPECT_FALSE(tri.intersect(miss, t));
    Ray outside = makeRay({-0.5f, 0.2f, 5.0f}, {0.0f, 0.0f, -1.0f});
    EXPECT_FALSE(tri.intersect(outside, t));
}

TEST(Triangle, ParallelRayMisses)
{
    Triangle tri{{0.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f},
                 0};
    Ray parallel = makeRay({0.0f, 0.0f, 1.0f}, {1.0f, 0.0f, 0.0f});
    float t = 0.0f;
    EXPECT_FALSE(tri.intersect(parallel, t));
}

TEST(Triangle, RespectsTMinTMax)
{
    Triangle tri{{0.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f},
                 0};
    Ray ray = makeRay({0.2f, 0.2f, 5.0f}, {0.0f, 0.0f, -1.0f});
    ray.tMax = 3.0f; // hit at t=5 is beyond
    float t = 0.0f;
    EXPECT_FALSE(tri.intersect(ray, t));
    ray.tMax = 100.0f;
    ray.tMin = 6.0f; // hit at t=5 is before tMin
    EXPECT_FALSE(tri.intersect(ray, t));
}

TEST(Triangle, BoundsContainVertices)
{
    Triangle tri{{-1.0f, 2.0f, 0.5f}, {3.0f, -2.0f, 1.0f},
                 {0.0f, 1.0f, -4.0f}, 0};
    Aabb box = tri.bounds();
    EXPECT_TRUE(box.contains(tri.v0));
    EXPECT_TRUE(box.contains(tri.v1));
    EXPECT_TRUE(box.contains(tri.v2));
    EXPECT_TRUE(box.contains(tri.centroid()));
}

} // namespace
} // namespace zatel::rt
