/**
 * @file
 * Tests for the memory partition and device-level memory system.
 */

#include <gtest/gtest.h>

#include "gpusim/address_map.hh"
#include "gpusim/mem_partition.hh"
#include "gpusim/memory_system.hh"

namespace zatel::gpusim
{
namespace
{

GpuConfig
smallConfig()
{
    GpuConfig config = GpuConfig::mobileSoc();
    config.numSms = 2;
    config.numMemPartitions = 2;
    config.nocLatencyCycles = 4;
    config.l2LatencyCycles = 8;
    config.dramLatencyCycles = 16;
    return config;
}

/** Run the system until the fill for @p sm arrives; returns the cycle. */
int64_t
cyclesUntilFill(MemorySystem &memory, uint32_t sm, uint64_t max_cycles)
{
    for (uint64_t cycle = 0; cycle < max_cycles; ++cycle) {
        memory.tick(cycle);
        if (!memory.drainFills(sm, cycle).empty())
            return static_cast<int64_t>(cycle);
    }
    return -1;
}

TEST(MemorySystem, ReadEventuallyFills)
{
    GpuConfig config = smallConfig();
    MemorySystem memory(config);
    memory.sendRead(0, 0x1000, 0);
    int64_t arrival = cyclesUntilFill(memory, 0, 10000);
    ASSERT_GE(arrival, 0);
    // Must at least pay NoC (x2) + L2 + DRAM latency + burst.
    EXPECT_GE(arrival,
              2 * config.nocLatencyCycles + config.dramLatencyCycles);
    EXPECT_TRUE(memory.idle());
}

TEST(MemorySystem, L2HitFasterThanMiss)
{
    GpuConfig config = smallConfig();
    MemorySystem memory(config);

    memory.sendRead(0, 0x1000, 0);
    int64_t miss_arrival = cyclesUntilFill(memory, 0, 10000);
    ASSERT_GE(miss_arrival, 0);

    // Same line again: now an L2 hit.
    uint64_t start = static_cast<uint64_t>(miss_arrival) + 1;
    memory.sendRead(0, 0x1000, start);
    int64_t hit_arrival = -1;
    for (uint64_t cycle = start; cycle < start + 10000; ++cycle) {
        memory.tick(cycle);
        if (!memory.drainFills(0, cycle).empty()) {
            hit_arrival = static_cast<int64_t>(cycle - start);
            break;
        }
    }
    ASSERT_GE(hit_arrival, 0);
    EXPECT_LT(hit_arrival, miss_arrival);
}

TEST(MemorySystem, FillsRouteToRequestingSm)
{
    GpuConfig config = smallConfig();
    MemorySystem memory(config);
    memory.sendRead(1, 0x2000, 0);
    for (uint64_t cycle = 0; cycle < 10000; ++cycle) {
        memory.tick(cycle);
        EXPECT_TRUE(memory.drainFills(0, cycle).empty());
        const auto &fills = memory.drainFills(1, cycle);
        if (!fills.empty()) {
            EXPECT_EQ(fills[0], 0x2000u);
            return;
        }
    }
    FAIL() << "fill never arrived";
}

TEST(MemorySystem, LinesRouteToInterleavedPartitions)
{
    GpuConfig config = smallConfig();
    MemorySystem memory(config);
    // Two consecutive lines -> two different partitions.
    memory.sendRead(0, 0 * 128, 0);
    memory.sendRead(0, 1 * 128, 0);
    // Tick until idle and confirm each partition saw exactly one access.
    for (uint64_t cycle = 0; cycle < 10000 && !memory.idle(); ++cycle) {
        memory.tick(cycle);
        memory.drainFills(0, cycle);
    }
    EXPECT_EQ(memory.partition(0).l2().stats().accesses, 1u);
    EXPECT_EQ(memory.partition(1).l2().stats().accesses, 1u);
}

TEST(MemorySystem, SharedLineMergesInL2Mshr)
{
    GpuConfig config = smallConfig();
    MemorySystem memory(config);
    // Both SMs want the same line at once.
    memory.sendRead(0, 0x4000, 0);
    memory.sendRead(1, 0x4000, 0);

    bool sm0 = false, sm1 = false;
    for (uint64_t cycle = 0; cycle < 10000 && !(sm0 && sm1); ++cycle) {
        memory.tick(cycle);
        sm0 |= !memory.drainFills(0, cycle).empty();
        sm1 |= !memory.drainFills(1, cycle).empty();
    }
    EXPECT_TRUE(sm0);
    EXPECT_TRUE(sm1);
    // Only one DRAM read was issued for the shared line.
    uint64_t total_reads = 0;
    for (uint32_t p = 0; p < memory.numPartitions(); ++p)
        total_reads += memory.partition(p).dram().stats().reads;
    EXPECT_EQ(total_reads, 1u);
}

TEST(MemorySystem, WritesReachL2AndDirtyEvictionsReachDram)
{
    GpuConfig config = smallConfig();
    // Shrink the L2 slice to 2 lines so dirty evictions happen fast.
    config.l2TotalBytes = 2ull * 2 * 128;
    MemorySystem memory(config);

    // Write many distinct lines into partition 0 (stride = 2 lines).
    for (uint64_t i = 0; i < 8; ++i)
        memory.sendWrite(0, i * 2 * 128, i);
    for (uint64_t cycle = 0; cycle < 10000 && !memory.idle(); ++cycle) {
        memory.tick(cycle);
        memory.drainFills(0, cycle);
    }
    EXPECT_GT(memory.partition(0).dram().stats().writes, 0u);
}

TEST(MemorySystem, StatsAccumulate)
{
    GpuConfig config = smallConfig();
    MemorySystem memory(config);
    memory.sendRead(0, 0x1000, 0);
    for (uint64_t cycle = 0; cycle < 10000 && !memory.idle(); ++cycle) {
        memory.tick(cycle);
        memory.drainFills(0, cycle);
    }
    GpuStats stats;
    stats.cycles = 500;
    memory.accumulateStats(stats);
    EXPECT_EQ(stats.l2Accesses, 1u);
    EXPECT_EQ(stats.l2Misses, 1u);
    EXPECT_GT(stats.dramBusyCycles, 0u);
    EXPECT_EQ(stats.dramChannelCycles, 500u * config.numMemPartitions);
}

TEST(MemPartition, IdleWhenConstructed)
{
    GpuConfig config = smallConfig();
    MemPartition partition(config, 0);
    EXPECT_TRUE(partition.idle());
}

} // namespace
} // namespace zatel::gpusim
