/**
 * @file
 * Tests for cross-group combination (paper Section III-H).
 */

#include <gtest/gtest.h>

#include "zatel/combine.hh"

namespace zatel::core
{
namespace
{

using gpusim::Metric;

TEST(Combine, PaperExampleIpcSums)
{
    // Section III-H: group IPCs 20 and 50 -> 70 total.
    EXPECT_DOUBLE_EQ(combineMetric(Metric::Ipc, {20.0, 50.0}), 70.0);
}

TEST(Combine, PaperExampleMissRateAverages)
{
    // Section III-H: L1D miss rates 0.70 and 0.60 -> 0.65.
    EXPECT_DOUBLE_EQ(combineMetric(Metric::L1dMissRate, {0.70, 0.60}),
                     0.65);
}

TEST(Combine, RulesPerMetric)
{
    EXPECT_EQ(combineRuleFor(Metric::Ipc), CombineRule::Sum);
    for (Metric metric : {Metric::SimCycles, Metric::L1dMissRate,
                          Metric::L2MissRate, Metric::RtEfficiency,
                          Metric::DramEfficiency, Metric::BwUtilization}) {
        EXPECT_EQ(combineRuleFor(metric), CombineRule::Average);
    }
}

TEST(Combine, SingleGroupIdentity)
{
    for (Metric metric : gpusim::allMetrics())
        EXPECT_DOUBLE_EQ(combineMetric(metric, {3.25}), 3.25);
}

TEST(Combine, CyclesAverageOverGroups)
{
    EXPECT_DOUBLE_EQ(
        combineMetric(Metric::SimCycles, {100.0, 120.0, 80.0, 100.0}),
        100.0);
}

} // namespace
} // namespace zatel::core
