/**
 * @file
 * Tests for the prediction-vs-oracle comparison helpers.
 */

#include <gtest/gtest.h>

#include "zatel/evaluation.hh"

namespace zatel::core
{
namespace
{

using gpusim::GpuStats;
using gpusim::Metric;

GpuStats
referenceStats()
{
    GpuStats stats;
    stats.cycles = 1000;
    stats.threadInstructions = 5000;
    stats.l1dAccesses = 100;
    stats.l1dMisses = 20;
    stats.l2Accesses = 50;
    stats.l2Misses = 25;
    stats.rtActiveRaySum = 160;
    stats.rtResidentWarpCycles = 10;
    stats.dramBusyCycles = 30;
    stats.dramActiveCycles = 60;
    stats.dramChannelCycles = 4000;
    return stats;
}

std::map<Metric, double>
exactPrediction(const GpuStats &stats)
{
    std::map<Metric, double> predicted;
    for (Metric metric : gpusim::allMetrics())
        predicted[metric] = stats.metricValue(metric);
    return predicted;
}

TEST(Evaluation, PerfectPredictionHasZeroError)
{
    GpuStats oracle = referenceStats();
    auto rows = compareToOracle(exactPrediction(oracle), oracle);
    ASSERT_EQ(rows.size(), gpusim::allMetrics().size());
    for (const ComparisonRow &row : rows)
        EXPECT_DOUBLE_EQ(row.errorPct, 0.0);
    EXPECT_DOUBLE_EQ(maeOf(rows), 0.0);
}

TEST(Evaluation, ErrorComputedPerMetric)
{
    GpuStats oracle = referenceStats();
    auto predicted = exactPrediction(oracle);
    predicted[Metric::SimCycles] = 1100.0; // +10%
    auto rows = compareToOracle(predicted, oracle);
    EXPECT_NEAR(errorOf(rows, Metric::SimCycles), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(errorOf(rows, Metric::Ipc), 0.0);
    EXPECT_NEAR(maeOf(rows), 10.0 / rows.size(), 1e-9);
}

TEST(Evaluation, TableRendersMetricsAndMae)
{
    GpuStats oracle = referenceStats();
    auto rows = compareToOracle(exactPrediction(oracle), oracle);
    std::string table = comparisonTable(rows, "Title");
    EXPECT_NE(table.find("Title"), std::string::npos);
    EXPECT_NE(table.find("GPU IPC"), std::string::npos);
    EXPECT_NE(table.find("MAE"), std::string::npos);
}

TEST(Evaluation, StatsDerivedMetricsMatchHand)
{
    GpuStats stats = referenceStats();
    EXPECT_DOUBLE_EQ(stats.ipc(), 5.0);
    EXPECT_DOUBLE_EQ(stats.l1dMissRate(), 0.2);
    EXPECT_DOUBLE_EQ(stats.l2MissRate(), 0.5);
    EXPECT_DOUBLE_EQ(stats.rtEfficiency(), 16.0);
    EXPECT_DOUBLE_EQ(stats.dramEfficiency(), 0.5);
    EXPECT_DOUBLE_EQ(stats.bwUtilization(), 30.0 / 4000.0);
}

TEST(Evaluation, StatsAccumulateTakesMaxCycles)
{
    GpuStats a = referenceStats();
    GpuStats b = referenceStats();
    b.cycles = 2000;
    a += b;
    EXPECT_EQ(a.cycles, 2000u);
    EXPECT_EQ(a.threadInstructions, 10000u);
}

TEST(Evaluation, MetricNamesDistinct)
{
    std::set<std::string> names;
    for (Metric metric : gpusim::allMetrics())
        names.insert(gpusim::metricName(metric));
    EXPECT_EQ(names.size(), gpusim::allMetrics().size());
}

} // namespace
} // namespace zatel::core
