/**
 * @file
 * Unit tests for the deterministic fault-injection framework
 * (src/util/fault_injection.*, docs/ROBUSTNESS.md): policy parsing
 * round trips, registry arm/disarm semantics, the exactly-once Nth
 * policy under thread races, keyed-probability determinism (the
 * property that keeps degraded predictions byte-identical between
 * thread counts), typo protection in configure(), hit/fire counters
 * and the deterministic retry backoff schedule.
 *
 * End-to-end behaviour of the armed sites (a campaign surviving every
 * catalog fault) lives in tests/test_resilience.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/fault_injection.hh"

namespace zatel
{
namespace
{

// ---------------------------------------------------------------------
// FaultPolicy parsing
// ---------------------------------------------------------------------

TEST(FaultInjectionPolicy, ParseRoundTripsCanonicalSpellings)
{
    for (const std::string text :
         {"never", "always", "nth:1", "nth:3", "prob:0.25",
          "prob:0.5:7"}) {
        const FaultPolicy policy = FaultPolicy::parse(text);
        // toString() must parse back to an equivalent policy.
        const FaultPolicy again = FaultPolicy::parse(policy.toString());
        EXPECT_EQ(policy.kind, again.kind) << text;
        EXPECT_EQ(policy.nth, again.nth) << text;
        EXPECT_EQ(policy.probability, again.probability) << text;
        EXPECT_EQ(policy.seed, again.seed) << text;
    }
}

TEST(FaultInjectionPolicy, ParseFieldsAreExact)
{
    EXPECT_FALSE(FaultPolicy::parse("never").armed());
    EXPECT_TRUE(FaultPolicy::parse("always").armed());

    const FaultPolicy nth = FaultPolicy::parse("nth:3");
    EXPECT_EQ(nth.kind, FaultPolicy::Kind::Nth);
    EXPECT_EQ(nth.nth, 3u);

    const FaultPolicy prob = FaultPolicy::parse("prob:0.5:7");
    EXPECT_EQ(prob.kind, FaultPolicy::Kind::Probability);
    EXPECT_DOUBLE_EQ(prob.probability, 0.5);
    EXPECT_EQ(prob.seed, 7u);

    // Seed defaults to 0 when omitted.
    EXPECT_EQ(FaultPolicy::parse("prob:1").seed, 0u);
}

TEST(FaultInjectionPolicy, ParseRejectsMalformedSpecs)
{
    for (const std::string bad :
         {"", "sometimes", "nth", "nth:", "nth:0", "nth:abc", "prob",
          "prob:", "prob:1.5", "prob:-0.1", "prob:x", "prob:0.5:zz",
          "always:1"}) {
        EXPECT_THROW(FaultPolicy::parse(bad), std::invalid_argument)
            << "'" << bad << "' should not parse";
    }
}

// ---------------------------------------------------------------------
// Private-registry behaviour (no global state involved)
// ---------------------------------------------------------------------

TEST(FaultInjectionRegistry, CatalogIsPreRegisteredAndDisarmed)
{
    FaultRegistry registry;
    EXPECT_FALSE(registry.anyArmed());
    const std::vector<std::string> names = registry.siteNames();
    for (const std::string &known : FaultRegistry::knownSiteNames()) {
        EXPECT_NE(std::find(names.begin(), names.end(), known),
                  names.end())
            << known << " missing from a fresh registry";
    }
}

TEST(FaultInjectionRegistry, SitePointersAreStableAcrossRegistrations)
{
    FaultRegistry registry;
    FaultSite *first = registry.site("test.pointer.stability");
    // Registering many more sites must not invalidate the pointer.
    for (int i = 0; i < 64; ++i)
        registry.site("test.filler." + std::to_string(i));
    EXPECT_EQ(first, registry.site("test.pointer.stability"));
    EXPECT_EQ(first->name(), "test.pointer.stability");
}

TEST(FaultInjectionRegistry, SetPolicyArmsAndDisarmAllClears)
{
    FaultRegistry registry;
    FaultSite *site = registry.site("test.arm");
    EXPECT_FALSE(site->shouldFire());

    registry.setPolicy("test.arm", FaultPolicy::always());
    EXPECT_TRUE(registry.anyArmed());
    EXPECT_TRUE(site->shouldFire());

    registry.disarmAll();
    EXPECT_FALSE(registry.anyArmed());
    EXPECT_FALSE(site->shouldFire());
}

TEST(FaultInjectionRegistry, ConfigureArmsEveryEntry)
{
    FaultRegistry registry;
    registry.configure("cache.disk.write=always,group.sim=nth:2");
    EXPECT_TRUE(registry.anyArmed());
    EXPECT_EQ(registry.site("cache.disk.write")->policy().kind,
              FaultPolicy::Kind::Always);
    EXPECT_EQ(registry.site("group.sim")->policy().kind,
              FaultPolicy::Kind::Nth);
    EXPECT_EQ(registry.site("group.sim")->policy().nth, 2u);

    // Semicolons are accepted as separators too.
    FaultRegistry semi;
    semi.configure("oracle.run=always;heatmap.build=prob:0.5:3");
    EXPECT_TRUE(semi.site("oracle.run")->policy().armed());
    EXPECT_TRUE(semi.site("heatmap.build")->policy().armed());
}

TEST(FaultInjectionRegistry, ConfigureRejectsTyposWithoutArmingAnything)
{
    FaultRegistry registry;
    // The first entry is valid; the typo'd second entry must reject the
    // whole spec (all-or-nothing): a typo is loud, never a partially
    // applied fault plan.
    EXPECT_THROW(
        registry.configure("cache.disk.write=always,grp.sim=always"),
        std::invalid_argument);
    EXPECT_FALSE(registry.anyArmed());
    EXPECT_FALSE(registry.site("cache.disk.write")->policy().armed());

    EXPECT_THROW(registry.configure("cache.disk.write"),
                 std::invalid_argument);
    EXPECT_THROW(registry.configure("=always"), std::invalid_argument);
    EXPECT_THROW(registry.configure("cache.disk.write="),
                 std::invalid_argument);
    EXPECT_THROW(registry.configure("cache.disk.write=bogus"),
                 std::invalid_argument);
}

TEST(FaultInjectionRegistry, NthFiresExactlyOnceAcrossRacingThreads)
{
    FaultRegistry registry;
    registry.setPolicy("test.nth.race", FaultPolicy::nthHit(100));
    FaultSite *site = registry.site("test.nth.race");

    constexpr int kThreads = 8;
    constexpr int kPerThread = 200; // 1600 evaluations >> nth=100
    std::atomic<int> fired{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                if (site->shouldFire())
                    fired.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(fired.load(), 1)
        << "nth:N models ONE transient fault; it must never fire twice";
    EXPECT_EQ(site->fires(), 1u);
    EXPECT_EQ(site->hits(),
              static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(FaultInjectionRegistry, KeyedProbabilityIsAPureFunctionOfItsInputs)
{
    FaultRegistry registry;
    registry.setPolicy("test.prob.keyed",
                       FaultPolicy::withProbability(0.4, 42));
    FaultSite *site = registry.site("test.prob.keyed");

    // First sweep records the failing subset.
    std::set<uint64_t> failing;
    for (uint64_t key = 0; key < 256; ++key) {
        if (site->shouldFire(key))
            failing.insert(key);
    }
    // The subset is neither empty nor everything at p=0.4 over 256 keys
    // (each would indicate a broken hash, not bad luck).
    EXPECT_GT(failing.size(), 0u);
    EXPECT_LT(failing.size(), 256u);

    // Sweeping again — including in reverse order and from another
    // thread — yields the identical subset: outcome depends only on
    // (seed, site, key), never on evaluation order or thread identity.
    std::set<uint64_t> again;
    std::thread other([&] {
        for (uint64_t key = 256; key-- > 0;) {
            if (site->shouldFire(key))
                again.insert(key);
        }
    });
    other.join();
    EXPECT_EQ(failing, again);

    // A different seed selects a different subset (streams are
    // independent).
    registry.setPolicy("test.prob.keyed",
                       FaultPolicy::withProbability(0.4, 43));
    std::set<uint64_t> other_seed;
    for (uint64_t key = 0; key < 256; ++key) {
        if (site->shouldFire(key))
            other_seed.insert(key);
    }
    EXPECT_NE(failing, other_seed);

    // Probability extremes behave as documented.
    registry.setPolicy("test.prob.keyed",
                       FaultPolicy::withProbability(0.0, 42));
    EXPECT_FALSE(site->shouldFire(7));
    registry.setPolicy("test.prob.keyed",
                       FaultPolicy::withProbability(1.0, 42));
    EXPECT_TRUE(site->shouldFire(7));
}

TEST(FaultInjectionRegistry, DifferentSitesFailDifferentSubsets)
{
    // The site name participates in the hash: two sites armed with the
    // same prob policy must not fail the same keys in lockstep.
    FaultRegistry registry;
    registry.setPolicy("test.prob.a", FaultPolicy::withProbability(0.4, 9));
    registry.setPolicy("test.prob.b", FaultPolicy::withProbability(0.4, 9));
    std::set<uint64_t> a, b;
    for (uint64_t key = 0; key < 256; ++key) {
        if (registry.site("test.prob.a")->shouldFire(key))
            a.insert(key);
        if (registry.site("test.prob.b")->shouldFire(key))
            b.insert(key);
    }
    EXPECT_NE(a, b);
}

TEST(FaultInjectionRegistry, ResetForTestRestoresPristineState)
{
    FaultRegistry registry;
    registry.setPolicy("test.reset", FaultPolicy::always());
    FaultSite *site = registry.site("test.reset");
    EXPECT_TRUE(site->shouldFire());
    EXPECT_GT(site->hits(), 0u);
    EXPECT_GT(site->fires(), 0u);

    registry.resetForTest();
    EXPECT_FALSE(registry.anyArmed());
    EXPECT_FALSE(site->policy().armed());
    EXPECT_EQ(site->hits(), 0u);
    EXPECT_EQ(site->fires(), 0u);
}

TEST(FaultInjectionRegistry, DisarmedProbesCountNothing)
{
    // hits() counts probe evaluations "while any fault was armed":
    // with nothing armed the fast path must not touch the counters.
    FaultRegistry registry;
    FaultSite *site = registry.site("test.disarmed");
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(site->shouldFire(static_cast<uint64_t>(i)));
    EXPECT_EQ(site->hits(), 0u);
    EXPECT_EQ(site->fires(), 0u);
}

// ---------------------------------------------------------------------
// Global-registry macros
// ---------------------------------------------------------------------

/** Arms sites in the PROCESS-WIDE registry; always restores pristine
 *  state so no other test inherits an armed fault plan. */
class FaultInjectionGlobal : public testing::Test
{
  protected:
    void SetUp() override { FaultRegistry::global().resetForTest(); }
    void TearDown() override { FaultRegistry::global().resetForTest(); }
};

TEST_F(FaultInjectionGlobal, InjectMacroThrowsTypedErrorWhenArmed)
{
    ZATEL_INJECT_FAULT("test.macro.site"); // disarmed: no-op

    FaultRegistry::global().setPolicy("test.macro.site",
                                      FaultPolicy::always());
    try {
        ZATEL_INJECT_FAULT("test.macro.site");
        FAIL() << "armed probe did not throw";
    } catch (const FaultInjectedError &error) {
        EXPECT_EQ(error.site(), "test.macro.site");
        EXPECT_NE(std::string(error.what()).find("test.macro.site"),
                  std::string::npos);
    }
}

TEST_F(FaultInjectionGlobal, KeyedMacroRespectsTheKey)
{
    FaultRegistry::global().setPolicy("test.macro.keyed",
                                      FaultPolicy::withProbability(0.5, 11));
    std::set<uint64_t> failing;
    for (uint64_t key = 0; key < 64; ++key) {
        try {
            ZATEL_INJECT_FAULT_KEYED("test.macro.keyed", key);
        } catch (const FaultInjectedError &) {
            failing.insert(key);
        }
    }
    EXPECT_GT(failing.size(), 0u);
    EXPECT_LT(failing.size(), 64u);
    // Re-sweeping reproduces the subset exactly.
    for (uint64_t key = 0; key < 64; ++key) {
        bool fired = false;
        try {
            ZATEL_INJECT_FAULT_KEYED("test.macro.keyed", key);
        } catch (const FaultInjectedError &) {
            fired = true;
        }
        EXPECT_EQ(fired, failing.count(key) == 1) << "key " << key;
    }
}

// ---------------------------------------------------------------------
// Retry backoff schedule
// ---------------------------------------------------------------------

TEST(FaultInjectionBackoff, ScheduleIsDeterministicDoublingWithCap)
{
    EXPECT_EQ(retryBackoffMicros(1), 1000u);
    EXPECT_EQ(retryBackoffMicros(2), 2000u);
    EXPECT_EQ(retryBackoffMicros(3), 4000u);
    EXPECT_EQ(retryBackoffMicros(4), 8000u);
    EXPECT_EQ(retryBackoffMicros(5), 16000u);
    // Capped: huge attempt numbers must not overflow the shift.
    EXPECT_EQ(retryBackoffMicros(6), 16000u);
    EXPECT_EQ(retryBackoffMicros(100), 16000u);
}

} // namespace
} // namespace zatel
