/**
 * @file
 * Integration tests for the full cycle-level GPU simulator.
 */

#include <gtest/gtest.h>

#include "gpusim/gpu.hh"
#include "rt/bvh.hh"
#include "rt/mesh.hh"
#include "rt/scene.hh"
#include "rt/scene_library.hh"
#include "rt/tracer.hh"

namespace zatel::gpusim
{
namespace
{

struct GpuFixture : public testing::Test
{
    void
    SetUp() override
    {
        scene = rt::buildScene(rt::SceneId::Wknd, rt::SceneDetail{0.5f});
        bvh.build(scene.triangles());
        tracer = std::make_unique<rt::Tracer>(scene, bvh);
    }

    rt::Scene scene;
    rt::Bvh bvh;
    std::unique_ptr<rt::Tracer> tracer;
};

TEST_F(GpuFixture, TerminatesAndReportsAllMetrics)
{
    GpuStats stats =
        simulateFullFrame(GpuConfig::mobileSoc(), *tracer, 32, 32);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.threadInstructions, 0u);
    EXPECT_GT(stats.ipc(), 0.0);
    EXPECT_GT(stats.l1dAccesses, 0u);
    EXPECT_LE(stats.l1dMisses, stats.l1dAccesses);
    EXPECT_LE(stats.l2Misses, stats.l2Accesses);
    EXPECT_GT(stats.rtNodeVisits, 0u);
    EXPECT_GE(stats.rtEfficiency(), 0.0);
    EXPECT_LE(stats.rtEfficiency(), 32.0);
    EXPECT_GE(stats.dramEfficiency(), 0.0);
    EXPECT_LE(stats.dramEfficiency(), 1.0);
    EXPECT_GE(stats.bwUtilization(), 0.0);
    EXPECT_LE(stats.bwUtilization(), 1.0);
    EXPECT_LE(stats.bwUtilization(), stats.dramEfficiency() + 1e-12);
    EXPECT_EQ(stats.pixelsTraced, 32u * 32u);
    EXPECT_EQ(stats.pixelsFiltered, 0u);
}

TEST_F(GpuFixture, TimedVisitsMatchFunctionalTracer)
{
    // The timed simulator replays the functional traversal exactly, so
    // total node visits must equal the functional per-pixel sum.
    rt::RenderResult render = tracer->render(24, 24);
    uint64_t functional_visits = 0;
    uint64_t functional_tests = 0;
    for (const rt::PixelProfile &profile : render.profiles) {
        functional_visits += profile.nodesVisited;
        functional_tests += profile.triangleTests;
    }

    GpuStats stats =
        simulateFullFrame(GpuConfig::mobileSoc(), *tracer, 24, 24);
    EXPECT_EQ(stats.rtNodeVisits, functional_visits);
    EXPECT_EQ(stats.rtTriangleTests, functional_tests);
    EXPECT_EQ(stats.raysTraced, [&render] {
        uint64_t rays = 0;
        for (const rt::PixelProfile &p : render.profiles)
            rays += p.raysCast;
        return rays;
    }());
}

TEST_F(GpuFixture, Deterministic)
{
    GpuConfig config = GpuConfig::mobileSoc();
    SimWorkload w1 = SimWorkload::buildFullFrame(*tracer, 24, 24);
    SimWorkload w2 = SimWorkload::buildFullFrame(*tracer, 24, 24);
    GpuStats a = Gpu(config, w1).run();
    GpuStats b = Gpu(config, w2).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.threadInstructions, b.threadInstructions);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dramBusyCycles, b.dramBusyCycles);
}

TEST_F(GpuFixture, MoreSmsFinishFaster)
{
    GpuConfig small = GpuConfig::mobileSoc();
    small.numSms = 2;
    small.numMemPartitions = 2;
    GpuConfig big = GpuConfig::mobileSoc();
    big.numSms = 8;
    big.numMemPartitions = 4;

    GpuStats s = simulateFullFrame(small, *tracer, 32, 32);
    GpuStats b = simulateFullFrame(big, *tracer, 32, 32);
    EXPECT_LT(b.cycles, s.cycles);
}

TEST_F(GpuFixture, FilteringReducesWork)
{
    std::vector<PixelCoord> pixels;
    for (uint32_t y = 0; y < 32; ++y)
        for (uint32_t x = 0; x < 32; ++x)
            pixels.push_back({x, y});

    // Zatel filters whole section blocks, so entire warps drop out:
    // filter the second half of the launch order.
    std::vector<bool> half(pixels.size());
    for (size_t i = 0; i < half.size(); ++i)
        half[i] = i < pixels.size() / 2;

    // Use a small GPU so the workload is throughput-bound (many warps
    // per SM); on an under-utilized GPU cycles are latency-bound and
    // filtering cannot shorten the critical path.
    GpuConfig config = GpuConfig::mobileSoc();
    config.numSms = 2;
    config.numMemPartitions = 2;
    SimWorkload full = SimWorkload::build(*tracer, 32, 32, pixels);
    SimWorkload filtered =
        SimWorkload::build(*tracer, 32, 32, pixels, &half);

    GpuStats full_stats = Gpu(config, full).run();
    GpuStats filtered_stats = Gpu(config, filtered).run();

    EXPECT_LT(filtered_stats.rtNodeVisits, full_stats.rtNodeVisits);
    EXPECT_LT(filtered_stats.cycles, full_stats.cycles);
    EXPECT_EQ(filtered_stats.pixelsFiltered, pixels.size() / 2);
    // Filtered threads still launch: same warp count.
    EXPECT_EQ(filtered_stats.warpsLaunched, full_stats.warpsLaunched);
}

TEST_F(GpuFixture, EmptySelectionStillTerminates)
{
    std::vector<PixelCoord> pixels;
    for (uint32_t i = 0; i < 64; ++i)
        pixels.push_back({i % 8, i / 8});
    std::vector<bool> none(pixels.size(), false);
    SimWorkload workload =
        SimWorkload::build(*tracer, 8, 8, pixels, &none);
    GpuStats stats = Gpu(GpuConfig::mobileSoc(), workload).run();
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.rtNodeVisits, 0u);
    EXPECT_EQ(stats.pixelsFiltered, 64u);
}

TEST_F(GpuFixture, SingleWarpWorkload)
{
    std::vector<PixelCoord> pixels;
    for (uint32_t i = 0; i < 7; ++i)
        pixels.push_back({i, 0});
    SimWorkload workload = SimWorkload::build(*tracer, 8, 8, pixels);
    GpuStats stats = Gpu(GpuConfig::mobileSoc(), workload).run();
    EXPECT_EQ(stats.warpsLaunched, 1u);
    EXPECT_GT(stats.cycles, 0u);
}

TEST_F(GpuFixture, DownscaledConfigRuns)
{
    GpuConfig config = GpuConfig::mobileSoc();
    config.numSms = 2;
    config.numMemPartitions = 1;
    config.l2TotalBytes = config.l2TotalBytes / 4;
    GpuStats stats = simulateFullFrame(config, *tracer, 24, 24);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.ipc(), 0.0);
}

TEST_F(GpuFixture, InstructionAccountingConsistent)
{
    GpuStats stats =
        simulateFullFrame(GpuConfig::mobileSoc(), *tracer, 24, 24);
    // Thread instructions include both SIMT work (bounded by warp insts x
    // warp size) and RT node visits.
    EXPECT_GE(stats.threadInstructions, stats.rtNodeVisits);
    EXPECT_LE(stats.threadInstructions,
              stats.warpInstructions * 32 + stats.rtNodeVisits);
}

TEST(GpuEdge, TinyGpuOnTinyWorkload)
{
    rt::Scene scene("tiny");
    scene.setCamera(rt::Camera({0.0f, 0.0f, 3.0f}, {0.0f, 0.0f, 0.0f},
                               {0.0f, 1.0f, 0.0f}, 45.0f));
    scene.setLight({{2.0f, 2.0f, 2.0f}, {1.0f, 1.0f, 1.0f}});
    uint16_t mat = scene.addMaterial(rt::Material::diffuse({0.5f, 0.5f,
                                                            0.5f}));
    rt::MeshBuilder mesh;
    mesh.addBox({-0.5f, -0.5f, -0.5f}, {0.5f, 0.5f, 0.5f}, mat);
    scene.addTriangles(mesh.takeTriangles());
    rt::Bvh bvh;
    bvh.build(scene.triangles());
    rt::Tracer tracer(scene, bvh);

    GpuConfig config = GpuConfig::mobileSoc();
    config.numSms = 1;
    config.numMemPartitions = 1;
    config.l2TotalBytes = 256 * 1024;
    GpuStats stats = simulateFullFrame(config, tracer, 4, 4);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.pixelsTraced, 16u);
}

} // namespace
} // namespace zatel::gpusim
