/**
 * @file
 * Units for the serve layer's protocol pieces (docs/SERVING.md):
 *
 *  - HttpParser: incremental parsing under short reads (byte-at-a-time
 *    feeds), every rejection path with its precise status code
 *    (400/413/431/501/505), header normalization, size limits.
 *  - httpResponse: framing (status line, Content-Length, close).
 *  - FairQueue: bounded admission, per-client round-robin order,
 *    stop() drain semantics.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/fair_queue.hh"
#include "serve/http.hh"

namespace zatel::serve
{
namespace
{

HttpParser::Status
feedAll(HttpParser &parser, const std::string &bytes)
{
    return parser.feed(bytes.data(), bytes.size());
}

/** Feed one byte at a time: the worst-case short-read pattern. */
HttpParser::Status
feedByByte(HttpParser &parser, const std::string &bytes)
{
    HttpParser::Status status = parser.status();
    for (char c : bytes)
        status = parser.feed(&c, 1);
    return status;
}

TEST(HttpParser, ParsesSimpleGetInOneFeed)
{
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, "GET /healthz HTTP/1.1\r\n"
                              "Host: localhost\r\n\r\n"),
              HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().method, "GET");
    EXPECT_EQ(parser.request().target, "/healthz");
    EXPECT_EQ(parser.request().version, "HTTP/1.1");
    EXPECT_EQ(parser.request().header("host"), "localhost");
    EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParser, ParsesPostBodyAcrossByteSizedFeeds)
{
    const std::string body = "{\"scene\":\"PARK\"}";
    const std::string raw = "POST /predict HTTP/1.1\r\n"
                            "Content-Type: application/json\r\n"
                            "Content-Length: " +
                            std::to_string(body.size()) + "\r\n\r\n" +
                            body;
    HttpParser parser;
    ASSERT_EQ(feedByByte(parser, raw), HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().method, "POST");
    EXPECT_EQ(parser.request().body, body);
    EXPECT_EQ(parser.request().header("content-type"),
              "application/json");
}

TEST(HttpParser, NeedsMoreUntilBodyArrives)
{
    HttpParser parser;
    EXPECT_EQ(feedAll(parser, "POST /predict HTTP/1.1\r\n"
                              "Content-Length: 4\r\n\r\n"),
              HttpParser::Status::NeedMore);
    EXPECT_EQ(feedAll(parser, "ab"), HttpParser::Status::NeedMore);
    EXPECT_EQ(feedAll(parser, "cd"), HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpParser, HeaderNamesAreCaseInsensitive)
{
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, "GET / HTTP/1.1\r\n"
                              "X-ReQuEsT-Id: abc\r\n\r\n"),
              HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().header("x-request-id"), "abc");
    // Absent headers come back as the empty string, not a throw.
    EXPECT_EQ(parser.request().header("missing"), "");
}

TEST(HttpParser, MalformedRequestLineIs400)
{
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, "NONSENSE\r\n\r\n"),
              HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpParser, MissingHeaderColonIs400)
{
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, "GET / HTTP/1.1\r\n"
                              "BadHeaderNoColon\r\n\r\n"),
              HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpParser, NonNumericContentLengthIs400)
{
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, "POST / HTTP/1.1\r\n"
                              "Content-Length: abc\r\n\r\n"),
              HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpParser, NegativeContentLengthIs400)
{
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, "POST / HTTP/1.1\r\n"
                              "Content-Length: -5\r\n\r\n"),
              HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpParser, OversizedBodyIs413)
{
    HttpLimits limits;
    limits.maxBodyBytes = 16;
    HttpParser parser(limits);
    ASSERT_EQ(feedAll(parser, "POST / HTTP/1.1\r\n"
                              "Content-Length: 17\r\n\r\n"),
              HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 413);
}

TEST(HttpParser, OversizedHeadersAre431)
{
    HttpLimits limits;
    limits.maxHeaderBytes = 64;
    HttpParser parser(limits);
    const std::string raw = "GET / HTTP/1.1\r\nX-Pad: " +
                            std::string(128, 'x') + "\r\n\r\n";
    ASSERT_EQ(feedAll(parser, raw), HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParser, TransferEncodingIs501)
{
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, "POST / HTTP/1.1\r\n"
                              "Transfer-Encoding: chunked\r\n\r\n"),
              HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 501);
}

TEST(HttpParser, UnsupportedVersionIs505)
{
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, "GET / HTTP/2.0\r\n\r\n"),
              HttpParser::Status::Failed);
    EXPECT_EQ(parser.errorStatus(), 505);
}

TEST(HttpParser, FeedingAfterTerminalStateIsANoOp)
{
    HttpParser parser;
    ASSERT_EQ(feedAll(parser, "GET / HTTP/1.1\r\n\r\n"),
              HttpParser::Status::Complete);
    // Pipelined bytes after the complete request are ignored: the
    // daemon serves one request per connection.
    EXPECT_EQ(feedAll(parser, "GET /other HTTP/1.1\r\n\r\n"),
              HttpParser::Status::Complete);
    EXPECT_EQ(parser.request().target, "/");
}

TEST(HttpResponse, FramesStatusLengthAndClose)
{
    const std::string response =
        httpResponse(404, "application/json", "{\"error\":\"nope\"}");
    EXPECT_EQ(response.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u)
        << response;
    EXPECT_NE(response.find("Content-Length: 16\r\n"),
              std::string::npos);
    EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(response.find("\r\n\r\n{\"error\":\"nope\"}"),
              std::string::npos);
}

TEST(FairQueue, FifoWithinOneClient)
{
    FairQueue queue(8);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(queue.push(Conn{i, "10.0.0.1", {}}));
    for (int i = 0; i < 3; ++i) {
        auto conn = queue.pop();
        ASSERT_TRUE(conn.has_value());
        EXPECT_EQ(conn->fd, i);
    }
}

TEST(FairQueue, RoundRobinAcrossClients)
{
    FairQueue queue(8);
    // Client A floods three connections before B and C get one each.
    ASSERT_TRUE(queue.push(Conn{0, "a", {}}));
    ASSERT_TRUE(queue.push(Conn{1, "a", {}}));
    ASSERT_TRUE(queue.push(Conn{2, "a", {}}));
    ASSERT_TRUE(queue.push(Conn{3, "b", {}}));
    ASSERT_TRUE(queue.push(Conn{4, "c", {}}));

    std::vector<std::string> order;
    for (int i = 0; i < 5; ++i) {
        auto conn = queue.pop();
        ASSERT_TRUE(conn.has_value());
        order.push_back(conn->client);
    }
    // A cannot starve B and C: service rotates a, b, c, a, a.
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c", "a", "a"}));
}

TEST(FairQueue, BoundedPushRefusesWhenFull)
{
    FairQueue queue(2);
    EXPECT_TRUE(queue.push(Conn{0, "a", {}}));
    EXPECT_TRUE(queue.push(Conn{1, "b", {}}));
    EXPECT_FALSE(queue.push(Conn{2, "c", {}}));
    EXPECT_EQ(queue.depth(), 2u);
    // Popping frees a slot again.
    ASSERT_TRUE(queue.pop().has_value());
    EXPECT_TRUE(queue.push(Conn{3, "c", {}}));
}

TEST(FairQueue, StopDrainsBacklogThenReturnsNullopt)
{
    FairQueue queue(4);
    ASSERT_TRUE(queue.push(Conn{0, "a", {}}));
    ASSERT_TRUE(queue.push(Conn{1, "b", {}}));
    queue.stop();
    EXPECT_FALSE(queue.push(Conn{2, "c", {}}));
    // Already-admitted connections are still served (graceful drain)...
    EXPECT_TRUE(queue.pop().has_value());
    EXPECT_TRUE(queue.pop().has_value());
    // ...and only then do poppers see the end.
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(FairQueue, StopWakesBlockedPopper)
{
    FairQueue queue(4);
    std::thread popper([&queue]() {
        // Blocks until stop(); must return nullopt, not hang.
        EXPECT_FALSE(queue.pop().has_value());
    });
    queue.stop();
    popper.join();
}

} // namespace
} // namespace zatel::serve
