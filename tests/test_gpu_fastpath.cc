/**
 * @file
 * Slow-vs-fast differential suite for the activity-driven cycle loop
 * (docs/SIMULATOR.md, "The activity-driven cycle loop").
 *
 * TickMode::Fast (idle-unit skipping + quiescence fast-forward) must be
 * observationally identical to TickMode::Slow (tick everything, every
 * cycle): byte-identical GpuStats, identical per-component StatsReport,
 * identical progress-probe cycle sequences and snapshots, and identical
 * predictor output. The suite also pins the two latent cycle-loop bugs
 * the fast-path work flushed out: progress probes scheduled by modulo
 * (skippable under fast-forward) and a run that completes exactly at
 * max_cycles being misreported as a deadlock.
 *
 * Suites are named GpuFastpath* so the tsan-determinism preset's test
 * filter picks them up (CMakePresets.json).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/gpu.hh"
#include "gpusim/memory_system.hh"
#include "gpusim/sim_clock.hh"
#include "gpusim/sm.hh"
#include "gpusim/stats_report.hh"
#include "gpusim/warp.hh"
#include "rt/bvh.hh"
#include "rt/scene.hh"
#include "rt/scene_library.hh"
#include "rt/tracer.hh"
#include "zatel/predictor.hh"

namespace zatel::gpusim
{
namespace
{

/** Bit pattern of a double; NaN-safe and distinguishes -0.0 from 0.0. */
uint64_t
bitsOf(double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/** Expect every raw counter of two GpuStats to be identical. */
void
expectStatsIdentical(const GpuStats &a, const GpuStats &b,
                     const std::string &context)
{
#define ZATEL_EXPECT_COUNTER(field)                                         \
    EXPECT_EQ(a.field, b.field) << context << ": counter " #field " diverged"
    ZATEL_EXPECT_COUNTER(cycles);
    ZATEL_EXPECT_COUNTER(threadInstructions);
    ZATEL_EXPECT_COUNTER(warpInstructions);
    ZATEL_EXPECT_COUNTER(l1dAccesses);
    ZATEL_EXPECT_COUNTER(l1dMisses);
    ZATEL_EXPECT_COUNTER(l2Accesses);
    ZATEL_EXPECT_COUNTER(l2Misses);
    ZATEL_EXPECT_COUNTER(rtActiveRaySum);
    ZATEL_EXPECT_COUNTER(rtResidentWarpCycles);
    ZATEL_EXPECT_COUNTER(rtNodeVisits);
    ZATEL_EXPECT_COUNTER(rtTriangleTests);
    ZATEL_EXPECT_COUNTER(dramBusyCycles);
    ZATEL_EXPECT_COUNTER(dramActiveCycles);
    ZATEL_EXPECT_COUNTER(dramChannelCycles);
    ZATEL_EXPECT_COUNTER(dramBytesRead);
    ZATEL_EXPECT_COUNTER(dramBytesWritten);
    ZATEL_EXPECT_COUNTER(warpsLaunched);
    ZATEL_EXPECT_COUNTER(raysTraced);
    ZATEL_EXPECT_COUNTER(pixelsTraced);
    ZATEL_EXPECT_COUNTER(pixelsFiltered);
#undef ZATEL_EXPECT_COUNTER
}

struct SceneBundle
{
    rt::Scene scene;
    rt::Bvh bvh;
    std::unique_ptr<rt::Tracer> tracer;
};

/** Heap-allocated so the tracer's scene/BVH references stay stable. */
std::unique_ptr<SceneBundle>
makeScene(rt::SceneId id)
{
    auto bundle = std::make_unique<SceneBundle>();
    bundle->scene = rt::buildScene(id, rt::SceneDetail{0.4f});
    bundle->bvh.build(bundle->scene.triangles());
    bundle->tracer =
        std::make_unique<rt::Tracer>(bundle->scene, bundle->bvh);
    return bundle;
}

/** One run in mode @p mode; returns final stats + the Gpu for probes. */
struct RunOutcome
{
    GpuStats stats;
    StatsReport report;
    uint64_t fastForwarded = 0;
    uint64_t skippedSmTicks = 0;
    bool stoppedEarly = false;
    std::vector<uint64_t> probeCycles;
    std::vector<GpuStats> probeSnapshots;
};

RunOutcome
runMode(const rt::Tracer &tracer, const GpuConfig &config, TickMode mode,
        uint32_t frame, uint64_t probe_interval = 0,
        uint64_t stop_after_probes = 0)
{
    SimWorkload workload = SimWorkload::buildFullFrame(tracer, frame, frame);
    Gpu gpu(config, workload);
    gpu.setTickMode(mode);
    RunOutcome out;
    if (probe_interval > 0) {
        gpu.setProgressCallback(
            probe_interval,
            [&out, stop_after_probes](uint64_t cycle, const GpuStats &snap) {
                out.probeCycles.push_back(cycle);
                out.probeSnapshots.push_back(snap);
                return stop_after_probes != 0 &&
                       out.probeCycles.size() >= stop_after_probes;
            });
    }
    out.stats = gpu.run();
    out.report = gpu.statsReport();
    out.fastForwarded = gpu.fastForwardedCycles();
    out.skippedSmTicks = gpu.skippedSmTicks();
    out.stoppedEarly = gpu.stoppedEarly();
    return out;
}

/** Full differential comparison of one scene x config x probe setup. */
void
expectModesIdentical(const rt::Tracer &tracer, const GpuConfig &config,
                     const std::string &context, uint32_t frame,
                     uint64_t probe_interval = 0,
                     uint64_t stop_after_probes = 0)
{
    RunOutcome slow = runMode(tracer, config, TickMode::Slow, frame,
                              probe_interval, stop_after_probes);
    RunOutcome fast = runMode(tracer, config, TickMode::Fast, frame,
                              probe_interval, stop_after_probes);

    expectStatsIdentical(slow.stats, fast.stats, context);
    EXPECT_EQ(slow.stoppedEarly, fast.stoppedEarly) << context;

    // Per-component counters (gem5-style dump) must match too — a
    // mis-skipped SM would shift work between components even if the
    // totals happened to line up.
    EXPECT_EQ(slow.report.lines().size(), fast.report.lines().size())
        << context;
    for (size_t i = 0;
         i < slow.report.lines().size() && i < fast.report.lines().size();
         ++i) {
        EXPECT_EQ(slow.report.lines()[i].path, fast.report.lines()[i].path)
            << context << ": report row " << i;
        EXPECT_EQ(bitsOf(slow.report.lines()[i].value),
                  bitsOf(fast.report.lines()[i].value))
            << context << ": report counter " << slow.report.lines()[i].path;
    }

    // Identical probe-cycle sequences and byte-identical snapshots.
    EXPECT_EQ(slow.probeCycles, fast.probeCycles) << context;
    ASSERT_EQ(slow.probeSnapshots.size(), fast.probeSnapshots.size())
        << context;
    for (size_t i = 0; i < slow.probeSnapshots.size(); ++i) {
        expectStatsIdentical(slow.probeSnapshots[i], fast.probeSnapshots[i],
                             context + ": probe " + std::to_string(i));
    }

    // The reference loop must never skip; the fast loop must actually
    // engage on these workloads or the differential proves nothing.
    EXPECT_EQ(slow.fastForwarded, 0u) << context;
    EXPECT_EQ(slow.skippedSmTicks, 0u) << context;
    EXPECT_GT(fast.fastForwarded + fast.skippedSmTicks, 0u) << context;
}

TEST(GpuFastpathDifferential, WkndMobileSoc)
{
    auto s = makeScene(rt::SceneId::Wknd);
    expectModesIdentical(*s->tracer, GpuConfig::mobileSoc(), "wknd/mobile",
                         32);
}

TEST(GpuFastpathDifferential, WkndRtx2060)
{
    auto s = makeScene(rt::SceneId::Wknd);
    expectModesIdentical(*s->tracer, GpuConfig::rtx2060(), "wknd/rtx2060",
                         32);
}

TEST(GpuFastpathDifferential, SprngMobileSoc)
{
    auto s = makeScene(rt::SceneId::Sprng);
    expectModesIdentical(*s->tracer, GpuConfig::mobileSoc(), "sprng/mobile",
                         32);
}

TEST(GpuFastpathDifferential, SprngRtx2060)
{
    auto s = makeScene(rt::SceneId::Sprng);
    expectModesIdentical(*s->tracer, GpuConfig::rtx2060(), "sprng/rtx2060",
                         32);
}

TEST(GpuFastpathDifferential, ProgressProbesObserved)
{
    auto s = makeScene(rt::SceneId::Wknd);
    expectModesIdentical(*s->tracer, GpuConfig::mobileSoc(),
                         "wknd/mobile/probes", 32, /*probe_interval=*/512);
}

TEST(GpuFastpathDifferential, EarlyStopViaProbe)
{
    auto s = makeScene(rt::SceneId::Wknd);
    expectModesIdentical(*s->tracer, GpuConfig::mobileSoc(),
                         "wknd/mobile/early-stop", 32,
                         /*probe_interval=*/256, /*stop_after_probes=*/3);
}

// ---------------------------------------------------------------------
// Progress-probe scheduling regression (the modulo-probe latent bug):
// probes must fire at exactly interval, 2*interval, ... even when
// fast-forward jumps the clock across multiples of the interval.
// ---------------------------------------------------------------------

TEST(GpuFastpathProbeSchedule, ProbesNeverSkippedUnderFastForward)
{
    auto s = makeScene(rt::SceneId::Wknd);
    const uint64_t interval = 100;
    RunOutcome fast = runMode(*s->tracer, GpuConfig::mobileSoc(),
                              TickMode::Fast, 24, interval);
    ASSERT_FALSE(fast.probeCycles.empty());
    EXPECT_GT(fast.fastForwarded, 0u)
        << "fast-forward never engaged; the regression is not exercised";
    for (size_t i = 0; i < fast.probeCycles.size(); ++i) {
        EXPECT_EQ(fast.probeCycles[i], (i + 1) * interval)
            << "probe " << i << " fired off-schedule";
    }
    // A dense schedule relative to the run length must have visited
    // every multiple of the interval below the final cycle.
    EXPECT_EQ(fast.probeCycles.size(), (fast.stats.cycles - 1) / interval);
}

TEST(GpuFastpathProbeSchedule, SnapshotCyclesMatchProbeCycles)
{
    auto s = makeScene(rt::SceneId::Wknd);
    RunOutcome fast = runMode(*s->tracer, GpuConfig::mobileSoc(),
                              TickMode::Fast, 24, 300);
    ASSERT_EQ(fast.probeCycles.size(), fast.probeSnapshots.size());
    for (size_t i = 0; i < fast.probeCycles.size(); ++i)
        EXPECT_EQ(fast.probeSnapshots[i].cycles, fast.probeCycles[i]);
}

// ---------------------------------------------------------------------
// max_cycles boundary semantics (the exactly-at-the-limit latent bug):
// exhausting the budget without draining panics; completing exactly at
// max_cycles is a normal completion.
// ---------------------------------------------------------------------

struct GpuFastpathMaxCycles : public testing::Test
{
    void
    SetUp() override
    {
        bundle = makeScene(rt::SceneId::Wknd);
    }

    SimWorkload
    freshWorkload() const
    {
        return SimWorkload::buildFullFrame(*bundle->tracer, 16, 16);
    }

    std::unique_ptr<SceneBundle> bundle;
};

TEST_F(GpuFastpathMaxCycles, CompletionExactlyAtLimitIsNotADeadlock)
{
    GpuConfig config = GpuConfig::mobileSoc();
    SimWorkload reference_workload = freshWorkload();
    GpuStats reference = Gpu(config, reference_workload).run();
    ASSERT_GT(reference.cycles, 0u);

    // Re-running with max_cycles == the natural completion cycle must
    // not panic and must produce byte-identical stats (both modes).
    for (TickMode mode : {TickMode::Slow, TickMode::Fast}) {
        SimWorkload fresh = freshWorkload();
        Gpu gpu(config, fresh);
        gpu.setTickMode(mode);
        GpuStats bounded = gpu.run(reference.cycles);
        expectStatsIdentical(reference, bounded,
                             mode == TickMode::Slow ? "boundary/slow"
                                                    : "boundary/fast");
    }
}

TEST_F(GpuFastpathMaxCycles, ExhaustionPanicsInBothModes)
{
    GpuConfig config = GpuConfig::mobileSoc();
    for (TickMode mode : {TickMode::Slow, TickMode::Fast}) {
        SimWorkload fresh = freshWorkload();
        Gpu gpu(config, fresh);
        gpu.setTickMode(mode);
        EXPECT_DEATH(gpu.run(/*max_cycles=*/8), "exceeded");
    }
}

// ---------------------------------------------------------------------
// Mode resolution: instance > global > environment.
// ---------------------------------------------------------------------

TEST(GpuFastpathModeResolution, GlobalSlowDisablesSkipping)
{
    auto s = makeScene(rt::SceneId::Wknd);
    setGlobalTickMode(TickMode::Slow);
    RunOutcome byGlobal = runMode(*s->tracer, GpuConfig::mobileSoc(),
                                  TickMode::Auto, 16);
    EXPECT_EQ(byGlobal.fastForwarded, 0u);
    EXPECT_EQ(byGlobal.skippedSmTicks, 0u);

    // An explicit per-instance mode overrides the global one.
    RunOutcome byInstance = runMode(*s->tracer, GpuConfig::mobileSoc(),
                                    TickMode::Fast, 16);
    EXPECT_GT(byInstance.fastForwarded + byInstance.skippedSmTicks, 0u);

    setGlobalTickMode(TickMode::Auto);
    EXPECT_EQ(globalTickMode(), TickMode::Auto);
}

// ---------------------------------------------------------------------
// Pipeline-level differential: the whole predictor (profiling, K-Means,
// group simulation, extrapolation) must produce bit-identical metric
// values under either loop.
// ---------------------------------------------------------------------

TEST(GpuFastpathPredictor, PredictionBitIdenticalSlowVsFast)
{
    auto s = makeScene(rt::SceneId::Wknd);
    core::ZatelParams params;
    params.width = 48;
    params.height = 48;
    params.numThreads = 1;

    setGlobalTickMode(TickMode::Slow);
    core::ZatelResult slow =
        core::ZatelPredictor(s->scene, s->bvh, GpuConfig::mobileSoc(), params)
            .predict();
    setGlobalTickMode(TickMode::Fast);
    core::ZatelResult fast =
        core::ZatelPredictor(s->scene, s->bvh, GpuConfig::mobileSoc(), params)
            .predict();
    setGlobalTickMode(TickMode::Auto);

    EXPECT_EQ(slow.k, fast.k);
    EXPECT_EQ(bitsOf(slow.fractionTraced), bitsOf(fast.fractionTraced));
    ASSERT_EQ(slow.predicted.size(), fast.predicted.size());
    for (const auto &[metric, value] : slow.predicted) {
        ASSERT_TRUE(fast.predicted.count(metric));
        EXPECT_EQ(bitsOf(value), bitsOf(fast.predicted.at(metric)))
            << "metric " << metricName(metric) << " diverged";
    }
    ASSERT_EQ(slow.groups.size(), fast.groups.size());
    for (size_t g = 0; g < slow.groups.size(); ++g) {
        expectStatsIdentical(slow.groups[g].stats, fast.groups[g].stats,
                             "group " + std::to_string(g));
    }
}

// ---------------------------------------------------------------------
// Property tests for the sim_clock.hh sleep contract the fast loops
// (serial and span-parallel) lean on: while an SM sleeps, its local
// next-event estimate must never move earlier — only a newly delivered
// fill may wake it sooner, and the per-cycle fill check catches that.
// ---------------------------------------------------------------------

TEST(GpuFastpathInvariants, SmNextEventNeverMovesBackwardWhileAsleep)
{
    auto s = makeScene(rt::SceneId::Wknd);
    GpuConfig config = GpuConfig::mobileSoc();
    config.numSms = 1;
    config.numMemPartitions = 2;
    SimWorkload workload = SimWorkload::buildFullFrame(*s->tracer, 16, 16);

    MemorySystem memory(config);
    Sm sm(0, &config, &memory);
    std::deque<std::unique_ptr<Warp>> pending;
    uint32_t n = static_cast<uint32_t>(workload.threads.size());
    uint32_t warp_id = 0;
    for (uint32_t begin = 0; begin < n; begin += config.warpSize) {
        pending.push_back(std::make_unique<Warp>(
            warp_id++, &config, &workload,
            begin, std::min(n, begin + config.warpSize)));
    }

    // Hand-rolled copy of the serial fast loop for one SM, with the
    // contract asserted at every skipped cycle.
    uint64_t wake = 0;
    uint64_t skipped = 0;
    uint64_t sleep_events = 0;
    bool completed = false;
    for (uint64_t cycle = 0; cycle < 2'000'000; ++cycle) {
        while (!pending.empty() && sm.hasFreeSlot()) {
            sm.launchWarp(std::move(pending.front()));
            pending.pop_front();
            wake = 0;
        }
        memory.tick(cycle);
        if (pending.empty() && sm.idle() && memory.idle()) {
            // Checked before the sleep branch: once drained, wake is
            // kNoEventCycle and the tick branch is never taken again.
            if (skipped != 0) {
                sm.fastForward(skipped);
                skipped = 0;
            }
            completed = true;
            break;
        }
        if (cycle < wake && !memory.hasReadyFill(0, cycle)) {
            // A skipped tick is linear accrual only; the SM's own
            // estimate must not have moved earlier than the wake
            // computed at sleep entry (fills are the only earlier wake
            // source, and they are excluded by the guard above).
            uint64_t event = sm.nextEventCycle(cycle);
            ASSERT_GT(event, cycle);
            ASSERT_GE(event, std::min(wake, memory.nextFillCycle(0)))
                << "next-event moved backward at cycle " << cycle
                << " (sleep target " << wake << ")";
            ++skipped;
            ++sleep_events;
            continue;
        }
        if (skipped != 0) {
            sm.fastForward(skipped);
            skipped = 0;
        }
        sm.tickFast(cycle);
        wake = sm.wakeCycleAfterTick(cycle);
        ASSERT_GT(wake, cycle) << "wake must be strictly in the future";
    }
    ASSERT_TRUE(completed) << "single-SM drive never drained";
    EXPECT_GT(sleep_events, 0u) << "workload never exercised the sleep path";
    EXPECT_TRUE(sm.settled());
}

} // namespace
} // namespace zatel::gpusim
