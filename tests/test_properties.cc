/**
 * @file
 * Cross-module property tests: parameterized sweeps asserting invariant
 * bundles over scenes, configurations and pipeline settings.
 */

#include <gtest/gtest.h>

#include "gpusim/gpu.hh"
#include "heatmap/heatmap.hh"
#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "rt/tracer.hh"
#include "zatel/pixel_selector.hh"
#include "zatel/predictor.hh"

namespace zatel
{
namespace
{

// ---------------------------------------------------------------------
// Simulator invariants over every scene.
// ---------------------------------------------------------------------

class SimInvariants : public testing::TestWithParam<rt::SceneId>
{
};

TEST_P(SimInvariants, StatsBundleHolds)
{
    rt::Scene scene = rt::buildScene(GetParam(), rt::SceneDetail{0.4f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());
    rt::Tracer tracer(scene, bvh);

    gpusim::GpuConfig config = gpusim::GpuConfig::mobileSoc();
    config.numSms = 2;
    config.numMemPartitions = 2;
    gpusim::GpuStats stats =
        gpusim::simulateFullFrame(config, tracer, 24, 24);

    EXPECT_GT(stats.cycles, 0u);
    EXPECT_LE(stats.l1dMisses, stats.l1dAccesses);
    EXPECT_LE(stats.l2Misses, stats.l2Accesses);
    // L2 only sees L1 misses plus write-throughs.
    EXPECT_LE(stats.l2Accesses, stats.l1dAccesses);
    EXPECT_LE(stats.dramBusyCycles, stats.dramActiveCycles);
    EXPECT_LE(stats.dramActiveCycles, stats.dramChannelCycles);
    EXPECT_GE(stats.rtEfficiency(), 0.0);
    EXPECT_LE(stats.rtEfficiency(), config.warpSize);
    EXPECT_EQ(stats.pixelsTraced, 24u * 24u);
    // Every selected pixel casts at least one ray.
    EXPECT_GE(stats.raysTraced, stats.pixelsTraced);
    // DRAM reads can't exceed L2 misses (one line fill per miss).
    EXPECT_GT(stats.threadInstructions, stats.rtNodeVisits);
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SimInvariants,
                         testing::ValuesIn(rt::allScenes()),
                         [](const auto &info) {
                             return std::string(rt::sceneName(info.param));
                         });

// ---------------------------------------------------------------------
// Functional/timed agreement across scenes (the replay property).
// ---------------------------------------------------------------------

class ReplayAgreement : public testing::TestWithParam<rt::SceneId>
{
};

TEST_P(ReplayAgreement, TimedVisitsEqualFunctionalVisits)
{
    rt::Scene scene = rt::buildScene(GetParam(), rt::SceneDetail{0.4f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());
    rt::Tracer tracer(scene, bvh);

    rt::RenderResult render = tracer.render(16, 16);
    uint64_t functional = 0;
    for (const rt::PixelProfile &profile : render.profiles)
        functional += profile.nodesVisited;

    gpusim::GpuStats stats = gpusim::simulateFullFrame(
        gpusim::GpuConfig::mobileSoc(), tracer, 16, 16);
    EXPECT_EQ(stats.rtNodeVisits, functional);
}

INSTANTIATE_TEST_SUITE_P(AllScenes, ReplayAgreement,
                         testing::ValuesIn(rt::allScenes()),
                         [](const auto &info) {
                             return std::string(rt::sceneName(info.param));
                         });

// ---------------------------------------------------------------------
// Selector properties across distribution x fraction.
// ---------------------------------------------------------------------

struct SelectorCase
{
    core::DistributionMethod distribution;
    double fraction;
};

class SelectorSweep : public testing::TestWithParam<SelectorCase>
{
  protected:
    static heatmap::QuantizedHeatmap
    map()
    {
        std::vector<double> costs(64 * 64);
        for (uint32_t y = 0; y < 64; ++y)
            for (uint32_t x = 0; x < 64; ++x)
                costs[y * 64 + x] = x + 0.2 * y;
        heatmap::Heatmap raw = heatmap::Heatmap::fromCosts(64, 64, costs);
        return heatmap::QuantizedHeatmap::quantize(raw, 5);
    }

    static core::PixelGroup
    group()
    {
        core::PixelGroup pixels;
        for (uint32_t y = 0; y < 64; ++y)
            for (uint32_t x = 0; x < 64; ++x)
                pixels.push_back({x, y});
        return pixels;
    }
};

TEST_P(SelectorSweep, BudgetAndMaskConsistent)
{
    const SelectorCase &c = GetParam();
    heatmap::QuantizedHeatmap quantized = map();
    core::PixelGroup pixels = group();

    core::SelectorParams params;
    params.distribution = c.distribution;
    params.fixedFraction = c.fraction;
    Rng rng(1234);
    core::Selection sel = core::selectRepresentativePixels(
        pixels, quantized, params, rng);

    // Mask count matches selectedCount.
    uint64_t bits = 0;
    for (bool b : sel.mask)
        bits += b;
    EXPECT_EQ(bits, sel.selectedCount);
    // Fraction within one section block of the request.
    EXPECT_NEAR(sel.actualFraction, c.fraction,
                64.0 / pixels.size() + 1e-9);
    // Never exceeds the group.
    EXPECT_LE(sel.selectedCount, pixels.size());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SelectorSweep,
    testing::Values(
        SelectorCase{core::DistributionMethod::Uniform, 0.1},
        SelectorCase{core::DistributionMethod::Uniform, 0.5},
        SelectorCase{core::DistributionMethod::Uniform, 0.9},
        SelectorCase{core::DistributionMethod::LinTemp, 0.1},
        SelectorCase{core::DistributionMethod::LinTemp, 0.5},
        SelectorCase{core::DistributionMethod::LinTemp, 0.9},
        SelectorCase{core::DistributionMethod::ExpTemp, 0.1},
        SelectorCase{core::DistributionMethod::ExpTemp, 0.5},
        SelectorCase{core::DistributionMethod::ExpTemp, 0.9}));

// ---------------------------------------------------------------------
// More pixels traced -> more simulated work, monotonically.
// ---------------------------------------------------------------------

TEST(Monotonicity, VisitsGrowWithFraction)
{
    rt::Scene scene = rt::buildScene(rt::SceneId::Bunny,
                                     rt::SceneDetail{0.4f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());

    core::ZatelParams params;
    params.width = params.height = 48;
    params.downscaleGpu = false;

    uint64_t prev_visits = 0;
    for (double fraction : {0.2, 0.5, 0.8}) {
        params.selector.fixedFraction = fraction;
        core::ZatelPredictor predictor(
            scene, bvh, gpusim::GpuConfig::mobileSoc(), params);
        core::ZatelResult result = predictor.predict();
        uint64_t visits = result.groups[0].stats.rtNodeVisits;
        EXPECT_GT(visits, prev_visits) << "fraction " << fraction;
        prev_visits = visits;
    }
}

TEST(Monotonicity, GroupCyclesNeverExceedOracleByMuch)
{
    // A downscaled group tracing everything should take cycles in the
    // same ballpark as the full GPU on the full scene (weak scaling).
    rt::Scene scene = rt::buildScene(rt::SceneId::Spnza,
                                     rt::SceneDetail{0.5f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());

    core::ZatelParams params;
    params.width = params.height = 48;
    params.selector.fixedFraction = 1.0;
    core::ZatelPredictor predictor(scene, bvh,
                                   gpusim::GpuConfig::mobileSoc(), params);
    core::OracleResult oracle = predictor.runOracle();
    core::ZatelResult result = predictor.predict();
    for (const core::GroupResult &group : result.groups) {
        EXPECT_LT(group.stats.cycles, 3 * oracle.stats.cycles);
        EXPECT_GT(group.stats.cycles, oracle.stats.cycles / 3);
    }
}

} // namespace
} // namespace zatel
