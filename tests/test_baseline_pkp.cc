/**
 * @file
 * Tests for the PKA/PKP-style early-termination baseline.
 */

#include <gtest/gtest.h>

#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "rt/tracer.hh"
#include "gpusim/gpu.hh"
#include "zatel/baseline_pkp.hh"

namespace zatel::core
{
namespace
{

struct PkpFixture : public testing::Test
{
    void
    SetUp() override
    {
        scene = rt::buildScene(rt::SceneId::Spnza, rt::SceneDetail{0.5f});
        bvh.build(scene.triangles());
        tracer = std::make_unique<rt::Tracer>(scene, bvh);
        config = gpusim::GpuConfig::mobileSoc();
        params.width = params.height = 48;
    }

    rt::Scene scene;
    rt::Bvh bvh;
    std::unique_ptr<rt::Tracer> tracer;
    gpusim::GpuConfig config;
    PkpParams params;
};

TEST_F(PkpFixture, ProducesAllMetrics)
{
    PkpResult result = runPkpBaseline(config, *tracer, params);
    for (gpusim::Metric metric : gpusim::allMetrics()) {
        ASSERT_TRUE(result.predicted.count(metric))
            << gpusim::metricName(metric);
        EXPECT_GE(result.predicted.at(metric), 0.0);
    }
    EXPECT_GT(result.simulatedCycles, 0u);
    EXPECT_GT(result.workFractionCompleted, 0.0);
    EXPECT_LE(result.workFractionCompleted, 1.0);
}

TEST_F(PkpFixture, NeverStoppingMatchesFullRun)
{
    // An impossible stability threshold runs to completion: projection
    // with fraction 1 equals the plain simulation.
    params.epsilon = 0.0;
    PkpResult result = runPkpBaseline(config, *tracer, params);
    EXPECT_FALSE(result.stoppedEarly);
    EXPECT_DOUBLE_EQ(result.workFractionCompleted, 1.0);

    gpusim::GpuStats oracle = gpusim::simulateFullFrame(
        config, *tracer, params.width, params.height);
    EXPECT_DOUBLE_EQ(result.predicted.at(gpusim::Metric::SimCycles),
                     oracle.simCycles());
}

TEST_F(PkpFixture, AggressiveDetectorStopsEarly)
{
    params.epsilon = 0.5; // almost anything counts as stable
    params.window = 2;
    params.checkIntervalCycles = 200;
    params.minProgress = 0.01;
    PkpResult result = runPkpBaseline(config, *tracer, params);
    EXPECT_TRUE(result.stoppedEarly);
    EXPECT_LT(result.workFractionCompleted, 1.0);
    // The cycle projection scales up the truncated run.
    EXPECT_GT(result.predicted.at(gpusim::Metric::SimCycles),
              static_cast<double>(result.simulatedCycles));
}

TEST_F(PkpFixture, MinProgressIsHonoured)
{
    params.epsilon = 10.0; // trivially stable
    params.window = 2;
    params.minProgress = 0.5;
    PkpResult result = runPkpBaseline(config, *tracer, params);
    EXPECT_GE(result.workFractionCompleted, 0.5 - 0.05);
}

TEST_F(PkpFixture, EarlyStopIsFasterThanFullRun)
{
    params.epsilon = 0.0;
    PkpResult full = runPkpBaseline(config, *tracer, params);
    params.epsilon = 0.5;
    params.window = 2;
    params.minProgress = 0.01;
    params.checkIntervalCycles = 200;
    PkpResult early = runPkpBaseline(config, *tracer, params);
    EXPECT_LT(early.simulatedCycles, full.simulatedCycles);
}

TEST(GpuProgressCallback, SnapshotMatchesFinalWhenNeverStopping)
{
    rt::Scene scene = rt::buildScene(rt::SceneId::Ship,
                                     rt::SceneDetail{0.5f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());
    rt::Tracer tracer(scene, bvh);
    gpusim::SimWorkload workload =
        gpusim::SimWorkload::buildFullFrame(tracer, 16, 16);
    gpusim::Gpu gpu(gpusim::GpuConfig::mobileSoc(), workload);

    uint64_t callbacks = 0;
    uint64_t last_visits = 0;
    gpu.setProgressCallback(1000, [&](uint64_t cycle,
                                      const gpusim::GpuStats &snapshot) {
        ++callbacks;
        EXPECT_EQ(snapshot.cycles, cycle);
        // Monotone progress.
        EXPECT_GE(snapshot.rtNodeVisits, last_visits);
        last_visits = snapshot.rtNodeVisits;
        return false;
    });
    gpusim::GpuStats stats = gpu.run();
    EXPECT_FALSE(gpu.stoppedEarly());
    EXPECT_GT(callbacks, 0u);
    EXPECT_GE(stats.rtNodeVisits, last_visits);
}

} // namespace
} // namespace zatel::core
