/**
 * @file
 * End-to-end pipeline bookkeeping invariants: the combination step must
 * reproduce Section III-H's arithmetic exactly from the per-group data
 * the predictor reports.
 */

#include <gtest/gtest.h>

#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "zatel/combine.hh"
#include "zatel/predictor.hh"

namespace zatel::core
{
namespace
{

struct PipelineFixture : public testing::Test
{
    void
    SetUp() override
    {
        scene = rt::buildScene(rt::SceneId::Chsnt, rt::SceneDetail{0.5f});
        bvh.build(scene.triangles());
        params.width = params.height = 64;
    }

    rt::Scene scene;
    rt::Bvh bvh;
    ZatelParams params;
};

TEST_F(PipelineFixture, PredictedIpcIsSumOfGroupIpcs)
{
    ZatelPredictor predictor(scene, bvh, gpusim::GpuConfig::mobileSoc(),
                             params);
    ZatelResult result = predictor.predict();

    double sum = 0.0;
    for (const GroupResult &group : result.groups)
        sum += group.stats.ipc(); // ratio metrics pass through linearly
    EXPECT_NEAR(result.metric(gpusim::Metric::Ipc), sum, 1e-9);
}

TEST_F(PipelineFixture, PredictedCyclesIsMeanOfExtrapolatedGroups)
{
    ZatelPredictor predictor(scene, bvh, gpusim::GpuConfig::mobileSoc(),
                             params);
    ZatelResult result = predictor.predict();

    double acc = 0.0;
    for (const GroupResult &group : result.groups) {
        double fraction = std::max(group.fractionTraced, 1e-9);
        acc += group.stats.simCycles() / fraction;
    }
    acc /= result.groups.size();
    EXPECT_NEAR(result.metric(gpusim::Metric::SimCycles), acc, 1e-6);
}

TEST_F(PipelineFixture, PredictedMissRatesAreGroupAverages)
{
    ZatelPredictor predictor(scene, bvh, gpusim::GpuConfig::mobileSoc(),
                             params);
    ZatelResult result = predictor.predict();

    for (gpusim::Metric metric :
         {gpusim::Metric::L1dMissRate, gpusim::Metric::L2MissRate,
          gpusim::Metric::RtEfficiency}) {
        double acc = 0.0;
        for (const GroupResult &group : result.groups)
            acc += group.stats.metricValue(metric);
        acc /= result.groups.size();
        EXPECT_NEAR(result.metric(metric), acc, 1e-9)
            << gpusim::metricName(metric);
    }
}

TEST_F(PipelineFixture, FractionTracedIsSelectionWeightedAverage)
{
    ZatelPredictor predictor(scene, bvh, gpusim::GpuConfig::mobileSoc(),
                             params);
    ZatelResult result = predictor.predict();

    uint64_t selected = 0, total = 0;
    for (const GroupResult &group : result.groups) {
        selected += group.selectedPixels;
        total += group.pixels;
    }
    EXPECT_EQ(total, 64ull * 64ull);
    EXPECT_NEAR(result.fractionTraced,
                static_cast<double>(selected) / total, 1e-12);
}

TEST_F(PipelineFixture, GroupStatsAreTracedSubsetsOnly)
{
    params.selector.fixedFraction = 0.25;
    ZatelPredictor predictor(scene, bvh, gpusim::GpuConfig::mobileSoc(),
                             params);
    ZatelResult result = predictor.predict();
    OracleResult oracle = predictor.runOracle();

    uint64_t group_visits = 0;
    for (const GroupResult &group : result.groups)
        group_visits += group.stats.rtNodeVisits;
    // Tracing ~25% of pixels does roughly a quarter of the oracle's
    // traversal work (loose bounds: heat-driven selection skews it).
    EXPECT_LT(group_visits, oracle.stats.rtNodeVisits);
    EXPECT_GT(group_visits, oracle.stats.rtNodeVisits / 20);
}

TEST_F(PipelineFixture, SeedChangesSelectionButNotOracle)
{
    params.selector.fixedFraction = 0.3;
    ZatelPredictor a(scene, bvh, gpusim::GpuConfig::mobileSoc(), params);
    params.seed ^= 0xDEADBEEF;
    ZatelPredictor b(scene, bvh, gpusim::GpuConfig::mobileSoc(), params);

    ZatelResult ra = a.predict();
    ZatelResult rb = b.predict();
    // Different seeds pick different blocks -> different raw work...
    bool any_diff = false;
    for (size_t g = 0; g < ra.groups.size(); ++g)
        any_diff |= ra.groups[g].stats.rtNodeVisits !=
                    rb.groups[g].stats.rtNodeVisits;
    EXPECT_TRUE(any_diff);
    // ...but the oracle is seed-independent.
    EXPECT_EQ(a.runOracle().stats.cycles, b.runOracle().stats.cycles);
}

} // namespace
} // namespace zatel::core
