/**
 * @file
 * Tests for the tag-array cache model (L1D / L2 slices).
 */

#include <gtest/gtest.h>

#include "gpusim/cache.hh"

namespace zatel::gpusim
{
namespace
{

constexpr uint32_t kLine = 128;

TEST(TagCache, ColdMissesThenHits)
{
    TagCache cache(1024, kLine, 2);
    bool dirty = false;
    EXPECT_FALSE(cache.access(0));
    cache.fill(0, false, dirty);
    EXPECT_TRUE(cache.access(0));
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TagCache, LruEvictionOrder)
{
    // Fully associative, 4 lines.
    TagCache cache(4 * kLine, kLine, 0);
    bool dirty = false;
    for (uint64_t i = 0; i < 4; ++i)
        cache.fill(i * kLine, false, dirty);
    // Touch line 0 so line 1 is LRU.
    EXPECT_TRUE(cache.access(0));
    cache.fill(100 * kLine, false, dirty); // evicts line 1
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(kLine));
    EXPECT_TRUE(cache.contains(2 * kLine));
    EXPECT_TRUE(cache.contains(100 * kLine));
}

TEST(TagCache, SetMappingConflicts)
{
    // 4 sets x 1 way: addresses stride apart by numSets*line conflict.
    TagCache cache(4 * kLine, kLine, 1);
    EXPECT_EQ(cache.numSets(), 4u);
    bool dirty = false;
    cache.fill(0, false, dirty);
    cache.fill(4 * kLine, false, dirty); // same set as 0
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(4 * kLine));
    // Different set unaffected.
    cache.fill(kLine, false, dirty);
    EXPECT_TRUE(cache.contains(kLine));
    EXPECT_TRUE(cache.contains(4 * kLine));
}

TEST(TagCache, FullyAssociativeNoConflicts)
{
    TagCache cache(8 * kLine, kLine, 0);
    EXPECT_EQ(cache.numSets(), 1u);
    bool dirty = false;
    // Fill with addresses that would conflict in a set-indexed cache.
    for (uint64_t i = 0; i < 8; ++i)
        cache.fill(i * 8 * kLine, false, dirty);
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(cache.contains(i * 8 * kLine));
}

TEST(TagCache, DirtyEvictionReported)
{
    TagCache cache(2 * kLine, kLine, 0);
    bool dirty = false;
    cache.fill(0, true, dirty);
    EXPECT_FALSE(dirty);
    cache.fill(kLine, false, dirty);
    cache.fill(2 * kLine, false, dirty); // evicts dirty line 0
    EXPECT_TRUE(dirty);
    EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
}

TEST(TagCache, MarkDirtyOnExistingLine)
{
    TagCache cache(2 * kLine, kLine, 0);
    bool dirty = false;
    cache.fill(0, false, dirty);
    cache.markDirty(0);
    cache.fill(kLine, false, dirty);
    cache.fill(2 * kLine, false, dirty);
    EXPECT_TRUE(dirty);
}

TEST(TagCache, RefillExistingLineIsNotEviction)
{
    TagCache cache(2 * kLine, kLine, 0);
    bool dirty = false;
    cache.fill(0, false, dirty);
    EXPECT_FALSE(cache.fill(0, false, dirty));
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.residentLines(), 1u);
}

TEST(TagCache, CapacityNeverExceeded)
{
    TagCache cache(16 * kLine, kLine, 4);
    bool dirty = false;
    for (uint64_t i = 0; i < 1000; ++i) {
        cache.fill(i * kLine, false, dirty);
        EXPECT_LE(cache.residentLines(), 16u);
    }
}

TEST(TagCache, AccessUpdatesLruNotContains)
{
    TagCache cache(2 * kLine, kLine, 0);
    bool dirty = false;
    cache.fill(0, false, dirty);
    uint64_t hits_before = cache.stats().hits;
    EXPECT_TRUE(cache.contains(0));
    // contains() is non-statistical.
    EXPECT_EQ(cache.stats().hits, hits_before);
    EXPECT_EQ(cache.stats().accesses, 0u);
}

TEST(TagCache, TinyCacheOneLine)
{
    TagCache cache(kLine, kLine, 0);
    bool dirty = false;
    cache.fill(0, false, dirty);
    EXPECT_TRUE(cache.contains(0));
    cache.fill(kLine, false, dirty);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(kLine));
}

} // namespace
} // namespace zatel::gpusim
