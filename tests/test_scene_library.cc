/**
 * @file
 * Tests that the LumiBench-analogue scenes exist and exhibit the heat
 * characters the paper's experiments rely on (see DESIGN.md).
 */

#include <gtest/gtest.h>

#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "rt/tracer.hh"

namespace zatel::rt
{
namespace
{

/** Functional statistics for a scene at low resolution. */
struct SceneStats
{
    double avgCost = 0.0;
    double hitFraction = 0.0;
};

SceneStats
profileScene(SceneId id, uint32_t res = 64)
{
    Scene scene = buildScene(id);
    Bvh bvh;
    bvh.build(scene.triangles());
    Tracer tracer(scene, bvh);
    RenderResult render = tracer.render(res, res);

    SceneStats stats;
    for (const PixelProfile &profile : render.profiles) {
        stats.avgCost += profile.cost();
        stats.hitFraction += profile.primaryHit ? 1.0 : 0.0;
    }
    stats.avgCost /= render.profiles.size();
    stats.hitFraction /= render.profiles.size();
    return stats;
}

TEST(SceneLibrary, AllScenesBuildNonEmpty)
{
    for (SceneId id : allScenes()) {
        Scene scene = buildScene(id);
        EXPECT_GT(scene.triangleCount(), 100u) << sceneName(id);
        EXPECT_GT(scene.materialCount(), 0u) << sceneName(id);
        EXPECT_FALSE(scene.name().empty());
    }
}

TEST(SceneLibrary, EightScenesInPaperOrder)
{
    std::vector<SceneId> scenes = allScenes();
    EXPECT_EQ(scenes.size(), 8u);
    EXPECT_EQ(scenes.front(), SceneId::Park);
}

TEST(SceneLibrary, NamesRoundTrip)
{
    for (SceneId id : allScenes()) {
        EXPECT_EQ(sceneIdFromName(sceneName(id)), id);
        // Case-insensitive.
        std::string lower = sceneName(id);
        for (char &c : lower)
            c = static_cast<char>(std::tolower(c));
        EXPECT_EQ(sceneIdFromName(lower), id);
    }
}

TEST(SceneLibrary, RepresentativeSubsetExcludesUnderutilizers)
{
    std::vector<SceneId> subset = representativeSubset();
    EXPECT_FALSE(subset.empty());
    for (SceneId id : subset) {
        EXPECT_NE(id, SceneId::Sprng);
        EXPECT_NE(id, SceneId::Ship);
    }
}

TEST(SceneLibrary, BuildDeterministic)
{
    Scene a = buildScene(SceneId::Wknd);
    Scene b = buildScene(SceneId::Wknd);
    ASSERT_EQ(a.triangleCount(), b.triangleCount());
    for (size_t i = 0; i < a.triangleCount(); i += 97)
        EXPECT_EQ(a.triangles()[i].v0, b.triangles()[i].v0);
}

TEST(SceneLibrary, DensityScalesTriangleCount)
{
    SceneDetail low{0.5f}, high{2.0f};
    Scene small = buildScene(SceneId::Chsnt, low);
    Scene big = buildScene(SceneId::Chsnt, high);
    EXPECT_LT(small.triangleCount(), big.triangleCount());
}

// ---- Heat-character assertions the paper's evaluation relies on ----

TEST(SceneCharacter, SprngUnderutilizes)
{
    // "Since there are only two objects in the scene, most rays end up
    // terminating early" (Section IV-D).
    SceneStats sprng = profileScene(SceneId::Sprng);
    EXPECT_LT(sprng.hitFraction, 0.25);
}

TEST(SceneCharacter, ParkIsTheHardestWorkload)
{
    SceneStats park = profileScene(SceneId::Park);
    for (SceneId other : {SceneId::Sprng, SceneId::Ship, SceneId::Wknd,
                          SceneId::Spnza}) {
        EXPECT_GT(park.avgCost, profileScene(other).avgCost)
            << "PARK should out-cost " << sceneName(other);
    }
}

TEST(SceneCharacter, SpnzaEveryRayHits)
{
    SceneStats spnza = profileScene(SceneId::Spnza);
    EXPECT_GT(spnza.hitFraction, 0.99);
}

TEST(SceneCharacter, ShipColderThanBunny)
{
    // Table III orders SHIP (coldest) < WKND < BUNNY (warmest) under a
    // shared normalization: compare average absolute cost directly.
    SceneStats ship = profileScene(SceneId::Ship);
    SceneStats bunny = profileScene(SceneId::Bunny);
    EXPECT_LT(ship.avgCost, bunny.avgCost);
}

TEST(SceneCharacter, BathHasDeepBounces)
{
    Scene bath = buildScene(SceneId::Bath);
    EXPECT_GE(bath.maxBounces(), 3);
    SceneStats stats = profileScene(SceneId::Bath);
    EXPECT_GT(stats.hitFraction, 0.95); // enclosed room
}

TEST(SceneCharacter, ParkUsesMultiBouncePaths)
{
    Scene park = buildScene(SceneId::Park);
    EXPECT_GE(park.maxBounces(), 2);
}

} // namespace
} // namespace zatel::rt
