/**
 * @file
 * Observability integration tests: turning the tracing + metrics layer
 * ON must not change a single bit of any pipeline result.
 *
 * This is the "observability must not change results" invariant from
 * docs/CORRECTNESS.md: the recorder reads the wall clock and writes its
 * own buffers, nothing else. The tests here prove it the same way the
 * determinism harness (tests/test_determinism.cc) proves thread-count
 * independence — doubles compared by bit pattern, not tolerance — for
 * both the direct ZatelPredictor path and an 8-job campaign through the
 * scheduler. They also pin down the instrumentation contract: the spans
 * and metric series the docs promise actually appear, and the cache
 * metrics agree exactly with ArtifactCache's own counters.
 *
 * Tests use the GLOBAL recorder/registry (that is what the built-in
 * instrumentation writes to), so every assertion on counters is a
 * before/after delta and the fixture always disables both on teardown.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "gpusim/stats.hh"
#include "obs/metrics_registry.hh"
#include "obs/trace_recorder.hh"
#include "obs/validate.hh"
#include "rt/bvh.hh"
#include "rt/scene_library.hh"
#include "service/artifact_cache.hh"
#include "service/campaign.hh"
#include "service/result_store.hh"
#include "service/scheduler.hh"
#include "zatel/predictor.hh"

namespace zatel
{
namespace
{

/** Bit pattern of a double; NaN-safe, distinguishes -0.0 from 0.0. */
uint64_t
bitsOf(double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/** Expect every raw counter of two GpuStats to be identical. */
void
expectStatsIdentical(const gpusim::GpuStats &a, const gpusim::GpuStats &b,
                     const std::string &context)
{
#define ZATEL_EXPECT_COUNTER(field)                                         \
    EXPECT_EQ(a.field, b.field) << context << ": counter " #field " diverged"
    ZATEL_EXPECT_COUNTER(cycles);
    ZATEL_EXPECT_COUNTER(threadInstructions);
    ZATEL_EXPECT_COUNTER(warpInstructions);
    ZATEL_EXPECT_COUNTER(l1dAccesses);
    ZATEL_EXPECT_COUNTER(l1dMisses);
    ZATEL_EXPECT_COUNTER(l2Accesses);
    ZATEL_EXPECT_COUNTER(l2Misses);
    ZATEL_EXPECT_COUNTER(rtActiveRaySum);
    ZATEL_EXPECT_COUNTER(rtResidentWarpCycles);
    ZATEL_EXPECT_COUNTER(rtNodeVisits);
    ZATEL_EXPECT_COUNTER(rtTriangleTests);
    ZATEL_EXPECT_COUNTER(dramBusyCycles);
    ZATEL_EXPECT_COUNTER(dramActiveCycles);
    ZATEL_EXPECT_COUNTER(dramChannelCycles);
    ZATEL_EXPECT_COUNTER(dramBytesRead);
    ZATEL_EXPECT_COUNTER(dramBytesWritten);
    ZATEL_EXPECT_COUNTER(warpsLaunched);
    ZATEL_EXPECT_COUNTER(raysTraced);
    ZATEL_EXPECT_COUNTER(pixelsTraced);
    ZATEL_EXPECT_COUNTER(pixelsFiltered);
#undef ZATEL_EXPECT_COUNTER
}

/** Byte-identical everywhere except wall-clock fields. */
void
expectResultsIdentical(const core::ZatelResult &a,
                       const core::ZatelResult &b,
                       const std::string &context)
{
    EXPECT_EQ(a.k, b.k) << context;
    EXPECT_EQ(bitsOf(a.fractionTraced), bitsOf(b.fractionTraced))
        << context;
    ASSERT_EQ(a.groups.size(), b.groups.size()) << context;
    for (size_t g = 0; g < a.groups.size(); ++g) {
        const std::string where = context + ", group " + std::to_string(g);
        EXPECT_EQ(a.groups[g].groupIndex, b.groups[g].groupIndex) << where;
        EXPECT_EQ(a.groups[g].selectedPixels, b.groups[g].selectedPixels)
            << where;
        expectStatsIdentical(a.groups[g].stats, b.groups[g].stats, where);
    }
    for (gpusim::Metric metric : gpusim::allMetrics()) {
        ASSERT_TRUE(a.predicted.count(metric)) << context;
        ASSERT_TRUE(b.predicted.count(metric)) << context;
        EXPECT_EQ(bitsOf(a.predicted.at(metric)),
                  bitsOf(b.predicted.at(metric)))
            << context << ": prediction for "
            << gpusim::metricName(metric) << " diverged";
    }
}

/** Current value of a global-registry counter (registers on miss). */
uint64_t
globalCounter(const std::string &name, const obs::Labels &labels = {})
{
    return obs::MetricsRegistry::global()
        .counter(name, "test probe", labels)
        ->value();
}

/** Count spans named @p name in @p events. */
size_t
countSpans(const std::vector<obs::TraceEvent> &events,
           const std::string &name)
{
    size_t count = 0;
    for (const obs::TraceEvent &event : events) {
        if (event.name == name)
            ++count;
    }
    return count;
}

/** Always leave the process-wide observability switched off. */
class ObsIntegrationTest : public testing::Test
{
  protected:
    void
    TearDown() override
    {
        obs::TraceRecorder::global().disable();
        obs::MetricsRegistry::global().setEnabled(false);
    }
};

using ObsIntegration = ObsIntegrationTest;

TEST_F(ObsIntegration, PredictIsByteIdenticalWithObservabilityOn)
{
    rt::Scene scene =
        rt::buildScene(rt::SceneId::Wknd, rt::SceneDetail{0.4f});
    rt::Bvh bvh;
    bvh.build(scene.triangles());

    core::ZatelParams params;
    params.width = 48;
    params.height = 48;
    params.seed = 0x2A7E1;
    params.numThreads = 4;

    // Baseline: observability fully off (the library default).
    core::ZatelResult baseline =
        core::ZatelPredictor(scene, bvh, gpusim::GpuConfig::mobileSoc(),
                             params)
            .predict();

    // Instrumented run: tracing + metrics on.
    const uint64_t predictions_before =
        globalCounter("zatel_predictions_total");
    const uint64_t groups_before =
        globalCounter("zatel_groups_simulated_total");
    const uint64_t gpu_runs_before = globalCounter("zatel_gpu_runs_total");

    obs::TraceRecorder::global().enable();
    obs::MetricsRegistry::global().setEnabled(true);
    core::ZatelResult traced =
        core::ZatelPredictor(scene, bvh, gpusim::GpuConfig::mobileSoc(),
                             params)
            .predict();
    obs::TraceRecorder::global().disable();
    obs::MetricsRegistry::global().setEnabled(false);

    expectResultsIdentical(baseline, traced, "obs on vs off");

    // The promised spans exist: one pipeline, one prepare/simulate/
    // assemble, one sim.group per image-plane group.
    std::vector<obs::TraceEvent> events =
        obs::TraceRecorder::global().snapshot();
    EXPECT_EQ(countSpans(events, "predict"), 1u);
    EXPECT_EQ(countSpans(events, "predict.prepare"), 1u);
    EXPECT_EQ(countSpans(events, "predict.simulate"), 1u);
    EXPECT_EQ(countSpans(events, "predict.assemble"), 1u);
    EXPECT_EQ(countSpans(events, "sim.group"), traced.groups.size());
    EXPECT_GE(countSpans(events, "gpu.run"), traced.groups.size());

    // And the exported trace is schema-valid Chrome JSON.
    EXPECT_TRUE(obs::validateChromeTrace(
                    obs::TraceRecorder::global().exportChromeTrace())
                    .empty());

    // The promised metric series moved by exactly what the run did.
    EXPECT_EQ(globalCounter("zatel_predictions_total"),
              predictions_before + 1);
    EXPECT_EQ(globalCounter("zatel_groups_simulated_total"),
              groups_before + traced.groups.size());
    EXPECT_GE(globalCounter("zatel_gpu_runs_total"),
              gpu_runs_before + traced.groups.size());
    EXPECT_TRUE(obs::validatePrometheusText(
                    obs::MetricsRegistry::global().prometheusText())
                    .empty());
    EXPECT_TRUE(obs::validateMetricsJson(
                    obs::MetricsRegistry::global().jsonText())
                    .empty());
}

/** A small, fast campaign job: 32x32 PARK at reduced density. */
service::CampaignJob
makeJob(double fraction)
{
    service::CampaignJob job;
    job.scene = "PARK";
    job.sceneDetail = 0.3f;
    job.params.width = 32;
    job.params.height = 32;
    job.params.selector.fixedFraction = fraction;
    return job;
}

std::vector<service::CampaignJob>
makeCampaign(size_t count)
{
    std::vector<service::CampaignJob> jobs;
    jobs.reserve(count);
    for (size_t i = 0; i < count; ++i)
        jobs.push_back(makeJob(0.15 + 0.05 * static_cast<double>(i)));
    service::finalizeCampaign(jobs);
    return jobs;
}

TEST_F(ObsIntegration, CampaignByteIdenticalAndCacheMetricsMatch)
{
    constexpr uint64_t kBudget = 256ull * 1024 * 1024;
    constexpr size_t kJobs = 8;

    // Baseline campaign, observability off.
    service::ArtifactCache baseline_cache(kBudget, "");
    service::ResultStore baseline_store("");
    {
        service::SchedulerParams params;
        params.workers = 4;
        service::CampaignScheduler scheduler(
            makeCampaign(kJobs), baseline_cache, baseline_store, params);
        ASSERT_EQ(scheduler.run().ok, kJobs);
    }

    // Instrumented campaign on a fresh cache.
    const obs::Labels pack_hit = {{"kind", "scenepack"}, {"event", "hit"}};
    const obs::Labels pack_miss = {{"kind", "scenepack"},
                                   {"event", "miss"}};
    const obs::Labels map_hit = {{"kind", "heatmap"}, {"event", "hit"}};
    const obs::Labels map_miss = {{"kind", "heatmap"}, {"event", "miss"}};
    const std::string cache_total = "zatel_cache_events_total";
    const std::string units_total = "zatel_campaign_units_total";
    const uint64_t pack_hit_before = globalCounter(cache_total, pack_hit);
    const uint64_t pack_miss_before =
        globalCounter(cache_total, pack_miss);
    const uint64_t map_hit_before = globalCounter(cache_total, map_hit);
    const uint64_t map_miss_before = globalCounter(cache_total, map_miss);
    const uint64_t start_units_before =
        globalCounter(units_total, {{"stage", "start"}});
    const uint64_t finalize_units_before =
        globalCounter(units_total, {{"stage", "finalize"}});
    const uint64_t ok_jobs_before =
        globalCounter("zatel_campaign_jobs_total", {{"status", "ok"}});

    obs::TraceRecorder::global().enable();
    obs::MetricsRegistry::global().setEnabled(true);
    service::ArtifactCache traced_cache(kBudget, "");
    service::ResultStore traced_store("");
    {
        service::SchedulerParams params;
        params.workers = 4;
        service::CampaignScheduler scheduler(makeCampaign(kJobs),
                                             traced_cache, traced_store,
                                             params);
        ASSERT_EQ(scheduler.run().ok, kJobs);
    }
    obs::TraceRecorder::global().disable();
    obs::MetricsRegistry::global().setEnabled(false);

    // Byte-identical rows per job id (timing fields excluded by
    // comparing only the determinism-covered columns).
    std::map<std::string, service::ResultRow> baseline_rows;
    for (const service::ResultRow &row : baseline_store.rows())
        baseline_rows[row.jobId] = row;
    ASSERT_EQ(baseline_rows.size(), kJobs);
    for (const service::ResultRow &row : traced_store.rows()) {
        const auto it = baseline_rows.find(row.jobId);
        ASSERT_NE(it, baseline_rows.end()) << row.jobId;
        EXPECT_EQ(row.k, it->second.k) << row.jobId;
        EXPECT_EQ(bitsOf(row.fractionTraced),
                  bitsOf(it->second.fractionTraced))
            << row.jobId;
        for (gpusim::Metric metric : gpusim::allMetrics()) {
            EXPECT_EQ(bitsOf(row.predicted.at(metric)),
                      bitsOf(it->second.predicted.at(metric)))
                << row.jobId << ": " << gpusim::metricName(metric)
                << " changed when observability was enabled";
        }
    }

    // zatel_cache_events_total deltas agree EXACTLY with the cache's
    // own counters for the instrumented run.
    const service::ArtifactCache::Counters pack =
        traced_cache.counters(service::ArtifactKind::ScenePack);
    const service::ArtifactCache::Counters map =
        traced_cache.counters(service::ArtifactKind::QuantizedHeatmap);
    EXPECT_EQ(globalCounter(cache_total, pack_hit) - pack_hit_before,
              pack.hits);
    EXPECT_EQ(globalCounter(cache_total, pack_miss) - pack_miss_before,
              pack.misses);
    EXPECT_EQ(globalCounter(cache_total, map_hit) - map_hit_before,
              map.hits);
    EXPECT_EQ(globalCounter(cache_total, map_miss) - map_miss_before,
              map.misses);
    // And the cache really did its job: one build per artifact kind.
    EXPECT_EQ(pack.misses, 1u);
    EXPECT_EQ(pack.hits, kJobs - 1);
    EXPECT_EQ(map.misses, 1u);
    EXPECT_EQ(map.hits, kJobs - 1);

    // Scheduler stage units: one start + one finalize per job.
    EXPECT_EQ(globalCounter(units_total, {{"stage", "start"}}) -
                  start_units_before,
              kJobs);
    EXPECT_EQ(globalCounter(units_total, {{"stage", "finalize"}}) -
                  finalize_units_before,
              kJobs);
    EXPECT_EQ(globalCounter("zatel_campaign_jobs_total",
                            {{"status", "ok"}}) -
                  ok_jobs_before,
              kJobs);

    // Scheduler spans exist and pool workers got stable trace names.
    std::vector<obs::TraceEvent> events =
        obs::TraceRecorder::global().snapshot();
    EXPECT_EQ(countSpans(events, "job.start"), kJobs);
    EXPECT_EQ(countSpans(events, "job.finalize"), kJobs);
    EXPECT_GE(countSpans(events, "job.group"), kJobs);
    size_t pool_threads = 0;
    for (const auto &entry : obs::TraceRecorder::global().threadNames()) {
        if (entry.second.rfind("pool", 0) == 0)
            ++pool_threads;
    }
    EXPECT_GE(pool_threads, 4u);
}

} // namespace
} // namespace zatel
