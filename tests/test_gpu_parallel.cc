/**
 * @file
 * Three-way differential suite for the epoch-span parallel cycle loop
 * (docs/SIMULATOR.md, "Intra-simulation parallelism").
 *
 * The oracle chain: TickMode::Slow (tick everything, every cycle) vs
 * the fast serial loop vs the fast parallel loop at several thread
 * counts. All three must be observationally identical — byte-identical
 * GpuStats, identical per-component StatsReport, identical probe
 * schedules and snapshots, and bit-identical predictor output — for
 * every scene x config x scheduler x epoch combination, at thread
 * counts 1/2/4/7 (7 exercises non-power-of-two shard splits).
 *
 * GpuParallelFuzz draws ~64 deterministic random configurations so
 * shard-boundary and epoch-boundary edge cases (SMs < threads, one SM,
 * epoch longer than the whole simulation, zero-latency NoC) are covered
 * by construction rather than hand-picked. Every draw also stresses the
 * SoA hot-path layout (docs/SIMULATOR.md, "Data layout of the hot
 * path"): the workload build runs packetized BVH traversal for every
 * pixel, and the L1-size / MSHR-size / L1-latency grid keeps the flat
 * tag maps, fill heaps and waiter pools churning under the same
 * three-way oracle.
 *
 * Suites are named GpuParallel* so the tsan-determinism preset's test
 * filter picks them up (CMakePresets.json).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/gpu.hh"
#include "gpusim/stats_report.hh"
#include "rt/bvh.hh"
#include "rt/scene.hh"
#include "rt/scene_library.hh"
#include "rt/tracer.hh"
#include "util/rng.hh"
#include "zatel/predictor.hh"

namespace zatel::gpusim
{
namespace
{

/** Bit pattern of a double; NaN-safe and distinguishes -0.0 from 0.0. */
uint64_t
bitsOf(double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/** Expect every raw counter of two GpuStats to be identical, via the
 *  gpuStatsFields() table so new counters are covered automatically. */
void
expectStatsIdentical(const GpuStats &a, const GpuStats &b,
                     const std::string &context)
{
    for (const GpuStatsField &field : gpuStatsFields()) {
        EXPECT_EQ(a.*field.member, b.*field.member)
            << context << ": counter " << field.name << " diverged";
    }
}

struct SceneBundle
{
    rt::Scene scene;
    rt::Bvh bvh;
    std::unique_ptr<rt::Tracer> tracer;
};

/** Heap-allocated so the tracer's scene/BVH references stay stable. */
std::unique_ptr<SceneBundle>
makeScene(rt::SceneId id)
{
    auto bundle = std::make_unique<SceneBundle>();
    bundle->scene = rt::buildScene(id, rt::SceneDetail{0.4f});
    bundle->bvh.build(bundle->scene.triangles());
    bundle->tracer =
        std::make_unique<rt::Tracer>(bundle->scene, bundle->bvh);
    return bundle;
}

struct RunOutcome
{
    GpuStats stats;
    StatsReport report;
    uint64_t parallelSpans = 0;
    uint32_t simThreadsUsed = 0;
    bool stoppedEarly = false;
    std::vector<uint64_t> probeCycles;
    std::vector<GpuStats> probeSnapshots;
};

/** One run of @p config (whose simThreads/epochLength knobs select the
 *  loop) in tick mode @p mode. */
RunOutcome
runMode(const rt::Tracer &tracer, const GpuConfig &config, TickMode mode,
        uint32_t frame, uint64_t probe_interval = 0,
        uint64_t stop_after_probes = 0)
{
    SimWorkload workload =
        SimWorkload::buildFullFrame(tracer, frame, frame);
    Gpu gpu(config, workload);
    gpu.setTickMode(mode);
    RunOutcome out;
    if (probe_interval > 0) {
        gpu.setProgressCallback(
            probe_interval,
            [&out, stop_after_probes](uint64_t cycle, const GpuStats &snap) {
                out.probeCycles.push_back(cycle);
                out.probeSnapshots.push_back(snap);
                return stop_after_probes != 0 &&
                       out.probeCycles.size() >= stop_after_probes;
            });
    }
    out.stats = gpu.run();
    out.report = gpu.statsReport();
    out.parallelSpans = gpu.parallelSpans();
    out.simThreadsUsed = gpu.simThreadsUsed();
    out.stoppedEarly = gpu.stoppedEarly();
    return out;
}

/** Full observational comparison of two runs (stats, report text,
 *  probe schedule, probe snapshots). */
void
expectOutcomesIdentical(const RunOutcome &want, const RunOutcome &got,
                        const std::string &context)
{
    expectStatsIdentical(want.stats, got.stats, context);
    EXPECT_EQ(want.stoppedEarly, got.stoppedEarly) << context;

    ASSERT_EQ(want.report.lines().size(), got.report.lines().size())
        << context;
    for (size_t i = 0; i < want.report.lines().size(); ++i) {
        EXPECT_EQ(want.report.lines()[i].path, got.report.lines()[i].path)
            << context << ": report row " << i;
        EXPECT_EQ(bitsOf(want.report.lines()[i].value),
                  bitsOf(got.report.lines()[i].value))
            << context << ": report counter "
            << want.report.lines()[i].path;
    }

    EXPECT_EQ(want.probeCycles, got.probeCycles) << context;
    ASSERT_EQ(want.probeSnapshots.size(), got.probeSnapshots.size())
        << context;
    for (size_t i = 0; i < want.probeSnapshots.size(); ++i) {
        expectStatsIdentical(want.probeSnapshots[i], got.probeSnapshots[i],
                             context + ": probe " + std::to_string(i));
    }
}

/** The three-way oracle chain for one scene x config x probe setup:
 *  slow vs fast-serial vs fast-parallel at each thread count. */
void
expectThreeWayIdentical(const rt::Tracer &tracer, const GpuConfig &base,
                        const std::string &context, uint32_t frame,
                        std::vector<uint32_t> thread_counts = {2, 4, 7},
                        uint64_t probe_interval = 0,
                        uint64_t stop_after_probes = 0)
{
    GpuConfig serial_config = base;
    serial_config.simThreads = 1;
    RunOutcome slow = runMode(tracer, serial_config, TickMode::Slow, frame,
                              probe_interval, stop_after_probes);
    RunOutcome serial = runMode(tracer, serial_config, TickMode::Fast,
                                frame, probe_interval, stop_after_probes);
    expectOutcomesIdentical(slow, serial, context + "/slow-vs-serial");
    EXPECT_EQ(serial.parallelSpans, 0u) << context;

    for (uint32_t threads : thread_counts) {
        GpuConfig parallel_config = base;
        parallel_config.simThreads = threads;
        RunOutcome parallel =
            runMode(tracer, parallel_config, TickMode::Fast, frame,
                    probe_interval, stop_after_probes);
        std::string label =
            context + "/slow-vs-parallel-t" + std::to_string(threads);
        expectOutcomesIdentical(slow, parallel, label);
        // The parallel loop must actually engage (threads clamp to the
        // SM count; with >= 2 SMs these counts all stay > 1).
        if (base.numSms > 1) {
            EXPECT_GT(parallel.simThreadsUsed, 1u) << label;
            EXPECT_GT(parallel.parallelSpans, 0u) << label;
        }
    }
}

// ---------------------------------------------------------------------
// Hand-picked differential coverage: scenes x configs x schedulers x
// epochs, plus probe and early-stop plumbing.
// ---------------------------------------------------------------------

TEST(GpuParallelDifferential, WkndMobileSoc)
{
    auto s = makeScene(rt::SceneId::Wknd);
    expectThreeWayIdentical(*s->tracer, GpuConfig::mobileSoc(),
                            "wknd/mobile", 32);
}

TEST(GpuParallelDifferential, WkndRtx2060)
{
    auto s = makeScene(rt::SceneId::Wknd);
    expectThreeWayIdentical(*s->tracer, GpuConfig::rtx2060(),
                            "wknd/rtx2060", 24);
}

TEST(GpuParallelDifferential, SprngMobileSocLrrScheduler)
{
    auto s = makeScene(rt::SceneId::Sprng);
    GpuConfig config = GpuConfig::mobileSoc();
    config.scheduler = WarpSchedulerPolicy::LooseRoundRobin;
    expectThreeWayIdentical(*s->tracer, config, "sprng/mobile/lrr", 24);
}

TEST(GpuParallelDifferential, EpochSixteenMatchesAcrossAllLoops)
{
    // Epoch 16 == the NoC latency: full-length spans between barriers.
    // The epoch is a timing-model knob, so slow and fast-serial run it
    // too — the three-way chain pins the *epoch-gated* dispatch, not
    // just the parallel execution of it.
    auto s = makeScene(rt::SceneId::Wknd);
    GpuConfig config = GpuConfig::mobileSoc();
    config.epochLength = 16;
    expectThreeWayIdentical(*s->tracer, config, "wknd/mobile/epoch16", 32);
}

TEST(GpuParallelDifferential, ProgressProbesObserved)
{
    auto s = makeScene(rt::SceneId::Wknd);
    GpuConfig config = GpuConfig::mobileSoc();
    config.epochLength = 8;
    expectThreeWayIdentical(*s->tracer, config, "wknd/mobile/probes", 32,
                            {2, 4, 7}, /*probe_interval=*/512);
}

TEST(GpuParallelDifferential, EarlyStopViaProbe)
{
    auto s = makeScene(rt::SceneId::Wknd);
    expectThreeWayIdentical(*s->tracer, GpuConfig::mobileSoc(),
                            "wknd/mobile/early-stop", 32, {2, 4, 7},
                            /*probe_interval=*/256,
                            /*stop_after_probes=*/3);
}

TEST(GpuParallelDifferential, SingleSmClampsThreadsAndStaysIdentical)
{
    auto s = makeScene(rt::SceneId::Wknd);
    GpuConfig config = GpuConfig::mobileSoc();
    config.numSms = 1;
    config.numMemPartitions = 1;
    expectThreeWayIdentical(*s->tracer, config, "wknd/1sm", 16);
}

// ---------------------------------------------------------------------
// Knob resolution: instance > global > environment, TickMode-style.
// ---------------------------------------------------------------------

TEST(GpuParallelKnobs, GlobalThreadsEngageAndInstanceOverrides)
{
    auto s = makeScene(rt::SceneId::Wknd);
    setGlobalSimThreads(4);
    RunOutcome by_global = runMode(*s->tracer, GpuConfig::mobileSoc(),
                                   TickMode::Fast, 16);
    EXPECT_EQ(by_global.simThreadsUsed, 4u);
    EXPECT_GT(by_global.parallelSpans, 0u);

    GpuConfig pinned = GpuConfig::mobileSoc();
    pinned.simThreads = 1;
    RunOutcome by_instance =
        runMode(*s->tracer, pinned, TickMode::Fast, 16);
    EXPECT_EQ(by_instance.simThreadsUsed, 1u);
    EXPECT_EQ(by_instance.parallelSpans, 0u);
    setGlobalSimThreads(0);
    EXPECT_EQ(globalSimThreads(), 0u);

    setGlobalEpochLength(8);
    GpuConfig epoch_pinned = GpuConfig::mobileSoc();
    epoch_pinned.epochLength = 2;
    SimWorkload workload =
        SimWorkload::buildFullFrame(*s->tracer, 16, 16);
    Gpu gpu(epoch_pinned, workload);
    gpu.run();
    EXPECT_EQ(gpu.epochLengthUsed(), 2u);
    setGlobalEpochLength(0);
    EXPECT_EQ(globalEpochLength(), 0u);
}

TEST(GpuParallelKnobs, SlowModeIgnoresSimThreads)
{
    auto s = makeScene(rt::SceneId::Wknd);
    GpuConfig config = GpuConfig::mobileSoc();
    config.simThreads = 4;
    RunOutcome slow = runMode(*s->tracer, config, TickMode::Slow, 16);
    EXPECT_EQ(slow.simThreadsUsed, 1u);
    EXPECT_EQ(slow.parallelSpans, 0u);
}

// ---------------------------------------------------------------------
// Seeded randomized config fuzz: 64 deterministic draws of SM count /
// partition count / RT units / epoch / scheduler / NoC latency / warp
// capacity / scene, each asserting the full three-way oracle chain.
// ---------------------------------------------------------------------

struct FuzzDraw
{
    GpuConfig config;
    uint32_t threads = 0;
    uint32_t frame = 0;
    bool sprng = false;
};

FuzzDraw
drawConfig(Rng &rng)
{
    FuzzDraw draw;
    GpuConfig &config = draw.config;
    config = GpuConfig::mobileSoc();
    config.name = "fuzz";
    config.numSms = static_cast<uint32_t>(rng.nextRange(1, 12));
    config.numMemPartitions = static_cast<uint32_t>(rng.nextRange(1, 6));
    config.rtUnitsPerSm = static_cast<uint32_t>(rng.nextRange(1, 2));
    config.scheduler = rng.nextBounded(2) == 0
                           ? WarpSchedulerPolicy::GreedyThenOldest
                           : WarpSchedulerPolicy::LooseRoundRobin;
    // Small warp capacities force multi-round dispatch with a standing
    // pending-warp backlog across many epoch boundaries.
    static constexpr uint32_t kWarpCaps[] = {2, 4, 32};
    config.maxWarpsPerSm = kWarpCaps[rng.nextBounded(3)];
    // Zero-latency NoC degenerates spans to one cycle; 1 and 4 make
    // span boundaries land mid-epoch.
    static constexpr uint32_t kNocLatencies[] = {0, 1, 4, 16};
    config.nocLatencyCycles = kNocLatencies[rng.nextBounded(4)];
    // SoA hot-path stress (docs/SIMULATOR.md, "Data layout of the hot
    // path"): a tiny L1 churns the flat tag map's insert/backward-shift
    // delete and keeps the fill heaps and MSHR waiter pools live; a
    // tiny MSHR forces allocate-stall requeues through the lane rings;
    // l1dLatencyCycles=0 drains the L1-hit ring on the issue cycle
    // (front-ready == now). Every draw lands somewhere in this grid, so
    // each one exercises the SoA fill/MSHR layout against the slow-tick
    // oracle, not just the draws that happen to miss in cache.
    static constexpr uint32_t kL1Sizes[] = {1024, 4096, 64 * 1024};
    config.l1dSizeBytes = kL1Sizes[rng.nextBounded(3)];
    static constexpr uint32_t kMshrSizes[] = {2, 8, 64};
    config.rtMshrSize = kMshrSizes[rng.nextBounded(3)];
    config.l2MshrSize = kMshrSizes[rng.nextBounded(3)];
    static constexpr uint32_t kL1Latencies[] = {0, 1, 20};
    config.l1dLatencyCycles = kL1Latencies[rng.nextBounded(3)];
    // Epochs below, at, and far beyond the NoC latency — including one
    // longer than any simulation here will run.
    static constexpr uint32_t kEpochs[] = {1, 2, 3, 5, 8, 16, 32,
                                           1'000'000};
    config.epochLength = kEpochs[rng.nextBounded(8)];
    static constexpr uint32_t kThreads[] = {2, 3, 4, 7};
    draw.threads = kThreads[rng.nextBounded(4)];
    if (config.epochLength >= 1'000'000) {
        // Epoch longer than the sim: every warp must fit in the cycle-0
        // dispatch or the tail would wait a million cycles. An 8x8
        // frame is two warps — always resident-capacity-safe.
        draw.frame = 8;
        config.maxWarpsPerSm = 32;
    } else {
        draw.frame = static_cast<uint32_t>(rng.nextRange(8, 12));
    }
    draw.sprng = rng.nextBounded(4) == 0;
    return draw;
}

TEST(GpuParallelFuzz, ThreeWayOracleAgreementOver64Draws)
{
    auto wknd = makeScene(rt::SceneId::Wknd);
    auto sprng = makeScene(rt::SceneId::Sprng);
    Rng rng(0x5EEDBEEF);
    for (int i = 0; i < 64; ++i) {
        FuzzDraw draw = drawConfig(rng);
        const rt::Tracer &tracer =
            draw.sprng ? *sprng->tracer : *wknd->tracer;
        std::string context =
            "draw" + std::to_string(i) + "/sms" +
            std::to_string(draw.config.numSms) + "/parts" +
            std::to_string(draw.config.numMemPartitions) + "/epoch" +
            std::to_string(draw.config.epochLength) + "/noc" +
            std::to_string(draw.config.nocLatencyCycles) + "/l1" +
            std::to_string(draw.config.l1dSizeBytes) + "/l1lat" +
            std::to_string(draw.config.l1dLatencyCycles) + "/mshr" +
            std::to_string(draw.config.rtMshrSize) + "/t" +
            std::to_string(draw.threads);
        expectThreeWayIdentical(tracer, draw.config, context, draw.frame,
                                {draw.threads});
    }
}

// ---------------------------------------------------------------------
// Pipeline-level differential: the whole predictor must produce
// bit-identical output with intra-simulation parallelism on.
// ---------------------------------------------------------------------

TEST(GpuParallelPredictor, PredictionBitIdenticalSerialVsParallel)
{
    auto s = makeScene(rt::SceneId::Wknd);
    core::ZatelParams params;
    params.width = 48;
    params.height = 48;
    params.numThreads = 1;

    // Same timing model (epoch 8) for both; only the execution strategy
    // differs. Group sims run nested under the predictor's own pool in
    // the parallel case — the work-helping pool keeps that safe.
    setGlobalEpochLength(8);
    setGlobalSimThreads(1);
    core::ZatelResult serial =
        core::ZatelPredictor(s->scene, s->bvh, GpuConfig::mobileSoc(),
                             params)
            .predict();
    setGlobalSimThreads(4);
    core::ZatelResult parallel =
        core::ZatelPredictor(s->scene, s->bvh, GpuConfig::mobileSoc(),
                             params)
            .predict();
    setGlobalSimThreads(0);
    setGlobalEpochLength(0);

    EXPECT_EQ(serial.k, parallel.k);
    EXPECT_EQ(bitsOf(serial.fractionTraced),
              bitsOf(parallel.fractionTraced));
    ASSERT_EQ(serial.predicted.size(), parallel.predicted.size());
    for (const auto &[metric, value] : serial.predicted) {
        ASSERT_TRUE(parallel.predicted.count(metric));
        EXPECT_EQ(bitsOf(value), bitsOf(parallel.predicted.at(metric)))
            << "metric " << metricName(metric) << " diverged";
    }
    ASSERT_EQ(serial.groups.size(), parallel.groups.size());
    for (size_t g = 0; g < serial.groups.size(); ++g) {
        expectStatsIdentical(serial.groups[g].stats,
                             parallel.groups[g].stats,
                             "group " + std::to_string(g));
    }
}

} // namespace
} // namespace zatel::gpusim
