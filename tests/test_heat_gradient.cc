/**
 * @file
 * Tests for the temperature gradient and its invertible coolness value.
 */

#include <gtest/gtest.h>

#include "heatmap/heat_gradient.hh"

namespace zatel::heatmap
{
namespace
{

TEST(HeatGradient, EndpointsAreBlueAndRed)
{
    rt::Vec3 cold = temperatureToColor(0.0);
    rt::Vec3 hot = temperatureToColor(1.0);
    EXPECT_GT(cold.z, cold.x); // blue dominant
    EXPECT_GT(hot.x, hot.z);   // red dominant
}

TEST(HeatGradient, ClampsOutOfRange)
{
    EXPECT_EQ(temperatureToColor(-0.5), temperatureToColor(0.0));
    EXPECT_EQ(temperatureToColor(1.5), temperatureToColor(1.0));
}

TEST(HeatGradient, RoundTripOnGradient)
{
    for (double t : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        rt::Vec3 color = temperatureToColor(t);
        EXPECT_NEAR(colorToTemperature(color), t, 0.01) << "t=" << t;
    }
}

TEST(HeatGradient, CoolnessIsOneMinusTemperature)
{
    for (double t : {0.0, 0.3, 0.6, 1.0}) {
        rt::Vec3 color = temperatureToColor(t);
        EXPECT_NEAR(coolnessOfColor(color), 1.0 - t, 0.01);
    }
}

TEST(HeatGradient, CoolnessInUnitInterval)
{
    // Arbitrary off-gradient colors still land in [0, 1].
    for (const rt::Vec3 &c : {rt::Vec3{1.0f, 1.0f, 1.0f},
                              rt::Vec3{0.0f, 0.0f, 0.0f},
                              rt::Vec3{0.5f, 0.2f, 0.7f}}) {
        double coolness = coolnessOfColor(c);
        EXPECT_GE(coolness, 0.0);
        EXPECT_LE(coolness, 1.0);
    }
}

TEST(HeatGradient, MonotoneOrdering)
{
    // Warmer temperature never maps to a "cooler" recovered value.
    double prev = colorToTemperature(temperatureToColor(0.0));
    for (int i = 1; i <= 20; ++i) {
        double t = i / 20.0;
        double recovered = colorToTemperature(temperatureToColor(t));
        EXPECT_GE(recovered, prev - 1e-9);
        prev = recovered;
    }
}

TEST(HeatGradient, DistinctStops)
{
    // Adjacent sampled colors differ (no flat regions).
    for (int i = 0; i < 10; ++i) {
        rt::Vec3 a = temperatureToColor(i / 10.0);
        rt::Vec3 b = temperatureToColor((i + 1) / 10.0);
        EXPECT_GT(lengthSquared(a - b), 1e-4f);
    }
}

} // namespace
} // namespace zatel::heatmap
