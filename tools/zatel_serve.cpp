/**
 * @file
 * zatel-serve — the prediction server daemon (docs/SERVING.md).
 *
 * Long-running front end over the same execution core zatel-batch uses
 * (JobPipeline + ArtifactCache): clients POST JSON prediction requests
 * and get the prediction back as JSON, with identical concurrent
 * requests coalesced into one simulation and repeat requests answered
 * from cache:
 *
 *   zatel-serve --port 8080 --cache-dir .zatel-cache
 *   curl -d '{"scene":"PARK","gpu":"soc","res":64}' \
 *        http://127.0.0.1:8080/predict
 *
 * Also serves GET /healthz, /status (JSON counters) and /metrics
 * (Prometheus text with the SLO instruments). SIGINT/SIGTERM drain
 * gracefully: stop accepting, finish queued requests, exit 0.
 */

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/metrics_registry.hh"
#include "serve/server.hh"
#include "service/artifact_cache.hh"
#include "util/arg_parser.hh"
#include "util/logging.hh"

namespace
{

using namespace zatel;

/** Set by the SIGINT/SIGTERM handler; polled by the main loop. */
volatile std::sig_atomic_t g_shutdown = 0;

extern "C" void
handleShutdownSignal(int)
{
    g_shutdown = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("zatel-serve",
                   "Prediction server daemon: request coalescing, "
                   "admission control and SLO metrics over the shared "
                   "artifact cache");
    args.addOption("host", "127.0.0.1",
                   "bind address (loopback by default; the daemon "
                   "trusts its clients)");
    args.addOption("port", "8080", "TCP port (0 = pick an ephemeral one)");
    args.addOption("port-file", "",
                   "write the bound port here once listening (for "
                   "scripts using --port 0)");
    args.addOption("http-workers", "4", "HTTP worker threads");
    args.addOption("workers", "0",
                   "simulation worker threads (0 = hardware concurrency)");
    args.addOption("queue-limit", "64",
                   "accepted connections queued before 503 shedding");
    args.addOption("max-inflight", "64",
                   "distinct recipes simulating before 503 shedding");
    args.addOption("deadline-ms", "0",
                   "default per-request deadline (0 = none; a request's "
                   "own deadline_ms field overrides it)");
    args.addOption("max-deadline-ms", "300000",
                   "hardest deadline a request may ask for");
    args.addOption("read-timeout-ms", "10000",
                   "socket budget for reading one request");
    args.addOption("reply-cache", "256",
                   "finished replies kept for cache-hit answers");
    args.addOption("cache-dir", "",
                   "persist heatmaps/oracle stats here across runs");
    args.addOption("cache-mb", "512",
                   "in-memory artifact cache budget in MiB");
    args.addOption("stall-timeout-ms", "0",
                   "cancel+retry a simulation making no progress for "
                   "this long (0 = no watchdog)");
    args.addOption("stage-retries", "1",
                   "retries for transient start-stage failures");
    args.addOption("metrics-out", "",
                   "also dump the metrics registry here on shutdown "
                   "(.json = JSON, anything else = Prometheus text)");
    args.addFlag("help", "show this help");

    if (!args.parse(argc, argv)) {
        std::fprintf(stderr, "error: %s\n%s", args.errorMessage().c_str(),
                     args.usage().c_str());
        return 1;
    }
    if (args.getFlag("help")) {
        std::printf("%s", args.usage().c_str());
        return 0;
    }

    serve::ServeParams params;
    params.host = args.get("host");
    params.port = args.getPortNumber("port", /*allowZero=*/true);
    params.httpWorkers =
        static_cast<size_t>(args.getIntInRange("http-workers", 1, 256));
    params.connectionQueueLimit =
        static_cast<size_t>(args.getIntInRange("queue-limit", 1, 65536));
    params.readTimeoutSeconds =
        static_cast<double>(args.getIntInRange("read-timeout-ms", 1,
                                               3600000)) /
        1000.0;
    params.predict.defaultDeadlineSeconds =
        static_cast<double>(
            args.getIntInRange("deadline-ms", 0, 86400000)) /
        1000.0;
    params.predict.maxDeadlineSeconds =
        static_cast<double>(
            args.getIntInRange("max-deadline-ms", 0, 86400000)) /
        1000.0;
    params.predict.maxPendingPredictions =
        static_cast<size_t>(args.getIntInRange("max-inflight", 1, 65536));
    params.predict.responseCacheEntries =
        static_cast<size_t>(args.getIntInRange("reply-cache", 0, 1 << 20));
    params.pipeline.workers = static_cast<size_t>(
        args.getIntInRange("workers", 0, 4096));
    params.pipeline.stallTimeoutSeconds =
        static_cast<double>(
            args.getIntInRange("stall-timeout-ms", 0, 86400000)) /
        1000.0;
    params.pipeline.stageRetries = static_cast<uint32_t>(
        args.getIntInRange("stage-retries", 0, 100));

    const uint64_t budget =
        static_cast<uint64_t>(args.getPositiveInt("cache-mb")) * 1024 *
        1024;
    service::ArtifactCache cache(budget, args.get("cache-dir"));

    serve::PredictionServer server(cache, params);
    try {
        server.start();
    } catch (const serve::ServeError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }

    if (args.has("port-file")) {
        const std::string &path = args.get("port-file");
        std::FILE *file = std::fopen(path.c_str(), "w");
        if (!file) {
            warn("could not write port file ", path);
        } else {
            std::fprintf(file, "%u\n",
                         static_cast<unsigned>(server.port()));
            std::fclose(file);
        }
    }

    struct sigaction action{};
    action.sa_handler = handleShutdownSignal;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);

    // The acceptor and workers do all the serving; the main thread only
    // waits for a shutdown signal (tools may sleep — src/ may not).
    while (!g_shutdown)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    inform("zatel-serve: shutdown signal received, draining");
    server.stop();

    bool io_ok = true;
    if (args.has("metrics-out")) {
        const std::string &path = args.get("metrics-out");
        if (obs::MetricsRegistry::global().writeTo(path)) {
            std::printf("wrote %s\n", path.c_str());
        } else {
            warn("could not write metrics to ", path);
            io_ok = false;
        }
    }
    if (!args.get("cache-dir").empty())
        std::printf("%s\n", cache.summary().c_str());
    return io_ok ? 0 : 1;
}
