/**
 * @file
 * zatel-batch — campaign front end for the batch prediction service.
 *
 * Runs a whole campaign of predictions on one shared worker pool with a
 * content-addressed artifact cache (src/service/), instead of invoking
 * `zatel predict` once per configuration:
 *
 *   zatel-batch --campaign sweep.jsonl --jobs 8 --out results.jsonl
 *   zatel-batch --campaign sweep.csv --cache-dir .zatel-cache --resume
 *
 * Without --campaign, a sweep shorthand builds the cartesian product of
 * every repeated --scene / --gpu / --res / --fraction occurrence:
 *
 *   zatel-batch --scene PARK --scene BUNNY --gpu soc --res 64 --res 96
 *
 * expands to four jobs. Job ids are deterministic, so a re-run with
 * --resume skips every job already recorded as "ok" in --out.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.hh"
#include "obs/metrics_registry.hh"
#include "obs/trace_recorder.hh"
#include "service/artifact_cache.hh"
#include "service/campaign.hh"
#include "service/result_store.hh"
#include "service/scheduler.hh"
#include "util/arg_parser.hh"
#include "util/logging.hh"

namespace
{

using namespace zatel;

/** Build the sweep-shorthand campaign from repeated options. */
std::vector<service::CampaignJob>
campaignFromSweep(const ArgParser &args)
{
    std::vector<std::string> scenes = args.getList("scene");
    std::vector<std::string> gpus = args.getList("gpu");
    std::vector<std::string> resolutions = args.getList("res");
    std::vector<std::string> fractions = args.getList("fraction");
    if (fractions.empty())
        fractions.push_back(""); // equation-(1) fraction

    std::vector<service::CampaignJob> jobs;
    for (const std::string &scene : scenes) {
        for (const std::string &gpu : gpus) {
            for (const std::string &res : resolutions) {
                for (const std::string &fraction : fractions) {
                    service::CampaignJob job;
                    service::applyJobField(job, "scene", scene);
                    service::applyJobField(job, "gpu", gpu);
                    service::applyJobField(job, "res", res);
                    service::applyJobField(job, "fraction", fraction);
                    service::applyJobField(job, "spp", args.get("spp"));
                    service::applyJobField(job, "seed", args.get("seed"));
                    service::applyJobField(job, "detail",
                                           args.get("detail"));
                    if (args.has("k"))
                        service::applyJobField(job, "k", args.get("k"));
                    if (args.getFlag("oracle"))
                        service::applyJobField(job, "oracle", "true");
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    service::finalizeCampaign(jobs);
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("zatel-batch",
                   "Batch campaign runner: shared-pool scheduling, "
                   "content-addressed artifact cache, resumable results");
    args.addOption("campaign", "",
                   "campaign file (.csv -> CSV with '|' sweeps, anything "
                   "else -> JSONL); omit to use the sweep shorthand");
    args.addOption("out", "zatel-results.jsonl",
                   "result file (.csv -> CSV, anything else -> JSONL)");
    args.addOption("jobs", "0",
                   "shared-pool worker count (0 = hardware concurrency)");
    args.addOption("cache-dir", "",
                   "persist heatmaps/oracle stats here across runs");
    args.addOption("cache-mb", "512",
                   "in-memory artifact cache budget in MiB");
    args.addOption("timeout", "0",
                   "per-job wall-clock budget in seconds (0 = none)");
    // Resilience (docs/ROBUSTNESS.md).
    args.addOption("group-retries", "1",
                   "retries per failed group simulation before the group "
                   "is excluded from the prediction");
    args.addOption("stall-timeout-ms", "0",
                   "cancel+retry a group/oracle simulation making no "
                   "simulated-cycle progress for this long (0 = no "
                   "watchdog)");
    args.addOption("min-groups-fraction", "0.5",
                   "minimum fraction of groups that must survive for a "
                   "degraded prediction (below it the job fails)");
    args.addOption("stage-retries", "1",
                   "retries for transient start-stage/oracle failures");
    args.addFlag("fail-fast",
                 "treat any group failure as fatal for its job (no "
                 "degraded predictions)");
    // Distributed campaigns (docs/DISTRIBUTED.md).
    args.addOption("workers", "0",
                   "distribute the campaign across this many zatel-worker "
                   "processes (0 = run in-process)");
    args.addOption("worker-cmd", "",
                   "worker executable (default: zatel-worker next to "
                   "this binary)");
    args.addOption("board-dir", "",
                   "job-board scratch directory (default: <out>.board)");
    args.addOption("shards", "0",
                   "job-board shard count (0 = min(jobs, workers*4))");
    args.addOption("lease-timeout-ms", "10000",
                   "reclaim a worker's shard lease after this long "
                   "without a heartbeat");
    args.addOption("max-shard-reassignments", "3",
                   "reclamations per shard before its unfinished jobs "
                   "degrade instead of retrying forever");
    args.addOption("cache-disk-mb", "0",
                   "disk-tier byte budget for the shared --cache-dir in "
                   "MiB (0 = unlimited)");
    args.addFlag("keep-board",
                 "keep the job-board directory after the run (debugging)");
    args.addFlag("retry-degraded",
                 "with --resume: re-run jobs whose recorded status is "
                 "'degraded' (default resumes them as done)");
    // Sweep shorthand (each may repeat to form a cartesian product).
    args.addOption("scene", "PARK", "scene name (repeatable)");
    args.addOption("gpu", "soc", "target GPU: soc | rtx2060 (repeatable)");
    args.addOption("res", "64", "square image resolution (repeatable)");
    args.addOption("fraction", "",
                   "fixed trace fraction (repeatable; bypasses eq. 1)");
    args.addOption("spp", "1", "samples per pixel");
    args.addOption("seed", "173025", "pipeline seed");
    args.addOption("detail", "1.0", "procedural scene density multiplier");
    args.addOption("k", "", "force the division/downscale factor");
    args.addOption("trace-out", "",
                   "write a Chrome trace_event JSON of the campaign here "
                   "(open in chrome://tracing or Perfetto)");
    args.addOption("metrics-out", "",
                   "write the metrics registry here (.json = JSON, "
                   "anything else = Prometheus text)");
    args.addOption("progress-seconds", "10",
                   "interval of the periodic progress line for long "
                   "campaigns (0 disables it)");
    args.addFlag("oracle", "also run the (cached) full simulation");
    args.addFlag("resume", "skip jobs already 'ok' in --out; append");
    args.addFlag("no-timing",
                 "omit wall-clock fields from result rows (for "
                 "byte-identical run-to-run diffs)");
    args.addFlag("quiet", "suppress the per-job progress lines");
    args.addFlag("help", "show this help");

    if (!args.parse(argc, argv)) {
        std::fprintf(stderr, "error: %s\n%s", args.errorMessage().c_str(),
                     args.usage().c_str());
        return 1;
    }
    if (args.getFlag("help")) {
        std::printf("%s", args.usage().c_str());
        return 0;
    }

    // Range-check every numeric knob before touching any state: the
    // validated accessors reject garbage AND "parsed but nonsensical"
    // values with one clear message (stderr + exit 1, never UB from a
    // negative cast).
    const int64_t group_retries = args.getIntInRange("group-retries", 0, 100);
    const int64_t stage_retries = args.getIntInRange("stage-retries", 0, 100);
    const double stall_timeout_ms = args.getDouble("stall-timeout-ms");
    const double min_groups_fraction =
        args.getDouble("min-groups-fraction");
    if (stall_timeout_ms < 0.0) {
        std::fprintf(stderr,
                     "error: --stall-timeout-ms must be >= 0, got %g\n",
                     stall_timeout_ms);
        return 1;
    }
    if (min_groups_fraction < 0.0 || min_groups_fraction > 1.0) {
        std::fprintf(stderr,
                     "error: --min-groups-fraction must be in [0, 1], "
                     "got %g\n",
                     min_groups_fraction);
        return 1;
    }
    const int64_t dist_workers = args.getIntInRange("workers", 0, 256);
    const int64_t dist_shards = args.getIntInRange("shards", 0, 4096);
    const int64_t max_shard_reassignments =
        args.getIntInRange("max-shard-reassignments", 0, 1000);
    const int64_t cache_disk_mb =
        args.getIntInRange("cache-disk-mb", 0, 1 << 20);
    const double lease_timeout_ms = args.getDouble("lease-timeout-ms");
    if (lease_timeout_ms <= 0.0) {
        std::fprintf(stderr,
                     "error: --lease-timeout-ms must be > 0, got %g\n",
                     lease_timeout_ms);
        return 1;
    }
    const bool retry_degraded = args.getFlag("retry-degraded");
    if (retry_degraded && !args.getFlag("resume")) {
        std::fprintf(stderr,
                     "error: --retry-degraded requires --resume (it "
                     "changes which recorded rows count as done)\n");
        return 1;
    }

    std::vector<service::CampaignJob> jobs;
    try {
        jobs = args.has("campaign")
                   ? service::loadCampaignFile(args.get("campaign"))
                   : campaignFromSweep(args);
    } catch (const service::CampaignError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    for (service::CampaignJob &job : jobs) {
        job.params.groupRetries = static_cast<uint32_t>(group_retries);
        job.params.minGroupsFraction = min_groups_fraction;
        job.params.failFast = args.getFlag("fail-fast");
    }

    const std::string out_path = args.get("out");
    service::SchedulerParams sched;
    sched.workers =
        static_cast<size_t>(args.getIntInRange("jobs", 0, 4096));
    sched.jobTimeoutSeconds = args.getDouble("timeout");
    sched.stallTimeoutSeconds = stall_timeout_ms / 1000.0;
    sched.stageRetries = static_cast<uint32_t>(stage_retries);
    if (args.getFlag("resume")) {
        // A previous run may have died mid-append; drop the torn tail
        // line before reopening for append (docs/ROBUSTNESS.md).
        service::ResultStore::repairTruncatedTail(out_path);
        sched.alreadyCompleted = service::ResultStore::completedJobIds(
            out_path, /*degraded_as_done=*/!retry_degraded);
    }

    service::ResultStoreOptions store_options;
    store_options.includeTiming = !args.getFlag("no-timing");
    store_options.append = args.getFlag("resume");
    service::ResultStore store(out_path, store_options);

    // Observability must be switched on BEFORE the scheduler exists
    // (its shared ThreadPool registers worker trace names at startup)
    // and before the distributed coordinator (its counters).
    if (args.has("trace-out")) {
        obs::TraceRecorder::global().enable();
        obs::TraceRecorder::global().setThreadName("main");
    }
    if (args.has("metrics-out"))
        obs::MetricsRegistry::global().setEnabled(true);

    const bool quiet = args.getFlag("quiet");

    // Shared tail for both the in-process and the distributed paths:
    // trace/metrics export, write-failure warning, exit policy.
    // Degraded jobs deliver usable predictions and do NOT fail the
    // campaign's exit code (docs/ROBUSTNESS.md).
    auto finish = [&](size_t failed, size_t cancelled, size_t timed_out) {
        bool io_ok = true;
        if (args.has("trace-out")) {
            obs::TraceRecorder::global().disable();
            const std::string &path = args.get("trace-out");
            if (obs::TraceRecorder::global().writeChromeTrace(path)) {
                std::printf("wrote %s (chrome://tracing)\n",
                            path.c_str());
            } else {
                warn("could not write trace to ", path);
                io_ok = false;
            }
        }
        if (args.has("metrics-out")) {
            const std::string &path = args.get("metrics-out");
            if (obs::MetricsRegistry::global().writeTo(path)) {
                std::printf("wrote %s\n", path.c_str());
            } else {
                warn("could not write metrics to ", path);
                io_ok = false;
            }
        }
        if (store.writeFailures() > 0) {
            warn(store.writeFailures(),
                 " result row(s) could not be written to ", out_path,
                 " (kept in memory only)");
        }
        const bool all_good =
            failed == 0 && cancelled == 0 && timed_out == 0 && io_ok;
        return all_good ? 0 : 1;
    };

    if (dist_workers > 0) {
        dist::DistParams dist_params;
        dist_params.workers = static_cast<uint32_t>(dist_workers);
        dist_params.workerCmd = args.get("worker-cmd");
        dist_params.boardDir = args.get("board-dir").empty()
                                   ? out_path + ".board"
                                   : args.get("board-dir");
        dist_params.shards = static_cast<uint32_t>(dist_shards);
        dist_params.leaseTimeoutSeconds = lease_timeout_ms / 1000.0;
        dist_params.maxShardReassignments =
            static_cast<uint32_t>(max_shard_reassignments);
        dist_params.keepBoard = args.getFlag("keep-board");
        dist_params.quiet = quiet;
        dist_params.alreadyCompleted = std::move(sched.alreadyCompleted);

        // Shard specs carry campaign fields only — forward the pool /
        // cache / resilience knobs on the worker command lines.
        auto forward = [&dist_params](const char *flag,
                                      const std::string &value) {
            dist_params.workerExtraArgs.emplace_back(flag);
            dist_params.workerExtraArgs.emplace_back(value);
        };
        forward("--jobs", args.get("jobs"));
        if (!args.get("cache-dir").empty())
            forward("--cache-dir", args.get("cache-dir"));
        forward("--cache-mb", args.get("cache-mb"));
        forward("--cache-disk-mb", std::to_string(cache_disk_mb));
        forward("--timeout", args.get("timeout"));
        forward("--stall-timeout-ms", args.get("stall-timeout-ms"));
        forward("--stage-retries", std::to_string(stage_retries));
        forward("--group-retries", std::to_string(group_retries));
        forward("--min-groups-fraction", args.get("min-groups-fraction"));
        if (args.getFlag("fail-fast"))
            dist_params.workerExtraArgs.emplace_back("--fail-fast");
        if (args.getFlag("no-timing"))
            dist_params.workerExtraArgs.emplace_back("--no-timing");
        if (quiet)
            dist_params.workerExtraArgs.emplace_back("--quiet");

        if (!quiet) {
            std::printf("distributing %zu job(s) across %u worker "
                        "process(es)\n",
                        jobs.size(), dist_params.workers);
        }
        dist::DistSummary dist_summary;
        try {
            dist::DistCoordinator coordinator(std::move(jobs), store,
                                              std::move(dist_params));
            dist_summary = coordinator.run();
        } catch (const std::exception &err) {
            std::fprintf(stderr, "error: %s\n", err.what());
            return 1;
        }
        std::printf("%s", dist_summary.toString().c_str());
        std::printf("results: %s (%zu row(s))\n", out_path.c_str(),
                    store.rowCount());
        return finish(dist_summary.failed, dist_summary.cancelled,
                      dist_summary.timedOut);
    }

    const uint64_t budget =
        static_cast<uint64_t>(args.getPositiveInt("cache-mb")) * 1024 *
        1024;
    service::ArtifactCache cache(budget, args.get("cache-dir"));
    std::atomic<size_t> jobs_done{0};
    sched.resultHook = [quiet, &jobs_done](const service::ResultRow &row) {
        jobs_done.fetch_add(1, std::memory_order_relaxed);
        if (quiet)
            return;
        if (row.status == service::JobStatus::Ok) {
            std::printf("[%-9s] %s (K=%u, %.1f%% traced)\n",
                        service::jobStatusName(row.status),
                        row.jobId.c_str(), row.k,
                        row.fractionTraced * 100.0);
        } else if (row.status == service::JobStatus::Degraded) {
            // A degraded row still carries a usable prediction —
            // print it like an ok row plus the reason.
            std::printf("[%-9s] %s (K=%u, %.1f%% traced) — %s\n",
                        service::jobStatusName(row.status),
                        row.jobId.c_str(), row.k,
                        row.fractionTraced * 100.0, row.error.c_str());
        } else {
            std::printf("[%-9s] %s: %s\n",
                        service::jobStatusName(row.status),
                        row.jobId.c_str(), row.error.c_str());
        }
    };

    const size_t job_count = jobs.size();
    service::CampaignScheduler scheduler(std::move(jobs), cache, store,
                                         std::move(sched));
    if (!quiet) {
        std::printf("running %zu job(s) on %zu worker(s)\n", job_count,
                    scheduler.workerCount());
    }

    // Periodic progress line for long campaigns: a side thread wakes
    // every --progress-seconds and reports jobs done so far; it exits
    // promptly (condition variable, not a sleep) when run() returns.
    std::mutex progress_mutex;
    std::condition_variable progress_cv;
    bool progress_stop = false;
    std::thread progress_thread;
    const double progress_interval = args.getDouble("progress-seconds");
    if (!quiet && progress_interval > 0) {
        progress_thread = std::thread([&] {
            std::unique_lock<std::mutex> lock(progress_mutex);
            while (!progress_cv.wait_for(
                lock, std::chrono::duration<double>(progress_interval),
                [&] { return progress_stop; })) {
                std::printf("progress: %zu/%zu job(s) done\n",
                            jobs_done.load(std::memory_order_relaxed),
                            job_count);
                std::fflush(stdout);
            }
        });
    }

    service::CampaignSummary summary = scheduler.run();
    // Flush + fsync the result file: a machine crash right after the
    // campaign must not lose acknowledged rows (docs/ROBUSTNESS.md).
    store.finalize();

    if (progress_thread.joinable()) {
        {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress_stop = true;
        }
        progress_cv.notify_all();
        progress_thread.join();
    }

    std::printf("%s", summary.toString().c_str());
    std::printf("results: %s (%zu row(s))\n", out_path.c_str(),
                store.rowCount());
    if (!args.get("cache-dir").empty())
        std::printf("%s\n", cache.summary().c_str());

    return finish(summary.failed, summary.cancelled, summary.timedOut);
}
