/**
 * @file
 * zatel-batch — campaign front end for the batch prediction service.
 *
 * Runs a whole campaign of predictions on one shared worker pool with a
 * content-addressed artifact cache (src/service/), instead of invoking
 * `zatel predict` once per configuration:
 *
 *   zatel-batch --campaign sweep.jsonl --jobs 8 --out results.jsonl
 *   zatel-batch --campaign sweep.csv --cache-dir .zatel-cache --resume
 *
 * Without --campaign, a sweep shorthand builds the cartesian product of
 * every repeated --scene / --gpu / --res / --fraction occurrence:
 *
 *   zatel-batch --scene PARK --scene BUNNY --gpu soc --res 64 --res 96
 *
 * expands to four jobs. Job ids are deterministic, so a re-run with
 * --resume skips every job already recorded as "ok" in --out.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hh"
#include "obs/trace_recorder.hh"
#include "service/artifact_cache.hh"
#include "service/campaign.hh"
#include "service/result_store.hh"
#include "service/scheduler.hh"
#include "util/arg_parser.hh"
#include "util/logging.hh"

namespace
{

using namespace zatel;

/** Build the sweep-shorthand campaign from repeated options. */
std::vector<service::CampaignJob>
campaignFromSweep(const ArgParser &args)
{
    std::vector<std::string> scenes = args.getList("scene");
    std::vector<std::string> gpus = args.getList("gpu");
    std::vector<std::string> resolutions = args.getList("res");
    std::vector<std::string> fractions = args.getList("fraction");
    if (fractions.empty())
        fractions.push_back(""); // equation-(1) fraction

    std::vector<service::CampaignJob> jobs;
    for (const std::string &scene : scenes) {
        for (const std::string &gpu : gpus) {
            for (const std::string &res : resolutions) {
                for (const std::string &fraction : fractions) {
                    service::CampaignJob job;
                    service::applyJobField(job, "scene", scene);
                    service::applyJobField(job, "gpu", gpu);
                    service::applyJobField(job, "res", res);
                    service::applyJobField(job, "fraction", fraction);
                    service::applyJobField(job, "spp", args.get("spp"));
                    service::applyJobField(job, "seed", args.get("seed"));
                    service::applyJobField(job, "detail",
                                           args.get("detail"));
                    if (args.has("k"))
                        service::applyJobField(job, "k", args.get("k"));
                    if (args.getFlag("oracle"))
                        service::applyJobField(job, "oracle", "true");
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    service::finalizeCampaign(jobs);
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("zatel-batch",
                   "Batch campaign runner: shared-pool scheduling, "
                   "content-addressed artifact cache, resumable results");
    args.addOption("campaign", "",
                   "campaign file (.csv -> CSV with '|' sweeps, anything "
                   "else -> JSONL); omit to use the sweep shorthand");
    args.addOption("out", "zatel-results.jsonl",
                   "result file (.csv -> CSV, anything else -> JSONL)");
    args.addOption("jobs", "0",
                   "shared-pool worker count (0 = hardware concurrency)");
    args.addOption("cache-dir", "",
                   "persist heatmaps/oracle stats here across runs");
    args.addOption("cache-mb", "512",
                   "in-memory artifact cache budget in MiB");
    args.addOption("timeout", "0",
                   "per-job wall-clock budget in seconds (0 = none)");
    // Resilience (docs/ROBUSTNESS.md).
    args.addOption("group-retries", "1",
                   "retries per failed group simulation before the group "
                   "is excluded from the prediction");
    args.addOption("stall-timeout-ms", "0",
                   "cancel+retry a group/oracle simulation making no "
                   "simulated-cycle progress for this long (0 = no "
                   "watchdog)");
    args.addOption("min-groups-fraction", "0.5",
                   "minimum fraction of groups that must survive for a "
                   "degraded prediction (below it the job fails)");
    args.addOption("stage-retries", "1",
                   "retries for transient start-stage/oracle failures");
    args.addFlag("fail-fast",
                 "treat any group failure as fatal for its job (no "
                 "degraded predictions)");
    // Sweep shorthand (each may repeat to form a cartesian product).
    args.addOption("scene", "PARK", "scene name (repeatable)");
    args.addOption("gpu", "soc", "target GPU: soc | rtx2060 (repeatable)");
    args.addOption("res", "64", "square image resolution (repeatable)");
    args.addOption("fraction", "",
                   "fixed trace fraction (repeatable; bypasses eq. 1)");
    args.addOption("spp", "1", "samples per pixel");
    args.addOption("seed", "173025", "pipeline seed");
    args.addOption("detail", "1.0", "procedural scene density multiplier");
    args.addOption("k", "", "force the division/downscale factor");
    args.addOption("trace-out", "",
                   "write a Chrome trace_event JSON of the campaign here "
                   "(open in chrome://tracing or Perfetto)");
    args.addOption("metrics-out", "",
                   "write the metrics registry here (.json = JSON, "
                   "anything else = Prometheus text)");
    args.addOption("progress-seconds", "10",
                   "interval of the periodic progress line for long "
                   "campaigns (0 disables it)");
    args.addFlag("oracle", "also run the (cached) full simulation");
    args.addFlag("resume", "skip jobs already 'ok' in --out; append");
    args.addFlag("no-timing",
                 "omit wall-clock fields from result rows (for "
                 "byte-identical run-to-run diffs)");
    args.addFlag("quiet", "suppress the per-job progress lines");
    args.addFlag("help", "show this help");

    if (!args.parse(argc, argv)) {
        std::fprintf(stderr, "error: %s\n%s", args.errorMessage().c_str(),
                     args.usage().c_str());
        return 1;
    }
    if (args.getFlag("help")) {
        std::printf("%s", args.usage().c_str());
        return 0;
    }

    // Range-check every numeric knob before touching any state: the
    // validated accessors reject garbage AND "parsed but nonsensical"
    // values with one clear message (stderr + exit 1, never UB from a
    // negative cast).
    const int64_t group_retries = args.getIntInRange("group-retries", 0, 100);
    const int64_t stage_retries = args.getIntInRange("stage-retries", 0, 100);
    const double stall_timeout_ms = args.getDouble("stall-timeout-ms");
    const double min_groups_fraction =
        args.getDouble("min-groups-fraction");
    if (stall_timeout_ms < 0.0) {
        std::fprintf(stderr,
                     "error: --stall-timeout-ms must be >= 0, got %g\n",
                     stall_timeout_ms);
        return 1;
    }
    if (min_groups_fraction < 0.0 || min_groups_fraction > 1.0) {
        std::fprintf(stderr,
                     "error: --min-groups-fraction must be in [0, 1], "
                     "got %g\n",
                     min_groups_fraction);
        return 1;
    }

    std::vector<service::CampaignJob> jobs;
    try {
        jobs = args.has("campaign")
                   ? service::loadCampaignFile(args.get("campaign"))
                   : campaignFromSweep(args);
    } catch (const service::CampaignError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }
    for (service::CampaignJob &job : jobs) {
        job.params.groupRetries = static_cast<uint32_t>(group_retries);
        job.params.minGroupsFraction = min_groups_fraction;
        job.params.failFast = args.getFlag("fail-fast");
    }

    const std::string out_path = args.get("out");
    service::SchedulerParams sched;
    sched.workers =
        static_cast<size_t>(args.getIntInRange("jobs", 0, 4096));
    sched.jobTimeoutSeconds = args.getDouble("timeout");
    sched.stallTimeoutSeconds = stall_timeout_ms / 1000.0;
    sched.stageRetries = static_cast<uint32_t>(stage_retries);
    if (args.getFlag("resume")) {
        sched.alreadyCompleted =
            service::ResultStore::completedJobIds(out_path);
    }

    service::ResultStoreOptions store_options;
    store_options.includeTiming = !args.getFlag("no-timing");
    store_options.append = args.getFlag("resume");
    service::ResultStore store(out_path, store_options);

    const uint64_t budget =
        static_cast<uint64_t>(args.getPositiveInt("cache-mb")) * 1024 *
        1024;
    service::ArtifactCache cache(budget, args.get("cache-dir"));

    // Observability must be switched on BEFORE the scheduler exists:
    // its shared ThreadPool registers worker trace names at startup.
    if (args.has("trace-out")) {
        obs::TraceRecorder::global().enable();
        obs::TraceRecorder::global().setThreadName("main");
    }
    if (args.has("metrics-out"))
        obs::MetricsRegistry::global().setEnabled(true);

    const bool quiet = args.getFlag("quiet");
    std::atomic<size_t> jobs_done{0};
    sched.resultHook = [quiet, &jobs_done](const service::ResultRow &row) {
        jobs_done.fetch_add(1, std::memory_order_relaxed);
        if (quiet)
            return;
        if (row.status == service::JobStatus::Ok) {
            std::printf("[%-9s] %s (K=%u, %.1f%% traced)\n",
                        service::jobStatusName(row.status),
                        row.jobId.c_str(), row.k,
                        row.fractionTraced * 100.0);
        } else if (row.status == service::JobStatus::Degraded) {
            // A degraded row still carries a usable prediction —
            // print it like an ok row plus the reason.
            std::printf("[%-9s] %s (K=%u, %.1f%% traced) — %s\n",
                        service::jobStatusName(row.status),
                        row.jobId.c_str(), row.k,
                        row.fractionTraced * 100.0, row.error.c_str());
        } else {
            std::printf("[%-9s] %s: %s\n",
                        service::jobStatusName(row.status),
                        row.jobId.c_str(), row.error.c_str());
        }
    };

    const size_t job_count = jobs.size();
    service::CampaignScheduler scheduler(std::move(jobs), cache, store,
                                         std::move(sched));
    if (!quiet) {
        std::printf("running %zu job(s) on %zu worker(s)\n", job_count,
                    scheduler.workerCount());
    }

    // Periodic progress line for long campaigns: a side thread wakes
    // every --progress-seconds and reports jobs done so far; it exits
    // promptly (condition variable, not a sleep) when run() returns.
    std::mutex progress_mutex;
    std::condition_variable progress_cv;
    bool progress_stop = false;
    std::thread progress_thread;
    const double progress_interval = args.getDouble("progress-seconds");
    if (!quiet && progress_interval > 0) {
        progress_thread = std::thread([&] {
            std::unique_lock<std::mutex> lock(progress_mutex);
            while (!progress_cv.wait_for(
                lock, std::chrono::duration<double>(progress_interval),
                [&] { return progress_stop; })) {
                std::printf("progress: %zu/%zu job(s) done\n",
                            jobs_done.load(std::memory_order_relaxed),
                            job_count);
                std::fflush(stdout);
            }
        });
    }

    service::CampaignSummary summary = scheduler.run();
    // Flush + fsync the result file: a machine crash right after the
    // campaign must not lose acknowledged rows (docs/ROBUSTNESS.md).
    store.finalize();

    if (progress_thread.joinable()) {
        {
            std::lock_guard<std::mutex> lock(progress_mutex);
            progress_stop = true;
        }
        progress_cv.notify_all();
        progress_thread.join();
    }

    std::printf("%s", summary.toString().c_str());
    std::printf("results: %s (%zu row(s))\n", out_path.c_str(),
                store.rowCount());
    if (!args.get("cache-dir").empty())
        std::printf("%s\n", cache.summary().c_str());

    bool io_ok = true;
    if (args.has("trace-out")) {
        obs::TraceRecorder::global().disable();
        const std::string &path = args.get("trace-out");
        if (obs::TraceRecorder::global().writeChromeTrace(path)) {
            std::printf("wrote %s (chrome://tracing)\n", path.c_str());
        } else {
            warn("could not write trace to ", path);
            io_ok = false;
        }
    }
    if (args.has("metrics-out")) {
        const std::string &path = args.get("metrics-out");
        if (obs::MetricsRegistry::global().writeTo(path)) {
            std::printf("wrote %s\n", path.c_str());
        } else {
            warn("could not write metrics to ", path);
            io_ok = false;
        }
    }

    if (store.writeFailures() > 0) {
        warn(store.writeFailures(),
             " result row(s) could not be written to ", out_path,
             " (kept in memory only)");
    }

    // Degraded jobs deliver usable predictions and do NOT fail the
    // campaign's exit code (docs/ROBUSTNESS.md).
    const bool all_good =
        summary.failed == 0 && summary.cancelled == 0 &&
        summary.timedOut == 0 && io_ok;
    return all_good ? 0 : 1;
}
