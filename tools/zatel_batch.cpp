/**
 * @file
 * zatel-batch — campaign front end for the batch prediction service.
 *
 * Runs a whole campaign of predictions on one shared worker pool with a
 * content-addressed artifact cache (src/service/), instead of invoking
 * `zatel predict` once per configuration:
 *
 *   zatel-batch --campaign sweep.jsonl --jobs 8 --out results.jsonl
 *   zatel-batch --campaign sweep.csv --cache-dir .zatel-cache --resume
 *
 * Without --campaign, a sweep shorthand builds the cartesian product of
 * every repeated --scene / --gpu / --res / --fraction occurrence:
 *
 *   zatel-batch --scene PARK --scene BUNNY --gpu soc --res 64 --res 96
 *
 * expands to four jobs. Job ids are deterministic, so a re-run with
 * --resume skips every job already recorded as "ok" in --out.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "service/artifact_cache.hh"
#include "service/campaign.hh"
#include "service/result_store.hh"
#include "service/scheduler.hh"
#include "util/arg_parser.hh"
#include "util/logging.hh"

namespace
{

using namespace zatel;

/** Build the sweep-shorthand campaign from repeated options. */
std::vector<service::CampaignJob>
campaignFromSweep(const ArgParser &args)
{
    std::vector<std::string> scenes = args.getList("scene");
    std::vector<std::string> gpus = args.getList("gpu");
    std::vector<std::string> resolutions = args.getList("res");
    std::vector<std::string> fractions = args.getList("fraction");
    if (fractions.empty())
        fractions.push_back(""); // equation-(1) fraction

    std::vector<service::CampaignJob> jobs;
    for (const std::string &scene : scenes) {
        for (const std::string &gpu : gpus) {
            for (const std::string &res : resolutions) {
                for (const std::string &fraction : fractions) {
                    service::CampaignJob job;
                    service::applyJobField(job, "scene", scene);
                    service::applyJobField(job, "gpu", gpu);
                    service::applyJobField(job, "res", res);
                    service::applyJobField(job, "fraction", fraction);
                    service::applyJobField(job, "spp", args.get("spp"));
                    service::applyJobField(job, "seed", args.get("seed"));
                    service::applyJobField(job, "detail",
                                           args.get("detail"));
                    if (args.has("k"))
                        service::applyJobField(job, "k", args.get("k"));
                    if (args.getFlag("oracle"))
                        service::applyJobField(job, "oracle", "true");
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    service::finalizeCampaign(jobs);
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("zatel-batch",
                   "Batch campaign runner: shared-pool scheduling, "
                   "content-addressed artifact cache, resumable results");
    args.addOption("campaign", "",
                   "campaign file (.csv -> CSV with '|' sweeps, anything "
                   "else -> JSONL); omit to use the sweep shorthand");
    args.addOption("out", "zatel-results.jsonl",
                   "result file (.csv -> CSV, anything else -> JSONL)");
    args.addOption("jobs", "0",
                   "shared-pool worker count (0 = hardware concurrency)");
    args.addOption("cache-dir", "",
                   "persist heatmaps/oracle stats here across runs");
    args.addOption("cache-mb", "512",
                   "in-memory artifact cache budget in MiB");
    args.addOption("timeout", "0",
                   "per-job wall-clock budget in seconds (0 = none)");
    // Sweep shorthand (each may repeat to form a cartesian product).
    args.addOption("scene", "PARK", "scene name (repeatable)");
    args.addOption("gpu", "soc", "target GPU: soc | rtx2060 (repeatable)");
    args.addOption("res", "64", "square image resolution (repeatable)");
    args.addOption("fraction", "",
                   "fixed trace fraction (repeatable; bypasses eq. 1)");
    args.addOption("spp", "1", "samples per pixel");
    args.addOption("seed", "173025", "pipeline seed");
    args.addOption("detail", "1.0", "procedural scene density multiplier");
    args.addOption("k", "", "force the division/downscale factor");
    args.addFlag("oracle", "also run the (cached) full simulation");
    args.addFlag("resume", "skip jobs already 'ok' in --out; append");
    args.addFlag("no-timing",
                 "omit wall-clock fields from result rows (for "
                 "byte-identical run-to-run diffs)");
    args.addFlag("quiet", "suppress the per-job progress lines");
    args.addFlag("help", "show this help");

    if (!args.parse(argc, argv)) {
        std::fprintf(stderr, "error: %s\n%s", args.errorMessage().c_str(),
                     args.usage().c_str());
        return 1;
    }
    if (args.getFlag("help")) {
        std::printf("%s", args.usage().c_str());
        return 0;
    }

    std::vector<service::CampaignJob> jobs;
    try {
        jobs = args.has("campaign")
                   ? service::loadCampaignFile(args.get("campaign"))
                   : campaignFromSweep(args);
    } catch (const service::CampaignError &err) {
        std::fprintf(stderr, "error: %s\n", err.what());
        return 1;
    }

    const std::string out_path = args.get("out");
    service::SchedulerParams sched;
    sched.workers = static_cast<size_t>(args.getInt("jobs"));
    sched.jobTimeoutSeconds = args.getDouble("timeout");
    if (args.getFlag("resume")) {
        sched.alreadyCompleted =
            service::ResultStore::completedJobIds(out_path);
    }

    service::ResultStoreOptions store_options;
    store_options.includeTiming = !args.getFlag("no-timing");
    store_options.append = args.getFlag("resume");
    service::ResultStore store(out_path, store_options);

    const uint64_t budget =
        static_cast<uint64_t>(args.getInt("cache-mb")) * 1024 * 1024;
    service::ArtifactCache cache(budget, args.get("cache-dir"));

    const bool quiet = args.getFlag("quiet");
    sched.resultHook = [quiet](const service::ResultRow &row) {
        if (quiet)
            return;
        if (row.status == service::JobStatus::Ok) {
            std::printf("[%-9s] %s (K=%u, %.1f%% traced)\n",
                        service::jobStatusName(row.status),
                        row.jobId.c_str(), row.k,
                        row.fractionTraced * 100.0);
        } else {
            std::printf("[%-9s] %s: %s\n",
                        service::jobStatusName(row.status),
                        row.jobId.c_str(), row.error.c_str());
        }
    };

    const size_t job_count = jobs.size();
    service::CampaignScheduler scheduler(std::move(jobs), cache, store,
                                         std::move(sched));
    if (!quiet) {
        std::printf("running %zu job(s) on %zu worker(s)\n", job_count,
                    scheduler.workerCount());
    }
    service::CampaignSummary summary = scheduler.run();

    std::printf("%s", summary.toString().c_str());
    std::printf("results: %s (%zu row(s))\n", out_path.c_str(),
                store.rowCount());
    if (!args.get("cache-dir").empty())
        std::printf("%s\n", cache.summary().c_str());

    const bool all_good =
        summary.failed == 0 && summary.cancelled == 0 &&
        summary.timedOut == 0;
    return all_good ? 0 : 1;
}
