/**
 * @file
 * zatel-lint: CLI front-end for the src/analysis rule engine.
 *
 * The rules themselves -- tokenizer, include graph, lock-order graph,
 * and the full catalog -- live in src/analysis/ (see
 * docs/CORRECTNESS.md for the catalog and the suppression policy).
 * This file only parses arguments, loads the file set, and renders
 * the result:
 *
 *   zatel-lint [--root DIR] [paths...]   scan src/ (or paths) for findings
 *   --allowlist FILE                     legacy "path:rule-id" exemptions
 *   --json                               machine-readable findings to stdout
 *   --sarif FILE                         write SARIF 2.1.0 to FILE
 *   --list-rules                         print the rule catalog and exit
 *   --self-test                          run against EXPECT-annotated
 *                                        fixtures under --root
 *
 * Exit codes: 0 clean, 1 findings, 2 usage/setup error.
 */

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"

namespace fs = std::filesystem;
using zatel::analysis::AnalysisResult;
using zatel::analysis::Analyzer;
using zatel::analysis::AnalyzerOptions;
using zatel::analysis::Rule;

namespace
{

/** Allowlist entries: "path:rule-id" (path relative to the scan root). */
std::set<std::string>
readAllowlist(const fs::path &path)
{
    std::set<std::string> allow;
    std::ifstream in(path);
    if (!in) {
        std::cerr << "zatel-lint: cannot read allowlist " << path << "\n";
        std::exit(2);
    }
    std::string line;
    while (std::getline(in, line)) {
        size_t begin = 0;
        while (begin < line.size() &&
               std::isspace(static_cast<unsigned char>(line[begin])))
            ++begin;
        std::string t = line.substr(begin);
        if (t.empty() || t[0] == '#')
            continue;
        while (!t.empty() &&
               std::isspace(static_cast<unsigned char>(t.back())))
            t.pop_back();
        allow.insert(t);
    }
    return allow;
}

void
listRules()
{
    for (const Rule *rule : zatel::analysis::allRules())
        std::cout << rule->id() << "\n    " << rule->description()
                  << "\n";
    std::cout << "bad-suppression\n    every 'zatel-lint: allow(rule): "
                 "reason' names a known rule and carries a written "
                 "reason\n"
              << "unused-suppression\n    a suppression that matches no "
                 "finding is stale and must be removed\n";
}

void
usage()
{
    std::cerr << "usage: zatel-lint [--root DIR] [--allowlist FILE] "
                 "[--json] [--sarif FILE]\n"
                 "                  [--list-rules] [--self-test] "
                 "[paths...]\n"
                 "  Scans src/ under --root (default: cwd) unless "
                 "explicit paths are given.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    fs::path allowlistPath;
    fs::path sarifPath;
    bool selfTest = false;
    bool json = false;
    std::vector<fs::path> explicitPaths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--allowlist" && i + 1 < argc) {
            allowlistPath = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarifPath = argv[++i];
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--self-test") {
            selfTest = true;
        } else if (arg == "--list-rules") {
            listRules();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            usage();
            return 2;
        } else {
            explicitPaths.emplace_back(arg);
        }
    }
    root = fs::absolute(root);

    if (selfTest)
        return Analyzer::selfTest(root, std::cerr);

    Analyzer analyzer;
    size_t loaded = 0;
    if (explicitPaths.empty()) {
        loaded = analyzer.addPath(root, root / "src");
    } else {
        for (const fs::path &p : explicitPaths)
            loaded +=
                analyzer.addPath(root, p.is_absolute() ? p : root / p);
    }
    if (loaded == 0) {
        // A typo'd --root or path must not report "clean" and pass a
        // CI gate green.
        std::cerr << "zatel-lint: no sources found under "
                  << (explicitPaths.empty() ? root / "src"
                                            : explicitPaths.front())
                  << "\n";
        return 2;
    }

    AnalyzerOptions options;
    if (!allowlistPath.empty())
        options.allowlist = readAllowlist(allowlistPath);

    const AnalysisResult result = analyzer.run(options);

    if (!sarifPath.empty()) {
        std::ofstream out(sarifPath);
        if (!out) {
            std::cerr << "zatel-lint: cannot write " << sarifPath
                      << "\n";
            return 2;
        }
        out << Analyzer::formatSarif(result);
    }
    if (json)
        std::cout << Analyzer::formatJson(result);
    else
        std::cout << Analyzer::formatText(result);

    if (result.findings.empty())
        return 0;
    if (!json)
        std::cerr << "zatel-lint: " << result.findings.size()
                  << " finding(s)\n";
    return 1;
}
