/**
 * @file
 * zatel-lint: a simulator-specific static-analysis tool.
 *
 * Encodes Zatel invariants that generic linters cannot know. The headline
 * claim of the paper (<= 4.5% cycle error at 49x speedup) only holds if the
 * K concurrent downscaled simulator instances are bit-deterministic, so the
 * rules below ban nondeterminism sources from simulation paths and enforce
 * the defensive hygiene the determinism harness relies on:
 *
 *   nondet-rand           std::rand / srand / random_device / time( on any
 *                         path under src/ except the seeded RNG itself
 *                         (src/util/rng.cc) and the wall-clock timer.
 *   nondet-unordered-iter iteration (range-for or .begin()) over a
 *                         std::unordered_map/set in src/gpusim/ or
 *                         src/zatel/ -- iteration order is
 *                         implementation-defined and feeds Stats.
 *   uninit-field          scalar or pointer data member without a member
 *                         initializer in a src/gpusim header.
 *   float-eq              == / != against a floating-point literal outside
 *                         test files.
 *   assert-free-entry     public mutating entry point (run/tick/access/...,
 *                         plus beginSpan/endSpan/observe) in a src/gpusim
 *                         or src/obs translation unit whose body contains
 *                         no ZATEL_ASSERT.
 *   header-guard          #ifndef guard not derived from the header path
 *                         (src/a/b.hh -> ZATEL_A_B_HH).
 *   include-order         .cc does not include its own header first, or
 *                         mixes <system> includes after "project" ones.
 *
 * Findings print as "file:line: rule-id message" and make the process exit
 * nonzero unless matched by the allowlist (--allowlist FILE, lines of
 * "path:rule-id"). --self-test mode checks the tool against annotated
 * fixtures carrying "// EXPECT: rule-id" comments.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace
{

struct Finding
{
    std::string file; ///< Path relative to the scan root, '/' separators.
    size_t line = 0;  ///< 1-based.
    std::string rule;
    std::string message;
};

struct FileUnit
{
    std::string relPath;
    std::vector<std::string> lines;
};

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::string
trimLeft(const std::string &text)
{
    size_t i = 0;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    return text.substr(i);
}

/** True for lines that are (likely) pure comment text. */
bool
isCommentLine(const std::string &line)
{
    std::string t = trimLeft(line);
    return startsWith(t, "//") || startsWith(t, "*") || startsWith(t, "/*");
}

/** Strip a trailing // comment (naive: ignores // inside strings). */
std::string
stripLineComment(const std::string &line)
{
    size_t pos = line.find("//");
    return pos == std::string::npos ? line : line.substr(0, pos);
}

bool
isTestFile(const std::string &rel)
{
    return rel.find("tests/") != std::string::npos ||
           startsWith(fs::path(rel).filename().string(), "test_");
}

// ---------------------------------------------------------------------------
// Rule: nondet-rand
// ---------------------------------------------------------------------------

void
checkNondetRand(const FileUnit &unit, std::vector<Finding> &findings)
{
    // The seeded RNG and the wall-clock timer are the two sanctioned
    // sources; everything else under src/ must stay deterministic.
    if (endsWith(unit.relPath, "src/util/rng.cc") ||
        endsWith(unit.relPath, "src/util/timer.hh"))
        return;
    static const std::regex pattern(
        R"((\bstd::rand\b|\bsrand\s*\(|\brand\s*\(\s*\)|\bstd::random_device\b|\brandom_device\b|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)))");
    for (size_t i = 0; i < unit.lines.size(); ++i) {
        if (isCommentLine(unit.lines[i]))
            continue;
        if (std::regex_search(stripLineComment(unit.lines[i]), pattern)) {
            findings.push_back(
                {unit.relPath, i + 1, "nondet-rand",
                 "nondeterminism source on a simulation path; draw from "
                 "the seeded zatel::Rng (src/util/rng.cc) instead"});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: nondet-unordered-iter
// ---------------------------------------------------------------------------

void
checkUnorderedIteration(const FileUnit &unit, const FileUnit *pairedHeader,
                        std::vector<Finding> &findings)
{
    if (unit.relPath.find("src/gpusim/") == std::string::npos &&
        unit.relPath.find("src/zatel/") == std::string::npos)
        return;

    // Collect the names of unordered containers declared in this file and
    // in the paired header (members used from the .cc).
    static const std::regex decl(
        R"(unordered_(?:map|set)\s*<[^;{]*>\s*(\w+)\s*[;{=])");
    std::set<std::string> names;
    auto collect = [&names](const FileUnit &f) {
        for (const std::string &line : f.lines) {
            std::smatch m;
            std::string code = stripLineComment(line);
            if (std::regex_search(code, m, decl))
                names.insert(m[1].str());
        }
    };
    collect(unit);
    if (pairedHeader)
        collect(*pairedHeader);
    if (names.empty())
        return;

    for (size_t i = 0; i < unit.lines.size(); ++i) {
        if (isCommentLine(unit.lines[i]))
            continue;
        std::string code = stripLineComment(unit.lines[i]);
        for (const std::string &name : names) {
            bool rangeFor =
                std::regex_search(code, std::regex(R"(for\s*\([^)]*:\s*)" +
                                                   name + R"(\s*\))"));
            bool beginIter =
                code.find(name + ".begin()") != std::string::npos ||
                code.find(name + ".cbegin()") != std::string::npos;
            if (rangeFor || beginIter) {
                findings.push_back(
                    {unit.relPath, i + 1, "nondet-unordered-iter",
                     "iterating '" + name +
                         "' (std::unordered_*) on a Stats-feeding path; "
                         "iteration order is implementation-defined -- use "
                         "an ordered container or sort first"});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: uninit-field
// ---------------------------------------------------------------------------

void
checkUninitFields(const FileUnit &unit, std::vector<Finding> &findings)
{
    if (unit.relPath.find("src/gpusim/") == std::string::npos ||
        !endsWith(unit.relPath, ".hh"))
        return;
    // Scalar members: "    uint32_t name_;" with no "= init".
    static const std::regex scalar(
        R"(^\s+(?:u?int(?:8|16|32|64)_t|int|long|short|bool|float|double|size_t|char)\s+(\w+)\s*;\s*$)");
    // Raw-pointer members: "    Type *name_;" with no "= init".
    static const std::regex pointer(
        R"(^\s+(?:const\s+)?\w[\w:]*\s*\*\s*(\w+)\s*;\s*$)");
    for (size_t i = 0; i < unit.lines.size(); ++i) {
        if (isCommentLine(unit.lines[i]))
            continue;
        std::string code = stripLineComment(unit.lines[i]);
        std::smatch m;
        if (std::regex_match(code, m, scalar) ||
            std::regex_match(code, m, pointer)) {
            findings.push_back(
                {unit.relPath, i + 1, "uninit-field",
                 "field '" + m[1].str() +
                     "' has no member initializer; an uninitialized "
                     "counter silently corrupts Stats"});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: float-eq
// ---------------------------------------------------------------------------

void
checkFloatEquality(const FileUnit &unit, std::vector<Finding> &findings)
{
    if (isTestFile(unit.relPath))
        return;
    // == / != with a float literal on either side.
    static const std::regex right(
        R"((==|!=)\s*[-+]?(?:\d+\.\d*|\.\d+|\d+(?:\.\d*)?[eE][-+]?\d+)[fFlL]?\b)");
    static const std::regex left(
        R"([-+]?(?:\d+\.\d*|\.\d+|\d+(?:\.\d*)?[eE][-+]?\d+)[fFlL]?\s*(==|!=))");
    for (size_t i = 0; i < unit.lines.size(); ++i) {
        if (isCommentLine(unit.lines[i]))
            continue;
        std::string code = stripLineComment(unit.lines[i]);
        if (std::regex_search(code, right) || std::regex_search(code, left)) {
            findings.push_back(
                {unit.relPath, i + 1, "float-eq",
                 "exact floating-point comparison; use an epsilon or "
                 "restructure around integers"});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: assert-free-entry
// ---------------------------------------------------------------------------

void
checkAssertFreeEntries(const FileUnit &unit, std::vector<Finding> &findings)
{
    if ((unit.relPath.find("src/gpusim/") == std::string::npos &&
         unit.relPath.find("src/obs/") == std::string::npos) ||
        !endsWith(unit.relPath, ".cc"))
        return;
    // Public mutating entry points of the simulator (and of the
    // observability hot path, whose misuse -- unbalanced spans, NaN
    // observations -- must abort rather than corrupt an export); each
    // must carry at least one ZATEL_ASSERT so invariant violations
    // abort instead of silently skewing statistics.
    static const std::set<std::string> entryVerbs = {
        "run",      "tick",       "access",   "fill",     "enqueue",
        "request",  "launchWarp", "tryAdmit", "sendRead", "sendWrite",
        "beginSpan", "endSpan",   "observe",
    };
    // House style puts the return type on its own line, so a definition's
    // "Class::method(...)" starts in column 0.
    static const std::regex defLine(R"(^[A-Za-z_][\w:]*::(\w+)\s*\()");

    for (size_t i = 0; i < unit.lines.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(unit.lines[i], m, defLine))
            continue;
        const std::string method = m[1].str();
        if (!entryVerbs.count(method))
            continue;
        // Join the signature until its closing line to detect const.
        size_t j = i;
        std::string signature;
        while (j < unit.lines.size()) {
            signature += unit.lines[j];
            if (unit.lines[j].find('{') != std::string::npos ||
                (j + 1 < unit.lines.size() && unit.lines[j + 1] == "{"))
                break;
            ++j;
        }
        if (signature.find(") const") != std::string::npos)
            continue; // non-mutating
        // Scan the body: from here to the first "}" in column 0.
        bool hasAssert = false;
        size_t k = j;
        while (k < unit.lines.size() && unit.lines[k] != "}") {
            if (unit.lines[k].find("ZATEL_ASSERT") != std::string::npos) {
                hasAssert = true;
                break;
            }
            ++k;
        }
        if (!hasAssert) {
            findings.push_back(
                {unit.relPath, i + 1, "assert-free-entry",
                 "mutating entry point '" + method +
                     "' has no ZATEL_ASSERT; simulator entry points must "
                     "check their invariants"});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: header-guard
// ---------------------------------------------------------------------------

std::string
expectedGuard(const std::string &relPath)
{
    // src/gpusim/cache.hh -> ZATEL_GPUSIM_CACHE_HH
    std::string tail = relPath;
    if (startsWith(tail, "src/"))
        tail = tail.substr(4);
    std::string guard = "ZATEL_";
    for (char c : tail) {
        if (c == '/' || c == '.')
            guard += '_';
        else
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
    }
    return guard;
}

void
checkHeaderGuard(const FileUnit &unit, std::vector<Finding> &findings)
{
    if (!endsWith(unit.relPath, ".hh"))
        return;
    const std::string expected = expectedGuard(unit.relPath);
    for (size_t i = 0; i < unit.lines.size(); ++i) {
        std::string code = trimLeft(unit.lines[i]);
        if (!startsWith(code, "#ifndef"))
            continue;
        std::istringstream iss(code);
        std::string directive, macro;
        iss >> directive >> macro;
        if (macro != expected) {
            findings.push_back({unit.relPath, i + 1, "header-guard",
                                "guard '" + macro + "' should be '" +
                                    expected + "' (derived from path)"});
        }
        // Only the first #ifndef is the guard.
        return;
    }
    findings.push_back({unit.relPath, 1, "header-guard",
                        "missing '#ifndef " + expected + "' include guard"});
}

// ---------------------------------------------------------------------------
// Rule: include-order
// ---------------------------------------------------------------------------

void
checkIncludeOrder(const FileUnit &unit, const fs::path &root,
                  std::vector<Finding> &findings)
{
    if (!endsWith(unit.relPath, ".cc"))
        return;

    // Compute the expected own-header include, e.g. src/gpusim/cache.cc
    // includes "gpusim/cache.hh".
    std::string ownHeader;
    fs::path headerPath = root / unit.relPath;
    headerPath.replace_extension(".hh");
    if (fs::exists(headerPath)) {
        std::string rel = unit.relPath;
        if (startsWith(rel, "src/"))
            rel = rel.substr(4);
        ownHeader = rel.substr(0, rel.size() - 3) + ".hh";
    }

    bool sawAnyInclude = false;
    bool sawProjectInclude = false;
    for (size_t i = 0; i < unit.lines.size(); ++i) {
        std::string code = trimLeft(unit.lines[i]);
        if (!startsWith(code, "#include"))
            continue;
        std::string target = code.substr(8);
        target = trimLeft(target);
        const bool system = !target.empty() && target[0] == '<';
        std::string name;
        if (target.size() > 2)
            name = target.substr(1, target.find_first_of(">\"", 1) - 1);

        if (!sawAnyInclude) {
            sawAnyInclude = true;
            if (!ownHeader.empty()) {
                if (system || name != ownHeader) {
                    findings.push_back(
                        {unit.relPath, i + 1, "include-order",
                         "first include must be the file's own header \"" +
                             ownHeader + "\""});
                }
                continue; // own header does not count as project include
            }
        }
        if (system && sawProjectInclude) {
            findings.push_back(
                {unit.relPath, i + 1, "include-order",
                 "<system> include after a \"project\" include; keep all "
                 "system includes in one leading block"});
        }
        if (!system)
            sawProjectInclude = true;
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<std::string>
readLines(const fs::path &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(line);
    }
    return lines;
}

std::string
relativeSlashPath(const fs::path &path, const fs::path &root)
{
    std::string rel = fs::relative(path, root).generic_string();
    return rel;
}

/** Collect every .cc/.hh under @p dir (sorted for deterministic output). */
std::vector<fs::path>
collectSources(const fs::path &dir)
{
    std::vector<fs::path> files;
    if (!fs::exists(dir))
        return files;
    for (const auto &entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".hh")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::vector<Finding>
lintFiles(const std::vector<fs::path> &files, const fs::path &root)
{
    // Pre-load all units so .cc files can see their paired headers.
    std::map<std::string, FileUnit> units;
    for (const fs::path &file : files) {
        FileUnit unit;
        unit.relPath = relativeSlashPath(file, root);
        unit.lines = readLines(file);
        units.emplace(unit.relPath, std::move(unit));
    }

    std::vector<Finding> findings;
    for (const auto &[rel, unit] : units) {
        const FileUnit *paired = nullptr;
        if (endsWith(rel, ".cc")) {
            std::string headerRel = rel.substr(0, rel.size() - 3) + ".hh";
            auto it = units.find(headerRel);
            if (it != units.end())
                paired = &it->second;
        }
        checkNondetRand(unit, findings);
        checkUnorderedIteration(unit, paired, findings);
        checkUninitFields(unit, findings);
        checkFloatEquality(unit, findings);
        checkAssertFreeEntries(unit, findings);
        checkHeaderGuard(unit, findings);
        checkIncludeOrder(unit, root, findings);
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

/** Allowlist entries: "path:rule-id" (path relative to the scan root). */
std::set<std::string>
readAllowlist(const fs::path &path)
{
    std::set<std::string> allow;
    std::ifstream in(path);
    if (!in) {
        std::cerr << "zatel-lint: cannot read allowlist " << path << "\n";
        std::exit(2);
    }
    std::string line;
    while (std::getline(in, line)) {
        std::string t = trimLeft(line);
        if (t.empty() || t[0] == '#')
            continue;
        while (!t.empty() &&
               std::isspace(static_cast<unsigned char>(t.back())))
            t.pop_back();
        allow.insert(t);
    }
    return allow;
}

/**
 * Self-test against fixtures annotated with "// EXPECT: rule-id" on the
 * violating line. Exit 0 iff each expectation matches exactly one finding
 * of that rule on that line and no unexpected findings remain.
 */
int
runSelfTest(const fs::path &root)
{
    std::vector<fs::path> files = collectSources(root);
    if (files.empty()) {
        std::cerr << "zatel-lint --self-test: no fixtures under " << root
                  << "\n";
        return 2;
    }
    std::vector<Finding> findings = lintFiles(files, root);

    // Gather expectations.
    struct Expectation
    {
        std::string file;
        size_t line;
        std::string rule;
    };
    std::vector<Expectation> expected;
    for (const fs::path &file : files) {
        std::vector<std::string> lines = readLines(file);
        for (size_t i = 0; i < lines.size(); ++i) {
            size_t pos = lines[i].find("// EXPECT:");
            if (pos == std::string::npos)
                continue;
            std::istringstream iss(lines[i].substr(pos + 10));
            std::string rule;
            while (iss >> rule)
                expected.push_back(
                    {relativeSlashPath(file, root), i + 1, rule});
        }
    }

    int failures = 0;
    std::vector<bool> matched(findings.size(), false);
    for (const Expectation &exp : expected) {
        bool found = false;
        for (size_t i = 0; i < findings.size(); ++i) {
            if (!matched[i] && findings[i].file == exp.file &&
                findings[i].line == exp.line && findings[i].rule == exp.rule) {
                matched[i] = true;
                found = true;
                break;
            }
        }
        if (!found) {
            std::cerr << "self-test: MISSING expected finding " << exp.file
                      << ":" << exp.line << ": " << exp.rule << "\n";
            ++failures;
        }
    }
    for (size_t i = 0; i < findings.size(); ++i) {
        if (!matched[i]) {
            std::cerr << "self-test: UNEXPECTED finding " << findings[i].file
                      << ":" << findings[i].line << ": " << findings[i].rule
                      << " " << findings[i].message << "\n";
            ++failures;
        }
    }
    if (failures == 0) {
        std::cout << "zatel-lint self-test: " << expected.size()
                  << " expectations matched, no spurious findings\n";
        return 0;
    }
    std::cerr << "zatel-lint self-test: " << failures << " mismatch(es)\n";
    return 1;
}

void
usage()
{
    std::cerr
        << "usage: zatel-lint [--root DIR] [--allowlist FILE] [--self-test]"
           " [paths...]\n"
           "  Scans src/ under --root (default: cwd) unless explicit paths"
           " are given.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    fs::path allowlistPath;
    bool selfTest = false;
    std::vector<fs::path> explicitPaths;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--allowlist" && i + 1 < argc) {
            allowlistPath = argv[++i];
        } else if (arg == "--self-test") {
            selfTest = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (startsWith(arg, "--")) {
            usage();
            return 2;
        } else {
            explicitPaths.emplace_back(arg);
        }
    }
    root = fs::absolute(root);

    if (selfTest)
        return runSelfTest(root);

    std::vector<fs::path> files;
    if (explicitPaths.empty()) {
        files = collectSources(root / "src");
    } else {
        for (const fs::path &p : explicitPaths) {
            fs::path abs = p.is_absolute() ? p : root / p;
            if (fs::is_directory(abs)) {
                for (fs::path &f : collectSources(abs))
                    files.push_back(std::move(f));
            } else {
                files.push_back(abs);
            }
        }
        std::sort(files.begin(), files.end());
    }

    std::set<std::string> allow;
    if (!allowlistPath.empty())
        allow = readAllowlist(allowlistPath);

    std::vector<Finding> findings = lintFiles(files, root);
    size_t reported = 0;
    size_t allowed = 0;
    for (const Finding &f : findings) {
        if (allow.count(f.file + ":" + f.rule)) {
            ++allowed;
            continue;
        }
        std::cout << f.file << ":" << f.line << ": " << f.rule << " "
                  << f.message << "\n";
        ++reported;
    }
    if (reported == 0) {
        std::cout << "zatel-lint: clean (" << files.size() << " files, "
                  << allowed << " allowlisted finding(s))\n";
        return 0;
    }
    std::cerr << "zatel-lint: " << reported << " finding(s)\n";
    return 1;
}
