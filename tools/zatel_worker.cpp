/**
 * @file
 * zatel-worker — one distributed-campaign worker process
 * (docs/DISTRIBUTED.md).
 *
 * Spawned by zatel-batch --workers N (it is rarely useful to run by
 * hand): claims shards from the filesystem job board, runs their jobs
 * through the regular campaign scheduler while heartbeating the lease,
 * and publishes result fragments. The exit code is the protocol with
 * the coordinator (src/dist/worker.hh).
 *
 *   zatel-worker --board-dir results.jsonl.board --worker-id 0
 *
 * The chaos harness (tests/test_dist.cc) arms ZATEL_WORKER_KILL
 * ("point:nth[@workerid]") to SIGKILL the worker at a seeded point,
 * and ZATEL_FAULTS to arm the dist.* / worker.* fault sites.
 *
 * --cache-stress mode runs the multi-process ArtifactCache stress body
 * instead of the worker loop (two of these against one --cache-dir
 * hammer the disk-tier eviction/publish race).
 */

#include <cstdio>
#include <exception>
#include <string>

#include "dist/worker.hh"
#include "util/arg_parser.hh"

int
main(int argc, char **argv)
{
    using namespace zatel;

    ArgParser args("zatel-worker",
                   "Distributed-campaign worker: claims job-board shards, "
                   "runs them, publishes result fragments");
    args.addOption("board-dir", "", "job-board directory (required "
                                    "unless --cache-stress)");
    args.addOption("worker-id", "0", "coordinator-assigned worker id");
    args.addOption("jobs", "0",
                   "scheduler pool size (0 = hardware concurrency)");
    args.addOption("cache-dir", "",
                   "shared artifact persistence directory");
    args.addOption("cache-mb", "512",
                   "in-memory artifact cache budget in MiB");
    args.addOption("cache-disk-mb", "0",
                   "disk-tier byte budget in MiB (0 = unlimited)");
    args.addOption("timeout", "0",
                   "per-job wall-clock budget in seconds (0 = none)");
    args.addOption("stall-timeout-ms", "0",
                   "simulation stall watchdog (0 = no watchdog)");
    args.addOption("stage-retries", "1",
                   "retries for transient start-stage/oracle failures");
    args.addOption("group-retries", "1",
                   "retries per failed group simulation");
    args.addOption("min-groups-fraction", "0.5",
                   "minimum surviving-group fraction for a degraded "
                   "prediction");
    args.addFlag("fail-fast",
                 "treat any group failure as fatal for its job");
    args.addOption("heartbeat-ms", "1000", "lease refresh period");
    args.addFlag("no-timing",
                 "omit wall-clock fields from fragment rows");
    args.addFlag("quiet", "suppress progress output");
    args.addOption("cache-stress", "",
                   "run the multi-process cache stress against this "
                   "directory instead of the worker loop");
    args.addOption("stress-iterations", "40",
                   "cache-stress batches (fresh cache instance each)");
    args.addOption("stress-disk-budget", "16384",
                   "cache-stress disk-tier byte budget");
    args.addFlag("help", "show this help");

    if (!args.parse(argc, argv)) {
        std::fprintf(stderr, "error: %s\n%s", args.errorMessage().c_str(),
                     args.usage().c_str());
        return 2;
    }
    if (args.getFlag("help")) {
        std::printf("%s", args.usage().c_str());
        return 0;
    }

    try {
        if (args.has("cache-stress")) {
            return dist::runCacheStress(
                args.get("cache-stress"),
                static_cast<uint32_t>(
                    args.getIntInRange("stress-iterations", 1, 1000000)),
                static_cast<uint64_t>(
                    args.getIntInRange("stress-disk-budget", 0,
                                       int64_t(1) << 40)));
        }

        if (args.get("board-dir").empty()) {
            std::fprintf(stderr, "error: --board-dir is required\n");
            return 2;
        }
        dist::WorkerOptions options;
        options.boardDir = args.get("board-dir");
        options.workerId = static_cast<uint64_t>(
            args.getIntInRange("worker-id", 0, int64_t(1) << 40));
        options.jobs =
            static_cast<size_t>(args.getIntInRange("jobs", 0, 4096));
        options.cacheDir = args.get("cache-dir");
        options.cacheMb = static_cast<uint64_t>(
            args.getIntInRange("cache-mb", 1, 1 << 20));
        options.cacheDiskMb = static_cast<uint64_t>(
            args.getIntInRange("cache-disk-mb", 0, 1 << 20));
        options.jobTimeoutSeconds = args.getDouble("timeout");
        options.stallTimeoutSeconds =
            args.getDouble("stall-timeout-ms") / 1000.0;
        options.stageRetries = static_cast<uint32_t>(
            args.getIntInRange("stage-retries", 0, 100));
        options.groupRetries = static_cast<uint32_t>(
            args.getIntInRange("group-retries", 0, 100));
        options.minGroupsFraction = args.getDouble("min-groups-fraction");
        if (options.minGroupsFraction < 0.0 ||
            options.minGroupsFraction > 1.0) {
            std::fprintf(stderr, "error: --min-groups-fraction must be "
                                 "in [0, 1], got %g\n",
                         options.minGroupsFraction);
            return 2;
        }
        options.failFast = args.getFlag("fail-fast");
        options.heartbeatSeconds =
            args.getDouble("heartbeat-ms") / 1000.0;
        options.includeTiming = !args.getFlag("no-timing");
        options.quiet = args.getFlag("quiet");
        return dist::runWorker(options);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "zatel-worker: %s\n", error.what());
        return 2;
    }
}
