// Fixture for zatel-lint --self-test: seeded violations, never compiled.
// Re-acquiring a held non-recursive mutex is a self-deadlock.
#include <mutex>

namespace zatel::service
{

class Replayer
{
  public:
    void replay();

  private:
    std::mutex mu_;
};

void
Replayer::replay()
{
    std::lock_guard<std::mutex> outer(mu_);
    std::lock_guard<std::mutex> inner(mu_); // EXPECT: lock-order
}

} // namespace zatel::service
