// Fixture for zatel-lint --self-test: lock patterns that must stay
// finding-free. acquireBoth() fixes the blessed order b -> c; rotate()
// releases its guard before taking the next mutex (no edge, otherwise
// c -> b would close a cycle); queueRefresh() hands a lambda to a pool
// while holding cMutex_ -- the deferred body runs on another thread
// later, so it must not inherit the held set (otherwise its bMutex_
// acquisition would also close the cycle).
#include <mutex>

namespace zatel::service
{

class Ledger
{
  public:
    void acquireBoth();
    void rotate();
    void queueRefresh();

  private:
    std::mutex bMutex_;
    std::mutex cMutex_;
};

void
Ledger::acquireBoth()
{
    std::lock_guard<std::mutex> first(bMutex_);
    std::lock_guard<std::mutex> second(cMutex_);
}

void
Ledger::rotate()
{
    std::unique_lock<std::mutex> lk(cMutex_);
    lk.unlock();
    std::lock_guard<std::mutex> next(bMutex_);
}

void
Ledger::queueRefresh()
{
    std::lock_guard<std::mutex> hold(cMutex_);
    submit([this] {
        std::lock_guard<std::mutex> deferred(bMutex_);
    });
}

} // namespace zatel::service
