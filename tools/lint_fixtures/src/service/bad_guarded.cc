// Fixture for zatel-lint --self-test: seeded violations, never compiled.
// count_ is written under mu_ in add() but bare in reset(); the
// *Locked(std::unique_lock&) convention marks a function that runs
// entirely under its caller's guard and stays clean.
#include <mutex>

namespace zatel::service
{

class Tally
{
  public:
    void add();
    void reset();
    void resetLocked(std::unique_lock<std::mutex> &lk);

  private:
    std::mutex mu_;
    long count_ = 0;
};

void
Tally::add()
{
    std::lock_guard<std::mutex> guard(mu_);
    count_ += 1;
}

void
Tally::reset()
{
    count_ = 0; // EXPECT: guarded-field
}

void
Tally::resetLocked(std::unique_lock<std::mutex> &lk)
{
    count_ = 0;
    (void)lk;
}

} // namespace zatel::service
