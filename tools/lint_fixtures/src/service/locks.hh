// Fixture for zatel-lint --self-test: seeded violations, never compiled.
#ifndef ZATEL_SERVICE_LOCKS_HH
#define ZATEL_SERVICE_LOCKS_HH

#include <mutex>

namespace zatel::service
{

class Registry
{
  public:
    void recordHit();
    void flush();

  private:
    std::mutex tableMutex_;
    std::mutex statsMutex_;
};

} // namespace zatel::service

#endif // ZATEL_SERVICE_LOCKS_HH
