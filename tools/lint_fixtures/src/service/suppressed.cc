// Fixture for zatel-lint --self-test: inline suppression behaviour.
// tickerLoop()'s allow comment must silence the sleep finding; the
// three comments in sloppy() are a missing rule id, an unknown rule
// id, and a suppression that matches nothing.
#include <chrono>
#include <thread>

namespace zatel::service
{

void
tickerLoop()
{
    // zatel-lint: allow(blocking-in-task): fixture duty-cycle sleep
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void
sloppy()
{
    // zatel-lint: allow(): missing id // EXPECT: bad-suppression
    // zatel-lint: allow(no-such-rule): typo // EXPECT: bad-suppression
    // zatel-lint: allow(float-eq): stale // EXPECT: unused-suppression
}

} // namespace zatel::service
