// Fixture for zatel-lint --self-test: seeded violations, never compiled.
// dumpSnapshot() opens a file with no fault-injection site in reach;
// loadSnapshot() registers one and stays clean.
#include <fstream>
#include <string>

namespace zatel::service
{

bool
dumpSnapshot(const std::string &path)
{
    std::ofstream out(path); // EXPECT: fault-site-coverage
    out << "snapshot";
    return static_cast<bool>(out);
}

bool
loadSnapshot(const std::string &path)
{
    ZATEL_INJECT_FAULT("snapshot.load");
    std::ifstream in(path);
    return static_cast<bool>(in);
}

} // namespace zatel::service
