// Fixture for zatel-lint --self-test: the other half of the cross-file
// lock-order inversion seeded in lock_inversion_a.cc.
#include <mutex>

#include "service/locks.hh"

namespace zatel::service
{

void
Registry::flush()
{
    std::lock_guard<std::mutex> stats(statsMutex_);
    std::lock_guard<std::mutex> table(tableMutex_); // EXPECT: lock-order
}

} // namespace zatel::service
