// Fixture for zatel-lint --self-test: seeded violations, never compiled.
// A raw sleep on a worker path stalls the pool; the sanctioned backoff
// helper stays clean.
#include <chrono>
#include <cstdint>
#include <thread>

namespace zatel::service
{

void
napBetweenRetries()
{
    std::this_thread::sleep_for( // EXPECT: blocking-in-task
        std::chrono::milliseconds(5));
}

void
paceBetweenRetries(uint32_t attempt)
{
    retryBackoffSleep(attempt);
}

} // namespace zatel::service
