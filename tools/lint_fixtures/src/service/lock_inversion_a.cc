// Fixture for zatel-lint --self-test: one half of a cross-file
// lock-order inversion. This TU locks tableMutex_ before statsMutex_;
// lock_inversion_b.cc locks them in the opposite order, and only the
// merged project-wide graph can see the cycle.
#include <mutex>

#include "service/locks.hh"

namespace zatel::service
{

void
Registry::recordHit()
{
    std::lock_guard<std::mutex> table(tableMutex_);
    std::lock_guard<std::mutex> stats(statsMutex_); // EXPECT: lock-order
}

} // namespace zatel::service
