// Fixture for zatel-lint --self-test: seeded violations, never compiled.
#include "obs/trace_recorder.hh"

namespace zatel::obs
{

void
TraceRecorder::beginSpan(const char *name) // EXPECT: assert-free-entry
{
    (void)name;
}

void
Histogram::observe(double value) // EXPECT: assert-free-entry
{
    (void)value;
}

} // namespace zatel::obs
