// Fixture for zatel-lint --self-test: seeded violations, never compiled.
#include <ctime>

namespace zatel::core
{

bool
converged(double error)
{
    long stamp = time(nullptr); // EXPECT: nondet-rand
    (void)stamp;
    return error == 0.0; // EXPECT: float-eq
}

} // namespace zatel::core
