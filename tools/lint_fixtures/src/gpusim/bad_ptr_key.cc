// Fixture for zatel-lint --self-test: seeded violations, never compiled.
// An ordered container keyed on a raw pointer sorts by allocation
// address; a pointer as the mapped value is fine.
#include <cstdint>
#include <map>

namespace zatel::gpusim
{

struct Way;

std::map<Way *, int> rank; // EXPECT: nondet-pointer-key
std::map<uint64_t, Way *> byAddr;

void
scanWays()
{
    for (const auto &entry : byAddr)
        (void)entry;
}

} // namespace zatel::gpusim
