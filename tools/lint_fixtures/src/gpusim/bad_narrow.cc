// Fixture for zatel-lint --self-test: seeded violations, never compiled.
// Implicit 64->32 narrowing of a hot-path value; an explicit mask,
// static_cast, or a call boundary stays clean.
#include <cstdint>

namespace zatel::gpusim
{

uint32_t
foldAddress(uint64_t line_addr)
{
    uint32_t folded = line_addr; // EXPECT: narrowing-cast-hotpath
    uint32_t masked = line_addr & 0xffffu;
    uint32_t cast = static_cast<uint32_t>(line_addr);
    uint32_t hashed = hashOf(line_addr);
    return folded + masked + cast + hashed;
}

} // namespace zatel::gpusim
