// Fixture for zatel-lint --self-test: seeded violations, never compiled.
// Implicit 64->32 narrowing of a hot-path value; an explicit mask,
// static_cast, or a call boundary stays clean.
#include <cstdint>

namespace zatel::gpusim
{

uint32_t
foldAddress(uint64_t line_addr)
{
    uint32_t folded = line_addr; // EXPECT: narrowing-cast-hotpath
    uint32_t masked = line_addr & 0xffffu;
    uint32_t cast = static_cast<uint32_t>(line_addr);
    uint32_t hashed = hashOf(line_addr);
    return folded + masked + cast + hashed;
}

// The SoA index aliases are 32-bit slots too: sinking a 64-bit value
// through one must be flagged exactly like a raw uint32_t.
uint32_t
foldThroughAliases(uint64_t line_addr)
{
    LineSlot slot = line_addr; // EXPECT: narrowing-cast-hotpath
    LaneRef ref = line_addr % 7; // modulo bounds the value: clean
    LaneRef assigned = 0;
    assigned = line_addr; // EXPECT: narrowing-cast-hotpath
    LineSlot castSlot = static_cast<LineSlot>(line_addr);
    return slot + ref + assigned + castSlot;
}

} // namespace zatel::gpusim
