// Fixture for zatel-lint --self-test: seeded violations, never compiled.
#include "gpusim/stats.hh"
#include <cstdlib> // EXPECT: include-order

namespace zatel::gpusim
{

std::unordered_map<uint64_t, int> table;

void
Engine::tick(uint64_t now) // EXPECT: assert-free-entry
{
    int jitter = std::rand(); // EXPECT: nondet-rand
    for (const auto &entry : table) { // EXPECT: nondet-unordered-iter
        (void)entry;
    }
    (void)now;
    (void)jitter;
}

} // namespace zatel::gpusim
