// Fixture for zatel-lint --self-test: rule triggers inside comments
// and literals must never fire. This mentions std::rand(), x == 1.0,
// and sleep_for right here in a comment.
#include <string>

namespace zatel::gpusim
{

/* std::random_device in a block comment is not a finding */
const char *kDoc = "call std::rand() then compare x == 0.5";
const char *kRaw = R"(std::this_thread::sleep_for(ms) // not code)";
const char *kPath = "time(nullptr) inside a string literal";

} // namespace zatel::gpusim
