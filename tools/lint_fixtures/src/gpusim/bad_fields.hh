// Fixture for zatel-lint --self-test: seeded violations, never compiled.
#ifndef WRONG_GUARD_HH // EXPECT: header-guard
#define WRONG_GUARD_HH

#include <cstdint>

namespace zatel::gpusim
{

struct BadFields
{
    uint32_t counter; // EXPECT: uninit-field
    double *buffer; // EXPECT: uninit-field
    uint64_t good = 0;
};

} // namespace zatel::gpusim

#endif // WRONG_GUARD_HH
