// Fixture for zatel-lint --self-test: seeded violations, never compiled.
// publishRaw() renames a fragment with no fault-injection site in
// reach; claimShard() registers dist.lease.write and stays clean — the
// coverage contract extended to src/dist/ with the distributed
// campaign subsystem (docs/DISTRIBUTED.md).
#include <string>

#define ZATEL_INJECT_FAULT_KEYED(name, key) ((void)(name), (void)(key))

extern "C" int rename(const char *from, const char *to);
extern "C" int open(const char *path, int flags, ...);

namespace zatel::dist
{

bool
publishRaw(const std::string &partial, const std::string &final_path)
{
    return rename(partial.c_str(), final_path.c_str()) == 0; // EXPECT: fault-site-coverage
}

bool
claimShard(const std::string &lease_path, unsigned shard)
{
    ZATEL_INJECT_FAULT_KEYED("dist.lease.write", shard);
    return open(lease_path.c_str(), 0) >= 0;
}

} // namespace zatel::dist
