// Fixture for zatel-lint --self-test: seeded violations, never compiled.
// readAll() recv()s with no fault-injection site in reach; writeAll()
// registers serve.write and stays clean — the coverage contract for
// src/serve/ socket IO (accept/recv/send) added with the daemon.
#include <cstddef>
#include <string>

#define ZATEL_FAULT_SITE(name) (name)

extern "C" long recv(int fd, void *buf, size_t len, int flags);
extern "C" long send(int fd, const void *buf, size_t len, int flags);

namespace zatel::serve
{

bool
readAll(int fd, std::string &out)
{
    char buffer[256];
    const long n = recv(fd, buffer, sizeof(buffer), 0); // EXPECT: fault-site-coverage
    if (n <= 0)
        return false;
    out.assign(buffer, static_cast<size_t>(n));
    return true;
}

bool
writeAll(int fd, const std::string &body)
{
    if (ZATEL_FAULT_SITE("serve.write"))
        return false;
    return send(fd, body.data(), body.size(), 0) >= 0;
}

} // namespace zatel::serve
