/**
 * @file
 * zatel-trace-check: validate observability export files.
 *
 * CI's release leg runs a real campaign with --trace-out / --metrics-out
 * and then points this tool at the outputs, so a schema regression in
 * the Chrome-trace or metrics exporters fails the build instead of
 * silently producing files Perfetto or Prometheus would reject. The
 * validators themselves live in src/obs/validate.{hh,cc} and are shared
 * with the unit tests (docs/OBSERVABILITY.md).
 *
 * Usage:
 *   zatel-trace-check [--trace FILE] [--metrics FILE]
 *
 * --metrics files ending in ".json" are checked against the JSON dump
 * schema, anything else against the Prometheus text exposition format.
 * Exit status is 0 iff every given file validates cleanly.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/validate.hh"

namespace
{

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** Validate one file; print findings and return true on success. */
bool
checkFile(const std::string &what, const std::string &path,
          const std::vector<std::string> &problems)
{
    if (problems.empty()) {
        std::cout << "ok: " << what << " " << path << "\n";
        return true;
    }
    for (const std::string &p : problems) {
        std::cerr << path << ": " << p << "\n";
    }
    std::cerr << "FAIL: " << what << " " << path << " ("
              << problems.size() << " problem(s))\n";
    return false;
}

void
usage(std::ostream &out)
{
    out << "usage: zatel-trace-check [--trace FILE] [--metrics FILE]\n"
        << "\n"
        << "Validates observability exports (docs/OBSERVABILITY.md):\n"
        << "  --trace FILE    Chrome trace_event JSON from --trace-out\n"
        << "  --metrics FILE  metrics dump from --metrics-out; files\n"
        << "                  ending in .json use the JSON schema, any\n"
        << "                  other extension the Prometheus text format\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> tracePaths;
    std::vector<std::string> metricsPaths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        }
        if (arg == "--trace" || arg == "--metrics") {
            if (i + 1 >= argc) {
                std::cerr << "zatel-trace-check: " << arg
                          << " requires a file argument\n";
                return 2;
            }
            if (arg == "--trace") {
                tracePaths.emplace_back(argv[++i]);
            } else {
                metricsPaths.emplace_back(argv[++i]);
            }
            continue;
        }
        std::cerr << "zatel-trace-check: unknown argument '" << arg
                  << "'\n";
        usage(std::cerr);
        return 2;
    }

    if (tracePaths.empty() && metricsPaths.empty()) {
        std::cerr << "zatel-trace-check: nothing to validate\n";
        usage(std::cerr);
        return 2;
    }

    bool ok = true;
    for (const std::string &path : tracePaths) {
        std::string text;
        if (!readFile(path, text)) {
            std::cerr << "zatel-trace-check: cannot read " << path
                      << "\n";
            ok = false;
            continue;
        }
        ok &= checkFile("trace", path,
                        zatel::obs::validateChromeTrace(text));
    }
    for (const std::string &path : metricsPaths) {
        std::string text;
        if (!readFile(path, text)) {
            std::cerr << "zatel-trace-check: cannot read " << path
                      << "\n";
            ok = false;
            continue;
        }
        const auto problems =
            hasSuffix(path, ".json")
                ? zatel::obs::validateMetricsJson(text)
                : zatel::obs::validatePrometheusText(text);
        ok &= checkFile("metrics", path, problems);
    }
    return ok ? 0 : 1;
}
