/**
 * @file
 * zatel — command-line front end for the prediction pipeline.
 *
 * Subcommands (first positional argument):
 *   scenes    list the available scenes
 *   predict   run the Zatel pipeline and print the predicted metrics
 *   oracle    run the full cycle-level simulation
 *   compare   run both and print the error table
 *
 * Examples:
 *   zatel scenes
 *   zatel predict --scene PARK --gpu soc --res 160
 *   zatel compare --scene BUNNY --gpu rtx2060 --fraction 0.4 --no-downscale
 *   zatel oracle --scene SPNZA --res 96 --dump-stats
 */

#include <cstdio>
#include <string>

#include "gpusim/gpu.hh"
#include "obs/metrics_registry.hh"
#include "obs/trace_recorder.hh"
#include "rt/bvh.hh"
#include "rt/obj_loader.hh"
#include "rt/scene_library.hh"
#include "util/arg_parser.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "zatel/evaluation.hh"
#include "zatel/predictor.hh"

namespace
{

using namespace zatel;

gpusim::GpuConfig
configFromName(const std::string &name)
{
    if (name == "soc" || name == "mobile")
        return gpusim::GpuConfig::mobileSoc();
    if (name == "rtx2060" || name == "rtx")
        return gpusim::GpuConfig::rtx2060();
    fatal("unknown GPU config '", name, "' (use soc or rtx2060)");
}

core::ZatelParams
paramsFromArgs(const ArgParser &args)
{
    core::ZatelParams params;
    params.width = static_cast<uint32_t>(args.getPositiveInt("res"));
    params.height = params.width;
    params.samplesPerPixel =
        static_cast<uint32_t>(args.getPositiveInt("spp"));
    params.seed = static_cast<uint64_t>(args.getInt("seed"));
    params.numThreads =
        static_cast<uint32_t>(args.getIntInRange("threads", 0, 4096));
    params.downscaleGpu = !args.getFlag("no-downscale");

    if (args.has("fraction"))
        params.selector.fixedFraction = args.getDouble("fraction");
    if (args.has("k"))
        params.forcedK =
            static_cast<uint32_t>(args.getPositiveInt("k"));

    const std::string &division = args.get("division");
    if (division == "coarse")
        params.partition.method = core::DivisionMethod::CoarseGrained;
    else if (division != "fine")
        fatal("unknown division '", division, "' (fine|coarse)");

    const std::string &dist = args.get("distribution");
    if (dist == "lintmp")
        params.selector.distribution = core::DistributionMethod::LinTemp;
    else if (dist == "exptmp")
        params.selector.distribution = core::DistributionMethod::ExpTemp;
    else if (dist != "uniform")
        fatal("unknown distribution '", dist,
              "' (uniform|lintmp|exptmp)");

    if (args.getFlag("regression")) {
        params.extrapolation =
            core::ExtrapolationMethod::ExponentialRegression;
    }
    if (args.has("profile-noise")) {
        params.profiler.source = heatmap::ProfilingSource::HardwareTimer;
        params.profiler.timerNoise = args.getDouble("profile-noise");
    }

    // Resilience knobs (docs/ROBUSTNESS.md), range-checked so a
    // negative or out-of-range value is a clear error, not a huge
    // unsigned wrap.
    params.groupRetries = static_cast<uint32_t>(
        args.getIntInRange("group-retries", 0, 100));
    const double min_fraction = args.getDouble("min-groups-fraction");
    if (min_fraction < 0.0 || min_fraction > 1.0)
        fatal("--min-groups-fraction must be in [0, 1], got ",
              min_fraction);
    params.minGroupsFraction = min_fraction;
    params.failFast = args.getFlag("fail-fast");
    return params;
}

void
printPrediction(const core::ZatelResult &result)
{
    AsciiTable table({"Metric", "Predicted"});
    for (gpusim::Metric metric : gpusim::allMetrics()) {
        table.addRow({gpusim::metricName(metric),
                      AsciiTable::num(result.metric(metric), 4)});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("K=%u, %.1f%% of pixels traced, slowest instance %.2fs\n",
                result.k, result.fractionTraced * 100.0,
                result.maxGroupWallSeconds);
    if (result.degraded) {
        std::printf("DEGRADED: %zu of %u group(s) failed; prediction "
                    "assembled from survivors (extrapolation x%.4f) — "
                    "expect widened sampling error\n",
                    result.failedGroups.size(), result.k,
                    result.survivorExtrapolation);
    }
}

void
maybeWriteCsv(const ArgParser &args, const core::ZatelResult &result)
{
    if (!args.has("csv"))
        return;
    CsvWriter csv;
    csv.setHeader({"metric", "predicted"});
    for (gpusim::Metric metric : gpusim::allMetrics()) {
        csv.addRow({gpusim::metricName(metric),
                    CsvWriter::formatDouble(result.metric(metric))});
    }
    if (csv.writeTo(args.get("csv")))
        std::printf("wrote %s\n", args.get("csv").c_str());
    else
        warn("could not write ", args.get("csv"));
}

/**
 * Wrap a user OBJ mesh in a scene: a camera framing the mesh bounds and
 * a light above it.
 */
rt::Scene
sceneFromObj(const std::string &path)
{
    rt::Scene scene(path);
    uint16_t mat =
        scene.addMaterial(rt::Material::diffuse({0.7f, 0.7f, 0.7f}));
    rt::ObjLoadResult loaded = rt::loadObjFile(path, mat);
    if (loaded.triangles.empty())
        fatal("OBJ file '", path, "' contains no triangles");
    inform("loaded ", loaded.triangles.size(), " triangles from ", path);

    rt::Aabb bounds;
    for (const rt::Triangle &tri : loaded.triangles)
        bounds.expand(tri.bounds());
    rt::Vec3 center = bounds.center();
    float radius = length(bounds.extent()) * 0.5f;
    scene.addTriangles(std::move(loaded.triangles));
    scene.setCamera(rt::Camera(
        center + rt::Vec3{0.0f, radius * 0.4f, radius * 2.2f}, center,
        {0.0f, 1.0f, 0.0f}, 50.0f));
    scene.setLight({center + rt::Vec3{radius, radius * 2.0f, radius},
                    {1.1f, 1.1f, 1.05f}});
    return scene;
}

/**
 * Turn on the observability layer when --trace-out / --metrics-out was
 * given. Must run BEFORE any thread pool is created so workers can
 * register their trace names (docs/OBSERVABILITY.md).
 */
void
setupObservability(const ArgParser &args)
{
    if (args.has("trace-out")) {
        obs::TraceRecorder::global().enable();
        obs::TraceRecorder::global().setThreadName("main");
    }
    if (args.has("metrics-out"))
        obs::MetricsRegistry::global().setEnabled(true);
}

/** Flush --trace-out / --metrics-out files; returns 0 on success. */
int
writeObsOutputs(const ArgParser &args)
{
    int status = 0;
    if (args.has("trace-out")) {
        obs::TraceRecorder::global().disable();
        const std::string &path = args.get("trace-out");
        if (obs::TraceRecorder::global().writeChromeTrace(path))
            std::printf("wrote %s (chrome://tracing)\n", path.c_str());
        else {
            warn("could not write trace to ", path);
            status = 1;
        }
    }
    if (args.has("metrics-out")) {
        const std::string &path = args.get("metrics-out");
        if (obs::MetricsRegistry::global().writeTo(path))
            std::printf("wrote %s\n", path.c_str());
        else {
            warn("could not write metrics to ", path);
            status = 1;
        }
    }
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("zatel",
                   "Sample complexity-aware scale-model simulation for "
                   "ray tracing (commands: scenes predict oracle compare)");
    args.addOption("scene", "PARK", "scene name");
    args.addOption("obj", "", "load geometry from this OBJ file instead "
                              "of a built-in scene");
    args.addOption("gpu", "soc", "target GPU: soc | rtx2060");
    args.addOption("res", "128", "square image resolution");
    args.addOption("spp", "1", "samples per pixel");
    args.addOption("seed", "173025", "pipeline seed");
    args.addOption("threads", "0",
                   "worker threads for group simulation (0 = hardware "
                   "concurrency, capped at K)");
    args.addOption("division", "fine", "image division: fine | coarse");
    args.addOption("distribution", "uniform",
                   "selection distribution: uniform | lintmp | exptmp");
    args.addOption("fraction", "", "fixed trace fraction (bypasses eq. 1)");
    args.addOption("k", "", "force the division/downscale factor");
    args.addOption("profile-noise", "",
                   "profile with noisy HW timers at this relative sigma");
    args.addOption("group-retries", "1",
                   "retries per failed group simulation before the group "
                   "is excluded (docs/ROBUSTNESS.md)");
    args.addOption("min-groups-fraction", "0.5",
                   "minimum fraction of groups that must survive for a "
                   "degraded prediction");
    args.addFlag("fail-fast",
                 "treat any group failure as fatal (no degraded mode)");
    args.addOption("csv", "", "write predicted metrics to this CSV file");
    args.addOption("trace-out", "",
                   "write a Chrome trace_event JSON of the run here "
                   "(open in chrome://tracing or Perfetto)");
    args.addOption("metrics-out", "",
                   "write the metrics registry here (.json = JSON, "
                   "anything else = Prometheus text)");
    args.addOption("heatmap-out", "",
                   "write the quantized heatmap PPM here (predict only)");
    args.addFlag("no-downscale", "run one group on the full GPU");
    args.addFlag("regression", "use 3-point exponential extrapolation");
    args.addFlag("dump-stats", "print the per-component stats breakdown");
    args.addFlag("help", "show this help");

    if (!args.parse(argc, argv)) {
        std::fprintf(stderr, "error: %s\n%s", args.errorMessage().c_str(),
                     args.usage().c_str());
        return 1;
    }
    if (args.getFlag("help") || args.positional().empty()) {
        std::printf("%s", args.usage().c_str());
        return args.getFlag("help") ? 0 : 1;
    }

    const std::string &command = args.positional().front();
    if (command == "scenes") {
        for (rt::SceneId id : rt::allScenes()) {
            rt::Scene scene = rt::buildScene(id);
            std::printf("%-6s %7zu triangles, %d bounce(s)\n",
                        scene.name().c_str(), scene.triangleCount(),
                        scene.maxBounces());
        }
        return 0;
    }

    if (command != "predict" && command != "oracle" &&
        command != "compare") {
        // Unknown subcommand: print the usage text on stderr and exit
        // nonzero so scripts notice the typo instead of parsing no
        // output (and before any expensive scene building).
        std::fprintf(stderr,
                     "error: unknown command '%s' (use scenes, predict, "
                     "oracle or compare)\n%s",
                     command.c_str(), args.usage().c_str());
        return 1;
    }

    setupObservability(args);
    rt::Scene scene = args.has("obj")
                          ? sceneFromObj(args.get("obj"))
                          : rt::buildScene(
                                rt::sceneIdFromName(args.get("scene")));
    rt::Bvh bvh;
    bvh.build(scene.triangles());
    gpusim::GpuConfig config = configFromName(args.get("gpu"));
    core::ZatelParams params = paramsFromArgs(args);
    core::ZatelPredictor predictor(scene, bvh, config, params);

    if (command == "predict") {
        core::ZatelResult result = predictor.predict();
        printPrediction(result);
        maybeWriteCsv(args, result);
        if (args.has("heatmap-out")) {
            if (predictor.quantizedHeatmap().writePpm(
                    args.get("heatmap-out")))
                std::printf("wrote %s\n", args.get("heatmap-out").c_str());
        }
        return writeObsOutputs(args);
    }

    if (command == "oracle") {
        gpusim::SimWorkload workload = gpusim::SimWorkload::buildFullFrame(
            rt::Tracer(scene, bvh,
                       rt::TracerParams{params.samplesPerPixel, 0.02f,
                                        0.06f}),
            params.width, params.height);
        gpusim::Gpu gpu(config, workload);
        gpusim::GpuStats stats = gpu.run();
        AsciiTable table({"Metric", "Value"});
        for (gpusim::Metric metric : gpusim::allMetrics()) {
            table.addRow({gpusim::metricName(metric),
                          AsciiTable::num(stats.metricValue(metric), 4)});
        }
        std::printf("%s", table.toString().c_str());
        if (args.getFlag("dump-stats"))
            std::printf("\n%s", gpu.statsReport().toString().c_str());
        return writeObsOutputs(args);
    }

    if (command == "compare") {
        core::OracleResult oracle = predictor.runOracle();
        core::ZatelResult result = predictor.predict();
        auto rows = core::compareToOracle(result.predicted, oracle.stats);
        std::printf("%s", core::comparisonTable(
                              rows, "Zatel vs full simulation ('" +
                                        scene.name() + "' on " +
                                        config.name + ")")
                              .c_str());
        std::printf("speedup (1 core/group): %.1fx\n",
                    oracle.wallSeconds /
                        (result.maxGroupWallSeconds + 1e-9));
        maybeWriteCsv(args, result);
        return writeObsOutputs(args);
    }

    return 0;
}
