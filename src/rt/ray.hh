/**
 * @file
 * Ray definition shared by the functional tracer and the timed RT unit.
 */

#ifndef ZATEL_RT_RAY_HH
#define ZATEL_RT_RAY_HH

#include <cstdint>
#include <limits>

#include "rt/vec3.hh"

namespace zatel::rt
{

/** A half-line with a parametric validity interval [tMin, tMax]. */
struct Ray
{
    Vec3 origin;
    Vec3 direction;
    float tMin = 1e-4f;
    float tMax = std::numeric_limits<float>::infinity();

    Vec3 at(float t) const { return origin + direction * t; }
};

/** Closest-hit query result. */
struct HitRecord
{
    /** Ray parameter of the hit; infinity when there is no hit. */
    float t = std::numeric_limits<float>::infinity();
    /** Index of the hit triangle, or kNoPrim. */
    uint32_t primIndex = 0xFFFFFFFFu;
    /** Geometric normal at the hit (unit length, faces the ray origin). */
    Vec3 normal;
    /** World-space hit position. */
    Vec3 position;
    /** Material id of the hit triangle. */
    uint16_t materialId = 0;

    static constexpr uint32_t kNoPrim = 0xFFFFFFFFu;

    bool valid() const { return primIndex != kNoPrim; }
};

} // namespace zatel::rt

#endif // ZATEL_RT_RAY_HH
