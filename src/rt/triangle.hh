/**
 * @file
 * Triangle primitive and Moeller-Trumbore intersection.
 */

#ifndef ZATEL_RT_TRIANGLE_HH
#define ZATEL_RT_TRIANGLE_HH

#include <cstdint>

#include "rt/aabb.hh"
#include "rt/ray.hh"
#include "rt/vec3.hh"

namespace zatel::rt
{

/** A single triangle with a material binding. */
struct Triangle
{
    Vec3 v0, v1, v2;
    uint16_t materialId = 0;

    Aabb bounds() const;
    Vec3 centroid() const { return (v0 + v1 + v2) / 3.0f; }

    /** Geometric (unnormalized) normal. */
    Vec3 rawNormal() const { return cross(v1 - v0, v2 - v0); }

    /**
     * Moeller-Trumbore intersection test.
     * @param ray Query ray; hits outside [tMin, tMax] are rejected.
     * @param t_out Out: hit distance on success.
     * @return true when the ray intersects this triangle.
     */
    bool intersect(const Ray &ray, float &t_out) const;
};

} // namespace zatel::rt

#endif // ZATEL_RT_TRIANGLE_HH
