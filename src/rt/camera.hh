/**
 * @file
 * Pinhole camera generating primary rays for image-plane pixels.
 */

#ifndef ZATEL_RT_CAMERA_HH
#define ZATEL_RT_CAMERA_HH

#include "rt/ray.hh"
#include "rt/vec3.hh"

namespace zatel::rt
{

/**
 * Pinhole camera.
 *
 * The image plane is addressed in pixels with (0,0) at the top-left, the
 * convention the paper's image-plane partitioning (Section III-D) uses.
 */
class Camera
{
  public:
    Camera() = default;

    /**
     * @param position Eye position.
     * @param look_at Target point.
     * @param up Up hint (need not be orthogonal).
     * @param vertical_fov_deg Vertical field of view in degrees.
     */
    Camera(const Vec3 &position, const Vec3 &look_at, const Vec3 &up,
           float vertical_fov_deg);

    /**
     * Primary ray through pixel (x, y) of a width x height image.
     * @param jitter_x / @p jitter_y Sub-pixel offsets in [0, 1); 0.5 hits
     *        the pixel center. Used for multi-sample rendering.
     */
    Ray generateRay(uint32_t x, uint32_t y, uint32_t width, uint32_t height,
                    float jitter_x = 0.5f, float jitter_y = 0.5f) const;

    const Vec3 &position() const { return position_; }

  private:
    Vec3 position_{0.0f, 0.0f, 0.0f};
    Vec3 forward_{0.0f, 0.0f, -1.0f};
    Vec3 right_{1.0f, 0.0f, 0.0f};
    Vec3 up_{0.0f, 1.0f, 0.0f};
    float tanHalfFov_ = 1.0f;
};

} // namespace zatel::rt

#endif // ZATEL_RT_CAMERA_HH
