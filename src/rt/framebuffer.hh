/**
 * @file
 * RGB framebuffer with PPM export (used by examples and heatmap dumps).
 */

#ifndef ZATEL_RT_FRAMEBUFFER_HH
#define ZATEL_RT_FRAMEBUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rt/vec3.hh"

namespace zatel::rt
{

/** Dense width x height image of linear RGB values. */
class FrameBuffer
{
  public:
    FrameBuffer() = default;
    FrameBuffer(uint32_t width, uint32_t height);

    uint32_t width() const { return width_; }
    uint32_t height() const { return height_; }
    size_t pixelCount() const { return pixels_.size(); }

    const Vec3 &at(uint32_t x, uint32_t y) const;
    void set(uint32_t x, uint32_t y, const Vec3 &color);

    const std::vector<Vec3> &pixels() const { return pixels_; }

    /**
     * Write a binary PPM (P6) with gamma 2.2 encoding.
     * @return true on success.
     */
    bool writePpm(const std::string &path, float gamma = 2.2f) const;

  private:
    uint32_t width_ = 0;
    uint32_t height_ = 0;
    std::vector<Vec3> pixels_;
};

} // namespace zatel::rt

#endif // ZATEL_RT_FRAMEBUFFER_HH
