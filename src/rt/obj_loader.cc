#include "rt/obj_loader.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace zatel::rt
{

namespace
{

/**
 * Resolve an OBJ face index (1-based; negative counts from the end)
 * into a 0-based vertex slot.
 */
size_t
resolveIndex(long raw, size_t vertex_count, size_t line_number)
{
    long resolved = raw;
    if (raw < 0)
        resolved = static_cast<long>(vertex_count) + raw + 1;
    if (resolved < 1 || resolved > static_cast<long>(vertex_count)) {
        fatal("OBJ line ", line_number, ": vertex index ", raw,
              " out of range (", vertex_count, " vertices)");
    }
    return static_cast<size_t>(resolved - 1);
}

/** Parse the leading vertex index of an `f` element like "12/3/4". */
bool
parseFaceElement(const std::string &element, long &index)
{
    if (element.empty())
        return false;
    size_t slash = element.find('/');
    std::string head =
        slash == std::string::npos ? element : element.substr(0, slash);
    if (head.empty())
        return false;
    char *end = nullptr;
    index = std::strtol(head.c_str(), &end, 10);
    return end != head.c_str() && *end == '\0' && index != 0;
}

} // namespace

ObjLoadResult
loadObj(std::istream &input, uint16_t material_id)
{
    ObjLoadResult result;
    std::vector<Vec3> vertices;

    std::string line;
    size_t line_number = 0;
    while (std::getline(input, line)) {
        ++line_number;
        // Strip comments and skip blanks.
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream tokens(line);
        std::string keyword;
        if (!(tokens >> keyword))
            continue;

        if (keyword == "v") {
            float x = 0.0f, y = 0.0f, z = 0.0f;
            if (tokens >> x >> y >> z) {
                vertices.push_back({x, y, z});
            } else {
                ++result.skippedLines;
            }
            continue;
        }

        if (keyword == "f") {
            std::vector<size_t> face;
            std::string element;
            bool ok = true;
            while (tokens >> element) {
                long raw = 0;
                if (!parseFaceElement(element, raw)) {
                    ok = false;
                    break;
                }
                face.push_back(
                    resolveIndex(raw, vertices.size(), line_number));
            }
            if (!ok || face.size() < 3) {
                ++result.skippedLines;
                continue;
            }
            ++result.faceCount;
            // Fan triangulation handles quads and n-gons.
            for (size_t i = 2; i < face.size(); ++i) {
                result.triangles.push_back({vertices[face[0]],
                                            vertices[face[i - 1]],
                                            vertices[face[i]],
                                            material_id});
            }
            continue;
        }

        // vn / vt / usemtl / o / g / s / mtllib ... : ignored geometry
        // metadata, not an error.
    }

    result.vertexCount = vertices.size();
    return result;
}

ObjLoadResult
loadObjFile(const std::string &path, uint16_t material_id)
{
    std::ifstream input(path);
    if (!input)
        fatal("cannot open OBJ file '", path, "'");
    return loadObj(input, material_id);
}

} // namespace zatel::rt
