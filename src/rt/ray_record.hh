/**
 * @file
 * Per-pixel ray recording for the timed simulator.
 *
 * The cycle-level GPU simulator replays the exact rays the functional
 * tracer would cast for each pixel: the recording walks the same shading
 * control flow as Tracer::shade() and emits one RayTask per cast ray.
 * During timed simulation each task is re-traversed with a
 * TraversalStepper, so the memory access stream (BVH node fetches) is
 * regenerated cycle-accurately rather than stored.
 */

#ifndef ZATEL_RT_RAY_RECORD_HH
#define ZATEL_RT_RAY_RECORD_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "rt/ray.hh"
#include "rt/tracer.hh"
#include "rt/traversal.hh"

namespace zatel::rt
{

/** One ray the pixel's shader casts, plus what follows it. */
struct RayTask
{
    Ray ray;
    TraversalMode mode = TraversalMode::ClosestHit;
    /** Functional result: did this ray hit (closest) / find occlusion. */
    bool hit = false;
    /** Material of the closest hit (valid when mode==ClosestHit && hit). */
    uint16_t materialId = 0;
    /** Recursion depth (0 = primary / first shadow, 1 = first bounce...). */
    uint8_t bounce = 0;
};

/** All rays a pixel casts, in program order, over all its samples. */
struct PixelRayRecord
{
    std::vector<RayTask> rays;

    /** Number of closest-hit rays that hit (== shade invocations). */
    uint32_t
    shadeCount() const
    {
        uint32_t count = 0;
        for (const RayTask &task : rays) {
            if (task.mode == TraversalMode::ClosestHit && task.hit)
                ++count;
        }
        return count;
    }
};

/**
 * Record the rays pixel (x, y) casts under @p tracer's configuration.
 * Matches Tracer::shade() exactly (same jitter, same recursion).
 */
PixelRayRecord recordPixelRays(const Tracer &tracer, uint32_t x, uint32_t y,
                               uint32_t width, uint32_t height);

/**
 * Packetized batch form of recordPixelRays(): records pixel
 * (xs[i], ys[i]) for every i < count, tracing the pixels' rays in
 * RayPacket batches, and invokes @p sink once per pixel, in index
 * order, with that pixel's completed record. The record reference is
 * engine-internal scratch reused between calls — copy what you keep.
 *
 * Per pixel the emitted record is byte-identical to recordPixelRays()
 * (the packet only interleaves independent per-ray traversals;
 * tests/test_tracer.cc holds the differential).
 */
void recordPixelRaysBatch(
    const Tracer &tracer, const uint32_t *xs, const uint32_t *ys,
    uint32_t count, uint32_t width, uint32_t height,
    const std::function<void(uint32_t index, const PixelRayRecord &record)>
        &sink);

} // namespace zatel::rt

#endif // ZATEL_RT_RAY_RECORD_HH
