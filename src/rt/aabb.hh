/**
 * @file
 * Axis-aligned bounding box used for BVH nodes (Section II-A of the paper).
 */

#ifndef ZATEL_RT_AABB_HH
#define ZATEL_RT_AABB_HH

#include <limits>

#include "rt/ray.hh"
#include "rt/vec3.hh"

namespace zatel::rt
{

/** Axis-aligned bounding box. Default-constructed boxes are empty. */
struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()};

    /** True when no point has been added. */
    bool empty() const { return lo.x > hi.x; }

    /** Grow to include @p point. */
    void
    expand(const Vec3 &point)
    {
        lo = minVec(lo, point);
        hi = maxVec(hi, point);
    }

    /** Grow to include @p other. */
    void
    expand(const Aabb &other)
    {
        lo = minVec(lo, other.lo);
        hi = maxVec(hi, other.hi);
    }

    /** Diagonal extent. */
    Vec3 extent() const { return empty() ? Vec3(0.0f) : hi - lo; }

    /** Box center. */
    Vec3 center() const { return (lo + hi) * 0.5f; }

    /** Surface area (0 for empty boxes); drives the SAH builder. */
    float surfaceArea() const;

    /** Index (0/1/2) of the widest axis. */
    int longestAxis() const;

    /** True when @p point is inside (inclusive). */
    bool contains(const Vec3 &point) const;

    /** True when this box and @p other intersect (inclusive). */
    bool overlaps(const Aabb &other) const;

    /**
     * Slab test against @p ray.
     * @param inv_dir Precomputed component-wise reciprocal direction.
     * @param t_hit Out: entry distance along the ray when hit.
     * @return true when the ray intersects within [ray.tMin, ray.tMax].
     */
    bool intersect(const Ray &ray, const Vec3 &inv_dir, float &t_hit) const;
};

} // namespace zatel::rt

#endif // ZATEL_RT_AABB_HH
