#include "rt/scene.hh"

#include "util/logging.hh"

namespace zatel::rt
{

uint16_t
Scene::addMaterial(const Material &material)
{
    ZATEL_ASSERT(materials_.size() < 0xFFFF, "too many materials");
    materials_.push_back(material);
    return static_cast<uint16_t>(materials_.size() - 1);
}

const Material &
Scene::material(uint16_t id) const
{
    ZATEL_ASSERT(id < materials_.size(), "material id ", id,
                 " out of range (", materials_.size(), ")");
    return materials_[id];
}

void
Scene::addTriangles(std::vector<Triangle> triangles)
{
    triangles_.insert(triangles_.end(),
                      std::make_move_iterator(triangles.begin()),
                      std::make_move_iterator(triangles.end()));
}

} // namespace zatel::rt
