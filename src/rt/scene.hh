/**
 * @file
 * Scene container: geometry, materials, lighting, camera and path budget.
 */

#ifndef ZATEL_RT_SCENE_HH
#define ZATEL_RT_SCENE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rt/camera.hh"
#include "rt/material.hh"
#include "rt/triangle.hh"
#include "rt/vec3.hh"

namespace zatel::rt
{

/** Single point light (the shading model casts one shadow ray per hit). */
struct PointLight
{
    Vec3 position;
    Vec3 intensity{1.0f, 1.0f, 1.0f};
};

/**
 * A renderable scene.
 *
 * Triangles reference materials by id; the camera and light define the
 * shading; maxBounces caps the reflection-ray recursion depth (PARK-style
 * path-traced scenes use 3, simple scenes 1).
 */
class Scene
{
  public:
    Scene() = default;
    explicit Scene(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Register a material; returns its id. */
    uint16_t addMaterial(const Material &material);

    const Material &material(uint16_t id) const;
    size_t materialCount() const { return materials_.size(); }

    /** Append triangles (takes ownership by copy/move). */
    void addTriangles(std::vector<Triangle> triangles);

    const std::vector<Triangle> &triangles() const { return triangles_; }
    size_t triangleCount() const { return triangles_.size(); }

    void setCamera(const Camera &camera) { camera_ = camera; }
    const Camera &camera() const { return camera_; }

    void setLight(const PointLight &light) { light_ = light; }
    const PointLight &light() const { return light_; }

    void setBackground(const Vec3 &color) { background_ = color; }
    const Vec3 &background() const { return background_; }

    void setMaxBounces(int bounces) { maxBounces_ = bounces; }
    int maxBounces() const { return maxBounces_; }

  private:
    std::string name_;
    std::vector<Triangle> triangles_;
    std::vector<Material> materials_;
    Camera camera_;
    PointLight light_;
    Vec3 background_{0.05f, 0.07f, 0.12f};
    int maxBounces_ = 1;
};

} // namespace zatel::rt

#endif // ZATEL_RT_SCENE_HH
