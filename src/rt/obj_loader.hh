/**
 * @file
 * Minimal Wavefront OBJ loader.
 *
 * LumiBench's scenes are real meshes; this repo's analogues are
 * procedural, but adopters evaluating their own content can load any
 * triangle/polygon OBJ here (polygons are fan-triangulated). Only
 * geometry is consumed: `v` and `f` records, with `f` accepting the
 * `v`, `v/vt`, `v//vn` and `v/vt/vn` index forms and negative
 * (relative) indices. Materials, normals and texcoords are ignored —
 * the simulator's workload depends only on geometry.
 */

#ifndef ZATEL_RT_OBJ_LOADER_HH
#define ZATEL_RT_OBJ_LOADER_HH

#include <istream>
#include <string>
#include <vector>

#include "rt/triangle.hh"

namespace zatel::rt
{

/** Outcome of an OBJ parse. */
struct ObjLoadResult
{
    std::vector<Triangle> triangles;
    size_t vertexCount = 0;
    size_t faceCount = 0;
    /** Lines that could not be parsed (skipped, not fatal). */
    size_t skippedLines = 0;
};

/**
 * Parse OBJ text from @p input.
 * @param material_id Material bound to every produced triangle.
 * Calls fatal() on malformed face indices (out of range).
 */
ObjLoadResult loadObj(std::istream &input, uint16_t material_id = 0);

/**
 * Load an OBJ file from disk.
 * Calls fatal() when the file cannot be opened.
 */
ObjLoadResult loadObjFile(const std::string &path,
                          uint16_t material_id = 0);

} // namespace zatel::rt

#endif // ZATEL_RT_OBJ_LOADER_HH
