#include "rt/mesh.hh"

#include <cmath>

#include "util/logging.hh"

namespace zatel::rt
{

void
MeshBuilder::addTriangle(const Vec3 &v0, const Vec3 &v1, const Vec3 &v2,
                         uint16_t material_id)
{
    triangles_.push_back({v0, v1, v2, material_id});
}

void
MeshBuilder::addQuad(const Vec3 &v0, const Vec3 &v1, const Vec3 &v2,
                     const Vec3 &v3, uint16_t material_id)
{
    addTriangle(v0, v1, v2, material_id);
    addTriangle(v0, v2, v3, material_id);
}

void
MeshBuilder::addBox(const Vec3 &lo, const Vec3 &hi, uint16_t material_id)
{
    Vec3 a{lo.x, lo.y, lo.z};
    Vec3 b{hi.x, lo.y, lo.z};
    Vec3 c{hi.x, hi.y, lo.z};
    Vec3 d{lo.x, hi.y, lo.z};
    Vec3 e{lo.x, lo.y, hi.z};
    Vec3 f{hi.x, lo.y, hi.z};
    Vec3 g{hi.x, hi.y, hi.z};
    Vec3 h{lo.x, hi.y, hi.z};

    addQuad(a, d, c, b, material_id); // -z
    addQuad(e, f, g, h, material_id); // +z
    addQuad(a, e, h, d, material_id); // -x
    addQuad(b, c, g, f, material_id); // +x
    addQuad(a, b, f, e, material_id); // -y
    addQuad(d, h, g, c, material_id); // +y
}

void
MeshBuilder::addSphere(const Vec3 &center, float radius, int segments,
                       uint16_t material_id)
{
    ZATEL_ASSERT(segments >= 3, "sphere needs >= 3 segments");
    int lat_steps = std::max(2, segments / 2);
    int lon_steps = segments;

    auto point = [&](int lat, int lon) {
        float theta = static_cast<float>(M_PI) * lat / lat_steps;
        float phi = 2.0f * static_cast<float>(M_PI) * lon / lon_steps;
        return center + Vec3{radius * std::sin(theta) * std::cos(phi),
                             radius * std::cos(theta),
                             radius * std::sin(theta) * std::sin(phi)};
    };

    for (int lat = 0; lat < lat_steps; ++lat) {
        for (int lon = 0; lon < lon_steps; ++lon) {
            Vec3 p00 = point(lat, lon);
            Vec3 p01 = point(lat, lon + 1);
            Vec3 p10 = point(lat + 1, lon);
            Vec3 p11 = point(lat + 1, lon + 1);
            if (lat != 0)
                addTriangle(p00, p01, p11, material_id);
            if (lat != lat_steps - 1)
                addTriangle(p00, p11, p10, material_id);
        }
    }
}

void
MeshBuilder::addCone(const Vec3 &base_center, float radius, float height,
                     int segments, uint16_t material_id)
{
    ZATEL_ASSERT(segments >= 3, "cone needs >= 3 segments");
    Vec3 apex = base_center + Vec3{0.0f, height, 0.0f};
    for (int i = 0; i < segments; ++i) {
        float a0 = 2.0f * static_cast<float>(M_PI) * i / segments;
        float a1 = 2.0f * static_cast<float>(M_PI) * (i + 1) / segments;
        Vec3 p0 = base_center +
                  Vec3{radius * std::cos(a0), 0.0f, radius * std::sin(a0)};
        Vec3 p1 = base_center +
                  Vec3{radius * std::cos(a1), 0.0f, radius * std::sin(a1)};
        addTriangle(p0, p1, apex, material_id);
        addTriangle(p0, base_center, p1, material_id);
    }
}

void
MeshBuilder::addGroundPlane(const Vec3 &center, float half_extent, int cells,
                            uint16_t material_id)
{
    ZATEL_ASSERT(cells >= 1, "ground plane needs >= 1 cell");
    float step = 2.0f * half_extent / cells;
    for (int i = 0; i < cells; ++i) {
        for (int j = 0; j < cells; ++j) {
            float x0 = center.x - half_extent + i * step;
            float z0 = center.z - half_extent + j * step;
            Vec3 a{x0, center.y, z0};
            Vec3 b{x0 + step, center.y, z0};
            Vec3 c{x0 + step, center.y, z0 + step};
            Vec3 d{x0, center.y, z0 + step};
            addQuad(a, b, c, d, material_id);
        }
    }
}

void
MeshBuilder::addTriangleSoup(Rng &rng, const Vec3 &center, float radius,
                             int count, float tri_size,
                             uint16_t material_id)
{
    for (int i = 0; i < count; ++i) {
        // Rejection-sample a point inside the sphere volume.
        Vec3 p;
        do {
            p = Vec3{static_cast<float>(rng.nextDouble(-1.0, 1.0)),
                     static_cast<float>(rng.nextDouble(-1.0, 1.0)),
                     static_cast<float>(rng.nextDouble(-1.0, 1.0))};
        } while (lengthSquared(p) > 1.0f);
        p = center + p * radius;

        auto jitter = [&]() {
            return Vec3{static_cast<float>(rng.nextDouble(-1.0, 1.0)),
                        static_cast<float>(rng.nextDouble(-1.0, 1.0)),
                        static_cast<float>(rng.nextDouble(-1.0, 1.0))} *
                   tri_size;
        };
        addTriangle(p + jitter(), p + jitter(), p + jitter(), material_id);
    }
}

void
MeshBuilder::addTerrain(Rng &rng, const Vec3 &center, float half_extent,
                        int cells, float roughness, uint16_t material_id)
{
    ZATEL_ASSERT(cells >= 1, "terrain needs >= 1 cell");
    int verts = cells + 1;
    std::vector<float> heights(verts * verts);
    for (auto &h : heights)
        h = static_cast<float>(rng.nextDouble(0.0, roughness));

    float step = 2.0f * half_extent / cells;
    auto vertex = [&](int i, int j) {
        return Vec3{center.x - half_extent + i * step,
                    center.y + heights[j * verts + i],
                    center.z - half_extent + j * step};
    };
    for (int i = 0; i < cells; ++i) {
        for (int j = 0; j < cells; ++j) {
            Vec3 a = vertex(i, j);
            Vec3 b = vertex(i + 1, j);
            Vec3 c = vertex(i + 1, j + 1);
            Vec3 d = vertex(i, j + 1);
            addTriangle(a, b, c, material_id);
            addTriangle(a, c, d, material_id);
        }
    }
}

} // namespace zatel::rt
