#include "rt/scene_library.hh"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "rt/mesh.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace zatel::rt
{

namespace
{

int
scaled(int base, float density)
{
    return std::max(1, static_cast<int>(std::lround(base * density)));
}

/**
 * PARK: large outdoor path-traced scene — ground, many trees, mirror pond
 * and mirror ornaments; 3 bounces. Nearly every pixel hits geometry and
 * mirror paths re-traverse the BVH, so the GPU saturates (paper IV-B).
 */
Scene
buildPark(const SceneDetail &detail, uint64_t seed)
{
    Rng rng(seed ^ 0x9A7Bull);
    Scene scene("PARK");
    scene.setMaxBounces(3);
    scene.setBackground({0.35f, 0.45f, 0.65f});
    scene.setLight({{18.0f, 40.0f, 24.0f}, {1.15f, 1.1f, 1.0f}});
    scene.setCamera(Camera({0.0f, 7.0f, 26.0f}, {0.0f, 2.5f, 0.0f},
                           {0.0f, 1.0f, 0.0f}, 55.0f));

    uint16_t grass = scene.addMaterial(Material::diffuse({0.25f, 0.5f, 0.2f}));
    uint16_t bark = scene.addMaterial(Material::diffuse({0.35f, 0.25f, 0.15f}));
    uint16_t leaf = scene.addMaterial(Material::diffuse({0.15f, 0.45f, 0.12f}));
    uint16_t water = scene.addMaterial(Material::mirror({0.6f, 0.75f, 0.9f},
                                                        0.85f));
    uint16_t chrome = scene.addMaterial(Material::mirror({0.9f, 0.9f, 0.95f},
                                                         0.9f));
    uint16_t stone = scene.addMaterial(Material::diffuse({0.5f, 0.5f, 0.52f}));

    MeshBuilder mesh;
    mesh.addTerrain(rng, {0.0f, 0.0f, 0.0f}, 30.0f, scaled(20, detail.density),
                    0.4f, grass);

    // Mirror pond in front of the camera.
    mesh.addQuad({-8.0f, 0.45f, 6.0f}, {8.0f, 0.45f, 6.0f},
                 {8.0f, 0.45f, 18.0f}, {-8.0f, 0.45f, 18.0f}, water);

    // Ring of trees: trunk cone + canopy soup.
    int trees = scaled(14, detail.density);
    for (int i = 0; i < trees; ++i) {
        float angle = 2.0f * static_cast<float>(M_PI) * i / trees;
        float radius = 12.0f + static_cast<float>(rng.nextDouble(0.0, 10.0));
        Vec3 base{radius * std::cos(angle), 0.3f, radius * std::sin(angle)};
        float height = 4.0f + static_cast<float>(rng.nextDouble(0.0, 3.0));
        mesh.addCone(base, 0.7f, height, 8, bark);
        mesh.addTriangleSoup(rng, base + Vec3{0.0f, height + 1.2f, 0.0f},
                             2.2f, scaled(260, detail.density), 0.5f, leaf);
    }

    // Chrome garden ornaments near the pond edge (mirror bounce sources).
    for (int i = 0; i < scaled(4, detail.density); ++i) {
        Vec3 center{-6.0f + 4.0f * i, 1.6f, 3.5f};
        mesh.addSphere(center, 1.1f, 10, chrome);
    }

    // Stone benches.
    for (int i = 0; i < scaled(5, detail.density); ++i) {
        float x = -10.0f + 5.0f * i;
        mesh.addBox({x, 0.4f, -4.0f}, {x + 2.2f, 1.1f, -2.8f}, stone);
    }

    scene.addTriangles(mesh.takeTriangles());
    return scene;
}

/**
 * SPRNG: only two objects in an empty world. Most rays exit after the root
 * test, the GPU never saturates, and cycle counts barely change with the
 * traced-pixel percentage (the Fig. 13 outlier).
 */
Scene
buildSprng(const SceneDetail &detail, uint64_t seed)
{
    Rng rng(seed ^ 0x51B2ull);
    Scene scene("SPRNG");
    scene.setMaxBounces(1);
    scene.setBackground({0.02f, 0.03f, 0.06f});
    scene.setLight({{10.0f, 18.0f, 10.0f}, {1.2f, 1.2f, 1.15f}});
    scene.setCamera(Camera({0.0f, 1.5f, 14.0f}, {0.0f, 0.5f, 0.0f},
                           {0.0f, 1.0f, 0.0f}, 50.0f));

    uint16_t coil = scene.addMaterial(Material::diffuse({0.7f, 0.45f, 0.2f}));
    uint16_t ball = scene.addMaterial(Material::diffuse({0.3f, 0.4f, 0.75f}));

    MeshBuilder mesh;
    // A coiled "spring": stacked tori approximated by rings of small
    // spheres, and a companion ball. Both are small in the frame.
    int rings = scaled(6, detail.density);
    for (int r = 0; r < rings; ++r) {
        float y = -1.2f + 0.5f * r;
        int beads = 14;
        for (int b = 0; b < beads; ++b) {
            float angle = 2.0f * static_cast<float>(M_PI) * b / beads +
                          0.3f * r;
            Vec3 center{-2.2f + 1.3f * std::cos(angle), y,
                        1.3f * std::sin(angle)};
            mesh.addSphere(center, 0.22f, 6, coil);
        }
    }
    mesh.addSphere({2.6f, 0.4f, 0.0f}, 1.3f, 14, ball);
    (void)rng;

    scene.addTriangles(mesh.takeTriangles());
    return scene;
}

/**
 * BUNNY: one dense organic object filling most of the view over a small
 * pedestal; uniformly warm heatmap (the warmest Table III scene).
 */
Scene
buildBunny(const SceneDetail &detail, uint64_t seed)
{
    Rng rng(seed ^ 0xB0BAull);
    Scene scene("BUNNY");
    scene.setMaxBounces(1);
    scene.setBackground({0.07f, 0.08f, 0.1f});
    scene.setLight({{6.0f, 12.0f, 9.0f}, {1.1f, 1.05f, 1.0f}});
    scene.setCamera(Camera({0.0f, 2.4f, 6.2f}, {0.0f, 1.8f, 0.0f},
                           {0.0f, 1.0f, 0.0f}, 52.0f));

    uint16_t fur = scene.addMaterial(Material::diffuse({0.75f, 0.7f, 0.62f}));
    uint16_t base = scene.addMaterial(Material::diffuse({0.4f, 0.38f, 0.36f}));

    MeshBuilder mesh;
    int res = scaled(22, detail.density);
    res = std::max(8, res);
    // Body, haunches, head, ears — a blobby bunny silhouette.
    mesh.addSphere({0.0f, 1.2f, 0.0f}, 1.5f, res, fur);
    mesh.addSphere({-0.9f, 0.8f, 0.3f}, 0.9f, res, fur);
    mesh.addSphere({0.9f, 0.8f, 0.3f}, 0.9f, res, fur);
    mesh.addSphere({0.0f, 2.9f, 0.35f}, 0.85f, res, fur);
    mesh.addCone({-0.35f, 3.4f, 0.3f}, 0.28f, 1.5f, 10, fur);
    mesh.addCone({0.4f, 3.4f, 0.3f}, 0.28f, 1.5f, 10, fur);
    // Fuzzy surface detail increases leaf-level work on the object.
    mesh.addTriangleSoup(rng, {0.0f, 1.6f, 0.0f}, 1.9f,
                         scaled(900, detail.density), 0.16f, fur);
    mesh.addBox({-2.4f, -0.4f, -2.0f}, {2.4f, 0.1f, 2.0f}, base);

    scene.addTriangles(mesh.takeTriangles());
    return scene;
}

/**
 * CHSNT: a chestnut tree with a dense, spatially incoherent canopy over
 * open ground; warm clusters with divergent traversal inside the canopy.
 */
Scene
buildChsnt(const SceneDetail &detail, uint64_t seed)
{
    Rng rng(seed ^ 0xC4E5ull);
    Scene scene("CHSNT");
    scene.setMaxBounces(1);
    scene.setBackground({0.3f, 0.4f, 0.55f});
    scene.setLight({{-14.0f, 30.0f, 16.0f}, {1.1f, 1.05f, 0.95f}});
    scene.setCamera(Camera({0.0f, 4.0f, 18.0f}, {0.0f, 5.0f, 0.0f},
                           {0.0f, 1.0f, 0.0f}, 55.0f));

    uint16_t grass = scene.addMaterial(Material::diffuse({0.3f, 0.5f, 0.25f}));
    uint16_t bark = scene.addMaterial(Material::diffuse({0.3f, 0.2f, 0.12f}));
    uint16_t leaf = scene.addMaterial(Material::diffuse({0.2f, 0.42f, 0.1f}));

    MeshBuilder mesh;
    mesh.addGroundPlane({0.0f, 0.0f, 0.0f}, 24.0f,
                        scaled(12, detail.density), grass);
    mesh.addCone({0.0f, 0.0f, 0.0f}, 1.1f, 7.0f, 10, bark);
    // Three overlapping canopy blobs of fine triangles.
    mesh.addTriangleSoup(rng, {0.0f, 8.5f, 0.0f}, 4.5f,
                         scaled(2400, detail.density), 0.5f, leaf);
    mesh.addTriangleSoup(rng, {-2.5f, 7.0f, 1.0f}, 2.8f,
                         scaled(1100, detail.density), 0.45f, leaf);
    mesh.addTriangleSoup(rng, {2.6f, 7.4f, -0.8f}, 2.6f,
                         scaled(1100, detail.density), 0.45f, leaf);

    scene.addTriangles(mesh.takeTriangles());
    return scene;
}

/**
 * SPNZA: enclosed atrium (floor, walls, colonnades). Every ray hits nearby
 * coherent geometry, so traversal is short and uniform.
 */
Scene
buildSpnza(const SceneDetail &detail, uint64_t seed)
{
    Rng rng(seed ^ 0x59A2ull);
    Scene scene("SPNZA");
    scene.setMaxBounces(1);
    scene.setBackground({0.05f, 0.05f, 0.05f});
    scene.setLight({{0.0f, 11.0f, 0.0f}, {1.3f, 1.25f, 1.1f}});
    scene.setCamera(Camera({0.0f, 4.5f, 13.0f}, {0.0f, 3.5f, 0.0f},
                           {0.0f, 1.0f, 0.0f}, 60.0f));

    uint16_t plaster = scene.addMaterial(
        Material::diffuse({0.7f, 0.62f, 0.5f}));
    uint16_t column = scene.addMaterial(
        Material::diffuse({0.62f, 0.55f, 0.45f}));
    uint16_t floor = scene.addMaterial(Material::diffuse({0.45f, 0.4f, 0.35f}));
    uint16_t drape = scene.addMaterial(Material::diffuse({0.5f, 0.15f, 0.12f}));

    MeshBuilder mesh;
    int cells = scaled(10, detail.density);
    mesh.addGroundPlane({0.0f, 0.0f, 0.0f}, 16.0f, cells, floor);
    // Walls (interior faces of a big box shell).
    mesh.addBox({-16.0f, 0.0f, -16.0f}, {-15.0f, 12.0f, 16.0f}, plaster);
    mesh.addBox({15.0f, 0.0f, -16.0f}, {16.0f, 12.0f, 16.0f}, plaster);
    mesh.addBox({-16.0f, 0.0f, -16.0f}, {16.0f, 12.0f, -15.0f}, plaster);
    mesh.addBox({-16.0f, 11.0f, -16.0f}, {16.0f, 12.0f, 16.0f}, plaster);

    // Two colonnade rows.
    int columns = scaled(7, detail.density);
    for (int i = 0; i < columns; ++i) {
        float z = -12.0f + 24.0f * i / std::max(1, columns - 1);
        mesh.addBox({-9.5f, 0.0f, z - 0.6f}, {-8.3f, 8.0f, z + 0.6f}, column);
        mesh.addBox({8.3f, 0.0f, z - 0.6f}, {9.5f, 8.0f, z + 0.6f}, column);
    }
    // Hanging drapes.
    for (int i = 0; i < scaled(4, detail.density); ++i) {
        float z = -9.0f + 6.0f * i;
        mesh.addQuad({-7.5f, 8.5f, z}, {-7.5f, 3.5f, z}, {-6.0f, 3.5f, z},
                     {-6.0f, 8.5f, z}, drape);
    }
    (void)rng;

    scene.addTriangles(mesh.takeTriangles());
    return scene;
}

/**
 * BATH: small enclosed bathroom with two mirror walls and 4 bounces; the
 * longest-running scene per traced pixel (Fig. 14's steepest slope).
 */
Scene
buildBath(const SceneDetail &detail, uint64_t seed)
{
    Rng rng(seed ^ 0xBA7Bull);
    Scene scene("BATH");
    scene.setMaxBounces(5);
    scene.setBackground({0.02f, 0.02f, 0.02f});
    scene.setLight({{0.0f, 5.2f, 0.0f}, {1.2f, 1.2f, 1.15f}});
    scene.setCamera(Camera({0.0f, 2.6f, 5.4f}, {0.0f, 2.0f, -2.0f},
                           {0.0f, 1.0f, 0.0f}, 62.0f));

    uint16_t tile = scene.addMaterial(Material::diffuse({0.75f, 0.78f, 0.8f}));
    uint16_t mirror = scene.addMaterial(
        Material::mirror({0.92f, 0.93f, 0.95f}, 0.92f));
    uint16_t ceramic = scene.addMaterial(
        Material::diffuse({0.85f, 0.85f, 0.82f}));
    uint16_t brass = scene.addMaterial(
        Material::mirror({0.8f, 0.65f, 0.3f}, 0.7f));
    uint16_t polish = scene.addMaterial(
        Material::mirror({0.8f, 0.82f, 0.85f}, 0.75f));

    // A polished (mirror) floor plus three mirror walls: nearly every
    // path bounces several times, making BATH the longest-running scene
    // per traced pixel (the paper's Fig. 14 observation).
    MeshBuilder mesh;
    int cells = scaled(8, detail.density);
    mesh.addGroundPlane({0.0f, 0.0f, 0.0f}, 6.0f, cells, polish);
    mesh.addGroundPlane({0.0f, 6.0f, 0.0f}, 6.0f, cells, tile); // ceiling
    mesh.addQuad({-6.0f, 0.0f, -6.0f}, {6.0f, 0.0f, -6.0f},
                 {6.0f, 6.0f, -6.0f}, {-6.0f, 6.0f, -6.0f}, mirror);
    mesh.addQuad({6.0f, 0.0f, -6.0f}, {6.0f, 0.0f, 6.0f},
                 {6.0f, 6.0f, 6.0f}, {6.0f, 6.0f, -6.0f}, mirror);
    mesh.addQuad({-6.0f, 0.0f, 6.0f}, {-6.0f, 0.0f, -6.0f},
                 {-6.0f, 6.0f, -6.0f}, {-6.0f, 6.0f, 6.0f}, mirror);
    mesh.addQuad({6.0f, 0.0f, 6.0f}, {-6.0f, 0.0f, 6.0f},
                 {-6.0f, 6.0f, 6.0f}, {6.0f, 6.0f, 6.0f}, tile);

    // Bathtub, sink pedestal, fixtures.
    mesh.addBox({-3.6f, 0.0f, -4.8f}, {-0.4f, 1.2f, -2.6f}, ceramic);
    mesh.addBox({2.0f, 0.0f, -4.6f}, {3.6f, 1.6f, -3.2f}, ceramic);
    mesh.addSphere({2.8f, 2.0f, -3.9f}, 0.35f, 10, brass);
    for (int i = 0; i < scaled(3, detail.density); ++i) {
        float x = -3.0f + 1.2f * i;
        mesh.addSphere({x, 1.5f, -3.7f}, 0.28f, 8, brass);
    }
    (void)rng;

    scene.addTriangles(mesh.takeTriangles());
    return scene;
}

/**
 * SHIP: the coldest heatmap — a small ship on a flat sea under empty sky.
 * Most pixels either miss everything or hit the trivially flat sea.
 */
Scene
buildShip(const SceneDetail &detail, uint64_t seed)
{
    Rng rng(seed ^ 0x5819ull);
    Scene scene("SHIP");
    scene.setMaxBounces(1);
    scene.setBackground({0.5f, 0.6f, 0.75f});
    scene.setLight({{30.0f, 40.0f, 20.0f}, {1.15f, 1.1f, 1.0f}});
    scene.setCamera(Camera({0.0f, 6.0f, 30.0f}, {0.0f, 3.0f, 0.0f},
                           {0.0f, 1.0f, 0.0f}, 50.0f));

    uint16_t sea = scene.addMaterial(Material::diffuse({0.1f, 0.25f, 0.4f}));
    uint16_t hull = scene.addMaterial(Material::diffuse({0.35f, 0.2f, 0.12f}));
    uint16_t sail = scene.addMaterial(Material::diffuse({0.85f, 0.83f, 0.75f}));
    uint16_t mast = scene.addMaterial(Material::diffuse({0.3f, 0.22f, 0.15f}));

    MeshBuilder mesh;
    mesh.addGroundPlane({0.0f, 0.0f, 0.0f}, 60.0f, scaled(8, detail.density),
                        sea);
    // Hull with a stepped profile.
    mesh.addBox({-5.0f, 0.4f, -2.0f}, {5.0f, 2.2f, 2.0f}, hull);
    mesh.addBox({-6.2f, 1.2f, -1.2f}, {-5.0f, 2.6f, 1.2f}, hull);
    mesh.addBox({5.0f, 1.2f, -1.2f}, {6.4f, 3.0f, 1.2f}, hull);
    // Masts and yardarms (thin geometry, expensive BVH around them).
    for (int i = 0; i < 3; ++i) {
        float x = -3.0f + 3.0f * i;
        mesh.addBox({x - 0.12f, 2.2f, -0.12f}, {x + 0.12f, 11.0f, 0.12f},
                    mast);
        mesh.addBox({x - 2.2f, 8.0f, -0.08f}, {x + 2.2f, 8.25f, 0.08f},
                    mast);
        mesh.addQuad({x - 2.0f, 8.0f, 0.1f}, {x + 2.0f, 8.0f, 0.1f},
                     {x + 1.4f, 4.0f, 0.3f}, {x - 1.4f, 4.0f, 0.3f}, sail);
    }
    // Rigging dots.
    for (int i = 0; i < scaled(12, detail.density); ++i) {
        float x = static_cast<float>(rng.nextDouble(-6.0, 6.0));
        float y = static_cast<float>(rng.nextDouble(3.0, 10.0));
        mesh.addSphere({x, y, 0.0f}, 0.1f, 4, mast);
    }

    scene.addTriangles(mesh.takeTriangles());
    return scene;
}

/**
 * WKND: a "ray tracing in one weekend"-style field of random spheres with
 * a few mirrors: a genuine warm/cold mixture (the Table III middle case).
 */
Scene
buildWknd(const SceneDetail &detail, uint64_t seed)
{
    Rng rng(seed ^ 0x3EE7ull);
    Scene scene("WKND");
    scene.setMaxBounces(2);
    scene.setBackground({0.55f, 0.65f, 0.8f});
    scene.setLight({{12.0f, 25.0f, 15.0f}, {1.1f, 1.08f, 1.0f}});
    scene.setCamera(Camera({0.0f, 3.2f, 16.0f}, {0.0f, 1.0f, 0.0f},
                           {0.0f, 1.0f, 0.0f}, 50.0f));

    uint16_t ground = scene.addMaterial(
        Material::diffuse({0.45f, 0.45f, 0.4f}));
    MeshBuilder mesh;
    mesh.addGroundPlane({0.0f, 0.0f, 0.0f}, 30.0f, scaled(10, detail.density),
                        ground);

    int spheres = scaled(48, detail.density);
    for (int i = 0; i < spheres; ++i) {
        Vec3 center{static_cast<float>(rng.nextDouble(-14.0, 14.0)),
                    0.0f,
                    static_cast<float>(rng.nextDouble(-14.0, 8.0))};
        float radius = 0.4f + static_cast<float>(rng.nextDouble(0.0, 1.1));
        center.y = radius;
        uint16_t mat;
        double roll = rng.nextDouble();
        if (roll < 0.22) {
            mat = scene.addMaterial(Material::mirror(
                {0.85f, 0.85f, 0.9f},
                0.75f + static_cast<float>(rng.nextDouble(0.0, 0.2))));
        } else {
            mat = scene.addMaterial(Material::diffuse(
                {static_cast<float>(rng.nextDouble(0.1, 0.9)),
                 static_cast<float>(rng.nextDouble(0.1, 0.9)),
                 static_cast<float>(rng.nextDouble(0.1, 0.9))}));
        }
        mesh.addSphere(center, radius, 10, mat);
    }
    // Three hero spheres.
    uint16_t hero = scene.addMaterial(Material::mirror({0.9f, 0.9f, 0.92f},
                                                       0.9f));
    uint16_t matte = scene.addMaterial(Material::diffuse({0.6f, 0.3f, 0.25f}));
    mesh.addSphere({-3.5f, 1.8f, 0.0f}, 1.8f, 16, hero);
    mesh.addSphere({0.0f, 1.8f, -2.0f}, 1.8f, 16, matte);
    mesh.addSphere({3.5f, 1.8f, 0.0f}, 1.8f, 16, hero);

    scene.addTriangles(mesh.takeTriangles());
    return scene;
}

} // namespace

const char *
sceneName(SceneId id)
{
    switch (id) {
      case SceneId::Park: return "PARK";
      case SceneId::Sprng: return "SPRNG";
      case SceneId::Bunny: return "BUNNY";
      case SceneId::Chsnt: return "CHSNT";
      case SceneId::Spnza: return "SPNZA";
      case SceneId::Bath: return "BATH";
      case SceneId::Ship: return "SHIP";
      case SceneId::Wknd: return "WKND";
    }
    panic("unknown SceneId");
}

SceneId
sceneIdFromName(const std::string &name)
{
    std::string upper;
    upper.reserve(name.size());
    for (char c : name)
        upper.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(c))));
    for (SceneId id : allScenes()) {
        if (upper == sceneName(id))
            return id;
    }
    fatal("unknown scene name '", name, "'");
}

std::vector<SceneId>
allScenes()
{
    return {SceneId::Park, SceneId::Sprng, SceneId::Bunny, SceneId::Chsnt,
            SceneId::Spnza, SceneId::Bath, SceneId::Ship, SceneId::Wknd};
}

std::vector<SceneId>
representativeSubset()
{
    // Scenes that keep the GPU busy even when split into groups; SPRNG
    // and SHIP are deliberately excluded (paper Section IV-E).
    return {SceneId::Park, SceneId::Bunny, SceneId::Chsnt, SceneId::Spnza,
            SceneId::Bath};
}

Scene
buildScene(SceneId id, const SceneDetail &detail, uint64_t seed)
{
    switch (id) {
      case SceneId::Park: return buildPark(detail, seed);
      case SceneId::Sprng: return buildSprng(detail, seed);
      case SceneId::Bunny: return buildBunny(detail, seed);
      case SceneId::Chsnt: return buildChsnt(detail, seed);
      case SceneId::Spnza: return buildSpnza(detail, seed);
      case SceneId::Bath: return buildBath(detail, seed);
      case SceneId::Ship: return buildShip(detail, seed);
      case SceneId::Wknd: return buildWknd(detail, seed);
    }
    panic("unknown SceneId");
}

} // namespace zatel::rt
