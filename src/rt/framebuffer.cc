#include "rt/framebuffer.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/logging.hh"

namespace zatel::rt
{

FrameBuffer::FrameBuffer(uint32_t width, uint32_t height)
    : width_(width), height_(height),
      pixels_(static_cast<size_t>(width) * height)
{
}

const Vec3 &
FrameBuffer::at(uint32_t x, uint32_t y) const
{
    ZATEL_ASSERT(x < width_ && y < height_, "pixel (", x, ",", y,
                 ") out of bounds");
    return pixels_[static_cast<size_t>(y) * width_ + x];
}

void
FrameBuffer::set(uint32_t x, uint32_t y, const Vec3 &color)
{
    ZATEL_ASSERT(x < width_ && y < height_, "pixel (", x, ",", y,
                 ") out of bounds");
    pixels_[static_cast<size_t>(y) * width_ + x] = color;
}

bool
FrameBuffer::writePpm(const std::string &path, float gamma) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
    float inv_gamma = 1.0f / gamma;
    for (const Vec3 &pixel : pixels_) {
        for (int c = 0; c < 3; ++c) {
            float v = std::clamp(pixel[c], 0.0f, 1.0f);
            v = std::pow(v, inv_gamma);
            out.put(static_cast<char>(
                std::lround(v * 255.0f)));
        }
    }
    return static_cast<bool>(out);
}

} // namespace zatel::rt
