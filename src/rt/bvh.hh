/**
 * @file
 * Bounding volume hierarchy: the acceleration structure ray-tracing
 * hardware traverses (Section II-A of the paper).
 *
 * Built with a binned surface-area heuristic. The flat node array also
 * defines the simulated memory layout: node i lives at
 * AddressMap::bvhNodeAddress(i), so BVH traversal in the timed simulator
 * issues one memory fetch per visited node exactly like Vulkan-Sim's
 * RT unit.
 */

#ifndef ZATEL_RT_BVH_HH
#define ZATEL_RT_BVH_HH

#include <cstdint>
#include <vector>

#include "rt/aabb.hh"
#include "rt/triangle.hh"

namespace zatel::rt
{

/**
 * One BVH node.
 *
 * The node array is laid out depth-first, so an internal node's left child
 * is always the next node (index + 1) and rightChild stores the index of
 * the right child explicitly.
 * Leaf nodes: primCount > 0 and firstPrim indexes into primIndices().
 * An empty BVH is a single leaf with primCount == 0.
 */
struct BvhNode
{
    Aabb bounds;
    /** Internal: right-child index. Leaf: first reordered primitive slot. */
    uint32_t rightOrFirstPrim = 0;
    uint32_t primCount = 0;

    bool isLeaf() const { return primCount > 0; }
    uint32_t rightChild() const { return rightOrFirstPrim; }
    uint32_t firstPrim() const { return rightOrFirstPrim; }

    static uint32_t leftChildOf(uint32_t node_index) { return node_index + 1; }
};

/** Build-time statistics (exposed for tests and the micro bench). */
struct BvhBuildStats
{
    uint32_t nodeCount = 0;
    uint32_t leafCount = 0;
    uint32_t maxDepth = 0;
    uint32_t maxLeafSize = 0;
};

/**
 * Flat-array BVH over a triangle list.
 *
 * The triangle storage is shared with (not owned by) the Bvh; callers keep
 * the triangle vector alive for the Bvh's lifetime (the Scene does).
 */
/** Builder tuning knobs. */
struct BvhBuildParams
{
    uint32_t maxLeafSize = 4;
    uint32_t sahBins = 12;
    float traversalCost = 1.0f;
    float intersectionCost = 1.5f;
};

class Bvh
{
  public:
    /** Backwards-friendly alias; the params type lives at namespace scope. */
    using BuildParams = BvhBuildParams;

    Bvh() = default;

    /**
     * Build over @p triangles (kept by reference).
     * An empty triangle list produces a single empty leaf.
     */
    void build(const std::vector<Triangle> &triangles,
               const BuildParams &params = BvhBuildParams());

    bool valid() const { return !nodes_.empty(); }
    const std::vector<BvhNode> &nodes() const { return nodes_; }
    const BvhNode &node(uint32_t index) const { return nodes_[index]; }
    uint32_t nodeCount() const { return static_cast<uint32_t>(nodes_.size()); }

    /** Reordered triangle indices referenced by leaf nodes. */
    const std::vector<uint32_t> &primIndices() const { return primIndices_; }

    /** Triangle for reordered slot @p prim_slot of a leaf. */
    const Triangle &
    primitive(uint32_t prim_slot) const
    {
        return (*triangles_)[primIndices_[prim_slot]];
    }

    /** Original triangle index for reordered slot @p prim_slot. */
    uint32_t
    primitiveIndex(uint32_t prim_slot) const
    {
        return primIndices_[prim_slot];
    }

    const BvhBuildStats &buildStats() const { return stats_; }

    /** Root node bounds (empty box for an empty BVH). */
    Aabb rootBounds() const;

    static constexpr uint32_t kRootIndex = 0;

  private:
    struct BuildEntry;

    uint32_t buildRecursive(std::vector<uint32_t> &prims, uint32_t begin,
                            uint32_t end, uint32_t depth,
                            const std::vector<Aabb> &prim_bounds,
                            const std::vector<Vec3> &centroids,
                            const BuildParams &params);

    const std::vector<Triangle> *triangles_ = nullptr;
    std::vector<BvhNode> nodes_;
    std::vector<uint32_t> primIndices_;
    BvhBuildStats stats_;
};

} // namespace zatel::rt

#endif // ZATEL_RT_BVH_HH
