/**
 * @file
 * Functional (untimed) path tracer.
 *
 * This is the analogue of Vulkan-Sim's functional mode: it renders the
 * image and records per-pixel traversal work, which Zatel's preprocessing
 * step turns into the execution-time heatmap (paper Section III-B).
 */

#ifndef ZATEL_RT_TRACER_HH
#define ZATEL_RT_TRACER_HH

#include <cstdint>
#include <vector>

#include "rt/bvh.hh"
#include "rt/framebuffer.hh"
#include "rt/scene.hh"
#include "rt/traversal.hh"

namespace zatel::rt
{

/** Per-pixel work record produced by the functional tracer. */
struct PixelProfile
{
    /** BVH nodes fetched across all rays of this pixel. */
    uint32_t nodesVisited = 0;
    /** Ray-triangle tests across all rays. */
    uint32_t triangleTests = 0;
    /** Rays cast (primary + shadow + reflection, all samples). */
    uint32_t raysCast = 0;
    /** True when any primary sample hit geometry. */
    bool primaryHit = false;

    /**
     * Scalar execution-time proxy used to build the heatmap. Node fetches
     * dominate RT-unit time; triangle tests add a fractional share.
     */
    double
    cost() const
    {
        return nodesVisited + 0.5 * triangleTests;
    }
};

/** Whole-frame result of a functional render. */
struct RenderResult
{
    FrameBuffer image;
    /** Row-major per-pixel profiles (width x height). */
    std::vector<PixelProfile> profiles;
    uint32_t width = 0;
    uint32_t height = 0;

    const PixelProfile &
    profileAt(uint32_t x, uint32_t y) const
    {
        return profiles[static_cast<size_t>(y) * width + x];
    }
};

/**
 * Functional renderer. Stateless apart from configuration; safe to share
 * across threads when each thread renders distinct pixels.
 */
/** Functional-renderer tuning knobs. */
struct TracerParams
{
    /** Samples per pixel (paper uses 2 at 512x512). */
    uint32_t samplesPerPixel = 1;
    /** Light falloff strength (keeps images in range). */
    float distanceFalloff = 0.02f;
    /** Flat ambient term so unlit geometry stays visible. */
    float ambient = 0.06f;
};

class Tracer
{
  public:
    using Params = TracerParams;

    Tracer(const Scene &scene, const Bvh &bvh,
           const Params &params = TracerParams());

    /** Render the full image plane. */
    RenderResult render(uint32_t width, uint32_t height) const;

    /**
     * Trace one pixel (all its samples).
     * @param profile Out: accumulated work for this pixel.
     * @return average sample radiance.
     */
    Vec3 tracePixel(uint32_t x, uint32_t y, uint32_t width, uint32_t height,
                    PixelProfile &profile) const;

    const Scene &scene() const { return scene_; }
    const Bvh &bvh() const { return bvh_; }
    const Params &params() const { return params_; }

  private:
    /** Recursive radiance estimate for @p ray at depth @p bounce. */
    Vec3 shade(const Ray &ray, int bounce, PixelProfile &profile) const;

    const Scene &scene_;
    const Bvh &bvh_;
    Params params_;
};

} // namespace zatel::rt

#endif // ZATEL_RT_TRACER_HH
