/**
 * @file
 * Surface material model for the functional tracer.
 *
 * The shading model is intentionally small (lambert + perfect mirror +
 * emitter): what Zatel cares about is the per-pixel ray work each material
 * induces, not photometric fidelity.
 */

#ifndef ZATEL_RT_MATERIAL_HH
#define ZATEL_RT_MATERIAL_HH

#include <cstdint>

#include "rt/vec3.hh"

namespace zatel::rt
{

/** Shading behaviour selector. */
enum class MaterialType : uint8_t
{
    Diffuse,  ///< Lambertian surface lit by the scene light.
    Mirror,   ///< Perfect reflector: spawns a secondary reflection ray.
    Emissive, ///< Light-emitting surface; terminates the path.
};

/** Material record; indexed by Triangle::materialId. */
struct Material
{
    MaterialType type = MaterialType::Diffuse;
    /** Base color (diffuse albedo / mirror tint / emitted radiance). */
    Vec3 albedo{0.8f, 0.8f, 0.8f};
    /**
     * Fraction of energy sent down the reflection ray for Mirror
     * materials; 0 disables the secondary bounce entirely.
     */
    float reflectivity = 0.0f;

    static Material
    diffuse(const Vec3 &color)
    {
        return {MaterialType::Diffuse, color, 0.0f};
    }

    static Material
    mirror(const Vec3 &tint, float reflectivity = 0.9f)
    {
        return {MaterialType::Mirror, tint, reflectivity};
    }

    static Material
    emissive(const Vec3 &radiance)
    {
        return {MaterialType::Emissive, radiance, 0.0f};
    }
};

} // namespace zatel::rt

#endif // ZATEL_RT_MATERIAL_HH
