/**
 * @file
 * Procedural analogues of the LumiBench scenes the paper evaluates on
 * (Fig. 9). Each scene is engineered to reproduce the heat character the
 * paper describes, not the exact geometry (see DESIGN.md, Substitutions):
 *
 *  - PARK:  hardest path-traced scene; saturates the GPU (Section IV-B).
 *  - SPRNG: two objects only; most rays terminate early; under-utilizes
 *           the GPU and breaks linear extrapolation (Section IV-D).
 *  - BUNNY: dense object filling the view; uniformly warm (Table III).
 *  - SHIP:  coldest heatmap; sparse thin geometry over empty sky/sea.
 *  - WKND:  warm/cold mixture of many random spheres.
 *  - CHSNT: dense incoherent foliage clusters.
 *  - SPNZA: enclosed atrium; every ray hits; coherent and cheap.
 *  - BATH:  enclosed mirror-heavy room; the longest-running scene
 *           (Section IV-D, Fig. 14).
 */

#ifndef ZATEL_RT_SCENE_LIBRARY_HH
#define ZATEL_RT_SCENE_LIBRARY_HH

#include <string>
#include <vector>

#include "rt/scene.hh"

namespace zatel::rt
{

/** The LumiBench-analogue scene set. */
enum class SceneId
{
    Park,
    Sprng,
    Bunny,
    Chsnt,
    Spnza,
    Bath,
    Ship,
    Wknd,
};

/** Canonical upper-case name (as the paper spells them). */
const char *sceneName(SceneId id);

/**
 * Parse a scene name (case-insensitive).
 * Calls fatal() for unknown names.
 */
SceneId sceneIdFromName(const std::string &name);

/** All eight scenes in paper order. */
std::vector<SceneId> allScenes();

/**
 * The representative subset LumiBench outlines (used by Fig. 17): the
 * scenes that adequately stress the GPU when divided into groups.
 */
std::vector<SceneId> representativeSubset();

/**
 * Scene-complexity knob for scene generation: scales soup/instance counts
 * so tests can run tiny scenes and benches medium ones.
 */
struct SceneDetail
{
    /** Multiplier on procedural element counts (1.0 = bench default). */
    float density = 1.0f;
};

/**
 * Build a scene by id.
 * @param seed Seed for the procedural generators (deterministic default).
 */
Scene buildScene(SceneId id, const SceneDetail &detail = {},
                 uint64_t seed = 0xC0FFEE);

} // namespace zatel::rt

#endif // ZATEL_RT_SCENE_LIBRARY_HH
