#include "rt/camera.hh"

#include <cmath>

namespace zatel::rt
{

Camera::Camera(const Vec3 &position, const Vec3 &look_at, const Vec3 &up,
               float vertical_fov_deg)
    : position_(position)
{
    forward_ = normalize(look_at - position);
    right_ = normalize(cross(forward_, up));
    up_ = cross(right_, forward_);
    tanHalfFov_ =
        std::tan(vertical_fov_deg * static_cast<float>(M_PI) / 360.0f);
}

Ray
Camera::generateRay(uint32_t x, uint32_t y, uint32_t width, uint32_t height,
                    float jitter_x, float jitter_y) const
{
    float aspect = static_cast<float>(width) / static_cast<float>(height);
    // NDC in [-1, 1] with +y up; pixel (0,0) is the top-left corner.
    float ndc_x = (2.0f * (x + jitter_x) / width - 1.0f) * aspect;
    float ndc_y = 1.0f - 2.0f * (y + jitter_y) / height;

    Ray ray;
    ray.origin = position_;
    ray.direction = normalize(forward_ + right_ * (ndc_x * tanHalfFov_) +
                              up_ * (ndc_y * tanHalfFov_));
    return ray;
}

} // namespace zatel::rt
