/**
 * @file
 * Minimal 3-component vector used throughout the ray-tracing substrate.
 */

#ifndef ZATEL_RT_VEC3_HH
#define ZATEL_RT_VEC3_HH

#include <cmath>

namespace zatel::rt
{

/** Three-component float vector (positions, directions, colors). */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xv, float yv, float zv) : x(xv), y(yv), z(zv) {}
    constexpr explicit Vec3(float s) : x(s), y(s), z(s) {}

    constexpr Vec3
    operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }

    constexpr Vec3
    operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }

    constexpr Vec3
    operator*(const Vec3 &o) const
    {
        return {x * o.x, y * o.y, z * o.z};
    }

    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }

    constexpr Vec3
    operator/(float s) const
    {
        return {x / s, y / s, z / s};
    }

    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    Vec3 &
    operator*=(float s)
    {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }

    constexpr bool
    operator==(const Vec3 &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }

    constexpr float
    operator[](int i) const
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    float &
    operator[](int i)
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }
};

constexpr Vec3
operator*(float s, const Vec3 &v)
{
    return v * s;
}

constexpr float
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y,
            a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

inline float
length(const Vec3 &v)
{
    return std::sqrt(dot(v, v));
}

constexpr float
lengthSquared(const Vec3 &v)
{
    return dot(v, v);
}

inline Vec3
normalize(const Vec3 &v)
{
    float len = length(v);
    if (len <= 0.0f)
        return {0.0f, 0.0f, 0.0f};
    return v / len;
}

constexpr Vec3
minVec(const Vec3 &a, const Vec3 &b)
{
    return {a.x < b.x ? a.x : b.x,
            a.y < b.y ? a.y : b.y,
            a.z < b.z ? a.z : b.z};
}

constexpr Vec3
maxVec(const Vec3 &a, const Vec3 &b)
{
    return {a.x > b.x ? a.x : b.x,
            a.y > b.y ? a.y : b.y,
            a.z > b.z ? a.z : b.z};
}

/** Mirror @p v about unit normal @p n. */
constexpr Vec3
reflect(const Vec3 &v, const Vec3 &n)
{
    return v - n * (2.0f * dot(v, n));
}

constexpr Vec3
lerp(const Vec3 &a, const Vec3 &b, float t)
{
    return a * (1.0f - t) + b * t;
}

} // namespace zatel::rt

#endif // ZATEL_RT_VEC3_HH
