#include "rt/tracer.hh"

#include <algorithm>
#include <cmath>

#include "rt/ray_record.hh"
#include "util/logging.hh"

namespace zatel::rt
{

namespace
{

/** Deterministic per-sample jitter from a pixel/sample hash. */
float
hashJitter(uint32_t x, uint32_t y, uint32_t sample, uint32_t salt)
{
    uint32_t h = x * 0x9E3779B1u ^ y * 0x85EBCA77u ^ sample * 0xC2B2AE3Du ^
                 salt * 0x27D4EB2Fu;
    h ^= h >> 15;
    h *= 0x2C1B3C6Du;
    h ^= h >> 12;
    h *= 0x297A2D39u;
    h ^= h >> 15;
    return (h & 0xFFFFFFu) / static_cast<float>(0x1000000u);
}

/**
 * Wavefront shading engine shared by the render and record paths.
 *
 * Up to RayPacket::kWidth pixels run side by side; every round gathers
 * each live pixel's next ray (closest-hit or shadow, mixed freely) into
 * one RayPacket, traces the packet in lockstep, then advances each
 * pixel's shading state machine. The shading control flow — one shadow
 * ray per lit hit, one reflection ray per mirror hit — is the single
 * source of truth that Tracer::shade() and the scalar recordShade()
 * used to duplicate; both modes now share it, selected per pixel by
 * which output sinks are non-null.
 *
 * Reflection chains are linear (one reflection per shade level), so
 * the recursive radiance sum is folded deepest-first on completion:
 *   c = terminal; for k = K-1 .. 0: c = local_k + (c * albedo_k) * refl_k
 * which performs exactly the float operations of the recursion, in the
 * same order, keeping packetized output bit-identical to the scalar
 * reference paths (tests/test_tracer.cc holds the differentials).
 */
class WavefrontEngine
{
  public:
    /** One pixel's identity and output sinks. Null sinks are skipped:
     *  render mode sets color+profile, record mode sets tasks. */
    struct Pixel
    {
        uint32_t x = 0;
        uint32_t y = 0;
        Vec3 *color = nullptr;
        PixelProfile *profile = nullptr;
        PixelRayRecord *tasks = nullptr;
    };

    explicit WavefrontEngine(const Tracer &tracer)
        : scene_(tracer.scene()), bvh_(&tracer.bvh()),
          params_(tracer.params())
    {
    }

    /** Run @p count pixels (<= RayPacket::kWidth) to completion. */
    void
    run(const Pixel *pixels, uint32_t count, uint32_t width, uint32_t height)
    {
        ZATEL_ASSERT(count <= RayPacket::kWidth,
                     "wavefront batch exceeds the packet width");
        width_ = width;
        height_ = height;
        for (uint32_t i = 0; i < count; ++i) {
            Lane &lane = lanes_[i];
            lane.px = pixels[i];
            lane.sample = 0;
            lane.acc = Vec3(0.0f);
            lane.chain.clear();
            lane.done = false;
            if (lane.px.tasks)
                lane.px.tasks->rays.clear();
            startSample(lane);
        }
        uint32_t slotLane[RayPacket::kWidth];
        for (;;) {
            packet_.reset();
            uint32_t slots = 0;
            for (uint32_t i = 0; i < count; ++i) {
                Lane &lane = lanes_[i];
                if (lane.done)
                    continue;
                packet_.add(bvh_, lane.pending,
                            lane.shadowPhase ? TraversalMode::AnyHit
                                             : TraversalMode::ClosestHit);
                slotLane[slots++] = i;
            }
            if (slots == 0)
                return;
            packet_.trace();
            for (uint32_t s = 0; s < slots; ++s)
                consume(lanes_[slotLane[s]], s);
        }
    }

  private:
    /** One shade level that reflected: folded deepest-first at the end. */
    struct ChainLevel
    {
        Vec3 local;
        Vec3 albedo;
        float reflectivity = 0.0f;
    };

    struct Lane
    {
        Pixel px;
        uint32_t sample = 0;
        uint8_t bounce = 0;
        bool shadowPhase = false;
        bool done = true;
        /** The ray the next packet round traces for this lane. */
        Ray pending;
        /** Direction of the level's closest-hit ray (reflect() input). */
        Vec3 inDir;
        HitRecord hit;
        const Material *material = nullptr;
        Vec3 lightDir;
        float lightDist = 0.0f;
        std::vector<ChainLevel> chain;
        Vec3 acc{0.0f};
    };

    void
    startSample(Lane &lane)
    {
        uint32_t spp = params_.samplesPerPixel;
        float jx = spp == 1 ? 0.5f
                            : hashJitter(lane.px.x, lane.px.y, lane.sample,
                                         0x11u);
        float jy = spp == 1 ? 0.5f
                            : hashJitter(lane.px.x, lane.px.y, lane.sample,
                                         0x23u);
        lane.pending = scene_.camera().generateRay(lane.px.x, lane.px.y,
                                                   width_, height_, jx, jy);
        lane.bounce = 0;
        lane.shadowPhase = false;
    }

    /** Fold the reflection chain onto @p terminal and close the sample. */
    void
    finishSample(Lane &lane, const Vec3 &terminal)
    {
        if (lane.px.color) {
            Vec3 c = terminal;
            for (size_t k = lane.chain.size(); k-- > 0;) {
                const ChainLevel &level = lane.chain[k];
                c = level.local + (c * level.albedo) * level.reflectivity;
            }
            lane.acc += c;
        }
        lane.chain.clear();
        ++lane.sample;
        if (lane.sample < params_.samplesPerPixel) {
            startSample(lane);
            return;
        }
        if (lane.px.color) {
            *lane.px.color =
                lane.acc / static_cast<float>(params_.samplesPerPixel);
        }
        lane.done = true;
    }

    /** Advance @p lane past the traversal that ran in packet slot @p s. */
    void
    consume(Lane &lane, uint32_t slot)
    {
        PixelProfile *profile = lane.px.profile;
        PixelRayRecord *out = lane.px.tasks;
        if (profile) {
            ++profile->raysCast;
            profile->nodesVisited += packet_.nodesVisited(slot);
            profile->triangleTests += packet_.triangleTests(slot);
        }

        if (!lane.shadowPhase) {
            const HitRecord &hit = packet_.hit(slot);
            if (out) {
                RayTask task;
                task.ray = lane.pending;
                task.mode = TraversalMode::ClosestHit;
                task.bounce = lane.bounce;
                task.hit = hit.valid();
                if (hit.valid())
                    task.materialId = hit.materialId;
                out->rays.push_back(task);
            }
            if (!hit.valid()) {
                finishSample(lane, scene_.background());
                return;
            }
            if (lane.bounce == 0 && profile)
                profile->primaryHit = true;

            const Material &mat = scene_.material(hit.materialId);
            if (mat.type == MaterialType::Emissive) {
                finishSample(lane, mat.albedo);
                return;
            }

            const PointLight &light = scene_.light();
            Vec3 to_light = light.position - hit.position;
            float dist = length(to_light);
            Vec3 light_dir =
                dist > 0.0f ? to_light / dist : Vec3{0.0f, 1.0f, 0.0f};

            lane.hit = hit;
            lane.material = &mat;
            lane.lightDir = light_dir;
            lane.lightDist = dist;
            lane.inDir = lane.pending.direction;

            Ray shadow_ray;
            shadow_ray.origin = hit.position + hit.normal * 1e-3f;
            shadow_ray.direction = light_dir;
            shadow_ray.tMax = dist - 1e-3f;
            lane.pending = shadow_ray;
            lane.shadowPhase = true;
            return;
        }

        // Shadow phase: the level's lighting is now decidable.
        bool occluded = packet_.hasHit(slot);
        if (out) {
            RayTask task;
            task.ray = lane.pending;
            task.mode = TraversalMode::AnyHit;
            task.bounce = lane.bounce;
            task.hit = occluded;
            out->rays.push_back(task);
        }
        lane.shadowPhase = false;

        const Material &mat = *lane.material;
        Vec3 color;
        if (lane.px.color) {
            color = mat.albedo * params_.ambient;
            if (!occluded) {
                float ndotl = std::max(0.0f, dot(lane.hit.normal,
                                                 lane.lightDir));
                float falloff =
                    1.0f / (1.0f + params_.distanceFalloff * lane.lightDist *
                                       lane.lightDist);
                color += mat.albedo * scene_.light().intensity *
                         (ndotl * falloff);
            }
        }

        if (mat.type == MaterialType::Mirror && mat.reflectivity > 0.0f &&
            lane.bounce < scene_.maxBounces()) {
            if (lane.px.color)
                lane.chain.push_back({color, mat.albedo, mat.reflectivity});
            Ray refl;
            refl.origin = lane.hit.position + lane.hit.normal * 1e-3f;
            refl.direction = normalize(reflect(lane.inDir, lane.hit.normal));
            lane.pending = refl;
            ++lane.bounce;
            return;
        }
        finishSample(lane, color);
    }

    const Scene &scene_;
    const Bvh *bvh_ = nullptr;
    TracerParams params_;
    uint32_t width_ = 0;
    uint32_t height_ = 0;
    Lane lanes_[RayPacket::kWidth];
    RayPacket packet_;
};

} // namespace

Tracer::Tracer(const Scene &scene, const Bvh &bvh, const Params &params)
    : scene_(scene), bvh_(bvh), params_(params)
{
    ZATEL_ASSERT(params_.samplesPerPixel >= 1, "need at least 1 sample");
}

RenderResult
Tracer::render(uint32_t width, uint32_t height) const
{
    RenderResult result;
    result.width = width;
    result.height = height;
    result.image = FrameBuffer(width, height);
    result.profiles.resize(static_cast<size_t>(width) * height);

    // Packetized wavefront over row-major batches; per pixel the output
    // is bit-identical to the scalar tracePixel() reference path.
    WavefrontEngine engine(*this);
    WavefrontEngine::Pixel batch[RayPacket::kWidth];
    Vec3 colors[RayPacket::kWidth];
    uint32_t filled = 0;
    auto flush = [&]() {
        if (filled == 0)
            return;
        engine.run(batch, filled, width, height);
        for (uint32_t i = 0; i < filled; ++i)
            result.image.set(batch[i].x, batch[i].y, colors[i]);
        filled = 0;
    };
    for (uint32_t y = 0; y < height; ++y) {
        for (uint32_t x = 0; x < width; ++x) {
            WavefrontEngine::Pixel &px = batch[filled];
            px.x = x;
            px.y = y;
            px.color = &colors[filled];
            px.profile =
                &result.profiles[static_cast<size_t>(y) * width + x];
            px.tasks = nullptr;
            if (++filled == RayPacket::kWidth)
                flush();
        }
    }
    flush();
    return result;
}

Vec3
Tracer::tracePixel(uint32_t x, uint32_t y, uint32_t width, uint32_t height,
                   PixelProfile &profile) const
{
    Vec3 acc(0.0f);
    for (uint32_t s = 0; s < params_.samplesPerPixel; ++s) {
        float jx = params_.samplesPerPixel == 1 ? 0.5f
                                                : hashJitter(x, y, s, 0x11u);
        float jy = params_.samplesPerPixel == 1 ? 0.5f
                                                : hashJitter(x, y, s, 0x23u);
        Ray ray = scene_.camera().generateRay(x, y, width, height, jx, jy);
        acc += shade(ray, 0, profile);
    }
    return acc / static_cast<float>(params_.samplesPerPixel);
}

Vec3
Tracer::shade(const Ray &ray, int bounce, PixelProfile &profile) const
{
    TraversalCounters counters;
    ++profile.raysCast;
    HitRecord hit = closestHit(bvh_, ray, &counters);
    profile.nodesVisited += counters.nodesVisited;
    profile.triangleTests += counters.triangleTests;

    if (!hit.valid())
        return scene_.background();
    if (bounce == 0)
        profile.primaryHit = true;

    const Material &mat = scene_.material(hit.materialId);
    if (mat.type == MaterialType::Emissive)
        return mat.albedo;

    // Direct lighting: one shadow ray toward the scene light.
    const PointLight &light = scene_.light();
    Vec3 to_light = light.position - hit.position;
    float dist = length(to_light);
    Vec3 light_dir = dist > 0.0f ? to_light / dist : Vec3{0.0f, 1.0f, 0.0f};

    Ray shadow_ray;
    shadow_ray.origin = hit.position + hit.normal * 1e-3f;
    shadow_ray.direction = light_dir;
    shadow_ray.tMax = dist - 1e-3f;

    TraversalCounters shadow_counters;
    ++profile.raysCast;
    bool occluded = anyHit(bvh_, shadow_ray, &shadow_counters);
    profile.nodesVisited += shadow_counters.nodesVisited;
    profile.triangleTests += shadow_counters.triangleTests;

    Vec3 color = mat.albedo * params_.ambient;
    if (!occluded) {
        float ndotl = std::max(0.0f, dot(hit.normal, light_dir));
        float falloff = 1.0f / (1.0f + params_.distanceFalloff * dist * dist);
        color += mat.albedo * light.intensity * (ndotl * falloff);
    }

    if (mat.type == MaterialType::Mirror && mat.reflectivity > 0.0f &&
        bounce < scene_.maxBounces()) {
        Ray refl;
        refl.origin = hit.position + hit.normal * 1e-3f;
        refl.direction = normalize(reflect(ray.direction, hit.normal));
        Vec3 bounced = shade(refl, bounce + 1, profile);
        color += bounced * mat.albedo * mat.reflectivity;
    }
    return color;
}

namespace
{

/**
 * Mirror of Tracer::shade() that records rays instead of shading.
 * Any change to the shading control flow must be applied to both.
 */
void
recordShade(const Tracer &tracer, const Ray &ray, int bounce,
            PixelRayRecord &record)
{
    const Scene &scene = tracer.scene();
    const Bvh &bvh = tracer.bvh();

    RayTask primary;
    primary.ray = ray;
    primary.mode = TraversalMode::ClosestHit;
    primary.bounce = static_cast<uint8_t>(bounce);

    HitRecord hit = closestHit(bvh, ray);
    primary.hit = hit.valid();
    if (hit.valid())
        primary.materialId = hit.materialId;
    record.rays.push_back(primary);

    if (!hit.valid())
        return;

    const Material &mat = scene.material(hit.materialId);
    if (mat.type == MaterialType::Emissive)
        return;

    const PointLight &light = scene.light();
    Vec3 to_light = light.position - hit.position;
    float dist = length(to_light);
    Vec3 light_dir = dist > 0.0f ? to_light / dist : Vec3{0.0f, 1.0f, 0.0f};

    RayTask shadow;
    shadow.ray.origin = hit.position + hit.normal * 1e-3f;
    shadow.ray.direction = light_dir;
    shadow.ray.tMax = dist - 1e-3f;
    shadow.mode = TraversalMode::AnyHit;
    shadow.bounce = static_cast<uint8_t>(bounce);
    shadow.hit = anyHit(bvh, shadow.ray);
    record.rays.push_back(shadow);

    if (mat.type == MaterialType::Mirror && mat.reflectivity > 0.0f &&
        bounce < scene.maxBounces()) {
        Ray refl;
        refl.origin = hit.position + hit.normal * 1e-3f;
        refl.direction = normalize(reflect(ray.direction, hit.normal));
        recordShade(tracer, refl, bounce + 1, record);
    }
}

} // namespace

PixelRayRecord
recordPixelRays(const Tracer &tracer, uint32_t x, uint32_t y, uint32_t width,
                uint32_t height)
{
    PixelRayRecord record;
    uint32_t spp = tracer.params().samplesPerPixel;
    for (uint32_t s = 0; s < spp; ++s) {
        float jx = spp == 1 ? 0.5f : hashJitter(x, y, s, 0x11u);
        float jy = spp == 1 ? 0.5f : hashJitter(x, y, s, 0x23u);
        Ray ray =
            tracer.scene().camera().generateRay(x, y, width, height, jx, jy);
        recordShade(tracer, ray, 0, record);
    }
    return record;
}

void
recordPixelRaysBatch(
    const Tracer &tracer, const uint32_t *xs, const uint32_t *ys,
    uint32_t count, uint32_t width, uint32_t height,
    const std::function<void(uint32_t index, const PixelRayRecord &record)>
        &sink)
{
    // One engine for the whole batch: the per-pixel record scratch (and
    // its vector capacity) is reused across packet rounds.
    WavefrontEngine engine(tracer);
    WavefrontEngine::Pixel batch[RayPacket::kWidth];
    PixelRayRecord records[RayPacket::kWidth];
    uint32_t done = 0;
    while (done < count) {
        uint32_t n = std::min(RayPacket::kWidth, count - done);
        for (uint32_t i = 0; i < n; ++i) {
            WavefrontEngine::Pixel &px = batch[i];
            px.x = xs[done + i];
            px.y = ys[done + i];
            px.color = nullptr;
            px.profile = nullptr;
            px.tasks = &records[i];
        }
        engine.run(batch, n, width, height);
        for (uint32_t i = 0; i < n; ++i)
            sink(done + i, records[i]);
        done += n;
    }
}

} // namespace zatel::rt
