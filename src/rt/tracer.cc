#include "rt/tracer.hh"

#include <algorithm>
#include <cmath>

#include "rt/ray_record.hh"
#include "util/logging.hh"

namespace zatel::rt
{

namespace
{

/** Deterministic per-sample jitter from a pixel/sample hash. */
float
hashJitter(uint32_t x, uint32_t y, uint32_t sample, uint32_t salt)
{
    uint32_t h = x * 0x9E3779B1u ^ y * 0x85EBCA77u ^ sample * 0xC2B2AE3Du ^
                 salt * 0x27D4EB2Fu;
    h ^= h >> 15;
    h *= 0x2C1B3C6Du;
    h ^= h >> 12;
    h *= 0x297A2D39u;
    h ^= h >> 15;
    return (h & 0xFFFFFFu) / static_cast<float>(0x1000000u);
}

} // namespace

Tracer::Tracer(const Scene &scene, const Bvh &bvh, const Params &params)
    : scene_(scene), bvh_(bvh), params_(params)
{
    ZATEL_ASSERT(params_.samplesPerPixel >= 1, "need at least 1 sample");
}

RenderResult
Tracer::render(uint32_t width, uint32_t height) const
{
    RenderResult result;
    result.width = width;
    result.height = height;
    result.image = FrameBuffer(width, height);
    result.profiles.resize(static_cast<size_t>(width) * height);

    for (uint32_t y = 0; y < height; ++y) {
        for (uint32_t x = 0; x < width; ++x) {
            PixelProfile &profile =
                result.profiles[static_cast<size_t>(y) * width + x];
            Vec3 color = tracePixel(x, y, width, height, profile);
            result.image.set(x, y, color);
        }
    }
    return result;
}

Vec3
Tracer::tracePixel(uint32_t x, uint32_t y, uint32_t width, uint32_t height,
                   PixelProfile &profile) const
{
    Vec3 acc(0.0f);
    for (uint32_t s = 0; s < params_.samplesPerPixel; ++s) {
        float jx = params_.samplesPerPixel == 1 ? 0.5f
                                                : hashJitter(x, y, s, 0x11u);
        float jy = params_.samplesPerPixel == 1 ? 0.5f
                                                : hashJitter(x, y, s, 0x23u);
        Ray ray = scene_.camera().generateRay(x, y, width, height, jx, jy);
        acc += shade(ray, 0, profile);
    }
    return acc / static_cast<float>(params_.samplesPerPixel);
}

Vec3
Tracer::shade(const Ray &ray, int bounce, PixelProfile &profile) const
{
    TraversalCounters counters;
    ++profile.raysCast;
    HitRecord hit = closestHit(bvh_, ray, &counters);
    profile.nodesVisited += counters.nodesVisited;
    profile.triangleTests += counters.triangleTests;

    if (!hit.valid())
        return scene_.background();
    if (bounce == 0)
        profile.primaryHit = true;

    const Material &mat = scene_.material(hit.materialId);
    if (mat.type == MaterialType::Emissive)
        return mat.albedo;

    // Direct lighting: one shadow ray toward the scene light.
    const PointLight &light = scene_.light();
    Vec3 to_light = light.position - hit.position;
    float dist = length(to_light);
    Vec3 light_dir = dist > 0.0f ? to_light / dist : Vec3{0.0f, 1.0f, 0.0f};

    Ray shadow_ray;
    shadow_ray.origin = hit.position + hit.normal * 1e-3f;
    shadow_ray.direction = light_dir;
    shadow_ray.tMax = dist - 1e-3f;

    TraversalCounters shadow_counters;
    ++profile.raysCast;
    bool occluded = anyHit(bvh_, shadow_ray, &shadow_counters);
    profile.nodesVisited += shadow_counters.nodesVisited;
    profile.triangleTests += shadow_counters.triangleTests;

    Vec3 color = mat.albedo * params_.ambient;
    if (!occluded) {
        float ndotl = std::max(0.0f, dot(hit.normal, light_dir));
        float falloff = 1.0f / (1.0f + params_.distanceFalloff * dist * dist);
        color += mat.albedo * light.intensity * (ndotl * falloff);
    }

    if (mat.type == MaterialType::Mirror && mat.reflectivity > 0.0f &&
        bounce < scene_.maxBounces()) {
        Ray refl;
        refl.origin = hit.position + hit.normal * 1e-3f;
        refl.direction = normalize(reflect(ray.direction, hit.normal));
        Vec3 bounced = shade(refl, bounce + 1, profile);
        color += bounced * mat.albedo * mat.reflectivity;
    }
    return color;
}

namespace
{

/**
 * Mirror of Tracer::shade() that records rays instead of shading.
 * Any change to the shading control flow must be applied to both.
 */
void
recordShade(const Tracer &tracer, const Ray &ray, int bounce,
            PixelRayRecord &record)
{
    const Scene &scene = tracer.scene();
    const Bvh &bvh = tracer.bvh();

    RayTask primary;
    primary.ray = ray;
    primary.mode = TraversalMode::ClosestHit;
    primary.bounce = static_cast<uint8_t>(bounce);

    HitRecord hit = closestHit(bvh, ray);
    primary.hit = hit.valid();
    if (hit.valid())
        primary.materialId = hit.materialId;
    record.rays.push_back(primary);

    if (!hit.valid())
        return;

    const Material &mat = scene.material(hit.materialId);
    if (mat.type == MaterialType::Emissive)
        return;

    const PointLight &light = scene.light();
    Vec3 to_light = light.position - hit.position;
    float dist = length(to_light);
    Vec3 light_dir = dist > 0.0f ? to_light / dist : Vec3{0.0f, 1.0f, 0.0f};

    RayTask shadow;
    shadow.ray.origin = hit.position + hit.normal * 1e-3f;
    shadow.ray.direction = light_dir;
    shadow.ray.tMax = dist - 1e-3f;
    shadow.mode = TraversalMode::AnyHit;
    shadow.bounce = static_cast<uint8_t>(bounce);
    shadow.hit = anyHit(bvh, shadow.ray);
    record.rays.push_back(shadow);

    if (mat.type == MaterialType::Mirror && mat.reflectivity > 0.0f &&
        bounce < scene.maxBounces()) {
        Ray refl;
        refl.origin = hit.position + hit.normal * 1e-3f;
        refl.direction = normalize(reflect(ray.direction, hit.normal));
        recordShade(tracer, refl, bounce + 1, record);
    }
}

} // namespace

PixelRayRecord
recordPixelRays(const Tracer &tracer, uint32_t x, uint32_t y, uint32_t width,
                uint32_t height)
{
    PixelRayRecord record;
    uint32_t spp = tracer.params().samplesPerPixel;
    for (uint32_t s = 0; s < spp; ++s) {
        float jx = spp == 1 ? 0.5f : hashJitter(x, y, s, 0x11u);
        float jy = spp == 1 ? 0.5f : hashJitter(x, y, s, 0x23u);
        Ray ray =
            tracer.scene().camera().generateRay(x, y, width, height, jx, jy);
        recordShade(tracer, ray, 0, record);
    }
    return record;
}

} // namespace zatel::rt
