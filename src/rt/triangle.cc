#include "rt/triangle.hh"

#include <cmath>

namespace zatel::rt
{

Aabb
Triangle::bounds() const
{
    Aabb box;
    box.expand(v0);
    box.expand(v1);
    box.expand(v2);
    return box;
}

bool
Triangle::intersect(const Ray &ray, float &t_out) const
{
    constexpr float kEpsilon = 1e-8f;

    Vec3 edge1 = v1 - v0;
    Vec3 edge2 = v2 - v0;
    Vec3 pvec = cross(ray.direction, edge2);
    float det = dot(edge1, pvec);
    if (std::fabs(det) < kEpsilon)
        return false;

    float inv_det = 1.0f / det;
    Vec3 tvec = ray.origin - v0;
    float u = dot(tvec, pvec) * inv_det;
    if (u < 0.0f || u > 1.0f)
        return false;

    Vec3 qvec = cross(tvec, edge1);
    float v = dot(ray.direction, qvec) * inv_det;
    if (v < 0.0f || u + v > 1.0f)
        return false;

    float t = dot(edge2, qvec) * inv_det;
    if (t < ray.tMin || t > ray.tMax)
        return false;

    t_out = t;
    return true;
}

} // namespace zatel::rt
