/**
 * @file
 * Stack-based BVH traversal.
 *
 * TraversalStepper exposes traversal one node-visit at a time so the timed
 * RT unit (src/gpusim/rt_unit.*) can charge a memory fetch per visited node
 * exactly where the functional tracer visits it. The convenience functions
 * closestHit()/anyHit() run the stepper to completion for functional use;
 * because both paths share the stepper, the timed and functional simulators
 * agree on the work per ray by construction.
 */

#ifndef ZATEL_RT_TRAVERSAL_HH
#define ZATEL_RT_TRAVERSAL_HH

#include <cstdint>

#include "rt/bvh.hh"
#include "rt/ray.hh"

namespace zatel::rt
{

/** Closest-hit (radiance) vs any-hit (shadow/occlusion) query. */
enum class TraversalMode : uint8_t
{
    ClosestHit,
    AnyHit,
};

/** What one step() call did; consumed by the timed RT unit. */
struct StepInfo
{
    /** Node index that was just visited (fetched + tested). */
    uint32_t nodeIndex = 0;
    /** True when the node was a leaf. */
    bool wasLeaf = false;
    /** True when the ray hit the node's bounds. */
    bool boundsHit = false;
    /** Triangles tested inside the leaf (0 for internal nodes). */
    uint32_t triangleTests = 0;
    /** First reordered primitive slot of the leaf (for memory modeling). */
    uint32_t firstPrimSlot = 0;
};

/**
 * Incremental BVH traversal for a single ray.
 *
 * Usage: init(), then while (!finished()) { addr = pendingNode();
 * <charge a fetch of addr>; step(); }. hit() is valid once finished().
 */
class TraversalStepper
{
  public:
    TraversalStepper() = default;

    /** Start traversal of @p ray over @p bvh. Resets all counters. */
    void init(const Bvh *bvh, const Ray &ray, TraversalMode mode);

    /** True when no nodes remain to visit (or an any-hit hit was found). */
    bool finished() const { return stackSize_ == 0; }

    /**
     * Node whose data the next step() consumes.
     * @pre !finished()
     */
    uint32_t pendingNode() const { return stack_[stackSize_ - 1]; }

    /**
     * Visit the pending node: test bounds, descend or intersect leaf
     * triangles, and update the stack.
     * @pre !finished()
     */
    StepInfo step();

    /** Best hit so far; final once finished(). */
    const HitRecord &hit() const { return hit_; }

    /** True when an intersection has been recorded. */
    bool hasHit() const { return hit_.valid(); }

    /** Total nodes visited (== memory fetches charged). */
    uint32_t nodesVisited() const { return nodesVisited_; }

    /** Total ray-triangle tests performed. */
    uint32_t triangleTests() const { return triangleTests_; }

    const Ray &ray() const { return ray_; }
    TraversalMode mode() const { return mode_; }

    /** Deep enough for any tree the builder emits (depth cap is 64). */
    static constexpr uint32_t kMaxStackDepth = 96;

  private:
    const Bvh *bvh_ = nullptr;
    Ray ray_;
    Vec3 invDir_;
    TraversalMode mode_ = TraversalMode::ClosestHit;
    HitRecord hit_;
    uint32_t stack_[kMaxStackDepth];
    uint32_t stackSize_ = 0;
    uint32_t nodesVisited_ = 0;
    uint32_t triangleTests_ = 0;
};

/**
 * Lockstep packet of up to kWidth independent rays.
 *
 * Functional batching for SIMD-friendly traversal: every lane owns a
 * TraversalStepper and trace() interleaves one step() per still-active
 * lane per round under a 32-bit active mask, so up to kWidth
 * independent node fetches and slab tests are in flight at once
 * instead of one ray's serial dependency chain. Each lane executes
 * exactly the step sequence the scalar closestHit()/anyHit() helpers
 * would — per-ray results are byte-identical by construction
 * (docs/SIMULATOR.md, "Data layout of the hot path").
 *
 * Lanes may mix ClosestHit and AnyHit queries freely; an any-hit lane
 * drops out of the mask as soon as its traversal terminates.
 */
class RayPacket
{
  public:
    /** One lane per bit of the active mask. */
    static constexpr uint32_t kWidth = 32;

    /** Drop all lanes (steppers are reused in place by the next add). */
    void reset() { count_ = 0; }

    uint32_t size() const { return count_; }
    bool full() const { return count_ == kWidth; }

    /**
     * Add a ray to the packet.
     * @return the lane index the results are read back from.
     * @pre !full()
     */
    uint32_t add(const Bvh *bvh, const Ray &ray, TraversalMode mode);

    /** Run every lane to completion in lockstep. */
    void trace();

    /** Per-lane results; valid once trace() returned. */
    const HitRecord &hit(uint32_t lane) const { return lanes_[lane].hit(); }
    bool hasHit(uint32_t lane) const { return lanes_[lane].hasHit(); }
    uint32_t nodesVisited(uint32_t lane) const
    {
        return lanes_[lane].nodesVisited();
    }
    uint32_t triangleTests(uint32_t lane) const
    {
        return lanes_[lane].triangleTests();
    }

  private:
    TraversalStepper lanes_[kWidth];
    uint32_t count_ = 0;
};

/** Aggregate work counters for a completed functional query. */
struct TraversalCounters
{
    uint32_t nodesVisited = 0;
    uint32_t triangleTests = 0;

    TraversalCounters &
    operator+=(const TraversalCounters &o)
    {
        nodesVisited += o.nodesVisited;
        triangleTests += o.triangleTests;
        return *this;
    }
};

/**
 * Run a closest-hit query to completion.
 * @param counters Optional out-param accumulating traversal work.
 */
HitRecord closestHit(const Bvh &bvh, const Ray &ray,
                     TraversalCounters *counters = nullptr);

/**
 * Run an any-hit (occlusion) query to completion.
 * @return true when any intersection exists in [tMin, tMax].
 */
bool anyHit(const Bvh &bvh, const Ray &ray,
            TraversalCounters *counters = nullptr);

} // namespace zatel::rt

#endif // ZATEL_RT_TRAVERSAL_HH
