#include "rt/aabb.hh"

#include <algorithm>

namespace zatel::rt
{

float
Aabb::surfaceArea() const
{
    if (empty())
        return 0.0f;
    Vec3 e = extent();
    return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
}

int
Aabb::longestAxis() const
{
    Vec3 e = extent();
    if (e.x >= e.y && e.x >= e.z)
        return 0;
    return e.y >= e.z ? 1 : 2;
}

bool
Aabb::contains(const Vec3 &point) const
{
    return point.x >= lo.x && point.x <= hi.x && point.y >= lo.y &&
           point.y <= hi.y && point.z >= lo.z && point.z <= hi.z;
}

bool
Aabb::overlaps(const Aabb &other) const
{
    if (empty() || other.empty())
        return false;
    return lo.x <= other.hi.x && hi.x >= other.lo.x && lo.y <= other.hi.y &&
           hi.y >= other.lo.y && lo.z <= other.hi.z && hi.z >= other.lo.z;
}

bool
Aabb::intersect(const Ray &ray, const Vec3 &inv_dir, float &t_hit) const
{
    float t0 = ray.tMin;
    float t1 = ray.tMax;
    for (int axis = 0; axis < 3; ++axis) {
        float near = (lo[axis] - ray.origin[axis]) * inv_dir[axis];
        float far = (hi[axis] - ray.origin[axis]) * inv_dir[axis];
        if (near > far)
            std::swap(near, far);
        t0 = std::max(t0, near);
        t1 = std::min(t1, far);
        if (t0 > t1)
            return false;
    }
    t_hit = t0;
    return true;
}

} // namespace zatel::rt
