#include "rt/bvh.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/logging.hh"

namespace zatel::rt
{

void
Bvh::build(const std::vector<Triangle> &triangles, const BuildParams &params)
{
    triangles_ = &triangles;
    nodes_.clear();
    primIndices_.clear();
    stats_ = {};

    uint32_t n = static_cast<uint32_t>(triangles.size());
    if (n == 0) {
        // Single empty leaf so traversal trivially terminates.
        BvhNode node;
        node.rightOrFirstPrim = 0;
        node.primCount = 0;
        nodes_.push_back(node);
        stats_.nodeCount = 1;
        stats_.leafCount = 1;
        return;
    }

    std::vector<Aabb> prim_bounds(n);
    std::vector<Vec3> centroids(n);
    for (uint32_t i = 0; i < n; ++i) {
        prim_bounds[i] = triangles[i].bounds();
        centroids[i] = triangles[i].centroid();
    }

    std::vector<uint32_t> prims(n);
    std::iota(prims.begin(), prims.end(), 0u);

    nodes_.reserve(2 * n);
    buildRecursive(prims, 0, n, 1, prim_bounds, centroids, params);
    primIndices_ = std::move(prims);
    stats_.nodeCount = static_cast<uint32_t>(nodes_.size());
}

Aabb
Bvh::rootBounds() const
{
    if (nodes_.empty())
        return Aabb{};
    return nodes_[kRootIndex].bounds;
}

uint32_t
Bvh::buildRecursive(std::vector<uint32_t> &prims, uint32_t begin,
                    uint32_t end, uint32_t depth,
                    const std::vector<Aabb> &prim_bounds,
                    const std::vector<Vec3> &centroids,
                    const BuildParams &params)
{
    constexpr uint32_t kMaxDepth = 64;

    uint32_t node_index = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();

    Aabb bounds;
    Aabb centroid_bounds;
    for (uint32_t i = begin; i < end; ++i) {
        bounds.expand(prim_bounds[prims[i]]);
        centroid_bounds.expand(centroids[prims[i]]);
    }
    nodes_[node_index].bounds = bounds;
    stats_.maxDepth = std::max(stats_.maxDepth, depth);

    uint32_t count = end - begin;
    auto make_leaf = [&]() {
        nodes_[node_index].rightOrFirstPrim = begin;
        nodes_[node_index].primCount = count;
        ++stats_.leafCount;
        stats_.maxLeafSize = std::max(stats_.maxLeafSize, count);
        return node_index;
    };

    if (count <= params.maxLeafSize || depth >= kMaxDepth)
        return make_leaf();

    // Binned SAH on the widest centroid axis.
    int axis = centroid_bounds.longestAxis();
    float axis_lo = centroid_bounds.lo[axis];
    float axis_extent = centroid_bounds.extent()[axis];
    if (axis_extent < 1e-12f) {
        // Degenerate spread (all centroids coincide): median split.
        uint32_t mid = begin + count / 2;
        nodes_[node_index].primCount = 0;
        uint32_t left = buildRecursive(prims, begin, mid, depth + 1,
                                       prim_bounds, centroids, params);
        ZATEL_ASSERT(left == node_index + 1,
                     "left child must directly follow its parent");
        uint32_t right = buildRecursive(prims, mid, end, depth + 1,
                                        prim_bounds, centroids, params);
        nodes_[node_index].rightOrFirstPrim = right;
        return node_index;
    }

    const uint32_t bins = std::max(2u, params.sahBins);
    std::vector<Aabb> bin_bounds(bins);
    std::vector<uint32_t> bin_counts(bins, 0);

    auto bin_of = [&](uint32_t prim) {
        float rel = (centroids[prim][axis] - axis_lo) / axis_extent;
        uint32_t b = static_cast<uint32_t>(rel * bins);
        return std::min(b, bins - 1);
    };

    for (uint32_t i = begin; i < end; ++i) {
        uint32_t b = bin_of(prims[i]);
        bin_bounds[b].expand(prim_bounds[prims[i]]);
        ++bin_counts[b];
    }

    // Sweep to find the cheapest split boundary.
    std::vector<float> right_area(bins, 0.0f);
    std::vector<uint32_t> right_count(bins, 0);
    Aabb acc;
    uint32_t cnt = 0;
    for (int b = static_cast<int>(bins) - 1; b >= 1; --b) {
        acc.expand(bin_bounds[b]);
        cnt += bin_counts[b];
        right_area[b] = acc.surfaceArea();
        right_count[b] = cnt;
    }

    float best_cost = std::numeric_limits<float>::max();
    uint32_t best_split = 0;
    acc = Aabb{};
    cnt = 0;
    float parent_area = std::max(bounds.surfaceArea(), 1e-12f);
    for (uint32_t b = 1; b < bins; ++b) {
        acc.expand(bin_bounds[b - 1]);
        cnt += bin_counts[b - 1];
        if (cnt == 0 || right_count[b] == 0)
            continue;
        float cost =
            params.traversalCost +
            params.intersectionCost *
                (acc.surfaceArea() * cnt + right_area[b] * right_count[b]) /
                parent_area;
        if (cost < best_cost) {
            best_cost = cost;
            best_split = b;
        }
    }

    float leaf_cost = params.intersectionCost * count;
    if (best_split == 0 ||
        (best_cost >= leaf_cost && count <= 2 * params.maxLeafSize)) {
        return make_leaf();
    }

    auto mid_iter = std::partition(
        prims.begin() + begin, prims.begin() + end,
        [&](uint32_t prim) { return bin_of(prim) < best_split; });
    uint32_t mid = static_cast<uint32_t>(mid_iter - prims.begin());
    if (mid == begin || mid == end)
        mid = begin + count / 2; // numerical fallback

    nodes_[node_index].primCount = 0;
    uint32_t left = buildRecursive(prims, begin, mid, depth + 1, prim_bounds,
                                   centroids, params);
    ZATEL_ASSERT(left == node_index + 1,
                 "left child must directly follow its parent");
    uint32_t right = buildRecursive(prims, mid, end, depth + 1, prim_bounds,
                                    centroids, params);
    nodes_[node_index].rightOrFirstPrim = right;
    return node_index;
}

} // namespace zatel::rt
