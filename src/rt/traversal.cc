#include "rt/traversal.hh"

#include "util/logging.hh"

namespace zatel::rt
{

void
TraversalStepper::init(const Bvh *bvh, const Ray &ray, TraversalMode mode)
{
    ZATEL_ASSERT(bvh != nullptr && bvh->valid(),
                 "traversal requires a built BVH");
    bvh_ = bvh;
    ray_ = ray;
    mode_ = mode;
    hit_ = HitRecord{};
    nodesVisited_ = 0;
    triangleTests_ = 0;

    auto safe_inv = [](float d) {
        // Large-but-finite reciprocal keeps the slab test well defined
        // for axis-parallel rays.
        constexpr float kHuge = 1e30f;
        if (d > 1e-30f || d < -1e-30f)
            return 1.0f / d;
        return d >= 0.0f ? kHuge : -kHuge;
    };
    invDir_ = {safe_inv(ray.direction.x), safe_inv(ray.direction.y),
               safe_inv(ray.direction.z)};

    stackSize_ = 0;
    // An empty BVH (single empty leaf) terminates immediately; its
    // default-constructed bounds would otherwise confuse the slab test.
    if (bvh->nodeCount() == 1 && bvh->node(Bvh::kRootIndex).primCount == 0 &&
        bvh->node(Bvh::kRootIndex).bounds.empty()) {
        return;
    }
    stack_[stackSize_++] = Bvh::kRootIndex;
}

StepInfo
TraversalStepper::step()
{
    ZATEL_ASSERT(stackSize_ > 0, "step() after traversal finished");

    StepInfo info;
    uint32_t node_index = stack_[--stackSize_];
    const BvhNode &node = bvh_->node(node_index);
    info.nodeIndex = node_index;
    ++nodesVisited_;

    // Clamp the query interval to the best hit found so far.
    Ray query = ray_;
    if (hit_.valid())
        query.tMax = hit_.t;

    float t_box = 0.0f;
    info.boundsHit = node.bounds.intersect(query, invDir_, t_box);
    if (!info.boundsHit)
        return info;

    if (!node.isLeaf()) {
        ZATEL_ASSERT(stackSize_ + 2 <= kMaxStackDepth,
                     "traversal stack overflow");
        // Push right first so the (spatially constructed) left child is
        // visited next; with self-contained node bounds both children are
        // fetched and tested regardless, matching the memory model.
        stack_[stackSize_++] = node.rightChild();
        stack_[stackSize_++] = BvhNode::leftChildOf(node_index);
        return info;
    }

    info.wasLeaf = true;
    info.firstPrimSlot = node.firstPrim();
    for (uint32_t i = 0; i < node.primCount; ++i) {
        uint32_t slot = node.firstPrim() + i;
        const Triangle &tri = bvh_->primitive(slot);
        float t = 0.0f;
        ++info.triangleTests;
        ++triangleTests_;
        if (!tri.intersect(query, t))
            continue;

        if (t < hit_.t) {
            hit_.t = t;
            hit_.primIndex = bvh_->primitiveIndex(slot);
            hit_.materialId = tri.materialId;
            hit_.position = ray_.at(t);
            Vec3 n = normalize(tri.rawNormal());
            // Face the normal toward the ray origin.
            if (dot(n, ray_.direction) > 0.0f)
                n = -n;
            hit_.normal = n;
            query.tMax = t;
        }
        if (mode_ == TraversalMode::AnyHit) {
            // Occlusion found: terminate the whole traversal.
            stackSize_ = 0;
            return info;
        }
    }
    return info;
}

uint32_t
RayPacket::add(const Bvh *bvh, const Ray &ray, TraversalMode mode)
{
    ZATEL_ASSERT(count_ < kWidth, "ray packet is full");
    uint32_t lane = count_++;
    lanes_[lane].init(bvh, ray, mode);
    return lane;
}

void
RayPacket::trace()
{
    uint32_t active = 0;
    for (uint32_t lane = 0; lane < count_; ++lane) {
        if (!lanes_[lane].finished())
            active |= 1u << lane;
    }
    // Lockstep rounds: one step per active lane per round keeps up to
    // kWidth independent node visits in flight; a lane's own step
    // sequence is untouched by the interleaving, so its hit record and
    // counters match the scalar helpers bit for bit.
    while (active != 0) {
        uint32_t pending = active;
        while (pending != 0) {
            uint32_t lane =
                static_cast<uint32_t>(__builtin_ctz(pending));
            pending &= pending - 1;
            lanes_[lane].step();
            if (lanes_[lane].finished())
                active &= ~(1u << lane);
        }
    }
}

HitRecord
closestHit(const Bvh &bvh, const Ray &ray, TraversalCounters *counters)
{
    TraversalStepper stepper;
    stepper.init(&bvh, ray, TraversalMode::ClosestHit);
    while (!stepper.finished())
        stepper.step();
    if (counters) {
        counters->nodesVisited += stepper.nodesVisited();
        counters->triangleTests += stepper.triangleTests();
    }
    return stepper.hit();
}

bool
anyHit(const Bvh &bvh, const Ray &ray, TraversalCounters *counters)
{
    TraversalStepper stepper;
    stepper.init(&bvh, ray, TraversalMode::AnyHit);
    while (!stepper.finished())
        stepper.step();
    if (counters) {
        counters->nodesVisited += stepper.nodesVisited();
        counters->triangleTests += stepper.triangleTests();
    }
    return stepper.hasHit();
}

} // namespace zatel::rt
