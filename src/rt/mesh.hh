/**
 * @file
 * Procedural triangle-mesh generators used by the scene library.
 *
 * The paper evaluates on LumiBench scenes; this repo substitutes procedural
 * geometry with matching execution-time characteristics (see DESIGN.md), so
 * the generators here are the building blocks of those analogues.
 */

#ifndef ZATEL_RT_MESH_HH
#define ZATEL_RT_MESH_HH

#include <cstdint>
#include <vector>

#include "rt/triangle.hh"
#include "rt/vec3.hh"
#include "util/rng.hh"

namespace zatel::rt
{

/** A growable bag of triangles sharing one coordinate space. */
class MeshBuilder
{
  public:
    /** Append a single triangle. */
    void addTriangle(const Vec3 &v0, const Vec3 &v1, const Vec3 &v2,
                     uint16_t material_id);

    /** Append a quad (two triangles) with corners in CCW order. */
    void addQuad(const Vec3 &v0, const Vec3 &v1, const Vec3 &v2,
                 const Vec3 &v3, uint16_t material_id);

    /** Append an axis-aligned box spanning [lo, hi]. */
    void addBox(const Vec3 &lo, const Vec3 &hi, uint16_t material_id);

    /**
     * Append a latitude-longitude sphere.
     * @param segments Longitudinal resolution; latitude uses segments/2.
     */
    void addSphere(const Vec3 &center, float radius, int segments,
                   uint16_t material_id);

    /** Append an upright cone (base on the y = center.y plane). */
    void addCone(const Vec3 &base_center, float radius, float height,
                 int segments, uint16_t material_id);

    /**
     * Append a horizontal ground plane subdivided into cells (so it has
     * realistic BVH depth rather than two huge triangles).
     */
    void addGroundPlane(const Vec3 &center, float half_extent, int cells,
                        uint16_t material_id);

    /**
     * Append @p count random small triangles inside a sphere volume
     * (foliage / clutter analogue producing incoherent traversal).
     */
    void addTriangleSoup(Rng &rng, const Vec3 &center, float radius,
                         int count, float tri_size, uint16_t material_id);

    /**
     * Append a bumpy heightfield terrain over [-half_extent, half_extent]^2.
     */
    void addTerrain(Rng &rng, const Vec3 &center, float half_extent,
                    int cells, float roughness, uint16_t material_id);

    const std::vector<Triangle> &triangles() const { return triangles_; }
    std::vector<Triangle> takeTriangles() { return std::move(triangles_); }
    size_t triangleCount() const { return triangles_.size(); }

  private:
    std::vector<Triangle> triangles_;
};

} // namespace zatel::rt

#endif // ZATEL_RT_MESH_HH
