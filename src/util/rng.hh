/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomized stages of the Zatel pipeline (section-block selection,
 * K-Means seeding, scene generation) draw from an explicitly seeded Rng so
 * that experiments are reproducible run-to-run and across platforms. The
 * implementation is xoshiro256** which is fast and has no observable
 * platform dependence, unlike std::mt19937 distributions.
 */

#ifndef ZATEL_UTIL_RNG_HH
#define ZATEL_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace zatel
{

/**
 * Small deterministic random number generator (xoshiro256**).
 *
 * Distribution helpers are implemented in-house so that sequences are
 * bit-identical across standard libraries.
 */
class Rng
{
  public:
    /** Seed with splitmix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal via Box-Muller. */
    double nextGaussian();

    /** Fisher-Yates shuffle of @p values. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (size_t i = values.size(); i > 1; --i) {
            size_t j = nextBounded(i);
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Derive an independent child generator (for per-thread streams). */
    Rng split();

  private:
    uint64_t state_[4];
    bool hasSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace zatel

#endif // ZATEL_UTIL_RNG_HH
