#include "util/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace zatel
{
namespace detail
{

namespace
{
/** Serializes log lines emitted from worker threads. */
std::mutex logMutex;

void
emitLine(const char *label, const std::string &message)
{
    std::lock_guard<std::mutex> lock(logMutex);
    std::cerr << label << message << std::endl;
}
} // namespace

void
fatalExit(const std::string &message)
{
    emitLine("fatal: ", message);
    std::exit(1);
}

void
panicAbort(const std::string &message)
{
    emitLine("panic: ", message);
    std::abort();
}

void
emitWarn(const std::string &message)
{
    emitLine("warn: ", message);
}

void
emitInform(const std::string &message)
{
    emitLine("info: ", message);
}

} // namespace detail
} // namespace zatel
