#include "util/regression.hh"

#include <cmath>

#include "util/logging.hh"

namespace zatel
{

namespace
{

double
computeR2(const std::vector<double> &xs, const std::vector<double> &ys,
          double (*predict)(double, double, double), double a, double b)
{
    double y_mean = 0.0;
    for (double y : ys)
        y_mean += y;
    y_mean /= static_cast<double>(ys.size());

    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        double pred = predict(xs[i], a, b);
        ss_res += (ys[i] - pred) * (ys[i] - pred);
        ss_tot += (ys[i] - y_mean) * (ys[i] - y_mean);
    }
    if (ss_tot < 1e-30)
        return 1.0;
    return 1.0 - ss_res / ss_tot;
}

} // namespace

LinearFit
fitLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    ZATEL_ASSERT(xs.size() == ys.size(), "fitLinear size mismatch");
    ZATEL_ASSERT(xs.size() >= 2, "fitLinear needs >= 2 samples");

    const double n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (std::abs(denom) < 1e-30) {
        // All x identical: fall back to a horizontal line at the mean.
        fit.slope = 0.0;
        fit.intercept = sy / n;
    } else {
        fit.slope = (n * sxy - sx * sy) / denom;
        fit.intercept = (sy - fit.slope * sx) / n;
    }
    fit.r2 = computeR2(
        xs, ys,
        [](double x, double a, double b) { return a * x + b; },
        fit.slope, fit.intercept);
    return fit;
}

double
PowerFit::evaluate(double x) const
{
    return scale * std::pow(x, exponent);
}

PowerFit
fitPowerLaw(const std::vector<double> &xs, const std::vector<double> &ys)
{
    ZATEL_ASSERT(xs.size() == ys.size(), "fitPowerLaw size mismatch");
    std::vector<double> lx, ly;
    for (size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] > 0.0 && ys[i] > 0.0) {
            lx.push_back(std::log(xs[i]));
            ly.push_back(std::log(ys[i]));
        }
    }
    ZATEL_ASSERT(lx.size() >= 2, "fitPowerLaw needs >= 2 positive samples");
    LinearFit line = fitLinear(lx, ly);

    PowerFit fit;
    fit.scale = std::exp(line.intercept);
    fit.exponent = line.slope;
    // R2 in log space describes the quality of the power-law shape.
    fit.r2 = line.r2;
    return fit;
}

double
ExponentialFit::evaluate(double x) const
{
    if (!exponential)
        return fallback.evaluate(x);
    double value = offset + coeff * std::pow(ratio, x);
    // An extreme ratio overflows for large |x| even when the fit itself
    // was finite; degrade to the fallback line rather than handing a
    // non-finite prediction to the extrapolation stage.
    if (!std::isfinite(value))
        return fallback.evaluate(x);
    return value;
}

ExponentialFit
fitExponentialThreePoint(const std::vector<double> &xs,
                         const std::vector<double> &ys)
{
    ZATEL_ASSERT(xs.size() == 3 && ys.size() == 3,
                 "three-point fit needs exactly 3 samples");
    const double h = xs[1] - xs[0];
    ZATEL_ASSERT(std::abs((xs[2] - xs[1]) - h) < 1e-9 && std::abs(h) > 1e-12,
                 "three-point fit requires equally spaced x values");

    ExponentialFit fit;
    fit.exponential = false;

    // Non-finite samples support neither form. Fit whatever finite
    // subset remains linearly (horizontal when fewer than two points
    // survive) so evaluate() always returns a finite value.
    bool all_finite = true;
    for (size_t i = 0; i < 3; ++i)
        all_finite &= std::isfinite(xs[i]) && std::isfinite(ys[i]);
    if (!all_finite) {
        std::vector<double> fx, fy;
        for (size_t i = 0; i < 3; ++i) {
            if (std::isfinite(xs[i]) && std::isfinite(ys[i])) {
                fx.push_back(xs[i]);
                fy.push_back(ys[i]);
            }
        }
        if (fx.size() >= 2) {
            fit.fallback = fitLinear(fx, fy);
        } else {
            fit.fallback.slope = 0.0;
            fit.fallback.intercept = fx.size() == 1 ? fy[0] : 0.0;
            fit.fallback.r2 = 0.0;
        }
        return fit;
    }

    // The fallback line through the outer samples is always populated:
    // evaluate() degrades to it when the exponential form overflows.
    fit.fallback = fitLinear({xs[0], xs[2]}, {ys[0], ys[2]});

    const double d1 = ys[1] - ys[0];
    const double d2 = ys[2] - ys[1];

    // ratio^h = d2 / d1; solvable only when both steps move the same way.
    if (std::abs(d1) > 1e-12 && d2 / d1 > 1e-9) {
        double ratio_h = d2 / d1;
        double ratio = std::pow(ratio_h, 1.0 / h);
        if (std::isfinite(ratio) && std::abs(ratio - 1.0) > 1e-9) {
            double denom =
                std::pow(ratio, xs[1]) - std::pow(ratio, xs[0]);
            double coeff = d1 / denom;
            double offset = ys[0] - coeff * std::pow(ratio, xs[0]);
            // A near-zero d1 against a large d2 drives the ratio to an
            // extreme where these terms overflow (coeff -> 0 * inf ->
            // NaN); accept only a fully finite solution and keep the
            // linear fallback otherwise. (A zero denom makes coeff
            // infinite, so the finite checks cover it.)
            if (std::isfinite(denom) && std::isfinite(coeff) &&
                std::isfinite(offset)) {
                fit.exponential = true;
                fit.ratio = ratio;
                fit.coeff = coeff;
                fit.offset = offset;
                return fit;
            }
        }
    }

    // Degenerate shape: the line through the outer samples.
    return fit;
}

} // namespace zatel
