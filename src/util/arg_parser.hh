/**
 * @file
 * Minimal command-line parser for the tools and examples.
 *
 * Supports long options only ("--name value" or "--name=value"), boolean
 * flags, defaults, required options, and positional arguments. Designed
 * for small deterministic CLIs, not completeness.
 */

#ifndef ZATEL_UTIL_ARG_PARSER_HH
#define ZATEL_UTIL_ARG_PARSER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zatel
{

/** Declarative argument parser. */
class ArgParser
{
  public:
    /** @param program Program name shown in usage(). */
    explicit ArgParser(std::string program, std::string description = "");

    /** Register a boolean flag (present = true). */
    void addFlag(const std::string &name, const std::string &help);

    /** Register a string option with a default. */
    void addOption(const std::string &name, const std::string &fallback,
                   const std::string &help);

    /** Register a required string option. */
    void addRequired(const std::string &name, const std::string &help);

    /**
     * Parse argv.
     * @return true on success; on failure errorMessage() explains why.
     */
    bool parse(int argc, const char *const *argv);

    /** True when the flag/option was explicitly supplied. */
    bool has(const std::string &name) const;

    /**
     * Value of an option (the default when not supplied). For repeated
     * options ("--scene A --scene B") the last occurrence wins.
     */
    const std::string &get(const std::string &name) const;

    /**
     * All supplied occurrences of an option in command-line order
     * ("--scene PARK --scene BUNNY" -> {"PARK", "BUNNY"}), used by the
     * zatel-batch sweep shorthand. Falls back to {fallback} when the
     * option was not supplied and has a non-empty default, and to {}
     * otherwise.
     */
    std::vector<std::string> getList(const std::string &name) const;

    /** Convenience conversions (fatal on malformed numbers). */
    int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /**
     * Validated conversions: like getInt() but also fatal() when the
     * value falls outside the stated range, so every tool rejects
     * nonsense the same way ("--workers -3", "--port 99999") instead of
     * hand-rolling the bounds check (or worse, casting a negative to
     * size_t). Overflowing int64 is caught by getInt() itself.
     */
    int64_t getIntInRange(const std::string &name, int64_t lo,
                          int64_t hi) const;
    /** A strictly positive integer (>= 1). */
    int64_t getPositiveInt(const std::string &name) const;
    /** A TCP port: [1, 65535], or 0 too when @p allowZero (ephemeral). */
    uint16_t getPortNumber(const std::string &name,
                           bool allowZero = false) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Human-readable usage text. */
    std::string usage() const;

    const std::string &errorMessage() const { return error_; }

  private:
    struct Spec
    {
        std::string help;
        std::string fallback;
        bool isFlag = false;
        bool required = false;
    };

    const Spec *specOf(const std::string &name) const;

    std::string program_;
    std::string description_;
    std::vector<std::pair<std::string, Spec>> specs_;
    /** Every supplied occurrence per option, in command-line order. */
    std::map<std::string, std::vector<std::string>> values_;
    std::vector<std::string> positional_;
    std::string error_;
};

} // namespace zatel

#endif // ZATEL_UTIL_ARG_PARSER_HH
