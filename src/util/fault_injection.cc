#include "util/fault_injection.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "obs/metrics_registry.hh"
#include "util/logging.hh"

namespace zatel
{

namespace
{

/** splitmix64 finalizer: the standard seed-expansion mix also used by
 *  Rng's constructor. Pure, so probability decisions are a function of
 *  (seed, site, key) alone — independent of thread interleaving. */
uint64_t
splitmix64(uint64_t z)
{
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** FNV-1a over the site name (stable across platforms). */
uint64_t
hashName(const std::string &name)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

/** Uniform double in [0, 1) from (seed, site, key). */
double
keyedUnitDouble(uint64_t seed, uint64_t name_hash, uint64_t key)
{
    uint64_t x = splitmix64(seed ^ name_hash);
    x = splitmix64(x ^ key);
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/** Split @p text on @p sep, dropping empty pieces. */
std::vector<std::string>
splitNonEmpty(const std::string &text, const std::string &seps)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : text) {
        if (seps.find(c) != std::string::npos) {
            if (!current.empty())
                out.push_back(std::move(current));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        out.push_back(std::move(current));
    return out;
}

} // namespace

// ---------------------------------------------------------------- policy

FaultPolicy
FaultPolicy::nthHit(uint64_t n)
{
    ZATEL_ASSERT(n >= 1, "nth-hit fault policies are 1-based");
    FaultPolicy p;
    p.kind = Kind::Nth;
    p.nth = n;
    return p;
}

FaultPolicy
FaultPolicy::withProbability(double probability, uint64_t seed)
{
    ZATEL_ASSERT(probability >= 0.0 && probability <= 1.0,
                 "fault probability must be in [0, 1], got ", probability);
    FaultPolicy p;
    p.kind = Kind::Probability;
    p.probability = probability;
    p.seed = seed;
    return p;
}

FaultPolicy
FaultPolicy::parse(const std::string &text)
{
    if (text == "never")
        return never();
    if (text == "always")
        return always();

    const auto bad = [&text](const std::string &why) -> std::invalid_argument {
        return std::invalid_argument("bad fault policy '" + text + "': " +
                                     why);
    };

    std::vector<std::string> parts = splitNonEmpty(text, ":");
    if (parts.empty())
        throw bad("expected never|always|nth:N|prob:P[:SEED]");

    if (parts[0] == "nth") {
        if (parts.size() != 2)
            throw bad("expected nth:N");
        size_t used = 0;
        unsigned long long n = 0;
        try {
            n = std::stoull(parts[1], &used);
        } catch (const std::exception &) {
            throw bad("'" + parts[1] + "' is not a count");
        }
        if (used != parts[1].size() || n < 1)
            throw bad("nth wants an integer >= 1");
        return nthHit(n);
    }

    if (parts[0] == "prob") {
        if (parts.size() != 2 && parts.size() != 3)
            throw bad("expected prob:P[:SEED]");
        size_t used = 0;
        double p = 0.0;
        try {
            p = std::stod(parts[1], &used);
        } catch (const std::exception &) {
            throw bad("'" + parts[1] + "' is not a probability");
        }
        if (used != parts[1].size() || p < 0.0 || p > 1.0)
            throw bad("probability must be in [0, 1]");
        uint64_t seed = 0;
        if (parts.size() == 3) {
            try {
                seed = std::stoull(parts[2], &used);
            } catch (const std::exception &) {
                throw bad("'" + parts[2] + "' is not a seed");
            }
            if (used != parts[2].size())
                throw bad("'" + parts[2] + "' is not a seed");
        }
        return withProbability(p, seed);
    }

    throw bad("unknown policy kind '" + parts[0] + "'");
}

std::string
FaultPolicy::toString() const
{
    switch (kind) {
      case Kind::Never:
        return "never";
      case Kind::Always:
        return "always";
      case Kind::Nth:
        return "nth:" + std::to_string(nth);
      case Kind::Probability:
        return "prob:" + std::to_string(probability) + ":" +
               std::to_string(seed);
    }
    return "never";
}

// ------------------------------------------------------------------ site

FaultSite::FaultSite(std::string name, const std::atomic<bool> *any_armed)
    : name_(std::move(name)), nameHash_(hashName(name_)), anyArmed_(any_armed)
{
    auto &reg = obs::MetricsRegistry::global();
    hitsCounter_ = reg.counter(
        "zatel_fault_site_hits_total",
        "Fault probe evaluations while any fault was armed",
        {{"site", name_}});
    firesCounter_ = reg.counter("zatel_fault_site_fires_total",
                                "Fault probe evaluations that fired",
                                {{"site", name_}});
}

FaultPolicy
FaultSite::policy() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return policy_;
}

void
FaultSite::setPolicy(const FaultPolicy &policy)
{
    std::lock_guard<std::mutex> lock(mutex_);
    policy_ = policy;
}

void
FaultSite::resetCounts()
{
    hits_.store(0, std::memory_order_relaxed);
    fires_.store(0, std::memory_order_relaxed);
}

bool
FaultSite::shouldFireSlow(uint64_t key)
{
    FaultPolicy policy;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        policy = policy_;
    }
    if (!policy.armed())
        return false;

    const uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
    hitsCounter_->inc();

    bool fire = false;
    switch (policy.kind) {
      case FaultPolicy::Kind::Never:
        break;
      case FaultPolicy::Kind::Always:
        fire = true;
        break;
      case FaultPolicy::Kind::Nth:
        // fetch_add hands every evaluation a unique index, so exactly
        // one of them matches: a transient fault fires once even when
        // probes race across threads.
        fire = (hit == policy.nth);
        break;
      case FaultPolicy::Kind::Probability:
        fire = keyedUnitDouble(policy.seed, nameHash_, key) <
               policy.probability;
        break;
    }
    if (fire) {
        fires_.fetch_add(1, std::memory_order_relaxed);
        firesCounter_->inc();
    }
    return fire;
}

// -------------------------------------------------------------- registry

FaultRegistry::FaultRegistry()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string &name : knownSiteNames())
        siteLocked(name);
}

FaultRegistry &
FaultRegistry::global()
{
    static FaultRegistry *registry = [] {
        auto *r = new FaultRegistry();
        if (const char *spec = std::getenv("ZATEL_FAULTS");
            spec != nullptr && spec[0] != '\0') {
            try {
                r->configure(spec);
            } catch (const std::invalid_argument &e) {
                fatal("ZATEL_FAULTS: ", e.what());
            }
        }
        return r;
    }();
    return *registry;
}

const std::vector<std::string> &
FaultRegistry::knownSiteNames()
{
    // The production site catalog. Keep docs/ROBUSTNESS.md and the
    // fault-matrix test (tests/test_resilience.cc) in sync.
    static const std::vector<std::string> names = {
        "cache.disk.read",     // ArtifactCache disk-tier load
        "cache.disk.write",    // ArtifactCache disk-tier store
        "scene.pack.build",    // Scheduler start unit: scene pack build
        "heatmap.build",       // Scheduler start unit: profile heatmap
        "group.sim",           // Predictor group task entry (keyed: group)
        "group.sim.midrun",    // Inside simulateGroup, pre-run (keyed)
        "group.sim.stall",     // Group sim stops making progress (keyed)
        "pool.task",           // Scheduler unit submission to the pool
        "result.store.append", // ResultStore row append I/O
        "oracle.run",          // Scheduler finalize unit: oracle sim
        "serve.accept",        // Daemon acceptor: shed the connection
        "serve.read",          // Daemon request read: fail with 500
        "serve.write",         // Daemon response write: bare 500
        "worker.spawn",        // Dist coordinator: worker fork/exec
        "worker.heartbeat",    // Dist worker: lease heartbeat refresh
        "dist.lease.write",    // Dist worker: shard lease claim write
        "dist.fragment.write", // Dist worker: fragment publish rename
    };
    return names;
}

FaultSite *
FaultRegistry::site(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return siteLocked(name);
}

FaultSite *
FaultRegistry::siteLocked(const std::string &name)
{
    for (auto &site : sites_) {
        if (site->name() == name)
            return site.get();
    }
    sites_.push_back(std::unique_ptr<FaultSite>(
        new FaultSite(name, &anyArmed_)));
    return sites_.back().get();
}

void
FaultRegistry::setPolicy(const std::string &name, const FaultPolicy &policy)
{
    std::lock_guard<std::mutex> lock(mutex_);
    siteLocked(name)->setPolicy(policy);
    recomputeArmedLocked();
}

void
FaultRegistry::configure(const std::string &spec)
{
    const std::vector<std::string> &known = knownSiteNames();
    std::vector<std::pair<std::string, FaultPolicy>> parsed;
    for (const std::string &entry : splitNonEmpty(spec, ",;")) {
        const size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
            throw std::invalid_argument(
                "bad fault spec entry '" + entry +
                "' (expected site=policy)");
        }
        const std::string name = entry.substr(0, eq);
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            std::string catalog;
            for (const std::string &k : known)
                catalog += (catalog.empty() ? "" : ", ") + k;
            throw std::invalid_argument("unknown fault site '" + name +
                                        "' (known sites: " + catalog + ")");
        }
        parsed.emplace_back(name, FaultPolicy::parse(entry.substr(eq + 1)));
    }
    // All-or-nothing: nothing is armed unless the whole spec parsed.
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, policy] : parsed)
        siteLocked(name)->setPolicy(policy);
    recomputeArmedLocked();
}

void
FaultRegistry::disarmAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &site : sites_)
        site->setPolicy(FaultPolicy::never());
    recomputeArmedLocked();
}

void
FaultRegistry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &site : sites_) {
        site->setPolicy(FaultPolicy::never());
        site->resetCounts();
    }
    recomputeArmedLocked();
}

std::vector<std::string>
FaultRegistry::siteNames() const
{
    std::vector<std::string> names;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        names.reserve(sites_.size());
        for (const auto &site : sites_)
            names.push_back(site->name());
    }
    std::sort(names.begin(), names.end());
    return names;
}

void
FaultRegistry::recomputeArmedLocked()
{
    bool armed = false;
    for (const auto &site : sites_) {
        if (site->policy().armed()) {
            armed = true;
            break;
        }
    }
    anyArmed_.store(armed, std::memory_order_relaxed);
}

// --------------------------------------------------------------- backoff

uint64_t
retryBackoffMicros(uint32_t attempt)
{
    if (attempt == 0)
        return 0;
    const uint32_t shift = std::min<uint32_t>(attempt - 1, 4);
    return std::min<uint64_t>(1000ull << shift, 16000ull);
}

void
retryBackoffSleep(uint32_t attempt)
{
    const uint64_t micros = retryBackoffMicros(attempt);
    if (micros > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

} // namespace zatel
