#include "util/math_utils.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace zatel
{

uint64_t
gcd(uint64_t a, uint64_t b)
{
    while (b != 0) {
        uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

uint64_t
gcdAll(const std::vector<uint64_t> &values)
{
    uint64_t g = 0;
    for (uint64_t v : values)
        g = gcd(g, v);
    return g;
}

double
clampDouble(double value, double lo, double hi)
{
    ZATEL_ASSERT(lo <= hi, "clamp bounds inverted");
    return std::min(hi, std::max(lo, value));
}

uint64_t
ceilDiv(uint64_t dividend, uint64_t divisor)
{
    ZATEL_ASSERT(divisor > 0, "ceilDiv by zero");
    return (dividend + divisor - 1) / divisor;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
minOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

double
relativeErrorPct(double predicted, double actual)
{
    double diff = std::abs(predicted - actual);
    if (std::abs(actual) < 1e-12)
        return diff * 100.0;
    return diff / std::abs(actual) * 100.0;
}

double
maePct(const std::vector<double> &predicted,
       const std::vector<double> &actual)
{
    ZATEL_ASSERT(predicted.size() == actual.size(),
                 "maePct size mismatch: ", predicted.size(), " vs ",
                 actual.size());
    if (predicted.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < predicted.size(); ++i)
        acc += relativeErrorPct(predicted[i], actual[i]);
    return acc / static_cast<double>(predicted.size());
}

bool
nearlyEqual(double a, double b, double tol)
{
    return std::abs(a - b) <= tol;
}

} // namespace zatel
