/**
 * @file
 * Status and error reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user-correctable conditions (bad configuration, invalid
 * arguments) and exits with status 1. panic() is for internal invariant
 * violations (bugs) and aborts. warn()/inform() report without stopping.
 */

#ifndef ZATEL_UTIL_LOGGING_HH
#define ZATEL_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace zatel
{

namespace detail
{

/** Stream a pack of arguments into a single string. */
template <typename... Args>
std::string
concatToString(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/** Print a labeled message to stderr; exits or aborts per @p action. */
[[noreturn]] void fatalExit(const std::string &message);
[[noreturn]] void panicAbort(const std::string &message);
void emitWarn(const std::string &message);
void emitInform(const std::string &message);

} // namespace detail

/**
 * Terminate because of a user-level error (bad config, bad arguments).
 * @param args Message pieces streamed together.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalExit(detail::concatToString(std::forward<Args>(args)...));
}

/**
 * Terminate because an internal invariant was violated (a bug).
 * @param args Message pieces streamed together.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicAbort(detail::concatToString(std::forward<Args>(args)...));
}

/** Report suspicious-but-survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitWarn(detail::concatToString(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitInform(detail::concatToString(std::forward<Args>(args)...));
}

/** panic() unless @p condition holds. */
#define ZATEL_ASSERT(condition, ...)                                        \
    do {                                                                    \
        if (!(condition)) {                                                 \
            ::zatel::panic("assertion '", #condition, "' failed: ",         \
                           ##__VA_ARGS__);                                  \
        }                                                                   \
    } while (0)

} // namespace zatel

#endif // ZATEL_UTIL_LOGGING_HH
