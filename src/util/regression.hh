/**
 * @file
 * Curve fitting helpers used by Zatel's extrapolation stage (Section III-G
 * and IV-F of the paper) and the speedup model of equation (4).
 */

#ifndef ZATEL_UTIL_REGRESSION_HH
#define ZATEL_UTIL_REGRESSION_HH

#include <vector>

namespace zatel
{

/** Result of an ordinary least-squares line fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;

    double evaluate(double x) const { return slope * x + intercept; }
};

/**
 * Ordinary least-squares line fit.
 * @pre xs.size() == ys.size() and xs.size() >= 2.
 */
LinearFit fitLinear(const std::vector<double> &xs,
                    const std::vector<double> &ys);

/** Power-law fit y = scale * x^exponent (via log-log least squares). */
struct PowerFit
{
    double scale = 0.0;
    double exponent = 0.0;
    double r2 = 0.0;

    double evaluate(double x) const;
};

/**
 * Fit y = scale * x^exponent to strictly positive samples.
 * Samples with non-positive x or y are skipped.
 * @pre at least 2 usable samples.
 */
PowerFit fitPowerLaw(const std::vector<double> &xs,
                     const std::vector<double> &ys);

/**
 * Shifted exponential y = offset + coeff * ratio^x, exactly determined from
 * three samples at equally spaced x values (the paper feeds 20%, 30%, 40%).
 *
 * When the three samples are not genuinely exponential (ratio would be
 * non-positive or ~1) the fit degrades gracefully to the line through the
 * outer points, mirroring how an overfit regression behaves in Fig. 20.
 */
struct ExponentialFit
{
    double offset = 0.0;
    double coeff = 0.0;
    double ratio = 1.0;
    /** True when the exponential form was solvable. */
    bool exponential = false;
    /** Fallback line used when !exponential. */
    LinearFit fallback;

    double evaluate(double x) const;
};

/**
 * Fit the shifted exponential through three equally spaced samples.
 * @pre xs.size() == 3, ys.size() == 3, xs[1]-xs[0] == xs[2]-xs[1] != 0.
 */
ExponentialFit fitExponentialThreePoint(const std::vector<double> &xs,
                                        const std::vector<double> &ys);

} // namespace zatel

#endif // ZATEL_UTIL_REGRESSION_HH
