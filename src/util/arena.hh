/**
 * @file
 * Frame arena: a bump allocator for per-frame transient state.
 *
 * The simulator's hot loops allocate many short-lived, trivially
 * destructible records (recorded rays, scratch spans) whose lifetime is
 * "one frame" or "one workload build". FrameArena serves those from
 * chained blocks with a pointer bump, and reset() rewinds the cursor
 * while *retaining* every block, so steady-state operation performs no
 * heap allocation at all (docs/SIMULATOR.md, "Data layout of the hot
 * path").
 */

#ifndef ZATEL_UTIL_ARENA_HH
#define ZATEL_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "util/logging.hh"

namespace zatel
{

/**
 * Chained-block bump allocator. Not thread-safe; one arena per producer.
 *
 * Lifecycle: allocate()/allocateSpan() during a frame, reset() between
 * frames (retains capacity), release() to return memory to the OS.
 * Objects are never destroyed — only trivially destructible types may be
 * placed in the arena (enforced by allocateSpan).
 */
class FrameArena
{
  public:
    static constexpr size_t kDefaultBlockBytes = 64 * 1024;

    explicit FrameArena(size_t block_bytes = kDefaultBlockBytes)
        : blockBytes_(block_bytes)
    {
        ZATEL_ASSERT(block_bytes > 0, "arena block size must be > 0");
    }

    FrameArena(FrameArena &&) = default;
    FrameArena &operator=(FrameArena &&) = default;
    FrameArena(const FrameArena &) = delete;
    FrameArena &operator=(const FrameArena &) = delete;

    /** Allocate @p bytes aligned to @p align (a power of two). */
    void *
    allocate(size_t bytes, size_t align = alignof(std::max_align_t))
    {
        ZATEL_ASSERT(align > 0 && (align & (align - 1)) == 0,
                     "arena alignment must be a power of two");
        uintptr_t cursor = reinterpret_cast<uintptr_t>(cursor_);
        uintptr_t aligned = (cursor + (align - 1)) & ~(uintptr_t{align} - 1);
        size_t padding = aligned - cursor;
        if (cursor_ == nullptr || padding + bytes > remaining_) {
            refill(bytes + align - 1);
            cursor = reinterpret_cast<uintptr_t>(cursor_);
            aligned = (cursor + (align - 1)) & ~(uintptr_t{align} - 1);
            padding = aligned - cursor;
        }
        cursor_ += padding + bytes;
        remaining_ -= padding + bytes;
        allocated_ += padding + bytes;
        return reinterpret_cast<void *>(aligned);
    }

    /**
     * Allocate a default-initialized array of @p count T. The arena never
     * runs destructors, so T must be trivially destructible.
     */
    template <typename T>
    T *
    allocateSpan(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena-backed types must not need destruction");
        if (count == 0)
            return nullptr;
        // Element-wise placement new: the array form may prepend an
        // unspecified cookie, which a bump allocator cannot afford.
        T *out = static_cast<T *>(allocate(count * sizeof(T), alignof(T)));
        for (size_t i = 0; i < count; ++i)
            new (out + i) T();
        return out;
    }

    /** Copy @p count elements from @p src into the arena. */
    template <typename T>
    T *
    copySpan(const T *src, size_t count)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "copySpan requires trivially copyable types");
        if (count == 0)
            return nullptr;
        void *raw = allocate(count * sizeof(T), alignof(T));
        std::memcpy(raw, src, count * sizeof(T));
        return static_cast<T *>(raw);
    }

    /**
     * Rewind to empty while retaining every block: the next frame reuses
     * the same memory with zero heap traffic.
     */
    void
    reset()
    {
        activeBlock_ = 0;
        allocated_ = 0;
        if (blocks_.empty()) {
            cursor_ = nullptr;
            remaining_ = 0;
            return;
        }
        cursor_ = blocks_[0].data.get();
        remaining_ = blocks_[0].size;
    }

    /** Drop every block (memory back to the OS) and rewind. */
    void
    release()
    {
        blocks_.clear();
        activeBlock_ = 0;
        cursor_ = nullptr;
        remaining_ = 0;
        allocated_ = 0;
    }

    /** Live bytes handed out since the last reset (includes padding). */
    size_t bytesAllocated() const { return allocated_; }

    /** Total bytes held across all retained blocks. */
    size_t
    bytesReserved() const
    {
        size_t total = 0;
        for (const Block &block : blocks_)
            total += block.size;
        return total;
    }

    size_t blockCount() const { return blocks_.size(); }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        size_t size = 0;
    };

    /** Advance to a retained block that fits @p bytes, or chain a new one. */
    void
    refill(size_t bytes)
    {
        // After reset() earlier blocks are being reused in order; advance
        // through retained blocks before allocating fresh ones.
        while (activeBlock_ + 1 < blocks_.size()) {
            ++activeBlock_;
            if (blocks_[activeBlock_].size >= bytes) {
                cursor_ = blocks_[activeBlock_].data.get();
                remaining_ = blocks_[activeBlock_].size;
                return;
            }
        }
        size_t size = bytes > blockBytes_ ? bytes : blockBytes_;
        Block block;
        block.data = std::make_unique<std::byte[]>(size);
        block.size = size;
        blocks_.push_back(std::move(block));
        activeBlock_ = blocks_.size() - 1;
        cursor_ = blocks_[activeBlock_].data.get();
        remaining_ = size;
    }

    size_t blockBytes_ = kDefaultBlockBytes;
    std::vector<Block> blocks_;
    size_t activeBlock_ = 0;
    std::byte *cursor_ = nullptr;
    size_t remaining_ = 0;
    size_t allocated_ = 0;
};

} // namespace zatel

#endif // ZATEL_UTIL_ARENA_HH
