#include "util/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace zatel
{

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    cells.resize(std::max(cells.size(), header_.size()));
    rows_.push_back(std::move(cells));
    isRule_.push_back(false);
}

void
AsciiTable::addRule()
{
    rows_.emplace_back();
    isRule_.push_back(true);
}

std::string
AsciiTable::num(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
AsciiTable::pct(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, value);
    return buf;
}

namespace
{

bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
    bool any_digit = false;
    for (; i < cell.size(); ++i) {
        char c = cell[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            any_digit = true;
        } else if (c != '.' && c != '%' && c != 'e' && c != '+' &&
                   c != '-' && c != 'x') {
            return false;
        }
    }
    return any_digit;
}

} // namespace

std::string
AsciiTable::toString() const
{
    size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<size_t> widths(cols, 0);
    auto widen = [&widths](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (size_t r = 0; r < rows_.size(); ++r) {
        if (!isRule_[r])
            widen(rows_[r]);
    }

    std::ostringstream oss;
    auto rule = [&]() {
        oss << '+';
        for (size_t w : widths)
            oss << std::string(w + 2, '-') << '+';
        oss << '\n';
    };
    auto emit = [&](const std::vector<std::string> &row) {
        oss << '|';
        for (size_t i = 0; i < cols; ++i) {
            std::string cell = i < row.size() ? row[i] : std::string();
            size_t pad = widths[i] - cell.size();
            if (looksNumeric(cell))
                oss << ' ' << std::string(pad, ' ') << cell << ' ';
            else
                oss << ' ' << cell << std::string(pad, ' ') << ' ';
            oss << '|';
        }
        oss << '\n';
    };

    rule();
    emit(header_);
    rule();
    for (size_t r = 0; r < rows_.size(); ++r) {
        if (isRule_[r])
            rule();
        else
            emit(rows_[r]);
    }
    rule();
    return oss.str();
}

} // namespace zatel
