#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace zatel
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    ZATEL_ASSERT(bound > 0, "nextBounded requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    ZATEL_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (hasSpareGaussian_) {
        hasSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u = 0.0;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    double v = nextDouble();
    double mag = std::sqrt(-2.0 * std::log(u));
    spareGaussian_ = mag * std::sin(2.0 * M_PI * v);
    hasSpareGaussian_ = true;
    return mag * std::cos(2.0 * M_PI * v);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xA02BDBF7BB3C0A7ull);
}

} // namespace zatel
