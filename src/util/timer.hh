/**
 * @file
 * Wall-clock timer for measuring simulation running time and speedups.
 */

#ifndef ZATEL_UTIL_TIMER_HH
#define ZATEL_UTIL_TIMER_HH

#include <chrono>

namespace zatel
{

/** Monotonic wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    elapsedSeconds() const
    {
        auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    /** Milliseconds elapsed. */
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace zatel

#endif // ZATEL_UTIL_TIMER_HH
