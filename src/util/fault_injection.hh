/**
 * @file
 * Deterministic fault-injection framework (docs/ROBUSTNESS.md).
 *
 * Production code marks the places where the outside world can fail
 * (disk I/O, a simulator instance, a pool task) with named probe
 * macros. With no faults armed the probe is one relaxed atomic load
 * plus a branch — cheap enough to leave compiled into release builds
 * (bench/bench_fault_overhead.cc gates the cost below 1% of the
 * predictor hot path). Tests and CI arm sites via the ZATEL_FAULTS
 * environment variable or the programmatic API and prove that every
 * failure yields a correct degraded result instead of a crash, a hang,
 * or a silently wrong number.
 *
 * Policies (FaultPolicy::parse accepts the same spellings as
 * ZATEL_FAULTS):
 *  - "always"        every probe evaluation fires.
 *  - "nth:N"         the N-th evaluation (1-based, process-wide per
 *                    site) fires exactly once — models a transient
 *                    fault a retry recovers from. Which logical
 *                    operation is the N-th depends on thread timing;
 *                    use a keyed probability policy when the failing
 *                    set must be deterministic.
 *  - "prob:P[:SEED]" fires iff hash(SEED, site, key) < P. A pure
 *                    function of its inputs: the same keys fail no
 *                    matter how many threads race the probes, which is
 *                    what keeps degraded predictions byte-identical
 *                    between --threads 1 and --threads 4.
 *  - "never"         disarmed (the default).
 *
 * ZATEL_FAULTS syntax: comma- or semicolon-separated
 * `site=policy` entries, e.g.
 *
 *   ZATEL_FAULTS='cache.disk.write=always,group.sim=nth:2'
 *
 * Site names must match the compile-time catalog (knownSiteNames());
 * a typo is a fatal() at startup, not a silently ignored fault plan.
 */

#ifndef ZATEL_UTIL_FAULT_INJECTION_HH
#define ZATEL_UTIL_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace zatel
{

namespace obs
{
class Counter;
} // namespace obs

/** Thrown by an armed probe. Carries the site name so resilience
 *  layers and tests can tell injected faults from organic ones. */
class FaultInjectedError : public std::runtime_error
{
  public:
    explicit FaultInjectedError(const std::string &site)
        : std::runtime_error("injected fault at site '" + site + "'"),
          site_(site)
    {
    }

    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/** When (if ever) a probe evaluation at a site fires. */
struct FaultPolicy
{
    enum class Kind : uint8_t
    {
        Never,
        Always,
        /** Fire on the nth evaluation exactly once (transient fault). */
        Nth,
        /** Fire iff hash(seed, site, key) < probability (sticky per
         *  key, thread-order independent). */
        Probability,
    };

    Kind kind = Kind::Never;
    /** Nth: the 1-based evaluation index that fires. */
    uint64_t nth = 0;
    /** Probability: per-key fire chance in [0, 1]. */
    double probability = 0.0;
    /** Probability: stream selector (different seeds fail different
     *  key subsets). */
    uint64_t seed = 0;

    bool armed() const { return kind != Kind::Never; }

    static FaultPolicy never() { return {}; }

    static FaultPolicy
    always()
    {
        FaultPolicy p;
        p.kind = Kind::Always;
        return p;
    }

    /** @pre n >= 1. */
    static FaultPolicy nthHit(uint64_t n);

    /** @pre 0 <= p <= 1. */
    static FaultPolicy withProbability(double p, uint64_t seed = 0);

    /**
     * Parse "never" / "always" / "nth:N" / "prob:P[:SEED]".
     * @throws std::invalid_argument with a human-readable reason.
     */
    static FaultPolicy parse(const std::string &text);

    /** Inverse of parse() (for logs and error messages). */
    std::string toString() const;
};

/**
 * One named injection point. Instances are owned by a FaultRegistry
 * and live for its lifetime; probe macros cache the pointer in a
 * function-local static.
 */
class FaultSite
{
  public:
    const std::string &name() const { return name_; }

    /**
     * The probe. With nothing armed registry-wide this is one relaxed
     * load and a branch; otherwise the slow path applies this site's
     * policy. @p key identifies the logical operation (group index,
     * job hash) so Probability policies fail a deterministic subset.
     */
    bool
    shouldFire(uint64_t key = 0)
    {
        if (!anyArmed_->load(std::memory_order_relaxed))
            return false;
        return shouldFireSlow(key);
    }

    /** Probe evaluations while any fault was armed registry-wide. */
    uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

    /** Evaluations that fired. */
    uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

    FaultPolicy policy() const;

  private:
    friend class FaultRegistry;
    FaultSite(std::string name, const std::atomic<bool> *any_armed);

    bool shouldFireSlow(uint64_t key);
    void setPolicy(const FaultPolicy &policy);
    void resetCounts();

    std::string name_;
    uint64_t nameHash_ = 0;
    const std::atomic<bool> *anyArmed_;
    /** Exported through the global MetricsRegistry
     *  (zatel_fault_site_{hits,fires}_total{site=...}). */
    obs::Counter *hitsCounter_ = nullptr;
    obs::Counter *firesCounter_ = nullptr;
    mutable std::mutex mutex_;
    FaultPolicy policy_; ///< Guarded by mutex_.
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> fires_{0};
};

/**
 * Owner of all fault sites. Probe macros use the process-wide
 * global() instance, whose constructor pre-registers the compile-time
 * site catalog and applies the ZATEL_FAULTS environment variable
 * (fatal() on a malformed spec or unknown site name). Tests may
 * construct private registries for parser/policy unit tests, but the
 * production probes always consult global().
 */
class FaultRegistry
{
  public:
    /** A registry with the known-site catalog registered and nothing
     *  armed. Does NOT read ZATEL_FAULTS (only global() does). */
    FaultRegistry();

    FaultRegistry(const FaultRegistry &) = delete;
    FaultRegistry &operator=(const FaultRegistry &) = delete;

    /** The process-wide registry behind ZATEL_INJECT_FAULT. */
    static FaultRegistry &global();

    /**
     * The compile-time catalog of production injection sites
     * (docs/ROBUSTNESS.md keeps the prose catalog in sync; the
     * fault-matrix test iterates this list).
     */
    static const std::vector<std::string> &knownSiteNames();

    /** Find-or-register a site. Pointers stay valid for the registry's
     *  lifetime. Ad-hoc (non-catalog) names are allowed here so tests
     *  can probe the framework itself. */
    FaultSite *site(const std::string &name);

    /** Arm/disarm one site. Registers the site if needed. */
    void setPolicy(const std::string &name, const FaultPolicy &policy);

    /**
     * Apply a ZATEL_FAULTS-syntax spec ("a=always,b=nth:3").
     * @throws std::invalid_argument on syntax errors or site names
     *         outside knownSiteNames() (typo protection).
     */
    void configure(const std::string &spec);

    /** Set every site's policy to Never. */
    void disarmAll();

    /** disarmAll() plus zeroed hit/fire counts — restores the
     *  pristine state between tests. */
    void resetForTest();

    /** True when at least one site has an armed policy. */
    bool
    anyArmed() const
    {
        return anyArmed_.load(std::memory_order_relaxed);
    }

    /** Names of every registered site (catalog + ad-hoc), sorted. */
    std::vector<std::string> siteNames() const;

  private:
    FaultSite *siteLocked(const std::string &name);
    void recomputeArmedLocked();

    mutable std::mutex mutex_;
    /** unique_ptr for pointer stability across registrations. */
    std::vector<std::unique_ptr<FaultSite>> sites_;
    std::atomic<bool> anyArmed_{false};
};

/**
 * Deterministic retry backoff: attempt 1 waits 1ms, doubling per
 * attempt, capped at 16ms. Pure function — callers sleep for the
 * returned duration; results never depend on the wall clock.
 */
uint64_t retryBackoffMicros(uint32_t attempt);

/** Sleep for retryBackoffMicros(attempt). */
void retryBackoffSleep(uint32_t attempt);

/** Resolve @p name against the global registry once per call site. */
#define ZATEL_FAULT_SITE(name)                                              \
    ([]() -> ::zatel::FaultSite * {                                         \
        static ::zatel::FaultSite *const zatel_fault_site =                 \
            ::zatel::FaultRegistry::global().site(name);                    \
        return zatel_fault_site;                                            \
    }())

/** Throw FaultInjectedError if @p name's policy says so. */
#define ZATEL_INJECT_FAULT(name)                                            \
    do {                                                                    \
        if (ZATEL_FAULT_SITE(name)->shouldFire())                           \
            throw ::zatel::FaultInjectedError(name);                        \
    } while (0)

/** Keyed variant: @p key selects the failing subset under prob:. */
#define ZATEL_INJECT_FAULT_KEYED(name, key)                                 \
    do {                                                                    \
        if (ZATEL_FAULT_SITE(name)->shouldFire(                             \
                static_cast<uint64_t>(key)))                                \
            throw ::zatel::FaultInjectedError(name);                        \
    } while (0)

} // namespace zatel

#endif // ZATEL_UTIL_FAULT_INJECTION_HH
