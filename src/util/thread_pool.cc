#include "util/thread_pool.hh"

#include <algorithm>

namespace zatel
{

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    taskReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(packaged));
        ++inFlight_;
    }
    taskReady_.notify_one();
    return future;
}

void
ThreadPool::waitAll()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::parallelFor(size_t count, const std::function<void(size_t)> &body)
{
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (size_t i = 0; i < count; ++i)
        futures.push_back(submit([&body, i] { body(i); }));
    for (auto &future : futures)
        future.get();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock,
                            [this] { return shutdown_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                // shutdown_ must be set; exit.
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace zatel
