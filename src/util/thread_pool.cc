#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/metrics_registry.hh"
#include "obs/trace_recorder.hh"

namespace zatel
{

namespace
{

/** Lazily-registered pool metrics (docs/OBSERVABILITY.md catalogue).
 *  Registration happens once; the handles stay valid forever and every
 *  update is a no-op while the global registry is disabled. */
struct PoolMetrics
{
    obs::Counter *tasksTotal;
    obs::Gauge *queueDepth;
    obs::Histogram *waitSeconds;
    obs::Histogram *runSeconds;
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics metrics = [] {
        auto &reg = obs::MetricsRegistry::global();
        PoolMetrics m;
        m.tasksTotal =
            reg.counter("zatel_pool_tasks_total",
                        "Tasks executed by ThreadPool workers");
        m.queueDepth = reg.gauge("zatel_pool_queue_depth",
                                 "Tasks queued but not yet started");
        m.waitSeconds = reg.histogram(
            "zatel_pool_task_wait_seconds",
            "Time a task spent queued before a worker picked it up",
            obs::Histogram::timeBuckets());
        m.runSeconds =
            reg.histogram("zatel_pool_task_run_seconds",
                          "Execution wall-time per pool task",
                          obs::Histogram::timeBuckets());
        return m;
    }();
    return metrics;
}

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         since)
        .count();
}

/** Process-wide pool id source ("pool<id>-w<i>" trace thread names). */
std::atomic<uint32_t> g_nextPoolId{0};

} // namespace

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    poolId_ = g_nextPoolId.fetch_add(1, std::memory_order_relaxed);
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    taskReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    QueuedTask queued;
    queued.work = std::packaged_task<void()>(std::move(task));
    std::future<void> future = queued.work.get_future();
    if (obs::metricsEnabled()) {
        queued.enqueued = std::chrono::steady_clock::now();
        queued.timed = true;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_) {
            // Workers may already have exited; an enqueued task would
            // never run and its future would never become ready.
            throw std::runtime_error(
                "ThreadPool::submit called during shutdown");
        }
        tasks_.push(std::move(queued));
        ++inFlight_;
        poolMetrics().queueDepth->set(
            static_cast<double>(tasks_.size()));
    }
    taskReady_.notify_one();
    return future;
}

void
ThreadPool::waitAll()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.size();
}

size_t
ThreadPool::activeWorkers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return active_;
}

void
ThreadPool::parallelFor(size_t count, const std::function<void(size_t)> &body)
{
    parallelForChunked(count, 1, body);
}

void
ThreadPool::parallelForChunked(size_t count, size_t grain,
                               const std::function<void(size_t)> &body)
{
    if (count == 0)
        return;
    if (grain == 0)
        grain = std::max<size_t>(1, count / (4 * workers_.size()));

    /** Join state shared between the chunk tasks and the caller. */
    struct LoopState
    {
        std::mutex mutex;
        std::condition_variable done;
        size_t remaining = 0;
        std::exception_ptr firstError;
    };
    auto state = std::make_shared<LoopState>();
    const size_t num_chunks = (count + grain - 1) / grain;
    state->remaining = num_chunks;

    size_t submitted = 0;
    std::exception_ptr submit_error;
    for (size_t c = 0; c < num_chunks; ++c) {
        const size_t begin = c * grain;
        const size_t end = std::min(count, begin + grain);
        // body is captured by reference: this function does not return
        // until every chunk has completed, so the reference stays valid.
        try {
            submit([state, begin, end, &body] {
                std::exception_ptr error;
                try {
                    for (size_t i = begin; i < end; ++i)
                        body(i);
                } catch (...) {
                    error = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(state->mutex);
                if (error && !state->firstError)
                    state->firstError = error;
                if (--state->remaining == 0)
                    state->done.notify_all();
            });
        } catch (...) {
            // submit() refused (e.g. shutdown began). The chunks that
            // never made it into the queue will never decrement
            // `remaining`; forget them now so the join below cannot
            // wait forever, but DO still join the submitted ones —
            // they reference `body` and must finish before we unwind.
            submit_error = std::current_exception();
            break;
        }
        ++submitted;
    }
    if (submitted < num_chunks) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->remaining -= num_chunks - submitted;
        if (state->remaining == 0)
            state->done.notify_all();
    }

    // Wait for completion, helping to drain the queue so that nested
    // parallel loops issued from inside pool tasks cannot deadlock even
    // on a single-worker pool.
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(state->mutex);
            if (state->remaining == 0)
                break;
        }
        if (runOneTask())
            continue;
        // Queue empty but chunks still running on other threads: block
        // until the last chunk signals completion.
        std::unique_lock<std::mutex> lock(state->mutex);
        state->done.wait(lock, [&state] { return state->remaining == 0; });
        break;
    }

    // A refused submit outranks a body error: it means part of the
    // iteration space never ran at all.
    if (submit_error)
        std::rethrow_exception(submit_error);
    if (state->firstError)
        std::rethrow_exception(state->firstError);
}

bool
ThreadPool::runOneTask()
{
    QueuedTask task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return false;
        task = std::move(tasks_.front());
        tasks_.pop();
        ++active_;
        poolMetrics().queueDepth->set(
            static_cast<double>(tasks_.size()));
    }
    // Task timing is sampled only when metrics were enabled at submit
    // time; otherwise the clock is never read on this path.
    if (task.timed)
        poolMetrics().waitSeconds->observe(elapsedSeconds(task.enqueued));
    const auto started = task.timed ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
    // packaged_task stores a thrown exception in the task's future, so
    // a throwing task can never unwind (and kill) a worker thread.
    task.work();
    if (task.timed)
        poolMetrics().runSeconds->observe(elapsedSeconds(started));
    poolMetrics().tasksTotal->inc();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        --inFlight_;
        if (inFlight_ == 0)
            allDone_.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(size_t worker_index)
{
    if (obs::tracingEnabled()) {
        obs::TraceRecorder::global().setThreadName(
            "pool" + std::to_string(poolId_) + "-w" +
            std::to_string(worker_index));
    }
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock,
                            [this] { return shutdown_ || !tasks_.empty(); });
            if (shutdown_ && tasks_.empty()) {
                // Drained; exit.
                return;
            }
        }
        // The queue may have been drained by a helping thread between
        // the wait and here; runOneTask simply finds it empty then.
        runOneTask();
    }
}

} // namespace zatel
