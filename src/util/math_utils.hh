/**
 * @file
 * Scalar and statistics helpers shared across the Zatel pipeline.
 */

#ifndef ZATEL_UTIL_MATH_UTILS_HH
#define ZATEL_UTIL_MATH_UTILS_HH

#include <cstdint>
#include <vector>

namespace zatel
{

/** Greatest common divisor; gcd(0, x) == x. */
uint64_t gcd(uint64_t a, uint64_t b);

/** gcd over a list; returns 0 for an empty list. */
uint64_t gcdAll(const std::vector<uint64_t> &values);

/** Clamp @p value into [lo, hi]. @pre lo <= hi. */
double clampDouble(double value, double lo, double hi);

/** Integer ceiling division. @pre divisor > 0. */
uint64_t ceilDiv(uint64_t dividend, uint64_t divisor);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &values);

/** Population standard deviation; 0 for fewer than 2 samples. */
double stddev(const std::vector<double> &values);

/** Median (interpolated for even counts); 0 for an empty vector. */
double median(std::vector<double> values);

/** Minimum / maximum; 0 for an empty vector. */
double minOf(const std::vector<double> &values);
double maxOf(const std::vector<double> &values);

/**
 * Relative absolute error |predicted - actual| / |actual| in percent.
 * Falls back to absolute error when |actual| is ~0 to stay finite.
 */
double relativeErrorPct(double predicted, double actual);

/**
 * Mean absolute (relative) error in percent across paired samples.
 * @pre predicted.size() == actual.size().
 */
double maePct(const std::vector<double> &predicted,
              const std::vector<double> &actual);

/** True when |a - b| <= tol. */
bool nearlyEqual(double a, double b, double tol = 1e-9);

} // namespace zatel

#endif // ZATEL_UTIL_MATH_UTILS_HH
