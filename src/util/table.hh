/**
 * @file
 * ASCII table printer used by benches to render paper-style tables.
 */

#ifndef ZATEL_UTIL_TABLE_HH
#define ZATEL_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace zatel
{

/**
 * Fixed-column ASCII table with a header row and separator rules.
 *
 * Columns auto-size to the widest cell. Numeric cells are right aligned;
 * everything else left aligns.
 */
class AsciiTable
{
  public:
    explicit AsciiTable(std::vector<std::string> header);

    /** Append a data row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal rule before the next added row. */
    void addRule();

    /** Render the table. */
    std::string toString() const;

    /** Helper: fixed-precision formatting. */
    static std::string num(double value, int precision = 2);

    /** Helper: percent formatting with a trailing '%'. */
    static std::string pct(double value, int precision = 1);

  private:
    std::vector<std::string> header_;
    /** Row text; an empty optional-like marker row means "rule". */
    std::vector<std::vector<std::string>> rows_;
    std::vector<bool> isRule_;
};

} // namespace zatel

#endif // ZATEL_UTIL_TABLE_HH
