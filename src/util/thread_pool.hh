/**
 * @file
 * Fixed-size thread pool used by Zatel's group runner to execute the K
 * downscaled simulator instances concurrently (Section III-A step 6).
 */

#ifndef ZATEL_UTIL_THREAD_POOL_HH
#define ZATEL_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace zatel
{

/**
 * A simple fixed-size worker pool.
 *
 * Tasks are std::function<void()>; submit() returns a future for join /
 * exception propagation. The destructor drains outstanding work.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 selects hardware_concurrency().
     */
    explicit ThreadPool(size_t num_threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; the future resolves when it completes. */
    std::future<void> submit(std::function<void()> task);

    /** Block until every submitted task has completed. */
    void waitAll();

    size_t workerCount() const { return workers_.size(); }

    /**
     * Run @p body(i) for i in [0, count) across the pool and wait.
     * Exceptions from tasks propagate out of the call.
     */
    void parallelFor(size_t count, const std::function<void(size_t)> &body);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::packaged_task<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    size_t inFlight_ = 0;
    bool shutdown_ = false;
};

} // namespace zatel

#endif // ZATEL_UTIL_THREAD_POOL_HH
