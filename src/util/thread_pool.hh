/**
 * @file
 * Fixed-size thread pool used by Zatel's group runner to execute the K
 * downscaled simulator instances concurrently (Section III-A step 6).
 *
 * Correctness contract (exercised by tests/test_thread_pool_stress.cc and
 * verified under TSan, see docs/CORRECTNESS.md):
 *  - submit() after shutdown has begun throws instead of silently
 *    enqueuing a task that would never run (the future would hang).
 *  - parallelFor()/parallelForChunked() may be called from inside a pool
 *    task (nested parallelism): the calling thread helps execute queued
 *    tasks while it waits, so a pool of any size cannot deadlock on
 *    nested loops.
 *  - Exceptions thrown by loop bodies are captured and the first one is
 *    rethrown on the calling thread after every chunk has finished.
 *  - A throwing task never terminates a worker thread: every task runs
 *    inside a packaged_task, which stores the exception in the task's
 *    future instead of letting it unwind the worker loop.
 *  - If submit() throws partway through parallelForChunked's fan-out
 *    (shutdown raced the loop), the already-submitted chunks are still
 *    joined — the body reference stays valid for their whole run — and
 *    the submit failure is rethrown; waiters cannot hang on chunks
 *    that were never enqueued.
 */

#ifndef ZATEL_UTIL_THREAD_POOL_HH
#define ZATEL_UTIL_THREAD_POOL_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace zatel
{

/**
 * A simple fixed-size worker pool.
 *
 * Tasks are std::function<void()>; submit() returns a future for join /
 * exception propagation. The destructor drains outstanding work.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 selects hardware_concurrency().
     */
    explicit ThreadPool(size_t num_threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task; the future resolves when it completes.
     * @throws std::runtime_error if shutdown has already begun (a task
     *         enqueued then would never run and its future would hang).
     */
    std::future<void> submit(std::function<void()> task);

    /** Block until every submitted task has completed. */
    void waitAll();

    size_t workerCount() const { return workers_.size(); }

    /**
     * Number of tasks queued but not yet started. The campaign scheduler
     * uses this for load-aware dispatch: it keeps the pool queue shallow
     * so a late-arriving high-priority job is not buried behind a deep
     * FIFO backlog (see src/service/scheduler.cc).
     */
    size_t queueDepth() const;

    /** Number of tasks currently executing on a worker (or a helping
     *  caller inside parallelForChunked). */
    size_t activeWorkers() const;

    /**
     * Run @p body(i) for i in [0, count) across the pool and wait.
     * Exceptions from tasks propagate out of the call. Equivalent to
     * parallelForChunked(count, 1, body).
     */
    void parallelFor(size_t count, const std::function<void(size_t)> &body);

    /**
     * Range-chunked parallel loop: [0, count) is split into chunks of
     * @p grain consecutive indices and one pool task is submitted per
     * chunk, cutting queue-lock contention from O(count) to
     * O(count / grain). @p grain == 0 selects an automatic grain of
     * roughly count / (4 x workers), so small counts degrade to one
     * task per index (maximal load balancing) and huge counts submit a
     * bounded number of tasks.
     *
     * Safe to call from inside a pool task: the caller helps drain the
     * queue while waiting. The first exception thrown by @p body is
     * rethrown here after all chunks finish.
     */
    void parallelForChunked(size_t count, size_t grain,
                            const std::function<void(size_t)> &body);

    /** Process-unique id of this pool; names its workers in traces
     *  ("pool<id>-w<i>", see docs/OBSERVABILITY.md). */
    uint32_t poolId() const { return poolId_; }

  private:
    /** A queued task plus its enqueue timestamp (only sampled while
     *  metrics are enabled; `timed` false otherwise). */
    struct QueuedTask
    {
        std::packaged_task<void()> work;
        std::chrono::steady_clock::time_point enqueued{};
        bool timed = false;
    };

    void workerLoop(size_t worker_index);

    /**
     * Pop and execute one queued task on the calling thread.
     * @return false when the queue was empty.
     */
    bool runOneTask();

    std::vector<std::thread> workers_;
    std::queue<QueuedTask> tasks_;
    mutable std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    size_t inFlight_ = 0;
    size_t active_ = 0;
    bool shutdown_ = false;
    uint32_t poolId_ = 0;
};

} // namespace zatel

#endif // ZATEL_UTIL_THREAD_POOL_HH
