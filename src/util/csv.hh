/**
 * @file
 * Minimal CSV writer used by benches to dump reproducible result series.
 */

#ifndef ZATEL_UTIL_CSV_HH
#define ZATEL_UTIL_CSV_HH

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace zatel
{

/**
 * Row-oriented CSV writer with RFC-4180 style quoting.
 *
 * Rows are buffered and flushed on writeTo()/toString() so a bench can
 * build its output before deciding where it goes.
 */
class CsvWriter
{
  public:
    /** Set the header row. */
    void setHeader(const std::vector<std::string> &columns);

    /** Append a fully formed row of cells. */
    void addRow(const std::vector<std::string> &cells);

    /** Convenience: append a row of doubles (formatted with %.6g). */
    void addNumericRow(const std::vector<double> &cells);

    /** Serialize all buffered rows. */
    std::string toString() const;

    /**
     * Write to @p path.
     * @return true on success.
     */
    bool writeTo(const std::string &path) const;

    size_t rowCount() const { return rows_.size(); }

    /** Quote a single cell per RFC-4180 when needed. */
    static std::string quoteCell(const std::string &cell);

    /** Format a double compactly. */
    static std::string formatDouble(double value);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace zatel

#endif // ZATEL_UTIL_CSV_HH
