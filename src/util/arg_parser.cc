#include "util/arg_parser.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace zatel
{

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    Spec spec;
    spec.help = help;
    spec.isFlag = true;
    specs_.emplace_back(name, spec);
}

void
ArgParser::addOption(const std::string &name, const std::string &fallback,
                     const std::string &help)
{
    Spec spec;
    spec.help = help;
    spec.fallback = fallback;
    specs_.emplace_back(name, spec);
}

void
ArgParser::addRequired(const std::string &name, const std::string &help)
{
    Spec spec;
    spec.help = help;
    spec.required = true;
    specs_.emplace_back(name, spec);
}

const ArgParser::Spec *
ArgParser::specOf(const std::string &name) const
{
    for (const auto &[spec_name, spec] : specs_) {
        if (spec_name == name)
            return &spec;
    }
    return nullptr;
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    values_.clear();
    positional_.clear();
    error_.clear();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }

        std::string name = arg.substr(2);
        std::string value;
        bool has_inline_value = false;
        size_t eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline_value = true;
        }

        const Spec *spec = specOf(name);
        if (!spec) {
            error_ = "unknown option --" + name;
            return false;
        }
        if (spec->isFlag) {
            if (has_inline_value) {
                error_ = "flag --" + name + " takes no value";
                return false;
            }
            values_[name].push_back("1");
            continue;
        }
        if (!has_inline_value) {
            if (i + 1 >= argc) {
                error_ = "option --" + name + " needs a value";
                return false;
            }
            value = argv[++i];
        }
        values_[name].push_back(value);
    }

    for (const auto &[name, spec] : specs_) {
        if (spec.required && values_.count(name) == 0) {
            error_ = "missing required option --" + name;
            return false;
        }
    }
    return true;
}

bool
ArgParser::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

const std::string &
ArgParser::get(const std::string &name) const
{
    auto it = values_.find(name);
    if (it != values_.end())
        return it->second.back();
    const Spec *spec = specOf(name);
    ZATEL_ASSERT(spec != nullptr, "unregistered option '", name, "'");
    return spec->fallback;
}

std::vector<std::string>
ArgParser::getList(const std::string &name) const
{
    auto it = values_.find(name);
    if (it != values_.end())
        return it->second;
    const Spec *spec = specOf(name);
    ZATEL_ASSERT(spec != nullptr, "unregistered option '", name, "'");
    if (spec->fallback.empty())
        return {};
    return {spec->fallback};
}

int64_t
ArgParser::getInt(const std::string &name) const
{
    const std::string &text = get(name);
    char *end = nullptr;
    errno = 0;
    int64_t value = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0')
        fatal("option --", name, " expects an integer, got '", text, "'");
    if (errno == ERANGE)
        fatal("option --", name, " overflows a 64-bit integer: '", text,
              "'");
    return value;
}

int64_t
ArgParser::getIntInRange(const std::string &name, int64_t lo,
                         int64_t hi) const
{
    const int64_t value = getInt(name);
    if (value < lo || value > hi) {
        fatal("option --", name, " must be in [", lo, ", ", hi,
              "], got ", value);
    }
    return value;
}

int64_t
ArgParser::getPositiveInt(const std::string &name) const
{
    const int64_t value = getInt(name);
    if (value < 1)
        fatal("option --", name, " must be >= 1, got ", value);
    return value;
}

uint16_t
ArgParser::getPortNumber(const std::string &name, bool allowZero) const
{
    const int64_t value = getIntInRange(name, allowZero ? 0 : 1, 65535);
    return static_cast<uint16_t>(value);
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string &text = get(name);
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("option --", name, " expects a number, got '", text, "'");
    return value;
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return has(name);
}

std::string
ArgParser::usage() const
{
    std::ostringstream oss;
    oss << "usage: " << program_ << " [options]\n";
    if (!description_.empty())
        oss << description_ << "\n";
    oss << "options:\n";
    for (const auto &[name, spec] : specs_) {
        oss << "  --" << name;
        if (!spec.isFlag)
            oss << " <value>";
        oss << "  " << spec.help;
        if (!spec.fallback.empty())
            oss << " (default: " << spec.fallback << ")";
        if (spec.required)
            oss << " (required)";
        oss << "\n";
    }
    return oss.str();
}

} // namespace zatel
