#include "util/csv.hh"

#include <cstdio>

namespace zatel
{

void
CsvWriter::setHeader(const std::vector<std::string> &columns)
{
    header_ = columns;
}

void
CsvWriter::addRow(const std::vector<std::string> &cells)
{
    rows_.push_back(cells);
}

void
CsvWriter::addNumericRow(const std::vector<double> &cells)
{
    std::vector<std::string> row;
    row.reserve(cells.size());
    for (double v : cells)
        row.push_back(formatDouble(v));
    rows_.push_back(std::move(row));
}

std::string
CsvWriter::quoteCell(const std::string &cell)
{
    bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
CsvWriter::formatDouble(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

std::string
CsvWriter::toString() const
{
    std::ostringstream oss;
    auto emit_row = [&oss](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                oss << ',';
            oss << quoteCell(row[i]);
        }
        oss << '\n';
    };
    if (!header_.empty())
        emit_row(header_);
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

bool
CsvWriter::writeTo(const std::string &path) const
{
    // Failure is the bool return; callers on fallible paths (the
    // artifact cache) already run under their own fault sites
    // (artifact.cache.write), which inject above this helper.
    // zatel-lint: allow(fault-site-coverage): bool-returning helper
    std::ofstream out(path);
    if (!out)
        return false;
    out << toString();
    return static_cast<bool>(out);
}

} // namespace zatel
