#include "obs/validate.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.hh"

namespace zatel::obs
{

namespace
{

void
checkTraceEvent(const JsonValue &event, size_t index,
                std::vector<std::string> &problems)
{
    auto complain = [&problems, index](const std::string &what) {
        problems.push_back("traceEvents[" + std::to_string(index) +
                           "]: " + what);
    };
    if (!event.isObject()) {
        complain("not an object");
        return;
    }
    if (!event.has("ph") || !event.at("ph").isString()) {
        complain("missing string 'ph'");
        return;
    }
    const std::string &ph = event.at("ph").stringValue;
    for (const char *field : {"pid", "tid"}) {
        if (!event.has(field) || !event.at(field).isNumber())
            complain(std::string("missing numeric '") + field + "'");
    }
    if (!event.has("name") || !event.at("name").isString())
        complain("missing string 'name'");
    if (ph == "X") {
        if (!event.has("ts") || !event.at("ts").isNumber())
            complain("X event missing numeric 'ts'");
        if (!event.has("dur") || !event.at("dur").isNumber())
            complain("X event missing numeric 'dur'");
        else if (event.at("dur").numberValue < 0.0)
            complain("X event has negative 'dur'");
    } else if (ph == "M") {
        if (!event.has("args") || !event.at("args").isObject())
            complain("M event missing object 'args'");
    } else {
        complain("unexpected phase '" + ph + "'");
    }
}

} // namespace

std::vector<std::string>
validateChromeTrace(const std::string &text)
{
    std::vector<std::string> problems;
    JsonValue root;
    try {
        root = parseJson(text);
    } catch (const JsonError &error) {
        problems.push_back(std::string("parse error: ") + error.what());
        return problems;
    }
    if (!root.isObject()) {
        problems.push_back("top-level value is not an object");
        return problems;
    }
    if (!root.has("traceEvents") || !root.at("traceEvents").isArray()) {
        problems.push_back("missing 'traceEvents' array");
        return problems;
    }
    const auto &events = root.at("traceEvents").arrayValue;
    for (size_t i = 0; i < events.size(); ++i)
        checkTraceEvent(events[i], i, problems);
    return problems;
}

namespace
{

struct PromSample
{
    std::string name;
    std::string labels; ///< Raw text between '{' and '}', may be empty.
    double value = 0.0;
    size_t line = 0;
};

bool
parsePromSample(const std::string &line, size_t lineNo,
                PromSample &sample, std::string &problem)
{
    size_t pos = 0;
    auto nameChar = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == ':';
    };
    while (pos < line.size() && nameChar(line[pos]))
        ++pos;
    if (pos == 0) {
        problem = "line " + std::to_string(lineNo) +
                  ": sample does not start with a metric name";
        return false;
    }
    sample.name = line.substr(0, pos);
    sample.line = lineNo;
    if (pos < line.size() && line[pos] == '{') {
        size_t close = line.find('}', pos);
        if (close == std::string::npos) {
            problem = "line " + std::to_string(lineNo) +
                      ": unterminated label set";
            return false;
        }
        sample.labels = line.substr(pos + 1, close - pos - 1);
        pos = close + 1;
    }
    if (pos >= line.size() || line[pos] != ' ') {
        problem = "line " + std::to_string(lineNo) +
                  ": expected ' ' before sample value";
        return false;
    }
    ++pos;
    const std::string valueText = line.substr(pos);
    if (valueText == "+Inf") {
        sample.value = 0.0;
        return true;
    }
    char *end = nullptr;
    sample.value = std::strtod(valueText.c_str(), &end);
    if (end == nullptr || *end != '\0' || valueText.empty()) {
        problem = "line " + std::to_string(lineNo) +
                  ": unparseable sample value '" + valueText + "'";
        return false;
    }
    return true;
}

/** Family a sample belongs to: strip histogram sample suffixes. */
std::string
familyOf(const std::string &name)
{
    for (const char *suffix : {"_bucket", "_sum", "_count"}) {
        const std::string s(suffix);
        if (name.size() > s.size() &&
            name.compare(name.size() - s.size(), s.size(), s) == 0)
            return name.substr(0, name.size() - s.size());
    }
    return name;
}

/** The `le` value in a rendered label string, or "" when absent. */
std::string
leOf(const std::string &labels)
{
    size_t pos = 0;
    while (pos < labels.size()) {
        size_t eq = labels.find("=\"", pos);
        if (eq == std::string::npos)
            return "";
        std::string key = labels.substr(pos, eq - pos);
        size_t close = labels.find('"', eq + 2);
        if (close == std::string::npos)
            return "";
        if (key == "le")
            return labels.substr(eq + 2, close - eq - 2);
        pos = close + 1;
        if (pos < labels.size() && labels[pos] == ',')
            ++pos;
    }
    return "";
}

/** Label string with the `le` pair removed: histogram series key. */
std::string
stripLe(const std::string &labels)
{
    std::string out;
    size_t pos = 0;
    while (pos < labels.size()) {
        size_t eq = labels.find("=\"", pos);
        if (eq == std::string::npos)
            break;
        size_t close = labels.find('"', eq + 2);
        if (close == std::string::npos)
            break;
        std::string pair = labels.substr(pos, close + 1 - pos);
        if (labels.compare(pos, eq - pos, "le") != 0) {
            if (!out.empty())
                out += ",";
            out += pair;
        }
        pos = close + 1;
        if (pos < labels.size() && labels[pos] == ',')
            ++pos;
    }
    return out;
}

} // namespace

std::vector<std::string>
validatePrometheusText(const std::string &text)
{
    std::vector<std::string> problems;
    std::map<std::string, std::string> familyType; ///< name -> TYPE
    std::set<std::string> familyHelp;
    std::vector<PromSample> samples;

    std::istringstream in(text);
    std::string line;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        if (line.rfind("# HELP ", 0) == 0) {
            std::istringstream comment(line.substr(7));
            std::string name;
            comment >> name;
            familyHelp.insert(name);
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream comment(line.substr(7));
            std::string name;
            std::string type;
            comment >> name >> type;
            if (type != "counter" && type != "gauge" &&
                type != "histogram")
                problems.push_back("line " + std::to_string(lineNo) +
                                   ": unknown TYPE '" + type + "'");
            if (familyType.count(name) != 0)
                problems.push_back("line " + std::to_string(lineNo) +
                                   ": duplicate TYPE for '" + name +
                                   "'");
            familyType[name] = type;
            continue;
        }
        if (line[0] == '#')
            continue;
        PromSample sample;
        std::string problem;
        if (!parsePromSample(line, lineNo, sample, problem)) {
            problems.push_back(problem);
            continue;
        }
        samples.push_back(std::move(sample));
    }

    // Every sample's family must have TYPE and HELP comments.
    // Histogram invariants: cumulative buckets, +Inf == _count.
    std::map<std::string, uint64_t> lastBucket; ///< series -> last value
    std::map<std::string, bool> sawInf;
    std::map<std::string, double> infValue;
    std::map<std::string, double> countValue;
    for (const PromSample &sample : samples) {
        const std::string family = familyOf(sample.name);
        auto typeIt = familyType.find(family);
        // A metric name like foo_count could also be a plain counter;
        // accept either its own TYPE or its histogram family's.
        if (typeIt == familyType.end() &&
            familyType.count(sample.name) != 0)
            typeIt = familyType.find(sample.name);
        if (typeIt == familyType.end()) {
            problems.push_back("line " + std::to_string(sample.line) +
                               ": sample '" + sample.name +
                               "' has no TYPE comment");
            continue;
        }
        if (familyHelp.count(typeIt->first) == 0)
            problems.push_back("line " + std::to_string(sample.line) +
                               ": family '" + typeIt->first +
                               "' has no HELP comment");
        if (typeIt->second != "histogram")
            continue;

        const std::string seriesKey =
            family + "|" + stripLe(sample.labels);
        if (sample.name == family + "_bucket") {
            const std::string le = leOf(sample.labels);
            if (le.empty()) {
                problems.push_back("line " +
                                   std::to_string(sample.line) +
                                   ": _bucket sample missing 'le'");
                continue;
            }
            auto last = lastBucket.find(seriesKey);
            if (last != lastBucket.end() &&
                sample.value < static_cast<double>(last->second))
                problems.push_back("line " +
                                   std::to_string(sample.line) +
                                   ": non-monotonic _bucket series '" +
                                   family + "'");
            lastBucket[seriesKey] =
                static_cast<uint64_t>(sample.value);
            if (le == "+Inf") {
                sawInf[seriesKey] = true;
                infValue[seriesKey] = sample.value;
            }
        } else if (sample.name == family + "_count") {
            countValue[seriesKey] = sample.value;
        }
    }
    for (const auto &[seriesKey, count] : countValue) {
        auto inf = infValue.find(seriesKey);
        if (sawInf.find(seriesKey) == sawInf.end()) {
            problems.push_back("histogram series '" + seriesKey +
                               "' lacks a +Inf bucket");
        } else if (inf != infValue.end() && inf->second < count) {
            problems.push_back("histogram series '" + seriesKey +
                               "' +Inf bucket below _count");
        }
    }
    return problems;
}

std::vector<std::string>
validateMetricsJson(const std::string &text)
{
    std::vector<std::string> problems;
    JsonValue root;
    try {
        root = parseJson(text);
    } catch (const JsonError &error) {
        problems.push_back(std::string("parse error: ") + error.what());
        return problems;
    }
    if (!root.isObject() || !root.has("metrics") ||
        !root.at("metrics").isArray()) {
        problems.push_back("missing top-level 'metrics' array");
        return problems;
    }
    const auto &metrics = root.at("metrics").arrayValue;
    for (size_t i = 0; i < metrics.size(); ++i) {
        auto complain = [&problems, i](const std::string &what) {
            problems.push_back("metrics[" + std::to_string(i) +
                               "]: " + what);
        };
        const JsonValue &entry = metrics[i];
        if (!entry.isObject()) {
            complain("not an object");
            continue;
        }
        if (!entry.has("name") || !entry.at("name").isString()) {
            complain("missing string 'name'");
            continue;
        }
        if (!entry.has("kind") || !entry.at("kind").isString()) {
            complain("missing string 'kind'");
            continue;
        }
        if (!entry.has("labels") || !entry.at("labels").isObject())
            complain("missing object 'labels'");
        const std::string &kind = entry.at("kind").stringValue;
        if (kind == "counter" || kind == "gauge") {
            if (!entry.has("value") || !entry.at("value").isNumber())
                complain(kind + " missing numeric 'value'");
        } else if (kind == "histogram") {
            for (const char *field : {"count", "sum"}) {
                if (!entry.has(field) || !entry.at(field).isNumber())
                    complain(std::string("histogram missing numeric '") +
                             field + "'");
            }
            if (!entry.has("bounds") || !entry.at("bounds").isArray() ||
                !entry.has("buckets") ||
                !entry.at("buckets").isArray()) {
                complain("histogram missing bounds/buckets arrays");
            } else if (entry.at("buckets").arrayValue.size() !=
                       entry.at("bounds").arrayValue.size() + 1) {
                complain("histogram buckets must be bounds+1 long");
            }
        } else {
            complain("unknown kind '" + kind + "'");
        }
    }
    return problems;
}

} // namespace zatel::obs
