/**
 * @file
 * MetricsRegistry: named counters / gauges / histograms with
 * Prometheus-text and JSON export.
 *
 * Design goals (docs/OBSERVABILITY.md):
 *  - Hot-path increments are lock-free: Counter::inc() is one relaxed
 *    atomic load (the registry's enabled flag) plus one relaxed
 *    fetch_add. Disabled registries cost the load + branch only.
 *  - Instrumentation sites hold Counter / Gauge / Histogram pointers
 *    resolved once (function-local static or member); handles stay
 *    valid for the registry's lifetime — resetValues() zeroes values
 *    but never removes series.
 *  - Registration (counter()/gauge()/histogram()) takes the registry
 *    mutex and may allocate; do it at setup time, not per event.
 *
 * Metric names follow Prometheus conventions: snake_case, `_total`
 * suffix for counters, base-unit suffixes (`_seconds`, `_bytes`).
 * Labels are ordered key/value pairs; one family (name) may carry many
 * label sets, each its own independently-updated series.
 *
 * Usage:
 *
 *   auto &reg = obs::MetricsRegistry::global();
 *   reg.setEnabled(true);
 *   obs::Counter *hits =
 *       reg.counter("zatel_cache_hits_total", "Cache hits",
 *                   {{"kind", "scene_pack"}});
 *   hits->inc();
 *   obs::Histogram *lat = reg.histogram(
 *       "zatel_stage_seconds", "Stage latency",
 *       obs::Histogram::timeBuckets(), {{"stage", "profile"}});
 *   lat->observe(0.0123);
 *   reg.writeTo("metrics.prom");   // or .json
 */

#ifndef ZATEL_OBS_METRICS_REGISTRY_HH
#define ZATEL_OBS_METRICS_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace zatel::obs
{

/** Raised on registration misuse (duplicate name with different kind
 *  or buckets, invalid metric name, bad bucket layout). */
class MetricsError : public std::runtime_error
{
  public:
    explicit MetricsError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Ordered label key/value pairs ({{"kind","scene_pack"}, ...}). */
using Labels = std::vector<std::pair<std::string, std::string>>;

/**
 * Monotonically increasing event count. inc()/add() are lock-free and
 * no-ops while the owning registry is disabled.
 */
class Counter
{
  public:
    void
    inc(uint64_t delta = 1)
    {
        if (!enabled_->load(std::memory_order_relaxed))
            return;
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    explicit Counter(const std::atomic<bool> *enabled) : enabled_(enabled)
    {
    }

    const std::atomic<bool> *enabled_;
    std::atomic<uint64_t> value_{0};
};

/**
 * A value that can go up and down (queue depth, bytes resident).
 * set()/add() are lock-free and no-ops while the registry is disabled.
 */
class Gauge
{
  public:
    void
    set(double value)
    {
        if (!enabled_->load(std::memory_order_relaxed))
            return;
        value_.store(value, std::memory_order_relaxed);
    }

    /** Atomic add (CAS loop; contended adds all land). */
    void add(double delta);

    void
    sub(double delta)
    {
        add(-delta);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    explicit Gauge(const std::atomic<bool> *enabled) : enabled_(enabled)
    {
    }

    const std::atomic<bool> *enabled_;
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram with Prometheus `le` (less-or-equal)
 * semantics: bucket[i] counts observations <= upperBounds[i]; an
 * implicit +Inf bucket catches the rest. observe() is lock-free.
 */
class Histogram
{
  public:
    /** Strictly increasing finite upper bounds (the +Inf bucket is
     *  implicit; do not include it). */
    void observe(double value);

    /** Non-cumulative per-bucket counts; last entry is the implicit
     *  +Inf bucket (observations above every bound). */
    std::vector<uint64_t> bucketCounts() const;

    const std::vector<double> &
    upperBounds() const
    {
        return bounds_;
    }

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Latency buckets: 100us .. 100s, roughly 1-2.5-5 per decade. */
    static std::vector<double> timeBuckets();
    /** Cycle-count buckets: 1k .. 1e9, powers of ten with midpoints. */
    static std::vector<double> cycleBuckets();

  private:
    friend class MetricsRegistry;
    Histogram(const std::atomic<bool> *enabled,
              std::vector<double> bounds);

    const std::atomic<bool> *enabled_;
    std::vector<double> bounds_;
    /** One atomic per finite bound plus the +Inf bucket. */
    std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * Owner of all metric series. Thread-safe. Most callers use the
 * process-wide global() instance; tests construct their own.
 *
 * counter()/gauge()/histogram() find-or-register: the first call for a
 * (name, labels) pair creates the series, later calls return the same
 * pointer. Re-registering a name as a different kind (or a histogram
 * with different buckets) throws MetricsError. Returned pointers stay
 * valid until the registry is destroyed.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry used by the built-in instrumentation. */
    static MetricsRegistry &global();

    /** Turn recording on/off. Disabled (the default) makes every
     *  inc/set/observe a load + branch; series stay registered. */
    void setEnabled(bool enabled);

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** The flag counters test; exposed for instrumentation that wants
     *  to gate extra work (e.g. reading the clock) on metrics. */
    const std::atomic<bool> *
    enabledFlag() const
    {
        return &enabled_;
    }

    Counter *counter(const std::string &name, const std::string &help,
                     const Labels &labels = {});
    Gauge *gauge(const std::string &name, const std::string &help,
                 const Labels &labels = {});
    Histogram *histogram(const std::string &name, const std::string &help,
                         std::vector<double> upperBounds,
                         const Labels &labels = {});

    /** Zero every series' value without unregistering anything:
     *  handles held by instrumentation sites remain valid. */
    void resetValues();

    /** Number of registered series (label sets, not families). */
    size_t seriesCount() const;

    /** Prometheus text exposition format (HELP/TYPE + samples;
     *  histograms emit cumulative _bucket/_sum/_count). */
    std::string prometheusText() const;

    /** JSON dump: {"metrics":[{name,kind,labels,...}]} sorted by
     *  (name, labels) for stable diffs. */
    std::string jsonText() const;

    /** Dump to @p path: ".json" writes jsonText(), anything else
     *  prometheusText(). False on I/O failure. */
    bool writeTo(const std::string &path) const;

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Series;
    struct Family;

    Family &familyLocked(const std::string &name, const std::string &help,
                         Kind kind);
    Series &seriesLocked(Family &family, const Labels &labels);

    std::atomic<bool> enabled_{false};

    mutable std::mutex mutex_;
    /** Families in registration order (export sorts by name). */
    std::vector<std::unique_ptr<Family>> families_;
};

/** True when the global registry is recording. */
inline bool
metricsEnabled()
{
    return MetricsRegistry::global().enabled();
}

} // namespace zatel::obs

#endif // ZATEL_OBS_METRICS_REGISTRY_HH
