#include "obs/trace_recorder.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace zatel::obs
{

/**
 * Per-thread span storage. The owning thread appends behind buffer-local
 * (uncontended) locking; exporters lock each buffer briefly to copy.
 * Buffers are owned by the recorder via shared_ptr so span data survives
 * thread exit (ThreadPool workers die with their pool).
 */
struct TraceRecorder::ThreadBuffer
{
    /** An open (begun, not yet ended) span on this thread. */
    struct OpenSpan
    {
        /** Static-storage name (hot path); null when owned is used. */
        const char *staticName = nullptr;
        std::string ownedName;
        double tsMicros = 0.0;
        int64_t arg = 0;
        bool hasArg = false;
    };

    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::vector<OpenSpan> open;
    std::string name;
    uint32_t tid = 0;
};

namespace
{

/**
 * Thread-local cache: (recorder, generation) -> buffer. A tiny linear
 * vector because a thread rarely talks to more than two recorders (the
 * global one plus maybe a test instance).
 */
struct TlsEntry
{
    const TraceRecorder *recorder = nullptr;
    uint64_t generation = 0;
    std::shared_ptr<TraceRecorder::ThreadBuffer> buffer;
};

thread_local std::vector<TlsEntry> t_buffers;

/**
 * Process-wide generation source. Generations must be unique across
 * ALL recorder instances, not just within one: a test-scoped recorder
 * can be destroyed and a new one constructed at the same address, and
 * a per-recorder counter would then hand the new instance the old
 * instance's cached thread buffer.
 */
std::atomic<uint64_t> g_nextGeneration{1};

} // namespace

TraceRecorder::TraceRecorder() = default;
TraceRecorder::~TraceRecorder() = default;

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::enable()
{
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.clear();
    nextTid_ = 0;
    epoch_ = std::chrono::steady_clock::now();
    everEnabled_.store(true, std::memory_order_release);
    generation_.store(
        g_nextGeneration.fetch_add(1, std::memory_order_relaxed),
        std::memory_order_relaxed);
    // Release: epoch_/generation_ writes become visible to any thread
    // that observes enabled() == true.
    enabled_.store(true, std::memory_order_release);
}

void
TraceRecorder::disable()
{
    enabled_.store(false, std::memory_order_release);
}

double
TraceRecorder::nowMicros() const
{
    if (!everEnabled_.load(std::memory_order_acquire))
        return 0.0;
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

TraceRecorder::ThreadBuffer *
TraceRecorder::localBuffer()
{
    const uint64_t gen = generation_.load(std::memory_order_relaxed);
    for (TlsEntry &entry : t_buffers) {
        if (entry.recorder == this) {
            if (entry.generation == gen)
                return entry.buffer.get();
            // Stale (recorder was re-enabled): drop and re-register.
            entry.buffer.reset();
        }
    }
    auto buffer = std::make_shared<ThreadBuffer>();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffer->tid = nextTid_++;
        buffers_.push_back(buffer);
    }
    // Reuse a stale slot for this recorder if one exists.
    for (TlsEntry &entry : t_buffers) {
        if (entry.recorder == this) {
            entry.generation = gen;
            entry.buffer = buffer;
            return entry.buffer.get();
        }
    }
    t_buffers.push_back({this, gen, buffer});
    return t_buffers.back().buffer.get();
}

TraceRecorder::ThreadBuffer *
TraceRecorder::findLocalBuffer() const
{
    const uint64_t gen = generation_.load(std::memory_order_relaxed);
    for (const TlsEntry &entry : t_buffers) {
        if (entry.recorder == this && entry.generation == gen)
            return entry.buffer.get();
    }
    return nullptr;
}

void
TraceRecorder::beginSpanImpl(const char *static_name,
                             std::string owned_name, int64_t arg,
                             bool has_arg)
{
    ThreadBuffer *buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer->mutex);
    ThreadBuffer::OpenSpan span;
    span.staticName = static_name;
    span.ownedName = std::move(owned_name);
    span.tsMicros = nowMicros();
    span.arg = arg;
    span.hasArg = has_arg;
    buffer->open.push_back(std::move(span));
}

void
TraceRecorder::beginSpan(const char *name)
{
    if (!enabled())
        return;
    ZATEL_ASSERT(name != nullptr, "span name must not be null");
    beginSpanImpl(name, std::string(), 0, false);
}

void
TraceRecorder::beginSpan(std::string name)
{
    if (!enabled())
        return;
    ZATEL_ASSERT(!name.empty(), "span name must not be empty");
    beginSpanImpl(nullptr, std::move(name), 0, false);
}

void
TraceRecorder::beginSpan(const char *name, int64_t arg)
{
    if (!enabled())
        return;
    ZATEL_ASSERT(name != nullptr, "span name must not be null");
    beginSpanImpl(name, std::string(), arg, true);
}

void
TraceRecorder::endSpan()
{
    // Intentionally not gated on enabled(): a span begun before a
    // disable() must still pop so RAII scopes stay balanced.
    ThreadBuffer *buffer = findLocalBuffer();
    if (buffer == nullptr) {
        // Never recorded on this thread this generation: the matching
        // beginSpan was a disabled no-op.
        return;
    }
    std::lock_guard<std::mutex> lock(buffer->mutex);
    ZATEL_ASSERT(!buffer->open.empty(),
                 "endSpan without a matching beginSpan on this thread");
    ThreadBuffer::OpenSpan span = std::move(buffer->open.back());
    buffer->open.pop_back();

    TraceEvent event;
    event.name = span.staticName != nullptr ? std::string(span.staticName)
                                            : std::move(span.ownedName);
    event.tsMicros = span.tsMicros;
    event.durMicros = std::max(0.0, nowMicros() - span.tsMicros);
    event.tid = buffer->tid;
    event.depth = static_cast<uint32_t>(buffer->open.size());
    event.arg = span.arg;
    event.hasArg = span.hasArg;
    buffer->events.push_back(std::move(event));
}

void
TraceRecorder::setThreadName(std::string name)
{
    if (!enabled())
        return;
    ThreadBuffer *buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->name = std::move(name);
}

size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t count = 0;
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        count += buffer->events.size();
    }
    return count;
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_) {
            std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
            events.insert(events.end(), buffer->events.begin(),
                          buffer->events.end());
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tsMicros != b.tsMicros)
                             return a.tsMicros < b.tsMicros;
                         return a.tid < b.tid;
                     });
    return events;
}

std::vector<std::pair<uint32_t, std::string>>
TraceRecorder::threadNames() const
{
    std::vector<std::pair<uint32_t, std::string>> names;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        if (!buffer->name.empty())
            names.emplace_back(buffer->tid, buffer->name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

namespace
{

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Fixed-point microseconds (Chrome accepts fractional ts/dur). */
std::string
formatMicros(double value)
{
    char text[64];
    std::snprintf(text, sizeof(text), "%.3f", value);
    return text;
}

} // namespace

std::string
TraceRecorder::exportChromeTrace() const
{
    std::ostringstream out;
    out << "{\"traceEvents\":[\n";
    bool first = true;
    auto comma = [&first, &out]() {
        if (!first)
            out << ",\n";
        first = false;
    };

    comma();
    out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,"
           "\"args\":{\"name\":\"zatel\"}}";
    for (const auto &[tid, name] : threadNames()) {
        comma();
        out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":"
            << tid << ",\"args\":{\"name\":\"" << escapeJson(name)
            << "\"}}";
    }
    for (const TraceEvent &event : snapshot()) {
        comma();
        out << "{\"ph\":\"X\",\"name\":\"" << escapeJson(event.name)
            << "\",\"cat\":\"zatel\",\"pid\":0,\"tid\":" << event.tid
            << ",\"ts\":" << formatMicros(event.tsMicros)
            << ",\"dur\":" << formatMicros(event.durMicros);
        if (event.hasArg)
            out << ",\"args\":{\"i\":" << event.arg << "}";
        out << "}";
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out.str();
}

bool
TraceRecorder::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << exportChromeTrace();
    return static_cast<bool>(out);
}

} // namespace zatel::obs
