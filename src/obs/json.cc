#include "obs/json.hh"

#include <cctype>
#include <cstdlib>

namespace zatel::obs
{

bool
JsonValue::has(const std::string &key) const
{
    return type == Type::Object &&
           objectValue.find(key) != objectValue.end();
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (type != Type::Object)
        throw JsonError("at('" + key + "'): value is not an object");
    auto it = objectValue.find(key);
    if (it == objectValue.end())
        throw JsonError("missing object member '" + key + "'");
    return it->second;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text)
    {
    }

    JsonValue
    parse()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing garbage after document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonError("JSON parse error at offset " +
                        std::to_string(pos_) + ": " + what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expectLiteral(const char *literal)
    {
        for (const char *p = literal; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("bad literal, expected '") + literal +
                     "'");
            ++pos_;
        }
    }

    JsonValue
    parseValue()
    {
        JsonValue value;
        switch (peek()) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            value.type = JsonValue::Type::String;
            value.stringValue = parseString();
            return value;
        case 't':
            expectLiteral("true");
            value.type = JsonValue::Type::Bool;
            value.boolValue = true;
            return value;
        case 'f':
            expectLiteral("false");
            value.type = JsonValue::Type::Bool;
            value.boolValue = false;
            return value;
        case 'n':
            expectLiteral("null");
            value.type = JsonValue::Type::Null;
            return value;
        default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue value;
        value.type = JsonValue::Type::Object;
        expect('{');
        if (consumeIf('}'))
            return value;
        while (true) {
            std::string key = parseString();
            expect(':');
            value.objectValue.emplace(std::move(key), parseValue());
            if (consumeIf(','))
                continue;
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue value;
        value.type = JsonValue::Type::Array;
        expect('[');
        if (consumeIf(']'))
            return value;
        while (true) {
            value.arrayValue.push_back(parseValue());
            if (consumeIf(','))
                continue;
            expect(']');
            return value;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            case 'r':
                out += '\r';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // The exports only ever \u-escape control characters;
                // encode the BMP code point as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail("unknown escape sequence");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [this]() {
            size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            fail("expected a number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                fail("digits required after decimal point");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                fail("digits required in exponent");
        }
        JsonValue value;
        value.type = JsonValue::Type::Number;
        value.numberValue =
            std::strtod(text_.substr(start, pos_ - start).c_str(),
                        nullptr);
        return value;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    Parser parser(text);
    return parser.parse();
}

} // namespace zatel::obs
