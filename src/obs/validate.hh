/**
 * @file
 * Schema validators for the observability exports. Shared by
 * tests/test_trace_recorder.cc, tests/test_obs_integration.cc and the
 * tools/zatel-trace-check CLI (which CI runs against real exports).
 *
 * Each validator returns a list of human-readable problems; an empty
 * list means the document is well-formed. Validators never throw on
 * schema violations — only report — but parse failures of the outer
 * JSON surface as a single "parse error" entry.
 */

#ifndef ZATEL_OBS_VALIDATE_HH
#define ZATEL_OBS_VALIDATE_HH

#include <string>
#include <vector>

namespace zatel::obs
{

/**
 * Validate Chrome trace_event JSON as produced by
 * TraceRecorder::exportChromeTrace(): top-level object with a
 * "traceEvents" array; every event has ph/pid/tid/name; "X" events
 * additionally carry numeric ts and dur >= 0.
 */
std::vector<std::string> validateChromeTrace(const std::string &text);

/**
 * Validate Prometheus text exposition as produced by
 * MetricsRegistry::prometheusText(): every sample line parses as
 * `name[{labels}] value`, every sample's family has HELP/TYPE
 * comments above it, histogram series end with a `+Inf` bucket whose
 * value equals `_count`, and bucket values are monotonic.
 */
std::vector<std::string>
validatePrometheusText(const std::string &text);

/** Validate MetricsRegistry::jsonText(): {"metrics":[...]} with
 *  name/kind/labels per entry and kind-appropriate value fields. */
std::vector<std::string> validateMetricsJson(const std::string &text);

} // namespace zatel::obs

#endif // ZATEL_OBS_VALIDATE_HH
