/**
 * @file
 * Minimal recursive-descent JSON parser used to validate the
 * observability exports (Chrome trace JSON, metrics JSON dump) in
 * tests and in tools/zatel-trace-check. Not a general-purpose JSON
 * library: no streaming, whole document in memory, doubles only.
 */

#ifndef ZATEL_OBS_JSON_HH
#define ZATEL_OBS_JSON_HH

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace zatel::obs
{

/** Raised by parseJson() on malformed input (message has offset). */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &what) : std::runtime_error(what)
    {
    }
};

/** One parsed JSON value (tree node). */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    std::vector<JsonValue> arrayValue;
    /** std::map: deterministic iteration for error messages/tests. */
    std::map<std::string, JsonValue> objectValue;

    bool
    isNull() const
    {
        return type == Type::Null;
    }
    bool
    isBool() const
    {
        return type == Type::Bool;
    }
    bool
    isNumber() const
    {
        return type == Type::Number;
    }
    bool
    isString() const
    {
        return type == Type::String;
    }
    bool
    isArray() const
    {
        return type == Type::Array;
    }
    bool
    isObject() const
    {
        return type == Type::Object;
    }

    /** True when this is an object with member @p key. */
    bool has(const std::string &key) const;

    /** Member lookup; throws JsonError when absent or not an object. */
    const JsonValue &at(const std::string &key) const;
};

/** Parse a complete JSON document; throws JsonError on any syntax
 *  error or trailing garbage. */
JsonValue parseJson(const std::string &text);

} // namespace zatel::obs

#endif // ZATEL_OBS_JSON_HH
