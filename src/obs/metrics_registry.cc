#include "obs/metrics_registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace zatel::obs
{

void
Gauge::add(double delta)
{
    if (!enabled_->load(std::memory_order_relaxed))
        return;
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
        // current reloaded by compare_exchange_weak.
    }
}

Histogram::Histogram(const std::atomic<bool> *enabled,
                     std::vector<double> bounds)
    : enabled_(enabled), bounds_(std::move(bounds))
{
    if (bounds_.empty())
        throw MetricsError("histogram needs at least one bucket bound");
    for (size_t i = 0; i < bounds_.size(); ++i) {
        if (std::isnan(bounds_[i]) || std::isinf(bounds_[i]))
            throw MetricsError(
                "histogram bounds must be finite (the +Inf bucket "
                "is implicit)");
        if (i > 0 && bounds_[i] <= bounds_[i - 1])
            throw MetricsError(
                "histogram bounds must be strictly increasing");
    }
    buckets_ =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i < bounds_.size() + 1; ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double value)
{
    if (!enabled_->load(std::memory_order_relaxed))
        return;
    ZATEL_ASSERT(!std::isnan(value),
                 "histogram observation must not be NaN");
    // First bucket whose upper bound is >= value (le semantics);
    // everything above the last bound lands in the implicit +Inf slot.
    const size_t idx = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double current = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(current, current + value,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
        // current reloaded by compare_exchange_weak.
    }
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> counts(bounds_.size() + 1);
    for (size_t i = 0; i < counts.size(); ++i)
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
    return counts;
}

std::vector<double>
Histogram::timeBuckets()
{
    return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
            5e-2, 1e-1,   0.25, 0.5,  1.0,    2.5,  5.0,  10.0,
            25.0, 50.0,   100.0};
}

std::vector<double>
Histogram::cycleBuckets()
{
    return {1e3, 5e3, 1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7, 1e8,
            5e8, 1e9};
}

namespace
{

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name) {
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    }
    return true;
}

bool
validLabelName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_';
    };
    if (!head(name[0]))
        return false;
    for (char c : name) {
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    }
    return true;
}

/** Escape a label value / JSON string payload (shared rules). */
std::string
escapeValue(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

/** Render labels as {a="x",b="y"}; empty string for no labels. */
std::string
renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += key;
        out += "=\"";
        out += escapeValue(value);
        out += "\"";
    }
    out += "}";
    return out;
}

/** Shortest round-trippable-enough double rendering (%.17g is noisy;
 *  metric values tolerate %g with widened precision). */
std::string
formatDouble(double value)
{
    char text[64];
    std::snprintf(text, sizeof(text), "%g", value);
    return text;
}

} // namespace

/** One (family, label set) pair with its live value object. */
struct MetricsRegistry::Series
{
    Labels labels;
    /** renderLabels(labels); the within-family identity key. */
    std::string labelKey;
    /** Exactly one of these is set, matching the family kind. */
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
};

/** All series sharing one metric name. */
struct MetricsRegistry::Family
{
    std::string name;
    std::string help;
    Kind kind = Kind::Counter;
    /** Bounds every histogram series of this family must share. */
    std::vector<double> bounds;
    std::vector<std::unique_ptr<Series>> series;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

void
MetricsRegistry::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

MetricsRegistry::Family &
MetricsRegistry::familyLocked(const std::string &name,
                              const std::string &help, Kind kind)
{
    if (!validMetricName(name))
        throw MetricsError("invalid metric name: '" + name + "'");
    for (auto &family : families_) {
        if (family->name == name) {
            if (family->kind != kind)
                throw MetricsError(
                    "metric '" + name +
                    "' already registered as a different kind");
            return *family;
        }
    }
    auto family = std::make_unique<Family>();
    family->name = name;
    family->help = help;
    family->kind = kind;
    families_.push_back(std::move(family));
    return *families_.back();
}

MetricsRegistry::Series &
MetricsRegistry::seriesLocked(Family &family, const Labels &labels)
{
    for (const auto &[key, value] : labels) {
        (void)value;
        if (!validLabelName(key))
            throw MetricsError("invalid label name '" + key +
                               "' on metric '" + family.name + "'");
    }
    const std::string labelKey = renderLabels(labels);
    for (auto &series : family.series) {
        if (series->labelKey == labelKey)
            return *series;
    }
    auto series = std::make_unique<Series>();
    series->labels = labels;
    series->labelKey = labelKey;
    family.series.push_back(std::move(series));
    return *family.series.back();
}

Counter *
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family &family = familyLocked(name, help, Kind::Counter);
    Series &series = seriesLocked(family, labels);
    if (!series.counter)
        series.counter.reset(new Counter(&enabled_));
    return series.counter.get();
}

Gauge *
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family &family = familyLocked(name, help, Kind::Gauge);
    Series &series = seriesLocked(family, labels);
    if (!series.gauge)
        series.gauge.reset(new Gauge(&enabled_));
    return series.gauge.get();
}

Histogram *
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           std::vector<double> upperBounds,
                           const Labels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Family &family = familyLocked(name, help, Kind::Histogram);
    if (family.series.empty()) {
        family.bounds = upperBounds;
    } else if (family.bounds != upperBounds) {
        throw MetricsError("metric '" + name +
                           "' re-registered with different buckets");
    }
    Series &series = seriesLocked(family, labels);
    if (!series.histogram)
        series.histogram.reset(
            new Histogram(&enabled_, std::move(upperBounds)));
    return series.histogram.get();
}

void
MetricsRegistry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &family : families_) {
        for (auto &series : family->series) {
            if (series->counter)
                series->counter->value_.store(0,
                                              std::memory_order_relaxed);
            if (series->gauge)
                series->gauge->value_.store(0.0,
                                            std::memory_order_relaxed);
            if (series->histogram) {
                Histogram &hist = *series->histogram;
                for (size_t i = 0; i < hist.bounds_.size() + 1; ++i)
                    hist.buckets_[i].store(0, std::memory_order_relaxed);
                hist.count_.store(0, std::memory_order_relaxed);
                hist.sum_.store(0.0, std::memory_order_relaxed);
            }
        }
    }
}

size_t
MetricsRegistry::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t count = 0;
    for (const auto &family : families_)
        count += family->series.size();
    return count;
}

namespace
{

/** Stable export order: families by name, series by label key. */
template <typename FamilyPtr>
std::vector<const typename FamilyPtr::element_type *>
sortedFamilies(const std::vector<FamilyPtr> &families)
{
    std::vector<const typename FamilyPtr::element_type *> sorted;
    sorted.reserve(families.size());
    for (const auto &family : families)
        sorted.push_back(family.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto *a, const auto *b) { return a->name < b->name; });
    return sorted;
}

} // namespace

std::string
MetricsRegistry::prometheusText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    for (const Family *family : sortedFamilies(families_)) {
        const char *type = family->kind == Kind::Counter ? "counter"
                           : family->kind == Kind::Gauge ? "gauge"
                                                         : "histogram";
        out << "# HELP " << family->name << " "
            << escapeValue(family->help) << "\n";
        out << "# TYPE " << family->name << " " << type << "\n";

        std::vector<const Series *> series;
        series.reserve(family->series.size());
        for (const auto &entry : family->series)
            series.push_back(entry.get());
        std::sort(series.begin(), series.end(),
                  [](const Series *a, const Series *b) {
                      return a->labelKey < b->labelKey;
                  });

        for (const Series *entry : series) {
            if (family->kind == Kind::Counter) {
                out << family->name << entry->labelKey << " "
                    << entry->counter->value() << "\n";
            } else if (family->kind == Kind::Gauge) {
                out << family->name << entry->labelKey << " "
                    << formatDouble(entry->gauge->value()) << "\n";
            } else {
                const Histogram &hist = *entry->histogram;
                const auto counts = hist.bucketCounts();
                // _bucket samples are cumulative and always end with
                // the +Inf bucket equal to _count.
                uint64_t cumulative = 0;
                for (size_t i = 0; i < hist.upperBounds().size(); ++i) {
                    cumulative += counts[i];
                    Labels bucketLabels = entry->labels;
                    bucketLabels.emplace_back(
                        "le", formatDouble(hist.upperBounds()[i]));
                    out << family->name << "_bucket"
                        << renderLabels(bucketLabels) << " " << cumulative
                        << "\n";
                }
                cumulative += counts.back();
                Labels infLabels = entry->labels;
                infLabels.emplace_back("le", "+Inf");
                out << family->name << "_bucket"
                    << renderLabels(infLabels) << " " << cumulative
                    << "\n";
                out << family->name << "_sum" << entry->labelKey << " "
                    << formatDouble(hist.sum()) << "\n";
                out << family->name << "_count" << entry->labelKey << " "
                    << hist.count() << "\n";
            }
        }
    }
    return out.str();
}

std::string
MetricsRegistry::jsonText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\"metrics\":[\n";
    bool firstSeries = true;
    for (const Family *family : sortedFamilies(families_)) {
        const char *kind = family->kind == Kind::Counter ? "counter"
                           : family->kind == Kind::Gauge ? "gauge"
                                                         : "histogram";
        std::vector<const Series *> series;
        series.reserve(family->series.size());
        for (const auto &entry : family->series)
            series.push_back(entry.get());
        std::sort(series.begin(), series.end(),
                  [](const Series *a, const Series *b) {
                      return a->labelKey < b->labelKey;
                  });

        for (const Series *entry : series) {
            if (!firstSeries)
                out << ",\n";
            firstSeries = false;
            out << "{\"name\":\"" << escapeValue(family->name)
                << "\",\"kind\":\"" << kind << "\",\"help\":\""
                << escapeValue(family->help) << "\",\"labels\":{";
            bool firstLabel = true;
            for (const auto &[key, value] : entry->labels) {
                if (!firstLabel)
                    out << ",";
                firstLabel = false;
                out << "\"" << escapeValue(key) << "\":\""
                    << escapeValue(value) << "\"";
            }
            out << "}";
            if (family->kind == Kind::Counter) {
                out << ",\"value\":" << entry->counter->value();
            } else if (family->kind == Kind::Gauge) {
                out << ",\"value\":"
                    << formatDouble(entry->gauge->value());
            } else {
                const Histogram &hist = *entry->histogram;
                const auto counts = hist.bucketCounts();
                out << ",\"count\":" << hist.count()
                    << ",\"sum\":" << formatDouble(hist.sum())
                    << ",\"bounds\":[";
                for (size_t i = 0; i < hist.upperBounds().size(); ++i) {
                    if (i > 0)
                        out << ",";
                    out << formatDouble(hist.upperBounds()[i]);
                }
                out << "],\"buckets\":[";
                for (size_t i = 0; i < counts.size(); ++i) {
                    if (i > 0)
                        out << ",";
                    out << counts[i];
                }
                out << "]";
            }
            out << "}";
        }
    }
    out << "\n]}\n";
    return out.str();
}

bool
MetricsRegistry::writeTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    out << (json ? jsonText() : prometheusText());
    return static_cast<bool>(out);
}

} // namespace zatel::obs
