/**
 * @file
 * TraceRecorder: low-overhead pipeline tracing with Chrome trace_event
 * JSON export (loadable in chrome://tracing / Perfetto).
 *
 * Design goals (docs/OBSERVABILITY.md):
 *  - Disabled recorders cost one relaxed atomic load + branch per probe
 *    (verified by bench/bench_obs_overhead.cc): ZATEL_TRACE_SCOPE on a
 *    cold recorder touches no clock, allocates nothing, takes no lock.
 *  - Enabled recording is per-thread: each thread appends to its own
 *    span buffer behind an uncontended mutex; buffers are merged only at
 *    export time, so worker threads never serialize on a global lock.
 *  - Spans must never perturb simulation results: the recorder reads the
 *    wall clock and writes its own buffers, nothing else (the
 *    "observability must not change results" invariant is enforced by
 *    tests/test_obs_integration.cc and docs/CORRECTNESS.md).
 *
 * Usage:
 *
 *   obs::TraceRecorder::global().enable();
 *   {
 *       ZATEL_TRACE_SCOPE("predict.prepare");       // RAII span
 *       ...
 *   }
 *   obs::TraceRecorder::global().beginSpan("sim.group", g); // explicit
 *   ...
 *   obs::TraceRecorder::global().endSpan();
 *   obs::TraceRecorder::global().writeChromeTrace("trace.json");
 *
 * Thread naming: call setThreadName() from the thread to name (the
 * ThreadPool names its workers "pool<id>-w<i>"); names are emitted as
 * Chrome "thread_name" metadata events.
 */

#ifndef ZATEL_OBS_TRACE_RECORDER_HH
#define ZATEL_OBS_TRACE_RECORDER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace zatel::obs
{

/** One completed span, as exported to Chrome trace JSON. */
struct TraceEvent
{
    /** Span name ("predict.prepare", "sim.group", ...). */
    std::string name;
    /** Microseconds since the recorder was enabled. */
    double tsMicros = 0.0;
    /** Span duration in microseconds. */
    double durMicros = 0.0;
    /** Recorder-assigned thread id (stable registration order). */
    uint32_t tid = 0;
    /** Nesting depth at beginSpan (0 = top-level span). */
    uint32_t depth = 0;
    /** Optional integer argument (group index, job index, ...). */
    int64_t arg = 0;
    bool hasArg = false;
};

/**
 * Per-thread span recorder with merged Chrome-trace export.
 *
 * All public methods are thread-safe. Most callers use the process-wide
 * global() instance via ZATEL_TRACE_SCOPE; tests construct their own.
 */
class TraceRecorder
{
  public:
    TraceRecorder();
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** The process-wide recorder used by ZATEL_TRACE_SCOPE. */
    static TraceRecorder &global();

    /**
     * Start recording: clears previously recorded spans, resets the
     * timestamp epoch, and invalidates every thread's cached buffer.
     * Enable tracing BEFORE creating thread pools so workers can
     * register their names (the CLIs enable it at startup).
     */
    void enable();

    /** Stop recording; already-recorded spans stay exportable. */
    void disable();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_acquire);
    }

    /**
     * Open a span on the calling thread. No-op while disabled. The
     * const char* overload is the hot path: the name is only copied
     * into owned storage when the span closes.
     */
    void beginSpan(const char *name);
    /** Open a span with a dynamic name (build the string only when
     *  enabled(); see docs/OBSERVABILITY.md). */
    void beginSpan(std::string name);
    /** Open a span carrying one integer argument (exported as
     *  args:{"i": value}; used for group / job indices). */
    void beginSpan(const char *name, int64_t arg);

    /**
     * Close the calling thread's innermost open span and record it.
     * Spans are strictly nested per thread; closing with no open span
     * is a bug and aborts. Still closes spans begun before a disable()
     * so RAII scopes stay balanced.
     */
    void endSpan();

    /** Name the calling thread in the exported trace. No-op while
     *  disabled (name it after enable()). */
    void setThreadName(std::string name);

    /** Microseconds since enable() (0 when never enabled). */
    double nowMicros() const;

    /** Total completed spans across all threads. */
    size_t eventCount() const;

    /** Merged copy of every thread's spans, sorted by (ts, tid). */
    std::vector<TraceEvent> snapshot() const;

    /** tid -> thread name for every named registered thread. */
    std::vector<std::pair<uint32_t, std::string>> threadNames() const;

    /**
     * Serialize as Chrome trace_event JSON: one "X" (complete) event
     * per span plus "process_name"/"thread_name" metadata, loadable in
     * chrome://tracing. Valid (with zero events) even when nothing was
     * recorded.
     */
    std::string exportChromeTrace() const;

    /** exportChromeTrace() to @p path; false on I/O failure. */
    bool writeChromeTrace(const std::string &path) const;

    /** Opaque per-thread span storage (defined in the .cc; public so
     *  the thread-local registration cache can name it). */
    struct ThreadBuffer;

  private:
    /** Find-or-register the calling thread's buffer for this recorder
     *  generation. */
    ThreadBuffer *localBuffer();
    /** The calling thread's buffer, or null if none registered. */
    ThreadBuffer *findLocalBuffer() const;

    void beginSpanImpl(const char *static_name, std::string owned_name,
                       int64_t arg, bool has_arg);

    std::atomic<bool> enabled_{false};
    /** Set by the first enable(); gates nowMicros() on a live epoch. */
    std::atomic<bool> everEnabled_{false};
    /** Set by enable() from a process-wide counter (unique across all
     *  recorder instances); invalidates thread-local buffer caches. */
    std::atomic<uint64_t> generation_{0};
    std::chrono::steady_clock::time_point epoch_{};

    mutable std::mutex mutex_; ///< Guards buffers_ registration/merge.
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
    uint32_t nextTid_ = 0;
};

/** True when the global recorder is capturing spans. */
inline bool
tracingEnabled()
{
    return TraceRecorder::global().enabled();
}

/**
 * RAII span on the global recorder. When tracing is disabled the
 * constructor is a single flag check; prefer the ZATEL_TRACE_SCOPE
 * macro, which names the scope variable for you.
 */
class TraceScope
{
  public:
    explicit TraceScope(const char *name)
    {
        if (tracingEnabled()) {
            armed_ = true;
            TraceRecorder::global().beginSpan(name);
        }
    }

    TraceScope(const char *name, int64_t arg)
    {
        if (tracingEnabled()) {
            armed_ = true;
            TraceRecorder::global().beginSpan(name, arg);
        }
    }

    ~TraceScope()
    {
        if (armed_)
            TraceRecorder::global().endSpan();
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    bool armed_ = false;
};

#define ZATEL_OBS_CONCAT2(a, b) a##b
#define ZATEL_OBS_CONCAT(a, b) ZATEL_OBS_CONCAT2(a, b)

/**
 * Record the enclosing scope as a span named @p ... (a string literal,
 * optionally followed by an int64 argument) on the global recorder.
 */
#define ZATEL_TRACE_SCOPE(...)                                              \
    ::zatel::obs::TraceScope ZATEL_OBS_CONCAT(zatel_trace_scope_,           \
                                              __LINE__)(__VA_ARGS__)

} // namespace zatel::obs

#endif // ZATEL_OBS_TRACE_RECORDER_HH
