/**
 * @file
 * Flat open-addressed map from line address to a 32-bit slot index.
 *
 * The per-cycle hot paths (L1/L2 tag lookup, MSHR pending checks) used
 * to go through std::unordered_map — node-based, pointer-chasing, and
 * heap-allocating on insert. LineMap is the SoA replacement: two
 * parallel arrays (keys, values), linear probing, backward-shift
 * deletion, and a fixed power-of-two footprint sized at construction so
 * steady-state operation never rehashes or allocates
 * (docs/SIMULATOR.md, "Data layout of the hot path").
 *
 * Keys are line-aligned addresses; the all-ones sentinel can never be a
 * real key because line sizes are at least 2 bytes.
 */

#ifndef ZATEL_GPUSIM_LINE_MAP_HH
#define ZATEL_GPUSIM_LINE_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace zatel::gpusim
{

/** Index type stored in LineMap values (cache way / MSHR entry slot). */
using LineSlot = uint32_t;

class LineMap
{
  public:
    static constexpr uint64_t kEmptyKey = ~0ull;

    /**
     * @param max_entries Upper bound on simultaneously resident keys.
     * The table is sized to keep load factor at or below 1/2.
     */
    explicit LineMap(uint32_t max_entries)
    {
        uint64_t slots = 16;
        while (slots < uint64_t{max_entries} * 2)
            slots <<= 1;
        keys_.assign(slots, kEmptyKey);
        values_.assign(slots, 0);
        mask_ = slots - 1;
        capacity_ = max_entries;
    }

    /** Slot of @p key, or nullptr when absent. */
    const LineSlot *
    find(uint64_t key) const
    {
        size_t i = probeStart(key);
        for (;;) {
            if (keys_[i] == key)
                return &values_[i];
            if (keys_[i] == kEmptyKey)
                return nullptr;
            i = (i + 1) & mask_;
        }
    }

    LineSlot *
    find(uint64_t key)
    {
        return const_cast<LineSlot *>(
            static_cast<const LineMap *>(this)->find(key));
    }

    bool contains(uint64_t key) const { return find(key) != nullptr; }

    /** Insert @p key -> @p value. @pre key absent and size() < capacity. */
    void
    insert(uint64_t key, LineSlot value)
    {
        ZATEL_ASSERT(key != kEmptyKey, "line map key collides with sentinel");
        ZATEL_ASSERT(size_ < capacity_, "line map over its sized capacity");
        size_t i = probeStart(key);
        while (keys_[i] != kEmptyKey) {
            ZATEL_ASSERT(keys_[i] != key, "duplicate line map insert");
            i = (i + 1) & mask_;
        }
        keys_[i] = key;
        values_[i] = value;
        ++size_;
    }

    /** Remove @p key. @return false when absent. */
    bool
    erase(uint64_t key)
    {
        size_t i = probeStart(key);
        for (;;) {
            if (keys_[i] == kEmptyKey)
                return false;
            if (keys_[i] == key)
                break;
            i = (i + 1) & mask_;
        }
        // Backward-shift deletion keeps probe chains unbroken without
        // tombstones: pull every displaced follower one slot back.
        size_t hole = i;
        size_t j = (i + 1) & mask_;
        while (keys_[j] != kEmptyKey) {
            size_t home = probeStart(keys_[j]);
            // The follower can fill the hole iff its probe path from
            // `home` crosses the hole before reaching `j` (circular
            // distance comparison).
            if (((hole - home) & mask_) <= ((j - home) & mask_)) {
                keys_[hole] = keys_[j];
                values_[hole] = values_[j];
                hole = j;
            }
            j = (j + 1) & mask_;
        }
        keys_[hole] = kEmptyKey;
        --size_;
        return true;
    }

    void
    clear()
    {
        keys_.assign(keys_.size(), kEmptyKey);
        size_ = 0;
    }

    size_t size() const { return size_; }
    uint32_t capacity() const { return capacity_; }

  private:
    size_t
    probeStart(uint64_t key) const
    {
        // Multiplicative mix; line addresses share low zero bits, so
        // fold the high product bits down before masking.
        uint64_t h = key * 0x9E3779B97F4A7C15ull;
        return static_cast<size_t>(h >> 32) & mask_;
    }

    std::vector<uint64_t> keys_;
    std::vector<LineSlot> values_;
    size_t mask_ = 0;
    size_t size_ = 0;
    uint32_t capacity_ = 0;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_LINE_MAP_HH
