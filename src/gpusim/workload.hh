/**
 * @file
 * Ray-tracing workload fed to the timed simulator.
 *
 * A workload is an ordered list of pixel threads. Zatel's pixel filter is
 * represented exactly like the paper's injected PTX filter_shader: every
 * pixel of the group still launches a thread, but unselected threads
 * execute a few filter-check instructions and exit (Section III-F).
 */

#ifndef ZATEL_GPUSIM_WORKLOAD_HH
#define ZATEL_GPUSIM_WORKLOAD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rt/bvh.hh"
#include "rt/ray_record.hh"
#include "rt/tracer.hh"
#include "util/arena.hh"

namespace zatel::gpusim
{

/** Image-plane pixel coordinate. */
struct PixelCoord
{
    uint32_t x = 0;
    uint32_t y = 0;

    bool operator==(const PixelCoord &o) const { return x == o.x && y == o.y; }
};

/** One pixel thread: its identity, filter decision, and recorded rays. */
struct ThreadWork
{
    /** Linear pixel index (y * width + x) in the full image plane. */
    uint32_t pixelLinear = 0;
    /** False when the Zatel filter skips this pixel. */
    bool selected = true;
    /**
     * Rays this pixel casts in program order, or null when !selected.
     * The span lives in the owning SimWorkload's rayArena — a flat
     * arena-backed layout instead of a per-thread vector, so the timed
     * hot path walks contiguous RayTask storage (docs/SIMULATOR.md,
     * "Data layout of the hot path").
     */
    const rt::RayTask *rays = nullptr;
    uint32_t rayCount = 0;
};

/** A complete launch for one simulator instance. Move-only: the arena
 *  backing every ThreadWork::rays span moves with it. */
struct SimWorkload
{
    uint32_t width = 0;
    uint32_t height = 0;
    /** Acceleration structure the RT units traverse. */
    const rt::Bvh *bvh = nullptr;
    /** Threads in launch order; warps are consecutive runs of warpSize. */
    std::vector<ThreadWork> threads;
    uint64_t selectedCount = 0;
    /** Owns the RayTask storage the threads' spans point into. */
    FrameArena rayArena;

    /** Total recorded rays over all selected threads. */
    uint64_t totalRays() const;

    /**
     * Build a workload over @p pixels in the given launch order.
     *
     * @param tracer Functional tracer (provides scene, BVH and spp).
     * @param pixels Pixels in launch order (a Zatel group or a full frame).
     * @param selected Optional mask aligned with @p pixels; null = all.
     */
    static SimWorkload build(const rt::Tracer &tracer, uint32_t width,
                             uint32_t height,
                             const std::vector<PixelCoord> &pixels,
                             const std::vector<bool> *selected = nullptr);

    /** Convenience: full-frame workload in row-major order. */
    static SimWorkload buildFullFrame(const rt::Tracer &tracer,
                                      uint32_t width, uint32_t height);
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_WORKLOAD_HH
