#include "gpusim/stats_report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace zatel::gpusim
{

void
StatsReport::add(const std::string &path, double value)
{
    lines_.push_back({path, value});
}

double
StatsReport::value(const std::string &path) const
{
    for (const StatLine &line : lines_) {
        if (line.path == path)
            return line.value;
    }
    fatal("stats report has no counter '", path, "'");
}

bool
StatsReport::has(const std::string &path) const
{
    for (const StatLine &line : lines_) {
        if (line.path == path)
            return true;
    }
    return false;
}

std::string
StatsReport::toString() const
{
    size_t width = 0;
    for (const StatLine &line : lines_)
        width = std::max(width, line.path.size());

    std::ostringstream oss;
    for (const StatLine &line : lines_) {
        char buf[64];
        // Integers print clean; ratios keep 6 significant digits.
        if (line.value == static_cast<uint64_t>(line.value) &&
            line.value >= 0.0 && line.value < 1e15) {
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(line.value));
        } else {
            std::snprintf(buf, sizeof(buf), "%.6g", line.value);
        }
        oss << line.path << std::string(width - line.path.size() + 2, ' ')
            << buf << '\n';
    }
    return oss.str();
}

} // namespace zatel::gpusim
