/**
 * @file
 * Streaming Multiprocessor model: warp slots, a greedy-then-oldest warp
 * scheduler, an L1D cache with MSHRs, and one RT unit (paper Fig. 2).
 */

#ifndef ZATEL_GPUSIM_SM_HH
#define ZATEL_GPUSIM_SM_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/cache.hh"
#include "gpusim/config.hh"
#include "gpusim/memory_system.hh"
#include "gpusim/mshr.hh"
#include "gpusim/rt_unit.hh"
#include "gpusim/stats.hh"
#include "gpusim/stats_report.hh"
#include "gpusim/warp.hh"
#include "util/logging.hh"

namespace zatel::gpusim
{

/** Opaque completion-token codec shared by the SM and its RT unit. */
struct WaiterToken
{
    enum Kind : uint8_t
    {
        RtRay = 0,    ///< wake a traversal lane
        WarpLoad = 1, ///< complete one outstanding warp load
        Prefetch = 2, ///< no waiter (triangle streaming)
    };

    static uint64_t
    pack(Kind kind, uint32_t warp_slot, uint32_t lane)
    {
        return (static_cast<uint64_t>(kind) << 32) |
               (static_cast<uint64_t>(warp_slot) << 8) | lane;
    }

    static Kind kindOf(uint64_t token)
    {
        return static_cast<Kind>(token >> 32);
    }

    static uint32_t
    warpSlotOf(uint64_t token)
    {
        return static_cast<uint32_t>((token >> 8) & 0xFFFFFFu);
    }

    static uint32_t laneOf(uint64_t token)
    {
        return static_cast<uint32_t>(token & 0xFFu);
    }
};

/**
 * Fixed-latency L1-hit delay line in SoA form: parallel ready-cycle /
 * token rings with power-of-two wraparound. The single producer
 * (Sm::l1Load) always schedules `now + l1dLatencyCycles` with a
 * constant latency, so ready cycles are monotone in push order and the
 * structure is a FIFO — the earliest pending event is an O(1) peek at
 * the head instead of a lap over time buckets
 * (docs/SIMULATOR.md, "Data layout of the hot path").
 */
class HitFifo
{
  public:
    void
    push(uint64_t ready_cycle, uint64_t token)
    {
        ZATEL_ASSERT(size_ == 0 || ready_cycle >= ready_[(tail_ - 1) & mask_],
                     "hit FIFO requires monotone ready cycles");
        if (size_ == capacity())
            grow();
        ready_[tail_ & mask_] = ready_cycle;
        token_[tail_ & mask_] = token;
        ++tail_;
        ++size_;
    }

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    /** Ready cycle of the oldest pending token. @pre !empty() */
    uint64_t frontReady() const { return ready_[head_ & mask_]; }

    /** Pop the oldest token. @pre !empty() */
    uint64_t
    pop()
    {
        uint64_t token = token_[head_ & mask_];
        ++head_;
        --size_;
        return token;
    }

  private:
    size_t capacity() const { return ready_.size(); }

    void
    grow()
    {
        size_t cap = capacity() == 0 ? 128 : capacity() * 2;
        std::vector<uint64_t> ready(cap), token(cap);
        for (size_t i = 0; i < size_; ++i) {
            ready[i] = ready_[(head_ + i) & mask_];
            token[i] = token_[(head_ + i) & mask_];
        }
        ready_ = std::move(ready);
        token_ = std::move(token);
        head_ = 0;
        tail_ = size_;
        mask_ = cap - 1;
    }

    std::vector<uint64_t> ready_;
    std::vector<uint64_t> token_;
    size_t head_ = 0;
    size_t tail_ = 0;
    size_t mask_ = 0;
    size_t size_ = 0;
};

/** One streaming multiprocessor. */
class Sm
{
  public:
    /** Result of an L1 load attempt. */
    enum class L1Outcome
    {
        HitScheduled, ///< hit; waiter wakes after l1dLatencyCycles
        MissPending,  ///< miss sent to memory; waiter wakes on fill
        Stall,        ///< no port / MSHR full; retry next cycle
    };

    Sm(uint32_t index, const GpuConfig *config, MemorySystem *memory);

    uint32_t index() const { return index_; }

    /** True when another warp can be launched here. Inline: the fast
     *  cycle loop's jump check polls it for every SM. */
    bool hasFreeSlot() const { return residentWarps_ < warpSlots_.size(); }

    /** Install @p warp into a free slot. @pre hasFreeSlot(). */
    void launchWarp(std::unique_ptr<Warp> warp);

    /**
     * Advance one cycle (reference path): the scheduler pass walks every
     * warp slot. Kept deliberately naive — this is the loop the fast
     * path is differentially tested against.
     */
    void tick(uint64_t now) { tickImpl(now, /*lean_scan=*/false); }

    /**
     * Advance one cycle (fast path): identical semantics to tick(), but
     * the scheduler pass only visits slots that can observably act —
     * warps resident in an RT unit are inert to the scheduler (not
     * pollable, nothing to issue, no uncollected instructions), and
     * RT-waiting warps are inert whenever every RT unit is full at scan
     * start (no unit can free mid-scan). Byte-identical GpuStats to
     * tick() (tests/test_gpu_fastpath.cc).
     */
    void tickFast(uint64_t now) { tickImpl(now, /*lean_scan=*/true); }

    /** All warps retired and no local activity pending. */
    bool idle() const;

    /**
     * True when tick(@p now) would provably be a no-op: no resident
     * warps (which implies idle RT units — an RT-resident warp still
     * owns its slot), no delayed L1 hits, and no fill ready to drain.
     * Outstanding prefetch MSHR entries alone don't block skipping;
     * their fills wake the SM through the fill queue. Slow-tick mode
     * (docs/SIMULATOR.md) never skips, keeping this testable.
     */
    bool quiescentAt(uint64_t now) const;

    /**
     * Earliest cycle > @p now at which this SM's tick could do more
     * than linear residency sampling (sim_clock.hh): pending RT
     * visits/fetches and issuable warps say now + 1, delayed L1 hits
     * wake at their ring bucket, draining warps at drainReadyAt_, and
     * memory waits at the fill queue's earliest ready cycle.
     */
    uint64_t nextEventCycle(uint64_t now) const;

    /**
     * Apply @p cycles of skipped-tick accrual: RT residency sampling is
     * the only per-cycle statistic an otherwise event-free tick adds.
     * @pre every local event is at least @p cycles + 1 away (Gpu::run's
     * fast-forward checks via nextEventCycle()).
     */
    void fastForward(uint64_t cycles);

    /**
     * Cheap wake heuristic for the fast cycle loop: true when the SM is
     * visibly busy — the last tick() issued a warp instruction, or an RT
     * unit has a ready visit or pending fetch. A busy SM is due again at
     * now + 1, so Gpu::run skips the full nextEventCycle() scan for it
     * (waking early is always stat-safe; an event-free tick is a no-op
     * plus accrual). Delayed L1 hits are deliberately *not* a busy
     * signal: their tokens sit up to l1dLatencyCycles in the future, and
     * nextEventCycle()'s ring scan finds the exact bucket instead of
     * burning a tick per intervening cycle.
     */
    bool likelyBusy() const
    {
        if (lastTickIssued_)
            return true;
        for (const RtUnit &unit : rtUnits_) {
            if (!unit.quiet())
                return true;
        }
        return false;
    }

    /**
     * Post-tick wake computation shared by the serial and parallel fast
     * loops: a visibly busy SM is due again at now + 1 (skip the scan —
     * early wake is always stat-safe); the full nextEventCycle() scan
     * runs once per sleep transition.
     */
    uint64_t wakeCycleAfterTick(uint64_t now) const
    {
        return likelyBusy() ? now + 1 : nextEventCycle(now);
    }

    /**
     * True when this SM is idle *and* owes nothing to the memory system
     * — no pending fill will ever arrive (idle implies an empty L1 MSHR,
     * so the fill queue can only be non-empty transiently). The parallel
     * epoch loop records the first settled cycle per SM to reconstruct
     * the exact serial termination cycle (docs/SIMULATOR.md).
     */
    bool settled() const;

    /** Fold local counters (L1, RT, instructions) into @p stats. */
    void accumulateStats(GpuStats &stats) const;

    /** Append this SM's counters to @p report under @p prefix. */
    void reportInto(StatsReport &report, const std::string &prefix) const;

    // ---- Memory interface used by warps and the RT unit ----
    /**
     * Attempt a load of @p line_addr; @p token is woken on completion.
     * Consumes an L1 port on anything but Stall.
     */
    L1Outcome l1Load(uint64_t line_addr, uint64_t token, uint64_t now);

    /** Issue a write-through store. @return false when out of ports. */
    bool l1Store(uint64_t line_addr, uint64_t now);

    /** Ports left this cycle (RT unit checks before issuing fetches). */
    bool portAvailable() const { return portsUsed_ < config_->l1dPortsPerCycle; }

    GpuStats &localStats() { return stats_; }

  private:
    friend class RtUnit;

    /** Shared body of tick()/tickFast(); @p lean_scan selects the
     *  mask-driven scheduler scan. */
    void tickImpl(uint64_t now, bool lean_scan);

    /**
     * One scheduler visit to @p slot: poll, collect instruction counts,
     * retire, admit to an RT unit, or issue. Ends by reclassifying the
     * slot in the lean-scan masks from its actual post-visit phase, so
     * the masks never go stale regardless of which path mutated it.
     */
    void scanWarpSlot(uint32_t slot, uint64_t now, uint32_t &issued,
                      bool &rt_units_full);

    /**
     * RT-unit callback: @p slot 's warp just left InRt (ray batch done),
     * so it is scannable again. Mid-tick exits happen only in the RT
     * unit pass, which runs before the scheduler scan snapshots the
     * masks — the lean scan therefore never misses a freshly-woken warp.
     */
    void onWarpLeftRtUnit(uint32_t slot)
    {
        scannableSlots_ |= uint64_t{1} << slot;
        rtWaitSlots_ &= ~(uint64_t{1} << slot);
    }

    /** Deliver a completion token to its waiter. */
    void deliverToken(uint64_t token, uint64_t now);

    /** Process fills returned by the memory system. */
    void processFills(uint64_t now);

    /** Process L1-hit delay queue. */
    void processHitQueue(uint64_t now);

    uint32_t index_ = 0;
    const GpuConfig *config_ = nullptr;
    MemorySystem *memory_ = nullptr;

    std::vector<std::unique_ptr<Warp>> warpSlots_;
    uint32_t residentWarps_ = 0;
    uint32_t lastIssuedSlot_ = 0;

    TagCache l1_;
    MshrTable mshr_;
    /** rtUnitsPerSm accelerator units; warps are admitted to any unit
     *  with a free slot and remembered in rtUnitOf_. */
    std::vector<RtUnit> rtUnits_;
    std::vector<int8_t> rtUnitOf_; // per warp slot; -1 = not resident
    /**
     * Fixed-latency delay line for L1 hits. The constant L1 latency
     * makes scheduled ready cycles monotone in push order, so a flat
     * SoA FIFO replaces the old ring of per-cycle token buckets and
     * nextEventCycle() reads the head instead of scanning a lap.
     */
    HitFifo hitFifo_;
    /**
     * Lean-scan masks (tickFast): bit i set in scannableSlots_ when slot
     * i holds a warp whose phase is anything but InRt — InRt warps are
     * provably inert to the scheduler pass (not pollable, nothing to
     * issue, no RT-slot wish, no uncollected instruction counts).
     * rtWaitSlots_ is the subset currently in RtWait; those are also
     * inert whenever every RT unit is full at scan start. Maintained at
     * launch, at every scanWarpSlot() exit, and by onWarpLeftRtUnit().
     */
    uint64_t scannableSlots_ = 0;
    uint64_t rtWaitSlots_ = 0;
    uint32_t portsUsed_ = 0;
    bool lastTickIssued_ = false;

    GpuStats stats_;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_SM_HH
