/**
 * @file
 * Streaming Multiprocessor model: warp slots, a greedy-then-oldest warp
 * scheduler, an L1D cache with MSHRs, and one RT unit (paper Fig. 2).
 */

#ifndef ZATEL_GPUSIM_SM_HH
#define ZATEL_GPUSIM_SM_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/cache.hh"
#include "gpusim/config.hh"
#include "gpusim/memory_system.hh"
#include "gpusim/mshr.hh"
#include "gpusim/rt_unit.hh"
#include "gpusim/stats.hh"
#include "gpusim/stats_report.hh"
#include "gpusim/warp.hh"

namespace zatel::gpusim
{

/** Opaque completion-token codec shared by the SM and its RT unit. */
struct WaiterToken
{
    enum Kind : uint8_t
    {
        RtRay = 0,    ///< wake a traversal lane
        WarpLoad = 1, ///< complete one outstanding warp load
        Prefetch = 2, ///< no waiter (triangle streaming)
    };

    static uint64_t
    pack(Kind kind, uint32_t warp_slot, uint32_t lane)
    {
        return (static_cast<uint64_t>(kind) << 32) |
               (static_cast<uint64_t>(warp_slot) << 8) | lane;
    }

    static Kind kindOf(uint64_t token)
    {
        return static_cast<Kind>(token >> 32);
    }

    static uint32_t
    warpSlotOf(uint64_t token)
    {
        return static_cast<uint32_t>((token >> 8) & 0xFFFFFFu);
    }

    static uint32_t laneOf(uint64_t token)
    {
        return static_cast<uint32_t>(token & 0xFFu);
    }
};

/** One streaming multiprocessor. */
class Sm
{
  public:
    /** Result of an L1 load attempt. */
    enum class L1Outcome
    {
        HitScheduled, ///< hit; waiter wakes after l1dLatencyCycles
        MissPending,  ///< miss sent to memory; waiter wakes on fill
        Stall,        ///< no port / MSHR full; retry next cycle
    };

    Sm(uint32_t index, const GpuConfig *config, MemorySystem *memory);

    uint32_t index() const { return index_; }

    /** True when another warp can be launched here. */
    bool hasFreeSlot() const;

    /** Install @p warp into a free slot. @pre hasFreeSlot(). */
    void launchWarp(std::unique_ptr<Warp> warp);

    /** Advance one cycle. */
    void tick(uint64_t now);

    /** All warps retired and no local activity pending. */
    bool idle() const;

    /** Fold local counters (L1, RT, instructions) into @p stats. */
    void accumulateStats(GpuStats &stats) const;

    /** Append this SM's counters to @p report under @p prefix. */
    void reportInto(StatsReport &report, const std::string &prefix) const;

    // ---- Memory interface used by warps and the RT unit ----
    /**
     * Attempt a load of @p line_addr; @p token is woken on completion.
     * Consumes an L1 port on anything but Stall.
     */
    L1Outcome l1Load(uint64_t line_addr, uint64_t token, uint64_t now);

    /** Issue a write-through store. @return false when out of ports. */
    bool l1Store(uint64_t line_addr, uint64_t now);

    /** Ports left this cycle (RT unit checks before issuing fetches). */
    bool portAvailable() const { return portsUsed_ < config_->l1dPortsPerCycle; }

    GpuStats &localStats() { return stats_; }

  private:
    friend class RtUnit;

    /** Deliver a completion token to its waiter. */
    void deliverToken(uint64_t token, uint64_t now);

    /** Process fills returned by the memory system. */
    void processFills(uint64_t now);

    /** Process L1-hit delay queue. */
    void processHitQueue(uint64_t now);

    uint32_t index_ = 0;
    const GpuConfig *config_ = nullptr;
    MemorySystem *memory_ = nullptr;

    std::vector<std::unique_ptr<Warp>> warpSlots_;
    uint32_t residentWarps_ = 0;
    uint32_t lastIssuedSlot_ = 0;

    TagCache l1_;
    MshrTable mshr_;
    /** rtUnitsPerSm accelerator units; warps are admitted to any unit
     *  with a free slot and remembered in rtUnitOf_. */
    std::vector<RtUnit> rtUnits_;
    std::vector<int8_t> rtUnitOf_; // per warp slot; -1 = not resident
    /**
     * Fixed-latency delay line for L1 hits: ring of token buckets
     * indexed by (cycle % ring size); the L1 latency is constant so a
     * bucket is fully drained when its cycle comes around.
     */
    std::vector<std::vector<uint64_t>> hitRing_;
    uint64_t pendingHitTokens_ = 0;
    uint32_t portsUsed_ = 0;

    GpuStats stats_;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_SM_HH
