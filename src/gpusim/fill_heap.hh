/**
 * @file
 * SoA min-heap of pending fills, ordered by (readyCycle, seq).
 *
 * Replaces std::priority_queue<PendingFill> in the per-SM fill lanes:
 * the three fields live in parallel arrays so the frequent operations —
 * the per-cycle ready peek and the sift on push/pop — touch dense
 * uint64 lanes instead of moving 24-byte structs. Capacity is retained
 * across frames, so steady-state pushes never allocate
 * (docs/SIMULATOR.md, "Data layout of the hot path").
 *
 * Fill ready cycles are genuinely non-monotone (an L2 hit responds
 * after l2LatencyCycles while a DRAM completion responds the next
 * cycle), so unlike the L1 hit FIFO this must stay a priority queue.
 * The (readyCycle, seq) total order matches PendingFill::operator> —
 * the delivery-sequence tie-break that keeps the span-parallel loop
 * byte-identical to the serial one.
 */

#ifndef ZATEL_GPUSIM_FILL_HEAP_HH
#define ZATEL_GPUSIM_FILL_HEAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace zatel::gpusim
{

class FillHeap
{
  public:
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    /** Ready cycle of the earliest fill. @pre !empty() */
    uint64_t topReady() const { return ready_[0]; }

    /** Line address of the earliest fill. @pre !empty() */
    uint64_t topAddr() const { return addr_[0]; }

    void
    push(uint64_t ready_cycle, uint64_t line_addr, uint64_t seq)
    {
        if (size_ == ready_.size()) {
            size_t cap = size_ == 0 ? 64 : size_ * 2;
            ready_.resize(cap);
            addr_.resize(cap);
            seq_.resize(cap);
        }
        size_t i = size_++;
        ready_[i] = ready_cycle;
        addr_[i] = line_addr;
        seq_[i] = seq;
        siftUp(i);
    }

    void
    pop()
    {
        --size_;
        if (size_ == 0)
            return;
        ready_[0] = ready_[size_];
        addr_[0] = addr_[size_];
        seq_[0] = seq_[size_];
        siftDown(0);
    }

  private:
    bool
    less(size_t a, size_t b) const
    {
        if (ready_[a] != ready_[b])
            return ready_[a] < ready_[b];
        return seq_[a] < seq_[b];
    }

    void
    swapAt(size_t a, size_t b)
    {
        std::swap(ready_[a], ready_[b]);
        std::swap(addr_[a], addr_[b]);
        std::swap(seq_[a], seq_[b]);
    }

    void
    siftUp(size_t i)
    {
        while (i > 0) {
            size_t parent = (i - 1) / 2;
            if (!less(i, parent))
                break;
            swapAt(i, parent);
            i = parent;
        }
    }

    void
    siftDown(size_t i)
    {
        for (;;) {
            size_t left = 2 * i + 1;
            if (left >= size_)
                break;
            size_t best = left;
            size_t right = left + 1;
            if (right < size_ && less(right, left))
                best = right;
            if (!less(best, i))
                break;
            swapAt(i, best);
            i = best;
        }
    }

    std::vector<uint64_t> ready_;
    std::vector<uint64_t> addr_;
    std::vector<uint64_t> seq_;
    size_t size_ = 0;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_FILL_HEAP_HH
