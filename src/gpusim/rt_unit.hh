/**
 * @file
 * Ray-tracing accelerator unit (one per SM, paper Fig. 2 / Table II).
 *
 * Up to rtMaxWarps warps are resident at once; each lane traverses the
 * BVH with a TraversalStepper. Every node visit requires the node's data:
 * the unit issues a line fetch through the SM's L1D (merging through the
 * MSHR) and performs the visit when the data arrives, consuming one of
 * rtVisitsPerCycle visit slots. Leaf visits additionally stream the leaf's
 * triangle data as prefetch-style fetches that generate cache/DRAM traffic
 * without stalling traversal.
 *
 * Per-cycle state is SoA (docs/SIMULATOR.md, "Data layout of the hot
 * path"): the ready/fetch queues are flat rings of packed lane
 * references, and residency bookkeeping lives in parallel arrays
 * instead of a struct vector.
 */

#ifndef ZATEL_GPUSIM_RT_UNIT_HH
#define ZATEL_GPUSIM_RT_UNIT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/config.hh"
#include "gpusim/stats.hh"
#include "gpusim/warp.hh"
#include "util/logging.hh"

namespace zatel::gpusim
{

class Sm;

/**
 * Packed (warp slot, lane) reference: slot in the high bits, lane in
 * the low byte — same shape as WaiterToken's payload.
 */
using LaneRef = uint32_t;

inline LaneRef
packLaneRef(uint32_t warp_slot, uint32_t lane)
{
    return (warp_slot << 8) | lane;
}

inline uint32_t laneRefSlot(LaneRef ref) { return ref >> 8; }
inline uint32_t laneRefLane(LaneRef ref) { return ref & 0xFFu; }

/**
 * Flat ring of packed lane references with power-of-two wraparound.
 * Supports pushFront for the stall-requeue path (a stalled fetch goes
 * back to the head so issue order matches the reference deque).
 */
class LaneRing
{
  public:
    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    LaneRef front() const { return refs_[head_ & mask_]; }

    void
    pushBack(LaneRef ref)
    {
        if (size_ == refs_.size())
            grow();
        refs_[tail_ & mask_] = ref;
        ++tail_;
        ++size_;
    }

    void
    pushFront(LaneRef ref)
    {
        if (size_ == refs_.size())
            grow();
        --head_;
        refs_[head_ & mask_] = ref;
        ++size_;
    }

    LaneRef
    popFront()
    {
        LaneRef ref = refs_[head_ & mask_];
        ++head_;
        --size_;
        return ref;
    }

  private:
    void
    grow()
    {
        size_t cap = refs_.empty() ? 64 : refs_.size() * 2;
        std::vector<LaneRef> next(cap);
        for (size_t i = 0; i < size_; ++i)
            next[i] = refs_[(head_ + i) & mask_];
        refs_ = std::move(next);
        head_ = 0;
        tail_ = size_;
        mask_ = cap - 1;
    }

    std::vector<LaneRef> refs_;
    // head_/tail_ are free-running and masked on access; head_ may wrap
    // below zero via pushFront, which unsigned arithmetic handles.
    size_t head_ = 0;
    size_t tail_ = 0;
    size_t mask_ = 0;
    size_t size_ = 0;
};

/** The per-SM ray-tracing accelerator. */
class RtUnit
{
  public:
    RtUnit(const GpuConfig *config, Sm *sm);

    /** Admit @p warp into a free slot. @return false when full. */
    bool tryAdmit(uint32_t warp_slot, Warp *warp);

    /** Node data for (warp_slot, lane) arrived. */
    void onFill(uint32_t warp_slot, uint32_t lane);

    /** Advance one cycle: issue fetches, execute visits, retire warps. */
    void tick(uint64_t now, GpuStats &stats);

    bool idle() const { return residentCount_ == 0; }
    size_t residentWarps() const { return residentCount_; }

    /** Another warp can be admitted (used by the SM's event predicate). */
    bool hasFreeSlot() const { return residentCount_ < config_->rtMaxWarps; }

    /**
     * True when the unit has no lane ready to visit and no fetch to
     * (re)issue — every resident lane is waiting on memory, so the next
     * tick that matters is fill-driven (the SM's fill queue schedules
     * it). A quiet tick still samples residency; fastForward() applies
     * that accrual in closed form for skipped cycles (sim_clock.hh).
     */
    bool quiet() const { return readyQueue_.empty() && fetchQueue_.empty(); }

    /**
     * Apply @p cycles of skipped-tick residency sampling: each resident
     * warp contributes one rtResidentWarpCycle and lanesRemaining active
     * rays per skipped cycle, exactly as @p cycles quiet tick()s would.
     * @pre the unit is quiet() and stays untouched across the skip.
     */
    void fastForward(uint64_t cycles, GpuStats &stats) const;

  private:
    /** Residency index of @p warp_slot, or -1 when not resident. */
    int findResident(uint32_t warp_slot) const;
    /** Issue the pending node fetch of a lane. @return false on stall. */
    bool issueFetch(LaneRef ref, uint64_t now, GpuStats &stats);
    /** Execute one node visit for a ready lane. */
    void executeVisit(LaneRef ref, uint64_t now, GpuStats &stats);
    Warp *warpAt(uint32_t warp_slot);

    const GpuConfig *config_ = nullptr;
    Sm *sm_ = nullptr;
    // Resident warp bookkeeping, SoA over residency index (admission
    // order preserved; removal shifts the tail down).
    std::vector<uint32_t> residentSlot_;
    std::vector<Warp *> residentWarp_;
    std::vector<uint32_t> residentLanes_;
    std::vector<uint32_t> residentPoolIdx_;
    uint32_t residentCount_ = 0;
    // Lane pool: rtMaxWarps spans of warpSize WarpLanes. A warp borrows
    // a span for the duration of its residency (Warp::enterRtUnit
    // re-initializes everything observable, so reuse is deterministic).
    std::vector<WarpLane> lanePool_;
    std::vector<uint32_t> freeSpans_;
    /** Lanes whose node data is available. */
    LaneRing readyQueue_;
    /** Lanes that must (re)issue a fetch. */
    LaneRing fetchQueue_;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_RT_UNIT_HH
