/**
 * @file
 * Ray-tracing accelerator unit (one per SM, paper Fig. 2 / Table II).
 *
 * Up to rtMaxWarps warps are resident at once; each lane traverses the
 * BVH with a TraversalStepper. Every node visit requires the node's data:
 * the unit issues a line fetch through the SM's L1D (merging through the
 * MSHR) and performs the visit when the data arrives, consuming one of
 * rtVisitsPerCycle visit slots. Leaf visits additionally stream the leaf's
 * triangle data as prefetch-style fetches that generate cache/DRAM traffic
 * without stalling traversal.
 */

#ifndef ZATEL_GPUSIM_RT_UNIT_HH
#define ZATEL_GPUSIM_RT_UNIT_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "gpusim/config.hh"
#include "gpusim/stats.hh"
#include "gpusim/warp.hh"

namespace zatel::gpusim
{

class Sm;

/** The per-SM ray-tracing accelerator. */
class RtUnit
{
  public:
    RtUnit(const GpuConfig *config, Sm *sm);

    /** Admit @p warp into a free slot. @return false when full. */
    bool tryAdmit(uint32_t warp_slot, Warp *warp);

    /** Node data for (warp_slot, lane) arrived. */
    void onFill(uint32_t warp_slot, uint32_t lane);

    /** Advance one cycle: issue fetches, execute visits, retire warps. */
    void tick(uint64_t now, GpuStats &stats);

    bool idle() const { return resident_.empty(); }
    size_t residentWarps() const { return resident_.size(); }

    /** Another warp can be admitted (used by the SM's event predicate). */
    bool hasFreeSlot() const { return resident_.size() < config_->rtMaxWarps; }

    /**
     * True when the unit has no lane ready to visit and no fetch to
     * (re)issue — every resident lane is waiting on memory, so the next
     * tick that matters is fill-driven (the SM's fill queue schedules
     * it). A quiet tick still samples residency; fastForward() applies
     * that accrual in closed form for skipped cycles (sim_clock.hh).
     */
    bool quiet() const { return readyQueue_.empty() && fetchQueue_.empty(); }

    /**
     * Apply @p cycles of skipped-tick residency sampling: each resident
     * warp contributes one rtResidentWarpCycle and lanesRemaining active
     * rays per skipped cycle, exactly as @p cycles quiet tick()s would.
     * @pre the unit is quiet() and stays untouched across the skip.
     */
    void fastForward(uint64_t cycles, GpuStats &stats) const;

  private:
    struct LaneRef
    {
        uint32_t warpSlot = 0;
        uint32_t lane = 0;
    };

    /** Resident warp bookkeeping. */
    struct Resident
    {
        uint32_t warpSlot = 0;
        Warp *warp = nullptr;
        uint32_t lanesRemaining = 0;
    };

    Resident *findResident(uint32_t warp_slot);
    /** Issue the pending node fetch of a lane. @return false on stall. */
    bool issueFetch(const LaneRef &ref, uint64_t now, GpuStats &stats);
    /** Execute one node visit for a ready lane. */
    void executeVisit(const LaneRef &ref, uint64_t now, GpuStats &stats);
    Warp *warpAt(uint32_t warp_slot);

    const GpuConfig *config_ = nullptr;
    Sm *sm_ = nullptr;
    std::vector<Resident> resident_;
    /** Lanes whose node data is available. */
    std::deque<LaneRef> readyQueue_;
    /** Lanes that must (re)issue a fetch. */
    std::deque<LaneRef> fetchQueue_;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_RT_UNIT_HH
