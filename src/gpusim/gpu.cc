#include "gpusim/gpu.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "gpusim/sim_clock.hh"
#include "obs/metrics_registry.hh"
#include "obs/trace_recorder.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace zatel::gpusim
{

namespace
{

/** Lazily-registered whole-process simulator counters; every inc() is
 *  a no-op while the global MetricsRegistry is disabled. */
struct GpuMetrics
{
    obs::Counter *runs;
    obs::Counter *cycles;
    obs::Counter *warpsLaunched;
    obs::Counter *raysTraced;
    obs::Counter *l2Accesses;
    obs::Counter *l2Misses;
    obs::Counter *dramBytesRead;
    obs::Counter *dramBytesWritten;
    obs::Counter *fastForwardedCycles;
    obs::Counter *smTicksSkipped;
};

GpuMetrics &
gpuMetrics()
{
    static GpuMetrics metrics = [] {
        auto &reg = obs::MetricsRegistry::global();
        GpuMetrics m;
        m.runs = reg.counter("zatel_gpu_runs_total",
                             "Completed Gpu::run() invocations");
        m.cycles = reg.counter("zatel_gpu_cycles_total",
                               "Cycles simulated across all runs");
        m.warpsLaunched =
            reg.counter("zatel_gpu_warps_launched_total",
                        "Warps launched (== retired: runs drain)");
        m.raysTraced = reg.counter("zatel_gpu_rays_traced_total",
                                   "Rays traced across all runs");
        m.l2Accesses = reg.counter("zatel_gpu_l2_accesses_total",
                                   "L2 cache accesses");
        m.l2Misses =
            reg.counter("zatel_gpu_l2_misses_total", "L2 cache misses");
        m.dramBytesRead =
            reg.counter("zatel_gpu_dram_bytes_total",
                        "DRAM traffic in bytes by direction",
                        {{"dir", "read"}});
        m.dramBytesWritten =
            reg.counter("zatel_gpu_dram_bytes_total",
                        "DRAM traffic in bytes by direction",
                        {{"dir", "write"}});
        m.fastForwardedCycles =
            reg.counter("zatel_gpu_fast_forwarded_cycles_total",
                        "Cycles skipped by quiescence fast-forward");
        m.smTicksSkipped =
            reg.counter("zatel_gpu_sm_ticks_skipped_total",
                        "Per-SM tick() calls skipped as provably idle");
        return m;
    }();
    return metrics;
}

/** Process-wide tick mode backing setGlobalTickMode()/globalTickMode(). */
std::atomic<uint8_t> &
globalTickModeSlot()
{
    static std::atomic<uint8_t> slot{
        static_cast<uint8_t>(TickMode::Auto)};
    return slot;
}

/** Env fallback: ZATEL_GPU_SLOW_TICK set to anything but "" / "0"
 *  selects the reference loop; otherwise the fast path. Read once —
 *  tests that need to flip at runtime use setGlobalTickMode(). */
TickMode
envTickMode()
{
    static const TickMode mode = [] {
        const char *value = std::getenv("ZATEL_GPU_SLOW_TICK");
        if (value != nullptr && *value != '\0' &&
            std::strcmp(value, "0") != 0) {
            return TickMode::Slow;
        }
        return TickMode::Fast;
    }();
    return mode;
}

/** Collapse instance > global > environment into Fast or Slow. */
TickMode
resolveTickMode(TickMode instance_mode)
{
    if (instance_mode != TickMode::Auto)
        return instance_mode;
    TickMode global = static_cast<TickMode>(
        globalTickModeSlot().load(std::memory_order_relaxed));
    if (global != TickMode::Auto)
        return global;
    return envTickMode();
}

/** First warp-dispatch boundary strictly after @p cycle. */
uint64_t
nextDispatchCycle(uint64_t cycle, uint32_t epoch)
{
    return (cycle / epoch + 1) * static_cast<uint64_t>(epoch);
}

} // namespace

void
setGlobalTickMode(TickMode mode)
{
    globalTickModeSlot().store(static_cast<uint8_t>(mode),
                               std::memory_order_relaxed);
}

TickMode
globalTickMode()
{
    return static_cast<TickMode>(
        globalTickModeSlot().load(std::memory_order_relaxed));
}

Gpu::Gpu(const GpuConfig &config, const SimWorkload &workload)
    : config_(config), workload_(workload), memory_(config)
{
    config_.validate();
    ZATEL_ASSERT(workload.bvh != nullptr, "workload has no BVH");

    sms_.reserve(config_.numSms);
    for (uint32_t s = 0; s < config_.numSms; ++s)
        sms_.push_back(std::make_unique<Sm>(s, &config_, &memory_));

    buildWarps();
}

void
Gpu::buildWarps()
{
    uint32_t n = static_cast<uint32_t>(workload_.threads.size());
    uint32_t warp_id = 0;
    for (uint32_t begin = 0; begin < n; begin += config_.warpSize) {
        uint32_t end = std::min(n, begin + config_.warpSize);
        pendingWarps_.push_back(std::make_unique<Warp>(
            warp_id++, &config_, &workload_, begin, end));
    }
}

void
Gpu::setProgressCallback(uint64_t interval, ProgressCallback callback)
{
    ZATEL_ASSERT(interval > 0, "progress interval must be positive");
    progressInterval_ = interval;
    progressCallback_ = std::move(callback);
}

GpuStats
Gpu::snapshotStats(uint64_t cycle) const
{
    GpuStats stats;
    stats.cycles = cycle;
    for (const auto &sm : sms_)
        sm->accumulateStats(stats);
    stats.cycles = cycle;
    memory_.accumulateStats(stats);
    return stats;
}

void
Gpu::dispatchPendingWarps(std::vector<uint64_t> &sm_wake_at,
                          std::vector<uint64_t> *sm_settled_at)
{
    while (!pendingWarps_.empty()) {
        bool placed = false;
        for (uint32_t i = 0; i < config_.numSms && !pendingWarps_.empty();
             ++i) {
            uint32_t s = (nextLaunchSm_ + i) % config_.numSms;
            if (sms_[s]->hasFreeSlot()) {
                sms_[s]->launchWarp(std::move(pendingWarps_.front()));
                pendingWarps_.pop_front();
                ++launchedWarps_;
                nextLaunchSm_ = (s + 1) % config_.numSms;
                sm_wake_at[s] = 0; // wake the SM for its new warp
                if (sm_settled_at != nullptr)
                    (*sm_settled_at)[s] = kNoEventCycle;
                placed = true;
            }
        }
        if (!placed)
            break;
    }
}

bool
Gpu::runCycleLoop(uint64_t max_cycles, bool fast, uint32_t epoch,
                  uint64_t &out_cycle)
{
    const size_t num_sms = sms_.size();

    // Per-SM sleep state (fast path only). An SM sleeps until its own
    // next event (smWakeAt), a ready fill, or a warp launch; skipped
    // ticks accrue in smSkipped and are applied in closed form by
    // Sm::fastForward before the SM state is next observed. See
    // sim_clock.hh for the contract that makes this stat-exact.
    std::vector<uint64_t> smWakeAt(num_sms, 0);
    std::vector<uint64_t> smSkipped(num_sms, 0);
    auto flushSkipped = [&] {
        for (size_t i = 0; i < num_sms; ++i) {
            if (smSkipped[i] != 0) {
                sms_[i]->fastForward(smSkipped[i]);
                smSkipped[i] = 0;
            }
        }
    };

    bool completed = false;
    uint64_t cycle = 0;
    while (cycle < max_cycles) {
        // Early-stop probe for sampled-simulation baselines.
        if (progressCallback_ && cycle == nextProbeCycle_) {
            nextProbeCycle_ += progressInterval_;
            flushSkipped(); // snapshots must observe accrued stats
            if (progressCallback_(cycle, snapshotStats(cycle))) {
                stoppedEarly_ = true;
                completed = true;
                break;
            }
        }

        // 1. Dispatch pending warps into free SM slots (round-robin) at
        // epoch boundaries. Epoch 1 (the default) dispatches every
        // cycle, the legacy behaviour.
        if (cycle % epoch == 0)
            dispatchPendingWarps(smWakeAt, nullptr);

        // 2. Advance the memory system, then the SMs. The fast path
        // skips components whose tick is provably linear-accrual-only;
        // both paths produce byte-identical GpuStats
        // (tests/test_gpu_fastpath.cc). min_wake tracks the earliest
        // SM wake-up so step 4 can tell "someone is due next cycle"
        // (the overwhelmingly common case) from "a jump is plausible"
        // without re-scanning anything.
        uint64_t min_wake = kNoEventCycle;
        if (fast) {
            memory_.tickActive(cycle);
            for (size_t i = 0; i < num_sms; ++i) {
                if (cycle < smWakeAt[i] &&
                    !memory_.hasReadyFill(static_cast<uint32_t>(i), cycle)) {
                    ++smSkipped[i];
                    ++skippedSmTicks_;
                    min_wake = std::min(min_wake, smWakeAt[i]);
                    continue;
                }
                if (smSkipped[i] != 0) {
                    sms_[i]->fastForward(smSkipped[i]);
                    smSkipped[i] = 0;
                }
                sms_[i]->tickFast(cycle);
                uint64_t wake = sms_[i]->wakeCycleAfterTick(cycle);
                smWakeAt[i] = wake;
                min_wake = std::min(min_wake, wake);
            }
        } else {
            memory_.tick(cycle);
            for (auto &sm : sms_)
                sm->tick(cycle);
        }

        // 3. Termination check (cheap: counters only).
        if (pendingWarps_.empty() && memory_.idle()) {
            bool all_idle = true;
            for (auto &sm : sms_) {
                if (!sm->idle()) {
                    all_idle = false;
                    break;
                }
            }
            if (all_idle) {
                ++cycle; // count this final cycle
                completed = true;
                break;
            }
        }

        // 4. Advance the clock; when every SM sleeps past cycle + 1 and
        // the memory system is event-free, fast-forward straight to the
        // earliest known event (sim_clock.hh contract). Guarded by
        // min_wake so the common busy cycle pays one comparison here,
        // not a component scan.
        uint64_t next = cycle + 1;
        if (fast && min_wake > cycle + 1) {
            uint64_t event = min_wake;
            bool launch_due = false;
            if (!pendingWarps_.empty()) {
                // A pending warp with somewhere to land makes the next
                // dispatch boundary meaningful: jump at most there.
                for (const auto &sm : sms_) {
                    if (sm->hasFreeSlot()) {
                        uint64_t boundary = nextDispatchCycle(cycle, epoch);
                        if (boundary <= cycle + 1)
                            launch_due = true;
                        else
                            event = std::min(event, boundary);
                        break;
                    }
                }
            }
            if (!launch_due) {
                for (size_t i = 0; i < num_sms && event > cycle + 1; ++i) {
                    // smWakeAt covers fills known when it was computed;
                    // nextFillCycle covers fills enqueued since.
                    event = std::min(
                        event,
                        memory_.nextFillCycle(static_cast<uint32_t>(i)));
                }
                if (event > cycle + 1) {
                    event = std::min(event, memory_.nextEventCycle(cycle));
                    if (progressCallback_)
                        event = std::min(event, nextProbeCycle_);
                    event = std::min(event, max_cycles);
                    if (event > next) {
                        uint64_t jump = event - next;
                        memory_.fastForward(jump);
                        for (size_t i = 0; i < num_sms; ++i)
                            smSkipped[i] += jump; // applied lazily on wake
                        fastForwardedCycles_ += jump;
                        next = event;
                    }
                }
            }
        }
        cycle = next;
    }

    flushSkipped(); // final stats must observe accrued RT residency
    out_cycle = cycle;
    return completed;
}

bool
Gpu::runEpochParallel(uint64_t max_cycles, uint32_t epoch,
                      uint32_t threads, uint64_t &out_cycle)
{
    const size_t num_sms = sms_.size();
    const uint32_t num_parts = memory_.numPartitions();

    // A span may cover at most the one-way NoC latency: a request an SM
    // sends at cycle c stages until the span barrier, and its partition
    // must not have been able to consume it during this span's memory
    // phase. With span <= max(1, nocLatency) the request's partition
    // arrival cycle (c + nocLatency, or c + 1 when the latency is 0) is
    // never before the next span's memory phase, so staging is
    // timing-invisible (docs/SIMULATOR.md, "Intra-simulation
    // parallelism").
    const uint64_t max_span =
        std::max<uint64_t>(1, config_.nocLatencyCycles);

    // Pool workers + the helping caller together execute `threads`
    // shards; shard s owns a contiguous SM range so per-SM state has a
    // single writer between barriers.
    ThreadPool pool(threads - 1);
    const uint32_t shards = threads;
    std::vector<size_t> shard_begin(shards + 1, 0);
    for (uint32_t i = 0; i < shards; ++i) {
        shard_begin[i + 1] = shard_begin[i] + num_sms / shards +
                             (i < num_sms % shards ? 1 : 0);
    }

    std::vector<uint64_t> sm_wake_at(num_sms, 0);
    std::vector<uint64_t> sm_skipped(num_sms, 0);
    std::vector<uint64_t> sm_skip_count(num_sms, 0);
    // First cycle after which the component has provably been idle with
    // nothing owed to it (kNoEventCycle while busy). Termination is
    // reconstructed exactly as max over these + 1 — idleness is
    // absorbing once no warps are pending and nothing is staged, so the
    // max is the serial loop's first all-idle cycle.
    std::vector<uint64_t> sm_settled_at(num_sms, 0);
    std::vector<uint64_t> part_idle_since(num_parts, 0);

    auto flushSkipped = [&] {
        for (size_t i = 0; i < num_sms; ++i) {
            if (sm_skipped[i] != 0) {
                sms_[i]->fastForward(sm_skipped[i]);
                sm_skipped[i] = 0;
            }
        }
    };

    memory_.setDeferSends(true);

    // Termination reconstruction, valid at any span barrier: state is
    // settled there, so the check is exact. Also evaluated once after
    // the loop — when the final span ends exactly at max_cycles the
    // while guard exits before the next span-start check would run, and
    // the serial loop's end-of-cycle check does complete in that case.
    auto tryFinish = [&](uint64_t &final_cycle) {
        if (!pendingWarps_.empty() || memory_.hasStagedSends())
            return false;
        bool all_idle = true;
        uint64_t last_active = 0;
        auto fold = [&](uint64_t since) {
            if (since == kNoEventCycle)
                all_idle = false;
            else
                last_active = std::max(last_active, since);
        };
        for (uint32_t p = 0; p < num_parts && all_idle; ++p)
            fold(part_idle_since[p]);
        for (size_t s = 0; s < num_sms && all_idle; ++s)
            fold(sm_settled_at[s]);
        if (!all_idle)
            return false;
        final_cycle = last_active + 1; // count the final cycle
        return true;
    };

    bool completed = false;
    uint64_t t = 0;
    while (t < max_cycles) {
        // A. Termination at the span barrier (runs before the probe,
        // like the serial loop's end-of-cycle check stops pre-probe).
        if (tryFinish(out_cycle)) {
            completed = true;
            break;
        }

        // B. Early-stop probe. Spans clamp to nextProbeCycle_, so every
        // probe cycle is a span start.
        if (progressCallback_ && t == nextProbeCycle_) {
            nextProbeCycle_ += progressInterval_;
            flushSkipped(); // snapshots must observe accrued stats
            if (progressCallback_(t, snapshotStats(t))) {
                stoppedEarly_ = true;
                completed = true;
                out_cycle = t;
                break;
            }
        }

        // C. Warp dispatch at epoch boundaries (spans clamp to them).
        if (t % epoch == 0)
            dispatchPendingWarps(sm_wake_at, &sm_settled_at);

        // D. Route the previous span's staged requests in (send cycle,
        // SM index) order — the exact serial enqueue order.
        if (memory_.hasStagedSends()) {
            memory_.flushStagedSends();
            for (uint32_t p = 0; p < num_parts; ++p) {
                if (!memory_.partition(p).idle())
                    part_idle_since[p] = kNoEventCycle;
            }
        }

        // E. Whole-device jump when every SM sleeps past t and the
        // memory system is event-free until the earliest wake.
        uint64_t event = kNoEventCycle;
        for (size_t s = 0; s < num_sms; ++s) {
            event = std::min(event, sm_wake_at[s]);
            event = std::min(
                event, memory_.nextFillCycle(static_cast<uint32_t>(s)));
        }
        if (!pendingWarps_.empty()) {
            for (const auto &sm : sms_) {
                if (sm->hasFreeSlot()) {
                    // Possible only between epoch boundaries (dispatch
                    // just ran otherwise): the next boundary's dispatch
                    // is a real event.
                    event = std::min(event, nextDispatchCycle(t, epoch));
                    break;
                }
            }
        }
        if (event > t && t > 0) {
            event = std::min(event, memory_.nextEventCycle(t - 1));
            if (progressCallback_)
                event = std::min(event, nextProbeCycle_);
            event = std::min(event, max_cycles);
            if (event > t) {
                uint64_t jump = event - t;
                memory_.fastForward(jump);
                for (size_t s = 0; s < num_sms; ++s)
                    sm_skipped[s] += jump; // applied lazily on wake
                fastForwardedCycles_ += jump;
                t = event;
                continue;
            }
        }

        // F. Span bounds: never past a dispatch boundary, a probe, or
        // the NoC-latency staging window.
        uint64_t t_end = std::min(t + max_span, nextDispatchCycle(t, epoch));
        if (progressCallback_)
            t_end = std::min(t_end, nextProbeCycle_);
        t_end = std::min(t_end, max_cycles);

        // G. Memory phase, single-threaded: per-cycle partition ticks in
        // index order reproduce the serial loop's fill-heap insertion
        // order exactly (ties in the per-SM min-heaps pop in insertion
        // order only if insertion order is preserved). Fills delivered
        // here for cycles inside this span are already in the per-SM
        // queues when the SM phase reads them — the order the serial
        // loop establishes by ticking memory before SMs each cycle.
        for (uint64_t c = t; c < t_end; ++c) {
            memory_.tickActive(c);
            for (uint32_t p = 0; p < num_parts; ++p) {
                if (memory_.partition(p).idle()) {
                    if (part_idle_since[p] == kNoEventCycle)
                        part_idle_since[p] = c;
                } else {
                    part_idle_since[p] = kNoEventCycle;
                }
            }
        }

        // H. SM phase: each shard advances its SMs through [t, t_end)
        // independently. Cross-SM traffic stages in per-SM lanes, so
        // shards only touch state they own; the parallelForChunked join
        // is the barrier that publishes it all back.
        auto run_shard = [&](size_t shard) {
            for (size_t s = shard_begin[shard]; s < shard_begin[shard + 1];
                 ++s) {
                Sm &sm = *sms_[s];
                uint64_t c = t;
                while (c < t_end) {
                    uint64_t fill =
                        memory_.nextFillCycle(static_cast<uint32_t>(s));
                    if (c < sm_wake_at[s] && fill > c) {
                        // Sleep to the next local event, clamped to the
                        // barrier.
                        uint64_t next = std::min(
                            std::min(sm_wake_at[s], fill), t_end);
                        sm_skip_count[s] += next - c;
                        sm_skipped[s] += next - c;
                        c = next;
                        continue;
                    }
                    if (sm_skipped[s] != 0) {
                        sm.fastForward(sm_skipped[s]);
                        sm_skipped[s] = 0;
                    }
                    sm.tickFast(c);
                    sm_wake_at[s] = sm.wakeCycleAfterTick(c);
                    if (sm.settled()) {
                        if (sm_settled_at[s] == kNoEventCycle)
                            sm_settled_at[s] = c;
                    } else {
                        sm_settled_at[s] = kNoEventCycle;
                    }
                    ++c;
                }
            }
        };
        pool.parallelForChunked(shards, 1, run_shard);

        ++parallelSpans_;
        t = t_end;
    }

    // The device may drain exactly at the max_cycles boundary.
    if (!completed && tryFinish(out_cycle))
        completed = true;

    memory_.setDeferSends(false);
    flushSkipped(); // final stats must observe accrued RT residency
    for (size_t s = 0; s < num_sms; ++s)
        skippedSmTicks_ += sm_skip_count[s];
    return completed;
}

GpuStats
Gpu::run(uint64_t max_cycles)
{
    ZATEL_ASSERT(!ran_, "Gpu::run() is single-use");
    ran_ = true;
    ZATEL_TRACE_SCOPE("gpu.run");

    const bool fast = resolveTickMode(tickMode_) == TickMode::Fast;
    epochLengthUsed_ = std::max(1u, resolveEpochLength(config_.epochLength));
    // The parallel loop is a fast-path execution strategy; the slow
    // reference loop stays strictly serial so the three-way oracle
    // chain (slow vs fast-serial vs fast-parallel) keeps a fixed base.
    simThreadsUsed_ =
        fast ? std::max(1u, std::min<uint32_t>(
                                resolveSimThreads(config_.simThreads),
                                static_cast<uint32_t>(sms_.size())))
             : 1;

    // Explicit probe schedule (never `cycle % interval`: fast-forward
    // clamps to nextProbeCycle_, so a probe can never be jumped over).
    // The first probe fires at cycle == interval, matching the
    // reference loop's `cycle > 0 && cycle % interval == 0`.
    if (progressCallback_)
        nextProbeCycle_ = progressInterval_;

    uint64_t cycle = 0;
    bool completed =
        simThreadsUsed_ > 1
            ? runEpochParallel(max_cycles, epochLengthUsed_,
                               simThreadsUsed_, cycle)
            : runCycleLoop(max_cycles, fast, epochLengthUsed_, cycle);

    if (!completed)
        panic("simulation exceeded ", max_cycles,
              " cycles; likely a deadlock");

    GpuStats stats = snapshotStats(cycle);

    for (const ThreadWork &thread : workload_.threads) {
        if (thread.selected)
            ++stats.pixelsTraced;
        else
            ++stats.pixelsFiltered;
        stats.raysTraced += thread.rayCount;
    }

    // Surface the run's headline counters into the metrics registry
    // (docs/OBSERVABILITY.md). Counters self-gate on the registry's
    // enabled flag, so this is a handful of relaxed loads when off;
    // crucially it reads `stats` only, never perturbing the sim.
    if (obs::metricsEnabled()) {
        GpuMetrics &m = gpuMetrics();
        m.runs->inc();
        m.cycles->inc(stats.cycles);
        m.warpsLaunched->inc(stats.warpsLaunched);
        m.raysTraced->inc(stats.raysTraced);
        m.l2Accesses->inc(stats.l2Accesses);
        m.l2Misses->inc(stats.l2Misses);
        m.dramBytesRead->inc(stats.dramBytesRead);
        m.dramBytesWritten->inc(stats.dramBytesWritten);
        m.fastForwardedCycles->inc(fastForwardedCycles_);
        m.smTicksSkipped->inc(skippedSmTicks_);
    }
    return stats;
}

StatsReport
Gpu::statsReport() const
{
    ZATEL_ASSERT(ran_, "statsReport() requires a completed run()");
    StatsReport report;
    for (size_t s = 0; s < sms_.size(); ++s)
        sms_[s]->reportInto(report, "sm" + std::to_string(s));
    for (uint32_t p = 0; p < memory_.numPartitions(); ++p)
        memory_.partition(p).reportInto(report,
                                        "mem" + std::to_string(p));
    return report;
}

GpuStats
simulateFullFrame(const GpuConfig &config, const rt::Tracer &tracer,
                  uint32_t width, uint32_t height)
{
    SimWorkload workload =
        SimWorkload::buildFullFrame(tracer, width, height);
    Gpu gpu(config, workload);
    return gpu.run();
}

} // namespace zatel::gpusim
