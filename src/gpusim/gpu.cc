#include "gpusim/gpu.hh"

#include <algorithm>

#include "obs/metrics_registry.hh"
#include "obs/trace_recorder.hh"
#include "util/logging.hh"

namespace zatel::gpusim
{

namespace
{

/** Lazily-registered whole-process simulator counters; every inc() is
 *  a no-op while the global MetricsRegistry is disabled. */
struct GpuMetrics
{
    obs::Counter *runs;
    obs::Counter *cycles;
    obs::Counter *warpsLaunched;
    obs::Counter *raysTraced;
    obs::Counter *l2Accesses;
    obs::Counter *l2Misses;
    obs::Counter *dramBytesRead;
    obs::Counter *dramBytesWritten;
};

GpuMetrics &
gpuMetrics()
{
    static GpuMetrics metrics = [] {
        auto &reg = obs::MetricsRegistry::global();
        GpuMetrics m;
        m.runs = reg.counter("zatel_gpu_runs_total",
                             "Completed Gpu::run() invocations");
        m.cycles = reg.counter("zatel_gpu_cycles_total",
                               "Cycles simulated across all runs");
        m.warpsLaunched =
            reg.counter("zatel_gpu_warps_launched_total",
                        "Warps launched (== retired: runs drain)");
        m.raysTraced = reg.counter("zatel_gpu_rays_traced_total",
                                   "Rays traced across all runs");
        m.l2Accesses = reg.counter("zatel_gpu_l2_accesses_total",
                                   "L2 cache accesses");
        m.l2Misses =
            reg.counter("zatel_gpu_l2_misses_total", "L2 cache misses");
        m.dramBytesRead =
            reg.counter("zatel_gpu_dram_bytes_total",
                        "DRAM traffic in bytes by direction",
                        {{"dir", "read"}});
        m.dramBytesWritten =
            reg.counter("zatel_gpu_dram_bytes_total",
                        "DRAM traffic in bytes by direction",
                        {{"dir", "write"}});
        return m;
    }();
    return metrics;
}

} // namespace

Gpu::Gpu(const GpuConfig &config, const SimWorkload &workload)
    : config_(config), workload_(workload), memory_(config)
{
    config_.validate();
    ZATEL_ASSERT(workload.bvh != nullptr, "workload has no BVH");

    sms_.reserve(config_.numSms);
    for (uint32_t s = 0; s < config_.numSms; ++s)
        sms_.push_back(std::make_unique<Sm>(s, &config_, &memory_));

    buildWarps();
}

void
Gpu::buildWarps()
{
    uint32_t n = static_cast<uint32_t>(workload_.threads.size());
    uint32_t warp_id = 0;
    for (uint32_t begin = 0; begin < n; begin += config_.warpSize) {
        uint32_t end = std::min(n, begin + config_.warpSize);
        pendingWarps_.push_back(std::make_unique<Warp>(
            warp_id++, &config_, &workload_, begin, end));
    }
}

void
Gpu::setProgressCallback(uint64_t interval, ProgressCallback callback)
{
    ZATEL_ASSERT(interval > 0, "progress interval must be positive");
    progressInterval_ = interval;
    progressCallback_ = std::move(callback);
}

GpuStats
Gpu::snapshotStats(uint64_t cycle) const
{
    GpuStats stats;
    stats.cycles = cycle;
    for (const auto &sm : sms_)
        sm->accumulateStats(stats);
    stats.cycles = cycle;
    memory_.accumulateStats(stats);
    return stats;
}

GpuStats
Gpu::run(uint64_t max_cycles)
{
    ZATEL_ASSERT(!ran_, "Gpu::run() is single-use");
    ran_ = true;
    ZATEL_TRACE_SCOPE("gpu.run");

    uint64_t cycle = 0;
    for (; cycle < max_cycles; ++cycle) {
        // Early-stop probe for sampled-simulation baselines.
        if (progressCallback_ && cycle > 0 &&
            cycle % progressInterval_ == 0) {
            if (progressCallback_(cycle, snapshotStats(cycle))) {
                stoppedEarly_ = true;
                break;
            }
        }

        // 1. Dispatch pending warps into free SM slots (round-robin).
        while (!pendingWarps_.empty()) {
            bool placed = false;
            for (uint32_t i = 0; i < config_.numSms && !pendingWarps_.empty();
                 ++i) {
                uint32_t s = (nextLaunchSm_ + i) % config_.numSms;
                if (sms_[s]->hasFreeSlot()) {
                    sms_[s]->launchWarp(std::move(pendingWarps_.front()));
                    pendingWarps_.pop_front();
                    ++launchedWarps_;
                    nextLaunchSm_ = (s + 1) % config_.numSms;
                    placed = true;
                }
            }
            if (!placed)
                break;
        }

        // 2. Advance the memory system, then the SMs.
        memory_.tick(cycle);
        for (auto &sm : sms_)
            sm->tick(cycle);

        // 3. Termination check (cheap: counters only).
        if (pendingWarps_.empty() && memory_.idle()) {
            bool all_idle = true;
            for (auto &sm : sms_) {
                if (!sm->idle()) {
                    all_idle = false;
                    break;
                }
            }
            if (all_idle) {
                ++cycle; // count this final cycle
                break;
            }
        }
    }

    if (cycle >= max_cycles)
        panic("simulation exceeded ", max_cycles,
              " cycles; likely a deadlock");

    GpuStats stats = snapshotStats(cycle);

    for (const ThreadWork &thread : workload_.threads) {
        if (thread.selected)
            ++stats.pixelsTraced;
        else
            ++stats.pixelsFiltered;
        stats.raysTraced += thread.record.rays.size();
    }

    // Surface the run's headline counters into the metrics registry
    // (docs/OBSERVABILITY.md). Counters self-gate on the registry's
    // enabled flag, so this is a handful of relaxed loads when off;
    // crucially it reads `stats` only, never perturbing the sim.
    if (obs::metricsEnabled()) {
        GpuMetrics &m = gpuMetrics();
        m.runs->inc();
        m.cycles->inc(stats.cycles);
        m.warpsLaunched->inc(stats.warpsLaunched);
        m.raysTraced->inc(stats.raysTraced);
        m.l2Accesses->inc(stats.l2Accesses);
        m.l2Misses->inc(stats.l2Misses);
        m.dramBytesRead->inc(stats.dramBytesRead);
        m.dramBytesWritten->inc(stats.dramBytesWritten);
    }
    return stats;
}

StatsReport
Gpu::statsReport() const
{
    ZATEL_ASSERT(ran_, "statsReport() requires a completed run()");
    StatsReport report;
    for (size_t s = 0; s < sms_.size(); ++s)
        sms_[s]->reportInto(report, "sm" + std::to_string(s));
    for (uint32_t p = 0; p < memory_.numPartitions(); ++p)
        memory_.partition(p).reportInto(report,
                                        "mem" + std::to_string(p));
    return report;
}

GpuStats
simulateFullFrame(const GpuConfig &config, const rt::Tracer &tracer,
                  uint32_t width, uint32_t height)
{
    SimWorkload workload =
        SimWorkload::buildFullFrame(tracer, width, height);
    Gpu gpu(config, workload);
    return gpu.run();
}

} // namespace zatel::gpusim
