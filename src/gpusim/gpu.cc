#include "gpusim/gpu.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "gpusim/sim_clock.hh"
#include "obs/metrics_registry.hh"
#include "obs/trace_recorder.hh"
#include "util/logging.hh"

namespace zatel::gpusim
{

namespace
{

/** Lazily-registered whole-process simulator counters; every inc() is
 *  a no-op while the global MetricsRegistry is disabled. */
struct GpuMetrics
{
    obs::Counter *runs;
    obs::Counter *cycles;
    obs::Counter *warpsLaunched;
    obs::Counter *raysTraced;
    obs::Counter *l2Accesses;
    obs::Counter *l2Misses;
    obs::Counter *dramBytesRead;
    obs::Counter *dramBytesWritten;
    obs::Counter *fastForwardedCycles;
    obs::Counter *smTicksSkipped;
};

GpuMetrics &
gpuMetrics()
{
    static GpuMetrics metrics = [] {
        auto &reg = obs::MetricsRegistry::global();
        GpuMetrics m;
        m.runs = reg.counter("zatel_gpu_runs_total",
                             "Completed Gpu::run() invocations");
        m.cycles = reg.counter("zatel_gpu_cycles_total",
                               "Cycles simulated across all runs");
        m.warpsLaunched =
            reg.counter("zatel_gpu_warps_launched_total",
                        "Warps launched (== retired: runs drain)");
        m.raysTraced = reg.counter("zatel_gpu_rays_traced_total",
                                   "Rays traced across all runs");
        m.l2Accesses = reg.counter("zatel_gpu_l2_accesses_total",
                                   "L2 cache accesses");
        m.l2Misses =
            reg.counter("zatel_gpu_l2_misses_total", "L2 cache misses");
        m.dramBytesRead =
            reg.counter("zatel_gpu_dram_bytes_total",
                        "DRAM traffic in bytes by direction",
                        {{"dir", "read"}});
        m.dramBytesWritten =
            reg.counter("zatel_gpu_dram_bytes_total",
                        "DRAM traffic in bytes by direction",
                        {{"dir", "write"}});
        m.fastForwardedCycles =
            reg.counter("zatel_gpu_fast_forwarded_cycles_total",
                        "Cycles skipped by quiescence fast-forward");
        m.smTicksSkipped =
            reg.counter("zatel_gpu_sm_ticks_skipped_total",
                        "Per-SM tick() calls skipped as provably idle");
        return m;
    }();
    return metrics;
}

/** Process-wide tick mode backing setGlobalTickMode()/globalTickMode(). */
std::atomic<uint8_t> &
globalTickModeSlot()
{
    static std::atomic<uint8_t> slot{
        static_cast<uint8_t>(TickMode::Auto)};
    return slot;
}

/** Env fallback: ZATEL_GPU_SLOW_TICK set to anything but "" / "0"
 *  selects the reference loop; otherwise the fast path. Read once —
 *  tests that need to flip at runtime use setGlobalTickMode(). */
TickMode
envTickMode()
{
    static const TickMode mode = [] {
        const char *value = std::getenv("ZATEL_GPU_SLOW_TICK");
        if (value != nullptr && *value != '\0' &&
            std::strcmp(value, "0") != 0) {
            return TickMode::Slow;
        }
        return TickMode::Fast;
    }();
    return mode;
}

/** Collapse instance > global > environment into Fast or Slow. */
TickMode
resolveTickMode(TickMode instance_mode)
{
    if (instance_mode != TickMode::Auto)
        return instance_mode;
    TickMode global = static_cast<TickMode>(
        globalTickModeSlot().load(std::memory_order_relaxed));
    if (global != TickMode::Auto)
        return global;
    return envTickMode();
}

} // namespace

void
setGlobalTickMode(TickMode mode)
{
    globalTickModeSlot().store(static_cast<uint8_t>(mode),
                               std::memory_order_relaxed);
}

TickMode
globalTickMode()
{
    return static_cast<TickMode>(
        globalTickModeSlot().load(std::memory_order_relaxed));
}

Gpu::Gpu(const GpuConfig &config, const SimWorkload &workload)
    : config_(config), workload_(workload), memory_(config)
{
    config_.validate();
    ZATEL_ASSERT(workload.bvh != nullptr, "workload has no BVH");

    sms_.reserve(config_.numSms);
    for (uint32_t s = 0; s < config_.numSms; ++s)
        sms_.push_back(std::make_unique<Sm>(s, &config_, &memory_));

    buildWarps();
}

void
Gpu::buildWarps()
{
    uint32_t n = static_cast<uint32_t>(workload_.threads.size());
    uint32_t warp_id = 0;
    for (uint32_t begin = 0; begin < n; begin += config_.warpSize) {
        uint32_t end = std::min(n, begin + config_.warpSize);
        pendingWarps_.push_back(std::make_unique<Warp>(
            warp_id++, &config_, &workload_, begin, end));
    }
}

void
Gpu::setProgressCallback(uint64_t interval, ProgressCallback callback)
{
    ZATEL_ASSERT(interval > 0, "progress interval must be positive");
    progressInterval_ = interval;
    progressCallback_ = std::move(callback);
}

GpuStats
Gpu::snapshotStats(uint64_t cycle) const
{
    GpuStats stats;
    stats.cycles = cycle;
    for (const auto &sm : sms_)
        sm->accumulateStats(stats);
    stats.cycles = cycle;
    memory_.accumulateStats(stats);
    return stats;
}

GpuStats
Gpu::run(uint64_t max_cycles)
{
    ZATEL_ASSERT(!ran_, "Gpu::run() is single-use");
    ran_ = true;
    ZATEL_TRACE_SCOPE("gpu.run");

    const bool fast = resolveTickMode(tickMode_) == TickMode::Fast;
    const size_t num_sms = sms_.size();

    // Per-SM sleep state (fast path only). An SM sleeps until its own
    // next event (smWakeAt), a ready fill, or a warp launch; skipped
    // ticks accrue in smSkipped and are applied in closed form by
    // Sm::fastForward before the SM state is next observed. See
    // sim_clock.hh for the contract that makes this stat-exact.
    std::vector<uint64_t> smWakeAt(num_sms, 0);
    std::vector<uint64_t> smSkipped(num_sms, 0);
    auto flushSkipped = [&] {
        for (size_t i = 0; i < num_sms; ++i) {
            if (smSkipped[i] != 0) {
                sms_[i]->fastForward(smSkipped[i]);
                smSkipped[i] = 0;
            }
        }
    };

    // Explicit probe schedule (never `cycle % interval`: fast-forward
    // clamps to nextProbeCycle_, so a probe can never be jumped over).
    // The first probe fires at cycle == interval, matching the
    // reference loop's `cycle > 0 && cycle % interval == 0`.
    if (progressCallback_)
        nextProbeCycle_ = progressInterval_;

    bool completed = false;
    uint64_t cycle = 0;
    while (cycle < max_cycles) {
        // Early-stop probe for sampled-simulation baselines.
        if (progressCallback_ && cycle == nextProbeCycle_) {
            nextProbeCycle_ += progressInterval_;
            flushSkipped(); // snapshots must observe accrued stats
            if (progressCallback_(cycle, snapshotStats(cycle))) {
                stoppedEarly_ = true;
                completed = true;
                break;
            }
        }

        // 1. Dispatch pending warps into free SM slots (round-robin).
        while (!pendingWarps_.empty()) {
            bool placed = false;
            for (uint32_t i = 0; i < config_.numSms && !pendingWarps_.empty();
                 ++i) {
                uint32_t s = (nextLaunchSm_ + i) % config_.numSms;
                if (sms_[s]->hasFreeSlot()) {
                    sms_[s]->launchWarp(std::move(pendingWarps_.front()));
                    pendingWarps_.pop_front();
                    ++launchedWarps_;
                    nextLaunchSm_ = (s + 1) % config_.numSms;
                    smWakeAt[s] = 0; // wake the SM for its new warp
                    placed = true;
                }
            }
            if (!placed)
                break;
        }

        // 2. Advance the memory system, then the SMs. The fast path
        // skips components whose tick is provably linear-accrual-only;
        // both paths produce byte-identical GpuStats
        // (tests/test_gpu_fastpath.cc). min_wake tracks the earliest
        // SM wake-up so step 4 can tell "someone is due next cycle"
        // (the overwhelmingly common case) from "a jump is plausible"
        // without re-scanning anything.
        uint64_t min_wake = kNoEventCycle;
        if (fast) {
            memory_.tickActive(cycle);
            for (size_t i = 0; i < num_sms; ++i) {
                if (cycle < smWakeAt[i] &&
                    !memory_.hasReadyFill(static_cast<uint32_t>(i), cycle)) {
                    ++smSkipped[i];
                    ++skippedSmTicks_;
                    min_wake = std::min(min_wake, smWakeAt[i]);
                    continue;
                }
                if (smSkipped[i] != 0) {
                    sms_[i]->fastForward(smSkipped[i]);
                    smSkipped[i] = 0;
                }
                sms_[i]->tickFast(cycle);
                // A visibly busy SM is due again next cycle: skip the
                // nextEventCycle() scan for it (early wake is
                // stat-safe). The scan runs once per sleep transition.
                uint64_t wake = sms_[i]->likelyBusy()
                                    ? cycle + 1
                                    : sms_[i]->nextEventCycle(cycle);
                smWakeAt[i] = wake;
                min_wake = std::min(min_wake, wake);
            }
        } else {
            memory_.tick(cycle);
            for (auto &sm : sms_)
                sm->tick(cycle);
        }

        // 3. Termination check (cheap: counters only).
        if (pendingWarps_.empty() && memory_.idle()) {
            bool all_idle = true;
            for (auto &sm : sms_) {
                if (!sm->idle()) {
                    all_idle = false;
                    break;
                }
            }
            if (all_idle) {
                ++cycle; // count this final cycle
                completed = true;
                break;
            }
        }

        // 4. Advance the clock; when every SM sleeps past cycle + 1 and
        // the memory system is event-free, fast-forward straight to the
        // earliest known event (sim_clock.hh contract). Guarded by
        // min_wake so the common busy cycle pays one comparison here,
        // not a component scan.
        uint64_t next = cycle + 1;
        if (fast && min_wake > cycle + 1) {
            uint64_t event = min_wake;
            bool launch_due = false;
            if (!pendingWarps_.empty()) {
                // A pending warp with somewhere to land makes the very
                // next dispatch pass meaningful.
                for (const auto &sm : sms_) {
                    if (sm->hasFreeSlot()) {
                        launch_due = true;
                        break;
                    }
                }
            }
            if (!launch_due) {
                for (size_t i = 0; i < num_sms && event > cycle + 1; ++i) {
                    // smWakeAt covers fills known when it was computed;
                    // nextFillCycle covers fills enqueued since.
                    event = std::min(
                        event,
                        memory_.nextFillCycle(static_cast<uint32_t>(i)));
                }
                if (event > cycle + 1) {
                    event = std::min(event, memory_.nextEventCycle(cycle));
                    if (progressCallback_)
                        event = std::min(event, nextProbeCycle_);
                    event = std::min(event, max_cycles);
                    if (event > next) {
                        uint64_t jump = event - next;
                        memory_.fastForward(jump);
                        for (size_t i = 0; i < num_sms; ++i)
                            smSkipped[i] += jump; // applied lazily on wake
                        fastForwardedCycles_ += jump;
                        next = event;
                    }
                }
            }
        }
        cycle = next;
    }

    if (!completed)
        panic("simulation exceeded ", max_cycles,
              " cycles; likely a deadlock");

    flushSkipped(); // final stats must observe accrued RT residency

    GpuStats stats = snapshotStats(cycle);

    for (const ThreadWork &thread : workload_.threads) {
        if (thread.selected)
            ++stats.pixelsTraced;
        else
            ++stats.pixelsFiltered;
        stats.raysTraced += thread.record.rays.size();
    }

    // Surface the run's headline counters into the metrics registry
    // (docs/OBSERVABILITY.md). Counters self-gate on the registry's
    // enabled flag, so this is a handful of relaxed loads when off;
    // crucially it reads `stats` only, never perturbing the sim.
    if (obs::metricsEnabled()) {
        GpuMetrics &m = gpuMetrics();
        m.runs->inc();
        m.cycles->inc(stats.cycles);
        m.warpsLaunched->inc(stats.warpsLaunched);
        m.raysTraced->inc(stats.raysTraced);
        m.l2Accesses->inc(stats.l2Accesses);
        m.l2Misses->inc(stats.l2Misses);
        m.dramBytesRead->inc(stats.dramBytesRead);
        m.dramBytesWritten->inc(stats.dramBytesWritten);
        m.fastForwardedCycles->inc(fastForwardedCycles_);
        m.smTicksSkipped->inc(skippedSmTicks_);
    }
    return stats;
}

StatsReport
Gpu::statsReport() const
{
    ZATEL_ASSERT(ran_, "statsReport() requires a completed run()");
    StatsReport report;
    for (size_t s = 0; s < sms_.size(); ++s)
        sms_[s]->reportInto(report, "sm" + std::to_string(s));
    for (uint32_t p = 0; p < memory_.numPartitions(); ++p)
        memory_.partition(p).reportInto(report,
                                        "mem" + std::to_string(p));
    return report;
}

GpuStats
simulateFullFrame(const GpuConfig &config, const rt::Tracer &tracer,
                  uint32_t width, uint32_t height)
{
    SimWorkload workload =
        SimWorkload::buildFullFrame(tracer, width, height);
    Gpu gpu(config, workload);
    return gpu.run();
}

} // namespace zatel::gpusim
