#include "gpusim/cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zatel::gpusim
{

namespace
{

uint32_t
totalLines(uint64_t size_bytes, uint32_t line_bytes)
{
    return static_cast<uint32_t>(
        std::max<uint64_t>(1, size_bytes / line_bytes));
}

} // namespace

TagCache::TagCache(uint64_t size_bytes, uint32_t line_bytes, uint32_t assoc)
    : lineBytes_(line_bytes), index_(totalLines(size_bytes, line_bytes))
{
    ZATEL_ASSERT(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
                 "line size must be a power of two");
    uint64_t lines = totalLines(size_bytes, line_bytes);
    if (assoc == 0 || assoc >= lines) {
        // Fully associative: one set holding every line.
        assoc_ = static_cast<uint32_t>(lines);
        numSets_ = 1;
    } else {
        assoc_ = assoc;
        numSets_ = static_cast<uint32_t>(std::max<uint64_t>(1, lines / assoc));
    }
    size_t ways = static_cast<size_t>(numSets_) * assoc_;
    tags_.assign(ways, 0);
    lastUse_.assign(ways, 0);
    validBits_.assign((ways + 63) / 64, 0);
    dirtyBits_.assign((ways + 63) / 64, 0);
    validCount_.assign(numSets_, 0);
}

uint32_t
TagCache::setOf(uint64_t line_addr) const
{
    return static_cast<uint32_t>((line_addr / lineBytes_) % numSets_);
}

bool
TagCache::access(uint64_t line_addr)
{
    ZATEL_ASSERT(line_addr % lineBytes_ == 0,
                 "cache access address must be line-aligned");
    ++stats_.accesses;
    if (const LineSlot *way = index_.find(line_addr)) {
        ++stats_.hits;
        lastUse_[*way] = ++useCounter_;
        return true;
    }
    ++stats_.misses;
    return false;
}

bool
TagCache::contains(uint64_t line_addr) const
{
    return index_.contains(line_addr);
}

bool
TagCache::fill(uint64_t line_addr, bool dirty, bool &evicted_dirty)
{
    ZATEL_ASSERT(line_addr % lineBytes_ == 0,
                 "cache fill address must be line-aligned");
    evicted_dirty = false;
    if (LineSlot *existing = index_.find(line_addr)) {
        lastUse_[*existing] = ++useCounter_;
        if (dirty)
            setBit(dirtyBits_, *existing);
        return false;
    }

    uint32_t set = setOf(line_addr);
    uint32_t base = set * assoc_;
    uint32_t victim = ~0u;
    if (validCount_[set] < assoc_) {
        // A free way exists: take the first invalid one (matches the
        // reference first-fit policy).
        for (uint32_t w = 0; w < assoc_; ++w) {
            if (!testBit(validBits_, base + w)) {
                victim = base + w;
                break;
            }
        }
        ZATEL_ASSERT(victim != ~0u, "valid-count says a free way exists");
    } else {
        // LRU scan over the set's contiguous last-use lane (first
        // strict minimum wins, matching the reference tie-break).
        victim = base;
        uint64_t best = lastUse_[base];
        for (uint32_t w = 1; w < assoc_; ++w) {
            if (lastUse_[base + w] < best) {
                best = lastUse_[base + w];
                victim = base + w;
            }
        }
    }

    bool evicted = testBit(validBits_, victim);
    if (evicted) {
        ++stats_.evictions;
        if (testBit(dirtyBits_, victim)) {
            ++stats_.dirtyEvictions;
            evicted_dirty = true;
        }
        index_.erase(tags_[victim]);
    } else {
        setBit(validBits_, victim);
        ++validCount_[set];
    }
    tags_[victim] = line_addr;
    if (dirty)
        setBit(dirtyBits_, victim);
    else
        clearBit(dirtyBits_, victim);
    lastUse_[victim] = ++useCounter_;
    index_.insert(line_addr, victim);
    return evicted;
}

void
TagCache::markDirty(uint64_t line_addr)
{
    if (const LineSlot *way = index_.find(line_addr))
        setBit(dirtyBits_, *way);
}

uint64_t
TagCache::residentLines() const
{
    uint64_t count = 0;
    for (uint32_t c : validCount_)
        count += c;
    return count;
}

} // namespace zatel::gpusim
