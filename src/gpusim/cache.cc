#include "gpusim/cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zatel::gpusim
{

TagCache::TagCache(uint64_t size_bytes, uint32_t line_bytes, uint32_t assoc)
    : lineBytes_(line_bytes)
{
    ZATEL_ASSERT(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
                 "line size must be a power of two");
    uint64_t lines = std::max<uint64_t>(1, size_bytes / line_bytes);
    if (assoc == 0 || assoc >= lines) {
        // Fully associative: one set holding every line.
        assoc_ = static_cast<uint32_t>(lines);
        numSets_ = 1;
    } else {
        assoc_ = assoc;
        numSets_ = static_cast<uint32_t>(std::max<uint64_t>(1, lines / assoc));
    }
    ways_.resize(static_cast<size_t>(numSets_) * assoc_);
}

uint32_t
TagCache::setOf(uint64_t line_addr) const
{
    return static_cast<uint32_t>((line_addr / lineBytes_) % numSets_);
}

TagCache::Way *
TagCache::findWay(uint64_t line_addr)
{
    auto it = index_.find(line_addr);
    if (it == index_.end())
        return nullptr;
    return &ways_[it->second];
}

const TagCache::Way *
TagCache::findWay(uint64_t line_addr) const
{
    return const_cast<TagCache *>(this)->findWay(line_addr);
}

bool
TagCache::access(uint64_t line_addr)
{
    ZATEL_ASSERT(line_addr % lineBytes_ == 0,
                 "cache access address must be line-aligned");
    ++stats_.accesses;
    Way *way = findWay(line_addr);
    if (way) {
        ++stats_.hits;
        way->lastUse = ++useCounter_;
        return true;
    }
    ++stats_.misses;
    return false;
}

bool
TagCache::contains(uint64_t line_addr) const
{
    return findWay(line_addr) != nullptr;
}

bool
TagCache::fill(uint64_t line_addr, bool dirty, bool &evicted_dirty)
{
    ZATEL_ASSERT(line_addr % lineBytes_ == 0,
                 "cache fill address must be line-aligned");
    evicted_dirty = false;
    Way *existing = findWay(line_addr);
    if (existing) {
        existing->lastUse = ++useCounter_;
        existing->dirty = existing->dirty || dirty;
        return false;
    }

    uint32_t set = setOf(line_addr);
    Way *base = &ways_[static_cast<size_t>(set) * assoc_];
    Way *victim = nullptr;
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    bool evicted = victim->valid;
    if (evicted) {
        ++stats_.evictions;
        if (victim->dirty) {
            ++stats_.dirtyEvictions;
            evicted_dirty = true;
        }
        index_.erase(victim->tag);
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->dirty = dirty;
    victim->lastUse = ++useCounter_;
    index_.emplace(line_addr,
                   static_cast<uint32_t>(victim - ways_.data()));
    return evicted;
}

void
TagCache::markDirty(uint64_t line_addr)
{
    Way *way = findWay(line_addr);
    if (way)
        way->dirty = true;
}

uint64_t
TagCache::residentLines() const
{
    uint64_t count = 0;
    for (const Way &way : ways_)
        count += way.valid ? 1 : 0;
    return count;
}

} // namespace zatel::gpusim
