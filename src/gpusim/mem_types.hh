/**
 * @file
 * Shared request/response types for the simulated memory hierarchy.
 */

#ifndef ZATEL_GPUSIM_MEM_TYPES_HH
#define ZATEL_GPUSIM_MEM_TYPES_HH

#include <cstdint>

namespace zatel::gpusim
{

/** A line-granular memory request travelling SM -> partition. */
struct MemRequest
{
    uint64_t lineAddr = 0;
    uint32_t srcSm = 0;
    bool isWrite = false;
    /** Cycle at which the request becomes visible at its next stop. */
    uint64_t readyCycle = 0;
};

/** A fill travelling partition -> SM. */
struct MemResponse
{
    uint64_t lineAddr = 0;
    uint32_t dstSm = 0;
    uint64_t readyCycle = 0;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_MEM_TYPES_HH
