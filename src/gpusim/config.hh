/**
 * @file
 * GPU configuration (paper Table II) for the cycle-level simulator.
 *
 * The simulator models the architecture of Vulkan-Sim's Fig. 2: SMs with
 * L1D caches and RT units, an interconnect, and memory partitions each
 * holding an L2 slice and a DRAM channel. Downscaling (paper Section
 * III-C) divides numSms and numMemPartitions by K; shared resources
 * (LLC capacity, DRAM bandwidth) shrink automatically because they are
 * expressed per partition.
 */

#ifndef ZATEL_GPUSIM_CONFIG_HH
#define ZATEL_GPUSIM_CONFIG_HH

#include <cstdint>
#include <string>

namespace zatel::gpusim
{

/** Warp scheduling policy (Table II: Greedy-then-Oldest). */
enum class WarpSchedulerPolicy : uint8_t
{
    /** Keep issuing the last warp until it stalls, then the oldest. */
    GreedyThenOldest,
    /** Rotate the starting warp every cycle (loose round-robin). */
    LooseRoundRobin,
};

const char *warpSchedulerPolicyName(WarpSchedulerPolicy policy);

/** Full machine description; defaults match the RTX 2060 column. */
struct GpuConfig
{
    std::string name = "custom";

    // ---- Scalable components (paper Section III-C) ----
    uint32_t numSms = 30;
    uint32_t numMemPartitions = 12;

    // ---- SM core ----
    uint32_t warpSize = 32;
    uint32_t maxWarpsPerSm = 32;
    uint32_t registersPerSm = 65536;
    uint32_t registersPerThread = 32;
    /** Warp instructions issued per SM per cycle. */
    uint32_t issueWidth = 1;
    /** Warp scheduling policy (Table II: Greedy-then-Oldest). */
    WarpSchedulerPolicy scheduler = WarpSchedulerPolicy::GreedyThenOldest;
    /** ALU pipeline depth (cycles from issue to stage completion). */
    uint32_t aluLatency = 4;

    // ---- RT unit (per SM) ----
    uint32_t rtUnitsPerSm = 1;
    /** Warps resident in an RT unit at once (Table II: 4). */
    uint32_t rtMaxWarps = 4;
    /** RT unit MSHR entries (Table II: 64). */
    uint32_t rtMshrSize = 64;
    /** BVH node visits the unit can process per cycle. */
    uint32_t rtVisitsPerCycle = 4;

    // ---- L1D (per SM; Table II: 64KB fully assoc LRU, 20 cycles) ----
    uint32_t l1dSizeBytes = 64 * 1024;
    uint32_t l1dLineBytes = 128;
    /** 0 selects fully associative. */
    uint32_t l1dAssoc = 0;
    uint32_t l1dLatencyCycles = 20;
    /** L1 accesses servable per cycle (RT unit + LSU share these). */
    uint32_t l1dPortsPerCycle = 4;

    // ---- L2 (total; Table II: 3MB 16-way LRU, 160 cycles) ----
    uint64_t l2TotalBytes = 3ull * 1024 * 1024;
    uint32_t l2LineBytes = 128;
    uint32_t l2Assoc = 16;
    /** Access latency of an L2 slice (excluding interconnect). */
    uint32_t l2LatencyCycles = 128;
    uint32_t l2MshrSize = 64;

    // ---- Interconnect ----
    /** One-way SM <-> partition latency in core cycles. */
    uint32_t nocLatencyCycles = 16;

    // ---- DRAM (per channel == per memory partition) ----
    /** Row access latency before the burst starts. */
    uint32_t dramLatencyCycles = 160;
    /** Request queue depth per channel. */
    uint32_t dramQueueSize = 32;
    /** Bytes transferred per memory clock per channel (bus width x DDR). */
    uint32_t dramBytesPerMemClock = 8;

    // ---- Clocks (MHz; Table II) ----
    double coreClockMhz = 1365.0;
    double memClockMhz = 3500.0;

    // ---- Shader cost model (thread instructions per stage) ----
    /** Ray-generation preamble per thread. */
    uint32_t raygenInsts = 16;
    /** Early-exit cost of a filtered-out pixel (the injected PTX check). */
    uint32_t filterExitInsts = 3;
    /** Shading after a closest-hit ray that hit. */
    uint32_t shadeInsts = 24;
    /** Blend after a shadow (any-hit) ray. */
    uint32_t shadowBlendInsts = 4;
    /** Background shading after a closest-hit miss. */
    uint32_t missInsts = 2;

    // ---- Execution knobs (docs/SIMULATOR.md, "Intra-simulation
    // ---- parallelism") ----
    /**
     * Worker threads for one Gpu::run(); 0 defers to
     * setGlobalSimThreads() / ZATEL_GPU_SIM_THREADS (default 1 =
     * serial). Pure execution strategy: results are byte-identical at
     * every thread count, so this knob is excluded from artifact-cache
     * hashing. Threads above the SM count are clamped.
     */
    uint32_t simThreads = 0;
    /**
     * Warp-dispatch epoch in cycles; 0 defers to
     * setGlobalEpochLength() / ZATEL_GPU_EPOCH_LENGTH (default 1).
     * This is a *timing-model* parameter: pending warps dispatch only
     * at cycles that are multiples of the epoch, in every tick mode.
     * Epoch 1 reproduces the legacy every-cycle dispatch exactly; the
     * parallel loop wants epochs near nocLatencyCycles so shards can
     * run that many cycles between barriers.
     */
    uint32_t epochLength = 0;

    /** Peak DRAM bytes per core cycle per channel. */
    double
    dramBytesPerCoreCycle() const
    {
        return dramBytesPerMemClock * (memClockMhz / coreClockMhz);
    }

    /** Core cycles one line burst occupies a channel. */
    uint32_t
    dramBurstCycles() const
    {
        double cycles = l2LineBytes / dramBytesPerCoreCycle();
        return cycles <= 1.0 ? 1u : static_cast<uint32_t>(cycles + 0.9999);
    }

    /** L2 slice capacity per memory partition. */
    uint64_t
    l2SliceBytes() const
    {
        return l2TotalBytes / (numMemPartitions ? numMemPartitions : 1);
    }

    /** Warp slots per SM after the register limit. */
    uint32_t maxResidentWarps() const;

    /** Sanity-check invariants; calls fatal() on bad configurations. */
    void validate() const;

    /** Table II, Mobile SoC column. */
    static GpuConfig mobileSoc();

    /** Table II, NVIDIA Turing RTX 2060 column. */
    static GpuConfig rtx2060();
};

/**
 * Process-wide defaults consulted by instances that leave the matching
 * GpuConfig knob at 0 (instance > global > environment, the TickMode
 * pattern). Thread-safe (relaxed atomics); flip only while no
 * simulation is in flight. 0 restores "consult the environment".
 */
void setGlobalSimThreads(uint32_t threads);
uint32_t globalSimThreads();
void setGlobalEpochLength(uint32_t cycles);
uint32_t globalEpochLength();

/** Collapse instance > global > ZATEL_GPU_SIM_THREADS into >= 1. */
uint32_t resolveSimThreads(uint32_t instance_value);

/** Collapse instance > global > ZATEL_GPU_EPOCH_LENGTH into >= 1. */
uint32_t resolveEpochLength(uint32_t instance_value);

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_CONFIG_HH
