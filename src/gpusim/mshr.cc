#include "gpusim/mshr.hh"

#include "util/logging.hh"

namespace zatel::gpusim
{

MshrTable::MshrTable(uint32_t capacity) : capacity_(capacity)
{
    ZATEL_ASSERT(capacity > 0, "MSHR capacity must be > 0");
}

MshrTable::Outcome
MshrTable::request(uint64_t line_addr, uint64_t waiter_token)
{
    ZATEL_ASSERT(entries_.size() <= capacity_,
                 "MSHR exceeded its configured capacity");
    auto it = entries_.find(line_addr);
    if (it != entries_.end()) {
        it->second.push_back(waiter_token);
        ++stats_.merges;
        return Outcome::Merged;
    }
    if (entries_.size() >= capacity_) {
        ++stats_.fullStalls;
        return Outcome::Full;
    }
    entries_.emplace(line_addr, std::vector<uint64_t>{waiter_token});
    ++stats_.allocations;
    return Outcome::Allocated;
}

bool
MshrTable::pending(uint64_t line_addr) const
{
    return entries_.count(line_addr) != 0;
}

std::vector<uint64_t>
MshrTable::fill(uint64_t line_addr)
{
    auto it = entries_.find(line_addr);
    if (it == entries_.end())
        return {};
    std::vector<uint64_t> waiters = std::move(it->second);
    ZATEL_ASSERT(!waiters.empty(),
                 "an allocated MSHR entry must hold at least one waiter");
    entries_.erase(it);
    return waiters;
}

} // namespace zatel::gpusim
