#include "gpusim/mshr.hh"

#include "util/logging.hh"

namespace zatel::gpusim
{

MshrTable::MshrTable(uint32_t capacity)
    : capacity_(capacity), index_(capacity)
{
    ZATEL_ASSERT(capacity > 0, "MSHR capacity must be > 0");
    entryLine_.assign(capacity, 0);
    waiterHead_.assign(capacity, kNoNode);
    waiterTail_.assign(capacity, kNoNode);
    entryFree_.reserve(capacity);
    for (uint32_t slot = capacity; slot-- > 0;)
        entryFree_.push_back(slot);
    // Seed the waiter pool at one node per entry; merges grow it on
    // demand (and it is retained across fills, so growth is one-time).
    nodeToken_.reserve(capacity * 2);
    nodeNext_.reserve(capacity * 2);
}

uint32_t
MshrTable::allocNode(uint64_t token)
{
    if (nodeFreeHead_ != kNoNode) {
        uint32_t node = nodeFreeHead_;
        nodeFreeHead_ = nodeNext_[node];
        nodeToken_[node] = token;
        nodeNext_[node] = kNoNode;
        return node;
    }
    uint32_t node = static_cast<uint32_t>(nodeToken_.size());
    nodeToken_.push_back(token);
    nodeNext_.push_back(kNoNode);
    return node;
}

MshrTable::Outcome
MshrTable::request(uint64_t line_addr, uint64_t waiter_token)
{
    ZATEL_ASSERT(index_.size() <= capacity_,
                 "MSHR exceeded its configured capacity");
    if (const LineSlot *slot = index_.find(line_addr)) {
        uint32_t node = allocNode(waiter_token);
        nodeNext_[waiterTail_[*slot]] = node;
        waiterTail_[*slot] = node;
        ++stats_.merges;
        return Outcome::Merged;
    }
    if (index_.size() >= capacity_) {
        ++stats_.fullStalls;
        return Outcome::Full;
    }
    uint32_t slot = entryFree_.back();
    entryFree_.pop_back();
    uint32_t node = allocNode(waiter_token);
    entryLine_[slot] = line_addr;
    waiterHead_[slot] = node;
    waiterTail_[slot] = node;
    index_.insert(line_addr, slot);
    ++stats_.allocations;
    return Outcome::Allocated;
}

const std::vector<uint64_t> &
MshrTable::fill(uint64_t line_addr)
{
    fillScratch_.clear();
    const LineSlot *found = index_.find(line_addr);
    if (!found)
        return fillScratch_;
    uint32_t slot = *found;
    // Walk the waiter chain in registration order, recycling each node.
    uint32_t node = waiterHead_[slot];
    ZATEL_ASSERT(node != kNoNode,
                 "an allocated MSHR entry must hold at least one waiter");
    while (node != kNoNode) {
        fillScratch_.push_back(nodeToken_[node]);
        uint32_t next = nodeNext_[node];
        nodeNext_[node] = nodeFreeHead_;
        nodeFreeHead_ = node;
        node = next;
    }
    waiterHead_[slot] = kNoNode;
    waiterTail_[slot] = kNoNode;
    entryFree_.push_back(slot);
    index_.erase(line_addr);
    return fillScratch_;
}

} // namespace zatel::gpusim
