/**
 * @file
 * SIMT warp model.
 *
 * A warp executes the ray-tracing pixel shader as a sequence of stages:
 *
 *   RAYGEN (ALU)  ->  [ TRACE ray slot r (RT unit)  ->  POST-RAY (ALU +
 *   coalesced material loads) ] per ray slot  ->  FB WRITE (stores)  ->
 *   DONE
 *
 * Threads whose pixel is filtered out execute only the filter-exit check
 * during RAYGEN and stay inactive afterwards, mirroring the paper's
 * injected filter_shader PTX (Section III-F). Thread divergence shows up
 * as per-stage active masks: the instruction issue cost of a stage is the
 * max over participating threads while the scalar instruction count is
 * the sum.
 */

#ifndef ZATEL_GPUSIM_WARP_HH
#define ZATEL_GPUSIM_WARP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/config.hh"
#include "gpusim/sim_clock.hh"
#include "gpusim/workload.hh"
#include "rt/traversal.hh"

namespace zatel::gpusim
{

/** Per-lane traversal state while the warp is inside the RT unit. */
struct WarpLane
{
    enum class State : uint8_t
    {
        Inactive,  ///< lane has no ray at the current slot
        NeedFetch, ///< must issue the next node fetch
        WaitMem,   ///< node fetch outstanding
        ReadyStep, ///< node data available; can execute a visit
        Done,      ///< traversal finished for this slot
    };

    rt::TraversalStepper stepper;
    State state = State::Inactive;
};

/**
 * One warp. The SM and RT unit drive its state machine; the warp itself
 * owns stage compilation and bookkeeping.
 */
class Warp
{
  public:
    enum class Phase : uint8_t
    {
        NotStarted,
        AluIssue, ///< issuing ALU instructions / loads / stores
        AluDrain, ///< pipeline drain + waiting for outstanding loads
        RtWait,   ///< waiting for an RT unit slot
        InRt,     ///< resident in the RT unit
        Done,
    };

    /**
     * @param id Global warp id (also its age for GTO's "oldest").
     * @param thread_begin/@p thread_end Range into workload.threads.
     */
    Warp(uint32_t id, const GpuConfig *config, const SimWorkload *workload,
         uint32_t thread_begin, uint32_t thread_end);

    uint32_t id() const { return id_; }
    Phase phase() const { return phase_; }
    bool done() const { return phase_ == Phase::Done; }

    /**
     * Advance zero-time transitions (stage completion, next-stage
     * compilation). Called by the SM before interrogating the warp.
     */
    void poll(uint64_t now);

    // ---- AluIssue phase interface ----
    /** True when the warp can consume an issue slot this cycle. */
    bool wantsIssue() const;
    /** True when the next issue is a memory operation (needs an L1 port). */
    bool nextIsLoad() const { return !loadsToIssue_.empty(); }
    bool nextIsStore() const
    {
        return loadsToIssue_.empty() && !storesToIssue_.empty();
    }
    /** Line address of the pending load/store. @pre nextIsLoad/Store(). */
    uint64_t pendingMemLine() const;
    /** Commit one ALU issue slot. */
    void commitAlu(uint64_t now);
    /** Commit the pending load (accepted by L1; completion comes later). */
    void commitLoad();
    /** Commit the pending store (fire and forget). */
    void commitStore();
    /** A previously issued load returned. */
    void onLoadComplete();

    // ---- RT phase interface ----
    /** True when the warp waits for an RT unit slot. */
    bool wantsRtSlot() const { return phase_ == Phase::RtWait; }
    /**
     * Enter the RT unit: borrow @p lanes (warpSize entries, owned by the
     * RT unit's lane pool) and initialize lane steppers for the current
     * slot. The span stays borrowed until exitRtUnit; pool reuse is safe
     * because every lane's state (and, for live lanes, its stepper) is
     * re-initialized here before anything reads it.
     */
    void enterRtUnit(WarpLane *lanes);
    /** Called by the RT unit when every lane finished the current slot. */
    void exitRtUnit(uint64_t now);
    /** Borrowed lane span (warpSize entries); null outside InRt. */
    WarpLane *lanes() { return lanes_; }
    uint32_t laneCount() const { return config_->warpSize; }
    /** Lanes still traversing (for the RT efficiency metric). */
    uint32_t activeLaneCount() const;

    // ---- Stats handoff ----
    /**
     * Scalar instructions accumulated since the last call (stage entry
     * adds the stage's summed thread instructions).
     */
    uint64_t
    takePendingThreadInsts()
    {
        uint64_t insts = pendingThreadInsts_;
        pendingThreadInsts_ = 0;
        return insts;
    }

    /** True when poll() could change state (cheap pre-check). */
    bool
    pollable() const
    {
        return phase_ == Phase::NotStarted || phase_ == Phase::AluIssue ||
               phase_ == Phase::AluDrain;
    }

    /** True when there are uncollected stage instructions. */
    bool hasPendingThreadInsts() const { return pendingThreadInsts_ != 0; }

    /**
     * Earliest cycle > @p now at which the warp could make progress on
     * its own clock (sim_clock.hh): issuing warps advance every cycle, a
     * draining pipeline wakes at drainReadyAt_, and everything waiting
     * on external input — outstanding loads, an RT-unit slot, RT
     * traversal itself — reports kNoEventCycle (the SM folds in the
     * fill-queue and RT-unit events that wake those). Only meaningful
     * between ticks, i.e. after the SM's scheduler pass polled the warp.
     */
    uint64_t nextEventCycle(uint64_t now) const;

    /** Threads covered by this warp. */
    uint32_t threadCount() const { return threadEnd_ - threadBegin_; }

    /** Current ray slot (for the RT unit; -1 before the first trace). */
    int currentRaySlot() const { return currentRaySlot_; }

    /** Thread work for lane @p lane. */
    const ThreadWork &threadWork(uint32_t lane) const;

  private:
    void compileRaygenStage();
    void compilePostRayStage();
    void compileFbWriteStage();
    /** Move to the next stage after an ALU stage fully drained. */
    void advanceAfterAlu();

    uint32_t id_ = 0;
    const GpuConfig *config_ = nullptr;
    const SimWorkload *workload_ = nullptr;
    uint32_t threadBegin_ = 0;
    uint32_t threadEnd_ = 0;

    Phase phase_ = Phase::NotStarted;
    int currentRaySlot_ = -1;
    uint32_t maxRaySlots_ = 0;
    bool fbStageDone_ = false;

    // Current ALU stage.
    uint32_t aluIssueRemaining_ = 0;
    std::vector<uint64_t> loadsToIssue_;
    std::vector<uint64_t> storesToIssue_;
    uint32_t outstandingLoads_ = 0;
    uint64_t drainReadyAt_ = 0;

    uint64_t pendingThreadInsts_ = 0;

    // Borrowed from the RT unit's lane pool while InRt; null otherwise.
    // Owning the lanes here would memset warpSize steppers per warp at
    // construction — the pool bounds that to rtMaxWarps spans per SM.
    WarpLane *lanes_ = nullptr;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_WARP_HH
