/**
 * @file
 * Memory partition: an L2 cache slice plus a DRAM channel behind it
 * (one box on the right side of Vulkan-Sim's Fig. 2). Downscaling the
 * partition count proportionally shrinks both LLC capacity and peak DRAM
 * bandwidth, exactly as paper Section III-C describes.
 */

#ifndef ZATEL_GPUSIM_MEM_PARTITION_HH
#define ZATEL_GPUSIM_MEM_PARTITION_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "gpusim/cache.hh"
#include "gpusim/config.hh"
#include "gpusim/dram.hh"
#include "gpusim/mem_types.hh"
#include "gpusim/mshr.hh"
#include "gpusim/stats_report.hh"

namespace zatel::gpusim
{

/** One memory partition (L2 slice + DRAM channel). */
class MemPartition
{
  public:
    MemPartition(const GpuConfig &config, uint32_t index);

    /** Queue a request from the interconnect. */
    void enqueue(const MemRequest &request);

    /**
     * Advance one cycle. Fills destined for SMs are appended to
     * @p responses with partition-exit timestamps (NoC latency is added
     * by the caller).
     */
    void tick(uint64_t now, std::vector<MemResponse> &responses);

    bool idle() const;

    /**
     * True when tick(@p now) would provably be a no-op: the DRAM channel
     * is idle, no writebacks are queued, and no incoming request has
     * crossed the NoC yet. Skipping such a tick changes neither state
     * nor statistics (the fast path in Gpu::run relies on this; the
     * ZATEL_GPU_SLOW_TICK reference loop never skips).
     */
    bool quiescentAt(uint64_t now) const;

    /**
     * Earliest cycle > @p now whose tick could change partition state:
     * the DRAM channel's next event or the arrival of the oldest
     * in-flight NoC request. Conservatively now + 1 whenever a retry is
     * pending (blocked head request, queued writebacks). kNoEventCycle
     * when fully drained. See sim_clock.hh.
     */
    uint64_t nextEventCycle(uint64_t now) const;

    /** Apply @p cycles of skipped-tick counter accrual (DRAM only). */
    void fastForward(uint64_t cycles);

    const TagCache &l2() const { return l2_; }

    /** Append this partition's counters to @p report under @p prefix. */
    void reportInto(StatsReport &report, const std::string &prefix) const;

    /** Requests satisfied by merging into an in-flight MSHR entry. */
    uint64_t l2ReservedHits() const { return l2ReservedHits_; }
    const DramChannel &dram() const { return dram_; }
    uint32_t index() const { return index_; }

  private:
    /** L2 lookup for one request; returns false when it must retry. */
    bool processRequest(const MemRequest &request, uint64_t now,
                        std::vector<MemResponse> &responses);

    void writebackDirtyLine(uint64_t line_addr, uint64_t now);

    uint32_t index_ = 0;
    uint32_t l2Latency_ = 0;
    uint64_t l2ReservedHits_ = 0;
    uint32_t maxRequestsPerCycle_ = 2;

    TagCache l2_;
    MshrTable l2Mshr_;
    DramChannel dram_;

    /** Requests that arrived over the NoC, FIFO by ready cycle. */
    std::deque<MemRequest> incoming_;
    /** DRAM read completions to apply. */
    std::vector<MemRequest> dramCompleted_;
    /** Dirty writebacks waiting for a free DRAM queue slot. */
    std::deque<MemRequest> pendingWritebacks_;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_MEM_PARTITION_HH
