#include "gpusim/workload.hh"

#include "util/logging.hh"

namespace zatel::gpusim
{

uint64_t
SimWorkload::totalRays() const
{
    uint64_t total = 0;
    for (const ThreadWork &thread : threads)
        total += thread.record.rays.size();
    return total;
}

SimWorkload
SimWorkload::build(const rt::Tracer &tracer, uint32_t width, uint32_t height,
                   const std::vector<PixelCoord> &pixels,
                   const std::vector<bool> *selected)
{
    ZATEL_ASSERT(!selected || selected->size() == pixels.size(),
                 "selection mask must align with the pixel list");

    SimWorkload workload;
    workload.width = width;
    workload.height = height;
    workload.bvh = &tracer.bvh();
    workload.threads.reserve(pixels.size());

    for (size_t i = 0; i < pixels.size(); ++i) {
        const PixelCoord &pixel = pixels[i];
        ZATEL_ASSERT(pixel.x < width && pixel.y < height,
                     "workload pixel out of bounds");
        ThreadWork thread;
        thread.pixelLinear = pixel.y * width + pixel.x;
        thread.selected = !selected || (*selected)[i];
        if (thread.selected) {
            thread.record =
                rt::recordPixelRays(tracer, pixel.x, pixel.y, width, height);
            ++workload.selectedCount;
        }
        workload.threads.push_back(std::move(thread));
    }
    return workload;
}

SimWorkload
SimWorkload::buildFullFrame(const rt::Tracer &tracer, uint32_t width,
                            uint32_t height)
{
    std::vector<PixelCoord> pixels;
    pixels.reserve(static_cast<size_t>(width) * height);
    for (uint32_t y = 0; y < height; ++y)
        for (uint32_t x = 0; x < width; ++x)
            pixels.push_back({x, y});
    return build(tracer, width, height, pixels);
}

} // namespace zatel::gpusim
