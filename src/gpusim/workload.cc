#include "gpusim/workload.hh"

#include "util/logging.hh"

namespace zatel::gpusim
{

uint64_t
SimWorkload::totalRays() const
{
    uint64_t total = 0;
    for (const ThreadWork &thread : threads)
        total += thread.rayCount;
    return total;
}

SimWorkload
SimWorkload::build(const rt::Tracer &tracer, uint32_t width, uint32_t height,
                   const std::vector<PixelCoord> &pixels,
                   const std::vector<bool> *selected)
{
    ZATEL_ASSERT(!selected || selected->size() == pixels.size(),
                 "selection mask must align with the pixel list");

    SimWorkload workload;
    workload.width = width;
    workload.height = height;
    workload.bvh = &tracer.bvh();
    workload.threads.resize(pixels.size());

    // Selected pixels, in launch order, for the packetized recorder.
    std::vector<uint32_t> xs;
    std::vector<uint32_t> ys;
    std::vector<uint32_t> thread_of;
    xs.reserve(pixels.size());
    ys.reserve(pixels.size());
    thread_of.reserve(pixels.size());

    for (size_t i = 0; i < pixels.size(); ++i) {
        const PixelCoord &pixel = pixels[i];
        ZATEL_ASSERT(pixel.x < width && pixel.y < height,
                     "workload pixel out of bounds");
        ThreadWork &thread = workload.threads[i];
        thread.pixelLinear = pixel.y * width + pixel.x;
        thread.selected = !selected || (*selected)[i];
        if (thread.selected) {
            xs.push_back(pixel.x);
            ys.push_back(pixel.y);
            thread_of.push_back(static_cast<uint32_t>(i));
            ++workload.selectedCount;
        }
    }

    // Record rays in RayPacket batches; every completed pixel's tasks
    // are flattened into the workload's arena so the timed hot path
    // walks one contiguous RayTask stream per thread.
    rt::recordPixelRaysBatch(
        tracer, xs.data(), ys.data(), static_cast<uint32_t>(xs.size()),
        width, height,
        [&workload, &thread_of](uint32_t index,
                                const rt::PixelRayRecord &record) {
            ThreadWork &thread = workload.threads[thread_of[index]];
            thread.rayCount = static_cast<uint32_t>(record.rays.size());
            thread.rays = workload.rayArena.copySpan(record.rays.data(),
                                                     record.rays.size());
        });
    return workload;
}

SimWorkload
SimWorkload::buildFullFrame(const rt::Tracer &tracer, uint32_t width,
                            uint32_t height)
{
    std::vector<PixelCoord> pixels;
    pixels.reserve(static_cast<size_t>(width) * height);
    for (uint32_t y = 0; y < height; ++y)
        for (uint32_t x = 0; x < width; ++x)
            pixels.push_back({x, y});
    return build(tracer, width, height, pixels);
}

} // namespace zatel::gpusim
