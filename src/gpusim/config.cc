#include "gpusim/config.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/logging.hh"

namespace zatel::gpusim
{

namespace
{

/** Parse a non-negative env knob; 0 (or unset/garbage) means default. */
uint32_t
envKnob(const char *name)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return 0;
    char *end = nullptr;
    unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0')
        return 0;
    return static_cast<uint32_t>(std::min<unsigned long>(parsed, 1u << 20));
}

std::atomic<uint32_t> &
globalSimThreadsSlot()
{
    static std::atomic<uint32_t> slot{0};
    return slot;
}

std::atomic<uint32_t> &
globalEpochLengthSlot()
{
    static std::atomic<uint32_t> slot{0};
    return slot;
}

} // namespace

void
setGlobalSimThreads(uint32_t threads)
{
    globalSimThreadsSlot().store(threads, std::memory_order_relaxed);
}

uint32_t
globalSimThreads()
{
    return globalSimThreadsSlot().load(std::memory_order_relaxed);
}

void
setGlobalEpochLength(uint32_t cycles)
{
    globalEpochLengthSlot().store(cycles, std::memory_order_relaxed);
}

uint32_t
globalEpochLength()
{
    return globalEpochLengthSlot().load(std::memory_order_relaxed);
}

uint32_t
resolveSimThreads(uint32_t instance_value)
{
    if (instance_value != 0)
        return instance_value;
    uint32_t global = globalSimThreads();
    if (global != 0)
        return global;
    // Read once: tests that flip at runtime use setGlobalSimThreads().
    static const uint32_t env = envKnob("ZATEL_GPU_SIM_THREADS");
    return env != 0 ? env : 1;
}

uint32_t
resolveEpochLength(uint32_t instance_value)
{
    if (instance_value != 0)
        return instance_value;
    uint32_t global = globalEpochLength();
    if (global != 0)
        return global;
    static const uint32_t env = envKnob("ZATEL_GPU_EPOCH_LENGTH");
    return env != 0 ? env : 1;
}

const char *
warpSchedulerPolicyName(WarpSchedulerPolicy policy)
{
    switch (policy) {
      case WarpSchedulerPolicy::GreedyThenOldest: return "gto";
      case WarpSchedulerPolicy::LooseRoundRobin: return "lrr";
    }
    panic("unknown WarpSchedulerPolicy");
}

uint32_t
GpuConfig::maxResidentWarps() const
{
    uint32_t by_registers =
        registersPerSm / std::max(1u, registersPerThread * warpSize);
    return std::max(1u, std::min(maxWarpsPerSm, by_registers));
}

void
GpuConfig::validate() const
{
    if (numSms == 0)
        fatal("config '", name, "': numSms must be > 0");
    if (numMemPartitions == 0)
        fatal("config '", name, "': numMemPartitions must be > 0");
    if (warpSize == 0 || warpSize > 64)
        fatal("config '", name, "': warpSize out of range");
    if (l1dLineBytes == 0 || (l1dLineBytes & (l1dLineBytes - 1)) != 0)
        fatal("config '", name, "': l1dLineBytes must be a power of two");
    if (l2LineBytes != l1dLineBytes)
        fatal("config '", name, "': L1/L2 line sizes must match");
    if (l1dSizeBytes < l1dLineBytes)
        fatal("config '", name, "': L1D smaller than one line");
    if (l2SliceBytes() < l2LineBytes)
        fatal("config '", name, "': L2 slice smaller than one line");
    if (rtMaxWarps == 0 || rtVisitsPerCycle == 0)
        fatal("config '", name, "': RT unit throughput must be > 0");
    if (rtUnitsPerSm == 0)
        fatal("config '", name, "': need at least one RT unit per SM");
    if (coreClockMhz <= 0.0 || memClockMhz <= 0.0)
        fatal("config '", name, "': clocks must be positive");
}

GpuConfig
GpuConfig::mobileSoc()
{
    GpuConfig config;
    config.name = "MobileSoC";
    config.numSms = 8;
    config.numMemPartitions = 4;
    config.registersPerSm = 32768;
    config.maxWarpsPerSm = 32;
    // Mobile memory system: narrower bus, same clock domains as Table II.
    config.dramBytesPerMemClock = 4;
    config.l2TotalBytes = 1ull * 1024 * 1024;
    return config;
}

GpuConfig
GpuConfig::rtx2060()
{
    GpuConfig config;
    config.name = "RTX2060";
    config.numSms = 30;
    config.numMemPartitions = 12;
    config.registersPerSm = 65536;
    config.maxWarpsPerSm = 32;
    config.dramBytesPerMemClock = 8;
    config.l2TotalBytes = 3ull * 1024 * 1024;
    return config;
}

} // namespace zatel::gpusim
