/**
 * @file
 * Shared vocabulary for the activity-driven cycle loop
 * (docs/SIMULATOR.md, "The activity-driven cycle loop").
 *
 * Every timed component (DramChannel, MemPartition, MemorySystem, RtUnit,
 * Warp, Sm) exposes a `nextEventCycle(now)` predicate: the earliest cycle
 * strictly greater than `now` at which ticking the component could change
 * state or accrue statistics *non-linearly*. Returning `kNoEventCycle`
 * means "nothing self-scheduled": the component only wakes up through an
 * input produced by some other component's event (e.g. a memory fill).
 *
 * The contract that makes quiescence fast-forward sound:
 *
 *   1. For every cycle c with nextEventCycle(now) > c > now, tick(c) must
 *      be a no-op except for per-cycle counter accrual that is *linear*
 *      in the number of cycles (DRAM active/busy cycles, RT residency
 *      sampling).
 *   2. `fastForward(cycles)` must apply exactly that linear accrual for
 *      `cycles` skipped ticks, so a fast-forwarded run produces
 *      byte-identical GpuStats to a cycle-by-cycle run
 *      (tests/test_gpu_fastpath.cc pins this differentially).
 */

#ifndef ZATEL_GPUSIM_SIM_CLOCK_HH
#define ZATEL_GPUSIM_SIM_CLOCK_HH

#include <cstdint>

namespace zatel::gpusim
{

/** Sentinel for "no self-scheduled future event". */
inline constexpr uint64_t kNoEventCycle = ~0ull;

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_SIM_CLOCK_HH
