#include "gpusim/stats.hh"

#include <sstream>

#include "util/logging.hh"

namespace zatel::gpusim
{

const std::vector<Metric> &
allMetrics()
{
    static const std::vector<Metric> metrics = {
        Metric::Ipc,           Metric::SimCycles,
        Metric::L1dMissRate,   Metric::L2MissRate,
        Metric::RtEfficiency,  Metric::DramEfficiency,
        Metric::BwUtilization,
    };
    return metrics;
}

const char *
metricName(Metric metric)
{
    switch (metric) {
      case Metric::Ipc: return "GPU IPC";
      case Metric::SimCycles: return "GPU Sim Cycles";
      case Metric::L1dMissRate: return "L1D Miss Rate";
      case Metric::L2MissRate: return "L2 Miss Rate";
      case Metric::RtEfficiency: return "RT Avg Efficiency";
      case Metric::DramEfficiency: return "DRAM Efficiency";
      case Metric::BwUtilization: return "BW Utilization";
    }
    panic("unknown Metric");
}

double
GpuStats::ipc() const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(threadInstructions) /
           static_cast<double>(cycles);
}

double
GpuStats::l1dMissRate() const
{
    if (l1dAccesses == 0)
        return 0.0;
    return static_cast<double>(l1dMisses) / static_cast<double>(l1dAccesses);
}

double
GpuStats::l2MissRate() const
{
    if (l2Accesses == 0)
        return 0.0;
    return static_cast<double>(l2Misses) / static_cast<double>(l2Accesses);
}

double
GpuStats::rtEfficiency() const
{
    if (rtResidentWarpCycles == 0)
        return 0.0;
    return static_cast<double>(rtActiveRaySum) /
           static_cast<double>(rtResidentWarpCycles);
}

double
GpuStats::dramEfficiency() const
{
    if (dramActiveCycles == 0)
        return 0.0;
    return static_cast<double>(dramBusyCycles) /
           static_cast<double>(dramActiveCycles);
}

double
GpuStats::bwUtilization() const
{
    if (dramChannelCycles == 0)
        return 0.0;
    return static_cast<double>(dramBusyCycles) /
           static_cast<double>(dramChannelCycles);
}

double
GpuStats::metricValue(Metric metric) const
{
    switch (metric) {
      case Metric::Ipc: return ipc();
      case Metric::SimCycles: return simCycles();
      case Metric::L1dMissRate: return l1dMissRate();
      case Metric::L2MissRate: return l2MissRate();
      case Metric::RtEfficiency: return rtEfficiency();
      case Metric::DramEfficiency: return dramEfficiency();
      case Metric::BwUtilization: return bwUtilization();
    }
    panic("unknown Metric");
}

GpuStats &
GpuStats::operator+=(const GpuStats &other)
{
    // cycles is a max (components share the same clock), everything else
    // is additive.
    cycles = cycles > other.cycles ? cycles : other.cycles;
    for (const GpuStatsField &field : gpuStatsFields()) {
        if (field.member != &GpuStats::cycles)
            this->*field.member += other.*field.member;
    }
    return *this;
}

const std::vector<GpuStatsField> &
gpuStatsFields()
{
    static const std::vector<GpuStatsField> fields = {
        {"cycles", &GpuStats::cycles},
        {"threadInstructions", &GpuStats::threadInstructions},
        {"warpInstructions", &GpuStats::warpInstructions},
        {"l1dAccesses", &GpuStats::l1dAccesses},
        {"l1dMisses", &GpuStats::l1dMisses},
        {"l2Accesses", &GpuStats::l2Accesses},
        {"l2Misses", &GpuStats::l2Misses},
        {"rtActiveRaySum", &GpuStats::rtActiveRaySum},
        {"rtResidentWarpCycles", &GpuStats::rtResidentWarpCycles},
        {"rtNodeVisits", &GpuStats::rtNodeVisits},
        {"rtTriangleTests", &GpuStats::rtTriangleTests},
        {"dramBusyCycles", &GpuStats::dramBusyCycles},
        {"dramActiveCycles", &GpuStats::dramActiveCycles},
        {"dramChannelCycles", &GpuStats::dramChannelCycles},
        {"dramBytesRead", &GpuStats::dramBytesRead},
        {"dramBytesWritten", &GpuStats::dramBytesWritten},
        {"warpsLaunched", &GpuStats::warpsLaunched},
        {"raysTraced", &GpuStats::raysTraced},
        {"pixelsTraced", &GpuStats::pixelsTraced},
        {"pixelsFiltered", &GpuStats::pixelsFiltered},
    };
    return fields;
}

const char *
firstCounterDifference(const GpuStats &a, const GpuStats &b)
{
    for (const GpuStatsField &field : gpuStatsFields()) {
        if (a.*field.member != b.*field.member)
            return field.name;
    }
    return nullptr;
}

std::string
GpuStats::summary() const
{
    std::ostringstream oss;
    oss << "cycles=" << cycles << " ipc=" << ipc()
        << " l1d=" << l1dMissRate() << " l2=" << l2MissRate()
        << " rt_eff=" << rtEfficiency() << " dram_eff=" << dramEfficiency()
        << " bw=" << bwUtilization();
    return oss.str();
}

} // namespace zatel::gpusim
