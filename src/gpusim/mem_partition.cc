#include "gpusim/mem_partition.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zatel::gpusim
{

MemPartition::MemPartition(const GpuConfig &config, uint32_t index)
    : index_(index), l2Latency_(config.l2LatencyCycles),
      l2_(config.l2SliceBytes(), config.l2LineBytes, config.l2Assoc),
      l2Mshr_(config.l2MshrSize), dram_(config)
{
}

void
MemPartition::enqueue(const MemRequest &request)
{
    ZATEL_ASSERT(request.lineAddr % l2_.lineBytes() == 0,
                 "partition requests must be line-aligned");
    incoming_.push_back(request);
}

bool
MemPartition::idle() const
{
    return incoming_.empty() && dram_.idle() && l2Mshr_.occupancy() == 0 &&
           pendingWritebacks_.empty();
}

bool
MemPartition::quiescentAt(uint64_t now) const
{
    // A tick does three things: retry writebacks, service ready incoming
    // requests, advance DRAM. With no writebacks, an idle DRAM channel
    // (which also accrues no active/busy cycles) and no request past its
    // NoC arrival cycle, all three are no-ops.
    if (!dram_.idle() || !pendingWritebacks_.empty())
        return false;
    return incoming_.empty() || incoming_.front().readyCycle > now;
}

uint64_t
MemPartition::nextEventCycle(uint64_t now) const
{
    // Queued writebacks are retried every tick (they only exist while
    // the DRAM queue is full, so the channel is active anyway).
    if (!pendingWritebacks_.empty())
        return now + 1;
    uint64_t next = dram_.nextEventCycle(now);
    if (!incoming_.empty()) {
        // An already-arrived head (resource-blocked or past the per-cycle
        // service budget) is retried next cycle; otherwise wake when the
        // oldest in-flight request crosses the NoC. enqueue() order is
        // arrival order, so the front is the earliest.
        next = std::min(next, std::max<uint64_t>(
                                  incoming_.front().readyCycle, now + 1));
    }
    return next;
}

void
MemPartition::fastForward(uint64_t cycles)
{
    // The sim_clock.hh contract forbids skipping a window that contains
    // an event; a queued writeback retries every cycle, so its presence
    // here means the caller's nextEventCycle() bookkeeping broke.
    ZATEL_ASSERT(pendingWritebacks_.empty(),
                 "fast-forward across a pending writeback retry");
    // The L2 slice and MSHR table accrue nothing per cycle; only the
    // DRAM channel's active/busy counters are time-linear.
    dram_.fastForward(cycles);
}

void
MemPartition::writebackDirtyLine(uint64_t line_addr, uint64_t now)
{
    MemRequest writeback;
    writeback.lineAddr = line_addr;
    writeback.isWrite = true;
    writeback.srcSm = 0;
    writeback.readyCycle = now;
    if (!dram_.enqueue(writeback, now))
        pendingWritebacks_.push_back(writeback);
}

bool
MemPartition::processRequest(const MemRequest &request, uint64_t now,
                             std::vector<MemResponse> &responses)
{
    if (request.isWrite) {
        // Write-allocate into L2; dirty evictions go back to DRAM.
        l2_.access(request.lineAddr); // counts the store access
        bool evicted_dirty = false;
        l2_.fill(request.lineAddr, /*dirty=*/true, evicted_dirty);
        if (evicted_dirty) {
            // The victim address is unknown to the tag model at this
            // point; model the writeback cost with the new line's
            // address (same partition, same burst size).
            writebackDirtyLine(request.lineAddr ^ 0x80000000ull, now);
        }
        return true;
    }

    // HIT_RESERVED: an in-flight line counts as a hit (no new DRAM
    // traffic); the requester is attached to the existing MSHR entry.
    uint64_t waiter = request.srcSm;
    if (l2Mshr_.pending(request.lineAddr)) {
        ++l2ReservedHits_;
        l2Mshr_.request(request.lineAddr, waiter);
        return true;
    }

    if (l2_.contains(request.lineAddr)) {
        l2_.access(request.lineAddr); // counts the hit, updates LRU
        MemResponse response;
        response.lineAddr = request.lineAddr;
        response.dstSm = request.srcSm;
        response.readyCycle = now + l2Latency_;
        responses.push_back(response);
        return true;
    }

    // L2 miss: allocate an MSHR entry, then go to DRAM. Check resources
    // before counting so retried requests are counted exactly once.
    if (l2Mshr_.full() || dram_.queueFull())
        return false;
    l2_.access(request.lineAddr); // counts the miss

    MshrTable::Outcome outcome = l2Mshr_.request(request.lineAddr, waiter);
    ZATEL_ASSERT(outcome == MshrTable::Outcome::Allocated,
                 "expected a fresh L2 MSHR entry");
    MemRequest dram_read = request;
    dram_read.readyCycle = now;
    bool accepted = dram_.enqueue(dram_read, now);
    ZATEL_ASSERT(accepted, "DRAM queue accepted after full check");
    return true;
}

void
MemPartition::tick(uint64_t now, std::vector<MemResponse> &responses)
{
    ZATEL_ASSERT(l2Mshr_.occupancy() <= l2Mshr_.capacity(),
                 "L2 MSHR exceeded its capacity");
    // 1. Retry queued dirty writebacks.
    while (!pendingWritebacks_.empty() && !dram_.queueFull()) {
        dram_.enqueue(pendingWritebacks_.front(), now);
        pendingWritebacks_.pop_front();
    }

    // 2. Service incoming requests (bounded per cycle).
    uint32_t serviced = 0;
    while (!incoming_.empty() && serviced < maxRequestsPerCycle_) {
        const MemRequest &head = incoming_.front();
        if (head.readyCycle > now)
            break;
        if (!processRequest(head, now, responses))
            break; // resource full: retry next cycle, preserve order
        incoming_.pop_front();
        ++serviced;
    }

    // 3. Advance DRAM; apply read completions.
    dramCompleted_.clear();
    dram_.tick(now, dramCompleted_);
    for (const MemRequest &completed : dramCompleted_) {
        bool evicted_dirty = false;
        l2_.fill(completed.lineAddr, /*dirty=*/false, evicted_dirty);
        if (evicted_dirty)
            writebackDirtyLine(completed.lineAddr ^ 0x80000000ull, now);

        for (uint64_t waiter : l2Mshr_.fill(completed.lineAddr)) {
            MemResponse response;
            response.lineAddr = completed.lineAddr;
            response.dstSm = static_cast<uint32_t>(waiter);
            response.readyCycle = now + 1;
            responses.push_back(response);
        }
    }
}

void
MemPartition::reportInto(StatsReport &report,
                         const std::string &prefix) const
{
    const TagCache::Stats &l2 = l2_.stats();
    report.add(prefix + ".l2.accesses",
               static_cast<double>(l2.accesses + l2ReservedHits_));
    report.add(prefix + ".l2.hits",
               static_cast<double>(l2.hits + l2ReservedHits_));
    report.add(prefix + ".l2.misses", static_cast<double>(l2.misses));
    report.add(prefix + ".l2.reserved_hits",
               static_cast<double>(l2ReservedHits_));
    report.add(prefix + ".l2.dirty_evictions",
               static_cast<double>(l2.dirtyEvictions));

    const DramChannel::Stats &dram = dram_.stats();
    report.add(prefix + ".dram.busy_cycles",
               static_cast<double>(dram.busyCycles));
    report.add(prefix + ".dram.active_cycles",
               static_cast<double>(dram.activeCycles));
    report.add(prefix + ".dram.reads", static_cast<double>(dram.reads));
    report.add(prefix + ".dram.writes", static_cast<double>(dram.writes));
    report.add(prefix + ".dram.bytes_read",
               static_cast<double>(dram.bytesRead));
    report.add(prefix + ".dram.bytes_written",
               static_cast<double>(dram.bytesWritten));
}

} // namespace zatel::gpusim
