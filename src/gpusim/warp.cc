#include "gpusim/warp.hh"

#include <algorithm>

#include "gpusim/address_map.hh"
#include "util/logging.hh"

namespace zatel::gpusim
{

namespace
{

/** Deduplicate a small line-address list in place. */
void
uniqueLines(std::vector<uint64_t> &lines)
{
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
}

} // namespace

Warp::Warp(uint32_t id, const GpuConfig *config, const SimWorkload *workload,
           uint32_t thread_begin, uint32_t thread_end)
    : id_(id), config_(config), workload_(workload),
      threadBegin_(thread_begin), threadEnd_(thread_end)
{
    ZATEL_ASSERT(thread_end > thread_begin, "empty warp");
    ZATEL_ASSERT(thread_end - thread_begin <= config->warpSize,
                 "warp exceeds warpSize threads");
    for (uint32_t t = threadBegin_; t < threadEnd_; ++t)
        maxRaySlots_ = std::max(maxRaySlots_, workload_->threads[t].rayCount);
}

const ThreadWork &
Warp::threadWork(uint32_t lane) const
{
    ZATEL_ASSERT(threadBegin_ + lane < threadEnd_, "lane has no thread");
    return workload_->threads[threadBegin_ + lane];
}

void
Warp::compileRaygenStage()
{
    uint32_t issue = 0;
    for (uint32_t t = threadBegin_; t < threadEnd_; ++t) {
        const ThreadWork &thread = workload_->threads[t];
        uint32_t insts = thread.selected ? config_->raygenInsts
                                         : config_->filterExitInsts;
        pendingThreadInsts_ += insts;
        issue = std::max(issue, insts);
    }
    aluIssueRemaining_ = issue;
    phase_ = Phase::AluIssue;
}

void
Warp::compilePostRayStage()
{
    uint32_t issue = 0;
    loadsToIssue_.clear();
    for (uint32_t t = threadBegin_; t < threadEnd_; ++t) {
        const ThreadWork &thread = workload_->threads[t];
        if (static_cast<uint32_t>(currentRaySlot_) >= thread.rayCount)
            continue;
        const rt::RayTask &task = thread.rays[currentRaySlot_];
        uint32_t insts = 0;
        if (task.mode == rt::TraversalMode::ClosestHit) {
            if (task.hit) {
                insts = config_->shadeInsts;
                loadsToIssue_.push_back(AddressMap::lineOf(
                    AddressMap::materialAddress(task.materialId),
                    config_->l1dLineBytes));
            } else {
                insts = config_->missInsts;
            }
        } else {
            insts = config_->shadowBlendInsts;
        }
        pendingThreadInsts_ += insts;
        issue = std::max(issue, insts);
    }
    uniqueLines(loadsToIssue_);
    aluIssueRemaining_ = issue;
    phase_ = Phase::AluIssue;
}

void
Warp::compileFbWriteStage()
{
    storesToIssue_.clear();
    uint32_t selected = 0;
    for (uint32_t t = threadBegin_; t < threadEnd_; ++t) {
        const ThreadWork &thread = workload_->threads[t];
        if (!thread.selected)
            continue;
        ++selected;
        storesToIssue_.push_back(AddressMap::lineOf(
            AddressMap::framebufferAddress(thread.pixelLinear),
            config_->l1dLineBytes));
    }
    uniqueLines(storesToIssue_);
    pendingThreadInsts_ += selected;
    aluIssueRemaining_ = selected > 0 ? 1 : 0;
    fbStageDone_ = true;
    phase_ = Phase::AluIssue;
}

void
Warp::advanceAfterAlu()
{
    // Find the next ray slot any thread still has to trace.
    int next_slot = currentRaySlot_ + 1;
    if (next_slot < static_cast<int>(maxRaySlots_)) {
        currentRaySlot_ = next_slot;
        phase_ = Phase::RtWait;
        return;
    }
    if (!fbStageDone_) {
        compileFbWriteStage();
        return;
    }
    phase_ = Phase::Done;
}

void
Warp::poll(uint64_t now)
{
    // Cascade through zero-time transitions until the phase is stable
    // (e.g. an empty ALU stage drains straight into the next stage).
    for (;;) {
        Phase before = phase_;
        switch (phase_) {
          case Phase::NotStarted:
            compileRaygenStage();
            break;
          case Phase::AluIssue:
            if (aluIssueRemaining_ == 0 && loadsToIssue_.empty() &&
                storesToIssue_.empty()) {
                phase_ = Phase::AluDrain;
            }
            break;
          case Phase::AluDrain:
            if (now >= drainReadyAt_ && outstandingLoads_ == 0)
                advanceAfterAlu();
            break;
          default:
            break;
        }
        if (phase_ == before)
            return;
    }
}

uint64_t
Warp::nextEventCycle(uint64_t now) const
{
    switch (phase_) {
      case Phase::NotStarted:
      case Phase::AluIssue:
        // Compiling / issuing: the next scheduler pass matters.
        return now + 1;
      case Phase::AluDrain:
        if (outstandingLoads_ > 0)
            return kNoEventCycle; // woken by a fill delivery
        // Post-tick this is > now (poll() would have advanced the stage
        // otherwise); max() keeps the contract under direct unit tests.
        return std::max<uint64_t>(drainReadyAt_, now + 1);
      case Phase::RtWait: // admission chances are the SM's to evaluate
      case Phase::InRt:   // driven by the RT unit / fills
      case Phase::Done:
        return kNoEventCycle;
    }
    return now + 1; // unreachable; keeps -Werror=return-type happy
}

bool
Warp::wantsIssue() const
{
    return phase_ == Phase::AluIssue &&
           (aluIssueRemaining_ > 0 || !loadsToIssue_.empty() ||
            !storesToIssue_.empty());
}

uint64_t
Warp::pendingMemLine() const
{
    if (!loadsToIssue_.empty())
        return loadsToIssue_.back();
    ZATEL_ASSERT(!storesToIssue_.empty(), "no pending memory line");
    return storesToIssue_.back();
}

void
Warp::commitAlu(uint64_t now)
{
    ZATEL_ASSERT(aluIssueRemaining_ > 0, "no ALU work pending");
    --aluIssueRemaining_;
    drainReadyAt_ = now + config_->aluLatency;
}

void
Warp::commitLoad()
{
    ZATEL_ASSERT(!loadsToIssue_.empty(), "no load pending");
    loadsToIssue_.pop_back();
    ++outstandingLoads_;
}

void
Warp::commitStore()
{
    ZATEL_ASSERT(!storesToIssue_.empty(), "no store pending");
    storesToIssue_.pop_back();
}

void
Warp::onLoadComplete()
{
    ZATEL_ASSERT(outstandingLoads_ > 0, "unexpected load completion");
    --outstandingLoads_;
}

void
Warp::enterRtUnit(WarpLane *lanes)
{
    ZATEL_ASSERT(phase_ == Phase::RtWait, "warp not waiting for RT");
    ZATEL_ASSERT(lanes != nullptr, "RT entry needs a lane span");
    phase_ = Phase::InRt;
    lanes_ = lanes;
    for (uint32_t lane = 0; lane < config_->warpSize; ++lane) {
        WarpLane &state = lanes_[lane];
        uint32_t t = threadBegin_ + lane;
        if (t >= threadEnd_) {
            state.state = WarpLane::State::Inactive;
            continue;
        }
        const ThreadWork &thread = workload_->threads[t];
        if (static_cast<uint32_t>(currentRaySlot_) >= thread.rayCount) {
            state.state = WarpLane::State::Inactive;
            continue;
        }
        const rt::RayTask &task = thread.rays[currentRaySlot_];
        state.stepper.init(workload_->bvh, task.ray, task.mode);
        state.state = state.stepper.finished() ? WarpLane::State::Done
                                               : WarpLane::State::NeedFetch;
    }
}

void
Warp::exitRtUnit(uint64_t now)
{
    ZATEL_ASSERT(phase_ == Phase::InRt, "warp not in RT unit");
    (void)now;
    lanes_ = nullptr; // span returns to the RT unit's pool
    compilePostRayStage();
}

uint32_t
Warp::activeLaneCount() const
{
    if (lanes_ == nullptr)
        return 0;
    uint32_t active = 0;
    for (uint32_t i = 0; i < config_->warpSize; ++i) {
        const WarpLane &lane = lanes_[i];
        if (lane.state == WarpLane::State::NeedFetch ||
            lane.state == WarpLane::State::WaitMem ||
            lane.state == WarpLane::State::ReadyStep) {
            ++active;
        }
    }
    return active;
}

} // namespace zatel::gpusim
