/**
 * @file
 * DRAM channel model: FIFO request queue with a fixed access latency and
 * a burst-bandwidth constraint. Tracks the busy/active cycle counters
 * behind the paper's "DRAM Efficiency" and "Bandwidth Utilization"
 * metrics (Table I): efficiency counts utilization only over cycles with
 * pending work; utilization counts over all cycles.
 */

#ifndef ZATEL_GPUSIM_DRAM_HH
#define ZATEL_GPUSIM_DRAM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "gpusim/config.hh"
#include "gpusim/mem_types.hh"
#include "gpusim/sim_clock.hh"

namespace zatel::gpusim
{

/** One DRAM channel (one per memory partition). */
class DramChannel
{
  public:
    struct Stats
    {
        uint64_t busyCycles = 0;   ///< cycles spent bursting data
        uint64_t activeCycles = 0; ///< cycles with queued or in-flight work
        uint64_t bytesRead = 0;
        uint64_t bytesWritten = 0;
        uint64_t reads = 0;
        uint64_t writes = 0;
    };

    explicit DramChannel(const GpuConfig &config);

    /**
     * Enqueue a request (arrival time = @p now).
     * @return false when the channel queue is full.
     */
    bool enqueue(const MemRequest &request, uint64_t now);

    /**
     * Advance one cycle; completed reads are appended to @p completed
     * (writes complete silently).
     */
    void tick(uint64_t now, std::vector<MemRequest> &completed);

    bool idle() const { return queue_.empty() && !bursting_; }

    /**
     * Earliest cycle > @p now at which tick() is anything but per-cycle
     * counter accrual: the retiring tick of the in-flight burst, or the
     * cycle the head request's access latency elapses. kNoEventCycle when
     * idle. See sim_clock.hh for the activity-driven loop contract.
     */
    uint64_t nextEventCycle(uint64_t now) const;

    /**
     * Account for @p cycles skipped ticks in closed form: a bursting
     * channel accrues busy+active, a waiting channel accrues active
     * only, an idle channel accrues nothing — exactly what @p cycles
     * consecutive tick() calls short of nextEventCycle() would have
     * counted. @pre cycles > 0 and now + cycles stays short of the next
     * event (the caller, Gpu::run's fast-forward, guarantees both).
     */
    void fastForward(uint64_t cycles);

    size_t queueOccupancy() const { return queue_.size(); }
    bool queueFull() const { return queue_.size() >= queueSize_; }
    const Stats &stats() const { return stats_; }

  private:
    struct Entry
    {
        MemRequest request;
        uint64_t arrival = 0;
    };

    uint32_t queueSize_ = 0;
    uint32_t latencyCycles_ = 0;
    uint32_t burstCycles_ = 0;
    uint32_t lineBytes_ = 0;

    std::deque<Entry> queue_;
    bool bursting_ = false;
    uint64_t burstEnd_ = 0;
    MemRequest inFlight_;
    Stats stats_;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_DRAM_HH
