/**
 * @file
 * Miss Status Holding Register table: merges outstanding misses to the
 * same cache line and bounds the number of in-flight lines (the paper's
 * Table II gives the RT unit 64 MSHR entries).
 */

#ifndef ZATEL_GPUSIM_MSHR_HH
#define ZATEL_GPUSIM_MSHR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/line_map.hh"

namespace zatel::gpusim
{

/**
 * MSHR table keyed by line address. Waiters are opaque 64-bit tokens the
 * owning component interprets (e.g. packed warp/lane ids).
 *
 * Storage is SoA and allocation-free in steady state: entries live in
 * fixed parallel arrays indexed by a LineMap, and waiter lists are
 * singly-linked chains through a pooled node array with a free list
 * (docs/SIMULATOR.md, "Data layout of the hot path").
 */
class MshrTable
{
  public:
    enum class Outcome
    {
        /** Line already pending; waiter attached to the existing entry. */
        Merged,
        /** New entry allocated; caller must send the memory request. */
        Allocated,
        /** Table full; caller must retry later. */
        Full,
    };

    struct Stats
    {
        uint64_t allocations = 0;
        uint64_t merges = 0;
        uint64_t fullStalls = 0;
    };

    explicit MshrTable(uint32_t capacity);

    /** Register @p waiter_token for @p line_addr. */
    Outcome request(uint64_t line_addr, uint64_t waiter_token);

    /** True when @p line_addr has an entry in flight. */
    bool pending(uint64_t line_addr) const { return index_.contains(line_addr); }

    /**
     * Complete @p line_addr: removes the entry.
     * @return all waiter tokens registered for the line, in registration
     *         order (empty when the line was not pending). The returned
     *         vector is internal scratch reused by the next fill();
     *         consume it before calling fill() again.
     */
    const std::vector<uint64_t> &fill(uint64_t line_addr);

    size_t occupancy() const { return index_.size(); }
    uint32_t capacity() const { return capacity_; }
    bool full() const { return index_.size() >= capacity_; }
    const Stats &stats() const { return stats_; }

  private:
    static constexpr uint32_t kNoNode = ~0u;

    /** Take a waiter node off the free list (growing the pool if dry). */
    uint32_t allocNode(uint64_t token);

    uint32_t capacity_ = 0;
    /** line address -> entry slot. */
    LineMap index_;
    // SoA entry state, indexed by entry slot (free slots chain through
    // entryFree_).
    std::vector<uint64_t> entryLine_;
    std::vector<uint32_t> waiterHead_;
    std::vector<uint32_t> waiterTail_;
    std::vector<uint32_t> entryFree_; // stack of free entry slots
    // Pooled waiter nodes: parallel token/next arrays + free-list head.
    std::vector<uint64_t> nodeToken_;
    std::vector<uint32_t> nodeNext_;
    uint32_t nodeFreeHead_ = kNoNode;
    std::vector<uint64_t> fillScratch_;
    Stats stats_;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_MSHR_HH
