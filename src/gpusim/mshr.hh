/**
 * @file
 * Miss Status Holding Register table: merges outstanding misses to the
 * same cache line and bounds the number of in-flight lines (the paper's
 * Table II gives the RT unit 64 MSHR entries).
 */

#ifndef ZATEL_GPUSIM_MSHR_HH
#define ZATEL_GPUSIM_MSHR_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace zatel::gpusim
{

/**
 * MSHR table keyed by line address. Waiters are opaque 64-bit tokens the
 * owning component interprets (e.g. packed warp/lane ids).
 */
class MshrTable
{
  public:
    enum class Outcome
    {
        /** Line already pending; waiter attached to the existing entry. */
        Merged,
        /** New entry allocated; caller must send the memory request. */
        Allocated,
        /** Table full; caller must retry later. */
        Full,
    };

    struct Stats
    {
        uint64_t allocations = 0;
        uint64_t merges = 0;
        uint64_t fullStalls = 0;
    };

    explicit MshrTable(uint32_t capacity);

    /** Register @p waiter_token for @p line_addr. */
    Outcome request(uint64_t line_addr, uint64_t waiter_token);

    /** True when @p line_addr has an entry in flight. */
    bool pending(uint64_t line_addr) const;

    /**
     * Complete @p line_addr: removes the entry.
     * @return all waiter tokens registered for the line (empty when the
     *         line was not pending).
     */
    std::vector<uint64_t> fill(uint64_t line_addr);

    size_t occupancy() const { return entries_.size(); }
    uint32_t capacity() const { return capacity_; }
    bool full() const { return entries_.size() >= capacity_; }
    const Stats &stats() const { return stats_; }

  private:
    uint32_t capacity_ = 0;
    std::unordered_map<uint64_t, std::vector<uint64_t>> entries_;
    Stats stats_;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_MSHR_HH
