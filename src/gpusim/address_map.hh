/**
 * @file
 * Simulated physical address layout.
 *
 * The scene's data structures are assigned fixed regions so that cache and
 * DRAM behaviour is deterministic: BVH nodes, triangle data, material
 * records and the framebuffer each live in their own region. Partition
 * selection interleaves cache lines across memory partitions, matching
 * the line-interleaved address hashing of real GPUs.
 */

#ifndef ZATEL_GPUSIM_ADDRESS_MAP_HH
#define ZATEL_GPUSIM_ADDRESS_MAP_HH

#include <cstdint>

namespace zatel::gpusim
{

/** Static address-space layout helpers. */
struct AddressMap
{
    static constexpr uint64_t kBvhBase = 0x1000'0000ull;
    /** BVH nodes are padded to 64B, two per 128B line. */
    static constexpr uint64_t kBvhNodeStride = 64;

    static constexpr uint64_t kTriangleBase = 0x2000'0000ull;
    /** Triangle record: 3 vertices + material = 48B, padded to 64B. */
    static constexpr uint64_t kTriangleStride = 64;

    static constexpr uint64_t kMaterialBase = 0x3000'0000ull;
    static constexpr uint64_t kMaterialStride = 32;

    static constexpr uint64_t kFramebufferBase = 0x4000'0000ull;
    /** RGBA float per pixel. */
    static constexpr uint64_t kFramebufferStride = 16;

    static uint64_t
    bvhNodeAddress(uint32_t node_index)
    {
        return kBvhBase + static_cast<uint64_t>(node_index) * kBvhNodeStride;
    }

    static uint64_t
    triangleAddress(uint32_t prim_slot)
    {
        return kTriangleBase +
               static_cast<uint64_t>(prim_slot) * kTriangleStride;
    }

    static uint64_t
    materialAddress(uint16_t material_id)
    {
        return kMaterialBase +
               static_cast<uint64_t>(material_id) * kMaterialStride;
    }

    static uint64_t
    framebufferAddress(uint32_t pixel_index)
    {
        return kFramebufferBase +
               static_cast<uint64_t>(pixel_index) * kFramebufferStride;
    }

    /** Align @p addr down to its cache line. */
    static uint64_t
    lineOf(uint64_t addr, uint32_t line_bytes)
    {
        return addr & ~static_cast<uint64_t>(line_bytes - 1);
    }

    /** Line-interleaved partition selection. */
    static uint32_t
    partitionOf(uint64_t addr, uint32_t line_bytes, uint32_t num_partitions)
    {
        return static_cast<uint32_t>((addr / line_bytes) % num_partitions);
    }
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_ADDRESS_MAP_HH
