/**
 * @file
 * Device-level memory system: routes line requests from SMs across the
 * interconnect to line-interleaved memory partitions and delivers fills
 * back to the requesting SM.
 */

#ifndef ZATEL_GPUSIM_MEMORY_SYSTEM_HH
#define ZATEL_GPUSIM_MEMORY_SYSTEM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/config.hh"
#include "gpusim/fill_heap.hh"
#include "gpusim/mem_partition.hh"
#include "gpusim/mem_types.hh"
#include "gpusim/sim_clock.hh"
#include "gpusim/stats.hh"

namespace zatel::gpusim
{

/** Interconnect + all memory partitions. */
class MemorySystem
{
  public:
    explicit MemorySystem(const GpuConfig &config);

    /** Route a read from SM @p src_sm; always accepted (NoC is elastic). */
    void sendRead(uint32_t src_sm, uint64_t line_addr, uint64_t now);

    /** Route a write (fire-and-forget). */
    void sendWrite(uint32_t src_sm, uint64_t line_addr, uint64_t now);

    /**
     * Switch sendRead()/sendWrite() into deferred mode: requests park in
     * a per-source-SM staging lane instead of entering their partition,
     * so SMs on different threads never touch shared queues
     * (docs/SIMULATOR.md, "Intra-simulation parallelism"). Call
     * flushStagedSends() from a single thread to route them.
     */
    void setDeferSends(bool defer) { deferSends_ = defer; }

    /**
     * Route every staged request into its partition in (send cycle,
     * source SM index) order — exactly the order the serial loop's
     * immediate enqueues produce, so partition FIFO contents (and thus
     * all downstream timing) are byte-identical to serial execution.
     */
    void flushStagedSends();

    /** True when deferred requests are parked and unrouted. */
    bool hasStagedSends() const;

    /** Advance partitions and response delivery one cycle. */
    void tick(uint64_t now);

    /**
     * Fast-path variant of tick(): partitions whose tick would provably
     * be a no-op (MemPartition::quiescentAt) are skipped. Byte-identical
     * statistics to tick() — the reference slow loop keeps using tick()
     * so the equivalence stays testable (tests/test_gpu_fastpath.cc).
     */
    void tickActive(uint64_t now);

    /**
     * Earliest cycle > @p now at which any partition needs its tick
     * (sim_clock.hh). Pending fills are *not* folded in: they wake the
     * destination SM (nextFillCycle), not the partitions.
     */
    uint64_t nextEventCycle(uint64_t now) const;

    /** Apply @p cycles of skipped-tick accrual to every partition. */
    void fastForward(uint64_t cycles);

    /**
     * Ready cycle of the earliest pending fill for @p sm, kNoEventCycle
     * when none is in flight past its partition. Inline heap peek: the
     * fast cycle loop consults this once per SM per jump attempt.
     */
    uint64_t nextFillCycle(uint32_t sm) const
    {
        const FillHeap &queue = fillQueues_[sm];
        return queue.empty() ? kNoEventCycle : queue.topReady();
    }

    /**
     * True when drainFills(@p sm, @p now) would deliver something.
     * Inline: the fast cycle loop polls this for every sleeping SM every
     * cycle, so it must cost two loads, not a call.
     */
    bool hasReadyFill(uint32_t sm, uint64_t now) const
    {
        const FillHeap &queue = fillQueues_[sm];
        return !queue.empty() && queue.topReady() <= now;
    }

    /**
     * Drain fills that are ready for @p sm at cycle @p now.
     * Returned vector is per-SM scratch reused across calls; consume
     * immediately. Touches only @p sm 's lane, so concurrent drains for
     * distinct SMs are race-free.
     */
    const std::vector<uint64_t> &drainFills(uint32_t sm, uint64_t now);

    /** True when no requests are anywhere in flight. */
    bool idle() const;

    /** Aggregate L2 + DRAM counters into @p stats. */
    void accumulateStats(GpuStats &stats) const;

    uint32_t numPartitions() const
    {
        return static_cast<uint32_t>(partitions_.size());
    }

    const MemPartition &partition(uint32_t index) const
    {
        return partitions_[index];
    }

  private:
    /** Push this tick's partition responses into the per-SM fill queues. */
    void deliverResponses();

    /** Route @p request into its line-interleaved partition. */
    void routeToPartition(const MemRequest &request);

    GpuConfig config_;
    std::vector<MemPartition> partitions_;
    /**
     * SoA min-heap of fills per destination SM, ordered by (readyCycle,
     * seq). The delivery sequence number tie-break matters: the heap's
     * tie order on readyCycle would otherwise depend on the push/pop
     * interleaving, which the span-parallel loop batches differently
     * from the serial loop (all of a span's pushes land before any
     * drain). The (readyCycle, seq) total order makes drain order a
     * function of the delivery sequence alone, which all loops share.
     */
    std::vector<FillHeap> fillQueues_;
    std::vector<MemResponse> responseScratch_;
    /** Monotone PendingFill::seq source (deliverResponses is always
     *  single-threaded, in every loop). */
    uint64_t fillSeq_ = 0;
    /** Per-SM drain scratch: shard threads drain concurrently. */
    std::vector<std::vector<uint64_t>> drainScratch_;
    /** Per-source-SM parked requests while deferSends_ is set. Each
     *  lane is written only by its owning SM's shard thread; lanes are
     *  flushed (and cleared) between shard phases. */
    std::vector<std::vector<MemRequest>> stagedSends_;
    /** flushStagedSends() cursor scratch (retained across flushes). */
    std::vector<size_t> flushCursor_;
    bool deferSends_ = false;
};

} // namespace zatel::gpusim

#endif // ZATEL_GPUSIM_MEMORY_SYSTEM_HH
